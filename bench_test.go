// Benchmarks regenerating the paper's evaluation (Table I, Figures 7–11)
// plus ablations of GPSA's design choices. Each figure benchmark has one
// sub-benchmark per (algorithm, system) bar of the paper's chart; the
// reported metrics are seconds per measured run (the paper's elapsed time
// of five supersteps) and average CPU utilization.
//
// Datasets are R-MAT graphs with the paper's Table I shapes, scaled down
// by the per-figure default (override with GPSA_BENCH_SCALE=<divisor>).
// Run everything with:
//
//	go test -bench=. -benchmem
package gpsa_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/gen"
)

// benchScales are the default divisors applied to Table I sizes so the
// full suite finishes on a laptop. GPSA_BENCH_SCALE overrides all four.
var benchScales = map[string]int64{
	"google":          16,
	"soc-pokec":       64,
	"soc-liveJournal": 128,
	"twitter-2010":    2048,
}

func scaleFor(ds gen.Dataset) int64 {
	if s := os.Getenv("GPSA_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return benchScales[ds.Name]
}

// artifact cache: building (generate, symmetrize, CSR, X-Stream layout)
// is expensive and shared across sub-benchmarks.
var (
	artMu    sync.Mutex
	artCache = map[string]*bench.Artifacts{}
	artDirs  []string
)

func artifactsFor(b *testing.B, ds gen.Dataset, scale int64) *bench.Artifacts {
	b.Helper()
	key := fmt.Sprintf("%s@%d", ds.Name, scale)
	artMu.Lock()
	defer artMu.Unlock()
	if a, ok := artCache[key]; ok {
		return a
	}
	dir, err := os.MkdirTemp("", "gpsa-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	a, err := bench.BuildArtifacts(ds, scale, 1, dir)
	if err != nil {
		os.RemoveAll(dir)
		b.Fatalf("building %s artifacts: %v", key, err)
	}
	artCache[key] = a
	artDirs = append(artDirs, dir)
	return a
}

func TestMain(m *testing.M) {
	code := m.Run()
	for _, d := range artDirs {
		os.RemoveAll(d)
	}
	os.Exit(code)
}

// benchFigure runs one of the paper's Figures 7–10: every (algorithm,
// system) cell as a sub-benchmark.
func benchFigure(b *testing.B, ds gen.Dataset) {
	scale := scaleFor(ds)
	for _, alg := range bench.AllAlgos {
		for _, sys := range bench.AllSystems {
			b.Run(fmt.Sprintf("%s/%s", alg, sys), func(b *testing.B) {
				a := artifactsFor(b, ds, scale)
				opts := bench.Options{Runs: 1, Supersteps: 5}
				b.ResetTimer()
				var cpu float64
				var perStep float64
				for i := 0; i < b.N; i++ {
					cell, err := bench.MeasureCell(a, sys, alg, opts)
					if err != nil {
						b.Fatal(err)
					}
					cpu += cell.CPUPercent
					perStep += cell.PerStep
				}
				b.ReportMetric(cpu/float64(b.N), "cpu%")
				b.ReportMetric(perStep/float64(b.N), "s/superstep")
			})
		}
	}
}

// BenchmarkTableI regenerates Table I: dataset generation plus CSR
// preprocessing for each of the paper's four graphs.
func BenchmarkTableI(b *testing.B) {
	for _, ds := range gen.PaperDatasets {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			scale := scaleFor(ds)
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				rows, err := bench.RunTable1(scale, 1, dir)
				if err != nil {
					b.Fatal(err)
				}
				_ = rows
				break // one generation is representative; Table I is not a timing experiment
			}
		})
	}
}

// BenchmarkFig7 is the google graph comparison (paper: the one GPSA
// loses — the graph fits in memory).
func BenchmarkFig7(b *testing.B) { benchFigure(b, gen.Google) }

// BenchmarkFig8 is the soc-pokec comparison.
func BenchmarkFig8(b *testing.B) { benchFigure(b, gen.SocPokec) }

// BenchmarkFig9 is the soc-LiveJournal comparison.
func BenchmarkFig9(b *testing.B) { benchFigure(b, gen.LiveJournal) }

// BenchmarkFig10 is the twitter-2010 comparison (scaled; set
// GPSA_BENCH_SCALE=1 and a lot of patience for full size).
func BenchmarkFig10(b *testing.B) { benchFigure(b, gen.Twitter2010) }

// BenchmarkFig11 is the CPU utilization comparison; the cpu% metric is
// the figure's y-axis.
func BenchmarkFig11(b *testing.B) {
	ds := gen.SocPokec
	scale := scaleFor(ds)
	for _, sys := range bench.AllSystems {
		b.Run(string(sys), func(b *testing.B) {
			a := artifactsFor(b, ds, scale)
			opts := bench.Options{Runs: 1, Supersteps: 5}
			b.ResetTimer()
			var cpu float64
			for i := 0; i < b.N; i++ {
				cell, err := bench.MeasureCell(a, sys, bench.AlgoPageRank, opts)
				if err != nil {
					b.Fatal(err)
				}
				cpu += cell.CPUPercent
			}
			b.ReportMetric(cpu/float64(b.N), "cpu%")
		})
	}
}

// BenchmarkAblation measures the design choices DESIGN.md calls out.
func BenchmarkAblation(b *testing.B) {
	run := func(b *testing.B, opts bench.AblationOptions) []bench.AblationResult {
		b.Helper()
		rs, err := bench.RunAblations(opts)
		if err != nil {
			b.Fatal(err)
		}
		return rs
	}
	b.Run("all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rs := run(b, bench.AblationOptions{
				Dataset: gen.SocPokec,
				Scale:   scaleFor(gen.SocPokec),
				Seed:    1,
				Runs:    1,
				WorkDir: b.TempDir(),
			})
			if i == 0 && testing.Verbose() {
				b.Log("\n" + bench.FormatAblations(rs))
			}
		}
	})
}

// BenchmarkDistributed measures the TCP cluster extension: PageRank on
// soc-pokec across cluster sizes (all nodes in-process over loopback).
func BenchmarkDistributed(b *testing.B) {
	ds := gen.SocPokec
	scale := scaleFor(ds)
	a := artifactsFor(b, ds, scale)
	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, _, err := cluster.Run(a.CSRPath, algorithms.PageRank{}, cluster.Config{
					Nodes:         nodes,
					MaxSupersteps: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Supersteps != 5 {
					b.Fatalf("ran %d supersteps", res.Supersteps)
				}
			}
		})
	}
}
