// BFS over a synthetic social network: degrees of separation from the
// most-followed user, the paper's bfs workload on a soc-pokec-shaped
// graph. Demonstrates GPSA's selective scheduling: supersteps shrink as
// the frontier dies out.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	// soc-pokec at 1/64 scale: ~25k users, ~478k follows.
	ds := gen.SocPokec.Scaled(64)
	g, err := ds.Generate(7)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "gpsa-social-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "social.gpsa")
	if err := graph.WriteFile(path, g); err != nil {
		log.Fatal(err)
	}

	// Root: the most-followed user (max out-degree in the follow graph).
	var root graph.VertexID
	var best uint32
	for v := int64(0); v < g.NumVertices; v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > best {
			best = d
			root = graph.VertexID(v)
		}
	}
	fmt.Printf("social graph: %d users, %d follows; root user %d (%d followees)\n",
		g.NumVertices, g.NumEdges, root, best)

	levels, res, err := gpsa.BFS(path, root, gpsa.RunOptions{
		Progress: func(s gpsa.StepStats) {
			fmt.Printf("  superstep %d: frontier sent %d messages, %d users updated\n",
				s.Step, s.Messages, s.Updates)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Degrees-of-separation histogram.
	hist := map[int64]int{}
	reached := 0
	maxLevel := int64(0)
	for _, l := range levels {
		if l < 0 {
			continue
		}
		hist[l]++
		reached++
		if l > maxLevel {
			maxLevel = l
		}
	}
	fmt.Printf("\nBFS converged in %d supersteps (%v); reached %d/%d users\n",
		res.Supersteps, res.Duration, reached, len(levels))
	fmt.Println("degrees of separation:")
	for l := int64(0); l <= maxLevel; l++ {
		fmt.Printf("  %2d hops: %6d users\n", l, hist[l])
	}
	fmt.Printf("  unreachable: %d users\n", len(levels)-reached)
}
