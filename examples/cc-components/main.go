// Connected components over a synthetic network plus planted islands:
// the paper's CC workload. Labels propagate on the symmetrized graph
// (weak connectivity) and the example reports the component size
// distribution.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	// A LiveJournal-shaped core plus 50 small planted cliques that stay
	// disconnected from it.
	core, err := gen.LiveJournal.Scaled(256).Generate(11)
	if err != nil {
		log.Fatal(err)
	}
	edges := core.ToEdges()
	base := graph.VertexID(core.NumVertices)
	for c := graph.VertexID(0); c < 50; c++ {
		for i := graph.VertexID(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				edges = append(edges, graph.Edge{Src: base + 4*c + i, Dst: base + 4*c + j})
			}
		}
	}
	g, err := graph.FromEdges(edges, core.NumVertices+200, false)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "gpsa-cc-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "net-sym.gpsa")
	if err := graph.WriteFile(path, g.Symmetrize()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d vertices, %d directed edges (+50 planted 4-cliques)\n",
		g.NumVertices, g.NumEdges)

	labels, res, err := gpsa.Components(path, gpsa.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	sizes := map[gpsa.VertexID]int{}
	for _, l := range labels {
		sizes[l]++
	}
	dist := make([]int, 0, len(sizes))
	for _, n := range sizes {
		dist = append(dist, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dist)))

	fmt.Printf("found %d weakly connected components in %d supersteps (%v)\n",
		len(sizes), res.Supersteps, res.Duration)
	fmt.Println("largest components:")
	for i, n := range dist {
		if i >= 5 {
			break
		}
		fmt.Printf("  #%d: %d vertices\n", i+1, n)
	}
	fourCliques := 0
	for _, n := range dist {
		if n == 4 {
			fourCliques++
		}
	}
	fmt.Printf("components of size exactly 4 (the planted cliques): %d\n", fourCliques)
}
