// Fault tolerance: the paper's §IV-G lightweight recovery. The vertex
// value file keeps one payload-immutable column per superstep, so a
// computation can stop (or crash) and resume from the last committed
// superstep without checkpoint traffic.
//
// The example demonstrates both recovery paths:
//
//  1. Cross-process: run connected components in two halves against a
//     persistent value file and verify the resumed run finishes with
//     exactly the same labels as an uninterrupted one.
//  2. In-process: arm the fault-injection framework so a computing actor
//     panics mid-superstep AND a commit tears its header, and let the
//     supervised engine roll the superstep back and retry — no resume,
//     no operator, identical labels.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	g, err := gen.SocPokec.Scaled(256).Generate(3)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "gpsa-ft-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "g-sym.gpsa")
	if err := graph.WriteFile(path, g.Symmetrize()); err != nil {
		log.Fatal(err)
	}

	// Uninterrupted baseline.
	want, _, err := gpsa.Components(path, gpsa.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Interrupted run: stop after 2 supersteps, leaving a persistent
	// value file behind (simulating a process that died between
	// supersteps; Resume also rolls back a mid-superstep crash).
	values := filepath.Join(dir, "cc.gpvf")
	vals, res, err := gpsa.Run(path, ccProgram{}, gpsa.RunOptions{
		Supersteps: 2,
		ValuesPath: values,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: ran %d supersteps, then \"crashed\"\n", res.Supersteps)
	if err := vals.Close(); err != nil {
		log.Fatal(err)
	}

	// Resume from the persisted state and run to convergence.
	vals, res, err = gpsa.Resume(path, values, ccProgram{}, gpsa.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer vals.Close()
	fmt.Printf("phase 2: resumed and ran %d more supersteps (converged=%v)\n",
		res.Supersteps, res.Converged)

	mismatches := 0
	for v := int64(0); v < vals.NumVertices(); v++ {
		if gpsa.VertexID(vals.Uint(v)) != want[v] {
			mismatches++
		}
	}
	if mismatches != 0 {
		log.Fatalf("recovered labels differ from the uninterrupted run at %d vertices", mismatches)
	}
	fmt.Printf("recovered run matches the uninterrupted run on all %d vertices\n", vals.NumVertices())

	// Phase 3: automatic in-process recovery. A computing actor dies on
	// its 200th applied message and the third commit tears its header;
	// with StepRetries set, the engine rolls each failed superstep back
	// to its immutable dispatch column and re-executes it.
	plan := fault.NewPlan(0,
		fault.Injection{Site: fault.SiteComputerMsg, After: 200},
		fault.Injection{Site: fault.SiteCommitTorn, After: 3},
	)
	fault.Activate(plan)
	vals2, res, err := gpsa.Run(path, ccProgram{}, gpsa.RunOptions{StepRetries: 3})
	fault.Deactivate()
	if err != nil {
		log.Fatalf("supervised run did not recover: %v", err)
	}
	defer vals2.Close()
	fmt.Printf("phase 3: injected %d computer panic(s) and %d torn commit(s); engine retried %d superstep(s)\n",
		plan.Fired(fault.SiteComputerMsg), plan.Fired(fault.SiteCommitTorn), res.Retries)
	if res.Retries == 0 {
		log.Fatal("expected at least one supervised retry")
	}
	for v := int64(0); v < vals2.NumVertices(); v++ {
		if gpsa.VertexID(vals2.Uint(v)) != want[v] {
			log.Fatalf("supervised run differs from the uninterrupted run at vertex %d", v)
		}
	}
	fmt.Printf("supervised run matches the uninterrupted run on all %d vertices\n", vals2.NumVertices())
}

// ccProgram is the connected-components vertex program, written out
// against the public Program interface to show a custom program.
type ccProgram struct{}

func (ccProgram) Init(v int64) (uint64, bool) { return uint64(v), true }

func (ccProgram) GenMsg(src int64, payload uint64, outDegree uint32, dst gpsa.VertexID, weight float32) (uint64, bool) {
	return payload, true
}

func (ccProgram) Compute(dst int64, cur, msg uint64, first bool) (uint64, bool) {
	if msg < cur {
		return msg, true
	}
	return cur, false
}
