// Distributed GPSA: the paper's actor model extended across nodes (its
// stated future work). This example runs connected components over an
// in-process TCP cluster of 3 nodes — every cross-node message crosses a
// real socket — and verifies the result against a single-machine run.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	g, err := gen.SocPokec.Scaled(128).Generate(5)
	if err != nil {
		log.Fatal(err)
	}
	sym := g.Symmetrize()
	dir, err := os.MkdirTemp("", "gpsa-dist-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "g-sym.gpsa")
	if err := graph.WriteFile(path, sym); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d (symmetrized) edges\n", sym.NumVertices, sym.NumEdges)

	// Single-machine GPSA as the baseline.
	labels, _, err := gpsa.Components(path, gpsa.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The same computation across 3 nodes over loopback TCP.
	res, values, err := cluster.Run(path, algorithms.ConnectedComponents{}, cluster.Config{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d nodes, %d supersteps, %d messages generated, %d delivered (combining saved %.1f%%)\n",
		res.Nodes, res.Supersteps, res.Messages, res.Delivered,
		100*(1-float64(res.Delivered)/float64(res.Messages)))

	mismatches := 0
	for v := int64(0); v < sym.NumVertices; v++ {
		if gpsa.VertexID(values[v]) != labels[v] {
			mismatches++
		}
	}
	if mismatches != 0 {
		log.Fatalf("distributed labels differ at %d vertices", mismatches)
	}
	fmt.Printf("distributed result matches single-machine GPSA on all %d vertices\n", sym.NumVertices)
}
