// PageRank over a synthetic web graph (the workload of the paper's §VI
// evaluation): generates an R-MAT graph shaped like web-Google, runs the
// paper's 5-superstep message-driven PageRank, then the convergent
// delta-based variant, and compares the top pages.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	// web-Google at 1/32 scale: ~27k pages, ~160k links.
	ds := gen.Google.Scaled(32)
	g, err := ds.Generate(42)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "gpsa-web-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "web.gpsa")
	if err := graph.WriteFile(path, g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web graph: %d pages, %d links (R-MAT, %s)\n", g.NumVertices, g.NumEdges, ds.Name)

	// The paper's measurement: 5 supersteps of message-driven PageRank.
	ranks, res, err := gpsa.PageRank(path, gpsa.RunOptions{Supersteps: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5-superstep PageRank: %v, %d messages\n", res.Duration, res.Messages)
	printTop("top pages (5 supersteps)", ranks, 5)

	// The convergent extension: delta PageRank runs until residuals die.
	dranks, dres, err := gpsa.DeltaPageRank(path, 1e-4, gpsa.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelta PageRank: converged=%v after %d supersteps, %d messages\n",
		dres.Converged, dres.Supersteps, dres.Messages)
	printTop("top pages (converged)", dranks, 5)

	// The two orderings should broadly agree on the head of the ranking.
	overlap := topOverlap(ranks, dranks, 20)
	fmt.Printf("\ntop-20 overlap between the two variants: %d/20\n", overlap)
}

func printTop(title string, scores []float64, n int) {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	fmt.Println(title + ":")
	for _, v := range idx[:n] {
		fmt.Printf("  page %6d  rank %.2f\n", v, scores[v])
	}
}

func topOverlap(a, b []float64, n int) int {
	top := func(s []float64) map[int]bool {
		idx := make([]int, len(s))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool { return s[idx[x]] > s[idx[y]] })
		m := make(map[int]bool, n)
		for _, v := range idx[:n] {
			m[v] = true
		}
		return m
	}
	ta, tb := top(a), top(b)
	k := 0
	for v := range ta {
		if tb[v] {
			k++
		}
	}
	return k
}
