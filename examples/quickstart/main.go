// Quickstart: build a small graph, preprocess it to the on-disk CSR
// format, and run PageRank with the GPSA engine.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	// The paper's Fig. 4 example graph: 4 vertices, 6 directed edges.
	edges := []gpsa.Edge{
		{Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 0},
		{Src: 2, Dst: 1}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 1},
	}
	g, err := gpsa.BuildGraph(edges, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Preprocess: write the CSR file GPSA's dispatcher actors stream.
	dir, err := os.MkdirTemp("", "gpsa-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "tiny.gpsa")
	if err := gpsa.SaveGraph(path, g); err != nil {
		log.Fatal(err)
	}

	// Run 20 supersteps of PageRank.
	ranks, res, err := gpsa.PageRank(path, gpsa.RunOptions{Supersteps: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank finished: %d supersteps, %d messages, %v\n",
		res.Supersteps, res.Messages, res.Duration)
	for v, r := range ranks {
		fmt.Printf("  vertex %d: %.4f\n", v, r)
	}

	// BFS from vertex 0 on the same file.
	levels, _, err := gpsa.BFS(path, 0, gpsa.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BFS levels from vertex 0:")
	for v, l := range levels {
		fmt.Printf("  vertex %d: %d\n", v, l)
	}
}
