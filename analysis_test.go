package gpsa_test

import (
	"testing"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/graph"
)

func TestStatsFacade(t *testing.T) {
	path, g := saveSample(t)
	st, err := gpsa.Stats(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVertices != g.NumVertices || st.NumEdges != g.NumEdges {
		t.Fatalf("stats dims (%d, %d), want (%d, %d)", st.NumVertices, st.NumEdges, g.NumVertices, g.NumEdges)
	}
	if _, err := gpsa.Stats("/does/not/exist"); err == nil {
		t.Fatal("Stats on missing file succeeded")
	}
}

func TestDiameterFacadeOnPath(t *testing.T) {
	// Symmetric path of 12 vertices: sampling every vertex as a source
	// (12 < 62) yields the exact diameter 11.
	var edges []gpsa.Edge
	for v := gpsa.VertexID(0); v < 11; v++ {
		edges = append(edges, gpsa.Edge{Src: v, Dst: v + 1}, gpsa.Edge{Src: v + 1, Dst: v})
	}
	g, err := gpsa.BuildGraph(edges, 12)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/p.gpsa"
	if err := gpsa.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	d, res, err := gpsa.Diameter(path, 62, 1, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("diameter run did not converge")
	}
	if d != 11 {
		t.Fatalf("diameter = %d, want 11", d)
	}
}

func TestCommunitiesFacade(t *testing.T) {
	// Two 3-cliques joined by nothing: communities = components.
	var edges []gpsa.Edge
	for _, base := range []gpsa.VertexID{0, 3} {
		for i := gpsa.VertexID(0); i < 3; i++ {
			for j := gpsa.VertexID(0); j < 3; j++ {
				if i != j {
					edges = append(edges, gpsa.Edge{Src: base + i, Dst: base + j})
				}
			}
		}
	}
	g, err := gpsa.BuildGraph(edges, 6)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/c.gpsa"
	if err := gpsa.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	labels, _, err := gpsa.Communities(path, 5, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if labels[v] != 0 {
			t.Fatalf("vertex %d label %d, want 0", v, labels[v])
		}
	}
	for v := 3; v < 6; v++ {
		if labels[v] != 3 {
			t.Fatalf("vertex %d label %d, want 3", v, labels[v])
		}
	}
}

func TestDiameterMatchesSerialEstimator(t *testing.T) {
	g, err := graph.FromEdges([]graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 2}, {Src: 2, Dst: 1},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
	}, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	sources := algorithms.SampleSources(4, 4, 9)
	want := algorithms.EstimateDiameter(g, sources)
	path := t.TempDir() + "/d.gpsa"
	if err := gpsa.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	got, _, err := gpsa.Diameter(path, 4, 9, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("facade diameter %d, serial %d", got, want)
	}
}
