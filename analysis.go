package gpsa

import (
	"repro/internal/algorithms"
	"repro/internal/graph"
	"repro/internal/mmap"
)

// GraphStats summarizes an on-disk CSR graph (degree distribution,
// self-loops, extremes). See the gpsa-inspect command for a CLI view.
type GraphStats = graph.FileStats

// Stats scans the graph file at path and returns its summary.
func Stats(graphPath string) (GraphStats, error) {
	f, err := graph.OpenFile(graphPath, mmap.ModeAuto)
	if err != nil {
		return GraphStats{}, err
	}
	defer f.Close()
	return f.Stats()
}

// Diameter estimates the graph's diameter by running samples simultaneous
// BFS traversals (one mask bit each, at most 62) with the GPSA engine and
// reporting the farthest distance any sampled source reached — a lower
// bound that tightens with more samples. Use a symmetrized graph for the
// undirected diameter.
func Diameter(graphPath string, samples int, seed int64, opts RunOptions) (int, *Result, error) {
	gf, err := graph.OpenFile(graphPath, mmap.ModeAuto)
	if err != nil {
		return 0, nil, err
	}
	numVertices := gf.NumVertices
	gf.Close()
	sources := algorithms.SampleSources(numVertices, samples, seed)

	var updates []int64
	prev := opts.Progress
	opts.Progress = func(s StepStats) {
		updates = append(updates, s.Updates)
		if prev != nil {
			prev(s)
		}
	}
	vals, res, err := Run(graphPath, algorithms.ReachSet{Sources: sources}, opts)
	if err != nil {
		return 0, nil, err
	}
	vals.Close()
	return algorithms.DiameterFromSteps(updates), res, nil
}

// Communities runs TTL-bounded label propagation and returns each
// vertex's community label (see algorithms.LabelPropagation).
func Communities(graphPath string, rounds uint16, opts RunOptions) ([]VertexID, *Result, error) {
	vals, res, err := Run(graphPath, algorithms.LabelPropagation{Rounds: rounds}, opts)
	if err != nil {
		return nil, nil, err
	}
	defer vals.Close()
	out := make([]VertexID, vals.NumVertices())
	for v := range out {
		out[v] = algorithms.LPLabelOf(vals.Raw(int64(v)))
	}
	return out, res, nil
}
