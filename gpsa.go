// Package gpsa is the public API of GPSA-Go, a single-machine graph
// processing system with actors — a reproduction of "GPSA: A Graph
// Processing System with Actors" (ICPP 2015).
//
// The typical flow is:
//
//	g, _ := gpsa.BuildGraph(edges, 0)            // or gpsa.LoadEdgeList
//	_ = gpsa.SaveGraph("web.gpsa", g)            // preprocess to CSR-on-disk
//	ranks, res, _ := gpsa.PageRank("web.gpsa", gpsa.RunOptions{Supersteps: 5})
//
// or, for a custom vertex program:
//
//	vals, res, err := gpsa.Run("web.gpsa", myProgram, gpsa.RunOptions{})
//	defer vals.Close()
//
// The engine behind this API is documented in internal/core; the storage
// formats in internal/graph and internal/vertexfile.
package gpsa

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
)

// Re-exported fundamental types, so callers need only this package.
type (
	// Edge is a directed, optionally weighted edge.
	Edge = graph.Edge
	// VertexID identifies a vertex (0..|V|-1).
	VertexID = graph.VertexID
	// CSR is an in-memory compressed-sparse-row graph.
	CSR = graph.CSR
	// Program is a user-defined vertex program (see internal/core).
	Program = core.Program
	// Result summarizes an engine run.
	Result = core.Result
	// StepStats records one superstep's activity.
	StepStats = core.StepStats
)

// BuildGraph constructs an in-memory CSR from an edge list. Pass
// numVertices = 0 to infer the vertex count from the edges.
func BuildGraph(edges []Edge, numVertices int64) (*CSR, error) {
	return graph.FromEdges(edges, numVertices, false)
}

// BuildWeightedGraph is BuildGraph retaining edge weights.
func BuildWeightedGraph(edges []Edge, numVertices int64) (*CSR, error) {
	return graph.FromEdges(edges, numVertices, true)
}

// LoadEdgeList reads a text edge-list file ("src dst [weight]" lines,
// '#' comments — the SNAP format).
func LoadEdgeList(path string) ([]Edge, error) {
	return graph.LoadEdgeListFile(path)
}

// SaveGraph preprocesses g into the on-disk CSR format GPSA streams
// (paper Fig. 4), writing path and path+".idx".
func SaveGraph(path string, g *CSR) error {
	return graph.WriteFile(path, g)
}

// SaveGraphCompact writes g in the compact (varint-delta) CSR format —
// typically 2-4x smaller than SaveGraph on social and web graphs at a
// modest decode cost. Files of either format open identically.
func SaveGraphCompact(path string, g *CSR) error {
	return graph.WriteFileCompact(path, g)
}

// RunOptions tunes Run and the convenience algorithm runners.
type RunOptions struct {
	// Supersteps caps the run; 0 means run to convergence (up to the
	// engine's default cap of 100).
	Supersteps int
	// Dispatchers and Computers size the actor pools (0 = automatic).
	Dispatchers int
	Computers   int
	// ValuesPath, when set, locates the persistent vertex value file —
	// required to use crash recovery across processes. Empty means a
	// temporary file that is removed when Values is closed.
	ValuesPath string
	// StepRetries is how many times a failed superstep (worker panic,
	// watchdog timeout, torn commit) is rolled back and re-executed
	// in-process before the run fails. 0 disables supervised recovery.
	StepRetries int
	// Watchdog bounds how long the engine waits for any single worker
	// notification within a superstep; 0 disables it. Combine with
	// StepRetries to retry supersteps that time out.
	Watchdog time.Duration
	// Progress, when non-nil, receives per-superstep statistics.
	Progress func(StepStats)
}

func (o RunOptions) engineConfig() core.Config {
	return core.Config{
		Dispatchers:      o.Dispatchers,
		Computers:        o.Computers,
		MaxSupersteps:    o.Supersteps,
		MaxStepRetries:   o.StepRetries,
		SuperstepTimeout: o.Watchdog,
		Progress:         o.Progress,
	}
}

// Values is the vertex value store produced by a run. Close releases (and
// for temporary stores, deletes) the backing file.
type Values struct {
	vf   *vertexfile.File
	temp bool
}

// NumVertices returns the vertex count.
func (v *Values) NumVertices() int64 { return v.vf.NumVertices() }

// Raw returns vertex x's 63-bit payload.
func (v *Values) Raw(x int64) uint64 { return v.vf.Value(x) }

// Float64 decodes vertex x's payload as a non-negative float64 (the
// encoding used by PageRank and SSSP).
func (v *Values) Float64(x int64) float64 { return vertexfile.UnpackFloat64(v.vf.Value(x)) }

// Uint decodes vertex x's payload as an unsigned integer (BFS levels,
// component labels).
func (v *Values) Uint(x int64) uint64 { return v.vf.Value(x) }

// Close releases the store.
func (v *Values) Close() error {
	err := v.vf.Close()
	if v.temp {
		if rmErr := os.Remove(v.vf.Path()); rmErr != nil && err == nil {
			err = rmErr
		}
	}
	return err
}

// Run executes prog over the on-disk CSR graph at graphPath and returns
// the run summary plus the resulting vertex values. The caller must Close
// the returned Values.
func Run(graphPath string, prog Program, opts RunOptions) (*Values, *Result, error) {
	gf, err := graph.OpenFile(graphPath, mmap.ModeAuto)
	if err != nil {
		return nil, nil, err
	}
	defer gf.Close()

	vpath := opts.ValuesPath
	temp := vpath == ""
	if temp {
		f, err := os.CreateTemp(filepath.Dir(graphPath), ".gpsa-values-*")
		if err != nil {
			return nil, nil, fmt.Errorf("gpsa: temp value file: %w", err)
		}
		vpath = f.Name()
		f.Close()
	}
	vf, err := core.CreateValueFile(vpath, gf, prog)
	if err != nil {
		if temp {
			os.Remove(vpath)
		}
		return nil, nil, err
	}
	vals := &Values{vf: vf, temp: temp}

	eng, err := core.New(gf, vf, prog, opts.engineConfig())
	if err != nil {
		vals.Close()
		return nil, nil, err
	}
	res, err := eng.Run()
	if err != nil {
		vals.Close()
		return nil, nil, err
	}
	return vals, res, nil
}

// Resume reopens a persistent value file (after a crash or a previous
// partial run), rolls back any interrupted superstep, and continues
// running prog. The program must be the one the file was created with.
func Resume(graphPath, valuesPath string, prog Program, opts RunOptions) (*Values, *Result, error) {
	gf, err := graph.OpenFile(graphPath, mmap.ModeAuto)
	if err != nil {
		return nil, nil, err
	}
	defer gf.Close()
	vf, err := vertexfile.Open(valuesPath)
	if err != nil {
		return nil, nil, err
	}
	if _, err := vf.Recover(); err != nil {
		vf.Close()
		return nil, nil, err
	}
	vals := &Values{vf: vf}
	eng, err := core.New(gf, vf, prog, opts.engineConfig())
	if err != nil {
		vals.Close()
		return nil, nil, err
	}
	res, err := eng.Run()
	if err != nil {
		vals.Close()
		return nil, nil, err
	}
	return vals, res, nil
}

// RunGraph executes prog over an in-memory graph with no files at all:
// the CSR is mirrored as an in-memory record image and vertex values live
// in an in-memory two-column store (durability and crash recovery
// naturally do not apply). Ideal for embedding GPSA as a library on
// graphs that fit in memory.
func RunGraph(g *CSR, prog Program, opts RunOptions) (*Values, *Result, error) {
	gf, err := graph.NewMemoryFile(g)
	if err != nil {
		return nil, nil, err
	}
	vf, err := vertexfile.NewMemory(g.NumVertices, prog.Init)
	if err != nil {
		return nil, nil, err
	}
	vals := &Values{vf: vf}
	cfg := opts.engineConfig()
	cfg.DisableSync = true // no backing file to sync
	eng, err := core.New(gf, vf, prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return nil, nil, err
	}
	return vals, res, nil
}
