// Package gpsa is the public API of GPSA-Go, a single-machine graph
// processing system with actors — a reproduction of "GPSA: A Graph
// Processing System with Actors" (ICPP 2015).
//
// The typical flow is:
//
//	g, _ := gpsa.BuildGraph(edges, 0)            // or gpsa.LoadEdgeList
//	_ = gpsa.SaveGraph("web.gpsa", g)            // preprocess to CSR-on-disk
//	ranks, res, _ := gpsa.PageRank("web.gpsa", gpsa.RunOptions{Supersteps: 5})
//
// or, for a custom vertex program:
//
//	vals, res, err := gpsa.Run("web.gpsa", myProgram, gpsa.RunOptions{})
//	defer vals.Close()
//
// The engine behind this API is documented in internal/core; the storage
// formats in internal/graph and internal/vertexfile.
package gpsa

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/diskio"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
)

// Re-exported fundamental types, so callers need only this package.
type (
	// Edge is a directed, optionally weighted edge.
	Edge = graph.Edge
	// VertexID identifies a vertex (0..|V|-1).
	VertexID = graph.VertexID
	// CSR is an in-memory compressed-sparse-row graph.
	CSR = graph.CSR
	// Program is a user-defined vertex program (see internal/core).
	Program = core.Program
	// Result summarizes an engine run.
	Result = core.Result
	// StepStats records one superstep's activity.
	StepStats = core.StepStats
)

// BuildGraph constructs an in-memory CSR from an edge list. Pass
// numVertices = 0 to infer the vertex count from the edges.
func BuildGraph(edges []Edge, numVertices int64) (*CSR, error) {
	return graph.FromEdges(edges, numVertices, false)
}

// BuildWeightedGraph is BuildGraph retaining edge weights.
func BuildWeightedGraph(edges []Edge, numVertices int64) (*CSR, error) {
	return graph.FromEdges(edges, numVertices, true)
}

// LoadEdgeList reads a text edge-list file ("src dst [weight]" lines,
// '#' comments — the SNAP format).
func LoadEdgeList(path string) ([]Edge, error) {
	return graph.LoadEdgeListFile(path)
}

// SaveGraph preprocesses g into the on-disk CSR format GPSA streams
// (paper Fig. 4), writing path and path+".idx".
func SaveGraph(path string, g *CSR) error {
	return graph.WriteFile(path, g)
}

// SaveGraphCompact writes g in the compact (varint-delta) CSR format —
// typically 2-4x smaller than SaveGraph on social and web graphs at a
// modest decode cost. Files of either format open identically.
func SaveGraphCompact(path string, g *CSR) error {
	return graph.WriteFileCompact(path, g)
}

// ErrCrashInjected surfaces from a run killed by the fault-injection
// site core.step.crash (simulated process death; see internal/fault).
var ErrCrashInjected = core.ErrCrashInjected

// RunOptions tunes Run and the convenience algorithm runners.
type RunOptions struct {
	// Supersteps caps the run; 0 means run to convergence (up to the
	// engine's default cap of 100). For a resumed run the cap counts
	// from superstep 0 — the total budget, not additional supersteps —
	// so an interrupted fixed-budget run (e.g. PageRank's default 5)
	// finishes with exactly the supersteps the uninterrupted run had.
	Supersteps int

	// Context, when non-nil, cancels the run: between supersteps it
	// stops cleanly, mid-superstep the in-flight superstep is rolled
	// back. Either way a persistent value file is left cleanly sealed
	// and resumable, and the returned error wraps the context's error.
	Context context.Context

	// Resume continues the computation recorded in ValuesPath (which
	// must name an existing value file created with the same program):
	// an interrupted superstep is rolled back — exactly, when the
	// persisted active-set snapshot survived — and the run proceeds
	// from the recorded superstep with the recorded convergence and
	// aggregator state. The Resume function is shorthand for this flag.
	Resume bool
	// Dispatchers and Computers size the actor pools (0 = automatic).
	Dispatchers int
	Computers   int
	// ValuesPath, when set, locates the persistent vertex value file —
	// required to use crash recovery across processes. Empty means a
	// temporary file that is removed when Values is closed.
	ValuesPath string
	// StepRetries is how many times a failed superstep (worker panic,
	// watchdog timeout, torn commit) is rolled back and re-executed
	// in-process before the run fails. 0 disables supervised recovery.
	StepRetries int
	// Watchdog bounds how long the engine waits for any single worker
	// notification within a superstep; 0 disables it. Combine with
	// StepRetries to retry supersteps that time out.
	Watchdog time.Duration
	// Progress, when non-nil, receives per-superstep statistics.
	Progress func(StepStats)
	// Accum selects the source-side accumulation mode for combiner
	// programs: "" or "auto" (adaptive per superstep), "dense", "sparse",
	// or "off" (legacy per-message batches). See core.AccumMode.
	Accum string
	// AccumBudget is the per-(dispatcher, computer) accumulator size in
	// bytes before an incremental mid-dispatch flush; 0 selects the
	// engine default (256 KiB).
	AccumBudget int
	// MailboxCap bounds each computing worker's mailbox depth in batches
	// (0 = engine default, 64). The serving layer uses it as a per-job
	// memory budget: a misbehaving or oversized job back-pressures its
	// own dispatchers instead of growing process memory.
	MailboxCap int
	// Prefetch spawns an async CSR prefetch actor per dispatcher: a
	// windowed madvise(WILLNEED) walker ahead of each edge cursor with
	// a DONTNEED trail behind it, overlapping page-in I/O with dispatch
	// on out-of-core graphs. Best-effort; inactive for in-memory graphs.
	Prefetch bool
	// PrefetchWindow is the WILLNEED window size in bytes (0 = engine
	// default, 8 MiB). Only meaningful with Prefetch.
	PrefetchWindow int
}

// ParseAccumMode validates an Accum option string ("", "auto", "dense",
// "sparse", "off", "legacy"), for CLIs that want to fail fast on bad
// flag values before opening files.
func ParseAccumMode(s string) (core.AccumMode, error) { return core.ParseAccumMode(s) }

func (o RunOptions) engineConfig() core.Config {
	// An unknown Accum string falls back to auto here; CLIs validate
	// eagerly with ParseAccumMode for a proper error.
	mode, _ := core.ParseAccumMode(o.Accum)
	return core.Config{
		Dispatchers:      o.Dispatchers,
		Computers:        o.Computers,
		MaxSupersteps:    o.Supersteps,
		MaxStepRetries:   o.StepRetries,
		SuperstepTimeout: o.Watchdog,
		Progress:         o.Progress,
		AccumMode:        mode,
		AccumBudget:      o.AccumBudget,
		MailboxCap:       o.MailboxCap,
		Prefetch:         o.Prefetch,
		PrefetchWindow:   o.PrefetchWindow,
	}
}

func (o RunOptions) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Values is the vertex value store produced by a run. Close releases (and
// for temporary stores, deletes) the backing file.
type Values struct {
	vf   *vertexfile.File
	temp bool
}

// NumVertices returns the vertex count.
func (v *Values) NumVertices() int64 { return v.vf.NumVertices() }

// Raw returns vertex x's 63-bit payload.
func (v *Values) Raw(x int64) uint64 { return v.vf.Value(x) }

// Float64 decodes vertex x's payload as a non-negative float64 (the
// encoding used by PageRank and SSSP).
func (v *Values) Float64(x int64) float64 { return vertexfile.UnpackFloat64(v.vf.Value(x)) }

// Uint decodes vertex x's payload as an unsigned integer (BFS levels,
// component labels).
func (v *Values) Uint(x int64) uint64 { return v.vf.Value(x) }

// Digest folds every vertex payload into an FNV-1a digest — a cheap
// whole-result equivalence check: bit-identical values imply equal
// digests, which is how the serving layer compares a resumed job's
// outcome against an undisturbed run's.
func (v *Values) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	n := v.vf.NumVertices()
	for i := int64(0); i < n; i++ {
		w := v.vf.Value(i)
		for b := 0; b < 8; b++ {
			h ^= (w >> (8 * b)) & 0xFF
			h *= prime64
		}
	}
	return h
}

// Close releases the store.
func (v *Values) Close() error {
	err := v.vf.Close()
	if v.temp {
		if rmErr := os.Remove(v.vf.Path()); rmErr != nil && err == nil {
			err = rmErr
		}
	}
	return err
}

// Graph is an open, resident on-disk CSR graph: the mmap'd edge file
// stays hot across any number of runs, which is what a long-lived
// serving process wants (open once, run many jobs). The zero value is
// not usable; obtain one with OpenGraph and Close it when done.
type Graph struct {
	gf   *graph.File
	path string
}

// OpenGraph opens the on-disk CSR graph at path for repeated runs.
func OpenGraph(path string) (*Graph, error) {
	gf, err := graph.OpenFile(path, mmap.ModeAuto)
	if err != nil {
		return nil, err
	}
	return &Graph{gf: gf, path: path}, nil
}

// NumVertices returns the graph's vertex count.
func (g *Graph) NumVertices() int64 { return g.gf.NumVertices }

// NumEdges returns the graph's edge count.
func (g *Graph) NumEdges() int64 { return g.gf.NumEdges }

// Path returns the path the graph was opened from.
func (g *Graph) Path() string { return g.path }

// Close releases the graph's mapping. Runs using it must have finished.
func (g *Graph) Close() error { return g.gf.Close() }

// Run executes prog over the on-disk CSR graph at graphPath and returns
// the run summary plus the resulting vertex values. The caller must Close
// the returned Values.
//
// With opts.Resume set, Run continues the computation recorded in
// opts.ValuesPath instead of starting over: an interrupted superstep is
// rolled back (exactly, when the active-set snapshot Begin persisted
// survived the crash) and execution proceeds from the recorded superstep.
// On failure the Result — when non-nil — still carries what ran.
func Run(graphPath string, prog Program, opts RunOptions) (*Values, *Result, error) {
	g, err := OpenGraph(graphPath)
	if err != nil {
		return nil, nil, err
	}
	defer g.Close()
	return RunOn(g, prog, opts)
}

// RunOn is Run over an already-open Graph, which stays open (and hot)
// afterwards: the serving layer keeps graphs resident and multiplexes
// many jobs — fresh runs and resumes alike — over one Graph handle.
func RunOn(g *Graph, prog Program, opts RunOptions) (*Values, *Result, error) {
	gf := g.gf
	var vals *Values
	resumedFrom := int64(-1)
	recovery := ""
	if opts.Resume {
		if opts.ValuesPath == "" {
			return nil, nil, errors.New("gpsa: Resume requires ValuesPath")
		}
		vf, err := vertexfile.Open(opts.ValuesPath)
		if err != nil {
			return nil, nil, err
		}
		step, err := vf.Recover()
		if err != nil {
			vf.Close()
			return nil, nil, err
		}
		resumedFrom, recovery = step, vf.LastRecovery()
		metrics.Inc(metrics.CtrResumes)
		vals = &Values{vf: vf}
	} else {
		vpath := opts.ValuesPath
		temp := vpath == ""
		if temp {
			f, err := diskio.CreateTemp(filepath.Dir(g.path), ".gpsa-values-*")
			if err != nil {
				return nil, nil, fmt.Errorf("gpsa: temp value file: %w", err)
			}
			vpath = f.Name()
			f.Close()
		}
		vf, err := core.CreateValueFile(vpath, gf, prog)
		if err != nil {
			if temp {
				os.Remove(vpath)
			}
			return nil, nil, err
		}
		vals = &Values{vf: vf, temp: temp}
	}

	cfg := opts.engineConfig()
	if opts.Resume {
		// Supersteps is a total budget counted from superstep 0, so a
		// resumed fixed-budget run stops exactly where the uninterrupted
		// run would have. The engine cap is what remains.
		total := opts.Supersteps
		if total <= 0 {
			total = core.DefaultMaxSupersteps
		}
		remaining := total - int(vals.vf.Epoch())
		if remaining <= 0 || vals.vf.Converged() {
			res := &Result{Converged: vals.vf.Converged(), ResumedFrom: resumedFrom, Recovery: recovery}
			return vals, res, nil
		}
		cfg.MaxSupersteps = remaining
	}

	eng, err := core.New(gf, vals.vf, prog, cfg)
	if err != nil {
		vals.Close()
		return nil, nil, err
	}
	res, err := eng.RunContext(opts.ctx())
	if res != nil && opts.Resume {
		res.ResumedFrom = resumedFrom
		res.Recovery = recovery
	}
	if err != nil {
		// Close seals the mapping; for persistent files the state on disk
		// stays resumable (a cancelled superstep was already rolled back,
		// a crashed one is rolled back on the next Open+Recover).
		vals.Close()
		return nil, res, err
	}
	return vals, res, nil
}

// Resume reopens a persistent value file (after a crash or a previous
// partial run), rolls back any interrupted superstep, and continues
// running prog. The program must be the one the file was created with.
// It is shorthand for Run with opts.Resume and opts.ValuesPath set.
func Resume(graphPath, valuesPath string, prog Program, opts RunOptions) (*Values, *Result, error) {
	opts.Resume = true
	opts.ValuesPath = valuesPath
	return Run(graphPath, prog, opts)
}

// ValuesInfo is a cheap description of a value file's recorded
// progress, for tools deciding whether (and how) to resume.
type ValuesInfo struct {
	NumVertices int64
	Epoch       int64   // completed supersteps
	InProgress  bool    // an uncommitted superstep was interrupted
	Converged   bool    // the computation finished
	Aggregate   float64 // aggregator value at the last commit
	Torn        bool    // the header was torn and has been rolled back
}

// InspectValues opens, validates, and summarizes the value file at path
// without running anything (a torn header is rolled back in the process,
// as on any Open). An error means the file is not resumable (missing,
// truncated, corrupt, or digest-mismatched).
func InspectValues(path string) (ValuesInfo, error) {
	vf, err := vertexfile.Open(path)
	if err != nil {
		return ValuesInfo{}, err
	}
	defer vf.Close()
	return ValuesInfo{
		NumVertices: vf.NumVertices(),
		Epoch:       vf.Epoch(),
		InProgress:  vf.InProgress(),
		Converged:   vf.Converged(),
		Aggregate:   vf.Aggregate(),
		Torn:        vf.Torn(),
	}, nil
}

// Resumable reports whether path holds a value file a -resume run could
// continue from.
func Resumable(path string) bool {
	_, err := InspectValues(path)
	return err == nil
}

// RunGraph executes prog over an in-memory graph with no files at all:
// the CSR is mirrored as an in-memory record image and vertex values live
// in an in-memory two-column store (durability and crash recovery
// naturally do not apply). Ideal for embedding GPSA as a library on
// graphs that fit in memory.
func RunGraph(g *CSR, prog Program, opts RunOptions) (*Values, *Result, error) {
	gf, err := graph.NewMemoryFile(g)
	if err != nil {
		return nil, nil, err
	}
	vf, err := vertexfile.NewMemory(g.NumVertices, prog.Init)
	if err != nil {
		return nil, nil, err
	}
	vals := &Values{vf: vf}
	cfg := opts.engineConfig()
	cfg.DisableSync = true // no backing file to sync
	eng, err := core.New(gf, vf, prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := eng.RunContext(opts.ctx())
	if err != nil {
		return nil, res, err
	}
	return vals, res, nil
}
