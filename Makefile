# GPSA-Go — common tasks

GO ?= go
REV := $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: all build test race lint lint-escape vet fmt bench bench-diff bench-micro bench-smoke bench-scale repro examples check torture chaos disktorture clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/actor ./internal/core ./internal/cluster ./internal/xstream ./internal/vertexfile ./internal/crashtest ./internal/chaostest ./internal/metrics ./internal/serve

# gpsa-lint: the repository's own static analyzers (internal/lint) —
# actor discipline, mmap aliasing, determinism, context plumbing,
# durability error handling, //gpsa:noalloc hot-path allocation checks,
# arena-pool acquire/release discipline, and frame-switch
# exhaustiveness. Zero unsuppressed findings required; see DESIGN.md
# "Static invariants" for the rule catalogue and the
# //lint:<analyzer> <reason> suppression syntax.
lint:
	$(GO) run ./cmd/gpsa-lint ./...

# The compiler-backed escape gate on top of `lint`: for every package
# with //gpsa:noalloc pragmas, run `go build -gcflags='-m -m'` and fail
# on any heap allocation the compiler proves inside a marked hot-path
# function (cold failure paths and justified suppressions excepted).
lint-escape:
	$(GO) run ./cmd/gpsa-lint -escape ./...

# The full pre-merge gate: vet and gpsa-lint, the entire test suite under
# the race detector (includes the fault-injection recovery tests), a
# shuffled-order pass over the engine and actor packages to catch
# inter-test state leaks, the kill-torture harness against the real
# binary, plus the chaos smoke slices: one node kill + one corrupted
# frame, and the elastic-membership schedule (drain under load, mid-job
# join, permanent-death redistribution, kill mid-migration) on live
# 3-node clusters, plus the serving-layer smoke slice (submit, complete,
# cache hit, SIGTERM drain against the real gpsa-serve binary). The full
# randomized schedules are `make torture` and `make chaos` (nightly CI).
check:
	$(GO) vet ./...
	$(MAKE) lint
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/core
	$(GO) test -shuffle=on -count=1 ./internal/core ./internal/actor
	$(GO) test -count=1 -run 'Torture|Interrupt|ExitCodes' ./internal/crashtest
	$(GO) test -count=1 -run 'TestChaosSmoke|TestChaosMigrationSmoke|TestChaosElastic|TestChaosCorruptFrameDetected' ./internal/chaostest
	$(GO) test -count=1 -run 'TestServeSmoke' ./internal/servetest
	$(GO) test -count=1 -run 'TestDiskSmoke|TestDiskReadFaultsTyped' ./internal/disktest
	$(MAKE) bench-smoke

# Kill-torture: run cmd/gpsa as a subprocess, SIGKILL it at >=20
# randomized supersteps/commit phases (including kills landing inside
# -resume runs), resume with -resume, and require final values
# bit-identical to an uninterrupted run; then the serving-layer torture:
# SIGKILL gpsa-serve with >=4 concurrent jobs in flight (twice — the
# second kill lands mid-resume), restart with -resume-jobs, and require
# every job bit-identical to an undisturbed schedule, plus the overload
# (429 shedding), SIGTERM drain, and deadline-budget scenarios. Skipped
# by `go test -short`.
torture:
	$(GO) test -count=1 -v -run 'Torture|Interrupt|ExitCodes' ./internal/crashtest
	$(GO) test -count=1 -v -timeout 600s -run 'TestServe' ./internal/servetest

# Hostile-disk torture: the full storage fault matrix from
# internal/disktest — every write-path disk.* site armed as a
# persistent storm against the real CSR writer and engine (the run must
# complete bit-identical to an undisturbed baseline or fail typed and
# recover to it once the disk heals), the read-side error taxonomy
# (EIO vs at-rest bit-rot), the gpsa-serve degraded-mode enter/exit
# cycle against the real binary, and the cluster-replica scrub/repair
# scenario. Writes the per-site outcome matrix to disktorture.json.
disktorture:
	GPSA_DISKTEST_REPORT=disktorture.json $(GO) test -count=1 -v -timeout 600s -run 'TestDisk' ./internal/disktest

# Network torture: the full seeded chaos schedule over a live 3-node
# in-process cluster — randomized node kills mid-dispatch and
# mid-barrier, one-way partitions healing after jitter, connection
# resets, torn and bit-flipped frames — every run required to end
# bit-identical to an undisturbed baseline with rollback/rejoin metrics
# asserted. Fixed seeds; see internal/chaostest.
chaos:
	GPSA_CHAOS=1 $(GO) test -count=1 -v -timeout 600s -run 'TestChaos' ./internal/chaostest

vet:
	$(GO) vet ./...
	gofmt -l .

# Message hot-path benchmark trajectory: every algorithm x accumulator
# mode on a generated R-MAT power-law graph, written as a
# machine-readable BENCH_<rev>.json so successive revisions can be
# compared (msgs/sec, supersteps/sec, alloc/msg, wall time per cell).
bench:
	$(GO) run ./cmd/gpsa-bench -exp hotpath -rev $(REV) -json BENCH_$(REV).json

# Diff two hot-path artifacts; exits nonzero when NEW regresses any
# cell by >10% throughput or >0.2 B/msg allocation against OLD.
# Usage: make bench-diff OLD=BENCH_a.json NEW=BENCH_b.json
OLD ?= $(lastword $(sort $(wildcard BENCH_*.json)))
NEW ?= BENCH_$(REV).json
bench-diff:
	$(GO) run ./cmd/gpsa-compare -bench $(OLD) $(NEW)

# Out-of-core COST sweep (R-MAT ladder up to paper-scale shapes, core
# sweep vs single-threaded GraphChi/X-Stream references); writes
# COST_<rev>.json. Hours-scale at default shapes — see -shapes to trim.
bench-scale:
	$(GO) run ./cmd/gpsa-bench -exp scale -rev $(REV) -cost-json COST_$(REV).json

# Fast correctness gate over the full hotpath matrix at toy scale.
bench-smoke:
	$(GO) test -count=1 -run TestHotPathSmoke ./internal/bench

# One benchmark iteration per paper figure cell.
bench-micro:
	$(GO) test -bench=. -benchmem -benchtime 1x .

# Regenerate the paper's full evaluation (Table I, Figs 7-11, ablations,
# scalability) at default scales; see EXPERIMENTS.md for recorded output.
repro:
	$(GO) run ./cmd/gpsa-bench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pagerank-web
	$(GO) run ./examples/bfs-social
	$(GO) run ./examples/cc-components
	$(GO) run ./examples/fault-tolerance
	$(GO) run ./examples/distributed

clean:
	$(GO) clean ./...
