package gpsa_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds every command-line tool and drives the full
// workflow: generate -> preprocess -> run -> cluster -> inspect.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	bin := t.TempDir()
	work := t.TempDir()
	for _, tool := range []string{"gpsa", "gpsa-gen", "gpsa-preprocess", "gpsa-bench", "gpsa-cluster", "gpsa-inspect", "gpsa-compare"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		cmd.Dir = work
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return string(out)
	}

	out := run("gpsa-gen", "-dataset", "google", "-scale", "256", "-out", "g.gpsa", "-text", "g.txt", "-symmetrize")
	if !strings.Contains(out, "google@1/256") {
		t.Fatalf("gpsa-gen output: %s", out)
	}

	out = run("gpsa", "-graph", "g.gpsa", "-algo", "pagerank", "-top", "3")
	if !strings.Contains(out, "top 3 vertices") || !strings.Contains(out, "ran 5 supersteps") {
		t.Fatalf("gpsa pagerank output: %s", out)
	}

	out = run("gpsa", "-graph", "g.gpsa", "-algo", "bfs", "-root", "0")
	if !strings.Contains(out, "reached") {
		t.Fatalf("gpsa bfs output: %s", out)
	}

	out = run("gpsa", "-graph", "g.gpsa-sym", "-algo", "cc")
	if !strings.Contains(out, "components") {
		t.Fatalf("gpsa cc output: %s", out)
	}

	out = run("gpsa-preprocess", "-in", "g.txt", "-out", "g2.gpsa")
	if !strings.Contains(out, "wrote g2.gpsa") {
		t.Fatalf("gpsa-preprocess output: %s", out)
	}

	// The preprocessed graph must be runnable too.
	out = run("gpsa", "-graph", "g2.gpsa", "-algo", "pagerank", "-top", "1")
	if !strings.Contains(out, "ran 5 supersteps") {
		t.Fatalf("gpsa on preprocessed graph: %s", out)
	}

	// Persistent values enable resumption across process boundaries.
	run("gpsa", "-graph", "g.gpsa", "-algo", "pagerank", "-supersteps", "2", "-values", "pr.gpvf")
	if _, err := os.Stat(filepath.Join(work, "pr.gpvf")); err != nil {
		t.Fatalf("persistent value file missing: %v", err)
	}

	out = run("gpsa-cluster", "-graph", "g.gpsa", "-algo", "cc", "-nodes", "2")
	if !strings.Contains(out, "cluster of") {
		t.Fatalf("gpsa-cluster output: %s", out)
	}

	out = run("gpsa-inspect", "-graph", "g.gpsa", "-values", "pr.gpvf")
	if !strings.Contains(out, "out-degree histogram") || !strings.Contains(out, "epoch:") {
		t.Fatalf("gpsa-inspect output: %s", out)
	}

	// Bad invocations must fail loudly.
	cmd := exec.Command(filepath.Join(bin, "gpsa"), "-graph", "missing.gpsa", "-algo", "pagerank")
	cmd.Dir = work
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("gpsa with missing graph succeeded: %s", out)
	}
	cmd = exec.Command(filepath.Join(bin, "gpsa"), "-graph", "g.gpsa", "-algo", "nonsense")
	cmd.Dir = work
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("gpsa with unknown algorithm succeeded: %s", out)
	}
}
