package gpsa

import (
	"context"
	"time"

	"repro/internal/cluster"
)

// ClusterOptions tunes RunDistributed.
type ClusterOptions struct {
	// Nodes is the number of cluster nodes (default 2); small graphs may
	// run on fewer.
	Nodes int
	// Supersteps caps the run (0 = run to convergence, up to 100).
	Supersteps int
	// ComputersPerNode sizes each node's computing actor pool (0 = 2).
	ComputersPerNode int
	// Context, when non-nil, cancels the run between supersteps.
	Context context.Context
	// StepRetries is the rollback-and-retry budget, mirroring
	// RunOptions.StepRetries for single-node runs: a superstep that loses
	// a node (crash, wedge, corrupt frame) is rolled back across the
	// cluster, the dead node replaced via the rejoin handshake, and the
	// step retried — at most this many times per run. Zero fails fast.
	StepRetries int
	// HeartbeatInterval is how often idle nodes ping the coordinator
	// (0 = 500ms; negative disables).
	HeartbeatInterval time.Duration
	// NodeTimeout is how long the coordinator tolerates total silence
	// from a node before declaring it dead (0 = 15s; negative disables).
	NodeTimeout time.Duration
	// PhaseTimeout bounds heartbeat-only stretches inside a phase — the
	// wedged-node and one-way-partition detector (0 = 4x NodeTimeout;
	// negative disables).
	PhaseTimeout time.Duration
	// RecoveryTimeout bounds one rollback/rejoin cycle (0 = 30s).
	RecoveryTimeout time.Duration
	// Splits is how many vertex intervals each initial node starts with
	// (0 = 1). Elastic membership migrates whole intervals, so Splits >= 2
	// gives joins and rebalancing sub-node granularity to move.
	Splits int
	// Events schedules elastic-membership operations — mid-job joins and
	// drains — at superstep barriers.
	Events []MembershipEvent
	// RedistributeDead retires a crashed node permanently, salvaging its
	// sealed value file and migrating its intervals to the survivors,
	// instead of restarting a same-id replacement.
	RedistributeDead bool
	// Rebalance runs the greedy edge-weight balancer at every barrier,
	// migrating intervals toward the balance point (free once balanced).
	Rebalance bool
}

// ClusterResult summarizes a distributed run.
type ClusterResult = cluster.Result

// MembershipEvent schedules a node join or drain at a superstep barrier.
type MembershipEvent = cluster.MembershipEvent

// Assignment is one row of the live interval -> node routing table.
type Assignment = cluster.Assignment

// Membership operations for ClusterOptions.Events.
const (
	OpJoin  = cluster.OpJoin
	OpDrain = cluster.OpDrain
)

// RunDistributed executes prog over the on-disk CSR graph at graphPath on
// an in-process TCP cluster — the paper's actor model extended across
// nodes. It returns the final payload of every vertex. Each node owns a
// contiguous, edge-balanced vertex interval with its own value file;
// cross-node messages travel over loopback TCP and fold on arrival, so
// the dispatch/compute overlap spans the cluster.
func RunDistributed(graphPath string, prog Program, opts ClusterOptions) (*ClusterResult, []uint64, error) {
	policy := cluster.RestartDead
	if opts.RedistributeDead {
		policy = cluster.RedistributeDead
	}
	return cluster.Run(graphPath, prog, cluster.Config{
		Context:           opts.Context,
		Nodes:             opts.Nodes,
		MaxSupersteps:     opts.Supersteps,
		StepRetries:       opts.StepRetries,
		HeartbeatInterval: opts.HeartbeatInterval,
		NodeTimeout:       opts.NodeTimeout,
		PhaseTimeout:      opts.PhaseTimeout,
		RecoveryTimeout:   opts.RecoveryTimeout,
		Splits:            opts.Splits,
		Events:            opts.Events,
		DeadNodes:         policy,
		Rebalance:         opts.Rebalance,
		Node:              cluster.NodeConfig{Computers: opts.ComputersPerNode},
	})
}
