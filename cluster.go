package gpsa

import (
	"context"

	"repro/internal/cluster"
)

// ClusterOptions tunes RunDistributed.
type ClusterOptions struct {
	// Nodes is the number of cluster nodes (default 2); small graphs may
	// run on fewer.
	Nodes int
	// Supersteps caps the run (0 = run to convergence, up to 100).
	Supersteps int
	// ComputersPerNode sizes each node's computing actor pool (0 = 2).
	ComputersPerNode int
	// Context, when non-nil, cancels the run between supersteps.
	Context context.Context
}

// ClusterResult summarizes a distributed run.
type ClusterResult = cluster.Result

// RunDistributed executes prog over the on-disk CSR graph at graphPath on
// an in-process TCP cluster — the paper's actor model extended across
// nodes. It returns the final payload of every vertex. Each node owns a
// contiguous, edge-balanced vertex interval with its own value file;
// cross-node messages travel over loopback TCP and fold on arrival, so
// the dispatch/compute overlap spans the cluster.
func RunDistributed(graphPath string, prog Program, opts ClusterOptions) (*ClusterResult, []uint64, error) {
	return cluster.Run(graphPath, prog, cluster.Config{
		Context:       opts.Context,
		Nodes:         opts.Nodes,
		MaxSupersteps: opts.Supersteps,
		Node:          cluster.NodeConfig{Computers: opts.ComputersPerNode},
	})
}
