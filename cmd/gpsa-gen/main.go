// Command gpsa-gen generates deterministic synthetic graphs — either one
// of the paper's Table I datasets (R-MAT-shaped) or custom dimensions —
// in .gpsa CSR form, text edge-list form, or both.
//
// Usage:
//
//	gpsa-gen -dataset soc-pokec -scale 16 -out pokec.gpsa
//	gpsa-gen -vertices 100000 -edges 1000000 -out custom.gpsa -text custom.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		dataset    = flag.String("dataset", "", "paper dataset: google, soc-pokec, soc-liveJournal, twitter-2010")
		scale      = flag.Int64("scale", 1, "shrink the dataset by 1/scale")
		vertices   = flag.Int64("vertices", 0, "custom vertex count (with -edges)")
		edges      = flag.Int64("edges", 0, "custom edge count")
		seed       = flag.Int64("seed", 1, "generator seed")
		weighted   = flag.Bool("weighted", false, "attach uniform random weights")
		er         = flag.Bool("erdos-renyi", false, "uniform random graph instead of R-MAT")
		out        = flag.String("out", "", "output .gpsa CSR file")
		text       = flag.String("text", "", "output text edge-list file")
		symmetrize = flag.Bool("symmetrize", false, "also write <out>-sym.gpsa (for CC)")
		compact    = flag.Bool("compact", false, "write the varint-delta compact CSR format")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("gpsa-gen", buildinfo.Version())
		return
	}
	if *out == "" && *text == "" {
		fmt.Fprintln(os.Stderr, "gpsa-gen: at least one of -out / -text is required")
		flag.Usage()
		os.Exit(2)
	}

	v, e := *vertices, *edges
	name := "custom"
	if *dataset != "" {
		ds, ok := gen.FindDataset(*dataset)
		if !ok {
			fmt.Fprintf(os.Stderr, "gpsa-gen: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		scaled := ds.Scaled(*scale)
		v, e, name = scaled.Vertices, scaled.Edges, scaled.Name
	}
	if v <= 0 || e < 0 {
		fmt.Fprintln(os.Stderr, "gpsa-gen: need -dataset or positive -vertices/-edges")
		os.Exit(2)
	}

	start := time.Now()
	var el []graph.Edge
	var err error
	if *er {
		el, err = gen.ErdosRenyi(v, e, *seed, *weighted)
	} else {
		el, err = gen.RMAT(gen.RMATConfig{Vertices: v, Edges: e, Seed: *seed, Weighted: *weighted})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-gen: %v\n", err)
		os.Exit(1)
	}
	g, err := graph.FromEdges(el, v, *weighted)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("generated %s: %d vertices, %d edges (%v)\n", name, v, e, time.Since(start))

	if *out != "" {
		write := graph.WriteFile
		if *compact {
			write = graph.WriteFileCompact
		}
		if err := write(*out, g); err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-gen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
		if *symmetrize {
			sym := g.Symmetrize()
			symPath := *out + "-sym"
			if err := write(symPath, sym); err != nil {
				fmt.Fprintf(os.Stderr, "gpsa-gen: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d edges)\n", symPath, sym.NumEdges)
		}
	}
	if *text != "" {
		f, err := os.Create(*text)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-gen: %v\n", err)
			os.Exit(1)
		}
		if err := graph.WriteEdgeList(f, el, *weighted); err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-gen: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-gen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *text)
	}
}
