// Command gpsa-cluster runs a graph algorithm on an in-process GPSA
// cluster: N nodes coordinated over loopback TCP, each owning an
// edge-balanced vertex interval (the paper's actor model extended to
// distributed operation).
//
// Usage:
//
//	gpsa-cluster -graph web.gpsa -algo pagerank -nodes 4
//	gpsa-cluster -graph web-sym.gpsa -algo cc -nodes 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/algorithms"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "path to a .gpsa CSR graph (required)")
		algo       = flag.String("algo", "pagerank", "algorithm: pagerank, bfs, cc, sssp")
		root       = flag.Uint("root", 0, "root/source vertex for bfs and sssp")
		nodes      = flag.Int("nodes", 2, "cluster size")
		supersteps = flag.Int("supersteps", 0, "superstep cap (0 = algorithm default)")
		computers  = flag.Int("computers", 0, "computing actors per node (0 = default)")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "gpsa-cluster: -graph is required")
		flag.Usage()
		os.Exit(2)
	}

	var prog gpsa.Program
	switch *algo {
	case "pagerank":
		prog = algorithms.PageRank{}
		if *supersteps == 0 {
			*supersteps = 5
		}
	case "bfs":
		prog = algorithms.BFS{Root: gpsa.VertexID(*root)}
	case "cc":
		prog = algorithms.ConnectedComponents{}
	case "sssp":
		prog = algorithms.SSSP{Source: gpsa.VertexID(*root)}
	default:
		fmt.Fprintf(os.Stderr, "gpsa-cluster: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	res, values, err := gpsa.RunDistributed(*graphPath, prog, gpsa.ClusterOptions{
		Nodes:            *nodes,
		Supersteps:       *supersteps,
		ComputersPerNode: *computers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-cluster: %v\n", err)
		os.Exit(1)
	}
	saved := 0.0
	if res.Messages > 0 {
		saved = 100 * (1 - float64(res.Delivered)/float64(res.Messages))
	}
	fmt.Printf("cluster of %d nodes: %d supersteps in %v (converged=%v)\n",
		res.Nodes, res.Supersteps, res.Duration, res.Converged)
	fmt.Printf("traffic: %d messages generated, %d delivered (combining saved %.1f%%)\n",
		res.Messages, res.Delivered, saved)
	fmt.Printf("computed values for %d vertices\n", len(values))
}
