// Command gpsa-cluster runs a graph algorithm on an in-process GPSA
// cluster: N nodes coordinated over loopback TCP, each owning an
// edge-balanced vertex interval (the paper's actor model extended to
// distributed operation).
//
// Usage:
//
//	gpsa-cluster -graph web.gpsa -algo pagerank -nodes 4
//	gpsa-cluster -graph web-sym.gpsa -algo cc -nodes 3 -retries 3
//
// With -retries > 0 the run survives node deaths: a failed superstep is
// rolled back across the cluster, the dead node is replaced via the
// rejoin handshake (replaying its interval from its sealed value file),
// and the step retried. Chaos can be injected into a run through the
// GPSA_FAULT environment variable — the same seeded fault plans the
// torture harness uses (internal/chaostest), e.g.
//
//	GPSA_FAULT='site=cluster.node.kill.barrier,after=2' gpsa-cluster -graph g.gpsa -algo cc -nodes 3 -retries 4
//
// Membership is elastic: -drain shrinks the cluster mid-job (every
// interval the node owns live-migrates to the survivors before it
// exits), -join grows it (new nodes boot mid-job and receive intervals
// by migration), and -redistribute retires crashed nodes permanently
// instead of restarting them. -splits controls migration granularity.
//
//	gpsa-cluster -graph g.gpsa -algo cc -nodes 3 -splits 4 -drain 1@2
//	gpsa-cluster -graph g.gpsa -algo pagerank -nodes 3 -splits 4 -join 2 -rebalance
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/buildinfo"
	"repro/internal/fault"
)

const (
	exitUsage       = 2
	exitInterrupted = 3
)

func main() { os.Exit(run()) }

func run() int {
	var (
		graphPath  = flag.String("graph", "", "path to a .gpsa CSR graph (required)")
		algo       = flag.String("algo", "pagerank", "algorithm: pagerank, bfs, cc, sssp")
		root       = flag.Uint("root", 0, "root/source vertex for bfs and sssp")
		nodes      = flag.Int("nodes", 2, "cluster size")
		supersteps = flag.Int("supersteps", 0, "superstep cap (0 = algorithm default)")
		computers  = flag.Int("computers", 0, "computing actors per node (0 = default)")
		retries    = flag.Int("retries", 0, "rollback-and-retry a failed superstep up to N times, replacing dead nodes (0 = fail fast)")
		nodeTO     = flag.Duration("node-timeout", 0, "declare a totally silent node dead after this long (0 = 15s)")
		phaseTO    = flag.Duration("phase-timeout", 0, "fail a superstep when a node heartbeats without progress this long (0 = 4x node-timeout)")
		recoveryTO = flag.Duration("recovery-timeout", 0, "bound one rollback/rejoin cycle (0 = 30s)")
		heartbeat  = flag.Duration("heartbeat", 0, "idle-node heartbeat interval (0 = 500ms, negative disables)")
		splits     = flag.Int("splits", 0, "vertex intervals per node (0 = 1); >= 2 gives migration sub-node granularity")
		drains     = flag.String("drain", "", "drain nodes mid-job: comma-separated node@step entries, e.g. 1@2,0@5")
		joins      = flag.String("join", "", "join new nodes mid-job: comma-separated barrier steps, e.g. 2,5")
		rebalance  = flag.Bool("rebalance", false, "migrate intervals toward the edge-weight balance point at every barrier")
		redist     = flag.Bool("redistribute", false, "retire crashed nodes permanently, salvaging their intervals to survivors (default: restart them)")
		verbose    = flag.Bool("v", false, "report armed fault plans, recovery activity, and the final interval assignment table")
	)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintln(w, "usage: gpsa-cluster -graph g.gpsa [-algo pagerank] [-nodes 3] [flags]")
		flag.PrintDefaults()
		fmt.Fprintln(w, `
exit codes:
  0  success
  1  run failed
  2  usage error
  3  interrupted (SIGINT/SIGTERM); each node's last committed superstep stays durable`)
	}
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("gpsa-cluster", buildinfo.Version())
		return 0
	}
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "gpsa-cluster: -graph is required")
		flag.Usage()
		return exitUsage
	}

	var prog gpsa.Program
	switch *algo {
	case "pagerank":
		prog = algorithms.PageRank{}
		if *supersteps == 0 {
			*supersteps = 5
		}
	case "bfs":
		prog = algorithms.BFS{Root: gpsa.VertexID(*root)}
	case "cc":
		prog = algorithms.ConnectedComponents{}
	case "sssp":
		prog = algorithms.SSSP{Source: gpsa.VertexID(*root)}
	default:
		fmt.Fprintf(os.Stderr, "gpsa-cluster: unknown algorithm %q\n", *algo)
		return exitUsage
	}

	events, err := parseEvents(*drains, *joins)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-cluster: %v\n", err)
		return exitUsage
	}

	if armed, err := fault.ActivateFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-cluster: %v\n", err)
		return exitUsage
	} else if armed && *verbose {
		fmt.Fprintf(os.Stderr, "gpsa-cluster: fault plan armed from %s\n", fault.EnvVar)
	}

	// SIGINT/SIGTERM cancel the run's context: the coordinator stops
	// issuing supersteps, nodes abandon redial storms mid-backoff, and
	// every sealed value file keeps its last committed superstep.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	res, values, err := gpsa.RunDistributed(*graphPath, prog, gpsa.ClusterOptions{
		Nodes:             *nodes,
		Supersteps:        *supersteps,
		ComputersPerNode:  *computers,
		Context:           ctx,
		StepRetries:       *retries,
		HeartbeatInterval: *heartbeat,
		NodeTimeout:       *nodeTO,
		PhaseTimeout:      *phaseTO,
		RecoveryTimeout:   *recoveryTO,
		Splits:            *splits,
		Events:            events,
		RedistributeDead:  *redist,
		Rebalance:         *rebalance,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-cluster: %v\n", err)
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			return exitInterrupted
		}
		return 1
	}
	saved := 0.0
	if res.Messages > 0 {
		saved = 100 * (1 - float64(res.Delivered)/float64(res.Messages))
	}
	fmt.Printf("cluster of %d nodes: %d supersteps in %v (converged=%v)\n",
		res.Nodes, res.Supersteps, res.Duration, res.Converged)
	fmt.Printf("traffic: %d messages generated, %d delivered (combining saved %.1f%%)\n",
		res.Messages, res.Delivered, saved)
	if res.Rollbacks > 0 || res.Rejoins > 0 {
		fmt.Printf("recovery: %d superstep rollbacks, %d node rejoins\n", res.Rollbacks, res.Rejoins)
	}
	if res.Migrations > 0 || res.Redistributions > 0 || res.Joins > 0 || res.Drains > 0 {
		fmt.Printf("membership: %d joins, %d drains, %d interval migrations, %d dead-node redistributions; %d members at end\n",
			res.Joins, res.Drains, res.Migrations, res.Redistributions, res.LiveNodes)
	}
	// The assignment table is the live routing state: after any
	// migration it is the only place the final interval placement shows.
	if *verbose || res.Migrations > 0 || res.Redistributions > 0 {
		fmt.Println("interval assignments:")
		for _, a := range res.Assignments {
			fmt.Printf("  interval %3d  vertices [%8d, %8d)  -> node %d\n", a.Interval, a.First, a.End, a.Node)
		}
	}
	fmt.Printf("computed values for %d vertices\n", len(values))
	return 0
}

// parseEvents builds the membership schedule from the -drain (node@step)
// and -join (step) flag lists.
func parseEvents(drains, joins string) ([]gpsa.MembershipEvent, error) {
	var events []gpsa.MembershipEvent
	for _, ent := range splitList(drains) {
		var node int
		var step int64
		if _, err := fmt.Sscanf(ent, "%d@%d", &node, &step); err != nil {
			return nil, fmt.Errorf("bad -drain entry %q, want node@step", ent)
		}
		events = append(events, gpsa.MembershipEvent{Step: step, Op: gpsa.OpDrain, Node: node})
	}
	for _, ent := range splitList(joins) {
		var step int64
		if _, err := fmt.Sscanf(ent, "%d", &step); err != nil {
			return nil, fmt.Errorf("bad -join entry %q, want a superstep number", ent)
		}
		events = append(events, gpsa.MembershipEvent{Step: step, Op: gpsa.OpJoin})
	}
	return events, nil
}

func splitList(s string) []string {
	var out []string
	for _, ent := range strings.Split(s, ",") {
		if ent = strings.TrimSpace(ent); ent != "" {
			out = append(out, ent)
		}
	}
	return out
}
