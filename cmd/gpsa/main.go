// Command gpsa runs a graph algorithm on a preprocessed CSR graph with
// the GPSA engine.
//
// Usage:
//
//	gpsa -graph web.gpsa -algo pagerank [-supersteps 5] [-top 10]
//	gpsa -graph web.gpsa -algo bfs -root 0
//	gpsa -graph web-sym.gpsa -algo cc
//	gpsa -graph weighted.gpsa -algo sssp -root 0
//	gpsa -graph web.gpsa -algo deltapagerank -epsilon 1e-5
//
// Prepare inputs with gpsa-preprocess (from an edge list) or gpsa-gen
// (synthetic).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "path to a .gpsa CSR graph (required)")
		algo        = flag.String("algo", "pagerank", "algorithm: pagerank, deltapagerank, bfs, cc, sssp")
		root        = flag.Uint("root", 0, "root/source vertex for bfs and sssp")
		supersteps  = flag.Int("supersteps", 0, "superstep cap (0 = algorithm default)")
		top         = flag.Int("top", 10, "print the top-N vertices by result value")
		epsilon     = flag.Float64("epsilon", 0, "delta-pagerank residual cut-off (0 = 1e-4)")
		dispatchers = flag.Int("dispatchers", 0, "dispatcher actors (0 = auto)")
		computers   = flag.Int("computers", 0, "computing actors (0 = auto)")
		values      = flag.String("values", "", "persistent vertex value file (enables crash recovery)")
		retries     = flag.Int("retries", 0, "retry a failed superstep up to N times with rollback (0 = fail fast)")
		watchdog    = flag.Duration("watchdog", 0, "abort a superstep when a worker is silent this long (0 = off)")
		dump        = flag.String("dump", "", "write per-vertex results as 'vertex<TAB>value' lines to this file")
		verbose     = flag.Bool("v", false, "print per-superstep progress")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "gpsa: -graph is required")
		flag.Usage()
		os.Exit(2)
	}

	opts := gpsa.RunOptions{
		Supersteps:  *supersteps,
		Dispatchers: *dispatchers,
		Computers:   *computers,
		ValuesPath:  *values,
		StepRetries: *retries,
		Watchdog:    *watchdog,
	}
	if *verbose {
		opts.Progress = func(s gpsa.StepStats) {
			fmt.Fprintf(os.Stderr, "superstep %d: %d messages, %d updates, %v\n",
				s.Step, s.Messages, s.Updates, s.Duration)
		}
	}

	var res *gpsa.Result
	var scores []float64
	var err error
	switch *algo {
	case "pagerank":
		scores, res, err = gpsa.PageRank(*graphPath, opts)
	case "deltapagerank":
		scores, res, err = gpsa.DeltaPageRank(*graphPath, *epsilon, opts)
	case "sssp":
		scores, res, err = gpsa.SSSP(*graphPath, gpsa.VertexID(*root), opts)
	case "bfs":
		var levels []int64
		levels, res, err = gpsa.BFS(*graphPath, gpsa.VertexID(*root), opts)
		if err == nil {
			scores = make([]float64, len(levels))
			reached := 0
			for v, l := range levels {
				scores[v] = float64(l)
				if l >= 0 {
					reached++
				}
			}
			fmt.Printf("reached %d of %d vertices from root %d\n", reached, len(levels), *root)
		}
	case "cc":
		var labels []gpsa.VertexID
		labels, res, err = gpsa.Components(*graphPath, opts)
		if err == nil {
			comp := map[gpsa.VertexID]int{}
			for _, l := range labels {
				comp[l]++
			}
			fmt.Printf("%d components (largest %d of %d vertices)\n",
				len(comp), largest(comp), len(labels))
			scores = make([]float64, len(labels))
			for v, l := range labels {
				scores[v] = float64(l)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "gpsa: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("ran %d supersteps in %v (%d messages, %d updates, converged=%v)\n",
		res.Supersteps, res.Duration, res.Messages, res.Updates, res.Converged)
	if res.Retries > 0 {
		fmt.Printf("recovered from %d superstep failure(s) by rollback and retry\n", res.Retries)
	}
	if *dump != "" {
		if err := dumpScores(*dump, scores); err != nil {
			fmt.Fprintf(os.Stderr, "gpsa: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *dump)
	}
	if *top > 0 && (*algo == "pagerank" || *algo == "deltapagerank") {
		printTop(scores, *top)
	}
}

func dumpScores(path string, scores []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	for v, s := range scores {
		fmt.Fprintf(bw, "%d\t%g\n", v, s)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func largest(m map[gpsa.VertexID]int) int {
	best := 0
	for _, n := range m {
		if n > best {
			best = n
		}
	}
	return best
}

func printTop(scores []float64, n int) {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if n > len(idx) {
		n = len(idx)
	}
	fmt.Printf("top %d vertices:\n", n)
	for _, v := range idx[:n] {
		fmt.Printf("  %8d  %g\n", v, scores[v])
	}
}
