// Command gpsa runs a graph algorithm on a preprocessed CSR graph with
// the GPSA engine.
//
// Usage:
//
//	gpsa -graph web.gpsa -algo pagerank [-supersteps 5] [-top 10]
//	gpsa -graph web.gpsa -algo bfs -root 0
//	gpsa -graph web-sym.gpsa -algo cc
//	gpsa -graph weighted.gpsa -algo sssp -root 0
//	gpsa -graph web.gpsa -algo deltapagerank -epsilon 1e-5
//
// With -values the vertex values live in a persistent file; a run killed
// or interrupted mid-way leaves that file cleanly resumable, and adding
// -resume continues the computation instead of starting over:
//
//	gpsa -graph web.gpsa -algo pagerank -values pr.gpvf
//	^C (or SIGKILL) ...
//	gpsa -graph web.gpsa -algo pagerank -values pr.gpvf -resume
//
// SIGINT/SIGTERM stop the run gracefully: an in-flight superstep is
// rolled back and the value file sealed before the process exits (code
// 3) with the exact resume command on stderr.
//
// Exit codes:
//
//	0  success
//	2  usage error (bad flags, unknown algorithm, missing graph)
//	3  run stopped but left resumable state in -values (interrupt,
//	   injected crash, recoverable failure)
//	4  fatal: the run failed with no resumable state (or -values is
//	   corrupt beyond the format's rollback guarantees)
//
// Prepare inputs with gpsa-preprocess (from an edge list) or gpsa-gen
// (synthetic).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/diskio"
	"repro/internal/fault"
	"repro/internal/prof"
	"repro/internal/scrub"
)

const (
	exitOK          = 0
	exitUsage       = 2
	exitRecoverable = 3
	exitFatal       = 4
)

func main() { os.Exit(run()) }

func run() int {
	var (
		graphPath   = flag.String("graph", "", "path to a .gpsa CSR graph (required)")
		algo        = flag.String("algo", "pagerank", "algorithm: pagerank, deltapagerank, bfs, cc, sssp")
		root        = flag.Uint("root", 0, "root/source vertex for bfs and sssp")
		supersteps  = flag.Int("supersteps", 0, "superstep cap (0 = algorithm default); on -resume, the total budget counted from superstep 0")
		top         = flag.Int("top", 10, "print the top-N vertices by result value")
		epsilon     = flag.Float64("epsilon", 0, "delta-pagerank residual cut-off (0 = 1e-4)")
		dispatchers = flag.Int("dispatchers", 0, "dispatcher actors (0 = auto)")
		computers   = flag.Int("computers", 0, "computing actors (0 = auto)")
		values      = flag.String("values", "", "persistent vertex value file (enables crash recovery and -resume)")
		resume      = flag.Bool("resume", false, "continue the computation recorded in -values instead of starting over")
		retries     = flag.Int("retries", 0, "retry a failed superstep up to N times with rollback (0 = fail fast)")
		watchdog    = flag.Duration("watchdog", 0, "abort a superstep when a worker is silent this long (0 = off)")
		dump        = flag.String("dump", "", "write per-vertex results as 'vertex<TAB>value' lines to this file")
		verbose     = flag.Bool("v", false, "print per-superstep progress")
		accum       = flag.String("accum", "auto", "source-side accumulation for combiner programs: auto, dense, sparse, off")
		accumBudget = flag.Int("accum-budget", 0, "accumulator bytes per (dispatcher, computer) before an incremental flush (0 = 256 KiB)")
		prefetch    = flag.Bool("prefetch", false, "async CSR prefetch: madvise(WILLNEED) window ahead of each dispatcher, DONTNEED trail behind")
		prefetchWin = flag.Int("prefetch-window", 0, "prefetch window bytes per dispatcher (0 = 8 MiB)")
		scrubIvl    = flag.Duration("scrub-interval", 0, "background scrub cadence: re-verify the graph CSR checksum and the sealed -values digest while running (0 disables)")
		scrubRate   = flag.Int64("scrub-throttle", 0, "scrub read rate cap in bytes/sec (0 = unthrottled)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		tracefile   = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintln(w, "usage: gpsa -graph g.gpsa [-algo pagerank] [flags]")
		flag.PrintDefaults()
		fmt.Fprintln(w, `
exit codes:
  0  success
  2  usage error
  3  run stopped but -values holds resumable state (rerun with -resume)
  4  fatal: run failed with no resumable state`)
	}
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("gpsa", buildinfo.Version())
		return 0
	}
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "gpsa: -graph is required")
		flag.Usage()
		return exitUsage
	}
	if *resume && *values == "" {
		fmt.Fprintln(os.Stderr, "gpsa: -resume requires -values")
		return exitUsage
	}
	if _, err := gpsa.ParseAccumMode(*accum); err != nil {
		fmt.Fprintf(os.Stderr, "gpsa: %v\n", err)
		return exitUsage
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile, *tracefile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa: %v\n", err)
		return exitUsage
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "gpsa: %v\n", err)
		}
	}()
	if armed, err := fault.ActivateFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "gpsa: %v\n", err)
		return exitUsage
	} else if armed && *verbose {
		fmt.Fprintf(os.Stderr, "gpsa: fault plan armed from %s\n", fault.EnvVar)
	}

	// SIGINT/SIGTERM cancel the run's context: the engine rolls back the
	// in-flight superstep and seals the value file before we exit.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := gpsa.RunOptions{
		Supersteps:     *supersteps,
		Context:        ctx,
		Resume:         *resume,
		Dispatchers:    *dispatchers,
		Computers:      *computers,
		ValuesPath:     *values,
		StepRetries:    *retries,
		Watchdog:       *watchdog,
		Accum:          *accum,
		AccumBudget:    *accumBudget,
		Prefetch:       *prefetch,
		PrefetchWindow: *prefetchWin,
	}
	if *verbose {
		opts.Progress = func(s gpsa.StepStats) {
			fmt.Fprintf(os.Stderr, "superstep %d: %d messages, %d updates, %v\n",
				s.Step, s.Messages, s.Updates, s.Duration)
		}
	}

	// The per-engine scrub actor re-verifies the input CSR checksum (and
	// the value file's sealed digest, once sealed — a mid-run file is
	// skipped as crash recovery's province) alongside the run. A corrupt
	// input is quarantined so no later run trusts it; this run already
	// holds its own mapping and finishes, with the finding on stderr.
	if *scrubIvl > 0 {
		sc := scrub.New(scrub.Options{
			Interval:            *scrubIvl,
			ThrottleBytesPerSec: *scrubRate,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "gpsa: "+format+"\n", args...)
			},
		})
		sc.Add(scrub.Target{Path: *graphPath, Kind: scrub.KindGraph})
		if *values != "" {
			sc.Add(scrub.Target{Path: *values, Kind: scrub.KindValues})
		}
		sc.Start()
		defer sc.Stop()
	}

	var res *gpsa.Result
	var scores []float64
	switch *algo {
	case "pagerank":
		scores, res, err = gpsa.PageRank(*graphPath, opts)
	case "deltapagerank":
		scores, res, err = gpsa.DeltaPageRank(*graphPath, *epsilon, opts)
	case "sssp":
		scores, res, err = gpsa.SSSP(*graphPath, gpsa.VertexID(*root), opts)
	case "bfs":
		var levels []int64
		levels, res, err = gpsa.BFS(*graphPath, gpsa.VertexID(*root), opts)
		if err == nil {
			scores = make([]float64, len(levels))
			reached := 0
			for v, l := range levels {
				scores[v] = float64(l)
				if l >= 0 {
					reached++
				}
			}
			fmt.Printf("reached %d of %d vertices from root %d\n", reached, len(levels), *root)
		}
	case "cc":
		var labels []gpsa.VertexID
		labels, res, err = gpsa.Components(*graphPath, opts)
		if err == nil {
			comp := map[gpsa.VertexID]int{}
			for _, l := range labels {
				comp[l]++
			}
			fmt.Printf("%d components (largest %d of %d vertices)\n",
				len(comp), largest(comp), len(labels))
			scores = make([]float64, len(labels))
			for v, l := range labels {
				scores[v] = float64(l)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "gpsa: unknown algorithm %q\n", *algo)
		return exitUsage
	}
	if err != nil {
		return fail(err, *graphPath, *algo, *values)
	}

	if res.Recovery != "" {
		fmt.Printf("resumed at superstep %d (%s recovery)\n", res.ResumedFrom, res.Recovery)
	}
	fmt.Printf("ran %d supersteps in %v (%d messages, %d updates, converged=%v)\n",
		res.Supersteps, res.Duration, res.Messages, res.Updates, res.Converged)
	if res.Retries > 0 {
		fmt.Printf("recovered from %d superstep failure(s) by rollback and retry\n", res.Retries)
	}
	if *dump != "" {
		if err := dumpScores(*dump, scores); err != nil {
			fmt.Fprintf(os.Stderr, "gpsa: %v\n", err)
			return exitFatal
		}
		fmt.Printf("wrote %s\n", *dump)
	}
	if *top > 0 && (*algo == "pagerank" || *algo == "deltapagerank") {
		printTop(scores, *top)
	}
	return exitOK
}

// fail reports a run error and classifies it: a run that left resumable
// state in -values exits 3 with the exact resume command; anything else
// is fatal.
func fail(err error, graphPath, algo, values string) int {
	fmt.Fprintf(os.Stderr, "gpsa: %v\n", err)
	if values != "" && (errors.Is(err, context.Canceled) || gpsa.Resumable(values)) {
		if info, ierr := gpsa.InspectValues(values); ierr == nil {
			fmt.Fprintf(os.Stderr, "gpsa: %d supersteps are sealed in %s\n", info.Epoch, values)
		}
		fmt.Fprintf(os.Stderr, "gpsa: resume with: %s -graph %s -algo %s -values %s -resume\n",
			os.Args[0], graphPath, algo, values)
		return exitRecoverable
	}
	return exitFatal
}

func dumpScores(path string, scores []float64) error {
	f, err := diskio.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	for v, s := range scores {
		fmt.Fprintf(bw, "%d\t%g\n", v, s)
	}
	if err := bw.Flush(); err != nil {
		f.Close() //lint:syncerr error path: the flush already failed and is being reported
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //lint:syncerr error path: the sync already failed and is being reported
		return err
	}
	return f.Close()
}

func largest(m map[gpsa.VertexID]int) int {
	best := 0
	for _, n := range m {
		if n > best {
			best = n
		}
	}
	return best
}

func printTop(scores []float64, n int) {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if n > len(idx) {
		n = len(idx)
	}
	fmt.Printf("top %d vertices:\n", n)
	for _, v := range idx[:n] {
		fmt.Printf("  %8d  %g\n", v, scores[v])
	}
}
