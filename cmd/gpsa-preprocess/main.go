// Command gpsa-preprocess converts a text edge list (SNAP format:
// "src dst [weight]" lines, '#' comments) into the on-disk CSR format the
// GPSA engine streams, using a bounded-memory external sort.
//
// Usage:
//
//	gpsa-preprocess -in web-Google.txt -out web.gpsa [-weighted] [-symmetrize]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/graph"
	"repro/internal/mmap"
	"repro/internal/preprocess"
)

func main() {
	var (
		in         = flag.String("in", "", "input edge-list file (required)")
		out        = flag.String("out", "", "output .gpsa file (required)")
		weighted   = flag.Bool("weighted", false, "retain the third column as edge weights")
		symmetrize = flag.Bool("symmetrize", false, "also write <out>-sym.gpsa with doubled edges (for CC)")
		vertices   = flag.Int64("vertices", 0, "force the vertex count (0 = infer)")
		chunk      = flag.Int("chunk", 0, "external-sort run size in edges (0 = default)")
		compact    = flag.Bool("compact", false, "write the varint-delta compact CSR format")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("gpsa-preprocess", buildinfo.Version())
		return
	}
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "gpsa-preprocess: -in and -out are required")
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	stats, err := preprocess.EdgeListToCSR(*in, *out, preprocess.Options{
		Weighted:    *weighted,
		NumVertices: *vertices,
		ChunkEdges:  *chunk,
		Compact:     *compact,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-preprocess: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges (%d sorted runs, %v)\n",
		*out, stats.NumVertices, stats.NumEdges, stats.Runs, time.Since(start))

	if *symmetrize {
		f, err := graph.OpenFile(*out, mmap.ModeAuto)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-preprocess: %v\n", err)
			os.Exit(1)
		}
		sym, err := symmetrizeFile(f, *weighted)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-preprocess: %v\n", err)
			os.Exit(1)
		}
		symPath := symName(*out)
		if err := graph.WriteFile(symPath, sym); err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-preprocess: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d vertices, %d edges\n", symPath, sym.NumVertices, sym.NumEdges)
	}
}

func symName(out string) string {
	const ext = ".gpsa"
	if len(out) > len(ext) && out[len(out)-len(ext):] == ext {
		return out[:len(out)-len(ext)] + "-sym" + ext
	}
	return out + "-sym"
}

// symmetrizeFile rebuilds an in-memory CSR from the on-disk file and
// doubles its edges.
func symmetrizeFile(f *graph.File, weighted bool) (*graph.CSR, error) {
	edges := make([]graph.Edge, 0, f.NumEdges)
	c := f.Cursor(f.WholeInterval())
	for {
		v, deg, raw, ok := c.Next()
		if !ok {
			break
		}
		for i := 0; i < int(deg); i++ {
			d, w := graph.DecodeEdge(raw, i, f.Weighted())
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: d, Weight: w})
		}
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	g, err := graph.FromEdges(edges, f.NumVertices, weighted)
	if err != nil {
		return nil, err
	}
	return g.Symmetrize(), nil
}
