// Command gpsa-bench regenerates the paper's evaluation tables and
// figures: Table I (datasets), Figures 7–10 (PageRank / CC / BFS runtimes
// on four graphs across GPSA, GraphChi and X-Stream), Figure 11 (CPU
// utilization) and the DESIGN.md ablations.
//
// Usage:
//
//	gpsa-bench -exp all                 # everything, default scales
//	gpsa-bench -exp fig8 -scale 8       # one figure at a chosen scale
//	gpsa-bench -exp table1
//	gpsa-bench -exp ablation
//
// Absolute times depend on the host; the paper's qualitative expectation
// is printed next to each figure so the shape can be compared directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/buildinfo"
	"repro/internal/diskio"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/prof"
)

// writeFigureCSV saves one figure's cells for external plotting.
func writeFigureCSV(dir, id string, res *bench.FigureResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := diskio.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	if err := res.WriteCSV(f); err != nil {
		f.Close() //lint:syncerr error path: the write already failed and is being reported
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //lint:syncerr error path: the sync already failed and is being reported
		return err
	}
	return f.Close()
}

// parseShapes turns the -shapes flag into a dataset list: each entry is
// a dataset name ("base" for the 131k hot-path R-MAT, otherwise a Table
// I name) with an optional "/denominator" scale suffix.
func parseShapes(s string) ([]gen.Dataset, error) {
	if s == "" {
		return nil, nil // bench defaults
	}
	var out []gen.Dataset
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		name, denom := tok, int64(1)
		if i := strings.IndexByte(tok, '/'); i >= 0 {
			name = tok[:i]
			d, err := strconv.ParseInt(tok[i+1:], 10, 64)
			if err != nil || d < 1 {
				return nil, fmt.Errorf("bad shape %q: denominator must be a positive integer", tok)
			}
			denom = d
		}
		var ds gen.Dataset
		if name == "base" {
			ds = bench.BaselineShape
		} else {
			var ok bool
			if ds, ok = gen.FindDataset(name); !ok {
				return nil, fmt.Errorf("unknown dataset %q (want base, google, soc-pokec, soc-liveJournal or twitter-2010)", name)
			}
		}
		out = append(out, ds.Scaled(denom))
	}
	return out, nil
}

// parseCores turns the -cores flag into the GPSA core sweep.
func parseCores(s string) ([]int, error) {
	if s == "" {
		return nil, nil // bench default: powers of two up to NumCPU
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad core count %q", tok)
		}
		out = append(out, n)
	}
	return out, nil
}

// defaultScales keeps default runs laptop-sized; -scale overrides.
var defaultScales = map[string]int64{
	"google":          1,
	"soc-pokec":       4,
	"soc-liveJournal": 8,
	"twitter-2010":    64,
}

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table1, fig7, fig8, fig9, fig10, fig11, ablation, scalability, hotpath, all; scale (COST sweep, not part of 'all')")
		scale  = flag.Int64("scale", 0, "override the per-dataset default scale (1 = full size)")
		seed   = flag.Int64("seed", 1, "dataset generator seed")
		runs   = flag.Int("runs", 3, "averaging runs per cell (paper: 3)")
		steps  = flag.Int("supersteps", 5, "measured supersteps per run (paper: 5)")
		work   = flag.String("workdir", "", "scratch directory (default: temp)")
		csvDir = flag.String("csv", "", "also write each figure's cells as CSV into this directory")

		jsonPath   = flag.String("json", "", "hotpath: write the machine-readable report to this file (BENCH_<rev>.json)")
		rev        = flag.String("rev", "", "hotpath/scale: revision label recorded in the report")
		hpVertices = flag.Int64("hotpath-vertices", 0, "hotpath: R-MAT vertex count (0 = 131072)")

		costJSON   = flag.String("cost-json", "", "scale: write the COST report to this file (COST_<rev>.json)")
		shapes     = flag.String("shapes", "", "scale: comma-separated dataset shapes, each 'name' or 'name/denominator' (base, google, soc-pokec, soc-liveJournal, twitter-2010); default base,soc-liveJournal,twitter-2010/16")
		memLimit   = flag.Int64("mem-limit", 0, "scale: Go soft heap cap in bytes for GPSA runs (0 = 1 GiB)")
		cores      = flag.String("cores", "", "scale: comma-separated GPSA core sweep (default: powers of two up to NumCPU)")
		noPrefetch = flag.Bool("no-prefetch", false, "scale: disable the async CSR prefetch actors")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		tracefile  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("gpsa-bench", buildinfo.Version())
		return
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile, *tracefile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-bench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-bench: %v\n", err)
		}
	}()

	fmt.Printf("host: %d CPUs (GOMAXPROCS %d); paper testbed: 32 cores, 16 GB RAM, 7200RPM disk\n\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	if metrics.ProcessCPUTime() == 0 {
		fmt.Println("note: process CPU time unavailable; CPU% columns will read 0")
	}

	figures := map[string]gen.Dataset{
		"fig7":  gen.Google,
		"fig8":  gen.SocPokec,
		"fig9":  gen.LiveJournal,
		"fig10": gen.Twitter2010,
	}

	runFigure := func(id string, ds gen.Dataset) {
		sc := defaultScales[ds.Name]
		if *scale > 0 {
			sc = *scale
		}
		res, err := bench.RunFigure(bench.Options{
			Dataset:    ds,
			Scale:      sc,
			Seed:       *seed,
			Runs:       *runs,
			Supersteps: *steps,
			WorkDir:    *work,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatFigure(id, res))
		if *csvDir != "" {
			if err := writeFigureCSV(*csvDir, id, res); err != nil {
				fmt.Fprintf(os.Stderr, "gpsa-bench: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}

	want := func(id string) bool { return *exp == "all" || *exp == id }

	if want("table1") {
		sc := int64(64)
		if *scale > 0 {
			sc = *scale
		}
		rows, err := bench.RunTable1(sc, *seed, *work)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-bench: table1: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Table I (datasets, generated at 1/%d scale)\n%s\n", sc, bench.FormatTable1(rows))
	}
	for _, id := range []string{"fig7", "fig8", "fig9", "fig10"} {
		if want(id) {
			runFigure(id, figures[id])
		}
	}
	if want("fig11") {
		// Fig. 11 is the CPU% column measured across datasets; rerun the
		// two mid-size graphs and print utilization only.
		fmt.Println("fig11 — CPU utilization (paper: X-Stream ~100%, GraphChi lowest, GPSA workload-proportional)")
		fmt.Printf("%-18s %-10s %-10s %8s\n", "Dataset", "Algo", "System", "CPU%")
		for _, ds := range []gen.Dataset{gen.SocPokec, gen.LiveJournal} {
			sc := defaultScales[ds.Name]
			if *scale > 0 {
				sc = *scale
			}
			res, err := bench.RunFigure(bench.Options{
				Dataset: ds, Scale: sc, Seed: *seed, Runs: *runs, Supersteps: *steps, WorkDir: *work,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "gpsa-bench: fig11: %v\n", err)
				os.Exit(1)
			}
			for _, c := range res.Cells {
				fmt.Printf("%-18s %-10s %-10s %7.1f%%\n", res.Dataset.Name, c.Algo, c.System, c.CPUPercent)
			}
		}
		fmt.Println()
	}
	if want("scalability") {
		sc := int64(8)
		if *scale > 0 {
			sc = *scale
		}
		pts, err := bench.RunScalability(bench.ScalabilityOptions{
			Dataset: gen.SocPokec, Scale: sc, Seed: *seed, Runs: *runs, Supersteps: *steps, WorkDir: *work,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-bench: scalability: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("scalability (GPSA PageRank on soc-pokec@1/%d, actor-count sweep — the paper's \"thousands of actors\")\n%s\n",
			sc, bench.FormatScalability(pts))
	}
	if want("ablation") {
		sc := int64(8)
		if *scale > 0 {
			sc = *scale
		}
		rs, err := bench.RunAblations(bench.AblationOptions{
			Dataset: gen.SocPokec, Scale: sc, Seed: *seed, Runs: *runs, Supersteps: *steps, WorkDir: *work,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-bench: ablation: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ablations (GPSA design choices, PageRank on soc-pokec@1/%d)\n%s\n", sc, bench.FormatAblations(rs))
	}
	if *exp == "scale" {
		if *rev == "" {
			*rev = buildinfo.Revision()
		}
		shapeList, err := parseShapes(*shapes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-bench: scale: %v\n", err)
			os.Exit(1)
		}
		coreList, err := parseCores(*cores)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-bench: scale: %v\n", err)
			os.Exit(1)
		}
		rep, err := bench.RunScale(bench.ScaleOptions{
			Shapes:     shapeList,
			Seed:       *seed,
			Supersteps: *steps,
			Runs:       1,
			WorkDir:    *work,
			Cores:      coreList,
			MemLimit:   *memLimit,
			NoPrefetch: *noPrefetch,
			Rev:        *rev,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-bench: scale: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("scale — out-of-core COST sweep (heap cap %d MiB, prefetch %v)\n%s",
			rep.MemLimit>>20, rep.Prefetch, bench.FormatScale(rep))
		fmt.Printf("prefetch: %d WILLNEED windows, %.1f MiB covered\n", rep.PrefetchWindows, float64(rep.PrefetchBytes)/(1<<20))
		if *costJSON != "" {
			if err := rep.WriteJSON(*costJSON); err != nil {
				fmt.Fprintf(os.Stderr, "gpsa-bench: scale: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *costJSON)
		}
		return
	}
	if want("hotpath") {
		if *rev == "" {
			// Default the report label to the VCS revision stamped into
			// the binary, so BENCH_<rev>.json names the code it measured.
			*rev = buildinfo.Revision()
		}
		rep, err := bench.RunHotPath(bench.HotPathOptions{
			Vertices:   *hpVertices,
			Seed:       *seed,
			Runs:       *runs,
			Supersteps: *steps,
			Rev:        *rev,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-bench: hotpath: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("hotpath — message-path throughput on R-MAT (%d vertices, %d edges, best of %d runs)\n",
			rep.Vertices, rep.Edges, rep.Runs)
		fmt.Printf("%-14s %-8s %12s %14s %14s %10s\n", "Algo", "Mode", "seconds", "msgs/sec", "delivered", "alloc/msg")
		for _, c := range rep.Cells {
			fmt.Printf("%-14s %-8s %12.3f %14.0f %14d %9.1fB\n",
				c.Algo, c.Mode, c.Seconds, c.MsgsPerSec, c.Delivered, c.AllocPerMsg)
		}
		for _, algo := range []string{"pagerank", "deltapagerank", "bfs", "cc", "sssp"} {
			if s, ok := rep.Speedup[algo]; ok {
				fmt.Printf("speedup %-14s %.2fx vs legacy\n", algo, s)
			}
		}
		if *jsonPath != "" {
			if err := rep.WriteJSON(*jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "gpsa-bench: hotpath: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		fmt.Println()
	}
}
