// Command gpsa-inspect examines GPSA's on-disk artifacts: CSR graph
// files (header, degree distribution, integrity) and vertex value files
// (epoch, crash state, value preview).
//
// Usage:
//
//	gpsa-inspect -graph web.gpsa
//	gpsa-inspect -values pr.gpvf [-n 10]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/graph"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "CSR graph file to inspect")
		valuesPath = flag.String("values", "", "vertex value file to inspect")
		n          = flag.Int("n", 10, "values to preview")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("gpsa-inspect", buildinfo.Version())
		return
	}
	if *graphPath == "" && *valuesPath == "" {
		fmt.Fprintln(os.Stderr, "gpsa-inspect: need -graph and/or -values")
		flag.Usage()
		os.Exit(2)
	}
	if *graphPath != "" {
		if err := inspectGraph(*graphPath); err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-inspect: %v\n", err)
			os.Exit(1)
		}
	}
	if *valuesPath != "" {
		if err := inspectValues(*valuesPath, *n); err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-inspect: %v\n", err)
			os.Exit(1)
		}
	}
}

func inspectGraph(path string) error {
	f, err := graph.OpenFile(path, mmap.ModeAuto)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stats()
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("graph %s (%0.1f MiB on disk)\n", path, float64(fi.Size())/(1<<20))
	fmt.Print(st.String())
	return nil
}

func inspectValues(path string, n int) error {
	f, err := vertexfile.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("value file %s\n", path)
	fmt.Printf("vertices:   %d\n", f.NumVertices())
	fmt.Printf("epoch:      %d completed supersteps\n", f.Epoch())
	switch {
	case f.Torn():
		fmt.Printf("state:      clean (header was torn; rolled back on open)\n")
	case f.InProgress():
		fmt.Printf("state:      IN PROGRESS — superstep %d did not commit; Recover() will roll back\n", f.Epoch())
	default:
		fmt.Printf("state:      clean\n")
	}
	fmt.Printf("converged:  %v\n", f.Converged())
	if agg := f.Aggregate(); agg != 0 {
		fmt.Printf("aggregate:  %g\n", agg)
	}
	fresh := int64(0)
	col := vertexfile.DispatchCol(f.Epoch())
	for v := int64(0); v < f.NumVertices(); v++ {
		if !vertexfile.Stale(f.Load(col, v)) {
			fresh++
		}
	}
	fmt.Printf("active:     %d vertices fresh for the next superstep\n", fresh)
	if n > int(f.NumVertices()) {
		n = int(f.NumVertices())
	}
	fmt.Printf("first %d payloads (raw / as float64):\n", n)
	for v := int64(0); v < int64(n); v++ {
		p := f.Value(v)
		fmt.Printf("  %8d: %#016x  %g\n", v, p, vertexfile.UnpackFloat64(p))
	}
	return nil
}
