// Command gpsa-lint runs the repository's custom static analyzers
// (internal/lint) over the module and reports invariant violations.
//
// Usage:
//
//	gpsa-lint [-json] [-run name,name] [-list] [-escape] [packages]
//	gpsa-lint -diff old.json new.json
//
// Packages default to ./... — every module package matched by at least
// one analyzer's package filter. -escape additionally runs
// `go build -gcflags='-m -m'` over every package with //gpsa:noalloc
// pragmas and fails on compiler-proven heap allocations in marked
// functions. -diff compares two -json reports and fails when any
// per-analyzer finding count increased. Every run also flags stale
// //lint: suppressions — annotations that no longer silence anything.
// Exit status: 0 clean, 1 unsuppressed findings (or a -diff
// regression), 2 load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

var (
	jsonOut  = flag.Bool("json", false, "emit machine-readable findings on stdout")
	runNames = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list     = flag.Bool("list", false, "list analyzers and exit")
	escape   = flag.Bool("escape", false, "cross-reference go build -gcflags='-m -m' escape diagnostics against the //gpsa:noalloc pragma set")
	diffMode = flag.Bool("diff", false, "compare two -json reports (old new) and fail when a per-analyzer count increased")
)

func run() int {
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("gpsa-lint", buildinfo.Version())
		return 0
	}

	if *diffMode {
		return diffReports(flag.Args())
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runNames != "" {
		var sel []*lint.Analyzer
		for _, name := range strings.Split(*runNames, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "gpsa-lint: unknown analyzer %q\n", name)
				return 2
			}
			sel = append(sel, a)
		}
		analyzers = sel
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-lint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-lint: %v\n", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := expand(loader, cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-lint: %v\n", err)
		return 2
	}

	escapeSelected := false
	for _, a := range analyzers {
		if a == lint.Noalloc {
			escapeSelected = *escape
		}
	}

	var diags []lint.Diagnostic
	for _, path := range paths {
		applies := false
		for _, a := range analyzers {
			if a.AppliesTo(loader.ModPath, path) {
				applies = true
				break
			}
		}
		if !applies {
			continue
		}
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-lint: %v\n", err)
			return 2
		}
		pkgDiags, used, ran := lint.RunPackage(analyzers, loader.ModPath, pkg, loader.Fset)
		diags = append(diags, pkgDiags...)
		if escapeSelected && lint.Noalloc.AppliesTo(loader.ModPath, path) && len(lint.NoallocMarked(pkg)) > 0 {
			gateDiags, gateUsed, err := runEscapeGate(loader, path, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gpsa-lint: %v\n", err)
				return 2
			}
			diags = append(diags, gateDiags...)
			used = append(used, gateUsed...)
		}
		// Staleness: a //lint: annotation that no pass consumed is dead
		// weight. noalloc annotations may exist solely to silence the
		// compiler-backed escape gate, so they are only checked when the
		// gate actually ran.
		if !escapeSelected {
			delete(ran, "noalloc")
		}
		usedSet := make(map[lint.DirectiveKey]bool, len(used))
		for _, k := range used {
			usedSet[k] = true
		}
		diags = append(diags, lint.StaleDirectives(loader.Fset, pkg, ran, usedSet)...)
	}
	lint.SortDiagnostics(diags)

	if *jsonOut {
		return emitJSON(loader.ModRoot, analyzers, diags)
	}
	reported := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		reported++
		fmt.Printf("%s: [%s] %s\n", relPos(loader.ModRoot, d), d.Analyzer, d.Message)
	}
	if reported > 0 {
		fmt.Fprintf(os.Stderr, "gpsa-lint: %d finding(s)\n", reported)
		return 1
	}
	return 0
}

// runEscapeGate compiles path with -gcflags='-m -m' and cross-references
// the compiler's escape diagnostics against pkg's //gpsa:noalloc pragma
// set. The Go build cache replays compiler diagnostics, so repeated runs
// are cheap.
func runEscapeGate(loader *lint.Loader, path string, pkg *lint.Package) ([]lint.Diagnostic, []lint.DirectiveKey, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, loader.ModPath), "/")
	cmd := exec.Command("go", "build", "-gcflags=-m -m", "./"+filepath.ToSlash(rel))
	cmd.Dir = loader.ModRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, nil, fmt.Errorf("escape gate: go build %s: %v\n%s", rel, err, out)
	}
	parsed, err := lint.ParseEscapeReport(out)
	if err != nil {
		return nil, nil, fmt.Errorf("escape gate: %s: %w", rel, err)
	}
	diags, used := lint.EscapeGate(loader.Fset, pkg, parsed, loader.ModRoot)
	return diags, used, nil
}

// diffReports compares two -json reports' per-analyzer counts: exit 1
// when any analyzer's unsuppressed finding count increased.
func diffReports(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "gpsa-lint: -diff needs exactly two report files: old.json new.json")
		return 2
	}
	var reps [2]jsonReport
	for i, name := range args {
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-lint: %v\n", err)
			return 2
		}
		if err := json.Unmarshal(data, &reps[i]); err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-lint: %s: %v\n", name, err)
			return 2
		}
	}
	prev, cur := reps[0], reps[1]
	keys := make(map[string]bool)
	for k := range prev.Counts {
		keys[k] = true
	}
	for k := range cur.Counts {
		keys[k] = true
	}
	var names []string
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	regressed := false
	for _, k := range names {
		o, n := prev.Counts[k], cur.Counts[k]
		if o == n {
			continue
		}
		marker := ""
		// "suppressed" growth is tolerated by the diff (every suppression
		// already carries a reviewed justification); any unsuppressed
		// analyzer count going up is a regression.
		if n > o && k != "suppressed" {
			marker = "  <- regression"
			regressed = true
		}
		fmt.Printf("%-14s %4d -> %4d%s\n", k, o, n, marker)
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "gpsa-lint: finding counts regressed (%s -> %s)\n", prev.Revision, cur.Revision)
		return 1
	}
	fmt.Printf("no regressions (%s -> %s)\n", prev.Revision, cur.Revision)
	return 0
}

// expand resolves package patterns to module import paths. "./..."
// (optionally rooted at a subdirectory) walks the tree; a plain relative
// or module-absolute path names one package.
func expand(l *lint.Loader, cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "./"
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if !recursive {
			rel, err := filepath.Rel(l.ModRoot, base)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("package %s is outside module %s", pat, l.ModPath)
			}
			add(importPath(l.ModPath, rel))
			continue
		}
		err := filepath.WalkDir(base, func(dir string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if dir != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if !hasGoFiles(dir) {
				return nil
			}
			rel, err := filepath.Rel(l.ModRoot, dir)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil
			}
			add(importPath(l.ModPath, rel))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func importPath(modPath, rel string) string {
	rel = filepath.ToSlash(rel)
	if rel == "." || rel == "" {
		return modPath
	}
	return modPath + "/" + rel
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

func relPos(root string, d lint.Diagnostic) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d:%d", file, d.Pos.Line, d.Pos.Column)
}

// jsonFinding is one finding in -json output. Paths are module-relative
// with forward slashes; no timestamps, so identical trees produce
// byte-identical reports.
type jsonFinding struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Col           int    `json:"col"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Justification string `json:"justification,omitempty"`
}

type jsonReport struct {
	Module     string         `json:"module"`
	Version    string         `json:"version"`
	Revision   string         `json:"revision"`
	Analyzers  []string       `json:"analyzers"`
	Findings   []jsonFinding  `json:"findings"`
	Suppressed []jsonFinding  `json:"suppressed"`
	Counts     map[string]int `json:"counts"`
}

func emitJSON(root string, analyzers []*lint.Analyzer, diags []lint.Diagnostic) int {
	info := buildinfo.Get()
	rep := jsonReport{
		Module:     "repro",
		Version:    info.Version,
		Revision:   info.Revision,
		Findings:   []jsonFinding{},
		Suppressed: []jsonFinding{},
		Counts:     make(map[string]int),
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
		rep.Counts[a.Name] = 0
	}
	rep.Counts["stale"] = 0 // the staleness pseudo-analyzer runs on every pass
	for _, d := range diags {
		f := jsonFinding{
			File:     relFile(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if d.Suppressed {
			f.Justification = d.Justification
			rep.Suppressed = append(rep.Suppressed, f)
			rep.Counts["suppressed"]++
			continue
		}
		rep.Findings = append(rep.Findings, f)
		rep.Counts[d.Analyzer]++
		rep.Counts["total"]++
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-lint: %v\n", err)
		return 2
	}
	if rep.Counts["total"] > 0 {
		return 1
	}
	return 0
}

func relFile(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}
