// Command gpsa-serve runs GPSA as a long-lived graph service: graphs
// stay mmap'd and hot across requests, and concurrent jobs are
// multiplexed over per-job supervised actor systems with admission
// control, budgets, and graceful degradation.
//
// Usage:
//
//	gpsa-serve -addr :8090 -graphs /data/graphs -jobs /data/jobs
//
// Submit work and poll it:
//
//	curl -d '{"graph":"web.gpsa","algo":"pagerank"}' localhost:8090/v1/jobs
//	curl localhost:8090/v1/jobs/j-000000
//
// Robustness contract (see docs/SERVING.md for the runbook):
//
//   - A full admission queue sheds with 429 + Retry-After; a quarantined
//     (graph, program) pair sheds with 503 + Retry-After.
//   - A failing jobs disk (ENOSPC, EIO on the journal, free space below
//     -min-free) flips the server into read-only degraded mode: POSTs
//     shed with 503 + Retry-After, /readyz reports disk-degraded, reads
//     keep serving, and a background probe restores admissions once
//     writes succeed again. -scrub-interval adds a background scrub
//     actor that re-verifies resident graph and sealed value file
//     checksums, quarantining anything corrupt.
//   - SIGTERM drains: admissions stop, /readyz flips to 503, in-flight
//     jobs are rolled back to their last committed superstep and their
//     value files sealed, the job journal records every non-terminal
//     job, and the process exits 0.
//   - After a SIGKILL (or any crash), restarting with -resume-jobs
//     replays the journal and resumes every interrupted job from its
//     sealed value file — the final values are bit-identical to a run
//     that was never disturbed.
//
// Exit codes: 0 clean shutdown (including SIGTERM drain), 1 runtime
// failure, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/fault"
	"repro/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr       = flag.String("addr", ":8090", "HTTP listen address")
		graphDir   = flag.String("graphs", "", "directory of servable .gpsa graphs (required)")
		jobsDir    = flag.String("jobs", "", "directory for value files and the job journal (required)")
		queueCap   = flag.Int("queue-cap", 64, "bounded admission queue capacity (full = 429)")
		workers    = flag.Int("workers", 4, "concurrent job executors")
		perGraph   = flag.Int("per-graph", 2, "concurrent jobs per graph")
		retries    = flag.Int("job-retries", 2, "job-tier retries on transient failure")
		backoff    = flag.Duration("retry-backoff", 100*time.Millisecond, "first retry backoff (doubles per retry)")
		brkN       = flag.Int("breaker-threshold", 3, "consecutive failures that quarantine a (graph, program) pair")
		brkCool    = flag.Duration("breaker-cooldown", 30*time.Second, "quarantine duration")
		deadline   = flag.Duration("deadline", 5*time.Minute, "default per-job wall-clock budget")
		maxSteps   = flag.Int("max-supersteps", 200, "hard superstep cap per job")
		mailboxCap = flag.Int("mailbox-cap", 64, "default per-job mailbox depth in batches")
		stepRetry  = flag.Int("step-retries", 2, "in-run superstep retries (rollback + re-execute)")
		watchdog   = flag.Duration("watchdog", 60*time.Second, "per-superstep worker silence bound")
		resumeJobs = flag.Bool("resume-jobs", false, "replay the job journal and resume interrupted jobs")
		minFree    = flag.Int64("min-free", 0, "free bytes required in the jobs dir to admit work (0 disables; below it the server degrades read-only)")
		diskRetry  = flag.Int("disk-retries", 3, "journal checkpoint write attempts before the server degrades")
		probeIvl   = flag.Duration("probe-interval", 2*time.Second, "degraded-mode disk recovery probe cadence")
		scrubIvl   = flag.Duration("scrub-interval", 0, "background scrub cadence for resident graphs and sealed value files (0 disables)")
		scrubRate  = flag.Int64("scrub-throttle", 0, "scrub read rate cap in bytes/sec (0 = unthrottled)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "bound on graceful drain at shutdown")
		verbose    = flag.Bool("v", false, "log job lifecycle events")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintln(w, "usage: gpsa-serve -graphs DIR -jobs DIR [flags]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println("gpsa-serve", buildinfo.Version())
		return 0
	}
	if *graphDir == "" || *jobsDir == "" {
		fmt.Fprintln(os.Stderr, "gpsa-serve: -graphs and -jobs are required")
		flag.Usage()
		return 2
	}
	if armed, err := fault.ActivateFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-serve: %v\n", err)
		return 2
	} else if armed && *verbose {
		fmt.Fprintf(os.Stderr, "gpsa-serve: fault plan armed from %s\n", fault.EnvVar)
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gpsa-serve: "+format+"\n", args...)
		}
	}

	// SIGTERM/SIGINT trigger the drain path; the server's own context
	// stays alive until the drain finishes so in-flight checkpoints
	// complete (jobs are cancelled by Drain, not by this context).
	ctx := context.Background()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	srv, err := serve.NewServer(ctx, serve.Options{
		Addr:             *addr,
		GraphDir:         *graphDir,
		JobsDir:          *jobsDir,
		QueueCap:         *queueCap,
		Workers:          *workers,
		PerGraph:         *perGraph,
		JobRetries:       *retries,
		RetryBackoff:     *backoff,
		BreakerThreshold: *brkN,
		BreakerCooldown:  *brkCool,
		DefaultDeadline:  *deadline,
		MaxSupersteps:    *maxSteps,
		MailboxCap:       *mailboxCap,
		StepRetries:      *stepRetry,
		Watchdog:         *watchdog,
		ResumeJobs:       *resumeJobs,
		MinFreeBytes:     *minFree,
		DiskRetries:      *diskRetry,
		ProbeInterval:    *probeIvl,
		ScrubInterval:    *scrubIvl,
		ScrubThrottle:    *scrubRate,
		Logf:             logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-serve: %v\n", err)
		return 1
	}
	srv.Start()
	fmt.Fprintf(os.Stderr, "gpsa-serve: %s listening on %s (graphs=%s jobs=%s)\n",
		buildinfo.Version(), srv.Addr(), *graphDir, *jobsDir)

	<-sig
	fmt.Fprintln(os.Stderr, "gpsa-serve: signal received, draining")
	drainCtx, cancel := context.WithTimeout(ctx, *drainWait)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-serve: drain: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "gpsa-serve: drained cleanly")
	return 0
}
