// Command gpsa-compare runs one of the paper's workloads on all three
// engines — GPSA, the GraphChi-style PSW baseline, and the X-Stream-style
// edge-centric baseline — over a user-supplied graph, printing the same
// comparison row the paper's figures chart.
//
// Usage:
//
//	gpsa-compare -graph web.gpsa [-algo pagerank] [-supersteps 5] [-runs 3]
//
// It also diffs two hot-path benchmark artifacts (BENCH_<rev>.json, from
// gpsa-bench -exp hotpath), exiting 1 when the new report regresses any
// cell by more than 10% throughput or 0.2 B/msg allocation:
//
//	gpsa-compare -bench BENCH_old.json BENCH_new.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/buildinfo"
	"repro/internal/graph"
	"repro/internal/mmap"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "path to a .gpsa CSR graph (required)")
		algo       = flag.String("algo", "all", "workload: pagerank, cc, bfs, all")
		supersteps = flag.Int("supersteps", 5, "measured supersteps (paper: 5)")
		runs       = flag.Int("runs", 3, "averaging runs (paper: 3)")
		work       = flag.String("workdir", "", "scratch directory (default: temp)")
		benchOld   = flag.String("bench", "", "diff mode: baseline BENCH_<rev>.json; the new report is the positional argument")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("gpsa-compare", buildinfo.Version())
		return
	}
	if *benchOld != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "gpsa-compare: -bench OLD.json needs exactly one positional argument, the new report")
			os.Exit(2)
		}
		os.Exit(diffBench(*benchOld, flag.Arg(0)))
	}
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "gpsa-compare: -graph is required")
		flag.Usage()
		os.Exit(2)
	}

	g, err := loadCSR(*graphPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-compare: %v\n", err)
		os.Exit(1)
	}

	dir := *work
	if dir == "" {
		dir, err = os.MkdirTemp("", "gpsa-compare-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsa-compare: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
	}
	arts, err := bench.BuildArtifactsFromCSR(g, dir, 4)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-compare: %v\n", err)
		os.Exit(1)
	}

	algos := bench.AllAlgos
	switch *algo {
	case "pagerank":
		algos = []bench.Algo{bench.AlgoPageRank}
	case "cc":
		algos = []bench.Algo{bench.AlgoCC}
	case "bfs":
		algos = []bench.Algo{bench.AlgoBFS}
	case "all":
	default:
		fmt.Fprintf(os.Stderr, "gpsa-compare: unknown workload %q\n", *algo)
		os.Exit(2)
	}

	fmt.Printf("graph: %d vertices, %d edges; %d supersteps x %d runs; BFS root %d\n\n",
		g.NumVertices, g.NumEdges, *supersteps, *runs, arts.BFSRoot)
	fmt.Printf("%-10s %-10s %12s %12s %8s %10s\n", "Algo", "System", "Seconds", "Sec/Step", "CPU%", "vs GPSA")
	opts := bench.Options{Supersteps: *supersteps, Runs: *runs}
	for _, alg := range algos {
		var gpsaSecs float64
		for _, sys := range bench.AllSystems {
			cell, err := bench.MeasureCell(arts, sys, alg, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gpsa-compare: %s/%s: %v\n", sys, alg, err)
				os.Exit(1)
			}
			speedup := "-"
			if sys == bench.SysGPSA {
				gpsaSecs = cell.Seconds
			} else if gpsaSecs > 0 {
				speedup = fmt.Sprintf("%.2fx", cell.Seconds/gpsaSecs)
			}
			fmt.Printf("%-10s %-10s %12.4f %12.4f %7.1f%% %10s\n",
				alg, sys, cell.Seconds, cell.PerStep, cell.CPUPercent, speedup)
		}
	}
}

// diffBench compares two hot-path reports; exit 1 flags a regression so
// CI (make bench-diff) can gate on it.
func diffBench(oldPath, newPath string) int {
	oldRep, err := bench.LoadHotPathReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-compare: %v\n", err)
		return 2
	}
	newRep, err := bench.LoadHotPathReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsa-compare: %v\n", err)
		return 2
	}
	diffs := bench.DiffHotPath(oldRep, newRep)
	if len(diffs) == 0 {
		fmt.Fprintln(os.Stderr, "gpsa-compare: the reports share no (algo, mode) cells")
		return 2
	}
	fmt.Print(bench.FormatBenchDiff(oldRep, newRep, diffs))
	regressed := 0
	for _, d := range diffs {
		if d.Regression {
			regressed++
		}
	}
	if regressed > 0 {
		fmt.Printf("%d of %d cells regressed\n", regressed, len(diffs))
		return 1
	}
	fmt.Printf("no regressions across %d cells\n", len(diffs))
	return 0
}

// loadCSR rebuilds an in-memory CSR from an on-disk file of either format.
func loadCSR(path string) (*graph.CSR, error) {
	f, err := graph.OpenFile(path, mmap.ModeAuto)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	edges := make([]graph.Edge, 0, f.NumEdges)
	c := f.Cursor(f.WholeInterval())
	for {
		v, deg, raw, ok := c.Next()
		if !ok {
			break
		}
		for i := 0; i < int(deg); i++ {
			d, w := graph.DecodeEdge(raw, i, f.Weighted())
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: d, Weight: w})
		}
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return graph.FromEdges(edges, f.NumVertices, f.Weighted())
}
