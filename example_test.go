package gpsa_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

// sampleGraphFile writes the paper's Fig. 4 example graph to a temp CSR
// file and returns its path.
func sampleGraphFile() string {
	edges := []gpsa.Edge{
		{Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 0},
		{Src: 2, Dst: 1}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 1},
	}
	g, err := gpsa.BuildGraph(edges, 0)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "gpsa-example-*")
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "example.gpsa")
	if err := gpsa.SaveGraph(path, g); err != nil {
		log.Fatal(err)
	}
	return path
}

func ExampleBFS() {
	path := sampleGraphFile()
	defer os.RemoveAll(filepath.Dir(path))

	levels, _, err := gpsa.BFS(path, 0, gpsa.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for v, l := range levels {
		fmt.Printf("vertex %d: level %d\n", v, l)
	}
	// Output:
	// vertex 0: level 0
	// vertex 1: level 2
	// vertex 2: level 1
	// vertex 3: level 1
}

func ExampleComponents() {
	path := sampleGraphFile()
	defer os.RemoveAll(filepath.Dir(path))

	labels, _, err := gpsa.Components(path, gpsa.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(labels)
	// Output:
	// [0 0 0 0]
}

func ExamplePageRank() {
	path := sampleGraphFile()
	defer os.RemoveAll(filepath.Dir(path))

	ranks, res, err := gpsa.PageRank(path, gpsa.RunOptions{Supersteps: 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("supersteps: %d\n", res.Supersteps)
	for v, r := range ranks {
		fmt.Printf("vertex %d: %.1f\n", v, r)
	}
	// Output:
	// supersteps: 30
	// vertex 0: 1.2
	// vertex 1: 1.2
	// vertex 2: 0.7
	// vertex 3: 0.9
}

// minLevel is a custom vertex program: the paper's three functions.
type minLevel struct{ root gpsa.VertexID }

func (p minLevel) Init(v int64) (uint64, bool) {
	if v == int64(p.root) {
		return 0, true
	}
	return 1 << 62, false
}

func (p minLevel) GenMsg(src int64, payload uint64, outDegree uint32, dst gpsa.VertexID, weight float32) (uint64, bool) {
	return payload + 1, true
}

func (p minLevel) Compute(dst int64, cur, msg uint64, first bool) (uint64, bool) {
	if msg < cur {
		return msg, true
	}
	return cur, false
}

func ExampleRun() {
	path := sampleGraphFile()
	defer os.RemoveAll(filepath.Dir(path))

	vals, res, err := gpsa.Run(path, minLevel{root: 2}, gpsa.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer vals.Close()
	fmt.Printf("converged: %v\n", res.Converged)
	fmt.Printf("vertex 1: %d hops from 2\n", vals.Uint(1))
	// Output:
	// converged: true
	// vertex 1: 1 hops from 2
}
