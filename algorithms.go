package gpsa

import (
	"math"

	"repro/internal/algorithms"
)

// PageRank runs the paper's message-driven PageRank (damping 0.85) for
// opts.Supersteps supersteps (default 5, the paper's measurement length)
// and returns the unnormalized rank of every vertex.
func PageRank(graphPath string, opts RunOptions) ([]float64, *Result, error) {
	if opts.Supersteps == 0 {
		opts.Supersteps = 5
	}
	vals, res, err := Run(graphPath, algorithms.PageRank{}, opts)
	if err != nil {
		return nil, nil, err
	}
	defer vals.Close()
	out := make([]float64, vals.NumVertices())
	for v := range out {
		out[v] = algorithms.RankOf(vals.Raw(int64(v)))
	}
	return out, res, nil
}

// BFS runs breadth-first search from root and returns hop levels, with -1
// marking unreached vertices.
func BFS(graphPath string, root VertexID, opts RunOptions) ([]int64, *Result, error) {
	vals, res, err := Run(graphPath, algorithms.BFS{Root: root}, opts)
	if err != nil {
		return nil, nil, err
	}
	defer vals.Close()
	out := make([]int64, vals.NumVertices())
	for v := range out {
		if lvl := vals.Uint(int64(v)); lvl == algorithms.Unreached {
			out[v] = -1
		} else {
			out[v] = int64(lvl)
		}
	}
	return out, res, nil
}

// Components labels every vertex with the smallest vertex id reachable
// along the graph's directed edges under label propagation. For weakly
// connected components, save a symmetrized graph (CSR.Symmetrize) first.
func Components(graphPath string, opts RunOptions) ([]VertexID, *Result, error) {
	vals, res, err := Run(graphPath, algorithms.ConnectedComponents{}, opts)
	if err != nil {
		return nil, nil, err
	}
	defer vals.Close()
	out := make([]VertexID, vals.NumVertices())
	for v := range out {
		out[v] = VertexID(vals.Uint(int64(v)))
	}
	return out, res, nil
}

// SSSP computes single-source shortest paths over edge weights; +Inf
// marks unreached vertices. The graph must have been saved with weights.
func SSSP(graphPath string, source VertexID, opts RunOptions) ([]float64, *Result, error) {
	vals, res, err := Run(graphPath, algorithms.SSSP{Source: source}, opts)
	if err != nil {
		return nil, nil, err
	}
	defer vals.Close()
	out := make([]float64, vals.NumVertices())
	for v := range out {
		out[v] = algorithms.DistOf(vals.Raw(int64(v)))
	}
	return out, res, nil
}

// DeltaPageRank runs the convergent delta-based PageRank extension until
// residuals drop below epsilon (0 = default 1e-4) and returns ranks.
func DeltaPageRank(graphPath string, epsilon float64, opts RunOptions) ([]float64, *Result, error) {
	if opts.Supersteps == 0 {
		opts.Supersteps = 500
	}
	vals, res, err := Run(graphPath, algorithms.DeltaPageRank{Epsilon: epsilon}, opts)
	if err != nil {
		return nil, nil, err
	}
	defer vals.Close()
	out := make([]float64, vals.NumVertices())
	for v := range out {
		out[v] = algorithms.DeltaRankOf(vals.Raw(int64(v)))
	}
	return out, res, nil
}

// Unreachable reports whether an SSSP distance denotes an unreached
// vertex.
func Unreachable(dist float64) bool { return math.IsInf(dist, 1) }
