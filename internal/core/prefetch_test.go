package core

import (
	"testing"

	"repro/internal/metrics"
)

// The prefetch actor is a pure observer of the dispatch loop: running
// with it enabled — and a window small enough to force many WILLNEED
// windows and a live DONTNEED trail per superstep — must produce a
// vertex file bit-identical to the same configuration without it, for
// an order-sensitive float program and order-free integer programs
// alike. One dispatcher keeps the float comparison exact (two
// dispatchers interleave arrival order even between two plain runs).
func TestPrefetchEquivalence(t *testing.T) {
	g := randomGraph(t, 91, 300, 2400)
	base := Config{
		Dispatchers:   1,
		Computers:     2,
		BatchSize:     64,
		AccumBudget:   1 << 10,
		MaxSupersteps: 6,
		DisableSync:   true,
	}
	progs := []struct {
		name string
		prog Program
	}{
		{"pagerank", prComb{}},
		{"bfs", bfsComb{bfsProg{root: 3}}},
		{"cc", ccProg{}},
	}
	for _, tc := range progs {
		t.Run(tc.name, func(t *testing.T) {
			refEng, refVf := setup(t, g, tc.prog, base)
			if _, err := refEng.Run(); err != nil {
				t.Fatalf("reference run: %v", err)
			}

			cfg := base
			cfg.Prefetch = true
			cfg.PrefetchWindow = 4096
			eng, vf := setup(t, g, tc.prog, cfg)
			if !eng.gf.SupportsAdvise() {
				t.Skip("mapping does not support advice on this platform")
			}
			windows0 := metrics.Counter(metrics.CtrPrefetchWindows)
			errs0 := metrics.Counter(metrics.CtrPrefetchErrors)
			if _, err := eng.Run(); err != nil {
				t.Fatalf("prefetch run: %v", err)
			}
			if metrics.Counter(metrics.CtrPrefetchWindows) == windows0 {
				t.Error("prefetch enabled but no WILLNEED window was issued")
			}
			if d := metrics.Counter(metrics.CtrPrefetchErrors) - errs0; d != 0 {
				t.Errorf("prefetch made %d failing madvise calls", d)
			}

			for v := int64(0); v < g.NumVertices; v++ {
				if got, want := vf.Value(v), refVf.Value(v); got != want {
					t.Fatalf("vertex %d: %#x with prefetch, want %#x", v, got, want)
				}
			}
		})
	}
}
