package core

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
)

// chainGraph builds the path 0 -> 1 -> ... -> n-1, whose computations
// (BFS, CC label propagation) need ~n supersteps — long enough that a
// cancellation always lands inside a run.
func chainGraph(t testing.TB, n int64) *graph.CSR {
	t.Helper()
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
	}
	g, err := graph.FromEdges(edges, n, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// cancelSetup is setup keeping the graph file handle, so the test can
// build a second engine over the same files to resume after a cancel.
func cancelSetup(t *testing.T, g *graph.CSR, prog Program, cfg Config) (*graph.File, *vertexFileHandle) {
	t.Helper()
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.gpsa")
	if err := graph.WriteFile(gpath, g); err != nil {
		t.Fatal(err)
	}
	gf, err := graph.OpenFile(gpath, mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gf.Close() })
	vf, err := CreateValueFile(filepath.Join(dir, "v.gpvf"), gf, prog)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vf.Close() })
	return gf, &vertexFileHandle{vf}
}

// TestCancelBetweenSuperstepsStopsCleanly cancels from the Progress hook
// — i.e. right after a commit — and expects the clean-stop path: no
// rollback needed, the file sealed at the superstep that just committed.
func TestCancelBetweenSuperstepsStopsCleanly(t *testing.T) {
	g := chainGraph(t, 60)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Dispatchers: 1, Computers: 1, Progress: func(st StepStats) {
		if st.Step == 1 {
			cancel()
		}
	}}
	gf, vh := cancelSetup(t, g, ccProg{}, cfg)
	eng, err := New(gf, vh.vf, ccProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cancelled := metrics.Counter(metrics.CtrRunsCancelled)
	res, err := eng.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancelled before superstep") {
		t.Fatalf("error %q does not name the clean-stop path", err)
	}
	if metrics.Counter(metrics.CtrRunsCancelled) != cancelled+1 {
		t.Fatal("cancelled-runs counter not incremented")
	}
	if res.Supersteps != 2 {
		t.Fatalf("ran %d supersteps before honoring the cancel, want 2", res.Supersteps)
	}
	if vh.vf.InProgress() {
		t.Fatal("file not sealed clean after between-superstep cancel")
	}
	if vh.vf.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", vh.vf.Epoch())
	}
	vh.resumeAndCompare(t, gf, g)
}

// TestCancelMidSuperstepRollsBack wedges the computing worker with a
// stall injection and cancels while superstep 0 is in flight: the engine
// must tear the crew down, roll the superstep back, and leave the file
// sealed clean at epoch 0 — then a resumed run must still produce the
// uninterrupted result.
func TestCancelMidSuperstepRollsBack(t *testing.T) {
	g := chainGraph(t, 60)
	fault.Activate(fault.NewPlan(0, fault.Injection{
		Site: fault.SiteComputerStall, Count: -1, Delay: 10 * time.Millisecond,
	}))
	defer fault.Deactivate()

	cfg := Config{Dispatchers: 1, Computers: 1}
	gf, vh := cancelSetup(t, g, ccProg{}, cfg)
	eng, err := New(gf, vh.vf, ccProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	rollbacks := metrics.Counter(metrics.CtrStepRollbacks)
	_, err = eng.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancelled and rolled back") {
		t.Fatalf("error %q does not name the rollback path", err)
	}
	if metrics.Counter(metrics.CtrStepRollbacks) != rollbacks+1 {
		t.Fatal("rollback counter not incremented")
	}
	if vh.vf.InProgress() {
		t.Fatal("file not sealed clean after mid-superstep cancel")
	}
	if vh.vf.Epoch() != 0 {
		t.Fatalf("epoch = %d after rolled-back superstep 0, want 0", vh.vf.Epoch())
	}
	fault.Deactivate()
	vh.resumeAndCompare(t, gf, g)
}

// TestCancelBeforeRunStartsIsImmediate: a context cancelled before
// RunContext runs a single superstep stops on the spot.
func TestCancelBeforeRunStartsIsImmediate(t *testing.T) {
	g := chainGraph(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng, vf := setup(t, g, ccProg{}, Config{Dispatchers: 1, Computers: 1})
	res, err := eng.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if res.Supersteps != 0 || vf.Epoch() != 0 || vf.InProgress() {
		t.Fatalf("pre-cancelled run touched the file: steps=%d epoch=%d inProgress=%v",
			res.Supersteps, vf.Epoch(), vf.InProgress())
	}
}

// TestConcurrentCancelDuringCommitRace fires cancellations at randomized
// offsets so they race the commit path; run under -race (make check) it
// doubles as the S3 data-race check for cancel-during-commit. Whatever
// instant the cancel lands at, the file must seal clean and a resumed
// run must converge to the uninterrupted result.
func TestConcurrentCancelDuringCommitRace(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-looped cancel test")
	}
	g := chainGraph(t, 40)
	for i := 0; i < 6; i++ {
		delay := time.Duration(i) * 3 * time.Millisecond
		func() {
			cfg := Config{Dispatchers: 1, Computers: 2}
			gf, vh := cancelSetup(t, g, ccProg{}, cfg)
			eng, err := New(gf, vh.vf, ccProg{}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(delay)
				cancel()
			}()
			_, err = eng.RunContext(ctx)
			cancel()
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("delay %v: unexpected error %v", delay, err)
			}
			if vh.vf.InProgress() {
				t.Fatalf("delay %v: file left in progress", delay)
			}
			vh.resumeAndCompare(t, gf, g)
		}()
	}
}

// vertexFileHandle bundles the resume-and-verify epilogue the cancel
// tests share: finish the computation with a fresh engine and compare
// every payload against the uninterrupted serial reference.
type vertexFileHandle struct{ vf *vertexfile.File }

func (h *vertexFileHandle) resumeAndCompare(t *testing.T, gf *graph.File, g *graph.CSR) {
	t.Helper()
	eng, err := New(gf, h.vf, ccProg{}, Config{Dispatchers: 1, Computers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("resumed run did not converge")
	}
	want := refRun(g, ccProg{}, DefaultMaxSupersteps)
	for v := int64(0); v < g.NumVertices; v++ {
		if got := h.vf.Value(v); got != want[v] {
			t.Fatalf("vertex %d = %d after resume, want %d", v, got, want[v])
		}
	}
}
