package core

import (
	"fmt"

	"repro/internal/graph"
)

// AccumMode selects the dispatcher→computer message path for programs
// that supply a Combiner. Instead of materialising a Message struct per
// edge and combining only at batch boundaries, dispatchers can fold
// messages in place into a per-(dispatcher, computer) accumulator and
// hand whole accumulator segments to computing workers — collapsing
// millions of mailbox messages into a handful of segment handoffs while
// keeping the dispatch/compute overlap (segments flush incrementally on
// a byte budget, not only at the barrier).
type AccumMode int

const (
	// AccumAuto (the default) picks dense or sparse accumulation per
	// superstep from the previous step's active-set count: a mostly
	// active graph gets the dense slab, a trickle of active vertices the
	// sparse table.
	AccumAuto AccumMode = iota
	// AccumDense forces the dense [] slab (one slot per owned vertex).
	// Requires the default mod ownership; falls back to sparse otherwise.
	AccumDense
	// AccumSparse forces the open-addressing sparse table.
	AccumSparse
	// AccumOff disables source-side accumulation: the legacy per-message
	// batch path (also what non-combinable programs always use).
	AccumOff
)

func (m AccumMode) String() string {
	switch m {
	case AccumAuto:
		return "auto"
	case AccumDense:
		return "dense"
	case AccumSparse:
		return "sparse"
	case AccumOff:
		return "off"
	}
	return fmt.Sprintf("AccumMode(%d)", int(m))
}

// ParseAccumMode parses the command-line spelling of an accumulator mode.
func ParseAccumMode(s string) (AccumMode, error) {
	switch s {
	case "", "auto":
		return AccumAuto, nil
	case "dense":
		return AccumDense, nil
	case "sparse":
		return AccumSparse, nil
	case "off", "legacy":
		return AccumOff, nil
	}
	return AccumAuto, fmt.Errorf("core: unknown accumulator mode %q (want auto, dense, sparse or off)", s)
}

// denseSeg is one dense accumulator slab for a single computing worker:
// vals[i] accumulates the combined message of the worker's i-th owned
// vertex (vertex i*Computers + worker under mod ownership), bits marks
// which slots are present. Slabs are engine-pooled: the dispatcher hands
// the whole slab to the computer at a flush point and takes a fresh one.
type denseSeg struct {
	count int // present entries
	vals  []uint64
	bits  []uint64
}

// sparseAcc is an open-addressing (linear probing) accumulator table for
// one computing worker, used when the active fraction is low. Keys are
// dst+1 so the zero word means empty. Growth and probing are fully
// deterministic, which keeps resumed and retried supersteps bit-identical.
type sparseAcc struct {
	keys  []uint64
	vals  []uint64
	n     int
	shift uint // 64 - log2(len(keys)), for fibonacci hashing
}

const sparseMinCap = 64

func newSparseAcc() *sparseAcc {
	s := &sparseAcc{}
	s.init(sparseMinCap)
	return s
}

func (s *sparseAcc) init(capacity int) {
	//lint:noalloc table construction is the arena's sanctioned cold path (free-list miss)
	s.keys = make([]uint64, capacity)
	//lint:noalloc table construction is the arena's sanctioned cold path (free-list miss)
	s.vals = make([]uint64, capacity)
	s.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		s.shift--
	}
	s.n = 0
}

func sparseHash(key uint64) uint64 { return key * 0x9E3779B97F4A7C15 }

// insert folds (dst, val) into the table, combining with c when the
// destination is already present. It reports whether the message was
// folded into an existing entry (combined at the source).
//
//gpsa:noalloc
func (s *sparseAcc) insert(dst graph.VertexID, val uint64, c Combiner) (folded bool) {
	if 4*(s.n+1) > 3*len(s.keys) {
		s.grow()
	}
	key := uint64(dst) + 1
	mask := uint64(len(s.keys) - 1)
	i := sparseHash(key) >> s.shift
	for {
		switch s.keys[i] {
		case 0:
			s.keys[i] = key
			s.vals[i] = val
			s.n++
			return false
		case key:
			s.vals[i] = c.CombineMsg(s.vals[i], val)
			return true
		}
		i = (i + 1) & mask
	}
}

func (s *sparseAcc) grow() {
	oldKeys, oldVals := s.keys, s.vals
	s.init(2 * len(oldKeys))
	mask := uint64(len(s.keys) - 1)
	for j, key := range oldKeys {
		if key == 0 {
			continue
		}
		i := sparseHash(key) >> s.shift
		for s.keys[i] != 0 {
			i = (i + 1) & mask
		}
		s.keys[i] = key
		s.vals[i] = oldVals[j]
		s.n++
	}
}

// drain appends every entry to out as Messages sorted by destination —
// a canonical order independent of the hash layout, so sparse segments
// are deterministic and align with dense segments — and empties the
// table for reuse. scratch is merge-sort workspace; it must have
// capacity for the drained entries or drain allocates one (dispatchers
// pass their pooled scratch, so the hot path never does).
//
//gpsa:noalloc
func (s *sparseAcc) drain(out, scratch []Message) []Message {
	start := len(out)
	for i, key := range s.keys {
		if key == 0 {
			continue
		}
		//lint:noalloc cap(out) holds every live entry by the getBuf(sizeEntries) contract; append never grows
		out = append(out, Message{Dst: graph.VertexID(key - 1), Val: s.vals[i]})
		s.keys[i] = 0
	}
	s.n = 0
	entries := out[start:]
	if cap(scratch) < len(entries) {
		//lint:noalloc fallback for undersized scratch; dispatchers pass pooled scratch so the hot path never takes it
		scratch = make([]Message, len(entries))
	}
	sortMessagesByDst(entries, scratch)
	return out
}

// reset empties the table in place without draining, discarding every
// entry — the abort path, where partial accumulator state from a failed
// superstep must not survive into the retry.
func (s *sparseAcc) reset() {
	for i := range s.keys {
		s.keys[i] = 0
	}
	s.n = 0
}
