package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/vertexfile"
)

// computer is the paper's computing worker (Algorithm 3). It owns the
// vertices v with v mod Computers == id and folds incoming messages into
// their values, message-driven, concurrently with dispatching.
type computer struct {
	id  int
	eng *Engine

	updates int64
	// pending buffers whole batches when SequentialPhases disables the
	// overlap (ablation mode): they are only processed at the barrier.
	pending [][]Message
}

// Execute is the computing worker's actor loop.
func (c *computer) Execute() (err error) {
	defer func() {
		if r := recover(); r != nil {
			ferr := fmt.Errorf("core: computer %d: panic: %v", c.id, r)
			// Unblock the manager, then re-panic so the supervisor's
			// restart policy decides whether a fresh incarnation takes
			// over this mailbox.
			c.eng.toManager.Put(workerMsg{kind: kindFailed, from: c.id, err: ferr}) //nolint:errcheck
			panic(r)
		}
	}()
	c.updates = 0
	c.pending = c.pending[:0]
	for {
		m, ok := c.eng.toComp[c.id].Get()
		if !ok {
			return nil
		}
		switch m.kind {
		case kindData:
			if c.eng.cfg.SequentialPhases {
				c.pending = append(c.pending, m.batch)
			} else {
				c.processBatch(m.batch)
			}
		case kindComputeOver:
			// FIFO mailbox ordering guarantees every batch sent before
			// the barrier has been received above.
			for _, b := range c.pending {
				c.processBatch(b)
			}
			c.pending = c.pending[:0]
			ack := workerMsg{kind: kindComputeOver, from: c.id, count: c.updates}
			c.updates = 0
			if err := c.eng.toManager.Put(ack); err != nil {
				return nil // manager mailbox closed: teardown in progress
			}
		case kindSystemOver:
			return nil
		default:
			return fmt.Errorf("core: computer %d: unexpected message kind %v", c.id, m.kind)
		}
	}
}

// processBatch applies Compute for each message (paper Algorithm 3).
func (c *computer) processBatch(batch []Message) {
	eng := c.eng
	// Data batches always belong to the superstep currently running: the
	// manager does not start superstep s+1 until this worker acked the
	// barrier of s. c.step tracks it via the barrier message, but during
	// the overlap phase the authoritative value is the file's epoch.
	step := eng.vf.Epoch()
	dcol, ucol := vertexfile.DispatchCol(step), vertexfile.UpdateCol(step)
	for i, m := range batch {
		// Bail out mid-batch when the run is being torn down (checked
		// every 256 messages to keep the hot loop cheap): the superstep is
		// rolled back anyway, and a prompt unwind is what bounds the
		// latency of a graceful SIGINT stop under slow user programs.
		if i&0xFF == 0 && eng.aborted.Load() {
			break
		}
		fault.Panic(fault.SiteComputerMsg)
		fault.Stall(fault.SiteComputerStall)
		v := int64(m.Dst)
		slot := eng.vf.Load(ucol, v)
		first := vertexfile.Stale(slot)
		var cur uint64
		if first {
			// First message of this superstep: the previous value lives
			// in the dispatch column (paper §IV-F).
			cur = vertexfile.Payload(eng.vf.Load(dcol, v))
		} else {
			cur = vertexfile.Payload(slot)
		}
		newVal, changed := eng.prog.Compute(v, cur, m.Val, first)
		if changed {
			eng.vf.Store(ucol, v, vertexfile.Pack(newVal, false))
			c.updates++
		}
	}
	eng.putBatch(batch)
}
