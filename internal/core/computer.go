package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/vertexfile"
)

// computer is the paper's computing worker (Algorithm 3). It owns the
// vertices v with v mod Computers == id and folds incoming messages into
// their values, message-driven, concurrently with dispatching. Messages
// arrive either as legacy batches (kindData) or as dense accumulator
// segments (kindSegment) carrying one pre-combined message per vertex.
type computer struct {
	id  int
	eng *Engine

	updates int64
	// pending buffers whole batches and segments when SequentialPhases
	// disables the overlap (ablation mode): they are only processed at
	// the barrier.
	pending []workerMsg
}

// Execute is the computing worker's actor loop.
func (c *computer) Execute() (err error) {
	defer func() {
		if r := recover(); r != nil {
			ferr := fmt.Errorf("core: computer %d: panic: %v", c.id, r)
			// Unblock the manager, then re-panic so the supervisor's
			// restart policy decides whether a fresh incarnation takes
			// over this mailbox.
			c.eng.toManager.Put(workerMsg{kind: kindFailed, from: c.id, err: ferr}) //nolint:errcheck
			panic(r)
		}
	}()
	c.updates = 0
	c.pending = c.pending[:0]
	for {
		m, ok := c.eng.toComp[c.id].Get()
		if !ok {
			return nil
		}
		switch m.kind {
		case kindData, kindSegment:
			if c.eng.cfg.SequentialPhases {
				c.pending = append(c.pending, m)
			} else {
				c.process(m)
			}
		case kindComputeOver:
			// FIFO mailbox ordering guarantees every batch sent before
			// the barrier has been received above.
			for _, p := range c.pending {
				c.process(p)
			}
			c.pending = c.pending[:0]
			ack := workerMsg{kind: kindComputeOver, from: c.id, count: c.updates}
			c.updates = 0
			if err := c.eng.toManager.Put(ack); err != nil {
				return nil // manager mailbox closed: teardown in progress
			}
		case kindSystemOver:
			return nil
		default:
			return fmt.Errorf("core: computer %d: unexpected message kind %v", c.id, m.kind)
		}
	}
}

func (c *computer) process(m workerMsg) {
	if m.kind == kindSegment {
		c.processSegment(m.seg)
	} else {
		c.processBatch(m.batch)
	}
}

// processSegment folds a dense accumulator segment into the update
// column via the value file's bulk-apply: one pre-combined message per
// present vertex, visited in vertex order. The fault hooks and the
// teardown poll mirror processBatch so injection coverage and graceful
// SIGINT latency are identical on both paths.
//
//gpsa:noalloc
func (c *computer) processSegment(seg *denseSeg) {
	eng := c.eng
	step := eng.vf.Epoch()
	stride := int64(len(eng.toComp))
	n := 0
	c.updates += eng.vf.BulkApply(step, int64(c.id), stride, seg.bits, seg.vals,
		//lint:noalloc one closure per segment, not per message, and the compiler stack-allocates it (gpsa-lint -escape proves no heap escape here)
		func(v int64, cur, msg uint64, first bool) (uint64, bool, bool) {
			if n&0xFF == 0 && eng.aborted.Load() {
				return 0, false, true
			}
			n++
			//lint:noalloc the injection site's PanicValue materializes only when a chaos-run fault fires; production paths allocate nothing
			fault.Panic(fault.SiteComputerMsg)
			fault.Stall(fault.SiteComputerStall)
			newVal, changed := eng.prog.Compute(v, cur, msg, first)
			return newVal, changed, false
		})
	eng.putSlab(seg)
}

// processBatch applies Compute for each message (paper Algorithm 3).
//
//gpsa:noalloc
func (c *computer) processBatch(batch []Message) {
	eng := c.eng
	// Data batches always belong to the superstep currently running: the
	// manager does not start superstep s+1 until this worker acked the
	// barrier of s. c.step tracks it via the barrier message, but during
	// the overlap phase the authoritative value is the file's epoch.
	step := eng.vf.Epoch()
	dcol, ucol := vertexfile.DispatchCol(step), vertexfile.UpdateCol(step)
	for i, m := range batch {
		// Bail out mid-batch when the run is being torn down (checked
		// every 256 messages to keep the hot loop cheap): the superstep is
		// rolled back anyway, and a prompt unwind is what bounds the
		// latency of a graceful SIGINT stop under slow user programs.
		if i&0xFF == 0 && eng.aborted.Load() {
			break
		}
		//lint:noalloc the injection site's PanicValue materializes only when a chaos-run fault fires; production paths allocate nothing
		fault.Panic(fault.SiteComputerMsg)
		fault.Stall(fault.SiteComputerStall)
		v := int64(m.Dst)
		slot := eng.vf.Load(ucol, v)
		first := vertexfile.Stale(slot)
		var cur uint64
		if first {
			// First message of this superstep: the previous value lives
			// in the dispatch column (paper §IV-F).
			cur = vertexfile.Payload(eng.vf.Load(dcol, v))
		} else {
			cur = vertexfile.Payload(slot)
		}
		newVal, changed := eng.prog.Compute(v, cur, m.Val, first)
		if changed {
			eng.vf.Store(ucol, v, vertexfile.Pack(newVal, false))
			c.updates++
		}
	}
	eng.putBatch(batch)
}
