package core
