package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/graph"
	"repro/internal/vertexfile"
)

// control message kinds of the paper's command protocol (§V-C).
type msgKind int

const (
	kindData           msgKind = iota // batch of vertex update messages
	kindIterationStart                // manager -> dispatcher
	kindDispatchOver                  // dispatcher -> manager
	kindComputeOver                   // manager -> computer (barrier) and ack back
	kindSystemOver                    // manager -> everyone: shut down
	kindFailed                        // worker -> manager: actor died
)

// workerMsg is the single envelope type flowing between actors. Control
// fields are interpreted per kind.
type workerMsg struct {
	kind   msgKind
	step   int64
	batch  []Message // kindData
	from   int       // sender worker id
	count  int64     // dispatchOver: messages generated; computeOver ack: updates
	count2 int64     // dispatchOver: messages delivered after combining
	err    error     // kindFailed
}

// Engine runs a Program over an on-disk CSR graph and a two-column vertex
// value file using the actor-based BSP model.
type Engine struct {
	gf   *graph.File
	vf   *vertexfile.File
	prog Program
	cfg  Config

	combiner   Combiner   // non-nil when the program combines and combining is enabled
	aggregator Aggregator // non-nil when the program aggregates
	system     *actor.System
	toManager  *actor.Mailbox[workerMsg]
	toDisp     []*actor.Mailbox[workerMsg]
	toComp     []*actor.Mailbox[workerMsg]
	intervals  []graph.Interval

	batchPool sync.Pool

	// aborted is set when the run is being torn down early (watchdog or
	// failure); dispatchers poll it between vertices so a wedged or
	// long-running superstep unwinds promptly instead of streaming its
	// whole interval.
	aborted atomic.Bool

	// crashAfterStep, when >= 0, aborts the run after the dispatch phase
	// of that superstep without committing it — simulating a crash for
	// fault-tolerance tests. Set only from tests.
	crashAfterStep int64
}

// ErrCrashInjected is returned by Run when a test-injected crash fires.
var ErrCrashInjected = errors.New("core: injected crash")

// New creates an engine. The graph file and value file must describe the
// same vertex set.
func New(gf *graph.File, vf *vertexfile.File, prog Program, cfg Config) (*Engine, error) {
	if gf.NumVertices != vf.NumVertices() {
		return nil, fmt.Errorf("core: graph has %d vertices but value file has %d", gf.NumVertices, vf.NumVertices())
	}
	if prog == nil {
		return nil, fmt.Errorf("core: nil program")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		gf:             gf,
		vf:             vf,
		prog:           prog,
		cfg:            cfg,
		crashAfterStep: -1,
	}
	e.batchPool.New = func() any { return make([]Message, 0, cfg.BatchSize) }
	if c, ok := prog.(Combiner); ok && !cfg.DisableCombining {
		e.combiner = c
	}
	if a, ok := prog.(Aggregator); ok {
		e.aggregator = a
	}
	// Access-pattern hints (paper §IV-C: the edge file is streamed
	// sequentially, vertex values are hit at random). Best-effort.
	gf.AdviseSequential() //nolint:errcheck
	vf.AdviseRandom()     //nolint:errcheck
	return e, nil
}

// CreateValueFile initializes a value file for prog at path, sized for gf.
func CreateValueFile(path string, gf *graph.File, prog Program) (*vertexfile.File, error) {
	return vertexfile.Create(path, gf.NumVertices, prog.Init)
}

func (e *Engine) getBatch() []Message {
	return e.batchPool.Get().([]Message)[:0]
}

func (e *Engine) putBatch(b []Message) {
	if cap(b) > 0 {
		e.batchPool.Put(b[:0]) //nolint:staticcheck // slices are pointer-shaped enough here
	}
}

// Run executes supersteps starting at the value file's current epoch
// until the program converges (a superstep with no messages and no
// updates) or MaxSupersteps have run. It may be called again to continue
// a computation.
func (e *Engine) Run() (*Result, error) {
	cfg := e.cfg
	e.aborted.Store(false)
	e.system = actor.NewSystem("gpsa", actor.RestartPolicy{})
	e.toManager = actor.NewMailbox[workerMsg](cfg.Dispatchers + cfg.Computers + 1)
	if cfg.Intervals == IntervalsByVertices {
		e.intervals = e.gf.PartitionByVertices(cfg.Dispatchers)
	} else {
		e.intervals = e.gf.Partition(cfg.Dispatchers)
	}

	e.toDisp = make([]*actor.Mailbox[workerMsg], len(e.intervals))
	for i := range e.toDisp {
		e.toDisp[i] = actor.NewMailbox[workerMsg](1)
	}
	e.toComp = make([]*actor.Mailbox[workerMsg], cfg.Computers)
	for i := range e.toComp {
		e.toComp[i] = actor.NewMailbox[workerMsg](cfg.MailboxCap)
	}

	for i := range e.toDisp {
		d := &dispatcher{id: i, eng: e, interval: e.intervals[i]}
		e.system.Spawn(fmt.Sprintf("dispatcher-%d", i), d)
	}
	for i := range e.toComp {
		c := &computer{id: i, eng: e}
		e.system.Spawn(fmt.Sprintf("computer-%d", i), c)
	}

	res, runErr := e.managerLoop()

	// SYSTEM_OVER: stop all workers, then collect them. The abort flag
	// unwinds dispatchers that are still mid-interval.
	e.aborted.Store(true)
	for _, mb := range e.toDisp {
		mb.Put(workerMsg{kind: kindSystemOver}) //nolint:errcheck // closing anyway
		mb.Close()
	}
	for _, mb := range e.toComp {
		mb.Put(workerMsg{kind: kindSystemOver}) //nolint:errcheck
		mb.Close()
	}
	waitErr := e.system.Wait()
	e.toManager.Close()

	if runErr != nil {
		return res, runErr
	}
	if waitErr != nil {
		return res, waitErr
	}
	return res, nil
}

// managerGet receives the next worker notification, honoring the
// watchdog timeout.
func (e *Engine) managerGet(phase string) (workerMsg, error) {
	if e.cfg.SuperstepTimeout <= 0 {
		m, ok := e.toManager.Get()
		if !ok {
			return workerMsg{}, errors.New("core: manager mailbox closed")
		}
		return m, nil
	}
	m, ok := e.toManager.GetTimeout(e.cfg.SuperstepTimeout)
	if !ok {
		return workerMsg{}, fmt.Errorf("core: superstep watchdog: no worker notification within %v during %s", e.cfg.SuperstepTimeout, phase)
	}
	return m, nil
}

// managerLoop is the paper's Algorithm 1.
func (e *Engine) managerLoop() (*Result, error) {
	res := &Result{
		DispatcherMessages: make([]int64, len(e.toDisp)),
		ComputerUpdates:    make([]int64, len(e.toComp)),
	}
	runStart := time.Now()
	for n := 0; n < e.cfg.MaxSupersteps; n++ {
		step := e.vf.Epoch()
		if err := e.vf.Begin(step, !e.cfg.DisableSync); err != nil {
			return res, err
		}
		t0 := time.Now()

		// ITERATION_START to every dispatcher.
		for _, mb := range e.toDisp {
			if err := mb.Put(workerMsg{kind: kindIterationStart, step: step}); err != nil {
				return res, err
			}
		}

		// Collect DISPATCH_OVER from every dispatcher. Computing workers
		// are processing concurrently the whole time (the overlap).
		var messages, delivered int64
		for i := 0; i < len(e.toDisp); i++ {
			m, err := e.managerGet("dispatch")
			if err != nil {
				return res, err
			}
			switch m.kind {
			case kindDispatchOver:
				messages += m.count
				delivered += m.count2
				res.DispatcherMessages[m.from] += m.count
			case kindFailed:
				return res, m.err
			default:
				return res, fmt.Errorf("core: manager got unexpected %v during dispatch", m.kind)
			}
		}

		if e.crashAfterStep >= 0 && step >= e.crashAfterStep {
			// Simulated crash: abandon the superstep without commit. The
			// value file keeps its in-progress state.
			return res, ErrCrashInjected
		}

		// Barrier: COMPUTE_OVER to every computing worker; they reply
		// after draining everything queued before it (FIFO).
		for _, mb := range e.toComp {
			if err := mb.Put(workerMsg{kind: kindComputeOver, step: step}); err != nil {
				return res, err
			}
		}
		var updates int64
		for i := 0; i < len(e.toComp); i++ {
			m, err := e.managerGet("compute barrier")
			if err != nil {
				return res, err
			}
			switch m.kind {
			case kindComputeOver:
				updates += m.count
				res.ComputerUpdates[m.from] += m.count
			case kindFailed:
				return res, m.err
			default:
				return res, fmt.Errorf("core: manager got unexpected %v during compute barrier", m.kind)
			}
		}

		var aggDone bool
		var aggVal float64
		if e.aggregator != nil {
			aggVal = e.aggregate(e.aggregator, step)
			aggDone = e.aggregator.AggConverged(step, aggVal)
		}

		if err := e.vf.Commit(step, !e.cfg.DisableReconcile, !e.cfg.DisableSync); err != nil {
			return res, err
		}

		var digest uint64
		if e.cfg.Digests {
			digest = e.digest(step)
		}

		st := StepStats{Step: step, Messages: messages, Delivered: delivered, Updates: updates, Aggregate: aggVal, Digest: digest, Duration: time.Since(t0)}
		res.Steps = append(res.Steps, st)
		res.Supersteps++
		res.Messages += messages
		res.Delivered += delivered
		res.Updates += updates
		if e.cfg.Progress != nil {
			e.cfg.Progress(st)
		}

		if (messages == 0 && updates == 0) || aggDone {
			res.Converged = true
			break
		}
	}
	res.Duration = time.Since(runStart)
	return res, nil
}
