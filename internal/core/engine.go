package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/vertexfile"
)

// control message kinds of the paper's command protocol (§V-C).
type msgKind int

const (
	kindData           msgKind = iota // batch of vertex update messages
	kindSegment                       // dense accumulator segment handoff
	kindIterationStart                // manager -> dispatcher
	kindDispatchOver                  // dispatcher -> manager
	kindComputeOver                   // manager -> computer (barrier) and ack back
	kindSystemOver                    // manager -> everyone: shut down
	kindFailed                        // worker -> manager: actor died
)

// workerMsg is the single envelope type flowing between actors. Control
// fields are interpreted per kind.
type workerMsg struct {
	kind   msgKind
	step   int64
	accum  AccumMode // iterationStart: effective accumulator mode
	batch  []Message // kindData
	seg    *denseSeg // kindSegment
	from   int       // sender worker id
	count  int64     // dispatchOver: messages generated; computeOver ack: updates
	count2 int64     // dispatchOver: messages delivered after combining
	err    error     // kindFailed
}

// Engine runs a Program over an on-disk CSR graph and a two-column vertex
// value file using the actor-based BSP model.
type Engine struct {
	gf   *graph.File
	vf   *vertexfile.File
	prog Program
	cfg  Config

	combiner   Combiner   // non-nil when the program combines and combining is enabled
	aggregator Aggregator // non-nil when the program aggregates
	system     *actor.System
	toManager  *actor.Mailbox[workerMsg]
	toDisp     []*actor.Mailbox[workerMsg]
	toComp     []*actor.Mailbox[workerMsg]
	toPrefetch []*actor.Mailbox[workerMsg]
	intervals  []graph.Interval

	// prefetchOn gates the async CSR prefetch actors (Config.Prefetch
	// and a mapping that supports advice). When set, each dispatcher
	// publishes its cursor position and superstep generation through
	// dispPos/dispStep — the only coupling between the dispatch loop
	// and its prefetcher (see prefetch.go).
	prefetchOn bool
	dispPos    []atomic.Int64
	dispStep   []atomic.Int64

	// ownerIsMod records that Config.Owner was left at the default mod
	// assignment, enabling the dispatcher's mask/stride owner fast path
	// and the dense accumulator's vertex→slab-index mapping.
	ownerIsMod bool
	// maxOwned is the largest number of vertices any computing worker
	// owns under mod assignment — the dense slab size.
	maxOwned int64

	// pool is the engine-owned arena behind slabs, sparse tables and
	// message buffers — explicit free lists (prewarmed in New) so the
	// steady-state hot path never allocates. See pool.go.
	pool *arena

	// per-superstep statistics scratch, reused across runStep calls.
	dispMsgs []int64
	compUpd  []int64

	// runCtx is the context of the current RunContext call; cancellation
	// stops the run cleanly between supersteps, or rolls the in-flight
	// superstep back so the value file seals clean and resumable.
	runCtx context.Context

	// aborted is set when the run is being torn down early (watchdog or
	// failure); dispatchers poll it between vertices so a wedged or
	// long-running superstep unwinds promptly instead of streaming its
	// whole interval.
	aborted atomic.Bool
}

// ErrCrashInjected wraps the fault.SiteStepCrash injection: a simulated
// whole-process death after the dispatch phase, without commit. Unlike
// worker failures it is not retried in-process — recovery happens on
// reopen, exercising the paper's crash model.
var ErrCrashInjected = errors.New("core: injected crash")

// errAborted is how a dispatcher unwinds when the manager is tearing the
// superstep down; it signals a clean early exit, not a failure.
var errAborted = errors.New("core: superstep aborted")

// stepError wraps a superstep failure with its phase and whether the
// supervised retry path may roll back and re-execute the superstep.
type stepError struct {
	step      int64
	phase     string
	err       error
	retryable bool
}

func (e *stepError) Error() string {
	return fmt.Sprintf("core: superstep %d (%s): %v", e.step, e.phase, e.err)
}

func (e *stepError) Unwrap() error { return e.err }

// New creates an engine. The graph file and value file must describe the
// same vertex set.
func New(gf *graph.File, vf *vertexfile.File, prog Program, cfg Config) (*Engine, error) {
	if gf.NumVertices != vf.NumVertices() {
		return nil, fmt.Errorf("core: graph has %d vertices but value file has %d", gf.NumVertices, vf.NumVertices())
	}
	if prog == nil {
		return nil, fmt.Errorf("core: nil program")
	}
	ownerIsMod := cfg.Owner == nil
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		gf:         gf,
		vf:         vf,
		prog:       prog,
		cfg:        cfg,
		ownerIsMod: ownerIsMod,
		maxOwned:   (gf.NumVertices + int64(cfg.Computers) - 1) / int64(cfg.Computers),
	}
	e.pool = newArena(e.maxOwned)
	if c, ok := prog.(Combiner); ok && !cfg.DisableCombining {
		e.combiner = c
	}
	if a, ok := prog.(Aggregator); ok {
		e.aggregator = a
	}
	e.prewarmPool()
	// Access-pattern hints (paper §IV-C: the edge file is streamed
	// sequentially, vertex values are hit at random). Best-effort.
	gf.AdviseSequential() //nolint:errcheck
	vf.AdviseRandom()     //nolint:errcheck
	return e, nil
}

// CreateValueFile initializes a value file for prog at path, sized for gf.
func CreateValueFile(path string, gf *graph.File, prog Program) (*vertexfile.File, error) {
	return vertexfile.Create(path, gf.NumVertices, prog.Init)
}

func (e *Engine) getBatch() []Message  { return e.pool.getBuf(e.cfg.BatchSize) }
func (e *Engine) putBatch(b []Message) { e.pool.putBuf(b) }
func (e *Engine) getSlab() *denseSeg   { return e.pool.getSlab() }
func (e *Engine) putSlab(s *denseSeg)  { e.pool.putSlab(s) }

// accumEntries is the per-accumulator sizing bound: the flush budget in
// entries, clamped by maxOwned — a per-(dispatcher, computer)
// accumulator can never hold more distinct destinations than the
// computer owns, so an oversized AccumBudget must not balloon the
// pooled sparse tables and drain buffers.
func (e *Engine) accumEntries() int {
	be := e.cfg.AccumBudget / 16 // 16 bytes per (dst, val) entry
	if be < 1 {
		be = 1
	}
	if int64(be) > e.maxOwned {
		be = int(e.maxOwned)
	}
	return be
}

// prewarmPool stocks the arena with the steady-state working set at
// construction time, so even the first superstep runs without hot-path
// allocation. Counts model each buffer kind's in-flight bound — how
// many can simultaneously sit between a dispatcher's handoff and a
// computer's release: the computer mailboxes bound the queue (flushed
// segments block the dispatcher once a mailbox is full), plus one
// being filled per pair and one being processed per computer. A
// per-kind byte cap keeps pathological shapes (huge slabs × deep
// mailboxes) from turning warm-up into a memory hog; past the cap the
// ramp allocates lazily, which at that scale is noise per message.
func (e *Engine) prewarmPool() {
	cfg := e.cfg
	pairs := cfg.Dispatchers * cfg.Computers
	const warmBytesCap = 256 << 20
	accum := e.combiner != nil && cfg.AccumMode != AccumOff

	scratchCap := cfg.BatchSize
	if accum {
		entries := e.accumEntries()
		if entries > scratchCap {
			scratchCap = entries
		}
		inFlight := cfg.Computers*cfg.MailboxCap + pairs + cfg.Computers
		denseOK := e.ownerIsMod && (cfg.AccumMode == AccumAuto || cfg.AccumMode == AccumDense)
		sparseOK := !denseOK || cfg.AccumMode == AccumAuto
		if denseOK {
			slabBytes := int(e.maxOwned*8 + (e.maxOwned+63)/64*8)
			e.pool.warmSlabs(warmCount(inFlight, slabBytes, warmBytesCap))
		}
		if sparseOK {
			e.pool.warmTables(pairs, entries)
			e.pool.warmBufs(warmCount(inFlight, entries*16, warmBytesCap), entries)
		}
	}
	// Legacy batch path (non-combiner programs, off mode) plus one sort
	// scratch per dispatcher.
	nb := cfg.Computers*cfg.MailboxCap + pairs + cfg.Dispatchers
	e.pool.warmBufs(warmCount(nb, cfg.BatchSize*16, warmBytesCap), cfg.BatchSize)
	e.pool.warmBufs(cfg.Dispatchers, scratchCap)
}

// warmCount caps a prewarm count so n buffers of bytesEach stay within
// the byte budget.
func warmCount(n, bytesEach, budget int) int {
	if bytesEach <= 0 {
		return n
	}
	if max := budget / bytesEach; n > max {
		return max
	}
	return n
}

// denseActiveDenom is the adaptive switch threshold: AccumAuto picks the
// dense slab when at least 1/denom of all vertices are active this
// superstep, the sparse table otherwise. At 16 bytes per slab slot vs
// ~21 bytes per occupied sparse entry (key+value at ≤75% load), dense
// wins comfortably above this fraction and the slab's O(|V|/Computers)
// flush scan stays amortised.
const denseActiveDenom = 8

// accumModeFor resolves the effective accumulator mode for the superstep
// about to run. Must be called after vf.Begin (it reads the active-set
// count Begin just snapshotted). Never returns AccumAuto.
func (e *Engine) accumModeFor() AccumMode {
	if e.combiner == nil || e.cfg.AccumMode == AccumOff {
		return AccumOff
	}
	switch e.cfg.AccumMode {
	case AccumDense:
		if e.ownerIsMod {
			return AccumDense
		}
		return AccumSparse // dense indexing requires mod ownership
	case AccumSparse:
		return AccumSparse
	}
	if e.ownerIsMod && e.vf.ActiveCount()*denseActiveDenom >= e.vf.NumVertices() {
		return AccumDense
	}
	return AccumSparse
}

// spawn builds a fresh worker crew: manager mailbox, per-worker
// mailboxes, and dispatcher/computer actors under a supervisor whose
// restart policy revives panicking workers. Retried supersteps always
// get a fresh crew and fresh mailboxes, so no stale batch from a failed
// attempt can leak into the retry.
func (e *Engine) spawn() {
	cfg := e.cfg
	e.aborted.Store(false)
	e.system = actor.NewSystemContext(e.runCtx, "gpsa", actor.RestartPolicy{MaxRestarts: cfg.MaxStepRetries + 1})
	e.toManager = actor.NewMailbox[workerMsg](cfg.Dispatchers + cfg.Computers + 1)
	e.toDisp = make([]*actor.Mailbox[workerMsg], len(e.intervals))
	for i := range e.toDisp {
		e.toDisp[i] = actor.NewMailbox[workerMsg](1)
	}
	e.toComp = make([]*actor.Mailbox[workerMsg], cfg.Computers)
	for i := range e.toComp {
		e.toComp[i] = actor.NewMailbox[workerMsg](cfg.MailboxCap)
	}
	for i := range e.toDisp {
		d := &dispatcher{id: i, eng: e, interval: e.intervals[i]}
		e.system.Spawn(fmt.Sprintf("dispatcher-%d", i), d)
	}
	for i := range e.toComp {
		c := &computer{id: i, eng: e}
		e.system.Spawn(fmt.Sprintf("computer-%d", i), c)
	}
	e.prefetchOn = cfg.Prefetch && e.gf.SupportsAdvise()
	e.toPrefetch = nil
	if e.prefetchOn {
		e.dispPos = make([]atomic.Int64, len(e.intervals))
		e.dispStep = make([]atomic.Int64, len(e.intervals))
		e.toPrefetch = make([]*actor.Mailbox[workerMsg], len(e.intervals))
		for i := range e.toPrefetch {
			e.dispPos[i].Store(e.intervals[i].StartWord)
			e.dispStep[i].Store(-1)
			e.toPrefetch[i] = actor.NewMailbox[workerMsg](1)
			p := &prefetcher{id: i, eng: e, interval: e.intervals[i]}
			p.resetWindow()
			p.lastStep = -1
			// Issue the first WILLNEED window synchronously: page-in I/O
			// for the interval head starts before the first dispatch
			// touches the mapping, and a short run cannot finish before
			// the actor goroutine is ever scheduled.
			p.pass()
			e.system.Spawn(fmt.Sprintf("prefetcher-%d", i), p)
		}
	}
}

// teardown stops and collects the current worker crew. After it returns
// every worker goroutine has exited (a vertex program wedged in user code
// may delay that — see Config.SuperstepTimeout). The returned error is
// the crew's name-ordered first failure, if any.
func (e *Engine) teardown() error {
	if e.system == nil {
		return nil
	}
	// SYSTEM_OVER, then close: TryPut so a full mailbox cannot block the
	// manager — closing releases blocked senders and receivers drain
	// whatever is buffered before seeing the close. The manager mailbox
	// closes first so no worker can block on it while being collected;
	// workers treat a closed manager mailbox as an abort.
	e.aborted.Store(true)
	e.toManager.Close()
	for _, mb := range e.toDisp {
		mb.TryPut(workerMsg{kind: kindSystemOver})
		mb.Close()
	}
	for _, mb := range e.toComp {
		mb.TryPut(workerMsg{kind: kindSystemOver})
		mb.Close()
	}
	for _, mb := range e.toPrefetch {
		mb.TryPut(workerMsg{kind: kindSystemOver})
		mb.Close()
	}
	waitErr := e.system.Wait()
	e.system = nil
	return waitErr
}

// Run executes supersteps starting at the value file's current epoch
// until the program converges (a superstep with no messages and no
// updates) or MaxSupersteps have run. It may be called again to continue
// a computation.
//
// When cfg.MaxStepRetries > 0 the run is supervised: a superstep that
// fails with a retryable error (worker panic or failure, watchdog
// timeout, failed begin/commit) is aborted, the worker crew is torn down
// and collected, the value file is rolled back to the superstep's
// immutable dispatch column, and — after an exponential backoff — the
// superstep is re-executed with a freshly spawned crew.
func (e *Engine) Run() (*Result, error) {
	//lint:ctxblock documented convenience wrapper; cancellable callers use RunContext
	return e.RunContext(context.Background())
}

// RunContext is Run under a context. Cancellation is honored at two
// grains: between supersteps the run simply stops (the previous commit
// already sealed the file clean), and mid-superstep the worker crew is
// torn down and the in-flight superstep rolled back to its immutable
// dispatch column — either way the value file is left cleanly sealed and
// resumable, and the returned error wraps ctx.Err().
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background() //lint:ctxblock defensive default for nil ctx; callers who want cancellation pass one
	}
	e.runCtx = ctx
	cfg := e.cfg
	if cfg.Intervals == IntervalsByVertices {
		e.intervals = e.gf.PartitionByVertices(cfg.Dispatchers)
	} else {
		e.intervals = e.gf.Partition(cfg.Dispatchers)
	}
	res := &Result{
		DispatcherMessages: make([]int64, len(e.intervals)),
		ComputerUpdates:    make([]int64, cfg.Computers),
	}
	e.dispMsgs = make([]int64, len(e.intervals))
	e.compUpd = make([]int64, cfg.Computers)
	if e.vf.Converged() {
		// The file's last commit sealed convergence: the computation is
		// finished, and re-running supersteps could perturb programs whose
		// halting condition is aggregator-based rather than quiescence.
		res.Converged = true
		return res, nil
	}

	e.spawn()
	runStart := now()
	retries := 0
	var runErr error
	for n := 0; n < cfg.MaxSupersteps; {
		if cerr := ctx.Err(); cerr != nil {
			// Clean stop between supersteps: the last commit sealed the
			// file, nothing to roll back.
			metrics.Inc(metrics.CtrRunsCancelled)
			runErr = fmt.Errorf("core: run cancelled before superstep %d: %w", e.vf.Epoch(), cerr)
			break
		}
		step := e.vf.Epoch()
		converged, err := e.runStep(step, res)
		if err == nil {
			retries = 0
			n++
			if converged {
				res.Converged = true
				break
			}
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			// Cancelled mid-superstep: quiesce the crew, then roll the
			// interrupted superstep back so the file seals clean — the
			// graceful-shutdown path behind SIGINT/SIGTERM.
			e.teardown() //nolint:errcheck
			metrics.Inc(metrics.CtrRunsCancelled)
			if rerr := e.vf.Rollback(step, !cfg.DisableSync); rerr != nil {
				runErr = fmt.Errorf("core: rolling back cancelled superstep %d: %w", step, errors.Join(cerr, rerr))
			} else {
				runErr = fmt.Errorf("core: superstep %d cancelled and rolled back: %w", step, cerr)
			}
			break
		}
		var se *stepError
		if !errors.As(err, &se) || !se.retryable || retries >= cfg.MaxStepRetries {
			runErr = err
			break
		}
		// Supervised recovery: quiesce the crew (its failure is the reason
		// we are here — discard it), roll the value file back to the
		// superstep's start, back off, and re-run with a fresh crew.
		retries++
		res.Retries++
		e.teardown() //nolint:errcheck
		if rerr := e.vf.Rollback(step, !cfg.DisableSync); rerr != nil {
			runErr = fmt.Errorf("core: rolling back superstep %d after %v: %w", step, err, rerr)
			break
		}
		time.Sleep(retryBackoff(cfg.StepRetryBackoff, retries))
		e.spawn()
	}
	res.Duration = now().Sub(runStart)
	waitErr := e.teardown()
	if runErr != nil {
		return res, runErr
	}
	if waitErr != nil {
		return res, waitErr
	}
	return res, nil
}

// retryBackoff doubles the base delay per consecutive retry: base, 2base,
// 4base, ... (shift-capped so pathological retry budgets cannot overflow).
func retryBackoff(base time.Duration, retry int) time.Duration {
	shift := retry - 1
	if shift > 16 {
		shift = 16
	}
	return base << uint(shift)
}

// managerGet receives the next worker notification, honoring both the
// watchdog timeout and context cancellation. With neither in play it
// blocks outright; otherwise it polls in short slices so a cancelled run
// notices within ~20ms even when no worker is producing notifications.
// The manager mailbox is only ever closed by this goroutine (teardown),
// so inside managerGet a timed-out GetTimeout always means "no message
// yet", never "closed".
func (e *Engine) managerGet(phase string) (workerMsg, error) {
	var deadline time.Time
	if e.cfg.SuperstepTimeout > 0 {
		deadline = now().Add(e.cfg.SuperstepTimeout)
	}
	if deadline.IsZero() && e.runCtx.Done() == nil {
		m, ok := e.toManager.Get()
		if !ok {
			return workerMsg{}, errors.New("core: manager mailbox closed")
		}
		return m, nil
	}
	const tick = 20 * time.Millisecond
	for {
		if cerr := e.runCtx.Err(); cerr != nil {
			return workerMsg{}, fmt.Errorf("core: %s interrupted: %w", phase, cerr)
		}
		wait := tick
		if !deadline.IsZero() {
			rem := deadline.Sub(now())
			if rem <= 0 {
				return workerMsg{}, fmt.Errorf("core: superstep watchdog: no worker notification within %v during %s", e.cfg.SuperstepTimeout, phase)
			}
			if rem < wait {
				wait = rem
			}
		}
		if m, ok := e.toManager.GetTimeout(wait); ok {
			return m, nil
		}
	}
}

// runStep executes one superstep — the body of the paper's Algorithm 1 —
// and reports whether the computation converged. Statistics are buffered
// locally and only merged into res after the commit succeeds, so a
// retried superstep is counted exactly once.
func (e *Engine) runStep(step int64, res *Result) (converged bool, err error) {
	if err := e.vf.Begin(step, !e.cfg.DisableSync); err != nil {
		return false, &stepError{step: step, phase: "begin", err: err, retryable: true}
	}
	t0 := now()

	// ITERATION_START to every dispatcher, carrying the message-path
	// decision for this superstep (adaptive dense/sparse accumulation,
	// resolved from the active-set count Begin just snapshotted).
	mode := e.accumModeFor()
	for _, mb := range e.toDisp {
		if err := mb.Put(workerMsg{kind: kindIterationStart, step: step, accum: mode}); err != nil {
			return false, &stepError{step: step, phase: "dispatch", err: err, retryable: false}
		}
	}

	// Collect DISPATCH_OVER from every dispatcher. Computing workers
	// are processing concurrently the whole time (the overlap).
	var messages, delivered int64
	dispMsgs := e.dispMsgs
	for i := range dispMsgs {
		dispMsgs[i] = 0
	}
	for i := 0; i < len(e.toDisp); i++ {
		m, err := e.managerGet("dispatch")
		if err != nil {
			return false, &stepError{step: step, phase: "dispatch", err: err, retryable: true}
		}
		switch m.kind {
		case kindDispatchOver:
			messages += m.count
			delivered += m.count2
			dispMsgs[m.from] += m.count
		case kindFailed:
			return false, &stepError{step: step, phase: "dispatch", err: m.err, retryable: true}
		default:
			return false, &stepError{step: step, phase: "dispatch",
				err: fmt.Errorf("core: manager got unexpected %v", m.kind), retryable: false}
		}
	}

	if ferr := fault.Error(fault.SiteStepCrash); ferr != nil {
		// Simulated process death: abandon the superstep without commit.
		// The value file keeps its in-progress state; recovery happens on
		// reopen (Open + Recover), not in-process.
		return false, fmt.Errorf("%w (superstep %d: %v)", ErrCrashInjected, step, ferr)
	}
	fault.Crash(fault.SiteKillDispatch)

	// Barrier: COMPUTE_OVER to every computing worker; they reply
	// after draining everything queued before it (FIFO).
	for _, mb := range e.toComp {
		if err := mb.Put(workerMsg{kind: kindComputeOver, step: step}); err != nil {
			return false, &stepError{step: step, phase: "compute barrier", err: err, retryable: false}
		}
	}
	var updates int64
	compUpd := e.compUpd
	for i := range compUpd {
		compUpd[i] = 0
	}
	for i := 0; i < len(e.toComp); i++ {
		m, err := e.managerGet("compute barrier")
		if err != nil {
			return false, &stepError{step: step, phase: "compute barrier", err: err, retryable: true}
		}
		switch m.kind {
		case kindComputeOver:
			updates += m.count
			compUpd[m.from] += m.count
		case kindFailed:
			return false, &stepError{step: step, phase: "compute barrier", err: m.err, retryable: true}
		default:
			return false, &stepError{step: step, phase: "compute barrier",
				err: fmt.Errorf("core: manager got unexpected %v", m.kind), retryable: false}
		}
	}

	fault.Crash(fault.SiteKillBarrier)

	var aggDone bool
	var aggVal float64
	if e.aggregator != nil {
		aggVal = e.aggregate(e.aggregator, step)
		aggDone = e.aggregator.AggConverged(step, aggVal)
	}

	// Convergence is decided before the commit so it can be sealed into
	// the header: a resumed run must know the computation finished rather
	// than re-running (and possibly perturbing) a converged result.
	converged = (messages == 0 && updates == 0) || aggDone
	if err := e.vf.CommitStep(step, vertexfile.CommitState{
		Reconcile: !e.cfg.DisableReconcile,
		Durable:   !e.cfg.DisableSync,
		Converged: converged,
		Aggregate: aggVal,
	}); err != nil {
		return false, &stepError{step: step, phase: "commit", err: err, retryable: true}
	}

	var digest uint64
	if e.cfg.Digests {
		digest = e.digest(step)
	}

	st := StepStats{Step: step, Accum: mode, Messages: messages, Delivered: delivered, Updates: updates, Aggregate: aggVal, Digest: digest, Duration: now().Sub(t0)}
	res.Steps = append(res.Steps, st)
	res.Supersteps++
	res.Messages += messages
	res.Delivered += delivered
	res.Updates += updates
	for i, c := range dispMsgs {
		res.DispatcherMessages[i] += c
	}
	for i, c := range compUpd {
		res.ComputerUpdates[i] += c
	}
	if e.cfg.Progress != nil {
		e.cfg.Progress(st)
	}
	return converged, nil
}
