package core

import (
	"testing"
)

// TestDigestsDeterministicAcrossConfigurations: for integer programs the
// per-superstep digests must be bit-identical regardless of worker
// counts and batch sizes — the cross-run equivalence check the feature
// exists for.
func TestDigestsDeterministicAcrossConfigurations(t *testing.T) {
	g := randomGraph(t, 51, 250, 1500).Symmetrize()
	digests := func(cfg Config) []uint64 {
		cfg.Digests = true
		eng, _ := setup(t, g, ccProg{}, cfg)
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(res.Steps))
		for i, s := range res.Steps {
			out[i] = s.Digest
		}
		return out
	}
	base := digests(Config{Dispatchers: 1, Computers: 1})
	for _, cfg := range []Config{
		{Dispatchers: 3, Computers: 4, BatchSize: 7},
		{Dispatchers: 8, Computers: 2, BatchSize: 1024},
		{SequentialPhases: true, MailboxCap: 1 << 14},
	} {
		got := digests(cfg)
		if len(got) != len(base) {
			t.Fatalf("superstep count differs: %d vs %d", len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("digest of superstep %d differs: %#x vs %#x (cfg %+v)", i, got[i], base[i], cfg)
			}
		}
	}
}

func TestDigestChangesWithState(t *testing.T) {
	g := randomGraph(t, 52, 100, 600).Symmetrize()
	eng, _ := setup(t, g, ccProg{}, Config{Digests: true})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) < 2 {
		t.Skip("converged too fast to compare digests")
	}
	if res.Steps[0].Digest == 0 {
		t.Fatal("digest not computed")
	}
	if res.Steps[0].Digest == res.Steps[len(res.Steps)-2].Digest && res.Steps[0].Updates != 0 {
		// Labels changed between superstep 0 and the last updating one,
		// so digests must differ (FNV collisions are astronomically
		// unlikely on this input).
		t.Fatal("digest did not change despite updates")
	}
}

func TestDigestsOffByDefault(t *testing.T) {
	g := randomGraph(t, 53, 50, 200)
	eng, _ := setup(t, g, ccProg{}, Config{})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Steps {
		if s.Digest != 0 {
			t.Fatal("digest computed without Config.Digests")
		}
	}
}
