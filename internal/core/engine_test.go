package core

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
)

// pagerank, bfs and cc are small local copies of the vertex programs (the
// real ones live in internal/algorithms, which imports this package).

type prProg struct{}

func (prProg) Init(v int64) (uint64, bool) { return math.Float64bits(1), true }
func (prProg) GenMsg(src int64, payload uint64, deg uint32, dst graph.VertexID, w float32) (uint64, bool) {
	if deg == 0 {
		return 0, false
	}
	return math.Float64bits(math.Float64frombits(payload) / float64(deg)), true
}
func (prProg) Compute(dst int64, cur, msg uint64, first bool) (uint64, bool) {
	m := math.Float64frombits(msg)
	if first {
		return math.Float64bits(0.15 + 0.85*m), true
	}
	return math.Float64bits(math.Float64frombits(cur) + 0.85*m), true
}

type bfsProg struct{ root graph.VertexID }

func (b bfsProg) Init(v int64) (uint64, bool) {
	if v == int64(b.root) {
		return 0, true
	}
	return vertexfile.PayloadMask, false
}
func (bfsProg) GenMsg(src int64, payload uint64, deg uint32, dst graph.VertexID, w float32) (uint64, bool) {
	return payload + 1, true
}
func (bfsProg) Compute(dst int64, cur, msg uint64, first bool) (uint64, bool) {
	if msg < cur {
		return msg, true
	}
	return cur, false
}

type ccProg struct{}

func (ccProg) Init(v int64) (uint64, bool) { return uint64(v), true }
func (ccProg) GenMsg(src int64, payload uint64, deg uint32, dst graph.VertexID, w float32) (uint64, bool) {
	return payload, true
}
func (ccProg) Compute(dst int64, cur, msg uint64, first bool) (uint64, bool) {
	if msg < cur {
		return msg, true
	}
	return cur, false
}

// setup writes g to disk and creates a value file for prog, returning an
// engine ready to run.
func setup(t testing.TB, g *graph.CSR, prog Program, cfg Config) (*Engine, *vertexfile.File) {
	t.Helper()
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.gpsa")
	if err := graph.WriteFile(gpath, g); err != nil {
		t.Fatal(err)
	}
	gf, err := graph.OpenFile(gpath, mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gf.Close() })
	vf, err := CreateValueFile(filepath.Join(dir, "v.gpvf"), gf, prog)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vf.Close() })
	eng, err := New(gf, vf, prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, vf
}

func randomGraph(t testing.TB, seed int64, v int64, e int) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, e)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(rng.Int63n(v)), Dst: graph.VertexID(rng.Int63n(v))}
	}
	g, err := graph.FromEdges(edges, v, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// refRun is a deterministic serial executor with engine semantics (a
// duplicate of algorithms.ReferenceRun, local to avoid an import cycle).
func refRun(g *graph.CSR, p Program, maxSteps int) []uint64 {
	n := g.NumVertices
	vals := make([]uint64, n)
	active := make([]bool, n)
	upd := make([]uint64, n)
	touched := make([]bool, n)
	for v := int64(0); v < n; v++ {
		vals[v], active[v] = p.Init(v)
	}
	for s := 0; s < maxSteps; s++ {
		var msgs, updates int64
		for i := range touched {
			touched[i] = false
		}
		for v := int64(0); v < n; v++ {
			if !active[v] {
				continue
			}
			deg := g.OutDegree(graph.VertexID(v))
			for _, dst := range g.Neighbors(graph.VertexID(v)) {
				mv, send := p.GenMsg(v, vals[v], deg, dst, 0)
				if !send {
					continue
				}
				msgs++
				d := int64(dst)
				first := !touched[d]
				cur := vals[d]
				if !first {
					cur = upd[d]
				}
				nv, changed := p.Compute(d, cur, mv, first)
				if changed {
					upd[d] = nv
					touched[d] = true
					updates++
				}
			}
		}
		for v := int64(0); v < n; v++ {
			active[v] = touched[v]
			if touched[v] {
				vals[v] = upd[v]
			}
		}
		if msgs == 0 && updates == 0 {
			break
		}
	}
	return vals
}

func TestEngineBFSMatchesReference(t *testing.T) {
	g := randomGraph(t, 1, 300, 1200)
	eng, vf := setup(t, g, bfsProg{root: 0}, Config{Dispatchers: 3, Computers: 4, BatchSize: 16})
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("BFS did not converge in %d supersteps", res.Supersteps)
	}
	want := refRun(g, bfsProg{root: 0}, 100)
	for v := int64(0); v < g.NumVertices; v++ {
		if got := vf.Value(v); got != want[v]&vertexfile.PayloadMask {
			t.Fatalf("vertex %d: level %d, want %d", v, got, want[v])
		}
	}
}

func TestEngineCCMatchesReference(t *testing.T) {
	g := randomGraph(t, 2, 200, 500).Symmetrize()
	eng, vf := setup(t, g, ccProg{}, Config{Dispatchers: 2, Computers: 3, BatchSize: 8})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("CC did not converge")
	}
	want := refRun(g, ccProg{}, 100)
	for v := int64(0); v < g.NumVertices; v++ {
		if got := vf.Value(v); got != want[v] {
			t.Fatalf("vertex %d: label %d, want %d", v, got, want[v])
		}
	}
}

func TestEnginePageRankMatchesReference(t *testing.T) {
	g := randomGraph(t, 3, 150, 900)
	const steps = 5
	eng, vf := setup(t, g, prProg{}, Config{MaxSupersteps: steps, Dispatchers: 2, Computers: 2, BatchSize: 32})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != steps {
		t.Fatalf("ran %d supersteps, want %d", res.Supersteps, steps)
	}
	want := refRun(g, prProg{}, steps)
	for v := int64(0); v < g.NumVertices; v++ {
		got := math.Float64frombits(vf.Value(v))
		ref := math.Float64frombits(want[v] & vertexfile.PayloadMask)
		if math.Abs(got-ref) > 1e-9*(1+math.Abs(ref)) {
			t.Fatalf("vertex %d: rank %g, want %g", v, got, ref)
		}
	}
}

func TestEngineSequentialPhasesAblation(t *testing.T) {
	g := randomGraph(t, 4, 120, 700)
	want := refRun(g, ccProg{}, 100)
	eng, vf := setup(t, g.Symmetrize(), ccProg{}, Config{SequentialPhases: true, MailboxCap: 4096})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want = refRun(g.Symmetrize(), ccProg{}, 100)
	for v := int64(0); v < g.NumVertices; v++ {
		if got := vf.Value(v); got != want[v] {
			t.Fatalf("sequential mode: vertex %d = %d, want %d", v, got, want[v])
		}
	}
}

func TestEngineSingleWorkerEachRole(t *testing.T) {
	g := randomGraph(t, 5, 80, 300)
	eng, vf := setup(t, g, bfsProg{root: 7}, Config{Dispatchers: 1, Computers: 1, BatchSize: 1})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := refRun(g, bfsProg{root: 7}, 100)
	for v := int64(0); v < g.NumVertices; v++ {
		if vf.Value(v) != want[v]&vertexfile.PayloadMask {
			t.Fatalf("vertex %d mismatch", v)
		}
	}
}

func TestEngineManyWorkers(t *testing.T) {
	g := randomGraph(t, 6, 64, 400)
	eng, vf := setup(t, g, ccProg{}, Config{Dispatchers: 16, Computers: 16, BatchSize: 2, MailboxCap: 2})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := refRun(g, ccProg{}, 100)
	for v := int64(0); v < g.NumVertices; v++ {
		if vf.Value(v) != want[v] {
			t.Fatalf("vertex %d mismatch", v)
		}
	}
}

func TestEngineEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(nil, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := setup(t, g, ccProg{}, Config{})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Messages != 0 {
		t.Fatalf("empty graph: converged=%v messages=%d", res.Converged, res.Messages)
	}
}

func TestEngineDisconnectedBFSLeavesUnreached(t *testing.T) {
	g, err := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, vf := setup(t, g, bfsProg{root: 0}, Config{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if vf.Value(1) != 1 {
		t.Fatalf("vertex 1 level = %d, want 1", vf.Value(1))
	}
	if vf.Value(2) != vertexfile.PayloadMask || vf.Value(3) != vertexfile.PayloadMask {
		t.Fatal("vertices in the other component were reached")
	}
}

func TestEngineStatsAccounting(t *testing.T) {
	// A 3-chain: 0->1->2. BFS from 0 sends 1 message per superstep for 2
	// supersteps, then a silent superstep to detect convergence.
	g, err := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	var progressed int
	cfg := Config{Progress: func(StepStats) { progressed++ }}
	eng, _ := setup(t, g, bfsProg{root: 0}, cfg)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2 || res.Updates != 2 {
		t.Fatalf("messages=%d updates=%d, want 2 and 2", res.Messages, res.Updates)
	}
	if res.Supersteps != 3 || !res.Converged {
		t.Fatalf("supersteps=%d converged=%v", res.Supersteps, res.Converged)
	}
	if progressed != res.Supersteps {
		t.Fatalf("progress callback ran %d times, want %d", progressed, res.Supersteps)
	}
	if len(res.Steps) != res.Supersteps {
		t.Fatalf("len(Steps) = %d", len(res.Steps))
	}
	if res.Steps[0].Messages != 1 || res.Steps[1].Messages != 1 || res.Steps[2].Messages != 0 {
		t.Fatalf("per-step messages = %+v", res.Steps)
	}
}

func TestEngineRunContinues(t *testing.T) {
	// Running PageRank 2 + 3 supersteps in two calls must equal a single
	// 5-superstep run.
	g := randomGraph(t, 8, 60, 240)
	engA, vfA := setup(t, g, prProg{}, Config{MaxSupersteps: 2})
	if _, err := engA.Run(); err != nil {
		t.Fatal(err)
	}
	engA.cfg.MaxSupersteps = 3
	if _, err := engA.Run(); err != nil {
		t.Fatal(err)
	}
	engB, vfB := setup(t, g, prProg{}, Config{MaxSupersteps: 5})
	if _, err := engB.Run(); err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumVertices; v++ {
		a := math.Float64frombits(vfA.Value(v))
		b := math.Float64frombits(vfB.Value(v))
		if math.Abs(a-b) > 1e-9*(1+math.Abs(b)) {
			t.Fatalf("vertex %d: split run %g, single run %g", v, a, b)
		}
	}
}

func TestEngineCrashRecovery(t *testing.T) {
	// Run CC normally to get the expected answer; then crash an identical
	// run mid-flight, recover, finish, and compare.
	g := randomGraph(t, 9, 150, 600).Symmetrize()
	engRef, vfRef := setup(t, g, ccProg{}, Config{})
	if _, err := engRef.Run(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.gpsa")
	if err := graph.WriteFile(gpath, g); err != nil {
		t.Fatal(err)
	}
	gf, err := graph.OpenFile(gpath, mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	vpath := filepath.Join(dir, "v.gpvf")
	vf, err := CreateValueFile(vpath, gf, ccProg{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(gf, vf, ccProg{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(fault.NewPlan(0, fault.Injection{Site: fault.SiteStepCrash, After: 2}))
	defer fault.Deactivate()
	if _, err := eng.Run(); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Run = %v, want injected crash", err)
	}
	fault.Deactivate()
	if err := vf.Close(); err != nil { // simulate process death
		t.Fatal(err)
	}

	vf2, err := vertexfile.Open(vpath)
	if err != nil {
		t.Fatal(err)
	}
	defer vf2.Close()
	if !vf2.InProgress() {
		t.Fatal("crashed value file not in progress")
	}
	if _, err := vf2.Recover(); err != nil {
		t.Fatal(err)
	}
	eng2, err := New(gf, vf2, ccProg{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if vf2.Value(v) != vfRef.Value(v) {
			t.Fatalf("vertex %d after recovery: %d, want %d", v, vf2.Value(v), vfRef.Value(v))
		}
	}
}

func TestEngineProgramPanicSurfaces(t *testing.T) {
	g := randomGraph(t, 10, 40, 160)
	eng, _ := setup(t, g, panicProg{}, Config{})
	_, err := eng.Run()
	if err == nil {
		t.Fatal("Run with panicking program succeeded")
	}
}

type panicProg struct{}

func (panicProg) Init(v int64) (uint64, bool) { return 0, true }
func (panicProg) GenMsg(src int64, payload uint64, deg uint32, dst graph.VertexID, w float32) (uint64, bool) {
	panic("genmsg exploded")
}
func (panicProg) Compute(dst int64, cur, msg uint64, first bool) (uint64, bool) {
	return 0, false
}

func TestNewRejectsMismatchedFiles(t *testing.T) {
	g := randomGraph(t, 11, 10, 20)
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.gpsa")
	if err := graph.WriteFile(gpath, g); err != nil {
		t.Fatal(err)
	}
	gf, err := graph.OpenFile(gpath, mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	vf, err := vertexfile.Create(filepath.Join(dir, "v.gpvf"), 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer vf.Close()
	if _, err := New(gf, vf, ccProg{}, Config{}); err == nil {
		t.Fatal("New accepted mismatched vertex counts")
	}
	if _, err := New(gf, vf, nil, Config{}); err == nil {
		t.Fatal("New accepted nil program")
	}
}

// Property: for random graphs and random worker configurations, the
// concurrent engine computes exactly the reference CC labels.
func TestEngineEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	fn := func(seed int64, vRaw, eRaw, dRaw, cRaw, bRaw uint8) bool {
		v := int64(vRaw%50) + 2
		e := int(eRaw) * 2
		g := randomGraph(t, seed, v, e).Symmetrize()
		cfg := Config{
			Dispatchers: int(dRaw%4) + 1,
			Computers:   int(cRaw%4) + 1,
			BatchSize:   int(bRaw%32) + 1,
		}
		eng, vf := setup(t, g, ccProg{}, cfg)
		if _, err := eng.Run(); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		want := refRun(g, ccProg{}, 100)
		for x := int64(0); x < v; x++ {
			if vf.Value(x) != want[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryAtEverySuperstep injects a crash after the dispatch
// phase of each superstep in turn, recovers, finishes the run, and
// verifies the result always equals an uninterrupted run — the paper's
// fault-tolerance claim, exhaustively.
func TestCrashRecoveryAtEverySuperstep(t *testing.T) {
	g := randomGraph(t, 60, 120, 500).Symmetrize()
	engRef, vfRef := setup(t, g, ccProg{}, Config{})
	resRef, err := engRef.Run()
	if err != nil {
		t.Fatal(err)
	}
	for crashAt := int64(0); crashAt < int64(resRef.Supersteps); crashAt++ {
		dir := t.TempDir()
		gpath := filepath.Join(dir, "g.gpsa")
		if err := graph.WriteFile(gpath, g); err != nil {
			t.Fatal(err)
		}
		gf, err := graph.OpenFile(gpath, mmap.ModeAuto)
		if err != nil {
			t.Fatal(err)
		}
		vpath := filepath.Join(dir, "v.gpvf")
		vf, err := CreateValueFile(vpath, gf, ccProg{})
		if err != nil {
			gf.Close()
			t.Fatal(err)
		}
		eng, err := New(gf, vf, ccProg{}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		// The crash site is consulted once per superstep, so hit crashAt+1
		// fires after the dispatch phase of superstep crashAt.
		fault.Activate(fault.NewPlan(0, fault.Injection{Site: fault.SiteStepCrash, After: crashAt + 1}))
		if _, err := eng.Run(); !errors.Is(err, ErrCrashInjected) {
			t.Fatalf("crashAt %d: Run = %v, want injected crash", crashAt, err)
		}
		fault.Deactivate()
		vf.Close()

		vf2, err := vertexfile.Open(vpath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vf2.Recover(); err != nil {
			t.Fatal(err)
		}
		eng2, err := New(gf, vf2, ccProg{}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng2.Run(); err != nil {
			t.Fatal(err)
		}
		for v := int64(0); v < g.NumVertices; v++ {
			if vf2.Value(v) != vfRef.Value(v) {
				t.Fatalf("crashAt %d: vertex %d = %d, want %d", crashAt, v, vf2.Value(v), vfRef.Value(v))
			}
		}
		vf2.Close()
		gf.Close()
	}
}

// slowProg wedges inside GenMsg; the watchdog must abort the run instead
// of hanging the manager.
type slowProg struct{ d time.Duration }

func (s slowProg) Init(v int64) (uint64, bool) { return 0, true }
func (s slowProg) GenMsg(src int64, payload uint64, deg uint32, dst graph.VertexID, w float32) (uint64, bool) {
	time.Sleep(s.d)
	return 0, true
}
func (s slowProg) Compute(dst int64, cur, msg uint64, first bool) (uint64, bool) {
	return msg, true
}

func TestSuperstepWatchdogAbortsWedgedRun(t *testing.T) {
	g := randomGraph(t, 61, 30, 60)
	eng, _ := setup(t, g, slowProg{d: 200 * time.Millisecond}, Config{
		SuperstepTimeout: 30 * time.Millisecond,
		Dispatchers:      1,
		Computers:        1,
	})
	start := time.Now()
	_, err := eng.Run()
	if err == nil {
		t.Fatal("wedged run completed without error")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("error = %v, want watchdog", err)
	}
	// The abort flag unwinds the dispatcher at the next vertex, so the
	// whole run must finish far sooner than streaming all 60 edges at
	// 200ms of GenMsg each (~12s).
	if time.Since(start) > 5*time.Second {
		t.Fatalf("watchdog abort took %v", time.Since(start))
	}
}

func TestWatchdogDisabledByDefault(t *testing.T) {
	g := randomGraph(t, 62, 80, 300)
	eng, _ := setup(t, g, bfsProg{root: 0}, Config{})
	if _, err := eng.Run(); err != nil {
		t.Fatalf("normal run failed: %v", err)
	}
}
