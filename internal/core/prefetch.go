package core

import (
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mmap"
)

// prefetchTick is how often an idle prefetch actor re-samples its
// dispatcher's cursor. Short enough that the WILLNEED window stays
// ahead of a fast in-memory stream; long enough that twenty parked
// actors cost nothing measurable.
const prefetchTick = 2 * time.Millisecond

// prefetcher is the async CSR prefetch actor: one per dispatcher,
// walking ahead of the dispatcher's edge cursor (Config.Prefetch). It
// samples the cursor position the dispatcher publishes after every
// vertex and keeps a window of madvise(WILLNEED) issued ahead of it —
// so page-in I/O for the next stretch of the interval overlaps with
// dispatching the current one — while trailing madvise(DONTNEED) one
// window behind, releasing consumed CSR pages so an out-of-core run
// does not evict the vertex value working set.
//
// The actor is a pure observer of the dispatch loop: it shares no
// state with the dispatcher beyond two atomics (cursor position and
// superstep generation) and only ever issues advice, never reads the
// mapping, so results are bit-identical with prefetch on or off. All
// madvise calls are best-effort; failures increment
// core.prefetch.errors and are otherwise ignored.
type prefetcher struct {
	id       int
	eng      *Engine
	interval graph.Interval

	fetched  int64 // WILLNEED issued up to this record-region offset
	evicted  int64 // DONTNEED issued up to this offset
	lastStep int64 // superstep generation the window was built for
}

// Execute is the prefetch actor loop: advance the window, then park on
// the command mailbox for a tick. The mailbox only ever carries
// SYSTEM_OVER; a timeout is the normal "keep walking" case, and a
// closed mailbox (teardown's TryPut can be dropped by a full box) also
// means exit — GetTimeout cannot distinguish the two, so Closed()
// disambiguates. Watermark state was initialized at spawn, which also
// issued the interval's first WILLNEED window synchronously.
func (p *prefetcher) Execute() error {
	mb := p.eng.toPrefetch[p.id]
	for {
		p.pass()
		if cmd, ok := mb.GetTimeout(prefetchTick); ok {
			if cmd.kind == kindSystemOver {
				return nil
			}
		} else if mb.Closed() {
			return nil
		}
	}
}

// resetWindow rewinds both watermarks to the interval start, the state
// of a superstep about to stream from the top.
func (p *prefetcher) resetWindow() {
	p.fetched = p.interval.StartWord
	p.evicted = p.interval.StartWord
}

// pass advances the WILLNEED window ahead of the published cursor and
// the DONTNEED trail behind it. Offsets are in the file's interval
// units (graph.File.UnitBytes converts); graph.AdviseRange does the
// unit-to-byte translation so this loop stays format-agnostic.
func (p *prefetcher) pass() {
	eng := p.eng
	if step := eng.dispStep[p.id].Load(); step != p.lastStep {
		// New superstep: the dispatcher restarts its cursor at the
		// interval top, so the window must be rebuilt from there.
		p.lastStep = step
		p.resetWindow()
	}
	pos := eng.dispPos[p.id].Load()
	unitBytes := eng.gf.UnitBytes()
	window := int64(eng.cfg.PrefetchWindow) / unitBytes
	if window < 1 {
		window = 1
	}

	target := pos + window
	if target > p.interval.EndWord {
		target = p.interval.EndWord
	}
	start := p.fetched
	if start < pos {
		start = pos // cursor overtook the window: skip consumed pages
	}
	if target > start {
		if err := eng.gf.AdviseRange(start, target, mmap.AccessWillNeed); err != nil {
			metrics.Inc(metrics.CtrPrefetchErrors)
		} else {
			metrics.Inc(metrics.CtrPrefetchWindows)
			metrics.Add(metrics.CtrPrefetchBytes, (target-start)*unitBytes)
		}
		p.fetched = target
	}

	if trail := pos - window; trail > p.evicted {
		if err := eng.gf.AdviseRange(p.evicted, trail, mmap.AccessDontNeed); err != nil {
			metrics.Inc(metrics.CtrPrefetchErrors)
		} else {
			metrics.Add(metrics.CtrPrefetchEvicted, (trail-p.evicted)*unitBytes)
		}
		p.evicted = trail
	}
}
