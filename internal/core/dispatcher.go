package core

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/actor"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/vertexfile"
)

// dispatcher is the paper's dispatcher worker (Algorithm 2). It owns one
// interval of the CSR edge file and, each superstep, streams it
// sequentially, generating messages for the out-edges of fresh vertices.
//
// For combiner-enabled programs the dispatcher folds messages at the
// source into per-computer accumulators (dense slab or sparse table,
// chosen by the manager per superstep) and hands whole segments to the
// computing workers; without a combiner it falls back to the legacy
// per-message batch path, whose semantics the durability contract is
// stated against.
type dispatcher struct {
	id       int
	eng      *Engine
	interval graph.Interval

	// per-computer outgoing batches (legacy path), arena-pooled
	bufs []([]Message)

	// scratch is the dispatcher-owned merge-sort workspace for sparse
	// drains and legacy combining, sized max(BatchSize, sizeEntries)
	// and recycled to the arena when the actor exits.
	scratch []Message

	// owner fast path, hoisted out of the per-edge loop: with the
	// default mod assignment the Owner call is replaced by a mod (or a
	// mask when the worker count is a power of two).
	workers  int
	isMod    bool
	ownMask  graph.VertexID // workers-1 when isMod and workers is a power of two
	ownShift uint           // log2(workers) for the dense index
	usesMask bool

	// accumulator state (combiner programs)
	dense         []*denseSeg  // per computer, handed off at flush
	sparse        []*sparseAcc // per computer, drained at flush, reused
	budgetEntries int          // entries per accumulator before an incremental flush
	sizeEntries   int          // budgetEntries clamped by maxOwned: buffer sizing bound

	delivered  int64 // messages delivered this superstep (post-combining)
	folded     int64 // messages combined into an existing accumulator entry
	denseSegs  int64 // dense segments handed off this superstep
	sparseSegs int64 // sparse segments handed off this superstep
}

// Execute is the dispatcher's actor loop: block on a command, run the
// superstep, notify the manager, repeat until SYSTEM_OVER.
func (d *dispatcher) Execute() (err error) {
	defer func() {
		if r := recover(); r != nil {
			ferr := fmt.Errorf("core: dispatcher %d: panic: %v", d.id, r)
			// Unblock the manager, which is waiting for DISPATCH_OVER,
			// then re-panic so the supervisor's restart policy decides
			// whether a fresh incarnation takes over this mailbox.
			d.eng.toManager.Put(workerMsg{kind: kindFailed, from: d.id, err: ferr}) //nolint:errcheck
			panic(r)
		}
	}()
	d.workers = len(d.eng.toComp)
	d.bufs = make([][]Message, d.workers)
	d.dense = make([]*denseSeg, d.workers)
	d.sparse = make([]*sparseAcc, d.workers)
	d.isMod = d.eng.ownerIsMod
	if d.isMod && d.workers&(d.workers-1) == 0 {
		d.usesMask = true
		d.ownMask = graph.VertexID(d.workers - 1)
		d.ownShift = uint(bits.TrailingZeros(uint(d.workers)))
	}
	d.budgetEntries = d.eng.cfg.AccumBudget / 16 // 16 bytes per (dst, val) entry
	if d.budgetEntries < 1 {
		d.budgetEntries = 1
	}
	d.sizeEntries = d.eng.accumEntries()
	scratchCap := d.eng.cfg.BatchSize
	if d.eng.combiner != nil && d.eng.cfg.AccumMode != AccumOff && d.sizeEntries > scratchCap {
		scratchCap = d.sizeEntries
	}
	d.scratch = d.eng.pool.getBuf(scratchCap)
	// Return every locally owned buffer to the arena on the way out
	// (normal exit or panic — a restarted incarnation draws fresh ones).
	defer d.releasePooled()
	for {
		cmd, ok := d.eng.toDisp[d.id].Get()
		if !ok || cmd.kind == kindSystemOver {
			return nil
		}
		if cmd.kind != kindIterationStart {
			return fmt.Errorf("core: dispatcher %d: unexpected command %v", d.id, cmd.kind)
		}
		d.delivered, d.folded, d.denseSegs, d.sparseSegs = 0, 0, 0, 0
		if d.eng.prefetchOn {
			// Announce the new superstep to the prefetch actor: its
			// WILLNEED window rewinds to the interval top with us.
			d.eng.dispPos[d.id].Store(d.interval.StartWord)
			d.eng.dispStep[d.id].Store(cmd.step)
		}
		sent, err := d.runSuperstep(cmd.step, cmd.accum)
		if err != nil {
			if d.aborting(err) {
				// The manager is already tearing this superstep down;
				// park for the next command instead of failing.
				d.dropAccumulators()
				continue
			}
			d.eng.toManager.Put(workerMsg{kind: kindFailed, from: d.id, err: err}) //nolint:errcheck
			return err
		}
		over := workerMsg{kind: kindDispatchOver, from: d.id, count: sent, count2: d.delivered}
		if err := d.eng.toManager.Put(over); err != nil {
			return nil // manager mailbox closed: teardown in progress
		}
	}
}

// aborting reports whether err is teardown fallout rather than a real
// failure: an explicit abort, a mailbox closed under the dispatcher, or
// anything that happened after the engine raised the abort flag.
func (d *dispatcher) aborting(err error) bool {
	return errors.Is(err, errAborted) || errors.Is(err, actor.ErrMailboxClosed) || d.eng.aborted.Load()
}

// dropAccumulators discards partially filled accumulator state after an
// aborted superstep, so no entry from the failed attempt can leak into a
// retried one. Slabs return to the arena (putSlab clears their bitmap);
// sparse tables are reset in place and kept for the next superstep.
func (d *dispatcher) dropAccumulators() {
	for w := range d.dense {
		if s := d.dense[w]; s != nil {
			d.eng.pool.putSlab(s)
			d.dense[w] = nil
		}
		if s := d.sparse[w]; s != nil && s.n > 0 {
			s.reset()
		}
		if len(d.bufs[w]) > 0 {
			d.bufs[w] = d.bufs[w][:0]
		}
	}
}

// releasePooled returns every buffer the dispatcher still owns — partial
// slabs, sparse tables, legacy batches, sort scratch — to the arena.
// Runs once when the actor exits; buffers already handed to computers
// are theirs to release.
func (d *dispatcher) releasePooled() {
	pool := d.eng.pool
	for w := range d.dense {
		if s := d.dense[w]; s != nil {
			pool.putSlab(s)
			d.dense[w] = nil
		}
	}
	for w := range d.sparse {
		if s := d.sparse[w]; s != nil {
			pool.putTable(s)
			d.sparse[w] = nil
		}
	}
	for w := range d.bufs {
		if b := d.bufs[w]; b != nil {
			pool.putBuf(b)
			d.bufs[w] = nil
		}
	}
	if d.scratch != nil {
		pool.putBuf(d.scratch)
		d.scratch = nil
	}
}

// owner resolves the computing worker owning dst, using the hoisted mod
// fast path when the configuration allows it.
func (d *dispatcher) owner(dst graph.VertexID) int {
	if d.usesMask {
		return int(dst & d.ownMask)
	}
	if d.isMod {
		return int(dst) % d.workers
	}
	return d.eng.cfg.Owner(dst, d.workers)
}

// denseIndex maps dst to its slot in the owning computer's dense slab
// (only valid under mod ownership).
func (d *dispatcher) denseIndex(dst graph.VertexID) int64 {
	if d.usesMask {
		return int64(dst >> d.ownShift)
	}
	return int64(dst) / int64(d.workers)
}

//gpsa:noalloc
func (d *dispatcher) runSuperstep(step int64, mode AccumMode) (sent int64, err error) {
	eng := d.eng
	col := vertexfile.DispatchCol(step)
	weighted := eng.gf.Weighted()
	cur := eng.gf.Cursor(d.interval)
	prefetch := eng.prefetchOn
	for {
		v, deg, edges, ok := cur.Next()
		if !ok {
			break
		}
		if prefetch {
			// Publish progress for the prefetch actor (one plain store
			// per vertex; the actor paces itself off this watermark).
			eng.dispPos[d.id].Store(cur.Pos())
		}
		if eng.aborted.Load() {
			return sent, errAborted
		}
		slot := eng.vf.Load(col, v)
		if vertexfile.Stale(slot) {
			continue // not updated last superstep: skip vertex and edges
		}
		payload := vertexfile.Payload(slot)
		for i := 0; i < int(deg); i++ {
			dst, w := graph.DecodeEdge(edges, i, weighted)
			msgVal, send := eng.prog.GenMsg(v, payload, deg, dst, w)
			if !send {
				continue
			}
			//lint:noalloc the injection site's PanicValue materializes only when a chaos-run fault fires; production paths allocate nothing
			fault.Panic(fault.SiteDispatcherMsg)
			wk := d.owner(dst)
			switch mode {
			case AccumDense:
				err = d.accumDense(wk, dst, msgVal)
			case AccumSparse:
				err = d.accumSparse(wk, dst, msgVal)
			default:
				err = d.send(wk, dst, msgVal)
			}
			if err != nil {
				return sent, err
			}
			sent++
		}
		// Consume: invalidate so the vertex is skipped until recomputed
		// (paper Algorithm 2, setHighestBitTo1).
		eng.vf.Store(col, v, slot|vertexfile.StaleBit)
	}
	if err := cur.Err(); err != nil {
		return sent, err
	}
	if err := d.flush(mode); err != nil {
		return sent, err
	}
	if mode != AccumOff {
		metrics.Add(metrics.CtrAccumFolded, d.folded)
		metrics.Add(metrics.CtrAccumDelivered, d.delivered)
		metrics.Add(metrics.CtrAccumDenseSegs, d.denseSegs)
		metrics.Add(metrics.CtrAccumSparseSegs, d.sparseSegs)
	}
	return sent, nil
}

// accumDense folds a message into the dense slab of computer wk, handing
// the slab off as a segment once it reaches the byte budget.
//
//gpsa:noalloc
func (d *dispatcher) accumDense(wk int, dst graph.VertexID, val uint64) error {
	s := d.dense[wk]
	if s == nil {
		s = d.eng.getSlab()
		d.dense[wk] = s
	}
	idx := d.denseIndex(dst)
	word, bit := idx>>6, uint64(1)<<uint(idx&63)
	if s.bits[word]&bit != 0 {
		s.vals[idx] = d.eng.combiner.CombineMsg(s.vals[idx], val)
		d.folded++
		return nil
	}
	s.bits[word] |= bit
	s.vals[idx] = val
	s.count++
	if s.count >= d.budgetEntries {
		return d.flushDense(wk)
	}
	return nil
}

// accumSparse folds a message into the sparse table of computer wk,
// draining it as a sorted batch once it reaches the byte budget.
//
//gpsa:noalloc
func (d *dispatcher) accumSparse(wk int, dst graph.VertexID, val uint64) error {
	s := d.sparse[wk]
	if s == nil {
		// Pre-sized so the table never grows before the flush budget
		// drains it: acquisition is the only allocation point, and the
		// arena makes even that a free-list pop after warm-up.
		s = d.eng.pool.getTable(d.sizeEntries)
		d.sparse[wk] = s
	}
	if s.insert(dst, val, d.eng.combiner) {
		d.folded++
		return nil
	}
	if s.n >= d.budgetEntries {
		return d.flushSparse(wk)
	}
	return nil
}

//gpsa:noalloc
func (d *dispatcher) flushDense(wk int) error {
	s := d.dense[wk]
	if s == nil || s.count == 0 {
		return nil
	}
	d.dense[wk] = nil
	d.delivered += int64(s.count)
	d.denseSegs++
	return d.eng.toComp[wk].Put(workerMsg{kind: kindSegment, seg: s})
}

//gpsa:noalloc
func (d *dispatcher) flushSparse(wk int) error {
	s := d.sparse[wk]
	if s == nil || s.n == 0 {
		return nil
	}
	batch := s.drain(d.eng.pool.getBuf(d.sizeEntries), d.scratch)
	d.delivered += int64(len(batch))
	d.sparseSegs++
	return d.eng.toComp[wk].Put(workerMsg{kind: kindData, batch: batch})
}

// send buffers a message for the computing worker owning dst on the
// legacy path, flushing the batch when full.
//
//gpsa:noalloc
func (d *dispatcher) send(wk int, dst graph.VertexID, val uint64) error {
	if d.bufs[wk] == nil {
		d.bufs[wk] = d.eng.getBatch()
	}
	//lint:noalloc cap is fixed at BatchSize by getBatch and the batch flushes before exceeding it; append never grows
	d.bufs[wk] = append(d.bufs[wk], Message{Dst: dst, Val: val})
	if len(d.bufs[wk]) >= d.eng.cfg.BatchSize {
		return d.dispatchBatch(wk)
	}
	return nil
}

//gpsa:noalloc
func (d *dispatcher) dispatchBatch(w int) error {
	b := d.bufs[w]
	d.bufs[w] = nil
	if c := d.eng.combiner; c != nil {
		b = combineScratch(b, d.scratch, c)
	}
	d.delivered += int64(len(b))
	return d.eng.toComp[w].Put(workerMsg{kind: kindData, batch: b})
}

// flush hands over every partial accumulator or batch at the end of the
// interval, in worker order (deterministic).
func (d *dispatcher) flush(mode AccumMode) error {
	for w := 0; w < d.workers; w++ {
		var err error
		switch mode {
		case AccumDense:
			err = d.flushDense(w)
		case AccumSparse:
			err = d.flushSparse(w)
		default:
			if len(d.bufs[w]) > 0 {
				err = d.dispatchBatch(w)
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}
