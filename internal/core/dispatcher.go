package core

import (
	"errors"
	"fmt"

	"repro/internal/actor"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/vertexfile"
)

// dispatcher is the paper's dispatcher worker (Algorithm 2). It owns one
// interval of the CSR edge file and, each superstep, streams it
// sequentially, generating messages for the out-edges of fresh vertices.
type dispatcher struct {
	id       int
	eng      *Engine
	interval graph.Interval

	// per-computer outgoing batches, reused across supersteps
	bufs []([]Message)

	delivered int64 // messages delivered this superstep (post-combining)
}

// Execute is the dispatcher's actor loop: block on a command, run the
// superstep, notify the manager, repeat until SYSTEM_OVER.
func (d *dispatcher) Execute() (err error) {
	defer func() {
		if r := recover(); r != nil {
			ferr := fmt.Errorf("core: dispatcher %d: panic: %v", d.id, r)
			// Unblock the manager, which is waiting for DISPATCH_OVER,
			// then re-panic so the supervisor's restart policy decides
			// whether a fresh incarnation takes over this mailbox.
			d.eng.toManager.Put(workerMsg{kind: kindFailed, from: d.id, err: ferr}) //nolint:errcheck
			panic(r)
		}
	}()
	d.bufs = make([][]Message, len(d.eng.toComp))
	for {
		cmd, ok := d.eng.toDisp[d.id].Get()
		if !ok || cmd.kind == kindSystemOver {
			return nil
		}
		if cmd.kind != kindIterationStart {
			return fmt.Errorf("core: dispatcher %d: unexpected command %v", d.id, cmd.kind)
		}
		d.delivered = 0
		sent, err := d.runSuperstep(cmd.step)
		if err != nil {
			if d.aborting(err) {
				// The manager is already tearing this superstep down;
				// park for the next command instead of failing.
				continue
			}
			d.eng.toManager.Put(workerMsg{kind: kindFailed, from: d.id, err: err}) //nolint:errcheck
			return err
		}
		over := workerMsg{kind: kindDispatchOver, from: d.id, count: sent, count2: d.delivered}
		if err := d.eng.toManager.Put(over); err != nil {
			return nil // manager mailbox closed: teardown in progress
		}
	}
}

// aborting reports whether err is teardown fallout rather than a real
// failure: an explicit abort, a mailbox closed under the dispatcher, or
// anything that happened after the engine raised the abort flag.
func (d *dispatcher) aborting(err error) bool {
	return errors.Is(err, errAborted) || errors.Is(err, actor.ErrMailboxClosed) || d.eng.aborted.Load()
}

func (d *dispatcher) runSuperstep(step int64) (sent int64, err error) {
	eng := d.eng
	col := vertexfile.DispatchCol(step)
	weighted := eng.gf.Weighted()
	cur := eng.gf.Cursor(d.interval)
	for {
		v, deg, edges, ok := cur.Next()
		if !ok {
			break
		}
		if eng.aborted.Load() {
			return sent, errAborted
		}
		slot := eng.vf.Load(col, v)
		if vertexfile.Stale(slot) {
			continue // not updated last superstep: skip vertex and edges
		}
		payload := vertexfile.Payload(slot)
		for i := 0; i < int(deg); i++ {
			dst, w := graph.DecodeEdge(edges, i, weighted)
			msgVal, send := eng.prog.GenMsg(v, payload, deg, dst, w)
			if !send {
				continue
			}
			if err := d.send(dst, msgVal); err != nil {
				return sent, err
			}
			sent++
		}
		// Consume: invalidate so the vertex is skipped until recomputed
		// (paper Algorithm 2, setHighestBitTo1).
		eng.vf.Store(col, v, slot|vertexfile.StaleBit)
	}
	if err := cur.Err(); err != nil {
		return sent, err
	}
	return sent, d.flush()
}

// send buffers a message for the computing worker owning dst, flushing
// the batch when full.
func (d *dispatcher) send(dst graph.VertexID, val uint64) error {
	fault.Panic(fault.SiteDispatcherMsg)
	w := d.eng.cfg.Owner(dst, len(d.bufs))
	if d.bufs[w] == nil {
		d.bufs[w] = d.eng.getBatch()
	}
	d.bufs[w] = append(d.bufs[w], Message{Dst: dst, Val: val})
	if len(d.bufs[w]) >= d.eng.cfg.BatchSize {
		return d.dispatchBatch(w)
	}
	return nil
}

func (d *dispatcher) dispatchBatch(w int) error {
	b := d.bufs[w]
	d.bufs[w] = nil
	if c := d.eng.combiner; c != nil {
		b = CombineBatch(b, c)
	}
	d.delivered += int64(len(b))
	return d.eng.toComp[w].Put(workerMsg{kind: kindData, batch: b})
}

// flush sends all partial batches at the end of the interval.
func (d *dispatcher) flush() error {
	for w := range d.bufs {
		if len(d.bufs[w]) > 0 {
			if err := d.dispatchBatch(w); err != nil {
				return err
			}
		}
	}
	return nil
}
