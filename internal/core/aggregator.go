package core

import "repro/internal/vertexfile"

// Aggregator is an optional Program extension (Pregel's aggregators,
// referenced by the paper's related work): after each superstep's compute
// barrier the manager folds every *updated* vertex — with its previous
// and new payloads — into a global aggregate, records it in the step's
// stats, and lets the program halt the run on it. This is how PageRank
// gets a principled L1-convergence stop instead of a fixed superstep
// budget.
type Aggregator interface {
	// AggInit returns the superstep's identity accumulator.
	AggInit() float64
	// AggVertex folds one updated vertex into the accumulator. old is the
	// previous superstep's payload, new the freshly computed one.
	AggVertex(acc float64, v int64, oldPayload, newPayload uint64) float64
	// AggConverged inspects the superstep's final aggregate and reports
	// whether the computation should halt.
	AggConverged(step int64, agg float64) bool
}

// aggregate runs the manager-side aggregation pass for superstep step.
// It executes between the compute barrier and the commit, when the update
// column is quiescent and fresh flags mark exactly the updated vertices.
func (e *Engine) aggregate(agg Aggregator, step int64) float64 {
	d, u := vertexfile.DispatchCol(step), vertexfile.UpdateCol(step)
	acc := agg.AggInit()
	for v := int64(0); v < e.vf.NumVertices(); v++ {
		slot := e.vf.Load(u, v)
		if vertexfile.Stale(slot) {
			continue
		}
		acc = agg.AggVertex(acc, v, vertexfile.Payload(e.vf.Load(d, v)), vertexfile.Payload(slot))
	}
	return acc
}
