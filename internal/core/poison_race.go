//go:build race

package core

// poisonDefault turns poison-on-release on under the race detector:
// race/debug builds pay the memset so recycled-buffer reads that slip
// past the presence metadata surface as loud garbage. Release builds
// skip it (poison_release.go).
const poisonDefault = true
