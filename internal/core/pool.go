package core

import (
	"math/bits"
	"sync"
)

// arena is the engine-owned memory pool behind the message hot path.
//
// The accumulator machinery recycles three kinds of buffers at high
// rate: dense slabs (one fixed geometry per engine), sparse accumulator
// tables, and []Message buffers (legacy batches, sparse drain segments,
// and sort scratch). Earlier revisions used sync.Pool, but the garbage
// collector empties those between cycles, so a multi-second run kept
// re-allocating megabyte slabs it had just released — the alloc/msg
// regression BENCH_9f06539.json records. The arena instead holds
// explicit free lists owned by the engine: nothing is ever dropped
// until the engine itself is garbage, so steady-state supersteps run
// allocation-free.
//
// Ownership protocol (see DESIGN.md "Memory discipline & prefetch"):
//
//   - A buffer has exactly one owner at a time: the dispatcher filling
//     it, the mailbox carrying it, the computer draining it, or the
//     arena. Handoff transfers ownership; double-release is a bug.
//   - Buffers come out of the arena empty (slab bits clear, table keys
//     zero, message buffers length 0). Release re-establishes that
//     invariant, so an aborted superstep's partial state can never leak
//     into a retry.
//   - In race/poison builds every release also overwrites the payload
//     bytes with a poison pattern, so any read of recycled memory that
//     slipped past the presence metadata yields loud garbage instead of
//     a stale-but-plausible value.
//
// All free lists are guarded by one mutex; acquisition happens per
// flush or per superstep, never per message, so contention is nil.
type arena struct {
	mu sync.Mutex

	// slabs hold denseSeg buffers; every slab in an engine shares the
	// same geometry (slabVals value slots), so a single list suffices.
	slabs    []*denseSeg
	slabVals int64

	// tables holds sparse accumulator tables, bucketed by capacity
	// (always a power of two).
	tables map[int][]*sparseAcc

	// bufs holds []Message buffers bucketed by floor-log2 of capacity:
	// a buffer in bucket k has cap in [2^k, 2^(k+1)), so any buffer in
	// bucket ceilLog2(want) or above satisfies a request for want.
	bufs [48][][]Message
}

// poisonWord is the value poison-on-release paints over recycled
// payloads. It decodes to an absurd result for every shipped algorithm
// (a denormal-huge float, a ~4-billion BFS level), so leaks are loud.
const poisonWord uint64 = 0xDEADBEEFDEADBEEF

// poisonReleases enables poison-on-release. It defaults on under the
// race detector (poison_race.go) and off otherwise; tests may flip it
// to exercise the recycling protocol in regular builds.
var poisonReleases = poisonDefault

func newArena(slabVals int64) *arena {
	return &arena{slabVals: slabVals, tables: map[int][]*sparseAcc{}}
}

// getSlab returns an empty dense slab (count 0, bits clear).
//
//gpsa:noalloc
func (a *arena) getSlab() *denseSeg {
	a.mu.Lock()
	if n := len(a.slabs); n > 0 {
		s := a.slabs[n-1]
		a.slabs = a.slabs[:n-1]
		a.mu.Unlock()
		return s
	}
	a.mu.Unlock()
	return &denseSeg{
		vals: make([]uint64, a.slabVals),
		bits: make([]uint64, (a.slabVals+63)/64),
	}
}

// putSlab recycles a dense slab, clearing its presence bitmap (values
// are meaningless wherever the bit is clear, so only the bitmap needs
// the memset) and poisoning the values in poison builds. A partially
// consumed slab — abort mid-segment — is cleaned by the same stroke.
//
//gpsa:noalloc
func (a *arena) putSlab(s *denseSeg) {
	if s == nil || int64(len(s.vals)) != a.slabVals {
		return // foreign geometry (engine reconfigured): let it go
	}
	for i := range s.bits {
		s.bits[i] = 0
	}
	s.count = 0
	if poisonReleases {
		for i := range s.vals {
			s.vals[i] = poisonWord
		}
	}
	a.mu.Lock()
	//lint:noalloc free-list growth, bounded by the in-flight slab count and amortized by prewarm
	a.slabs = append(a.slabs, s)
	a.mu.Unlock()
}

// tableCapFor returns the sparse-table capacity that holds entries
// occupied slots without exceeding the 3/4 load factor that triggers
// growth — i.e. a table of this capacity never grows before the flush
// budget drains it.
func tableCapFor(entries int) int {
	want := entries*4/3 + 1
	if want < sparseMinCap {
		want = sparseMinCap
	}
	return ceilPow2(want)
}

func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// getTable returns an empty sparse accumulator with capacity at least
// tableCapFor(entries).
//
//gpsa:noalloc
func (a *arena) getTable(entries int) *sparseAcc {
	capacity := tableCapFor(entries)
	a.mu.Lock()
	if list := a.tables[capacity]; len(list) > 0 {
		s := list[len(list)-1]
		a.tables[capacity] = list[:len(list)-1]
		a.mu.Unlock()
		return s
	}
	a.mu.Unlock()
	s := &sparseAcc{} //lint:noalloc table construction is the arena's sanctioned cold path (free-list miss)
	s.init(capacity)
	return s
}

// putTable recycles a sparse accumulator, zeroing its keys (the
// emptiness invariant) and poisoning its values in poison builds.
//
//gpsa:noalloc
func (a *arena) putTable(s *sparseAcc) {
	if s == nil {
		return
	}
	for i := range s.keys {
		s.keys[i] = 0
	}
	s.n = 0
	if poisonReleases {
		for i := range s.vals {
			s.vals[i] = poisonWord
		}
	}
	a.mu.Lock()
	//lint:noalloc free-list growth, bounded by the in-flight table count and amortized by prewarm
	a.tables[len(s.keys)] = append(a.tables[len(s.keys)], s)
	a.mu.Unlock()
}

// getBuf returns an empty []Message with capacity at least want.
//
//gpsa:noalloc
func (a *arena) getBuf(want int) []Message {
	if want < 1 {
		want = 1
	}
	k := bits.Len(uint(want - 1)) // ceil log2: smallest bucket whose floor capacity >= want
	if want == 1 {
		k = 0
	}
	a.mu.Lock()
	for j := k; j < len(a.bufs); j++ {
		if list := a.bufs[j]; len(list) > 0 {
			b := list[len(list)-1]
			a.bufs[j] = list[:len(list)-1]
			a.mu.Unlock()
			return b[:0]
		}
	}
	a.mu.Unlock()
	return make([]Message, 0, ceilPow2(want))
}

// putBuf recycles a message buffer into the bucket of its capacity.
//
//gpsa:noalloc
func (a *arena) putBuf(b []Message) {
	c := cap(b)
	if c == 0 {
		return
	}
	if poisonReleases {
		b = b[:c]
		for i := range b {
			b[i] = Message{Dst: 0xDEADBEEF, Val: poisonWord}
		}
	}
	k := bits.Len(uint(c)) - 1 // floor log2
	a.mu.Lock()
	//lint:noalloc free-list growth, bounded by the in-flight buffer count and amortized by prewarm
	a.bufs[k] = append(a.bufs[k], b[:0])
	a.mu.Unlock()
}

// warmSlabs stocks the slab free list with n slabs. Engine.New sizes n
// to the in-flight bound — on a busy superstep every flushed segment
// between the dispatcher's handoff and the computer's release — so the
// whole run draws from the free list and never allocates a slab.
func (a *arena) warmSlabs(n int) {
	warm := make([]*denseSeg, 0, n)
	for i := 0; i < n; i++ {
		warm = append(warm, a.getSlab())
	}
	for _, s := range warm {
		a.putSlab(s)
	}
}

// warmTables stocks n sparse tables sized for entries occupied slots.
func (a *arena) warmTables(n, entries int) {
	for i := 0; i < n; i++ {
		a.putTable(a.getTable(entries))
	}
}

// warmBufs stocks n message buffers of capacity at least capEach.
func (a *arena) warmBufs(n, capEach int) {
	warm := make([][]Message, 0, n)
	for i := 0; i < n; i++ {
		warm = append(warm, a.getBuf(capEach))
	}
	for _, b := range warm {
		a.putBuf(b)
	}
}

// sortMessagesByDst stable-sorts ms by destination using scratch (cap
// >= len(ms)) — a bottom-up merge sort that allocates nothing, unlike
// sort.SliceStable whose closure and swapper escape on every call.
// Stability is what keeps same-destination messages folding in
// generation order, aligning the legacy combine path bit-for-bit with
// the source-side accumulators even for float sums.
//
//gpsa:noalloc
func sortMessagesByDst(ms, scratch []Message) {
	n := len(ms)
	if n < 2 {
		return
	}
	const runLen = 24
	for lo := 0; lo < n; lo += runLen {
		hi := lo + runLen
		if hi > n {
			hi = n
		}
		// Insertion sort is stable.
		for i := lo + 1; i < hi; i++ {
			m := ms[i]
			j := i
			for j > lo && ms[j-1].Dst > m.Dst {
				ms[j] = ms[j-1]
				j--
			}
			ms[j] = m
		}
	}
	scratch = scratch[:cap(scratch)]
	for width := runLen; width < n; width *= 2 {
		for lo := 0; lo+width < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if hi > n {
				hi = n
			}
			// Merge ms[lo:mid] and ms[mid:hi], left side first on ties.
			copy(scratch, ms[lo:mid])
			l, r, o := 0, mid, lo
			left := scratch[:mid-lo]
			for l < len(left) && r < hi {
				if ms[r].Dst < left[l].Dst {
					ms[o] = ms[r]
					r++
				} else {
					ms[o] = left[l]
					l++
				}
				o++
			}
			for l < len(left) {
				ms[o] = left[l]
				l++
				o++
			}
		}
	}
}
