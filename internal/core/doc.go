// Package core implements the GPSA engine — the paper's primary
// contribution: a single-machine graph processing system whose modified
// BSP model decouples message dispatching from computation and overlaps
// the two inside each superstep using actors (paper §IV, Figs. 2–3).
//
// Three actor roles cooperate (paper §V):
//
//   - The manager (Algorithm 1) coordinates supersteps: it signals
//     ITERATION_START to the dispatchers, collects DISPATCH_OVER
//     notifications, broadcasts the COMPUTE_OVER barrier to the computing
//     workers, collects their acknowledgements, commits the superstep to
//     the vertex value file, and finally issues SYSTEM_OVER.
//
//   - Dispatcher actors (Algorithm 2) each own an interval of the CSR
//     edge file, balanced by edge count. Every superstep they stream
//     their interval sequentially through the memory mapping, skip
//     vertices whose dispatch-column slot carries the stale flag, call
//     the program's GenMsg for each out-edge of fresh vertices, and send
//     the resulting messages to the computing worker that owns the
//     destination vertex.
//
//   - Computing workers (Algorithm 3) own disjoint vertex sets
//     (dst mod W) and process messages as they arrive — concurrently with
//     dispatching, which is the paper's key overlap. On a vertex's first
//     message of the superstep (update-column slot still stale) the
//     previous value is fetched from the dispatch column; subsequent
//     messages fold into the accumulating update-column value. Changed
//     values are written fresh; unchanged vertices stay stale and are
//     skipped by dispatchers next superstep (selective scheduling).
//
// Messages are batched between dispatchers and computing workers
// (Config.BatchSize); this is an implementation constant, not a model
// change — mailboxes remain asynchronous and FIFO, and the barrier
// message is only sent after all dispatcher sends have completed, so
// FIFO ordering guarantees computing workers observe it last.
package core
