package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
)

// ccCombining is ccProg plus a min-combiner.
type ccCombining struct{ ccProg }

func (ccCombining) CombineMsg(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func TestCombiningPreservesResults(t *testing.T) {
	g := randomGraph(t, 31, 200, 1200).Symmetrize()
	want := refRun(g, ccProg{}, 100)

	eng, vf := setup(t, g, ccCombining{}, Config{BatchSize: 64})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if vf.Value(v) != want[v] {
			t.Fatalf("vertex %d: %d, want %d", v, vf.Value(v), want[v])
		}
	}
	if res.Delivered >= res.Messages {
		t.Fatalf("combining delivered %d of %d generated messages; expected a reduction on a dense symmetric graph",
			res.Delivered, res.Messages)
	}
}

func TestDisableCombining(t *testing.T) {
	g := randomGraph(t, 32, 100, 600)
	eng, _ := setup(t, g, ccCombining{}, Config{DisableCombining: true})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Messages {
		t.Fatalf("combining disabled but delivered %d != generated %d", res.Delivered, res.Messages)
	}
}

func TestNonCombinableProgramDeliversEverything(t *testing.T) {
	g := randomGraph(t, 33, 100, 600)
	eng, _ := setup(t, g, ccProg{}, Config{})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Messages {
		t.Fatalf("no combiner but delivered %d != generated %d", res.Delivered, res.Messages)
	}
}

type minComb struct{}

func (minComb) CombineMsg(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Property: combineBatch preserves the per-destination fold (min) and
// never grows the batch.
func TestCombineBatchProperty(t *testing.T) {
	fn := func(dsts []uint8, vals []uint16) bool {
		n := len(dsts)
		if len(vals) < n {
			n = len(vals)
		}
		batch := make([]Message, n)
		want := map[graph.VertexID]uint64{}
		for i := 0; i < n; i++ {
			d := graph.VertexID(dsts[i] % 16)
			v := uint64(vals[i])
			batch[i] = Message{Dst: d, Val: v}
			if cur, ok := want[d]; !ok || v < cur {
				want[d] = v
			}
		}
		out := CombineBatch(batch, minComb{})
		if len(out) > n || len(out) != len(want) {
			return false
		}
		seen := map[graph.VertexID]bool{}
		for _, m := range out {
			if seen[m.Dst] {
				return false // duplicate destination survived
			}
			seen[m.Dst] = true
			if want[m.Dst] != m.Val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockOwnerPartitioning(t *testing.T) {
	g := randomGraph(t, 34, 300, 1500)
	want := refRun(g, bfsProg{root: 0}, 100)
	eng, vf := setup(t, g, bfsProg{root: 0}, Config{
		Owner:     BlockOwner(g.NumVertices),
		Computers: 4,
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if vf.Value(v) != want[v]&vertexfile.PayloadMask {
			t.Fatalf("vertex %d mismatch under BlockOwner", v)
		}
	}
	// Sanity of the owner function itself.
	for _, v := range []graph.VertexID{0, 150, 299} {
		w := BlockOwner(300)(v, 4)
		if w < 0 || w >= 4 {
			t.Fatalf("BlockOwner(%d) = %d out of range", v, w)
		}
	}
	if BlockOwner(300)(0, 4) != 0 || BlockOwner(300)(299, 4) != 3 {
		t.Fatal("BlockOwner endpoints wrong")
	}
}

func TestIntervalsByVertices(t *testing.T) {
	g := randomGraph(t, 35, 400, 2000).Symmetrize()
	want := refRun(g, ccProg{}, 100)
	eng, vf := setup(t, g, ccProg{}, Config{
		Intervals:   IntervalsByVertices,
		Dispatchers: 4,
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if vf.Value(v) != want[v] {
			t.Fatalf("vertex %d mismatch under vertex-balanced intervals", v)
		}
	}
}

func TestPerWorkerStatsSumToTotals(t *testing.T) {
	g := randomGraph(t, 37, 300, 1800)
	eng, _ := setup(t, g, prProg{}, Config{MaxSupersteps: 3, Dispatchers: 3, Computers: 4})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DispatcherMessages) == 0 || len(res.ComputerUpdates) != 4 {
		t.Fatalf("per-worker stats missing: %d dispatchers, %d computers",
			len(res.DispatcherMessages), len(res.ComputerUpdates))
	}
	var msgs, upds int64
	for _, m := range res.DispatcherMessages {
		msgs += m
	}
	for _, u := range res.ComputerUpdates {
		upds += u
	}
	if msgs != res.Messages {
		t.Fatalf("dispatcher stats sum %d, total %d", msgs, res.Messages)
	}
	if upds != res.Updates {
		t.Fatalf("computer stats sum %d, total %d", upds, res.Updates)
	}
}

func TestDisableSyncStillCorrect(t *testing.T) {
	g := randomGraph(t, 36, 150, 800)
	want := refRun(g, bfsProg{root: 1}, 100)
	eng, vf := setup(t, g, bfsProg{root: 1}, Config{DisableSync: true})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if vf.Value(v) != want[v]&vertexfile.PayloadMask {
			t.Fatalf("vertex %d mismatch with sync disabled", v)
		}
	}
}

func TestEngineRunsOnCompactFormat(t *testing.T) {
	// The compact (varint) on-disk format must be a drop-in replacement.
	g := randomGraph(t, 38, 300, 1800).Symmetrize()
	want := refRun(g, ccProg{}, 100)

	dir := t.TempDir()
	gpath := dir + "/g2.gpsa"
	if err := graph.WriteFileCompact(gpath, g); err != nil {
		t.Fatal(err)
	}
	gf, err := graph.OpenFile(gpath, mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	vf, err := CreateValueFile(dir+"/v.gpvf", gf, ccProg{})
	if err != nil {
		t.Fatal(err)
	}
	defer vf.Close()
	eng, err := New(gf, vf, ccProg{}, Config{Dispatchers: 3, Computers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge on compact input")
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if vf.Value(v) != want[v] {
			t.Fatalf("vertex %d: %d, want %d", v, vf.Value(v), want[v])
		}
	}
}
