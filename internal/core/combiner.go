package core

// Combiner is an optional Program extension (Pregel's message combiner):
// when a program's Compute is insensitive to replacing two messages for
// the same destination with CombineMsg of them, dispatchers merge
// same-destination messages inside each outgoing batch before it is
// mailed, cutting message traffic. Min-folds (BFS, CC, SSSP) combine with
// min; PageRank's accumulation combines with float sum.
type Combiner interface {
	CombineMsg(a, b uint64) uint64
}

// CombineBatch sorts a batch by destination and merges duplicates with
// the combiner. It returns the (shortened) batch. It is exported for the
// distributed engine (package cluster), which combines before putting
// batches on the wire.
//
// The sort is stable so same-destination messages fold in generation
// order — the same left-fold the source-side accumulators perform —
// keeping the legacy path deterministic and alignable with them even for
// non-commutative combiners and float sums.
func CombineBatch(batch []Message, c Combiner) []Message {
	if len(batch) < 2 {
		return batch
	}
	return combineScratch(batch, make([]Message, len(batch)), c)
}

// combineScratch is CombineBatch against caller-owned sort workspace
// (cap >= len(batch)): the dispatcher's legacy path runs it with pooled
// scratch so in-engine combining allocates nothing.
func combineScratch(batch, scratch []Message, c Combiner) []Message {
	if len(batch) < 2 {
		return batch
	}
	sortMessagesByDst(batch, scratch)
	out := batch[:1]
	for _, m := range batch[1:] {
		last := &out[len(out)-1]
		if m.Dst == last.Dst {
			last.Val = c.CombineMsg(last.Val, m.Val)
			continue
		}
		//lint:noalloc out is combined in place over batch's backing array; len(out) <= len(batch) so append never grows
		out = append(out, m)
	}
	return out
}
