package core

import "repro/internal/vertexfile"

// digest hashes the payloads of the column committed by superstep step
// (the next superstep's dispatch column) with FNV-1a, giving a canonical
// fingerprint of the computation state.
func (e *Engine) digest(step int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	col := vertexfile.DispatchCol(step + 1)
	h := uint64(offset64)
	for v := int64(0); v < e.vf.NumVertices(); v++ {
		p := vertexfile.Payload(e.vf.Load(col, v))
		for i := 0; i < 8; i++ {
			h ^= (p >> (8 * i)) & 0xFF
			h *= prime64
		}
	}
	return h
}
