package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Combiner-enabled copies of the test programs (the real ones live in
// internal/algorithms, which imports this package).

type prComb struct{ prProg }

func (prComb) CombineMsg(a, b uint64) uint64 {
	return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
}

type bfsComb struct{ bfsProg }

func (bfsComb) CombineMsg(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// dprProg is a local copy of the delta-PageRank program: the payload
// packs (rank, pending residual) as float32s, messages carry float64
// deltas and combine by summation.
type dprProg struct{}

func dprPack(rank, delta float32) uint64 {
	return uint64(math.Float32bits(rank))<<31 | uint64(math.Float32bits(delta))>>1
}

func dprUnpack(p uint64) (rank, delta float32) {
	return math.Float32frombits(uint32(p >> 31)), math.Float32frombits(uint32(p<<1) &^ 1)
}

func (dprProg) Init(v int64) (uint64, bool) { return dprPack(0.15, 0.15), true }

func (dprProg) GenMsg(src int64, payload uint64, deg uint32, dst graph.VertexID, w float32) (uint64, bool) {
	if deg == 0 {
		return 0, false
	}
	_, delta := dprUnpack(payload)
	if float64(delta) < 1e-4 {
		return 0, false
	}
	return math.Float64bits(0.85 * float64(delta) / float64(deg)), true
}

func (dprProg) Compute(dst int64, cur, msg uint64, first bool) (uint64, bool) {
	rank, delta := dprUnpack(cur)
	if first {
		delta = 0
	}
	m := float32(math.Float64frombits(msg))
	return dprPack(rank+m, delta+m), true
}

func (dprProg) CombineMsg(a, b uint64) uint64 {
	return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
}

// ssspComb is a weighted shortest-paths program with a min combiner.
type ssspComb struct{ root graph.VertexID }

func (s ssspComb) Init(v int64) (uint64, bool) {
	if v == int64(s.root) {
		return math.Float64bits(0), true
	}
	return math.Float64bits(math.Inf(1)), false
}

func (ssspComb) GenMsg(src int64, payload uint64, deg uint32, dst graph.VertexID, w float32) (uint64, bool) {
	return math.Float64bits(math.Float64frombits(payload) + math.Abs(float64(w))), true
}

func (ssspComb) Compute(dst int64, cur, msg uint64, first bool) (uint64, bool) {
	if math.Float64frombits(msg) < math.Float64frombits(cur) {
		return msg, true
	}
	return cur, false
}

func (ssspComb) CombineMsg(a, b uint64) uint64 {
	if math.Float64frombits(a) < math.Float64frombits(b) {
		return a
	}
	return b
}

func weightedGraph(t testing.TB, seed, v int64, e int) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, e)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    graph.VertexID(rng.Int63n(v)),
			Dst:    graph.VertexID(rng.Int63n(v)),
			Weight: rng.Float32() + 0.01,
		}
	}
	g, err := graph.FromEdges(edges, v, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runMode executes prog over g with the given accumulator mode layered
// on base and returns the final vertex payloads plus the run result.
func runMode(t *testing.T, g *graph.CSR, prog Program, base Config, mode AccumMode) ([]uint64, *Result) {
	t.Helper()
	cfg := base
	cfg.AccumMode = mode
	eng, vf := setup(t, g, prog, cfg)
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("mode %v: %v", mode, err)
	}
	return vf.Values(), res
}

// assertIdentical requires every mode to produce bit-identical payloads.
func assertIdentical(t *testing.T, g *graph.CSR, prog Program, base Config, modes []AccumMode) map[AccumMode]*Result {
	t.Helper()
	results := map[AccumMode]*Result{}
	var refVals []uint64
	var refMode AccumMode
	for i, mode := range modes {
		vals, res := runMode(t, g, prog, base, mode)
		results[mode] = res
		if i == 0 {
			refVals, refMode = vals, mode
			continue
		}
		for v := range vals {
			if vals[v] != refVals[v] {
				t.Fatalf("vertex %d: mode %v got %#x, mode %v got %#x", v, mode, vals[v], refMode, refVals[v])
			}
		}
		if res.Supersteps != results[refMode].Supersteps || res.Messages != results[refMode].Messages {
			t.Fatalf("mode %v ran %d supersteps / %d messages, mode %v %d / %d",
				mode, res.Supersteps, res.Messages, refMode, results[refMode].Supersteps, results[refMode].Messages)
		}
	}
	return results
}

// Float-sum programs fold messages in generation order on every path; a
// single dispatcher/computer pair with barrier-only flushes makes the
// per-vertex fold grouping identical too, so even PageRank's float sums
// must come out bit-identical across the legacy, dense and sparse paths.
func TestAccumEquivalenceFloatPrograms(t *testing.T) {
	g := randomGraph(t, 71, 220, 1400)
	base := Config{
		Dispatchers: 1, Computers: 1,
		BatchSize:   1 << 20, // one combined batch per superstep on the legacy path
		AccumBudget: 1 << 30, // barrier-only accumulator flushes
		DisableSync: true,
	}
	t.Run("pagerank", func(t *testing.T) {
		cfg := base
		cfg.MaxSupersteps = 8
		assertIdentical(t, g, prComb{}, cfg, []AccumMode{AccumOff, AccumDense, AccumSparse})
	})
	t.Run("deltapagerank", func(t *testing.T) {
		cfg := base
		cfg.MaxSupersteps = 20
		assertIdentical(t, g, dprProg{}, cfg, []AccumMode{AccumOff, AccumDense, AccumSparse})
	})
}

// Dense and sparse accumulators share flush-boundary accounting and both
// emit segments in ascending vertex order, so they stay bit-identical
// even with aggressive incremental flushing and multiple computers —
// including for order-sensitive float sums.
func TestAccumEquivalenceFloatIncrementalFlush(t *testing.T) {
	g := randomGraph(t, 72, 300, 2400)
	base := Config{
		Dispatchers: 1, Computers: 3,
		AccumBudget:   512, // 32 entries per accumulator: many mid-dispatch flushes
		MaxSupersteps: 6,
		DisableSync:   true,
	}
	res := assertIdentical(t, g, prComb{}, base, []AccumMode{AccumDense, AccumSparse})
	if r := res[AccumDense]; r.Delivered >= r.Messages {
		t.Fatalf("dense accumulation delivered %d of %d generated messages; expected source-side combining", r.Delivered, r.Messages)
	}
}

// Min-fold programs are order- and grouping-insensitive, so every path
// must agree bit for bit even under full parallelism, tiny batches and
// eager incremental flushes — and match the serial reference executor.
func TestAccumEquivalenceMinPrograms(t *testing.T) {
	dg := randomGraph(t, 73, 300, 1800)
	base := Config{
		Dispatchers: 3, Computers: 2,
		BatchSize:   32,
		AccumBudget: 512,
		DisableSync: true,
	}
	modes := []AccumMode{AccumOff, AccumDense, AccumSparse, AccumAuto}
	t.Run("bfs", func(t *testing.T) {
		want := refRun(dg, bfsProg{root: 0}, 100)
		res := assertIdentical(t, dg, bfsComb{bfsProg{root: 0}}, base, modes)
		vals, _ := runMode(t, dg, bfsComb{bfsProg{root: 0}}, base, AccumAuto)
		for v := range vals {
			if vals[v] != want[v] {
				t.Fatalf("vertex %d: engine %#x, reference %#x", v, vals[v], want[v])
			}
		}
		if res[AccumOff].Supersteps == 0 {
			t.Fatal("bfs did not run")
		}
	})
	t.Run("cc", func(t *testing.T) {
		sym := dg.Symmetrize()
		want := refRun(sym, ccProg{}, 100)
		assertIdentical(t, sym, ccCombining{}, base, modes)
		vals, _ := runMode(t, sym, ccCombining{}, base, AccumDense)
		for v := range vals {
			if vals[v] != want[v] {
				t.Fatalf("vertex %d: engine %#x, reference %#x", v, vals[v], want[v])
			}
		}
	})
	t.Run("sssp", func(t *testing.T) {
		wg := weightedGraph(t, 74, 250, 1500)
		assertIdentical(t, wg, ssspComb{root: 0}, base, modes)
	})
}

// The adaptive switch must pick the sparse table while the active
// fraction is low (BFS's early frontier) and the dense slab once the
// frontier widens past 1/denseActiveDenom of the graph.
func TestAccumAutoSwitches(t *testing.T) {
	g := randomGraph(t, 75, 400, 4000)
	var seen []AccumMode
	cfg := Config{
		Dispatchers: 2, Computers: 2,
		DisableSync: true,
		Progress:    func(s StepStats) { seen = append(seen, s.Accum) },
	}
	eng, _ := setup(t, g, bfsComb{bfsProg{root: 0}}, cfg)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no supersteps ran")
	}
	if seen[0] != AccumSparse {
		t.Fatalf("superstep 0 (single active root) used %v, want sparse", seen[0])
	}
	var dense bool
	for _, m := range seen {
		if m == AccumAuto || m == AccumOff {
			t.Fatalf("auto resolved to %v", m)
		}
		if m == AccumDense {
			dense = true
		}
	}
	if !dense {
		t.Fatalf("frontier never triggered the dense slab (modes: %v)", seen)
	}
}

// Programs without a combiner — and explicit AccumOff — must stay on the
// legacy batch path: every generated message is delivered.
func TestAccumRequiresCombiner(t *testing.T) {
	g := randomGraph(t, 76, 150, 900)
	cfg := Config{AccumMode: AccumDense, DisableSync: true}
	var modes []AccumMode
	cfg.Progress = func(s StepStats) { modes = append(modes, s.Accum) }
	eng, _ := setup(t, g, ccProg{}, cfg) // no CombineMsg
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Messages {
		t.Fatalf("no combiner but delivered %d != generated %d", res.Delivered, res.Messages)
	}
	for _, m := range modes {
		if m != AccumOff {
			t.Fatalf("non-combinable program ran with accumulator mode %v", m)
		}
	}
}

// A custom owner function cannot use the dense slab's mod indexing; the
// engine must quietly fall back to the sparse table and still be correct.
func TestAccumDenseCustomOwnerFallsBack(t *testing.T) {
	g := randomGraph(t, 77, 200, 1200)
	want := refRun(g, bfsProg{root: 0}, 100)
	var modes []AccumMode
	cfg := Config{
		AccumMode: AccumDense,
		Owner:     BlockOwner(g.NumVertices),
		Computers: 3,
		Progress:  func(s StepStats) { modes = append(modes, s.Accum) },
	}
	eng, vf := setup(t, g, bfsComb{bfsProg{root: 0}}, cfg)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, m := range modes {
		if m != AccumSparse {
			t.Fatalf("custom owner ran mode %v, want sparse fallback", m)
		}
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if vf.Value(v) != want[v] {
			t.Fatalf("vertex %d: %d, want %d", v, vf.Value(v), want[v])
		}
	}
}

// Unit coverage of the open-addressing table: fold-on-collision, growth
// past the load factor, and a sorted, emptying drain.
func TestSparseAccTable(t *testing.T) {
	s := newSparseAcc()
	c := minComb{}
	const n = 500
	for i := 0; i < n; i++ {
		dst := graph.VertexID(i * 7 % 311)
		if s.insert(dst, uint64(1000+i), c) {
			// folded: table must already hold this dst
			continue
		}
	}
	if s.n != 311 {
		t.Fatalf("table holds %d entries, want 311 distinct", s.n)
	}
	if len(s.keys) < 311*4/3 {
		t.Fatalf("table did not grow (cap %d for %d entries)", len(s.keys), s.n)
	}
	out := s.drain(nil, nil)
	if len(out) != 311 {
		t.Fatalf("drained %d entries, want 311", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Dst >= out[i].Dst {
			t.Fatalf("drain not sorted: %d before %d", out[i-1].Dst, out[i].Dst)
		}
	}
	if s.n != 0 {
		t.Fatalf("drain left %d entries", s.n)
	}
	for _, k := range s.keys {
		if k != 0 {
			t.Fatal("drain left a non-zero key")
		}
	}
	// min-fold correctness: re-insert two values for one dst
	s.insert(5, 9, c)
	s.insert(5, 3, c)
	s.insert(5, 7, c)
	out = s.drain(nil, nil)
	if len(out) != 1 || out[0].Val != 3 {
		t.Fatalf("min fold produced %+v, want single entry val 3", out)
	}
}

// Pool recycling must be invisible to results: running a computation as
// two Run calls on ONE engine — where the second half draws only slabs,
// tables and batches that were already used, released and (with poison
// forced on) overwritten with the poison pattern — must produce a
// vertex file bit-identical to a fresh engine running straight through.
// Any read of recycled state that escapes the presence metadata would
// fold poison into a value and diverge loudly.
func TestAccumPoolRecycleEquivalence(t *testing.T) {
	restore := poisonReleases
	poisonReleases = true
	defer func() { poisonReleases = restore }()

	g := randomGraph(t, 78, 260, 2000)
	for _, mode := range []AccumMode{AccumOff, AccumDense, AccumSparse, AccumAuto} {
		t.Run(mode.String(), func(t *testing.T) {
			// One dispatcher keeps per-computer arrival order deterministic,
			// so even PageRank's float sums must match bit for bit. The tiny
			// budget and batch force heavy mid-dispatch recycle traffic.
			base := Config{
				Dispatchers: 1, Computers: 2,
				BatchSize:   64,
				AccumBudget: 512,
				AccumMode:   mode,
				DisableSync: true,
			}
			const steps = 8
			ref := base
			ref.MaxSupersteps = steps
			refEng, refVf := setup(t, g, prComb{}, ref)
			if _, err := refEng.Run(); err != nil {
				t.Fatal(err)
			}
			half := base
			half.MaxSupersteps = steps / 2
			eng, vf := setup(t, g, prComb{}, half)
			for part := 0; part < 2; part++ {
				if _, err := eng.Run(); err != nil {
					t.Fatalf("run %d: %v", part, err)
				}
			}
			want, got := refVf.Values(), vf.Values()
			for v := range got {
				if got[v] != want[v] {
					t.Fatalf("vertex %d: recycled engine %#x, fresh engine %#x", v, got[v], want[v])
				}
			}
		})
	}
}
