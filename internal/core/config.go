package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/graph"
)

// OwnerFunc maps a destination vertex to the computing worker that owns
// it (must be a pure function).
type OwnerFunc func(dst graph.VertexID, workers int) int

// ModOwner is the default vertex-to-worker assignment (dst mod workers).
func ModOwner(dst graph.VertexID, workers int) int { return int(dst) % workers }

// BlockOwner assigns contiguous vertex blocks to workers, an alternative
// with better locality but potentially unbalanced write load.
func BlockOwner(numVertices int64) OwnerFunc {
	return func(dst graph.VertexID, workers int) int {
		w := int(int64(dst) * int64(workers) / numVertices)
		if w >= workers {
			w = workers - 1
		}
		return w
	}
}

// DefaultMaxSupersteps is the superstep cap when Config.MaxSupersteps is
// zero. Exported so resume logic can interpret "no explicit cap" as the
// same total budget the original run had.
const DefaultMaxSupersteps = 100

// IntervalStrategy selects dispatcher interval balancing.
type IntervalStrategy int

const (
	// IntervalsByEdges balances dispatcher intervals by edge count
	// (default).
	IntervalsByEdges IntervalStrategy = iota
	// IntervalsByVertices balances by vertex count.
	IntervalsByVertices
)

// Config tunes the engine. The zero value selects sensible defaults.
type Config struct {
	// Dispatchers is the number of dispatcher actors (default: half the
	// available CPUs, at least 1). The edge file is partitioned across
	// them by edge count.
	Dispatchers int

	// Computers is the number of computing worker actors (default: half
	// the available CPUs, at least 1). Vertex v is owned by worker
	// v mod Computers, so writers never conflict (paper §V-A).
	Computers int

	// BatchSize is the number of messages accumulated per destination
	// worker before the batch is put into its mailbox (default 512).
	BatchSize int

	// MailboxCap is the per-worker mailbox capacity in batches
	// (default 64). Bounded mailboxes give dispatchers backpressure.
	MailboxCap int

	// MaxSupersteps caps the run (default 100). The engine also halts as
	// soon as a superstep neither sends messages nor updates vertices.
	MaxSupersteps int

	// SequentialPhases disables the paper's dispatch/compute overlap:
	// computing workers buffer incoming messages and only process them
	// after all dispatchers finish, emulating the conventional BSP model
	// the paper argues against (§III-A). For ablation experiments.
	SequentialPhases bool

	// DisableReconcile skips the barrier-time column reconciliation
	// (see package vertexfile). Only sound for programs in which every
	// vertex that will ever be read is re-updated each superstep.
	// For ablation experiments.
	DisableReconcile bool

	// DisableSync skips the durable header sync at superstep boundaries,
	// trading the paper's lightweight fault tolerance for speed.
	DisableSync bool

	// DisableCombining turns off dispatcher-side message combining even
	// when the program implements Combiner. For ablation experiments.
	DisableCombining bool

	// AccumMode selects the message path for combiner-enabled programs:
	// source-side accumulation (dense slab / sparse table, adaptive by
	// default) or the legacy per-message batch path (AccumOff). Programs
	// without a Combiner always use the legacy path regardless.
	AccumMode AccumMode

	// AccumBudget is the byte budget of one (dispatcher, computer)
	// accumulator before it is flushed to the computing worker as a
	// segment mid-dispatch (default 256 KiB). Smaller budgets flush more
	// eagerly, preserving more of the dispatch/compute overlap; larger
	// budgets combine more messages at the source.
	AccumBudget int

	// Prefetch spawns one async prefetch actor per dispatcher. Each
	// walks ahead of its dispatcher's edge cursor issuing windowed
	// madvise(WILLNEED) on the CSR mapping and releases consumed pages
	// behind it with DONTNEED, so out-of-core runs overlap page-in I/O
	// with dispatch instead of stalling on major faults. Best-effort:
	// silently inactive for memory images and heap-backed mappings.
	Prefetch bool

	// PrefetchWindow is the size in bytes of the WILLNEED window each
	// prefetch actor keeps ahead of its dispatcher's cursor (default
	// 8 MiB). The DONTNEED trail follows one window behind the cursor.
	PrefetchWindow int

	// Owner assigns each destination vertex to a computing worker. The
	// default is the paper's "average assignment by mod according to the
	// vertex id" (§V-A); any pure function of (vertex, workers) works —
	// ownership only has to be deterministic so no two workers ever
	// write the same vertex.
	Owner OwnerFunc

	// Intervals selects how the edge file is split across dispatchers:
	// balanced by edge count (default; the paper's "assign vertices to
	// the dispatcher worker by the average edges") or by vertex count
	// (the paper's "simple mod algorithm" alternative).
	Intervals IntervalStrategy

	// MaxStepRetries is how many times the manager retries a failed
	// superstep (worker panic or failure, watchdog timeout, failed
	// begin/commit) before surfacing the error. Between attempts the
	// engine tears the worker crew down, rolls the value file back to
	// the superstep's immutable dispatch column using an exact
	// active-set snapshot, and respawns the crew. Zero — the default —
	// disables retries and fails fast.
	MaxStepRetries int

	// StepRetryBackoff is the sleep before the first retry of a
	// superstep; it doubles for every further consecutive retry
	// (default 25ms).
	StepRetryBackoff time.Duration

	// SuperstepTimeout bounds how long the manager waits for any single
	// worker notification within a superstep (the paper's manager
	// "monitors workers", §V-C). Zero disables the watchdog. On timeout
	// the run aborts with an error; a wedged user program's goroutines
	// cannot be forcibly killed, so Run may still block in cleanup until
	// they return.
	SuperstepTimeout time.Duration

	// Digests, when set, computes an FNV-1a digest of the committed
	// column after every superstep (StepStats.Digest). For integer-valued
	// programs (BFS, CC, label propagation) digests are identical across
	// any worker count, batch size, or engine — a cheap cross-run and
	// cross-engine equivalence check. Float programs accumulate in
	// message order and may differ in the low bits.
	Digests bool

	// Progress, when non-nil, receives per-superstep statistics as the
	// run proceeds.
	Progress func(StepStats)
}

func (c Config) withDefaults() Config {
	half := runtime.GOMAXPROCS(0) / 2
	if half < 1 {
		half = 1
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = half
	}
	if c.Computers <= 0 {
		c.Computers = half
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.MailboxCap <= 0 {
		c.MailboxCap = 64
	}
	if c.MaxSupersteps <= 0 {
		c.MaxSupersteps = DefaultMaxSupersteps
	}
	if c.Owner == nil {
		c.Owner = ModOwner
	}
	if c.AccumBudget <= 0 {
		c.AccumBudget = 256 << 10
	}
	if c.StepRetryBackoff <= 0 {
		c.StepRetryBackoff = 25 * time.Millisecond
	}
	if c.PrefetchWindow <= 0 {
		c.PrefetchWindow = 8 << 20
	}
	return c
}

func (c Config) validate() error {
	if c.Dispatchers > 4096 || c.Computers > 4096 {
		return fmt.Errorf("core: unreasonable worker count (%d dispatchers, %d computers)", c.Dispatchers, c.Computers)
	}
	return nil
}

// StepStats records one superstep's activity.
type StepStats struct {
	Step      int64
	Accum     AccumMode // effective message path this superstep (never Auto)
	Messages  int64     // messages generated by dispatchers
	Delivered int64     // messages delivered after combining (== Messages without a Combiner)
	Updates   int64     // vertex values written
	Aggregate float64   // the program's global aggregate (programs implementing Aggregator)
	Digest    uint64    // FNV-1a of the committed column (Config.Digests)
	Duration  time.Duration
}

// Result summarizes a run.
type Result struct {
	Supersteps int         // supersteps executed in this run
	Converged  bool        // true if the run halted before MaxSupersteps
	Retries    int         // supersteps re-executed by supervised recovery
	Messages   int64       // total messages generated
	Delivered  int64       // total messages delivered after combining
	Updates    int64       // total vertex updates
	Steps      []StepStats // per-superstep statistics
	Duration   time.Duration

	// DispatcherMessages[i] is the total number of messages dispatcher i
	// generated; ComputerUpdates[i] the total updates computing worker i
	// applied. Together they expose the load balance of the paper's §V-A
	// assignment strategies.
	DispatcherMessages []int64
	ComputerUpdates    []int64

	// ResumedFrom is the superstep a resumed run continued from; it is
	// meaningful only when Recovery is non-empty.
	ResumedFrom int64
	// Recovery describes how the value file was recovered when this run
	// resumed an earlier one: "none" (the file was cleanly sealed),
	// "exact" (interrupted superstep rolled back with its exact active
	// set), or "conservative" (every vertex re-activated). Empty for
	// fresh, non-resumed runs.
	Recovery string
}
