package core

import "repro/internal/graph"

// Program is a user-defined vertex program (the paper's initialize,
// genMsg and compute functions, Fig. 3).
//
// Vertex values are 63-bit payloads stored in the two-column value file;
// see package vertexfile for helpers encoding floats and integers.
type Program interface {
	// Init returns vertex v's initial payload and whether the vertex
	// starts active (active vertices dispatch in superstep 0: every
	// vertex for PageRank, only the root for BFS).
	Init(v int64) (payload uint64, active bool)

	// GenMsg produces the message value to send along one out-edge of a
	// fresh vertex (paper §IV-E: the message value may depend on the
	// vertex value, the out-degree, and the edge weight). Returning
	// send=false suppresses the message.
	GenMsg(src int64, payload uint64, outDegree uint32, dst graph.VertexID, weight float32) (msgVal uint64, send bool)

	// Compute folds one incoming message into the destination vertex's
	// value (paper §IV-F, Algorithm 3). cur is the vertex's current
	// value: on the first message of a superstep it is the previous
	// superstep's value (fetched from the dispatch column), afterwards
	// the accumulating new value. changed=false leaves the vertex value
	// untouched and the vertex inactive.
	//
	// If Compute reports changed=false on a first message, a later
	// message in the same superstep is delivered with first=true again;
	// programs must therefore treat first as "cur is the previous
	// superstep's value", which is naturally idempotent for the
	// min/sum-style folds vertex-centric programs use.
	Compute(dst int64, cur uint64, msg uint64, first bool) (newVal uint64, changed bool)
}

// Message is one vertex update message: the paper's (destination id,
// value) pair.
type Message struct {
	Dst graph.VertexID
	Val uint64
}
