package core

import (
	"fmt"
	"testing"
)

// BenchmarkSuperstepPageRank measures the engine's per-superstep cost on
// a PageRank-like all-active workload (one full edge stream + message
// traffic + barrier).
func BenchmarkSuperstepPageRank(b *testing.B) {
	g := randomGraph(b, 1, 1<<14, 1<<17)
	eng, _ := setup(b, g, prProg{}, Config{MaxSupersteps: 1, DisableSync: true})
	b.SetBytes(g.NumEdges * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.cfg.MaxSupersteps = 1
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchSizes quantifies the batching deviation documented in
// DESIGN.md: per-edge mailbox operations vs. batched ones.
func BenchmarkBatchSizes(b *testing.B) {
	g := randomGraph(b, 2, 1<<12, 1<<15)
	for _, bs := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			eng, _ := setup(b, g, prProg{}, Config{MaxSupersteps: 1, BatchSize: bs, DisableSync: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.cfg.MaxSupersteps = 1
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOverlapVsSequential is the headline ablation: the paper's
// overlapped dispatch/compute against conventional phase-sequential BSP.
func BenchmarkOverlapVsSequential(b *testing.B) {
	g := randomGraph(b, 3, 1<<13, 1<<16)
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"overlap", Config{MaxSupersteps: 1, DisableSync: true}},
		{"sequential", Config{MaxSupersteps: 1, DisableSync: true, SequentialPhases: true, MailboxCap: 1 << 14}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			eng, _ := setup(b, g, prProg{}, mode.cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.cfg.MaxSupersteps = 1
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
