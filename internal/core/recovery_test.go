package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
)

// runWithPlan executes prog over g under cfg with plan armed, deactivating
// injection before returning.
func runWithPlan(t *testing.T, g *graph.CSR, prog Program, cfg Config, plan *fault.Plan) (*Result, []uint64, error) {
	t.Helper()
	eng, vf := setup(t, g, prog, cfg)
	fault.Activate(plan)
	defer fault.Deactivate()
	res, err := eng.Run()
	fault.Deactivate()
	vals := make([]uint64, g.NumVertices)
	for v := int64(0); v < g.NumVertices; v++ {
		vals[v] = vf.Value(v)
	}
	return res, vals, err
}

// compareRuns asserts that an injected-and-recovered run produced exactly
// the reference run's per-superstep digests and final values.
func compareRuns(t *testing.T, ref, got *Result, refVals, gotVals []uint64) {
	t.Helper()
	if got.Supersteps != ref.Supersteps {
		t.Fatalf("recovered run took %d supersteps, reference %d", got.Supersteps, ref.Supersteps)
	}
	for i := range ref.Steps {
		if got.Steps[i].Digest != ref.Steps[i].Digest {
			t.Fatalf("superstep %d digest %#x, reference %#x", i, got.Steps[i].Digest, ref.Steps[i].Digest)
		}
	}
	for v := range refVals {
		if gotVals[v] != refVals[v] {
			t.Fatalf("vertex %d = %#x, reference %#x", v, gotVals[v], refVals[v])
		}
	}
}

// TestRecoveryComputerPanic kills a computing worker mid-superstep (on its
// Nth applied message) and requires the supervised retry path to roll the
// superstep back and re-execute it, ending with results bit-identical to
// an uninjected run.
func TestRecoveryComputerPanic(t *testing.T) {
	g := randomGraph(t, 70, 300, 1200)
	cfg := Config{Dispatchers: 2, Computers: 3, BatchSize: 16, Digests: true}

	ref, refVals, err := runWithPlan(t, g, bfsProg{root: 0}, cfg, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	cfg.MaxStepRetries = 3
	cfg.StepRetryBackoff = time.Millisecond
	plan := fault.NewPlan(0, fault.Injection{Site: fault.SiteComputerMsg, After: 17})
	res, vals, err := runWithPlan(t, g, bfsProg{root: 0}, cfg, plan)
	if err != nil {
		t.Fatalf("injected run did not recover: %v", err)
	}
	if plan.Fired(fault.SiteComputerMsg) == 0 {
		t.Fatal("computer panic never fired; test exercised nothing")
	}
	if res.Retries == 0 {
		t.Fatal("run recovered without recording a retry")
	}
	compareRuns(t, ref, res, refVals, vals)
}

// TestRecoveryDispatcherPanic does the same for a dispatcher dying on its
// Nth generated message, while computers are concurrently applying the
// partial message stream that must be rolled back.
func TestRecoveryDispatcherPanic(t *testing.T) {
	g := randomGraph(t, 71, 200, 800).Symmetrize()
	cfg := Config{Dispatchers: 3, Computers: 2, BatchSize: 8, Digests: true}

	ref, refVals, err := runWithPlan(t, g, ccProg{}, cfg, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	cfg.MaxStepRetries = 2
	cfg.StepRetryBackoff = time.Millisecond
	plan := fault.NewPlan(0, fault.Injection{Site: fault.SiteDispatcherMsg, After: 40})
	res, vals, err := runWithPlan(t, g, ccProg{}, cfg, plan)
	if err != nil {
		t.Fatalf("injected run did not recover: %v", err)
	}
	if plan.Fired(fault.SiteDispatcherMsg) == 0 {
		t.Fatal("dispatcher panic never fired")
	}
	if res.Retries == 0 {
		t.Fatal("run recovered without recording a retry")
	}
	compareRuns(t, ref, res, refVals, vals)
}

// TestRecoveryTornCommit tears the header mid-commit (checksum corrupted,
// state still running) and requires in-process rollback plus retry to
// produce a PageRank run bit-identical to the uninjected one. A single
// dispatcher makes the float message order — and therefore the digests —
// deterministic.
func TestRecoveryTornCommit(t *testing.T) {
	g := randomGraph(t, 72, 150, 900)
	cfg := Config{Dispatchers: 1, Computers: 2, BatchSize: 32, MaxSupersteps: 6, Digests: true}

	ref, refVals, err := runWithPlan(t, g, prProg{}, cfg, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	cfg.MaxStepRetries = 2
	cfg.StepRetryBackoff = time.Millisecond
	plan := fault.NewPlan(0, fault.Injection{Site: fault.SiteCommitTorn, After: 2})
	res, vals, err := runWithPlan(t, g, prProg{}, cfg, plan)
	if err != nil {
		t.Fatalf("injected run did not recover: %v", err)
	}
	if plan.Fired(fault.SiteCommitTorn) != 1 {
		t.Fatalf("torn commit fired %d times, want 1", plan.Fired(fault.SiteCommitTorn))
	}
	if res.Retries != 1 {
		t.Fatalf("res.Retries = %d, want 1", res.Retries)
	}
	compareRuns(t, ref, res, refVals, vals)
}

// TestRecoveryRetriesExhausted arms a fault that fires on every hit: the
// supervised engine must give up after exactly MaxStepRetries retries and
// surface a superstep-labelled error instead of looping forever.
func TestRecoveryRetriesExhausted(t *testing.T) {
	g := randomGraph(t, 73, 100, 400)
	cfg := Config{Dispatchers: 2, Computers: 2, MaxStepRetries: 2, StepRetryBackoff: time.Millisecond}
	plan := fault.NewPlan(0, fault.Injection{Site: fault.SiteComputerMsg, Count: -1})
	res, _, err := runWithPlan(t, g, bfsProg{root: 0}, cfg, plan)
	if err == nil {
		t.Fatal("run with a permanent fault succeeded")
	}
	if !strings.Contains(err.Error(), "superstep") {
		t.Fatalf("error = %v, want superstep-labelled", err)
	}
	if res.Retries != 2 {
		t.Fatalf("res.Retries = %d, want 2", res.Retries)
	}
}

// stallCompute wedges inside Compute, so with buffered (sequential) phases
// the stall lands squarely in the compute barrier.
type stallCompute struct{ d time.Duration }

func (s stallCompute) Init(v int64) (uint64, bool) { return 0, true }
func (s stallCompute) GenMsg(src int64, payload uint64, deg uint32, dst graph.VertexID, w float32) (uint64, bool) {
	return payload + 1, true
}
func (s stallCompute) Compute(dst int64, cur, msg uint64, first bool) (uint64, bool) {
	time.Sleep(s.d)
	return msg, true
}

// TestWatchdogComputeBarrierStall wedges a computing worker during the
// compute barrier; the GetTimeout-based watchdog must abort the run with
// an error labelled with that phase.
func TestWatchdogComputeBarrierStall(t *testing.T) {
	g := randomGraph(t, 74, 40, 80)
	eng, _ := setup(t, g, stallCompute{d: 25 * time.Millisecond}, Config{
		SuperstepTimeout: 40 * time.Millisecond,
		SequentialPhases: true,
		Dispatchers:      1,
		Computers:        1,
	})
	start := time.Now()
	_, err := eng.Run()
	if err == nil {
		t.Fatal("wedged run completed without error")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("error = %v, want watchdog", err)
	}
	if !strings.Contains(err.Error(), "compute barrier") {
		t.Fatalf("error = %v, want compute barrier phase label", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("watchdog abort took %v", time.Since(start))
	}
}

// TestRecoveryAfterWatchdog pairs the watchdog with supervised retries: a
// transiently wedged worker times the superstep out, and the retry path
// re-executes it successfully.
func TestRecoveryAfterWatchdog(t *testing.T) {
	g := randomGraph(t, 75, 60, 240)
	cfg := Config{
		SuperstepTimeout: 250 * time.Millisecond,
		MaxStepRetries:   3,
		StepRetryBackoff: time.Millisecond,
		Dispatchers:      1,
		Computers:        1,
		Digests:          true,
	}
	ref, refVals, err := runWithPlan(t, g, bfsProg{root: 0}, cfg, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	// One injected 2s stall in a computer message wedges the superstep past
	// the 250ms watchdog exactly once; the retry must succeed.
	plan := fault.NewPlan(0, fault.Injection{Site: fault.SiteComputerStall, After: 5, Delay: 2 * time.Second})
	res, vals, err := runWithPlan(t, g, bfsProg{root: 0}, cfg, plan)
	if err != nil {
		t.Fatalf("injected run did not recover: %v", err)
	}
	if plan.Fired(fault.SiteComputerStall) == 0 {
		t.Fatal("computer stall never fired")
	}
	if res.Retries == 0 {
		t.Fatal("run recovered without recording a retry")
	}
	compareRuns(t, ref, res, refVals, vals)
}
