//go:build !race

package core

// poisonDefault leaves poison-on-release off in regular builds; the
// race-enabled suite (make race, make check) runs with it on, and tests
// flip the poisonReleases var directly to pin the recycling protocol
// without the race detector.
const poisonDefault = false
