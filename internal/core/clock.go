package core

import "time"

// now is the engine's single wall-clock read. Everything it feeds —
// superstep duration statistics and the watchdog deadline in managerGet —
// is observational: no clock value ever reaches vertex state, message
// payloads, or the value file, so a resumed run replays bit-identically
// regardless of when it executes. Keeping the one sanctioned read here
// lets the determinism analyzer flag any new time.Now that creeps onto
// the superstep path.
func now() time.Time {
	return time.Now() //lint:nondeterministic wall clock feeds step stats and watchdog deadlines only, never persisted state
}
