package lint

import (
	"go/ast"
	"strings"
)

// SyncErr makes silently dropped errors on durability paths a lint
// failure. The crash-recovery contract (DESIGN.md "Durability contract")
// is stated in terms of Sync/SyncRange/Commit ordering; an ignored error
// from any of these — or from a Close/Flush that performs the final
// write-back — means the process can believe state is on disk when it is
// not, exactly the failure mode the vertex file's header sealing exists
// to prevent. Both implicit discards (a bare call statement, including
// defer) and explicit ones (assigning the error to _) are flagged;
// deliberate best-effort teardown sites carry //lint:syncerr
// justifications.
//
// The analyzer also polices the storage-layer boundary (DESIGN.md
// "Storage failure model"): packages listed here have adopted
// internal/diskio as their write path, and a direct os.Create /
// os.OpenFile / os.WriteFile / os.CreateTemp bypasses fault injection,
// typed ENOSPC/EIO classification, and the disk.* metrics — the torture
// harness can no longer see that write fail. internal/diskio itself is
// the one place raw os writers are legitimate.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc: "ignored errors from Sync/SyncRange/Flush/Close/Commit, and raw " +
		"os.* writes bypassing internal/diskio, on durability paths",
	Packages: []string{
		"internal/core", "internal/cluster", "internal/vertexfile", "internal/mmap",
		"internal/serve", "internal/graph", "internal/scrub", "internal/preprocess",
		"internal/bench", "cmd/gpsa", "cmd/gpsa-bench", "cmd/gpsa-serve",
	},
	Run: runSyncErr,
}

// durabilityMethods are the method/function names whose error results
// must not be discarded.
var durabilityMethods = map[string]bool{
	"Sync": true, "SyncRange": true, "Flush": true, "Close": true,
	"Commit": true, "CommitStep": true,
}

// rawOSWriters are the os-package entry points that create or mutate
// files. In packages routed through internal/diskio these must go via
// diskio.Create/diskio.OpenFile/diskio.WriteFile/diskio.CreateTemp so
// the write stays inside the fault-injection and error-classification
// envelope.
var rawOSWriters = map[string]bool{
	"Create": true, "OpenFile": true, "WriteFile": true, "CreateTemp": true,
}

func runSyncErr(pass *Pass) {
	info := pass.Pkg.Info
	// durabilityCall reports whether e is a call to a durability method
	// that returns an error.
	durabilityCall := func(e ast.Expr) (*ast.CallExpr, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		name := calleeIdent(call)
		if !durabilityMethods[name] {
			return nil, false
		}
		return call, lastResultIsError(info, call)
	}
	// The storage-layer check does not apply inside internal/diskio
	// itself — that package is the one legitimate os.* call site.
	inDiskio := strings.HasSuffix(pass.Pkg.Path, "internal/diskio")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if inDiskio {
					return true
				}
				name := calleeIdent(n)
				if rawOSWriters[name] && pkgFunc(info, n, "os", name) {
					pass.Reportf(n.Pos(), "os.%s bypasses the internal/diskio storage layer; use diskio.%s (fault-injectable, typed errors) or justify with //lint:syncerr", name, name)
				}
			case *ast.ExprStmt:
				if call, ok := durabilityCall(n.X); ok {
					pass.Reportf(n.Pos(), "error from %s discarded on a durability path; handle it, join it into the returning error, or justify with //lint:syncerr", calleeIdent(call))
				}
			case *ast.DeferStmt:
				if call, ok := durabilityCall(n.Call); ok {
					pass.Reportf(n.Pos(), "deferred %s discards its error on a durability path; check it in a deferred closure or justify with //lint:syncerr", calleeIdent(call))
				}
			case *ast.GoStmt:
				if call, ok := durabilityCall(n.Call); ok {
					pass.Reportf(n.Pos(), "go %s discards its error on a durability path", calleeIdent(call))
				}
			case *ast.AssignStmt:
				// Explicit discard: the error result position assigned to _.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := durabilityCall(n.Rhs[0])
				if !ok {
					return true
				}
				// The error is the last result; with `_ = f.Close()` or
				// `v, _ := f.ReadCloseLike()` the last LHS is the error slot.
				if id, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(n.Pos(), "error from %s explicitly discarded on a durability path; handle it or justify with //lint:syncerr", calleeIdent(call))
				}
			}
			return true
		})
	}
}
