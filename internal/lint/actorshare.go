package lint

import (
	"go/ast"
)

// ActorShare enforces the share-nothing actor discipline of the engine
// (paper §III: actors communicate only through mailbox messages). Inside
// the engine, cluster, and serving packages every unit of concurrency must be
// spawned through internal/actor's supervised System — a raw `go`
// statement escapes supervision (no panic conversion, no restart policy,
// no name-ordered failure collection, invisible to Wait) — and every
// cross-goroutine handoff must go through the bounded Mailbox API rather
// than a bare channel send, which bypasses the mailbox's close-release
// teardown protocol and its put/get accounting. Non-blocking sends guarded
// by a select with a default clause (the TryPut idiom) are permitted.
var ActorShare = &Analyzer{
	Name: "actorshare",
	Doc: "raw goroutine spawns and bare channel sends bypass the " +
		"supervised actor/mailbox API in engine and cluster code",
	Packages: []string{"internal/core", "internal/cluster", "internal/serve"},
	Run:      runActorShare,
}

func runActorShare(pass *Pass) {
	for _, f := range pass.Files {
		// Sends appearing as the comm of a select with a default clause are
		// non-blocking tries; collect them so the walk can skip them.
		trySends := make(map[ast.Stmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok || !hasDefaultClause(sel) {
				return true
			}
			for _, c := range sel.Body.List {
				if comm := c.(*ast.CommClause).Comm; comm != nil {
					trySends[comm] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw goroutine spawn bypasses the supervised actor system; use actor.System.Spawn/SpawnFunc so panics, restarts, and Wait cover it")
			case *ast.SendStmt:
				if !trySends[n] {
					pass.Reportf(n.Pos(), "bare channel send bypasses the bounded mailbox API; use actor.Mailbox.Put/TryPut (or guard the send with a select default)")
				}
			}
			return true
		})
	}
}
