package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer runs over its fixture package; linttest fails the test on
// any mismatch between findings and the fixtures' "// want" expectations.
// The count assertions additionally pin the suppression mechanism: every
// fixture carries exactly one justified //lint: site (which must be
// suppressed, not silently missed) and one unjustified site (which must
// stay a finding).

func runFixture(t *testing.T, a *lint.Analyzer, wantReported, wantSuppressed int) {
	t.Helper()
	res := linttest.Run(t, a, filepath.Join("testdata", a.Name))
	if res.Reported != wantReported {
		t.Errorf("%s: %d findings reported, want %d", a.Name, res.Reported, wantReported)
	}
	if res.Suppressed != wantSuppressed {
		t.Errorf("%s: %d findings suppressed, want %d", a.Name, res.Suppressed, wantSuppressed)
	}
}

func TestActorShare(t *testing.T)  { runFixture(t, lint.ActorShare, 4, 1) }
func TestColAlias(t *testing.T)    { runFixture(t, lint.ColAlias, 6, 1) }
func TestDeterminism(t *testing.T) { runFixture(t, lint.Determinism, 5, 1) }
func TestCtxBlock(t *testing.T)    { runFixture(t, lint.CtxBlock, 6, 1) }
func TestSyncErr(t *testing.T)     { runFixture(t, lint.SyncErr, 8, 2) }
func TestNoalloc(t *testing.T)     { runFixture(t, lint.Noalloc, 16, 1) }
func TestPoolSafe(t *testing.T)    { runFixture(t, lint.PoolSafe, 9, 1) }
func TestFrameProto(t *testing.T)  { runFixture(t, lint.FrameProto, 4, 1) }
