package lint_test

import (
	"go/token"
	"testing"

	"repro/internal/lint"
)

func TestAppliesTo(t *testing.T) {
	a := &lint.Analyzer{Name: "x", Packages: []string{"internal/core"}}
	for path, want := range map[string]bool{
		"repro/internal/core":    true,
		"internal/core":          true,
		"repro/internal/cluster": false,
		"repro/internal/core2":   false,
		"other/internal/core":    false,
	} {
		if got := a.AppliesTo("repro", path); got != want {
			t.Errorf("AppliesTo(repro, %q) = %v, want %v", path, got, want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if lint.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) != nil")
	}
}

func TestSortDiagnostics(t *testing.T) {
	at := func(file string, line, col int, an string) lint.Diagnostic {
		return lint.Diagnostic{Pos: token.Position{Filename: file, Line: line, Column: col}, Analyzer: an}
	}
	ds := []lint.Diagnostic{
		at("b.go", 1, 1, "syncerr"),
		at("a.go", 2, 1, "syncerr"),
		at("a.go", 1, 5, "syncerr"),
		at("a.go", 1, 5, "colalias"),
	}
	lint.SortDiagnostics(ds)
	want := []lint.Diagnostic{
		at("a.go", 1, 5, "colalias"),
		at("a.go", 1, 5, "syncerr"),
		at("a.go", 2, 1, "syncerr"),
		at("b.go", 1, 1, "syncerr"),
	}
	for i := range want {
		if ds[i] != want[i] {
			t.Errorf("position %d: %+v, want %+v", i, ds[i], want[i])
		}
	}
}
