package lint

import (
	"go/ast"
	"go/types"
)

// Determinism keeps recovery-critical code replayable. The durability
// contract promises that a -resume after a crash ends bit-identical to an
// uninterrupted run; that only holds if nothing on the superstep path
// consults sources the replay cannot reproduce. Flagged in the engine,
// vertex-file, and cluster packages (a rolled-back superstep retried
// across the cluster must regenerate the same message stream):
//
//   - wall-clock reads (time.Now / time.Since / time.Until);
//   - the global math/rand source (package-level rand.X calls — a locally
//     seeded *rand.Rand is fine);
//   - ranging over a map, whose iteration order differs run to run.
//
// Legitimately nondeterministic sites (timing statistics, watchdogs) are
// annotated //lint:nondeterministic <reason>.
var Determinism = &Analyzer{
	Name:    "determinism",
	Aliases: []string{"nondeterministic"},
	Doc: "wall-clock reads, the global math/rand source, and unordered " +
		"map iteration are forbidden in recovery-critical packages",
	Packages: []string{"internal/core", "internal/vertexfile", "internal/cluster"},
	Run:      runDeterminism,
}

// clockFuncs are the package-level time functions that read the wall
// clock. time.Sleep is deliberately absent: sleeping does not feed clock
// values into state.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandFuncs are the math/rand constructors that do NOT touch the
// global source.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				name := calleeIdent(n)
				if clockFuncs[name] && pkgFunc(info, n, "time", name) {
					pass.Reportf(n.Pos(), "wall-clock read time.%s in a recovery-critical package; a resumed run cannot replay it", name)
				}
				if !seededRandFuncs[name] {
					for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
						if pkgFunc(info, n, randPkg, name) {
							pass.Reportf(n.Pos(), "rand.%s uses the global source; use an explicitly seeded rand.New(rand.NewSource(seed)) so replays reproduce the sequence", name)
						}
					}
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration order is unordered; sort the keys before ranging in a recovery-critical package")
				}
			}
			return true
		})
	}
}
