package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Noalloc pins the zero-alloc hot path at compile time. PR 10's arena
// drove steady-state allocation below 0.01 B/msg, but that invariant was
// defended only dynamically (bench-smoke ceiling, gpsa-compare gate): one
// innocuous append, closure capture, or interface boxing in the
// dispatch/accumulate/BulkApply path silently reintroduces GC pressure
// until a nightly bench notices. This analyzer makes the discipline
// static.
//
// A function is marked hot with the pragma
//
//	//gpsa:noalloc
//
// on its own line inside the function's doc comment. The analyzer checks
// every marked function AND every function it (transitively) calls
// within the same package for allocation sites:
//
//   - make / new / append (append may grow its backing array);
//   - slice and map composite literals, and &T{...} (address of a
//     composite literal is a heap allocation when it escapes);
//   - function literals (closure capture allocates);
//   - calls into package fmt and errors.New;
//   - string concatenation and string<->[]byte conversions;
//   - interface conversions of non-pointer values (boxing) at call
//     argument positions.
//
// Error construction is cold by definition: a site inside a return
// statement, inside an assignment to an error-typed location, or inside
// a panic argument is exempt — failure paths may allocate, the
// per-message loop may not.
//
// The AST check is deliberately conservative (a non-escaping closure or
// a growth-free append is still flagged); genuine hot-path sites that
// the compiler proves allocation-free carry a //lint:noalloc <reason>
// justification, and `gpsa-lint -escape` closes the loop in the other
// direction by cross-referencing `go build -gcflags='-m -m'` escape
// diagnostics against the pragma set (see escape.go).
//
// The analyzer also enforces pragma coverage: the functions listed in
// noallocRequired — the dispatcher edge loop, the accumulator
// fold/flush, BulkApply, frame encode/decode, and the pool's Get/Put —
// must carry the pragma, so deleting an annotation (or renaming a hot
// function away from its annotation) fails the gate instead of silently
// shrinking the checked set.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc: "allocation sites (make/new/append, literals, closures, fmt, " +
		"boxing) in //gpsa:noalloc hot-path functions and their " +
		"intra-package callees",
	Packages: []string{"internal/core", "internal/vertexfile", "internal/graph", "internal/cluster"},
	Run:      runNoalloc,
}

// NoallocPragma is the comment that marks a hot-path function. Grammar:
// the pragma is exactly this text on its own line in the function's doc
// comment (no arguments; justification for individual sites inside the
// function uses the ordinary //lint:noalloc <reason> suppression).
const NoallocPragma = "//gpsa:noalloc"

// noallocRequired lists, per module-relative package path, the functions
// that MUST carry the //gpsa:noalloc pragma. Methods are spelled
// "(*T).name" / "T.name", package functions plain "name". The list is
// the hot-path manifest: deleting a pragma from any of these — or
// renaming the function away from its annotation — is a lint failure,
// pinned by TestNoallocPragmaDeletionFails.
var noallocRequired = map[string][]string{
	"internal/core": {
		"(*dispatcher).runSuperstep",
		"(*dispatcher).accumDense",
		"(*dispatcher).accumSparse",
		"(*dispatcher).send",
		"(*dispatcher).flushDense",
		"(*dispatcher).flushSparse",
		"(*dispatcher).dispatchBatch",
		"(*computer).processSegment",
		"(*computer).processBatch",
		"(*sparseAcc).insert",
		"(*sparseAcc).drain",
		"(*arena).getSlab",
		"(*arena).putSlab",
		"(*arena).getTable",
		"(*arena).putTable",
		"(*arena).getBuf",
		"(*arena).putBuf",
		"sortMessagesByDst",
	},
	"internal/vertexfile": {
		"(*File).BulkApply",
		"(*File).Load",
		"(*File).Store",
	},
	"internal/graph": {
		"(*Cursor).Next",
		"(*Cursor).nextCompact",
		"DecodeEdge",
	},
	"internal/cluster": {
		"(*conn).writeFrame",
		"readFrameFrom",
	},
}

// funcDisplayName renders a FuncDecl as it appears in noallocRequired.
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		if id, ok := st.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fn.Name.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// hasNoallocPragma reports whether the declaration's doc comment carries
// the //gpsa:noalloc pragma.
func hasNoallocPragma(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == NoallocPragma {
			return true
		}
	}
	return false
}

// NoallocMarked returns the pragma-bearing function declarations of pkg.
func NoallocMarked(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && hasNoallocPragma(fn) {
				out = append(out, fn)
			}
		}
	}
	return out
}

// requiredNoalloc returns the must-be-marked manifest for pkg's import
// path, or nil when the package has no manifest (fixtures, cmd packages).
func requiredNoalloc(pkgPath string) []string {
	for rel, names := range noallocRequired {
		if pkgPath == rel || strings.HasSuffix(pkgPath, "/"+rel) {
			return names
		}
	}
	return nil
}

func runNoalloc(pass *Pass) {
	info := pass.Pkg.Info

	// Index every function declaration by its types object so the
	// transitive-callee walk can resolve intra-package calls to bodies.
	decls := make(map[types.Object]*ast.FuncDecl)
	var allDecls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			allDecls = append(allDecls, fn)
			if obj := info.Defs[fn.Name]; obj != nil {
				decls[obj] = fn
			}
		}
	}

	// Pragma coverage: the hot-path manifest must be fully annotated.
	if required := requiredNoalloc(pass.Pkg.Path); required != nil {
		byName := make(map[string]*ast.FuncDecl, len(allDecls))
		for _, fn := range allDecls {
			byName[funcDisplayName(fn)] = fn
		}
		for _, name := range required {
			fn, ok := byName[name]
			if !ok {
				pass.Reportf(pass.Files[0].Package,
					"hot-path function %s is in the noalloc manifest but does not exist; update the manifest in internal/lint/noalloc.go", name)
				continue
			}
			if !hasNoallocPragma(fn) {
				pass.Reportf(fn.Pos(),
					"hot-path function %s must carry a %s pragma (it is in the noalloc manifest)", name, NoallocPragma)
			}
		}
	}

	// Transitive closure of intra-package callees from the marked roots.
	type workItem struct {
		fn   *ast.FuncDecl
		root string // display name of the pragma root that reached it
	}
	marked := NoallocMarked(pass.Pkg)
	seen := make(map[*ast.FuncDecl]bool)
	var work []workItem
	for _, fn := range marked {
		if !seen[fn] {
			seen[fn] = true
			work = append(work, workItem{fn, funcDisplayName(fn)})
		}
	}
	for len(work) > 0 {
		item := work[0]
		work = work[1:]
		if item.fn.Body == nil {
			continue
		}
		pass.checkNoallocBody(item.fn, item.root)
		ast.Inspect(item.fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var obj types.Object
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				obj = info.Uses[fun]
			case *ast.SelectorExpr:
				obj = info.Uses[fun.Sel]
			}
			fobj, ok := obj.(*types.Func)
			if !ok || fobj.Pkg() != pass.Pkg.Types {
				return true
			}
			callee, ok := decls[fobj]
			if !ok || seen[callee] {
				return true
			}
			seen[callee] = true
			work = append(work, workItem{callee, item.root})
			return true
		})
	}
}

// checkNoallocBody reports every allocation site in fn's body. root names
// the pragma-marked function whose call graph dragged fn in.
func (p *Pass) checkNoallocBody(fn *ast.FuncDecl, root string) {
	info := p.Pkg.Info
	where := fmt.Sprintf("//gpsa:noalloc function %s", funcDisplayName(fn))
	if name := funcDisplayName(fn); name != root {
		where = fmt.Sprintf("noalloc context %s (callee of //gpsa:noalloc %s)", name, root)
	}

	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if coldAllocPath(info, stack) {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			p.checkNoallocCall(n, where)
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal allocates in %s", where)
			case *types.Map:
				p.Reportf(n.Pos(), "map literal allocates in %s", where)
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(cl.Pos(), "&composite literal is a heap allocation in %s", where)
				}
			}
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "function literal allocates a closure in %s; hoist it or justify with //lint:noalloc", where)
			// Do not descend: the closure body executes in its own frame
			// and is checked only if it is itself reachable hot code; the
			// conservative finding above is the gate.
			stack = stack[:len(stack)-1]
			return false
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if tv, ok := info.Types[n]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						p.Reportf(n.Pos(), "string concatenation allocates in %s", where)
					}
				}
			}
		}
		return true
	})
}

// checkNoallocCall reports allocating calls: builtins, fmt, errors.New,
// string conversions, and interface boxing at argument positions.
func (p *Pass) checkNoallocCall(call *ast.CallExpr, where string) {
	info := p.Pkg.Info

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				p.Reportf(call.Pos(), "make allocates in %s", where)
			case "new":
				p.Reportf(call.Pos(), "new allocates in %s", where)
			case "append":
				p.Reportf(call.Pos(), "append may grow its backing array in %s; prove the capacity bound and justify with //lint:noalloc", where)
			}
			return
		}
	}

	// Type conversions: string <-> byte/rune slice copies.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			dst := tv.Type.Underlying()
			src := info.Types[call.Args[0]].Type
			if src != nil && stringSliceConv(dst, src.Underlying()) {
				p.Reportf(call.Pos(), "string/[]byte conversion copies in %s", where)
			}
		}
		return
	}

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch pkgOf(info, sel) {
		case "fmt":
			p.Reportf(call.Pos(), "fmt.%s allocates in %s", sel.Sel.Name, where)
			return
		case "errors":
			if sel.Sel.Name == "New" {
				p.Reportf(call.Pos(), "errors.New allocates in %s", where)
				return
			}
		}
	}

	// Interface boxing: a non-pointer concrete argument passed to an
	// interface parameter is heap-boxed (word-sized pointers and
	// interfaces pass through unboxed).
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.Types[arg].Type
		if at == nil {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Interface, *types.Pointer:
			continue
		}
		p.Reportf(arg.Pos(), "interface conversion boxes a %s value in %s", at, where)
	}
}

// stringSliceConv reports whether a conversion between dst and src types
// is a copying string <-> []byte/[]rune conversion.
func stringSliceConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStr(src))
}

// coldAllocPath reports whether the innermost node of stack sits on a
// failure path where allocation is acceptable: inside a return
// statement, inside an assignment whose target is error-typed, or inside
// a panic argument. Error construction on the way out of a hot function
// happens at most once per failure, not once per message.
func coldAllocPath(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if tv, ok := info.Types[lhs]; ok && tv.Type != nil && isErrorType(tv.Type) {
					return true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	}
	return false
}
