// Package lint is gpsa-lint: a suite of custom static analyzers enforcing
// the invariants GPSA's correctness rests on but the compiler cannot see —
// the actor-isolation discipline, the immutability of the mmap-backed
// dispatch column, determinism of recovery-critical code, context plumbing
// for blocking calls, and error handling on durability paths.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Reportf, fixture tests with "// want" expectations)
// but is built purely on the standard library's go/ast and go/types, so
// the tree can lint itself with no dependency beyond the Go distribution.
//
// # Suppressions
//
// A finding is suppressed by an annotation on the same line or the line
// directly above:
//
//	//lint:<analyzer> <justification>
//
// The justification is mandatory: a bare //lint:<analyzer> keeps the
// finding and additionally demands a written reason. The determinism
// analyzer also honors the spelling //lint:nondeterministic <reason>.
// Suppressed findings are counted and reported by gpsa-lint -json so
// revisions can diff suppression totals like benchmark results.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in findings and //lint: annotations.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Aliases are additional //lint: spellings that suppress this
	// analyzer's findings.
	Aliases []string
	// Packages lists the module-relative import paths (e.g.
	// "internal/core") the analyzer applies to. The driver only runs the
	// analyzer on these; fixture tests run it unconditionally.
	Packages []string
	// Run reports findings on the pass.
	Run func(*Pass)
}

// AppliesTo reports whether the analyzer targets the package with the
// given import path inside module modPath.
func (a *Analyzer) AppliesTo(modPath, pkgPath string) bool {
	for _, rel := range a.Packages {
		if pkgPath == modPath+"/"+rel || pkgPath == rel {
			return true
		}
	}
	return false
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks a finding annotated away with a justified //lint:
	// directive. Suppressed findings do not fail the build but are counted.
	Suppressed bool
	// Justification carries the suppressing annotation's reason.
	Justification string
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *Package

	directives map[string][]directive // file name -> line-sorted directives
	diags      []Diagnostic
}

// directive is one parsed //lint:<name> <reason> annotation.
type directive struct {
	line   int
	name   string
	reason string
	used   bool // matched at least one finding this pass
}

// DirectiveKey identifies one //lint: annotation site for cross-pass
// bookkeeping (staleness detection).
type DirectiveKey struct {
	File string
	Line int
	Name string
}

// NewPass prepares a pass, scanning the files' comments for //lint:
// directives.
func NewPass(a *Analyzer, fset *token.FileSet, pkg *Package) *Pass {
	p := &Pass{Analyzer: a, Fset: fset, Files: pkg.Files, Pkg: pkg,
		directives: make(map[string][]directive)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(text, " ")
				pos := fset.Position(c.Pos())
				p.directives[pos.Filename] = append(p.directives[pos.Filename],
					directive{line: pos.Line, name: name, reason: strings.TrimSpace(reason)})
			}
		}
	}
	return p
}

// Reportf records a finding at pos. Suppression directives are resolved
// immediately: a justified annotation on the finding's line (or the line
// above) marks it suppressed; an unjustified one keeps the finding and
// appends a demand for the missing reason.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	d := Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)}
	names := append([]string{p.Analyzer.Name}, p.Analyzer.Aliases...)
	dirs := p.directives[position.Filename]
	for i := range dirs {
		dir := &dirs[i]
		if dir.line != position.Line && dir.line != position.Line-1 {
			continue
		}
		match := false
		for _, n := range names {
			if dir.name == n {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		dir.used = true
		if dir.reason == "" {
			d.Message += fmt.Sprintf(" (suppression requires a justification: //lint:%s <reason>)", dir.name)
			break
		}
		d.Suppressed = true
		d.Justification = dir.reason
		break
	}
	p.diags = append(p.diags, d)
}

// UsedDirectives returns the annotation sites that matched a finding
// during this pass (suppressing it or demanding a justification).
func (p *Pass) UsedDirectives() []DirectiveKey {
	var out []DirectiveKey
	for file, dirs := range p.directives {
		for _, dir := range dirs {
			if dir.used {
				out = append(out, DirectiveKey{File: file, Line: dir.line, Name: dir.name})
			}
		}
	}
	return out
}

// DirectiveSites scans pkg's comments and returns every //lint:
// annotation site, whatever analyzer it names.
func DirectiveSites(fset *token.FileSet, pkg *Package) []DirectiveKey {
	var out []DirectiveKey
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				name, _, _ := strings.Cut(text, " ")
				pos := fset.Position(c.Pos())
				out = append(out, DirectiveKey{File: pos.Filename, Line: pos.Line, Name: name})
			}
		}
	}
	return out
}

// StaleDirectives reports the //lint: annotations in pkg that name an
// analyzer in ran but suppressed nothing: a directive that outlived the
// finding it silenced is noise at best and, at worst, a hole waiting to
// hide the next real finding. ran maps the directive names (analyzer
// names and aliases) actually exercised over this package; used holds
// the sites every executed pass consumed.
func StaleDirectives(fset *token.FileSet, pkg *Package, ran map[string]bool, used map[DirectiveKey]bool) []Diagnostic {
	var out []Diagnostic
	for _, site := range DirectiveSites(fset, pkg) {
		if !ran[site.Name] || used[site] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      token.Position{Filename: site.File, Line: site.Line, Column: 1},
			Analyzer: "stale",
			Message: fmt.Sprintf("stale suppression: //lint:%s no longer suppresses any %s finding; delete it",
				site.Name, site.Name),
		})
	}
	SortDiagnostics(out)
	return out
}

// Diagnostics returns the pass's findings, suppressed ones included.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// Run executes every applicable analyzer over pkg and returns the merged,
// position-sorted findings.
func Run(analyzers []*Analyzer, modPath string, pkg *Package, fset *token.FileSet) []Diagnostic {
	diags, _, _ := RunPackage(analyzers, modPath, pkg, fset)
	return diags
}

// RunPackage executes every applicable analyzer over pkg, additionally
// returning the //lint: annotation sites the passes consumed and the
// directive names (analyzer names plus aliases) that were exercised —
// the inputs the staleness check needs.
func RunPackage(analyzers []*Analyzer, modPath string, pkg *Package, fset *token.FileSet) ([]Diagnostic, []DirectiveKey, map[string]bool) {
	var out []Diagnostic
	var used []DirectiveKey
	ran := make(map[string]bool)
	for _, a := range analyzers {
		if !a.AppliesTo(modPath, pkg.Path) {
			continue
		}
		ran[a.Name] = true
		for _, alias := range a.Aliases {
			ran[alias] = true
		}
		pass := NewPass(a, fset, pkg)
		a.Run(pass)
		out = append(out, pass.Diagnostics()...)
		used = append(used, pass.UsedDirectives()...)
	}
	SortDiagnostics(out)
	return out, used, ran
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
