package lint

import (
	"go/ast"
	"go/token"
)

// CtxBlock enforces context plumbing in the engine, cluster, actor, and
// serving packages, where every blocking call must stay cancellable: the
// graceful shutdown and watchdog stories (SIGINT rollback, superstep
// timeouts, SIGTERM drain) only work if cancellation reaches every wait.
//
// Two rules:
//
//  1. Library code must not mint its own root context: calls to
//     context.Background() / context.TODO() are flagged. The few
//     documented convenience wrappers carry //lint:ctxblock annotations.
//  2. An exported function or method without a context.Context parameter
//     must not contain a raw blocking operation — a channel send or
//     receive outside a select, a select without a default clause, or a
//     sync.WaitGroup/sync.Cond Wait. Such an API hands callers an
//     uncancellable wait; either accept a context or justify why the
//     block is release-bounded (e.g. by the mailbox Close protocol).
var CtxBlock = &Analyzer{
	Name: "ctxblock",
	Doc: "exported blocking calls must accept a context.Context, and " +
		"library code must not call context.Background()",
	Packages: []string{"internal/core", "internal/cluster", "internal/actor", "internal/serve"},
	Run:      runCtxBlock,
}

func runCtxBlock(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Files {
		// Rule 1: no ambient root contexts anywhere in library code.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, fn := range []string{"Background", "TODO"} {
				if pkgFunc(info, call, "context", fn) {
					pass.Reportf(call.Pos(), "library code must not call context.%s(); thread the caller's context through instead", fn)
				}
			}
			return true
		})
		// Rule 2: exported declarations without a ctx parameter.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if funcHasCtxParam(info, fn) {
				continue
			}
			reportBlockingOps(pass, fn)
		}
	}
}

// reportBlockingOps flags raw blocking operations in fn's body. Selects
// are accounted as a whole: one with a default clause is non-blocking and
// its communication attempts are exempt; one without is flagged as a
// single finding rather than once per comm.
func reportBlockingOps(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	comms := make(map[ast.Node]bool) // comm stmts owned by any select
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if comm := c.(*ast.CommClause).Comm; comm != nil {
					comms[comm] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			if !hasDefaultClause(n) {
				pass.Reportf(n.Pos(), "exported %s blocks on a select without accepting a context.Context", fn.Name.Name)
			}
		case *ast.SendStmt:
			if comms[n] {
				return false // accounted to the owning select
			}
			pass.Reportf(n.Pos(), "exported %s blocks on a channel send without accepting a context.Context", fn.Name.Name)
		case *ast.AssignStmt:
			if comms[n] {
				return false // select receive comm, accounted to the select
			}
		case *ast.ExprStmt:
			if comms[n] {
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "exported %s blocks on a channel receive without accepting a context.Context", fn.Name.Name)
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if s, ok := info.Selections[sel]; ok {
					recv := namedTypeName(s.Recv())
					if obj := s.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (recv == "WaitGroup" || recv == "Cond") {
						pass.Reportf(n.Pos(), "exported %s blocks on sync.%s.Wait without accepting a context.Context", fn.Name.Name, recv)
					}
				}
			}
		}
		return true
	})
}
