package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolSafe makes the arena's ownership protocol static. The core pool
// (internal/core/pool.go) recycles dense slabs, sparse tables, and
// message buffers through explicit free lists; the protocol says a
// buffer has exactly one owner at a time and release re-establishes the
// emptiness invariant. Poison-on-release catches violations dynamically
// — but only on the execution that happens to recycle the buffer into a
// reader. This analyzer walks each function's control flow and enforces
// the discipline on every path:
//
//   - every acquire (getSlab/getTable/getBuf/getBatch on an arena or
//     Engine receiver) bound to a local variable must be resolved on all
//     paths out of the function — released with the matching put, handed
//     off (stored into a field, sent on a channel, passed to a call,
//     returned), or covered by a deferred release that also fires on
//     panic unwinds and error returns;
//   - after a release, the variable is dead: any further use — reading
//     through it, releasing it again, storing it into a struct field,
//     global, or channel — is a finding, because the arena may already
//     have recycled the memory into another owner;
//   - an acquire whose result is discarded leaks immediately;
//   - an acquire inside a loop body must be resolved within that body
//     (one iteration's buffer must not depend on a later iteration to
//     free it).
//
// Handoff intentionally ends the analysis: ownership transfer is the
// design (dispatcher fills, mailbox carries, computer drains), and the
// receiving function is checked on its own. The analysis is
// intra-function and conservative; a pattern the walker cannot prove
// safe carries a //lint:poolsafe <reason> justification.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc: "core pool acquire/release discipline: every acquire released or " +
		"handed off on all paths, no use of pooled memory after release",
	Packages: []string{"internal/core"},
	Run:      runPoolSafe,
}

var poolAcquireNames = map[string]bool{
	"getSlab": true, "getTable": true, "getBuf": true, "getBatch": true,
}

var poolReleaseNames = map[string]bool{
	"putSlab": true, "putTable": true, "putBuf": true, "putBatch": true,
}

// poolReceiverTypes are the named types whose get/put methods move
// buffers in and out of the arena. Fixtures model them with local
// doubles of the same names (methodOn does not check the package).
var poolReceiverTypes = map[string]bool{"arena": true, "Engine": true}

func poolCallName(info *types.Info, call *ast.CallExpr, names map[string]bool) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !names[sel.Sel.Name] {
		return "", false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	if !poolReceiverTypes[namedTypeName(s.Recv())] {
		return "", false
	}
	return sel.Sel.Name, true
}

// poolVarState tracks one pooled buffer bound to a local variable.
type poolVarState struct {
	status     int // psOwned or psReleased
	acquirePos token.Pos
	acquire    string // acquiring method name, for messages
	release    string // releasing method name (psReleased), for messages
	deferred   bool   // a deferred release covers every exit, panics included
}

const (
	psOwned = iota
	psReleased
)

// poolState maps local variables to their buffer state. It is cloned at
// every branch point and merged conservatively afterwards.
type poolState map[*types.Var]*poolVarState

func (s poolState) clone() poolState {
	out := make(poolState, len(s))
	for k, v := range s {
		cp := *v
		out[k] = &cp
	}
	return out
}

// merge folds a branch's outcome back into s. A variable owned in either
// retains the ownership obligation; a release observed in either arm is
// kept so later uses are flagged (conservative: the release may not have
// happened on the taken path, but using a maybe-released buffer is
// exactly the race poison-on-release exists to catch).
func (s poolState) merge(b poolState) {
	for v, bs := range b {
		cur, ok := s[v]
		if !ok {
			s[v] = bs
			continue
		}
		if bs.status == psReleased && cur.status != psReleased {
			*cur = *bs
		}
		if bs.deferred {
			cur.deferred = true
		}
	}
}

type poolSafeCtx struct {
	pass *Pass
	info *types.Info
}

func runPoolSafe(pass *Pass) {
	ctx := &poolSafeCtx{pass: pass, info: pass.Pkg.Info}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			state := make(poolState)
			terminated := ctx.block(fn.Body.List, state)
			if !terminated {
				ctx.checkLeaks(state, token.NoPos)
			}
		}
	}
}

// checkLeaks reports every still-owned, non-deferred buffer. at is the
// return statement position, or NoPos at function end (then the report
// anchors at the acquire).
func (c *poolSafeCtx) checkLeaks(state poolState, at token.Pos) {
	var leaks []*poolVarState
	for _, vs := range state {
		if vs.status == psOwned && !vs.deferred {
			leaks = append(leaks, vs)
		}
	}
	// Deterministic order for multiple leaks on one path.
	for i := range leaks {
		for j := i + 1; j < len(leaks); j++ {
			if leaks[j].acquirePos < leaks[i].acquirePos {
				leaks[i], leaks[j] = leaks[j], leaks[i]
			}
		}
	}
	for _, vs := range leaks {
		pos := at
		where := "on this return path"
		if pos == token.NoPos {
			pos = vs.acquirePos
			where = "by function end"
		}
		c.pass.Reportf(pos, "pooled buffer from %s is not released or handed off %s; release it (defer covers panics) or justify with //lint:poolsafe", vs.acquire, where)
	}
}

// block walks a statement list, returning true when the list definitely
// terminates (return / panic / branch) before falling off the end.
func (c *poolSafeCtx) block(stmts []ast.Stmt, state poolState) bool {
	for _, s := range stmts {
		if c.stmt(s, state) {
			return true
		}
	}
	return false
}

// stmt analyzes one statement, returning true when control definitely
// leaves the enclosing block here.
func (c *poolSafeCtx) stmt(stmt ast.Stmt, state poolState) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		c.assign(s, state)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					c.expr(val, state, true)
				}
				// A declared name shadows any tracked outer binding.
				for _, name := range vs.Names {
					if obj, ok := c.info.Defs[name].(*types.Var); ok {
						delete(state, obj)
					}
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						c.bindAcquire(name, vs.Values[i], state)
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, ok := poolCallName(c.info, call, poolAcquireNames); ok {
				c.pass.Reportf(call.Pos(), "result of %s is discarded: the pooled buffer leaks immediately", name)
				c.exprs(call.Args, state)
				return false
			}
		}
		c.expr(s.X, state, true)
	case *ast.DeferStmt:
		c.deferStmt(s, state)
	case *ast.GoStmt:
		c.expr(s.Call, state, true)
	case *ast.SendStmt:
		c.expr(s.Chan, state, false)
		c.expr(s.Value, state, true) // send is a handoff (or a use-after-release)
	case *ast.IncDecStmt:
		c.expr(s.X, state, false)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, state, true) // returning a buffer is a handoff
		}
		c.checkLeaks(state, s.Pos())
		return true
	case *ast.BranchStmt:
		// break/continue/goto: control leaves this block. Leak detection
		// for loop-acquired buffers happens at the loop handler.
		return true
	case *ast.BlockStmt:
		return c.block(s.List, state)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, state)
		}
		c.expr(s.Cond, state, false)
		thenState := state.clone()
		thenTerm := c.block(s.Body.List, thenState)
		var elseState poolState
		elseTerm := false
		if s.Else != nil {
			elseState = state.clone()
			elseTerm = c.stmt(s.Else, elseState)
		}
		switch {
		case s.Else == nil:
			if !thenTerm {
				state.merge(thenState)
			}
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			// Only the else path continues.
			replace(state, elseState)
		case elseTerm:
			replace(state, thenState)
		default:
			replace(state, thenState)
			state.merge(elseState)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, state)
		}
		if s.Cond != nil {
			c.expr(s.Cond, state, false)
		}
		c.loopBody(s.Body, s.Post, state)
	case *ast.RangeStmt:
		c.expr(s.X, state, false)
		c.loopBody(s.Body, nil, state)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, state)
		}
		if s.Tag != nil {
			c.expr(s.Tag, state, false)
		}
		c.caseClauses(s.Body.List, state)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, state)
		}
		c.stmt(s.Assign, state)
		c.caseClauses(s.Body.List, state)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			branch := state.clone()
			if comm.Comm != nil {
				c.stmt(comm.Comm, branch)
			}
			if !c.block(comm.Body, branch) {
				state.merge(branch)
			}
		}
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, state)
	}
	return false
}

// replace overwrites s with b in place (branch state superseding the
// pre-branch state).
func replace(s, b poolState) {
	for k := range s {
		delete(s, k)
	}
	for k, v := range b {
		s[k] = v
	}
}

// loopBody analyzes a loop body on a cloned state: a buffer acquired
// inside the body must be resolved before the iteration ends, since the
// next iteration rebinds the variable and the reference is lost.
func (c *poolSafeCtx) loopBody(body *ast.BlockStmt, post ast.Stmt, state poolState) {
	inner := state.clone()
	terminated := c.block(body.List, inner)
	if post != nil {
		c.stmt(post, inner)
	}
	for v, vs := range inner {
		if _, preexisting := state[v]; preexisting {
			continue
		}
		if vs.status == psOwned && !vs.deferred && !terminated {
			c.pass.Reportf(vs.acquirePos, "pooled buffer from %s acquired in a loop is not released or handed off within the iteration; release it or justify with //lint:poolsafe", vs.acquire)
		}
	}
	// Releases observed in the body still poison later uses outside.
	for v, vs := range inner {
		if _, preexisting := state[v]; preexisting && vs.status == psReleased {
			*state[v] = *vs
		}
	}
}

func (c *poolSafeCtx) caseClauses(clauses []ast.Stmt, state poolState) {
	allTerm := len(clauses) > 0
	merged := false
	for _, cl := range clauses {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		branch := state.clone()
		c.exprs(cc.List, branch)
		if c.block(cc.Body, branch) {
			continue
		}
		allTerm = false
		state.merge(branch)
		merged = true
	}
	_ = allTerm
	_ = merged
}

// assign handles acquires, rebinds, and handoffs through assignment.
func (c *poolSafeCtx) assign(s *ast.AssignStmt, state poolState) {
	// RHS first: a tracked buffer on the right of an assignment is being
	// stored somewhere — a handoff (or a use-after-release).
	for _, r := range s.Rhs {
		c.expr(r, state, true)
	}
	for _, l := range s.Lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if obj := c.lookupVar(id); obj != nil {
				// Rebinding the name drops the old tracking entry. (An
				// unreleased buffer overwritten this way is out of scope
				// for the intra-function analysis.)
				delete(state, obj)
			}
			continue
		}
		// Field / index / deref target: uses inside are reads.
		c.expr(l, state, false)
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok {
				c.bindAcquire(id, s.Rhs[i], state)
			}
		}
	}
}

// bindAcquire starts tracking name when value is a pool acquire call
// assigned to a plain local variable. Acquires not bound to an ident
// (stored straight into a field, passed as an argument) are handoffs at
// birth and intentionally untracked.
func (c *poolSafeCtx) bindAcquire(name *ast.Ident, value ast.Expr, state poolState) {
	call, ok := ast.Unparen(value).(*ast.CallExpr)
	if !ok {
		return
	}
	acq, ok := poolCallName(c.info, call, poolAcquireNames)
	if !ok {
		return
	}
	obj := c.lookupVar(name)
	if obj == nil {
		return
	}
	state[obj] = &poolVarState{status: psOwned, acquirePos: call.Pos(), acquire: acq}
}

// deferStmt recognizes deferred releases: defer putX(v) directly, or a
// deferred function literal whose body releases v. A deferred release
// runs on every exit from the function, panics included.
func (c *poolSafeCtx) deferStmt(s *ast.DeferStmt, state poolState) {
	if name, ok := poolCallName(c.info, s.Call, poolReleaseNames); ok {
		_ = name
		for _, arg := range s.Call.Args {
			if obj := c.argVar(arg); obj != nil {
				if vs, ok := state[obj]; ok {
					vs.deferred = true
				}
			}
		}
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := poolCallName(c.info, call, poolReleaseNames); !ok {
				return true
			}
			for _, arg := range call.Args {
				if obj := c.argVar(arg); obj != nil {
					if vs, ok := state[obj]; ok {
						vs.deferred = true
					}
				}
			}
			return true
		})
		return
	}
	c.expr(s.Call, state, true)
}

// exprs checks a list of expressions in non-escaping (read) position.
func (c *poolSafeCtx) exprs(list []ast.Expr, state poolState) {
	for _, e := range list {
		c.expr(e, state, false)
	}
}

// expr walks e, flagging uses of released buffers and resolving owned
// buffers that escape whole (escapes=true at positions where the value
// itself is stored, passed, sent, or returned).
func (c *poolSafeCtx) expr(e ast.Expr, state poolState, escapes bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		obj := c.lookupVar(e)
		if obj == nil {
			return
		}
		vs, ok := state[obj]
		if !ok {
			return
		}
		if vs.status == psReleased {
			c.pass.Reportf(e.Pos(), "use of pooled buffer %s after %s released it: the arena may already have recycled this memory", e.Name, vs.release)
			return
		}
		if escapes {
			delete(state, obj) // handoff: ownership leaves this function's scope
		}
	case *ast.ParenExpr:
		c.expr(e.X, state, escapes)
	case *ast.UnaryExpr:
		c.expr(e.X, state, escapes)
	case *ast.StarExpr:
		c.expr(e.X, state, false)
	case *ast.SliceExpr:
		// A subslice still references the pooled backing array: passing
		// it on is a handoff, using it after release is a violation.
		c.expr(e.X, state, escapes)
		c.expr(e.Low, state, false)
		c.expr(e.High, state, false)
		c.expr(e.Max, state, false)
	case *ast.IndexExpr:
		c.expr(e.X, state, false)
		c.expr(e.Index, state, false)
	case *ast.SelectorExpr:
		c.expr(e.X, state, false)
	case *ast.CallExpr:
		c.call(e, state)
	case *ast.BinaryExpr:
		c.expr(e.X, state, false)
		c.expr(e.Y, state, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.expr(kv.Value, state, true)
				continue
			}
			c.expr(el, state, true)
		}
	case *ast.KeyValueExpr:
		c.expr(e.Value, state, true)
	case *ast.TypeAssertExpr:
		c.expr(e.X, state, false)
	case *ast.FuncLit:
		// A closure capturing a tracked buffer takes a reference of
		// unknown lifetime: treat every captured tracked var as escaped,
		// and flag captured released vars.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			c.expr(id, state, true)
			return true
		})
	}
}

// call handles release transitions and argument handoffs.
func (c *poolSafeCtx) call(call *ast.CallExpr, state poolState) {
	if rel, ok := poolCallName(c.info, call, poolReleaseNames); ok {
		c.expr(ast.Unparen(call.Fun).(*ast.SelectorExpr).X, state, false)
		for _, arg := range call.Args {
			obj := c.argVar(arg)
			if obj == nil {
				c.expr(arg, state, false)
				continue
			}
			vs, ok := state[obj]
			if !ok {
				// Parameter or field-derived variable: begin tracking at
				// the release so later uses are caught.
				state[obj] = &poolVarState{status: psReleased, release: rel}
				continue
			}
			if vs.status == psReleased {
				c.pass.Reportf(arg.Pos(), "pooled buffer released twice (%s after %s): double-release corrupts the free list", rel, vs.release)
				continue
			}
			vs.status = psReleased
			vs.release = rel
		}
		return
	}
	c.expr(call.Fun, state, false)
	for _, arg := range call.Args {
		c.expr(arg, state, true) // passing a buffer to a call is a handoff
	}
}

// argVar unwraps parens and slice expressions and resolves the argument
// to a local variable object, or nil.
func (c *poolSafeCtx) argVar(arg ast.Expr) *types.Var {
	for {
		switch a := arg.(type) {
		case *ast.ParenExpr:
			arg = a.X
		case *ast.SliceExpr:
			arg = a.X
		default:
			if id, ok := arg.(*ast.Ident); ok {
				return c.lookupVar(id)
			}
			return nil
		}
	}
}

func (c *poolSafeCtx) lookupVar(id *ast.Ident) *types.Var {
	if obj, ok := c.info.Uses[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := c.info.Defs[id].(*types.Var); ok {
		return obj
	}
	return nil
}
