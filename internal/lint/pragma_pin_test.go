package lint_test

import (
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// The dispatch loop's zero-alloc guarantee is only as strong as its
// pragma coverage: if someone deletes a //gpsa:noalloc marker from
// dispatcher.go, the escape gate silently stops checking that
// function. This test pins the manifest in noalloc.go against that:
// for every pragma in dispatcher.go, deleting just that one line must
// produce an unsuppressed "must carry a //gpsa:noalloc pragma"
// finding on the real tree.
func TestDeletingDispatcherPragmaFailsGate(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("repro/internal/core")
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: the committed tree has full pragma coverage and every
	// remaining finding is justified, so the analyzer reports nothing.
	pass := lint.NewPass(lint.Noalloc, loader.Fset, pkg)
	lint.Noalloc.Run(pass)
	if diags := unsuppressed(pass.Diagnostics()); len(diags) != 0 {
		for _, d := range diags {
			t.Logf("  %s: %s", d.Pos, d.Message)
		}
		t.Fatalf("baseline: %d unsuppressed noalloc findings on the committed tree, want 0", len(diags))
	}

	dispatcherPath := filepath.Join(pkg.Dir, "dispatcher.go")
	src, err := os.ReadFile(dispatcherPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(src), "\n")
	var pragmaLines []int
	for i, line := range lines {
		if strings.TrimSpace(line) == lint.NoallocPragma {
			pragmaLines = append(pragmaLines, i)
		}
	}
	if len(pragmaLines) < 5 {
		t.Fatalf("dispatcher.go carries %d %s pragmas, expected at least 5 — did the dispatch loop move?", len(pragmaLines), lint.NoallocPragma)
	}

	// Locate dispatcher.go's parsed file so we can swap it out.
	dispatcherIdx := -1
	for i, f := range pkg.Files {
		if loader.Fset.Position(f.Pos()).Filename == dispatcherPath {
			dispatcherIdx = i
		}
	}
	if dispatcherIdx < 0 {
		t.Fatalf("dispatcher.go not among loaded files of %s", pkg.Path)
	}

	for _, del := range pragmaLines {
		mutated := make([]string, 0, len(lines)-1)
		mutated = append(mutated, lines[:del]...)
		mutated = append(mutated, lines[del+1:]...)
		f, err := parser.ParseFile(loader.Fset, dispatcherPath, strings.Join(mutated, "\n"), parser.ParseComments)
		if err != nil {
			t.Fatalf("pragma at line %d: reparse: %v", del+1, err)
		}
		files := append([]*ast.File(nil), pkg.Files...)
		files[dispatcherIdx] = f
		tpkg, info, err := lint.CheckFiles(loader.Fset, pkg.Path, files, loader)
		if err != nil {
			t.Fatalf("pragma at line %d: recheck: %v", del+1, err)
		}
		mutPkg := &lint.Package{Path: pkg.Path, Dir: pkg.Dir, Files: files, Types: tpkg, Info: info}
		mutPass := lint.NewPass(lint.Noalloc, loader.Fset, mutPkg)
		lint.Noalloc.Run(mutPass)
		found := false
		for _, d := range unsuppressed(mutPass.Diagnostics()) {
			if strings.Contains(d.Message, "must carry a //gpsa:noalloc pragma") {
				found = true
			}
		}
		if !found {
			t.Errorf("deleting the pragma at dispatcher.go:%d produced no missing-pragma finding; the gate would silently stop checking that function", del+1)
		}
	}
}

func unsuppressed(diags []lint.Diagnostic) []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}
