package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// Package is a type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/core")
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library: module-local imports are resolved by
// recursive source checking, standard-library imports through the
// go/importer source importer. It exists because the tree must lint
// itself without any dependency outside the Go distribution.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute path of the module root (directory of go.mod)
	ModPath string // module path from go.mod

	std  types.ImporterFrom
	pkgs map[string]*Package
	busy map[string]bool // import cycle guard
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader builds a loader for the module that contains dir, walking up
// to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: string(m[1]),
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		busy:    make(map[string]bool),
	}, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom resolves path: module-local packages are loaded from source,
// everything else is delegated to the standard-library source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load parses and type-checks the module package with the given import
// path (applying the default build constraints, excluding _test files).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tpkg, info, err := CheckFiles(l.Fset, path, files, l)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// CheckFiles type-checks one package's parsed files with the given
// importer, returning the package and a fully populated types.Info.
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}
