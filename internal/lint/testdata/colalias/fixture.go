// Package vertexfile is a fixture double exercising the colalias
// analyzer: the Map type models internal/mmap.Map (the analyzer matches
// the receiver type name, not the package), and the package is named
// vertexfile so the slots rule applies.
package vertexfile

type Map struct{ buf []byte }

func (m *Map) Bytes() []byte                          { return m.buf }
func (m *Map) Uint32s(off, n int64) ([]uint32, error) { return nil, nil }
func (m *Map) Uint64s(off, n int64) ([]uint64, error) { return nil, nil }

type File struct {
	m     *Map
	slots []uint64
	raw   []byte
}

func retainDirect(f *File, m *Map) {
	f.raw = m.Bytes() // want "mmap-backed slice stored in a field"
}

func retainViaLocal(m *Map) *File {
	b := m.Bytes()
	view := b[8:]
	return &File{
		raw: view, // want "mmap-backed slice stored in a field"
	}
}

func retainMulti(f *File, m *Map) error {
	slots, err := m.Uint64s(0, 4)
	if err != nil {
		return err
	}
	f.slots = slots // want "mmap-backed slice stored in a field"
	return nil
}

func mutateView(m *Map) {
	b := m.Bytes()
	b[0] = 1 // want "write through mmap-backed slice b"
}

// Copying out of a view is fine: the copy does not alias the mapping.
func copyOut(m *Map) []byte {
	b := m.Bytes()
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func storeSlot(f *File, v int64, x uint64) {
	f.slots[v] = x // want "non-atomic write to the vertex column slots"
}

func retainJustified(f *File, m *Map) {
	//lint:colalias fixture double owns the mapping; view and map share one lifetime
	f.raw = m.Bytes()
}

func retainUnjustified(f *File, m *Map) {
	//lint:colalias
	f.raw = m.Bytes() // want "suppression requires a justification"
}
