// Package fixture exercises the noalloc analyzer: allocation sites in
// //gpsa:noalloc-marked functions and their intra-package callees are
// findings; cold failure paths (returns, error assignments, panics) and
// unmarked functions are not.
package fixture

import (
	"errors"
	"fmt"
)

type msg struct {
	dst uint32
	val uint64
}

type state struct {
	err  error
	bufs []msg
}

// hotLoop is the marked hot path: every allocation form is a finding.
//
//gpsa:noalloc
func hotLoop(s *state, n int) {
	b := make([]msg, n) // want "make allocates"
	_ = b
	p := new(msg) // want "new allocates"
	_ = p
	s.bufs = append(s.bufs, msg{dst: 1}) // want "append may grow its backing array"
	lit := []uint64{1, 2}                // want "slice literal allocates"
	_ = lit
	table := map[uint32]uint64{} // want "map literal allocates"
	_ = table
	q := &msg{dst: 2} // want "&composite literal is a heap allocation"
	_ = q
	fn := func() {} // want "function literal allocates a closure"
	fn()
	_ = fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates"
	_ = errors.New("hot")    // want "errors.New allocates"
	helper(s)                // drags the unmarked callee into the checked set
	sink(n)                  // want "interface conversion boxes a int value"
	sink(&msg{})             // pointer arg: no boxing (but the literal is flagged) // want "&composite literal is a heap allocation"
	a, z := "x", "y"
	_ = a + z      // want "string concatenation allocates"
	_ = []byte(a)  // want "string/\\[\\]byte conversion copies"
	_ = string(bs) // want "string/\\[\\]byte conversion copies"
}

var bs []byte

func sink(v interface{}) {}

// helper carries no pragma but is reachable from hotLoop, so its
// allocation sites are findings too.
func helper(s *state) {
	s.bufs = make([]msg, 4) // want "make allocates in noalloc context helper \\(callee of //gpsa:noalloc hotLoop\\)"
}

// coldPaths shows the exemptions: error construction on the way out of
// a hot function is not a finding.
//
//gpsa:noalloc
func coldPaths(s *state, fail bool) error {
	if fail {
		return fmt.Errorf("cold: %d", 1) // return statements are cold
	}
	s.err = fmt.Errorf("stored: %d", 2) // error-typed assignment is cold
	if s.err != nil {
		panic(fmt.Sprintf("cold %d", 3)) // panic arguments are cold
	}
	return nil
}

// justified demonstrates the suppression story: a justification silences
// the finding, a bare annotation keeps it and demands the reason.
//
//gpsa:noalloc
func justified(s *state, n int) {
	//lint:noalloc capacity is pre-sized by the pool contract; append never grows
	s.bufs = append(s.bufs, msg{dst: 3})
	//lint:noalloc
	b := make([]msg, n) // want "suppression requires a justification"
	_ = b
}

// unmarked functions are not checked at all.
func unmarked(n int) []msg {
	return make([]msg, n)
}
