// Package fixture exercises the actorshare analyzer: raw goroutine
// spawns and bare channel sends are findings; non-blocking tries and
// justified sites are not.
package fixture

func spawnRaw(work func()) {
	go work() // want "raw goroutine spawn bypasses the supervised actor system"
}

func sendBare(ch chan<- int) {
	ch <- 1 // want "bare channel send bypasses the bounded mailbox API"
}

// A send guarded by a select default is the TryPut idiom: permitted.
func trySend(ch chan<- int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// A send in a select without a default still blocks: flagged.
func sendInBlockingSelect(ch chan<- int, done <-chan struct{}) {
	select {
	case ch <- 1: // want "bare channel send bypasses the bounded mailbox API"
	case <-done:
	}
}

func spawnJustified(work func()) {
	//lint:actorshare receiver lifetime is bounded by its connection, tracked outside the system
	go work()
}

func sendUnjustified(ch chan<- int) {
	//lint:actorshare
	ch <- 1 // want "suppression requires a justification"
}
