// Package fixture exercises the poolsafe analyzer: every pool acquire
// bound to a local must be released or handed off on all paths, and a
// released buffer is dead memory.
package fixture

type slab struct {
	vals []uint64
}

type arena struct {
	free []*slab
}

func (a *arena) getSlab() *slab     { return &slab{} }
func (a *arena) putSlab(s *slab)    {}
func (a *arena) getBuf(n int) []int { return nil }
func (a *arena) putBuf(b []int)     {}

type Engine struct {
	pool  *arena
	held  *slab
	out   chan *slab
	ready bool
}

func (e *Engine) getBatch() []int  { return e.pool.getBuf(8) }
func (e *Engine) putBatch(b []int) { e.pool.putBuf(b) }

// leakAtEnd never releases: finding at the acquire.
func leakAtEnd(a *arena) {
	s := a.getSlab() // want "not released or handed off by function end"
	s.vals = nil
}

// leakOnErrorReturn forgets the early return path.
func leakOnErrorReturn(a *arena, fail bool) error {
	s := a.getSlab()
	if fail {
		return errFail // want "not released or handed off on this return path"
	}
	a.putSlab(s)
	return nil
}

var errFail error

// deferredRelease covers every exit, panics included: clean.
func deferredRelease(a *arena, fail bool) error {
	s := a.getSlab()
	defer a.putSlab(s)
	if fail {
		return errFail
	}
	s.vals[0] = 1
	return nil
}

// deferredClosureRelease is the conditional-release idiom: clean.
func deferredClosureRelease(a *arena) {
	b := a.getBuf(16)
	defer func() {
		if b != nil {
			a.putBuf(b)
		}
	}()
	b = append(b, 1)
}

// useAfterRelease reads through recycled memory.
func useAfterRelease(a *arena) uint64 {
	s := a.getSlab()
	a.putSlab(s)
	return s.vals[0] // want "use of pooled buffer s after putSlab released it"
}

// storeAfterRelease parks a dangling reference in a struct field.
func storeAfterRelease(a *arena, e *Engine) {
	s := a.getSlab()
	a.putSlab(s)
	e.held = s // want "use of pooled buffer s after putSlab released it"
}

// sendAfterRelease ships recycled memory to another goroutine.
func sendAfterRelease(a *arena, e *Engine) {
	s := a.getSlab()
	a.putSlab(s)
	e.out <- s // want "use of pooled buffer s after putSlab released it"
}

// doubleRelease corrupts the free list.
func doubleRelease(a *arena) {
	s := a.getSlab()
	a.putSlab(s)
	a.putSlab(s) // want "pooled buffer released twice"
}

// discardedAcquire drops the only reference immediately.
func discardedAcquire(a *arena) {
	a.getSlab() // want "result of getSlab is discarded"
}

// leakInLoop must release within the iteration that acquired.
func leakInLoop(a *arena, n int) {
	for i := 0; i < n; i++ {
		s := a.getSlab() // want "acquired in a loop is not released or handed off within the iteration"
		s.vals[0] = uint64(i)
	}
}

// releaseInLoop is the balanced loop: clean.
func releaseInLoop(a *arena, n int) {
	for i := 0; i < n; i++ {
		s := a.getSlab()
		s.vals[0] = uint64(i)
		a.putSlab(s)
	}
}

// handoffs transfer ownership and end the analysis: all clean.
func handoffField(a *arena, e *Engine) {
	s := a.getSlab()
	e.held = s
}

func handoffChannel(a *arena, e *Engine) {
	s := a.getSlab()
	e.out <- s
}

func handoffReturn(a *arena) *slab {
	s := a.getSlab()
	return s
}

func handoffCall(a *arena) {
	s := a.getSlab()
	consume(s)
}

func handoffAtBirth(a *arena, e *Engine) {
	e.held = a.getSlab()
	consume(a.getSlab())
}

func consume(s *slab) {}

// branchBalanced releases on both arms: clean.
func branchBalanced(a *arena, cond bool) {
	s := a.getSlab()
	if cond {
		a.putSlab(s)
	} else {
		consume(s)
	}
}

// engineWrappers use the Engine-level acquire/release pair: clean.
func engineWrappers(e *Engine) {
	b := e.getBatch()
	e.putBatch(b)
}

// justifiedLeak carries the reviewed reason: suppressed, not reported.
func justifiedLeak(a *arena) {
	s := a.getSlab() //lint:poolsafe deliberately long-lived: the engine owns this slab until shutdown
	s.vals = nil
}

// bareSuppression keeps the finding and demands the missing reason.
func bareSuppression(a *arena) uint64 {
	s := a.getSlab()
	a.putSlab(s)
	//lint:poolsafe
	return s.vals[0] // want "suppression requires a justification"
}
