// Package fixture exercises the syncerr analyzer: implicitly or
// explicitly discarded errors from durability methods are findings;
// checked and error-joined calls are not.
package fixture

type file struct{}

func (f *file) Sync() error                 { return nil }
func (f *file) Close() error                { return nil }
func (f *file) Flush() error                { return nil }
func (f *file) CommitStep(step int64) error { return nil }
func (f *file) Name() string                { return "" }

func ignoreSync(f *file) {
	f.Sync() // want "error from Sync discarded"
}

func discardClose(f *file) {
	_ = f.Close() // want "error from Close explicitly discarded"
}

func deferClose(f *file) error {
	defer f.Close() // want "deferred Close discards its error"
	return f.Sync()
}

func goClose(f *file) {
	go f.Close() // want "go Close discards its error"
}

// Checking (or returning) the error is the fix: not flagged.
func checkedClose(f *file) error {
	if err := f.CommitStep(1); err != nil {
		return err
	}
	return f.Close()
}

// The deferred-closure idiom checks the close error: not flagged.
func deferChecked(f *file) (err error) {
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return f.Flush()
}

// No error result, no finding.
func nameOnly(f *file) string {
	return f.Name()
}

func closeJustified(f *file) {
	_ = f.Close() //lint:syncerr best-effort release on teardown; the primary error is already propagating
}

func syncUnjustified(f *file) {
	//lint:syncerr
	f.Sync() // want "suppression requires a justification"
}
