// Package fixture exercises the syncerr analyzer: implicitly or
// explicitly discarded errors from durability methods are findings, as
// are raw os.* file writes that bypass the internal/diskio storage
// layer; checked and error-joined calls — and pure readers — are not.
package fixture

import "os"

type file struct{}

func (f *file) Sync() error                 { return nil }
func (f *file) Close() error                { return nil }
func (f *file) Flush() error                { return nil }
func (f *file) CommitStep(step int64) error { return nil }
func (f *file) Name() string                { return "" }

func ignoreSync(f *file) {
	f.Sync() // want "error from Sync discarded"
}

func discardClose(f *file) {
	_ = f.Close() // want "error from Close explicitly discarded"
}

func deferClose(f *file) error {
	defer f.Close() // want "deferred Close discards its error"
	return f.Sync()
}

func goClose(f *file) {
	go f.Close() // want "go Close discards its error"
}

// Checking (or returning) the error is the fix: not flagged.
func checkedClose(f *file) error {
	if err := f.CommitStep(1); err != nil {
		return err
	}
	return f.Close()
}

// The deferred-closure idiom checks the close error: not flagged.
func deferChecked(f *file) (err error) {
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return f.Flush()
}

// No error result, no finding.
func nameOnly(f *file) string {
	return f.Name()
}

func closeJustified(f *file) {
	_ = f.Close() //lint:syncerr best-effort release on teardown; the primary error is already propagating
}

func syncUnjustified(f *file) {
	//lint:syncerr
	f.Sync() // want "suppression requires a justification"
}

// Raw os writers bypass the fault-injectable storage layer: flagged.
func rawCreate(path string) error {
	f, err := os.Create(path) // want "os.Create bypasses the internal/diskio storage layer"
	if err != nil {
		return err
	}
	return f.Close()
}

func rawWriteFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want "os.WriteFile bypasses the internal/diskio storage layer"
}

func rawOpenFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644) // want "os.OpenFile bypasses the internal/diskio storage layer"
	if err != nil {
		return err
	}
	return f.Close()
}

// A justified raw writer (scratch data outside the durability
// envelope) is suppressed, not reported.
func scratchTemp(dir string) error {
	f, err := os.CreateTemp(dir, "scratch-*") //lint:syncerr scratch file outside the durability envelope; failure is not a storage fault
	if err != nil {
		return err
	}
	return f.Close()
}

// Pure readers do not mutate the disk: not flagged.
func reader(path string) ([]byte, error) {
	return os.ReadFile(path)
}
