// Package fixture exercises the determinism analyzer: wall-clock reads,
// the global math/rand source, and unordered map iteration are findings;
// seeded generators and sorted iteration are not.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read time.Since"
}

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn uses the global source"
}

// An explicitly seeded generator replays: not flagged. This is also the
// regression case for the package-function matcher — (*rand.Rand).Intn
// must not be confused with the package-level rand.Intn.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func rangeMap(m map[string]int) int {
	sum := 0
	for _, v := range m { // want "map iteration order is unordered"
		sum += v
	}
	return sum
}

// Sorting the keys restores a deterministic order; the collection range
// itself is justified (order does not matter while collecting).
func rangeSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//lint:nondeterministic key collection order is irrelevant; keys are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func stamp() int64 {
	//lint:determinism
	return time.Now().UnixNano() // want "suppression requires a justification"
}
