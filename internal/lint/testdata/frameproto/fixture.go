// Package fixture exercises the frameproto analyzer: switches over the
// frame-type byte must be exhaustive over the fXxx constant set or carry
// a default that errors.
package fixture

import "errors"

const (
	fHello = 1
	fBatch = 2
	fEOS   = 3
	fDrain = 4
)

// notAFrame must not count toward the frame set (no f+Upper pattern).
const notAFrame = 99

var errUnknown = errors.New("unknown frame")

// exhaustive covers the whole set with no default: clean.
func exhaustive(kind byte) int {
	switch kind {
	case fHello:
		return 1
	case fBatch:
		return 2
	case fEOS:
		return 3
	case fDrain:
		return 4
	}
	return 0
}

// erroringDefault takes a deliberate subset and rejects the rest: clean.
func erroringDefault(kind byte) error {
	switch kind {
	case fHello, fBatch:
		return nil
	default:
		return errUnknown
	}
}

// reportingDefault rejects through a failure reporter: clean.
func reportingDefault(kind byte, report func(error)) {
	switch kind {
	case fEOS:
		return
	default:
		report(errUnknown)
	}
}

// missingCase silently drops fDrain.
func missingCase(kind byte) int {
	switch kind { // want "missing fDrain"
	case fHello:
		return 1
	case fBatch:
		return 2
	case fEOS:
		return 3
	}
	return 0
}

// silentDefault swallows unknown frames.
func silentDefault(kind byte) int {
	n := 0
	switch kind {
	case fHello:
		n = 1
	default: // want "default clause of a frame-kind switch must error"
		n = -1
	}
	return n
}

// emptyDefault is just as silent.
func emptyDefault(kind byte) {
	switch kind {
	case fBatch:
	default: // want "default clause of a frame-kind switch must error"
	}
}

// notFrames is an ordinary switch: ignored.
func notFrames(x int) int {
	switch x {
	case notAFrame:
		return 1
	case 0:
		return 2
	}
	return 3
}

// justifiedSubset carries the reviewed reason: suppressed, not reported.
func justifiedSubset(kind byte) int {
	//lint:frameproto the data plane only ever carries these three kinds; anything else is rejected upstream at readFrame
	switch kind { // the directive on the line above covers this switch
	case fHello:
		return 1
	case fBatch:
		return 2
	case fEOS:
		return 3
	}
	return 0
}

// bareSuppression keeps the finding and demands the missing reason.
func bareSuppression(kind byte) {
	//lint:frameproto
	switch kind { // want "suppression requires a justification"
	case fHello:
	case fBatch:
	case fEOS:
	}
}
