// Package fixture exercises the ctxblock analyzer: ambient root contexts
// and exported uncancellable blocking operations are findings;
// context-accepting and non-blocking variants are not.
package fixture

import (
	"context"
	"sync"
)

func mintRoot() context.Context {
	return context.Background() // want "library code must not call context.Background"
}

type Pool struct {
	ch   chan int
	done chan struct{}
	wg   sync.WaitGroup
}

func (p *Pool) Take() int {
	return <-p.ch // want "blocks on a channel receive"
}

func (p *Pool) Give(v int) {
	p.ch <- v // want "blocks on a channel send"
}

func (p *Pool) TakeOrDone() (int, bool) {
	select { // want "blocks on a select without accepting a context.Context"
	case v := <-p.ch:
		return v, true
	case <-p.done:
		return 0, false
	}
}

func (p *Pool) Drain() {
	p.wg.Wait() // want "blocks on sync.WaitGroup.Wait"
}

// A context parameter makes the wait cancellable: not flagged.
func (p *Pool) TakeContext(ctx context.Context) (int, bool) {
	select {
	case v := <-p.ch:
		return v, true
	case <-ctx.Done():
		return 0, false
	}
}

// A select with a default never blocks: not flagged.
func (p *Pool) TryTake() (int, bool) {
	select {
	case v := <-p.ch:
		return v, true
	default:
		return 0, false
	}
}

// Unexported helpers may block; their exported callers thread contexts.
func (p *Pool) take() int {
	return <-p.ch
}

func (p *Pool) TakeBounded() int {
	//lint:ctxblock release-bounded: Close closes ch, which unblocks the receive
	return <-p.ch
}

func MintUnjustified() context.Context {
	//lint:ctxblock
	return context.Background() // want "suppression requires a justification"
}
