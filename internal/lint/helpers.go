package lint

import (
	"go/ast"
	"go/types"
)

// All returns the full gpsa-lint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		ActorShare,
		ColAlias,
		Determinism,
		CtxBlock,
		SyncErr,
		Noalloc,
		PoolSafe,
		FrameProto,
	}
}

// ByName resolves analyzer names to analyzers; unknown names return nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// pkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now), resolving through the type info.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if _, isMethodOrField := info.Selections[sel]; isMethodOrField {
		// A method from pkgPath (e.g. (*rand.Rand).Intn) is not the
		// package-level function of the same name.
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// pkgOf returns the import path of the package providing the selector's
// object, or "" when the selector is not a package-level reference.
func pkgOf(info *types.Info, sel *ast.SelectorExpr) string {
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if _, ok := info.Selections[sel]; ok {
		return "" // method or field selection, not a package reference
	}
	return obj.Pkg().Path()
}

// methodOn reports whether call invokes a method with the given name whose
// receiver's named type is typeName (pointer or value receiver alike).
// The receiver type's package is not checked, so fixtures can model the
// real types with local doubles.
func methodOn(info *types.Info, call *ast.CallExpr, typeName, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return namedTypeName(s.Recv()) == typeName
}

// namedTypeName unwraps pointers and returns the name of a named type, or
// "" for unnamed types.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// lastResultIsError reports whether call's (possibly tuple) result ends in
// error; calls with no results return false.
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeIdent returns the syntactic name of the called function or method
// (for messages), or "" when unnameable.
func calleeIdent(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// hasDefaultClause reports whether a select statement carries a default
// clause (making its communication attempts non-blocking).
func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// funcHasCtxParam reports whether the declaration takes a context.Context
// parameter.
func funcHasCtxParam(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, f := range fn.Type.Params.List {
		tv, ok := info.Types[f.Type]
		if !ok {
			continue
		}
		if n, ok := tv.Type.(*types.Named); ok {
			o := n.Obj()
			if o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}
