package lint

import (
	"go/ast"
	"go/types"
)

// ColAlias guards the storage layer's aliasing invariants, the foundation
// of the paper's lightweight fault tolerance: the dispatch (read) column
// of the vertex file is payload-immutable while a superstep runs, and the
// raw mmap-backed byte/word views handed out by internal/mmap must not
// leak into long-lived state where a write after a crash-recovery remap
// would corrupt the snapshot the recovery story depends on.
//
// Three rules, checked per function:
//
//  1. Retention: storing a slice obtained from mmap.Map.Bytes/Uint32s/
//     Uint64s (directly or via a local) into a struct field. A field
//     outlives the superstep (and possibly the mapping); every such
//     retention needs a //lint:colalias justification stating why the
//     lifetime is sound.
//  2. Mutation: an index-assignment through a local slice derived from
//     one of those accessors. Raw views exist for decoding; writes must
//     go through the owning type's API so sync ordering is preserved.
//  3. Column writes (package vertexfile only): a non-atomic index
//     assignment to the slots field. Slots are shared between dispatcher
//     and computing actors and must only be accessed through the atomic
//     Load/Store accessors.
var ColAlias = &Analyzer{
	Name: "colalias",
	Doc: "writes through or retention of mmap-backed slices, and " +
		"non-atomic vertex-column slot writes",
	Packages: []string{"internal/vertexfile", "internal/graph", "internal/core"},
	Run:      runColAlias,
}

// mmapViewMethods are the accessors of internal/mmap's Map that return
// slices aliasing the mapping.
var mmapViewMethods = map[string]bool{"Bytes": true, "Uint32s": true, "Uint64s": true}

func runColAlias(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			pass.colAliasFunc(fn)
		}
	}
}

// isMmapViewCall reports whether e calls one of mmap.Map's view accessors.
func (p *Pass) isMmapViewCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	name := calleeIdent(call)
	return mmapViewMethods[name] && methodOn(p.Pkg.Info, call, "Map", name)
}

func (p *Pass) colAliasFunc(fn *ast.FuncDecl) {
	info := p.Pkg.Info

	// Pass 1: local taint — variables assigned (or re-sliced) from a view
	// accessor within this function.
	tainted := make(map[string]bool)
	derived := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if p.isMmapViewCall(e) {
			return true
		}
		if s, ok := e.(*ast.SliceExpr); ok {
			e = ast.Unparen(s.X)
		}
		id, ok := e.(*ast.Ident)
		return ok && tainted[id.Name]
	}
	for changed := true; changed; { // fixpoint over chained derivations
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" || tainted[id.Name] {
					continue
				}
				if derived(rhs) {
					tainted[id.Name] = true
					changed = true
				}
			}
			return true
		})
	}
	// Multi-value forms like `slots, err := m.Uint64s(...)`.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 2 || !p.isMmapViewCall(as.Rhs[0]) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			tainted[id.Name] = true
		}
		return true
	})

	// Pass 2: report retention and mutation.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				} else {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					// Retention: field = mmap view (rule 1).
					if derived(rhs) || (i == 0 && len(n.Rhs) == 1 && p.isMmapViewCall(n.Rhs[0])) {
						p.Reportf(lhs.Pos(), "mmap-backed slice stored in a field outlives the mapping/superstep; justify the lifetime with //lint:colalias")
					}
				case *ast.IndexExpr:
					// Mutation through a derived view (rule 2)...
					if base, ok := ast.Unparen(l.X).(*ast.Ident); ok && tainted[base.Name] {
						p.Reportf(lhs.Pos(), "write through mmap-backed slice %s bypasses the owning type's sync-ordered API", base.Name)
					}
					// ...or a non-atomic slot write (rule 3).
					if p.Pkg.Types.Name() == "vertexfile" {
						if sel, ok := ast.Unparen(l.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "slots" {
							p.Reportf(lhs.Pos(), "non-atomic write to the vertex column slots; use the atomic Store accessor")
						}
					}
				}
			}
		case *ast.CompositeLit:
			// Retention via composite literal fields (rule 1).
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			if _, isStruct := tv.Type.Underlying().(*types.Struct); !isStruct {
				return true
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if derived(kv.Value) {
					p.Reportf(kv.Pos(), "mmap-backed slice stored in a field outlives the mapping/superstep; justify the lifetime with //lint:colalias")
				}
			}
		}
		return true
	})
}
