package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FrameProto keeps frame-kind dispatch exhaustive. The cluster wire
// protocol (internal/cluster/protocol.go) identifies every frame by a
// one-byte kind drawn from the package-level fXxx constant block —
// fHello through the v3 elastic-membership frames (fJoin, fMigrate*,
// fRouting*, fDrain*). When a new frame is added, every switch over a
// frame kind must either handle it or reject it loudly: a switch with a
// silent default (or no default and a missing case) drops the frame on
// the floor, which for membership traffic means a node that never
// answers a migration and a coordinator that hangs at the barrier.
//
// The analyzer finds every switch statement in internal/cluster whose
// cases compare against frame constants (names matching ^f[A-Z]) and
// requires one of:
//
//   - an explicit default whose body errors — returns, panics, or calls
//     a failure reporter (a name containing "fail", "report", or
//     "fatal");
//   - no default, but cases covering the complete frame set.
//
// Receive loops that only expect a subset (the peer data plane takes
// fPeerHello/fBatch/fEOS only) satisfy the rule with their erroring
// default; a deliberately silent subset switch carries a
// //lint:frameproto <reason> justification.
var FrameProto = &Analyzer{
	Name: "frameproto",
	Doc: "switches over the frame-type byte must be exhaustive over the " +
		"v3 frame set or carry a default that errors",
	Packages: []string{"internal/cluster"},
	Run:      runFrameProto,
}

// framePrefixOK reports whether name is a frame-kind constant name:
// lower-case f followed by an exported-style camel-case tail.
func framePrefixOK(name string) bool {
	return len(name) > 1 && name[0] == 'f' && name[1] >= 'A' && name[1] <= 'Z'
}

// frameConst is one fXxx constant of the package.
type frameConst struct {
	name string
	val  int64
	obj  types.Object
}

// frameSet collects the package's frame-kind constants.
func frameSet(pkg *Package) []frameConst {
	var out []frameConst
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		if !framePrefixOK(name) {
			continue
		}
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(cn.Val()))
		if !ok {
			continue
		}
		out = append(out, frameConst{name: name, val: v, obj: cn})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].val < out[j].val })
	return out
}

func runFrameProto(pass *Pass) {
	frames := frameSet(pass.Pkg)
	if len(frames) == 0 {
		return
	}
	frameObjs := make(map[types.Object]bool, len(frames))
	for _, fc := range frames {
		frameObjs[fc.obj] = true
	}
	info := pass.Pkg.Info

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			covered := make(map[types.Object]bool)
			var defaultClause *ast.CaseClause
			for _, cl := range sw.Body.List {
				cc := cl.(*ast.CaseClause)
				if cc.List == nil {
					defaultClause = cc
					continue
				}
				for _, e := range cc.List {
					if id, ok := ast.Unparen(e).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil && frameObjs[obj] {
							covered[obj] = true
						}
					}
				}
			}
			if len(covered) == 0 {
				return true // not a frame-kind switch
			}
			if defaultClause != nil {
				if !clauseErrors(defaultClause) {
					pass.Reportf(defaultClause.Pos(),
						"default clause of a frame-kind switch must error (return, panic, or report the failure): a silent default drops unknown frames; justify with //lint:frameproto")
				}
				return true
			}
			var missing []string
			for _, fc := range frames {
				if !covered[fc.obj] {
					missing = append(missing, fc.name)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(),
					"frame-kind switch without a default is missing %s: add the cases or an erroring default; justify a deliberate subset with //lint:frameproto",
					strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// clauseErrors reports whether the clause body unmistakably rejects the
// frame: it returns, panics, or calls a failure reporter.
func clauseErrors(cc *ast.CaseClause) bool {
	if len(cc.Body) == 0 {
		return false
	}
	errs := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				errs = true
			case *ast.BranchStmt:
				if n.Tok == token.GOTO {
					errs = true // error-handling label
				}
			case *ast.CallExpr:
				name := strings.ToLower(calleeIdent(n))
				if name == "panic" || strings.Contains(name, "fail") ||
					strings.Contains(name, "report") || strings.Contains(name, "fatal") {
					errs = true
				}
			}
			return !errs
		})
		if errs {
			return true
		}
	}
	return false
}
