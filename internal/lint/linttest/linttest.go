// Package linttest runs a lint analyzer over a fixture directory and
// checks its findings against "// want" expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest (stdlib-only).
//
// Expectations are comments on the offending line:
//
//	ch <- 1 // want "bare channel send"
//
// Each quoted string is a regular expression that must match the message
// of a finding reported on that line; findings without a matching
// expectation, and expectations without a matching finding, fail the
// test. Suppressed findings (justified //lint: annotations) must NOT
// match any want — they are returned in the result so tests can assert
// the suppression mechanism engaged.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// Result summarizes one fixture run.
type Result struct {
	Reported   int // unsuppressed findings
	Suppressed int // findings silenced by justified //lint: annotations
}

// The fixture type-checker shares one file set and one stdlib source
// importer across all tests in the process: the importer memoizes the
// (expensive) from-source check of each standard library package.
var (
	fixtureMu   sync.Mutex
	fixtureFset = token.NewFileSet()
	fixtureStd  = importer.ForCompiler(fixtureFset, "source", nil)
)

// Run analyzes the fixture directory with a and verifies expectations.
// The analyzer's package filter is ignored: fixtures always run.
func Run(t *testing.T, a *lint.Analyzer, dir string) Result {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fixtureFset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}
	path := "fixture/" + a.Name
	tpkg, info, err := lint.CheckFiles(fixtureFset, path, files, fixtureStd)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkg := &lint.Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}

	pass := lint.NewPass(a, fixtureFset, pkg)
	a.Run(pass)

	wants := collectWants(t, fixtureFset, files)
	var res Result
	matched := make(map[*want]bool)
	for _, d := range pass.Diagnostics() {
		if d.Suppressed {
			res.Suppressed++
			continue
		}
		res.Reported++
		ok := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[w] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected finding: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
	return res
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// splitQuoted extracts the "..."-quoted segments of a want comment tail.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := i + 1
		for j < len(s) {
			if s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			return out
		}
		out = append(out, s[i:j+1])
		s = s[j+1:]
	}
}
