package vertexfile

import (
	"path/filepath"
	"testing"
)

func benchFile(b *testing.B, n int64) *File {
	b.Helper()
	f, err := Create(filepath.Join(b.TempDir(), "v.gpvf"), n, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return f
}

// BenchmarkLoadStore measures the per-slot cost of the atomic mmap
// accesses on the computing workers' hot path.
func BenchmarkLoadStore(b *testing.B) {
	f := benchFile(b, 1<<16)
	mask := int64(1<<16 - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := int64(i) & mask
		slot := f.Load(0, v)
		f.Store(1, v, slot|StaleBit)
	}
}

// BenchmarkReconcile measures the barrier-time column reconciliation
// sweep (the O(|V|) correctness pass DESIGN.md documents).
func BenchmarkReconcile(b *testing.B) {
	f := benchFile(b, 1<<20)
	b.SetBytes(16 << 20) // two columns of 8-byte slots
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Reconcile(int64(i))
	}
}

// BenchmarkCommitDurable measures a committed superstep including msync.
func BenchmarkCommitDurable(b *testing.B) {
	f := benchFile(b, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step := int64(i)
		if err := f.Begin(step, true); err != nil {
			b.Fatal(err)
		}
		if err := f.Commit(step, true, true); err != nil {
			b.Fatal(err)
		}
	}
}
