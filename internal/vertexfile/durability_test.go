package vertexfile

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
)

// TestOpenDetectsWriteOrderViolation composes the file a crash would
// leave behind if the durability ordering were violated — the sealed
// clean header of superstep s+1 over the slot bytes as they were before
// superstep s+1's column sync. Open must reject it via the column
// digest rather than resume from values the header never vouched for.
func TestOpenDetectsWriteOrderViolation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.gpvf")
	f, err := Create(path, 3, func(v int64) (uint64, bool) { return uint64(v), true })
	if err != nil {
		t.Fatal(err)
	}
	// Superstep 0: vertex 0 becomes 50.
	if err := f.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	f.Store(UpdateCol(0), 0, Pack(50, false))
	if err := f.Commit(0, true, true); err != nil {
		t.Fatal(err)
	}
	// Superstep 1: vertex 1 becomes 70. Capture the file's bytes after
	// the updates land but BEFORE the commit's reconcile + column sync.
	if err := f.Begin(1, true); err != nil {
		t.Fatal(err)
	}
	f.Store(UpdateCol(1), 1, Pack(70, false))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(1, true, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A correctly ordered file reopens fine.
	good, err := Open(path)
	if err != nil {
		t.Fatalf("Open of in-order file: %v", err)
	}
	good.Close()

	// Header from after the commit, slots from before it: the shuffle a
	// header-before-columns write order could persist.
	slotsOff := headerBytes + 8*bitmapWords(3)
	shuffled := append([]byte(nil), after[:slotsOff]...)
	shuffled = append(shuffled, before[slotsOff:]...)
	bad := filepath.Join(dir, "shuffled.gpvf")
	if err := os.WriteFile(bad, shuffled, 0o644); err != nil {
		t.Fatal(err)
	}
	mismatches := metrics.Counter(metrics.CtrDigestMismatch)
	if _, err := Open(bad); err == nil {
		t.Fatal("Open accepted a file whose header was sealed before its column sync")
	}
	if got := metrics.Counter(metrics.CtrDigestMismatch); got != mismatches+1 {
		t.Fatalf("digest mismatch counter %d, want %d", got, mismatches+1)
	}
}

// TestColumnSyncFaultLeavesHeaderRunning injects a column-sync failure
// into a commit: the commit must fail WITHOUT sealing the header (state
// still running, epoch unchanged), so the superstep stays rollback-able
// — the ordering rule that makes a crash between column write and
// header seal recoverable.
func TestColumnSyncFaultLeavesHeaderRunning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.gpvf")
	f, err := Create(path, 4, func(v int64) (uint64, bool) { return uint64(10 + v), true })
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fault.Activate(fault.NewPlan(0, fault.Injection{Site: fault.SiteColumnSync}))
	defer fault.Deactivate()

	if err := f.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	f.Store(UpdateCol(0), 2, Pack(99, false))
	err = f.Commit(0, true, true)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Commit error = %v, want injected column-sync failure", err)
	}
	if !f.InProgress() || f.Epoch() != 0 {
		t.Fatalf("after failed column sync: inProgress=%v epoch=%d, want running at 0", f.InProgress(), f.Epoch())
	}
	fault.Deactivate()

	// The superstep rolls back exactly and can re-run to completion.
	step, err := f.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if step != 0 || f.LastRecovery() != "exact" {
		t.Fatalf("Recover = (%d, %q), want (0, exact)", step, f.LastRecovery())
	}
	if err := f.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	f.Store(UpdateCol(0), 2, Pack(99, false))
	if err := f.Commit(0, true, true); err != nil {
		t.Fatal(err)
	}
	if got := f.Value(2); got != 99 {
		t.Fatalf("Value(2) = %d after retried commit, want 99", got)
	}
}

// TestRecoverExactKeepsInactiveStale: with the persisted bitmap intact,
// recovery restores precisely the Begin-time active set.
func TestRecoverExactKeepsInactiveStale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.gpvf")
	f, err := Create(path, 4, func(v int64) (uint64, bool) { return uint64(v), v == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // crash mid-superstep
		t.Fatal(err)
	}
	exacts := metrics.Counter(metrics.CtrRecoverExact)
	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Recover(); err != nil {
		t.Fatal(err)
	}
	if g.LastRecovery() != "exact" {
		t.Fatalf("LastRecovery = %q, want exact", g.LastRecovery())
	}
	if got := metrics.Counter(metrics.CtrRecoverExact); got != exacts+1 {
		t.Fatalf("exact recovery counter %d, want %d", got, exacts+1)
	}
	for v := int64(0); v < 4; v++ {
		if got, want := Stale(g.Load(DispatchCol(0), v)), v != 0; got != want {
			t.Fatalf("vertex %d stale = %v after exact recovery, want %v", v, got, want)
		}
	}
}

// TestRecoverConservativeOnDamagedBitmap: when the bitmap bytes do not
// match the sealed active-set checksum (torn bitmap write), recovery
// falls back to re-activating every vertex.
func TestRecoverConservativeOnDamagedBitmap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.gpvf")
	f, err := Create(path, 4, func(v int64) (uint64, bool) { return uint64(v), v == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[headerBytes] ^= 0x02 // flip a bit inside the bitmap region
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	conservatives := metrics.Counter(metrics.CtrRecoverConservative)
	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Recover(); err != nil {
		t.Fatal(err)
	}
	if g.LastRecovery() != "conservative" {
		t.Fatalf("LastRecovery = %q, want conservative", g.LastRecovery())
	}
	if got := metrics.Counter(metrics.CtrRecoverConservative); got != conservatives+1 {
		t.Fatalf("conservative recovery counter %d, want %d", got, conservatives+1)
	}
	for v := int64(0); v < 4; v++ {
		if Stale(g.Load(DispatchCol(0), v)) {
			t.Fatalf("vertex %d not re-activated by conservative recovery", v)
		}
	}
}
