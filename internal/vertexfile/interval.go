// Interval migration primitives: extracting a contiguous vertex range
// from a sealed value file and adopting it into another, the byte-level
// mechanism under the cluster's elastic membership (live migration, node
// join/drain/replace). Both directions are barrier-only: a file that
// records an in-progress superstep refuses to extract or adopt, because
// only at a clean barrier does the dispatch column hold the newest
// payload — and the authoritative active flag — of every vertex.
package vertexfile

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Interval blob layout (little endian):
//
//	magic   u32  "GPVI"
//	version u32  1
//	epoch   u64  the epoch both donor and recipient must sit at
//	first   u64  first vertex id of the range
//	count   u64  number of vertices
//	digest  u64  FNV-1a over epoch, first, count, then every slot
//	slots   count x u64, the donor's dispatch-column slots verbatim
//	             (payload and stale flag together)
//
// The digest makes a truncated, padded, or bit-flipped blob detectable
// before a single slot is written, so a torn migration frame can never
// half-apply: AdoptInterval either installs the whole range or nothing.
const (
	intervalMagic       = 0x49565047 // "GPVI"
	intervalVersion     = 1
	intervalHeaderBytes = 40

	// maxIntervalVertices bounds the count a blob may claim, keeping the
	// length arithmetic far from overflow on untrusted input.
	maxIntervalVertices = int64(1) << 40
)

// intervalDigest chains the blob's identifying words and slots with the
// same FNV-1a primitive the file header uses.
func intervalDigest(epoch, first, count int64, slots []byte) uint64 {
	h := fnvWord(uint64(fnvOffset64), uint64(epoch))
	h = fnvWord(h, uint64(first))
	h = fnvWord(h, uint64(count))
	for off := 0; off+8 <= len(slots); off += 8 {
		h = fnvWord(h, binary.LittleEndian.Uint64(slots[off:]))
	}
	return h
}

// ExtractInterval serializes vertices [first, end) of the current
// dispatch column into a self-validating blob for AdoptInterval. The
// file must be at a barrier (no in-progress superstep): there the
// dispatch column is the complete, newest state of every vertex, and its
// stale flag is exactly the active bit the recipient needs — so one slot
// per vertex is the whole migration payload. The read is non-destructive;
// the donor keeps serving the range until the routing table says
// otherwise.
func (f *File) ExtractInterval(first, end int64) ([]byte, error) {
	if f.InProgress() {
		return nil, fmt.Errorf("vertexfile: extract [%d,%d): superstep %d in progress; migration is barrier-only", first, end, f.Epoch())
	}
	if first < 0 || end > f.numVertices || first >= end {
		return nil, fmt.Errorf("vertexfile: extract [%d,%d): out of range (have %d vertices)", first, end, f.numVertices)
	}
	epoch := f.Epoch()
	count := end - first
	col := DispatchCol(epoch)
	b := make([]byte, intervalHeaderBytes+8*count)
	binary.LittleEndian.PutUint32(b[0:], intervalMagic)
	binary.LittleEndian.PutUint32(b[4:], intervalVersion)
	binary.LittleEndian.PutUint64(b[8:], uint64(epoch))
	binary.LittleEndian.PutUint64(b[16:], uint64(first))
	binary.LittleEndian.PutUint64(b[24:], uint64(count))
	for v := first; v < end; v++ {
		binary.LittleEndian.PutUint64(b[intervalHeaderBytes+8*(v-first):], f.Load(col, v))
	}
	binary.LittleEndian.PutUint64(b[32:], intervalDigest(epoch, first, count, b[intervalHeaderBytes:]))
	return b, nil
}

// DecodeInterval validates an interval blob — magic, version, exact
// length, digest — and returns its epoch, range start, and slots. The
// returned slice is fresh (never aliases blob).
func DecodeInterval(blob []byte) (epoch, first int64, slots []uint64, err error) {
	if len(blob) < intervalHeaderBytes {
		return 0, 0, nil, fmt.Errorf("vertexfile: interval blob of %d bytes, want at least %d", len(blob), intervalHeaderBytes)
	}
	if binary.LittleEndian.Uint32(blob[0:]) != intervalMagic {
		return 0, 0, nil, fmt.Errorf("vertexfile: interval blob: bad magic")
	}
	if v := binary.LittleEndian.Uint32(blob[4:]); v != intervalVersion {
		return 0, 0, nil, fmt.Errorf("vertexfile: interval blob: unsupported version %d", v)
	}
	epoch = int64(binary.LittleEndian.Uint64(blob[8:]))
	first = int64(binary.LittleEndian.Uint64(blob[16:]))
	count := int64(binary.LittleEndian.Uint64(blob[24:]))
	if epoch < 0 || epoch > maxEpoch {
		return 0, 0, nil, fmt.Errorf("vertexfile: interval blob: absurd epoch %d", epoch)
	}
	if first < 0 || count <= 0 || count > maxIntervalVertices {
		return 0, 0, nil, fmt.Errorf("vertexfile: interval blob: absurd range [%d, +%d)", first, count)
	}
	if int64(len(blob)) != intervalHeaderBytes+8*count {
		return 0, 0, nil, fmt.Errorf("vertexfile: interval blob of %d bytes, want %d for %d vertices", len(blob), intervalHeaderBytes+8*count, count)
	}
	want := binary.LittleEndian.Uint64(blob[32:])
	if got := intervalDigest(epoch, first, count, blob[intervalHeaderBytes:]); got != want {
		return 0, 0, nil, fmt.Errorf("vertexfile: interval blob: digest mismatch (computed %#x, blob carries %#x)", got, want)
	}
	slots = make([]uint64, count)
	for i := range slots {
		slots[i] = binary.LittleEndian.Uint64(blob[intervalHeaderBytes+8*i:])
	}
	return epoch, first, slots, nil
}

// AdoptInterval installs an extracted range into this file. The file
// must be at a barrier and at the same epoch the blob was extracted at —
// adopting across epochs would splice two different supersteps' states
// together. Each donor slot lands verbatim in the dispatch column
// (payload and active flag), and the update column receives the stale
// copy the first-message rule expects, exactly the state Reconcile
// leaves behind — so the adopted range is bit-indistinguishable from one
// the recipient computed itself. Durability keeps the file's
// data-before-header ordering: slots sync first, then the re-sealed
// header (digest included) syncs after.
func (f *File) AdoptInterval(blob []byte, durable bool) error {
	epoch, first, slots, err := DecodeInterval(blob)
	if err != nil {
		return err
	}
	if f.InProgress() {
		return fmt.Errorf("vertexfile: adopt [%d,+%d): superstep %d in progress; migration is barrier-only", first, len(slots), f.Epoch())
	}
	if epoch != f.Epoch() {
		return fmt.Errorf("vertexfile: adopt [%d,+%d): blob extracted at epoch %d, file is at %d", first, len(slots), epoch, f.Epoch())
	}
	end := first + int64(len(slots))
	if end > f.numVertices || end < first {
		return fmt.Errorf("vertexfile: adopt [%d,%d): out of range (have %d vertices)", first, end, f.numVertices)
	}
	dcol, ucol := DispatchCol(epoch), UpdateCol(epoch)
	for i, slot := range slots {
		v := first + int64(i)
		f.Store(dcol, v, slot)
		f.Store(ucol, v, Payload(slot)|StaleBit)
	}
	if durable {
		if err := f.syncSlots(); err != nil {
			return fmt.Errorf("vertexfile: adopt [%d,%d): %w", first, end, err)
		}
	}
	if atomic.LoadUint64(&f.header[hdrColDigest]) != 0 {
		atomic.StoreUint64(&f.header[hdrColDigest], f.colDigest(dcol))
	}
	f.sealHeader()
	if durable {
		if err := f.syncHeader(); err != nil {
			return fmt.Errorf("vertexfile: adopt [%d,%d): %w", first, end, err)
		}
	}
	return nil
}

// FastForward advances a freshly created file (epoch 0, clean) straight
// to epoch, producing the state a node joining a running job needs:
// every slot of both columns carries its initial payload marked stale —
// no vertex active, no update pending — so the first AdoptInterval calls
// paint in the authoritative ranges and everything else stays inert. The
// update column's stale flags matter as much as the dispatch column's:
// they are the first-message detector for the superstep about to run,
// and FastForward must stale both columns because an odd target epoch
// swaps their roles relative to Create's layout.
func (f *File) FastForward(epoch int64, durable bool) error {
	if f.InProgress() {
		return fmt.Errorf("vertexfile: fast-forward to epoch %d: superstep in progress", epoch)
	}
	if f.Epoch() != 0 {
		return fmt.Errorf("vertexfile: fast-forward to epoch %d: file is already at epoch %d", epoch, f.Epoch())
	}
	if epoch < 0 || epoch > maxEpoch {
		return fmt.Errorf("vertexfile: fast-forward to absurd epoch %d", epoch)
	}
	if epoch == 0 {
		return nil
	}
	for v := int64(0); v < f.numVertices; v++ {
		f.Store(0, v, Payload(f.Load(0, v))|StaleBit)
		f.Store(1, v, Payload(f.Load(1, v))|StaleBit)
	}
	if durable {
		if err := f.syncSlots(); err != nil {
			return fmt.Errorf("vertexfile: fast-forward to epoch %d: %w", epoch, err)
		}
	}
	f.setEpoch(epoch)
	if atomic.LoadUint64(&f.header[hdrColDigest]) != 0 {
		atomic.StoreUint64(&f.header[hdrColDigest], f.colDigest(DispatchCol(epoch)))
	}
	f.sealHeader()
	if durable {
		if err := f.syncHeader(); err != nil {
			return fmt.Errorf("vertexfile: fast-forward to epoch %d: %w", epoch, err)
		}
	}
	return nil
}
