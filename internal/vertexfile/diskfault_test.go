package vertexfile

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/diskio"
	"repro/internal/fault"
)

// armOnce arms a plan in which site fires exactly once, and disarms it
// at test end.
func armOnce(t *testing.T, site string) {
	t.Helper()
	fault.Activate(fault.NewPlan(1, fault.Injection{Site: site}))
	t.Cleanup(fault.Deactivate)
}

// sealOneStep runs Begin(0)+Commit(0) durably, leaving f sealed at
// epoch 1.
func sealOneStep(t *testing.T, f *File) {
	t.Helper()
	if err := f.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(0, true, true); err != nil {
		t.Fatal(err)
	}
}

// TestRewindSyncEIOTypedAndRecoverable pins the hostile-disk contract
// for Rewind: an EIO on the header sync surfaces as a typed
// diskio.ErrIOFailure (matching fault.ErrInjected), and the file — on
// disk and in process — remains recoverable to a sealed state rather
// than wedged or silently corrupt.
func TestRewindSyncEIOTypedAndRecoverable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.gpvf")
	f, err := Create(path, 32, func(v int64) (uint64, bool) { return uint64(v), true })
	if err != nil {
		t.Fatal(err)
	}
	sealOneStep(t, f)

	armOnce(t, fault.SiteDiskEIOSync)
	err = f.Rewind(0)
	if err == nil {
		t.Fatal("rewind on failing disk succeeded")
	}
	if !errors.Is(err, diskio.ErrIOFailure) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("rewind error not typed: %v", err)
	}
	fault.Deactivate()

	// The handle is not wedged: the header records a running superstep 0
	// and Recover restores the start-of-step state.
	if ep, err := f.Recover(); err != nil || ep != 0 {
		t.Fatalf("recover after failed rewind: epoch %d, %v", ep, err)
	}
	if f.InProgress() {
		t.Fatal("file still in progress after recover")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// And the on-disk bytes pass a full integrity verification.
	if state, err := VerifyState(path); err != nil || state != "sealed" {
		t.Fatalf("verify after recovery: state %q, %v", state, err)
	}
}

// TestRewindSyncEIOSurvivesReopen is the cross-process half: the
// process dies after the failed Rewind, and a fresh Open of the file
// recovers it to the sealed start-of-step snapshot.
func TestRewindSyncEIOSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.gpvf")
	f, err := Create(path, 32, func(v int64) (uint64, bool) { return uint64(v), true })
	if err != nil {
		t.Fatal(err)
	}
	sealOneStep(t, f)

	armOnce(t, fault.SiteDiskEIOSync)
	if err := f.Rewind(0); !errors.Is(err, diskio.ErrIOFailure) {
		t.Fatalf("rewind error not typed: %v", err)
	}
	fault.Deactivate()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after failed rewind: %v", err)
	}
	defer g.Close()
	if !g.InProgress() {
		t.Fatal("reopened file does not record the interrupted superstep")
	}
	if ep, err := g.Recover(); err != nil || ep != 0 {
		t.Fatalf("recover on reopen: epoch %d, %v", ep, err)
	}
}

// TestAdoptIntervalSyncEIOTyped pins AdoptInterval under a failing
// disk: the slot sync's EIO surfaces typed, and the recipient file
// stays at a consistent barrier — the adoption can simply be retried
// once the disk heals, and the result verifies sealed.
func TestAdoptIntervalSyncEIOTyped(t *testing.T) {
	dir := t.TempDir()
	init := func(v int64) (uint64, bool) { return uint64(100 + v), true }
	donor, err := Create(filepath.Join(dir, "donor.gpvf"), 32, init)
	if err != nil {
		t.Fatal(err)
	}
	defer donor.Close()
	rpath := filepath.Join(dir, "recipient.gpvf")
	recip, err := Create(rpath, 32, func(v int64) (uint64, bool) { return 0, false })
	if err != nil {
		t.Fatal(err)
	}
	blob, err := donor.ExtractInterval(8, 16)
	if err != nil {
		t.Fatal(err)
	}

	armOnce(t, fault.SiteDiskEIOSync)
	err = recip.AdoptInterval(blob, true)
	if err == nil {
		t.Fatal("adopt on failing disk succeeded")
	}
	if !errors.Is(err, diskio.ErrIOFailure) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("adopt error not typed: %v", err)
	}
	fault.Deactivate()

	// Retry after the disk heals: same blob, same barrier, clean adopt.
	if err := recip.AdoptInterval(blob, true); err != nil {
		t.Fatalf("adopt retry: %v", err)
	}
	for v := int64(8); v < 16; v++ {
		if got := Payload(recip.Load(0, v)); got != uint64(100+v) {
			t.Fatalf("vertex %d adopted payload %d, want %d", v, got, 100+v)
		}
	}
	if err := recip.Close(); err != nil {
		t.Fatal(err)
	}
	if state, err := VerifyState(rpath); err != nil || state != "sealed" {
		t.Fatalf("verify recipient: state %q, %v", state, err)
	}
}
