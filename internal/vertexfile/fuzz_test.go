package vertexfile

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// validFileBytes builds a well-formed value file on disk and returns its
// bytes. When running is true the file records an in-progress superstep.
func validFileBytes(tb testing.TB, running bool) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "v.gpvf")
	f, err := Create(path, 8, func(v int64) (uint64, bool) { return uint64(100 + v), v%2 == 0 })
	if err != nil {
		tb.Fatal(err)
	}
	if running {
		if err := f.Begin(0, true); err != nil {
			tb.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

func corrupt(b []byte, off int, val byte) []byte {
	c := append([]byte(nil), b...)
	if off < len(c) {
		c[off] ^= val
	}
	return c
}

// FuzzOpen feeds arbitrary bytes to Open: it must never panic, and any
// file it accepts must satisfy the header invariants — in particular a
// torn header (checksum or state-word damage) must have been rolled back
// to a clean state.
func FuzzOpen(f *testing.F) {
	valid := validFileBytes(f, false)
	running := validFileBytes(f, true)
	f.Add(valid)
	f.Add(running)
	f.Add([]byte{})
	f.Add(valid[:10])               // truncated mid-magic
	f.Add(valid[:63])               // truncated header
	f.Add(valid[:64])               // header only, no slots
	f.Add(valid[:len(valid)-8])     // one slot short
	f.Add(corrupt(valid, 0, 0xFF))  // bad magic
	f.Add(corrupt(valid, 4, 0xFF))  // bad version
	f.Add(corrupt(valid, 8, 0xFF))  // absurd vertex count
	f.Add(corrupt(valid, 16, 0x01)) // corrupted epoch
	f.Add(corrupt(valid, 24, 0x07)) // corrupted state word
	f.Add(corrupt(valid, 32, 0x01)) // corrupted checksum
	f.Add(corrupt(running, 35, 0x80))
	// Write-order shuffle seeds: a clean file whose slot bytes disagree
	// with the sealed digest (simulating a header synced before its
	// columns), and a running file with a damaged active-set bitmap
	// (recoverable, but only conservatively). 8 vertices put the bitmap
	// at offset 128 and the first slot at 136.
	f.Add(corrupt(valid, 136, 0x01))
	f.Add(corrupt(running, 128, 0x01))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.gpvf")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		vf, err := Open(path)
		if err != nil {
			return // rejecting bad input is always fine
		}
		defer vf.Close()
		n := vf.NumVertices()
		if n <= 0 || n > maxVertices {
			t.Fatalf("accepted absurd vertex count %d", n)
		}
		if vf.Torn() && vf.InProgress() {
			t.Fatal("torn file still marked in progress after Open")
		}
		if !vf.headerValid() {
			t.Fatal("accepted file has invalid header checksum")
		}
		// Any accepted file with a sealed digest must have a dispatch
		// column that matches it — Open may never trust a header whose
		// column bytes did not reach the file.
		if want := vf.header[hdrColDigest]; want != 0 {
			if got := vf.colDigest(DispatchCol(vf.Epoch())); got != want {
				t.Fatalf("accepted file: column digest %#x, header sealed %#x", got, want)
			}
		}
		for v := int64(0); v < n; v++ {
			_ = vf.Value(v)
		}
	})
}

// TestOpenRollsBackTornChecksum crashes a run mid-commit by hand: the
// header says running and its checksum is damaged, exactly what a torn
// flush leaves behind. Open must detect it, roll back to the dispatch
// column, and preserve every payload.
func TestOpenRollsBackTornChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.gpvf")
	f, err := Create(path, 16, func(v int64) (uint64, bool) { return uint64(1000 + v), true })
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	// Partial superstep: some update-column writes that must be discarded.
	for v := int64(0); v < 8; v++ {
		f.Store(UpdateCol(0), v, Pack(uint64(9999), false))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[32] ^= 0x01 // tear the checksum word
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	vf, err := Open(path)
	if err != nil {
		t.Fatalf("Open torn file: %v", err)
	}
	defer vf.Close()
	if !vf.Torn() {
		t.Fatal("Torn() = false for a damaged header")
	}
	if vf.InProgress() {
		t.Fatal("torn file still in progress after rollback")
	}
	if vf.Epoch() != 0 {
		t.Fatalf("epoch = %d after rollback, want 0", vf.Epoch())
	}
	for v := int64(0); v < 16; v++ {
		if got := Payload(vf.Load(DispatchCol(0), v)); got != uint64(1000+v) {
			t.Fatalf("vertex %d payload = %d after rollback, want %d", v, got, 1000+v)
		}
		if !Stale(vf.Load(UpdateCol(0), v)) {
			t.Fatalf("vertex %d update slot not reset to stale", v)
		}
	}
}

// TestOpenRollsBackBadStateWord damages the state word instead; the
// checksum no longer matches, so Open must take the same rollback path.
func TestOpenRollsBackBadStateWord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.gpvf")
	f, err := Create(path, 4, func(v int64) (uint64, bool) { return uint64(v), true })
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(b[24:], 7) // neither clean nor running
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	vf, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer vf.Close()
	if !vf.Torn() || vf.InProgress() {
		t.Fatalf("Torn=%v InProgress=%v, want true/false", vf.Torn(), vf.InProgress())
	}
}

// TestOpenKeepsIntactRunningHeader: a valid header that records an
// in-progress superstep is NOT torn — it must survive Open untouched so
// the caller can decide when to Recover.
func TestOpenKeepsIntactRunningHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.gpvf")
	f, err := Create(path, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	vf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer vf.Close()
	if vf.Torn() {
		t.Fatal("intact running header reported torn")
	}
	if !vf.InProgress() {
		t.Fatal("running state lost across Open")
	}
}
