package vertexfile

import (
	"bytes"
	"path/filepath"
	"testing"
)

// evolve runs two committed supersteps over f so its columns carry a
// non-trivial mix of payloads and active flags: step 0 updates the even
// vertices, step 1 updates multiples of three.
func evolve(t *testing.T, f *File) {
	t.Helper()
	for step := int64(0); step < 2; step++ {
		if err := f.Begin(step, true); err != nil {
			t.Fatalf("Begin(%d): %v", step, err)
		}
		ucol := UpdateCol(step)
		for v := int64(0); v < f.NumVertices(); v++ {
			if (step == 0 && v%2 == 0) || (step == 1 && v%3 == 0) {
				f.Store(ucol, v, Pack(uint64(100*step+v), false))
			}
		}
		if err := f.Commit(step, true, true); err != nil {
			t.Fatalf("Commit(%d): %v", step, err)
		}
	}
}

func TestExtractAdoptRoundTrip(t *testing.T) {
	const n = 64
	src := create(t, n, func(v int64) (uint64, bool) { return uint64(v), v%2 == 0 })
	defer src.Close()
	evolve(t, src)

	blob, err := src.ExtractInterval(16, 48)
	if err != nil {
		t.Fatalf("ExtractInterval: %v", err)
	}
	epoch, first, slots, err := DecodeInterval(blob)
	if err != nil {
		t.Fatalf("DecodeInterval: %v", err)
	}
	if epoch != 2 || first != 16 || len(slots) != 32 {
		t.Fatalf("decoded (epoch=%d, first=%d, count=%d), want (2, 16, 32)", epoch, first, len(slots))
	}

	dst := create(t, n, func(v int64) (uint64, bool) { return 999, true })
	defer dst.Close()
	if err := dst.FastForward(2, true); err != nil {
		t.Fatalf("FastForward: %v", err)
	}
	if err := dst.AdoptInterval(blob, true); err != nil {
		t.Fatalf("AdoptInterval: %v", err)
	}

	dcol, ucol := DispatchCol(2), UpdateCol(2)
	for v := int64(16); v < 48; v++ {
		want := src.Load(dcol, v)
		if got := dst.Load(dcol, v); got != want {
			t.Fatalf("vertex %d dispatch slot: got %#x, want %#x (flags included)", v, got, want)
		}
		if got, want := dst.Load(ucol, v), Payload(want)|StaleBit; got != want {
			t.Fatalf("vertex %d update slot: got %#x, want stale copy %#x", v, got, want)
		}
	}
	// Vertices outside the adopted range keep their inert fast-forwarded
	// state: initial payload, both columns stale.
	for _, v := range []int64{0, 15, 48, 63} {
		if got := dst.Load(dcol, v); got != 999|StaleBit {
			t.Fatalf("untouched vertex %d: got %#x, want stale initial", v, got)
		}
	}
}

func TestExtractRejectsInProgressAndBadRange(t *testing.T) {
	f := create(t, 8, nil)
	defer f.Close()
	for _, r := range [][2]int64{{-1, 4}, {0, 9}, {4, 4}, {5, 3}} {
		if _, err := f.ExtractInterval(r[0], r[1]); err == nil {
			t.Fatalf("ExtractInterval(%d, %d) on 8 vertices succeeded", r[0], r[1])
		}
	}
	if err := f.Begin(0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ExtractInterval(0, 4); err == nil {
		t.Fatal("ExtractInterval succeeded mid-superstep; migration must be barrier-only")
	}
}

func TestAdoptRejectsEpochMismatchAndInProgress(t *testing.T) {
	src := create(t, 8, nil)
	defer src.Close()
	blob, err := src.ExtractInterval(0, 8)
	if err != nil {
		t.Fatal(err)
	}

	dst := create(t, 8, nil)
	defer dst.Close()
	if err := dst.FastForward(2, false); err != nil {
		t.Fatal(err)
	}
	if err := dst.AdoptInterval(blob, false); err == nil {
		t.Fatal("adopt of epoch-0 blob into epoch-2 file succeeded")
	}

	dst2 := create(t, 8, nil)
	defer dst2.Close()
	if err := dst2.Begin(0, false); err != nil {
		t.Fatal(err)
	}
	if err := dst2.AdoptInterval(blob, false); err == nil {
		t.Fatal("adopt mid-superstep succeeded; migration must be barrier-only")
	}

	small := create(t, 4, nil)
	defer small.Close()
	if err := small.AdoptInterval(blob, false); err == nil {
		t.Fatal("adopt of 8-vertex blob into 4-vertex file succeeded")
	}
}

func TestAdoptRejectsCorruption(t *testing.T) {
	src := create(t, 32, func(v int64) (uint64, bool) { return uint64(v) * 7, v%3 == 0 })
	defer src.Close()
	evolve(t, src)
	blob, err := src.ExtractInterval(4, 28)
	if err != nil {
		t.Fatal(err)
	}

	fresh := func(t *testing.T) *File {
		t.Helper()
		f := create(t, 32, nil)
		if err := f.FastForward(2, false); err != nil {
			t.Fatal(err)
		}
		return f
	}

	// Truncations, including torn mid-slot.
	for _, cut := range []int{0, 10, intervalHeaderBytes, len(blob) - 1, len(blob) - 8, len(blob) - 3} {
		f := fresh(t)
		if err := f.AdoptInterval(blob[:cut], false); err == nil {
			t.Fatalf("adopt of blob truncated to %d bytes succeeded", cut)
		}
		closeQuietlyTest(t, f)
	}
	// A single flipped bit anywhere must be rejected.
	for off := 0; off < len(blob); off++ {
		mut := bytes.Clone(blob)
		mut[off] ^= 0x10
		f := fresh(t)
		if err := f.AdoptInterval(mut, false); err == nil {
			t.Fatalf("adopt of blob with bit flipped at byte %d succeeded", off)
		}
		closeQuietlyTest(t, f)
	}
	// Padding past the declared count.
	f := fresh(t)
	defer f.Close()
	if err := f.AdoptInterval(append(bytes.Clone(blob), 0, 0, 0, 0, 0, 0, 0, 0), false); err == nil {
		t.Fatal("adopt of padded blob succeeded")
	}
}

func closeQuietlyTest(t *testing.T, f *File) {
	t.Helper()
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestAdoptThenReopen(t *testing.T) {
	dir := t.TempDir()
	src, err := Create(filepath.Join(dir, "src.gpvf"), 24, func(v int64) (uint64, bool) { return uint64(v), true })
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	evolve(t, src)
	blob, err := src.ExtractInterval(0, 24)
	if err != nil {
		t.Fatal(err)
	}

	dstPath := filepath.Join(dir, "dst.gpvf")
	dst, err := Create(dstPath, 24, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.FastForward(2, true); err != nil {
		t.Fatal(err)
	}
	if err := dst.AdoptInterval(blob, true); err != nil {
		t.Fatal(err)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen must pass the header checksum and column digest checks: adopt
	// re-sealed both with the data-before-header ordering.
	re, err := Open(dstPath)
	if err != nil {
		t.Fatalf("Open after adopt: %v", err)
	}
	defer re.Close()
	if re.Torn() || re.Epoch() != 2 {
		t.Fatalf("reopened file: torn=%v epoch=%d, want clean epoch 2", re.Torn(), re.Epoch())
	}
	for v := int64(0); v < 24; v++ {
		if got, want := re.Value(v), src.Value(v); got != want {
			t.Fatalf("vertex %d after reopen: got %d, want %d", v, got, want)
		}
	}
}

func TestFastForwardOddEpochReopens(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "join.gpvf")
	f, err := Create(path, 16, func(v int64) (uint64, bool) { return uint64(v), true })
	if err != nil {
		t.Fatal(err)
	}
	// Odd epoch: the dispatch/update roles swap relative to Create's
	// layout, and both columns must read stale or the first-message rule
	// of superstep 3 would misfire.
	if err := f.FastForward(3, true); err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 16; v++ {
		if !Stale(f.Load(0, v)) || !Stale(f.Load(1, v)) {
			t.Fatalf("vertex %d not fully stale after fast-forward", v)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatalf("Open after fast-forward: %v", err)
	}
	defer re.Close()
	if re.Epoch() != 3 || re.InProgress() {
		t.Fatalf("reopened: epoch=%d inProgress=%v, want clean epoch 3", re.Epoch(), re.InProgress())
	}
}

func TestFastForwardRejects(t *testing.T) {
	f := create(t, 8, nil)
	defer f.Close()
	if err := f.FastForward(-1, false); err == nil {
		t.Fatal("fast-forward to negative epoch succeeded")
	}
	if err := f.FastForward(0, false); err != nil {
		t.Fatalf("fast-forward to epoch 0 should be a no-op, got %v", err)
	}
	if err := f.Begin(0, false); err != nil {
		t.Fatal(err)
	}
	if err := f.FastForward(2, false); err == nil {
		t.Fatal("fast-forward of an in-progress file succeeded")
	}
	if err := f.Commit(0, true, false); err != nil {
		t.Fatal(err)
	}
	if err := f.FastForward(2, false); err == nil {
		t.Fatal("fast-forward of a non-zero-epoch file succeeded")
	}
}

// FuzzAdoptInterval feeds arbitrary bytes to the adopt path: it must
// never panic, and a blob it accepts must decode consistently.
func FuzzAdoptInterval(f *testing.F) {
	src, err := NewMemory(16, func(v int64) (uint64, bool) { return uint64(v), v%2 == 0 })
	if err != nil {
		f.Fatal(err)
	}
	valid, err := src.ExtractInterval(2, 14)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:intervalHeaderBytes])
	f.Add([]byte{})
	mut := bytes.Clone(valid)
	mut[33] ^= 0x80 // digest
	f.Add(mut)
	f.Fuzz(func(t *testing.T, blob []byte) {
		dst, err := NewMemory(16, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.AdoptInterval(blob, false); err != nil {
			return
		}
		// Accepted: the blob must decode, target epoch 0, and land within
		// range.
		epoch, first, slots, err := DecodeInterval(blob)
		if err != nil {
			t.Fatalf("adopted blob fails DecodeInterval: %v", err)
		}
		if epoch != 0 {
			t.Fatalf("adopted blob claims epoch %d into an epoch-0 file", epoch)
		}
		if first < 0 || first+int64(len(slots)) > 16 {
			t.Fatalf("adopted blob range [%d,+%d) out of bounds", first, len(slots))
		}
		for i, slot := range slots {
			if got := dst.Load(DispatchCol(0), first+int64(i)); got != slot {
				t.Fatalf("slot %d: file holds %#x, blob carries %#x", i, got, slot)
			}
		}
	})
}

// FuzzExtractDecode round-trips extraction over fuzzed ranges.
func FuzzExtractDecode(f *testing.F) {
	f.Add(int64(0), int64(16))
	f.Add(int64(3), int64(9))
	f.Add(int64(-1), int64(5))
	f.Add(int64(5), int64(100))
	f.Fuzz(func(t *testing.T, first, end int64) {
		src, err := NewMemory(16, func(v int64) (uint64, bool) { return uint64(v) * 3, v%2 == 1 })
		if err != nil {
			t.Fatal(err)
		}
		blob, err := src.ExtractInterval(first, end)
		if err != nil {
			return
		}
		epoch, gotFirst, slots, err := DecodeInterval(blob)
		if err != nil {
			t.Fatalf("extracted blob fails DecodeInterval: %v", err)
		}
		if epoch != 0 || gotFirst != first || int64(len(slots)) != end-first {
			t.Fatalf("round-trip mismatch: (%d, %d, %d), want (0, %d, %d)", epoch, gotFirst, len(slots), first, end-first)
		}
		for i, slot := range slots {
			if want := src.Load(DispatchCol(0), first+int64(i)); slot != want {
				t.Fatalf("slot %d: blob carries %#x, source holds %#x", i, slot, want)
			}
		}
	})
}
