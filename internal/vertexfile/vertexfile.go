// Package vertexfile implements GPSA's memory-mapped vertex value file
// (paper §IV-D/F, Fig. 5).
//
// The file stores two 64-bit value slots per vertex — two "columns" that
// alternate roles every superstep: in superstep s the dispatch column
// (s mod 2) is read by dispatcher actors, and the update column (1 - s
// mod 2) is written by computing actors. The highest bit of each slot is
// the paper's update flag: 1 ("stale") means the vertex was not updated in
// the previous superstep and is skipped by dispatchers; 0 ("fresh") means
// its new value must be dispatched.
//
// Correctness note (a deviation from the paper's literal protocol,
// recorded in DESIGN.md): if a vertex is updated in superstep s but
// receives no message in superstep s+1, its newest value sits in a column
// that becomes the *update* column of superstep s+2 and would be silently
// overwritten on the next first-message, and the paper's first-message
// rule ("fetch value from the message sending column") would then resurrect
// a value that is two supersteps old. This package therefore maintains the
// invariant that *at the start of every superstep the dispatch column
// holds the newest payload of every vertex*, by copying, at the superstep
// barrier, the dispatch-column payload over every update-column slot that
// stayed stale (Reconcile). The pass is sequential, O(|V|), raceless
// (it runs between supersteps), and is also what makes the paper's
// lightweight fault tolerance sound: the dispatch column of the crashed
// superstep is a complete, payload-immutable snapshot of the previous
// superstep's state.
package vertexfile

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/mmap"
)

const (
	// StaleBit is the paper's "highest bit": set = not updated in the
	// last superstep.
	StaleBit uint64 = 1 << 63
	// PayloadMask extracts the 63-bit payload from a slot.
	PayloadMask = StaleBit - 1

	fileMagic   = 0x46565047 // "GPVF"
	fileVersion = 2
	headerBytes = 64

	stateClean   = 0
	stateRunning = 1

	// maxVertices bounds the vertex count a header may claim, keeping
	// size arithmetic (16 bytes per vertex plus the header) far from
	// int64 overflow when Open validates untrusted files.
	maxVertices = int64(1) << 56
)

// Stale reports whether a slot carries the stale flag.
func Stale(slot uint64) bool { return slot&StaleBit != 0 }

// Payload extracts the 63-bit payload of a slot.
func Payload(slot uint64) uint64 { return slot & PayloadMask }

// Pack combines a payload with a staleness flag. The payload must fit in
// 63 bits.
func Pack(payload uint64, stale bool) uint64 {
	p := payload & PayloadMask
	if stale {
		p |= StaleBit
	}
	return p
}

// PackFloat64 encodes a non-negative float64 as a slot payload. Bit 63 of
// a non-negative IEEE 754 double is zero, so the numeric bits pass through
// unchanged; negative values would collide with the flag and are rejected.
func PackFloat64(v float64) (uint64, error) {
	if v < 0 || math.Signbit(v) {
		return 0, fmt.Errorf("vertexfile: negative value %g cannot share a slot with the flag bit", v)
	}
	return math.Float64bits(v), nil
}

// UnpackFloat64 decodes a payload written by PackFloat64.
func UnpackFloat64(p uint64) float64 { return math.Float64frombits(p & PayloadMask) }

// File is an open vertex value file. All slot accesses are atomic 64-bit
// loads and stores, making the dispatcher's flag writes and the computing
// workers' reads race-free without locks.
type File struct {
	path string
	m    *mmap.Map

	numVertices int64
	slots       []uint64 // 2*numVertices, interleaved: slot(v, col) = slots[2v+col]
	header      []uint64 // first headerBytes/8 words of the mapping
	torn        bool     // Open found a torn header and rolled it back
}

// Header word indices (64-bit words of the 64-byte header):
//
//	word 0: magic (u32) | version (u32)
//	word 1: numVertices
//	word 2: epoch — completed supersteps
//	word 3: state — stateClean / stateRunning
//	word 4: FNV-1a checksum of words 0–3
//
// The checksum is re-sealed at every state transition (Create, Begin,
// Commit, Recover, Rollback). A header whose checksum does not match —
// or whose state word is neither clean nor running — was torn by a
// crash mid-flush; Open rolls such files back to the immutable dispatch
// column instead of trusting the state word.
const (
	hdrEpoch = 2
	hdrState = 3
	hdrSum   = 4
)

// headerSum hashes header words 0–3 with FNV-1a. Words are read
// atomically so sealing can race benignly with concurrent slot access.
func (f *File) headerSum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < hdrSum; i++ {
		w := atomic.LoadUint64(&f.header[i])
		for b := 0; b < 8; b++ {
			h ^= (w >> (8 * b)) & 0xFF
			h *= prime64
		}
	}
	return h
}

func (f *File) sealHeader() { atomic.StoreUint64(&f.header[hdrSum], f.headerSum()) }

func (f *File) headerValid() bool {
	return atomic.LoadUint64(&f.header[hdrSum]) == f.headerSum()
}

// Create builds a new value file for numVertices vertices. init supplies
// each vertex's initial payload and whether the vertex starts active
// (fresh): PageRank activates every vertex, BFS only the root. Both
// columns receive the initial payload, so the dispatch-column invariant
// holds from superstep 0.
func Create(path string, numVertices int64, init func(v int64) (payload uint64, active bool)) (*File, error) {
	if numVertices <= 0 {
		return nil, fmt.Errorf("vertexfile: create %s: non-positive vertex count %d", path, numVertices)
	}
	if init == nil {
		init = func(int64) (uint64, bool) { return 0, true }
	}
	size := headerBytes + 16*numVertices
	m, err := mmap.Create(path, size, mmap.Options{})
	if err != nil {
		return nil, err
	}
	f, err := newFile(path, m, numVertices)
	if err != nil {
		m.Close()
		return nil, err
	}
	b := m.Bytes()
	binary.LittleEndian.PutUint32(b[0:], fileMagic)
	binary.LittleEndian.PutUint32(b[4:], fileVersion)
	binary.LittleEndian.PutUint64(b[8:], uint64(numVertices))
	f.setEpoch(0)
	f.setState(stateClean)
	f.sealHeader()
	for v := int64(0); v < numVertices; v++ {
		payload, active := init(v)
		// Column 0 is superstep 0's dispatch column: fresh for active
		// vertices. Column 1 is its update column: stale ("not yet
		// updated"), which is also the first-message detector.
		f.Store(0, v, Pack(payload, !active))
		f.Store(1, v, Pack(payload, true))
	}
	if err := m.Sync(); err != nil {
		m.Close()
		return nil, err
	}
	return f, nil
}

// Open maps an existing value file, validating the header checksum and
// the clean/running state word. A header torn by a crash mid-flush
// (checksum mismatch, or a state word that is neither clean nor running)
// is rolled back to the immutable dispatch column on the spot — Torn
// reports this. A file whose header is intact but records an in-progress
// superstep is opened as-is; call Recover to roll it back.
func Open(path string) (*File, error) {
	m, err := mmap.Open(path, mmap.Options{Writable: true})
	if err != nil {
		return nil, err
	}
	b := m.Bytes()
	if len(b) < headerBytes {
		m.Close()
		return nil, fmt.Errorf("vertexfile: %s: truncated header", path)
	}
	if binary.LittleEndian.Uint32(b[0:]) != fileMagic {
		m.Close()
		return nil, fmt.Errorf("vertexfile: %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != fileVersion {
		m.Close()
		return nil, fmt.Errorf("vertexfile: %s: unsupported version %d", path, v)
	}
	n := int64(binary.LittleEndian.Uint64(b[8:]))
	if n <= 0 || n > maxVertices {
		m.Close()
		return nil, fmt.Errorf("vertexfile: %s: absurd vertex count %d", path, n)
	}
	if want := headerBytes + 16*n; int64(len(b)) < want {
		m.Close()
		return nil, fmt.Errorf("vertexfile: %s: %d bytes, want %d for %d vertices", path, len(b), want, n)
	}
	f, err := newFile(path, m, n)
	if err != nil {
		m.Close()
		return nil, err
	}
	if s := f.state(); !f.headerValid() || (s != stateClean && s != stateRunning) {
		// Torn header: the state word cannot be trusted, so treat the
		// epoch's superstep as interrupted and roll back to the dispatch
		// column unconditionally.
		f.torn = true
		f.setState(stateRunning)
		if _, err := f.Recover(); err != nil {
			m.Close()
			return nil, fmt.Errorf("vertexfile: %s: rolling back torn header: %w", path, err)
		}
	}
	return f, nil
}

// Torn reports whether Open found a torn header (failed checksum or
// invalid state word) and rolled the file back.
func (f *File) Torn() bool { return f.torn }

// NewMemory builds a purely in-memory value store with the same
// interface: Begin/Commit/Reconcile/Recover all work, with durability
// syncs as no-ops. Pairs with graph.NewMemoryFile for zero-file library
// embedding.
func NewMemory(numVertices int64, init func(v int64) (payload uint64, active bool)) (*File, error) {
	if numVertices <= 0 {
		return nil, fmt.Errorf("vertexfile: memory store: non-positive vertex count %d", numVertices)
	}
	if init == nil {
		init = func(int64) (uint64, bool) { return 0, true }
	}
	f := &File{
		path:        "(memory)",
		numVertices: numVertices,
		slots:       make([]uint64, 2*numVertices),
		header:      make([]uint64, headerBytes/8),
	}
	for v := int64(0); v < numVertices; v++ {
		payload, active := init(v)
		f.Store(0, v, Pack(payload, !active))
		f.Store(1, v, Pack(payload, true))
	}
	return f, nil
}

func newFile(path string, m *mmap.Map, numVertices int64) (*File, error) {
	header, err := m.Uint64s(0, headerBytes/8)
	if err != nil {
		return nil, err
	}
	slots, err := m.Uint64s(headerBytes, 2*numVertices)
	if err != nil {
		return nil, err
	}
	return &File{path: path, m: m, numVertices: numVertices, slots: slots, header: header}, nil
}

// NumVertices returns the vertex count.
func (f *File) NumVertices() int64 { return f.numVertices }

// Epoch returns the number of completed supersteps; the next superstep to
// run is Epoch() itself, and its dispatch column is DispatchCol(Epoch()).
func (f *File) Epoch() int64 { return int64(atomic.LoadUint64(&f.header[hdrEpoch])) }

func (f *File) setEpoch(e int64) { atomic.StoreUint64(&f.header[hdrEpoch], uint64(e)) }

func (f *File) state() uint64     { return atomic.LoadUint64(&f.header[hdrState]) }
func (f *File) setState(s uint64) { atomic.StoreUint64(&f.header[hdrState], s) }

// InProgress reports whether the file records an uncommitted superstep
// (i.e. the writer crashed or is still running).
func (f *File) InProgress() bool { return f.state() == stateRunning }

// DispatchCol returns the dispatch (read) column for a superstep.
func DispatchCol(step int64) int { return int(step & 1) }

// UpdateCol returns the update (write) column for a superstep.
func UpdateCol(step int64) int { return int(step&1) ^ 1 }

// Load atomically reads slot (v, col).
func (f *File) Load(col int, v int64) uint64 {
	return atomic.LoadUint64(&f.slots[2*v+int64(col)])
}

// Store atomically writes slot (v, col).
func (f *File) Store(col int, v int64, slot uint64) {
	atomic.StoreUint64(&f.slots[2*v+int64(col)], slot)
}

// Begin marks superstep step as in progress; durable additionally syncs
// the mapping so a crash is detectable. It must be called with the step
// equal to the current epoch.
func (f *File) Begin(step int64, durable bool) error {
	if step != f.Epoch() {
		return fmt.Errorf("vertexfile: begin superstep %d, but epoch is %d", step, f.Epoch())
	}
	f.setState(stateRunning)
	f.sealHeader()
	if !durable {
		return nil
	}
	return f.Sync()
}

// Commit reconciles the columns, advances the epoch past step, and
// records completion (durably when durable is set). reconcile may be
// disabled for ablation runs of programs whose every active vertex is
// re-updated each superstep.
func (f *File) Commit(step int64, reconcile, durable bool) error {
	if step != f.Epoch() {
		return fmt.Errorf("vertexfile: commit superstep %d, but epoch is %d", step, f.Epoch())
	}
	if ferr := fault.Error(fault.SiteCommitTorn); ferr != nil {
		// Simulate a crash tearing the header mid-flush: the state word
		// still says running and the checksum no longer matches. Nothing
		// past this point ran, so the dispatch column is intact and both
		// Rollback (in-process retry) and Open (reopen after "death")
		// can roll the superstep back.
		atomic.StoreUint64(&f.header[hdrSum], f.headerSum()+1)
		return fmt.Errorf("vertexfile: commit superstep %d: %w", step, ferr)
	}
	if reconcile {
		f.Reconcile(step)
	}
	f.setEpoch(step + 1)
	f.setState(stateClean)
	f.sealHeader()
	if !durable {
		return nil
	}
	return f.Sync()
}

// Reconcile restores the cross-superstep invariants after superstep step:
//
//  1. For every vertex whose update-column slot stayed stale (not updated
//     in step), the dispatch-column payload is copied over it, so the
//     update column — the next superstep's dispatch column — holds the
//     newest payload of every vertex.
//  2. Every dispatch-column slot is re-marked stale: that column becomes
//     the next superstep's update column, whose stale flag doubles as the
//     first-message detector. (Dispatchers also stale consumed slots as
//     they go, per paper Algorithm 2; this sweep additionally covers
//     vertices that were skipped.)
func (f *File) Reconcile(step int64) {
	d, u := DispatchCol(step), UpdateCol(step)
	for v := int64(0); v < f.numVertices; v++ {
		slot := f.Load(u, v)
		if Stale(slot) {
			f.Store(u, v, Payload(f.Load(d, v))|StaleBit)
		}
		f.Store(d, v, f.Load(d, v)|StaleBit)
	}
}

// Recover rolls a crashed file back to the start of the interrupted
// superstep and returns that superstep number. The dispatch column of the
// crashed superstep is payload-immutable during execution (computing
// actors only write the update column; dispatchers only toggle flags), so
// it is a complete snapshot of the previous superstep's state. Because
// dispatchers may already have consumed (re-staled) some fresh marks, the
// rollback conservatively re-activates every vertex: redundant dispatches
// are harmless for the idempotent programs GPSA targets (the paper's
// recovery story, Fig. 6, has the same property). On a clean file Recover
// is a no-op returning the current epoch.
func (f *File) Recover() (int64, error) {
	step := f.Epoch()
	if !f.InProgress() {
		return step, nil
	}
	d, u := DispatchCol(step), UpdateCol(step)
	for v := int64(0); v < f.numVertices; v++ {
		p := Payload(f.Load(d, v))
		f.Store(d, v, p) // fresh: conservatively re-activate
		f.Store(u, v, p|StaleBit)
	}
	f.setState(stateClean)
	f.sealHeader()
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return step, nil
}

// SnapshotActive records the fresh flags of step's dispatch column into
// bits (len must be at least ceil(NumVertices/64)). Dispatchers consume
// (re-stale) fresh marks as they go, so a crashed superstep cannot
// reconstruct its starting active set from the file alone; the engine
// takes this snapshot before Begin so Rollback can restore it exactly.
func (f *File) SnapshotActive(step int64, bits []uint64) {
	col := DispatchCol(step)
	for i := range bits {
		bits[i] = 0
	}
	for v := int64(0); v < f.numVertices; v++ {
		if !Stale(f.Load(col, v)) {
			bits[v/64] |= 1 << uint(v%64)
		}
	}
}

// Rollback restores the interrupted superstep step to its starting state
// using an active-set snapshot taken by SnapshotActive. The dispatch
// column's payloads are authoritative (payload-immutable during the
// superstep); its flags are restored from bits and the update column is
// reset to stale copies. Unlike Recover, the rollback is exact — only
// the vertices that were active re-dispatch — so a retried superstep
// regenerates the original message stream bit-for-bit, which is what
// lets even order-sensitive float programs (PageRank) retry without
// perturbing their results.
func (f *File) Rollback(step int64, bits []uint64, durable bool) error {
	if step != f.Epoch() {
		return fmt.Errorf("vertexfile: rollback superstep %d, but epoch is %d", step, f.Epoch())
	}
	d, u := DispatchCol(step), UpdateCol(step)
	for v := int64(0); v < f.numVertices; v++ {
		p := Payload(f.Load(d, v))
		active := bits[v/64]&(1<<uint(v%64)) != 0
		f.Store(d, v, Pack(p, !active))
		f.Store(u, v, p|StaleBit)
	}
	f.setState(stateClean)
	f.sealHeader()
	if !durable {
		return nil
	}
	return f.Sync()
}

// Value returns the newest payload of v. It must only be called between
// supersteps (after Commit), when the dispatch column of the next
// superstep holds the newest payload of every vertex.
func (f *File) Value(v int64) uint64 {
	return Payload(f.Load(DispatchCol(f.Epoch()), v))
}

// Values copies the newest payload of every vertex into a fresh slice.
func (f *File) Values() []uint64 {
	out := make([]uint64, f.numVertices)
	col := DispatchCol(f.Epoch())
	for v := int64(0); v < f.numVertices; v++ {
		out[v] = Payload(f.Load(col, v))
	}
	return out
}

// AdviseRandom hints the kernel that slots will be accessed at random
// (the computing workers' pattern); best-effort, no-op for memory stores.
func (f *File) AdviseRandom() error {
	if f.m == nil {
		return nil
	}
	return f.m.Advise(mmap.AccessRandom)
}

// Sync flushes the mapping (no-op for memory stores).
func (f *File) Sync() error {
	if f.m == nil {
		return nil
	}
	return f.m.Sync()
}

// Close flushes and unmaps the file (no-op for memory stores).
func (f *File) Close() error {
	if f.m == nil {
		return nil
	}
	return f.m.Close()
}

// Path returns the backing file path.
func (f *File) Path() string { return f.path }
