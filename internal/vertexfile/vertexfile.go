// Package vertexfile implements GPSA's memory-mapped vertex value file
// (paper §IV-D/F, Fig. 5).
//
// The file stores two 64-bit value slots per vertex — two "columns" that
// alternate roles every superstep: in superstep s the dispatch column
// (s mod 2) is read by dispatcher actors, and the update column (1 - s
// mod 2) is written by computing actors. The highest bit of each slot is
// the paper's update flag: 1 ("stale") means the vertex was not updated in
// the previous superstep and is skipped by dispatchers; 0 ("fresh") means
// its new value must be dispatched.
//
// Correctness note (a deviation from the paper's literal protocol,
// recorded in DESIGN.md): if a vertex is updated in superstep s but
// receives no message in superstep s+1, its newest value sits in a column
// that becomes the *update* column of superstep s+2 and would be silently
// overwritten on the next first-message, and the paper's first-message
// rule ("fetch value from the message sending column") would then resurrect
// a value that is two supersteps old. This package therefore maintains the
// invariant that *at the start of every superstep the dispatch column
// holds the newest payload of every vertex*, by copying, at the superstep
// barrier, the dispatch-column payload over every update-column slot that
// stayed stale (Reconcile). The pass is sequential, O(|V|), raceless
// (it runs between supersteps), and is also what makes the paper's
// lightweight fault tolerance sound: the dispatch column of the crashed
// superstep is a complete, payload-immutable snapshot of the previous
// superstep's state.
//
// Durability contract (format v3; the full statement lives in DESIGN.md):
// every state transition writes and syncs its data before sealing and
// syncing the header that makes the data authoritative. Begin syncs the
// active-set bitmap before sealing the header running; CommitState syncs
// the reconciled columns before sealing the header clean at the next
// epoch. A header therefore never describes column or bitmap bytes that
// did not reach the file first, and Open cross-checks the sealed column
// digest so a violated ordering is detected rather than silently trusted.
package vertexfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	mathbits "math/bits"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/mmap"
)

// closeJoin unmaps m on a constructor error path, joining the close error
// into the primary one so a failing unmap is never silently dropped.
func closeJoin(err error, m *mmap.Map) error {
	return errors.Join(err, m.Close())
}

const (
	// StaleBit is the paper's "highest bit": set = not updated in the
	// last superstep.
	StaleBit uint64 = 1 << 63
	// PayloadMask extracts the 63-bit payload from a slot.
	PayloadMask = StaleBit - 1

	fileMagic   = 0x46565047 // "GPVF"
	fileVersion = 3
	headerBytes = 128
	headerWords = headerBytes / 8

	stateClean   = 0
	stateRunning = 1

	// maxVertices bounds the vertex count a header may claim, keeping
	// size arithmetic (16 bytes per vertex plus header and bitmap) far
	// from int64 overflow when Open validates untrusted files.
	maxVertices = int64(1) << 56
	// maxEpoch bounds the superstep counter a header may claim: no real
	// run approaches it, so a larger value means corruption.
	maxEpoch = int64(1) << 40
)

// Stale reports whether a slot carries the stale flag.
func Stale(slot uint64) bool { return slot&StaleBit != 0 }

// Payload extracts the 63-bit payload of a slot.
func Payload(slot uint64) uint64 { return slot & PayloadMask }

// Pack combines a payload with a staleness flag. The payload must fit in
// 63 bits.
func Pack(payload uint64, stale bool) uint64 {
	p := payload & PayloadMask
	if stale {
		p |= StaleBit
	}
	return p
}

// PackFloat64 encodes a non-negative float64 as a slot payload. Bit 63 of
// a non-negative IEEE 754 double is zero, so the numeric bits pass through
// unchanged; negative values would collide with the flag and are rejected.
func PackFloat64(v float64) (uint64, error) {
	if v < 0 || math.Signbit(v) {
		return 0, fmt.Errorf("vertexfile: negative value %g cannot share a slot with the flag bit", v)
	}
	return math.Float64bits(v), nil
}

// UnpackFloat64 decodes a payload written by PackFloat64.
func UnpackFloat64(p uint64) float64 { return math.Float64frombits(p & PayloadMask) }

// File is an open vertex value file. All slot accesses are atomic 64-bit
// loads and stores, making the dispatcher's flag writes and the computing
// workers' reads race-free without locks.
type File struct {
	path string
	m    *mmap.Map

	numVertices int64
	slots       []uint64 // 2*numVertices, interleaved: slot(v, col) = slots[2v+col]
	bitmap      []uint64 // ceil(numVertices/64): the persisted active-set snapshot
	header      []uint64 // first headerWords words of the mapping
	bitmapOff   int64
	slotsOff    int64

	torn         bool   // Open found a torn header and rolled it back
	lastRecovery string // "", "none", "exact", "conservative"
	activeCount  int64  // fresh vertices counted by the last Begin
}

// Header word indices (64-bit words of the 128-byte header):
//
//	word 0: magic (u32) | version (u32)
//	word 1: numVertices
//	word 2: epoch — completed supersteps
//	word 3: state — stateClean / stateRunning
//	word 4: FNV-1a checksum of all other header words
//	word 5: flags (bit 0: the computation has converged)
//	word 6: aggregator value at the last commit (float64 bits)
//	word 7: active-set checksum — FNV-1a over the epoch and the bitmap
//	        region; sealed by Begin, meaningful while state is running
//	word 8: column digest — FNV-1a over the current dispatch column's
//	        payloads; 0 means absent (reconcile disabled)
//	words 9-15: reserved (zero)
//
// Between the header and the slots sits the active-set bitmap region
// (ceil(numVertices/64) words): bit v records whether vertex v was fresh
// in the running superstep's dispatch column at Begin. Dispatchers
// consume (re-stale) fresh marks as they stream, so without this
// snapshot a crashed superstep could only be recovered conservatively
// (re-activate everything) — value-correct for idempotent programs but
// not bit-identical for order-sensitive float programs like PageRank.
//
// The checksum is re-sealed at every state transition (Create, Begin,
// Commit, Recover, Rollback). A header whose checksum does not match —
// or whose state word is neither clean nor running — was torn by a
// crash mid-flush; Open rolls such files back to the immutable dispatch
// column instead of trusting the state word.
const (
	hdrEpoch     = 2
	hdrState     = 3
	hdrSum       = 4
	hdrFlags     = 5
	hdrAggregate = 6
	hdrActiveSum = 7
	hdrColDigest = 8
)

const flagConverged = 1 << 0

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvWord(h, w uint64) uint64 {
	for b := 0; b < 8; b++ {
		h ^= (w >> (8 * b)) & 0xFF
		h *= fnvPrime64
	}
	return h
}

// headerSum hashes every header word except the checksum itself with
// FNV-1a. Words are read atomically so sealing can race benignly with
// concurrent slot access.
func (f *File) headerSum() uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < headerWords; i++ {
		if i == hdrSum {
			continue
		}
		h = fnvWord(h, atomic.LoadUint64(&f.header[i]))
	}
	return h
}

func (f *File) sealHeader() { atomic.StoreUint64(&f.header[hdrSum], f.headerSum()) }

func (f *File) headerValid() bool {
	return atomic.LoadUint64(&f.header[hdrSum]) == f.headerSum()
}

// activeSum checksums the bitmap region together with the superstep it
// snapshots, so Recover can tell a bitmap sealed by step's Begin from
// stale bytes of an earlier superstep or a torn write.
func (f *File) activeSum(step int64) uint64 {
	h := fnvWord(uint64(fnvOffset64), uint64(step))
	for _, w := range f.bitmap {
		h = fnvWord(h, w)
	}
	return h
}

// colDigest hashes the payloads of column col. The stale flags are
// excluded: they are advisory dispatch state, mutated in place by
// recovery, while the payloads are what resume correctness rests on.
func (f *File) colDigest(col int) uint64 {
	h := uint64(fnvOffset64)
	for v := int64(0); v < f.numVertices; v++ {
		h = fnvWord(h, Payload(f.Load(col, v)))
	}
	return h
}

func bitmapWords(numVertices int64) int64 { return (numVertices + 63) / 64 }

// Create builds a new value file for numVertices vertices. init supplies
// each vertex's initial payload and whether the vertex starts active
// (fresh): PageRank activates every vertex, BFS only the root. Both
// columns receive the initial payload, so the dispatch-column invariant
// holds from superstep 0.
func Create(path string, numVertices int64, init func(v int64) (payload uint64, active bool)) (*File, error) {
	if numVertices <= 0 {
		return nil, fmt.Errorf("vertexfile: create %s: non-positive vertex count %d", path, numVertices)
	}
	if init == nil {
		init = func(int64) (uint64, bool) { return 0, true }
	}
	size := headerBytes + 8*bitmapWords(numVertices) + 16*numVertices
	m, err := mmap.Create(path, size, mmap.Options{})
	if err != nil {
		return nil, err
	}
	f, err := newFile(path, m, numVertices)
	if err != nil {
		return nil, closeJoin(err, m)
	}
	b := m.Bytes()
	binary.LittleEndian.PutUint32(b[0:], fileMagic)
	binary.LittleEndian.PutUint32(b[4:], fileVersion)
	binary.LittleEndian.PutUint64(b[8:], uint64(numVertices))
	f.setEpoch(0)
	f.setState(stateClean)
	for v := int64(0); v < numVertices; v++ {
		payload, active := init(v)
		// Column 0 is superstep 0's dispatch column: fresh for active
		// vertices. Column 1 is its update column: stale ("not yet
		// updated"), which is also the first-message detector.
		f.Store(0, v, Pack(payload, !active))
		f.Store(1, v, Pack(payload, true))
	}
	atomic.StoreUint64(&f.header[hdrColDigest], f.colDigest(0))
	f.sealHeader()
	if err := m.Sync(); err != nil {
		return nil, closeJoin(err, m)
	}
	return f, nil
}

// Open maps an existing value file, validating the header checksum, the
// clean/running state word, and the sealed column digest. A header torn
// by a crash mid-flush (checksum mismatch, or a state word that is
// neither clean nor running) is rolled back to the immutable dispatch
// column on the spot — Torn reports this. A file whose header is intact
// but records an in-progress superstep is opened as-is; call Recover to
// roll it back. A file whose sealed digest does not match its dispatch
// column was written out of order (header sealed before the column sync
// completed) or corrupted externally; it is rejected rather than trusted.
func Open(path string) (*File, error) {
	m, err := mmap.Open(path, mmap.Options{Writable: true})
	if err != nil {
		return nil, err
	}
	b := m.Bytes()
	if len(b) < headerBytes {
		return nil, closeJoin(fmt.Errorf("vertexfile: %s: truncated header", path), m)
	}
	if binary.LittleEndian.Uint32(b[0:]) != fileMagic {
		return nil, closeJoin(fmt.Errorf("vertexfile: %s: bad magic", path), m)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != fileVersion {
		return nil, closeJoin(fmt.Errorf("vertexfile: %s: unsupported version %d", path, v), m)
	}
	n := int64(binary.LittleEndian.Uint64(b[8:]))
	if n <= 0 || n > maxVertices {
		return nil, closeJoin(fmt.Errorf("vertexfile: %s: absurd vertex count %d", path, n), m)
	}
	if want := headerBytes + 8*bitmapWords(n) + 16*n; int64(len(b)) < want {
		return nil, closeJoin(fmt.Errorf("vertexfile: %s: %d bytes, want %d for %d vertices", path, len(b), want, n), m)
	}
	f, err := newFile(path, m, n)
	if err != nil {
		return nil, closeJoin(err, m)
	}
	if e := f.Epoch(); e < 0 || e > maxEpoch {
		return nil, closeJoin(fmt.Errorf("vertexfile: %s: absurd epoch %d", path, e), m)
	}
	if s := f.state(); !f.headerValid() || (s != stateClean && s != stateRunning) {
		// Torn header: the state word cannot be trusted, so treat the
		// epoch's superstep as interrupted and roll back to the dispatch
		// column unconditionally.
		f.torn = true
		metrics.Inc(metrics.CtrOpenTorn)
		f.setState(stateRunning)
		if _, err := f.Recover(); err != nil {
			return nil, closeJoin(fmt.Errorf("vertexfile: %s: rolling back torn header: %w", path, err), m)
		}
		return f, nil
	}
	if want := atomic.LoadUint64(&f.header[hdrColDigest]); want != 0 {
		if got := f.colDigest(DispatchCol(f.Epoch())); got != want {
			metrics.Inc(metrics.CtrDigestMismatch)
			return nil, closeJoin(fmt.Errorf("vertexfile: %s: column digest mismatch (%#x, header sealed %#x): header sealed before column sync, or columns corrupted", path, got, want), m)
		}
	}
	return f, nil
}

// Torn reports whether Open found a torn header (failed checksum or
// invalid state word) and rolled the file back.
func (f *File) Torn() bool { return f.torn }

// LastRecovery describes the most recent Recover on this handle: "" if
// Recover never ran, "none" if the file was already clean, "exact" if the
// active-set bitmap was restored, "conservative" if every vertex was
// re-activated (torn header or unusable bitmap).
func (f *File) LastRecovery() string { return f.lastRecovery }

// NewMemory builds a purely in-memory value store with the same
// interface: Begin/Commit/Reconcile/Recover all work, with durability
// syncs as no-ops. Pairs with graph.NewMemoryFile for zero-file library
// embedding.
func NewMemory(numVertices int64, init func(v int64) (payload uint64, active bool)) (*File, error) {
	if numVertices <= 0 {
		return nil, fmt.Errorf("vertexfile: memory store: non-positive vertex count %d", numVertices)
	}
	if init == nil {
		init = func(int64) (uint64, bool) { return 0, true }
	}
	f := &File{
		path:        "(memory)",
		numVertices: numVertices,
		slots:       make([]uint64, 2*numVertices),
		bitmap:      make([]uint64, bitmapWords(numVertices)),
		header:      make([]uint64, headerWords),
	}
	for v := int64(0); v < numVertices; v++ {
		payload, active := init(v)
		f.Store(0, v, Pack(payload, !active))
		f.Store(1, v, Pack(payload, true))
	}
	return f, nil
}

func newFile(path string, m *mmap.Map, numVertices int64) (*File, error) {
	bw := bitmapWords(numVertices)
	bitmapOff := int64(headerBytes)
	slotsOff := bitmapOff + 8*bw
	header, err := m.Uint64s(0, headerWords)
	if err != nil {
		return nil, err
	}
	bitmap, err := m.Uint64s(bitmapOff, bw)
	if err != nil {
		return nil, err
	}
	slots, err := m.Uint64s(slotsOff, 2*numVertices)
	if err != nil {
		return nil, err
	}
	// The retained views live exactly as long as the mapping: File owns m
	// and Close unmaps them together, and every slot access goes through
	// the atomic Load/Store accessors.
	return &File{
		path: path, m: m, numVertices: numVertices,
		//lint:colalias File owns the mapping; views and map share one lifetime and slots are accessed atomically
		slots: slots, bitmap: bitmap, header: header,
		bitmapOff: bitmapOff, slotsOff: slotsOff,
	}, nil
}

// NumVertices returns the vertex count.
func (f *File) NumVertices() int64 { return f.numVertices }

// Epoch returns the number of completed supersteps; the next superstep to
// run is Epoch() itself, and its dispatch column is DispatchCol(Epoch()).
func (f *File) Epoch() int64 { return int64(atomic.LoadUint64(&f.header[hdrEpoch])) }

func (f *File) setEpoch(e int64) { atomic.StoreUint64(&f.header[hdrEpoch], uint64(e)) }

func (f *File) state() uint64     { return atomic.LoadUint64(&f.header[hdrState]) }
func (f *File) setState(s uint64) { atomic.StoreUint64(&f.header[hdrState], s) }

// InProgress reports whether the file records an uncommitted superstep
// (i.e. the writer crashed or is still running).
func (f *File) InProgress() bool { return f.state() == stateRunning }

// Converged reports whether the last committed superstep concluded the
// computation. A resumed run can return immediately instead of
// re-running (and possibly perturbing) a finished result.
func (f *File) Converged() bool {
	return atomic.LoadUint64(&f.header[hdrFlags])&flagConverged != 0
}

// Aggregate returns the aggregator value sealed by the last commit (0 if
// the program does not aggregate).
func (f *File) Aggregate() float64 {
	return math.Float64frombits(atomic.LoadUint64(&f.header[hdrAggregate]))
}

// DispatchCol returns the dispatch (read) column for a superstep.
func DispatchCol(step int64) int { return int(step & 1) }

// UpdateCol returns the update (write) column for a superstep.
func UpdateCol(step int64) int { return int(step&1) ^ 1 }

// Load atomically reads slot (v, col).
//
//gpsa:noalloc
func (f *File) Load(col int, v int64) uint64 {
	return atomic.LoadUint64(&f.slots[2*v+int64(col)])
}

// Store atomically writes slot (v, col).
//
//gpsa:noalloc
func (f *File) Store(col int, v int64, slot uint64) {
	atomic.StoreUint64(&f.slots[2*v+int64(col)], slot)
}

// ActiveCount returns the number of fresh (active) vertices snapshotted
// by the most recent Begin — the size of the running superstep's dispatch
// set. The engine's adaptive accumulator switch reads it to choose between
// dense and sparse source-side accumulation.
func (f *File) ActiveCount() int64 { return f.activeCount }

// ApplyFunc folds one combined message into a vertex during BulkApply.
// cur carries first-message semantics already resolved against the
// dispatch column. Returning stop=true abandons the rest of the segment
// (run teardown); changed=false leaves the slot untouched.
type ApplyFunc func(v int64, cur, msg uint64, first bool) (newVal uint64, changed, stop bool)

// BulkApply folds a dense accumulator segment into superstep step's
// update column: for every set bit i of bits, vertex offset + i*stride
// receives the combined message vals[i]. The first-message rule of the
// paper's Algorithm 3 is applied inline — a still-stale update slot reads
// its previous value from the dispatch column — and updated slots are
// stored fresh, exactly like the per-message path. It returns the number
// of vertices whose value changed. Present entries are visited in
// ascending vertex order, which keeps the fold deterministic.
//
//gpsa:noalloc
func (f *File) BulkApply(step, offset, stride int64, bits, vals []uint64, fn ApplyFunc) (updates int64) {
	dcol, ucol := DispatchCol(step), UpdateCol(step)
	for wi, word := range bits {
		base := int64(wi) * 64
		for word != 0 {
			b := mathbits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			i := base + int64(b)
			v := offset + i*stride
			if v >= f.numVertices {
				return updates
			}
			slot := f.Load(ucol, v)
			first := Stale(slot)
			cur := Payload(slot)
			if first {
				cur = Payload(f.Load(dcol, v))
			}
			newVal, changed, stop := fn(v, cur, vals[i], first)
			if stop {
				return updates
			}
			if changed {
				f.Store(ucol, v, Pack(newVal, false))
				updates++
			}
		}
	}
	return updates
}

func (f *File) syncHeader() error {
	if f.m == nil {
		return nil
	}
	return f.m.SyncRange(0, headerBytes)
}

func (f *File) syncBitmap() error {
	if f.m == nil {
		return nil
	}
	return f.m.SyncRange(f.bitmapOff, 8*int64(len(f.bitmap)))
}

func (f *File) syncSlots() error {
	if f.m == nil {
		return nil
	}
	return f.m.SyncRange(f.slotsOff, 16*f.numVertices)
}

// Begin marks superstep step as in progress. It snapshots the dispatch
// column's fresh flags into the persisted bitmap region — the exact
// active set a recovery needs, since dispatchers consume fresh marks as
// they stream — and, when durable, syncs the bitmap BEFORE sealing and
// syncing the running header, so a sealed header never vouches for
// bitmap bytes that did not reach the file. It must be called with the
// step equal to the current epoch.
func (f *File) Begin(step int64, durable bool) error {
	if step != f.Epoch() {
		return fmt.Errorf("vertexfile: begin superstep %d, but epoch is %d", step, f.Epoch())
	}
	col := DispatchCol(step)
	for i := range f.bitmap {
		f.bitmap[i] = 0
	}
	for v := int64(0); v < f.numVertices; v++ {
		if !Stale(f.Load(col, v)) {
			f.bitmap[v/64] |= 1 << uint(v%64)
		}
	}
	var active int64
	for _, w := range f.bitmap {
		active += int64(mathbits.OnesCount64(w))
	}
	f.activeCount = active
	if durable {
		if err := f.syncBitmap(); err != nil {
			return fmt.Errorf("vertexfile: begin superstep %d: %w", step, err)
		}
	}
	fault.Crash(fault.SiteKillBeginActive)
	atomic.StoreUint64(&f.header[hdrActiveSum], f.activeSum(step))
	f.setState(stateRunning)
	f.sealHeader()
	if !durable {
		return nil
	}
	return f.syncHeader()
}

// CommitState carries what a commit seals into the header besides the
// epoch: whether the computation converged at this superstep and the
// aggregator's value, the algorithm state a resumed run needs to be a
// true continuation rather than a restart-from-values approximation.
type CommitState struct {
	// Reconcile restores the cross-superstep column invariant (see
	// Reconcile); disable only for ablation runs of programs whose every
	// active vertex is re-updated each superstep.
	Reconcile bool
	// Durable syncs columns and header (in that order) to disk.
	Durable bool
	// Converged records that this superstep concluded the computation.
	Converged bool
	// Aggregate is the program's aggregator value at this superstep.
	Aggregate float64
}

// Commit reconciles the columns, advances the epoch past step, and
// records completion (durably when durable is set). It is shorthand for
// CommitStep with no algorithm state.
func (f *File) Commit(step int64, reconcile, durable bool) error {
	return f.CommitStep(step, CommitState{Reconcile: reconcile, Durable: durable})
}

// CommitStep completes superstep step: it reconciles the columns,
// computes the next dispatch column's digest, and seals state + epoch +
// convergence + aggregate into the header. Durability ordering: the
// column bytes are synced BEFORE the header is sealed and synced, so a
// crash at any instant leaves either a running header (superstep s rolls
// back) or a clean header whose digest provably matches the bytes on
// disk (superstep s committed) — never a sealed header describing column
// bytes that were not written.
func (f *File) CommitStep(step int64, st CommitState) error {
	if step != f.Epoch() {
		return fmt.Errorf("vertexfile: commit superstep %d, but epoch is %d", step, f.Epoch())
	}
	if ferr := fault.Error(fault.SiteCommitTorn); ferr != nil {
		// Simulate a crash tearing the header mid-flush: the state word
		// still says running and the checksum no longer matches. Nothing
		// past this point ran, so the dispatch column is intact and both
		// Rollback (in-process retry) and Open (reopen after "death")
		// can roll the superstep back.
		atomic.StoreUint64(&f.header[hdrSum], f.headerSum()+1)
		return fmt.Errorf("vertexfile: commit superstep %d: %w", step, ferr)
	}
	var digest uint64
	if st.Reconcile {
		digest = f.reconcileDigest(step)
	}
	fault.Crash(fault.SiteKillCommitColumns)
	if st.Durable {
		if ferr := fault.Error(fault.SiteColumnSync); ferr != nil {
			return fmt.Errorf("vertexfile: commit superstep %d: column sync: %w", step, ferr)
		}
		if err := f.syncSlots(); err != nil {
			return fmt.Errorf("vertexfile: commit superstep %d: column sync: %w", step, err)
		}
	}
	fault.Crash(fault.SiteKillCommitSeal)
	f.setEpoch(step + 1)
	f.setState(stateClean)
	var flags uint64
	if st.Converged {
		flags |= flagConverged
	}
	atomic.StoreUint64(&f.header[hdrFlags], flags)
	atomic.StoreUint64(&f.header[hdrAggregate], math.Float64bits(st.Aggregate))
	atomic.StoreUint64(&f.header[hdrColDigest], digest)
	f.sealHeader()
	if st.Durable {
		if err := f.syncHeader(); err != nil {
			return fmt.Errorf("vertexfile: commit superstep %d: header sync: %w", step, err)
		}
	}
	fault.Crash(fault.SiteKillCommitDone)
	return nil
}

// reconcileDigest is Reconcile fused with the digest of the resulting
// next dispatch column (the update column's payloads after the pass),
// saving a second O(|V|) sweep per commit.
func (f *File) reconcileDigest(step int64) uint64 {
	d, u := DispatchCol(step), UpdateCol(step)
	h := uint64(fnvOffset64)
	for v := int64(0); v < f.numVertices; v++ {
		slot := f.Load(u, v)
		if Stale(slot) {
			slot = Payload(f.Load(d, v)) | StaleBit
			f.Store(u, v, slot)
		}
		f.Store(d, v, f.Load(d, v)|StaleBit)
		h = fnvWord(h, Payload(slot))
	}
	return h
}

// Reconcile restores the cross-superstep invariants after superstep step:
//
//  1. For every vertex whose update-column slot stayed stale (not updated
//     in step), the dispatch-column payload is copied over it, so the
//     update column — the next superstep's dispatch column — holds the
//     newest payload of every vertex.
//  2. Every dispatch-column slot is re-marked stale: that column becomes
//     the next superstep's update column, whose stale flag doubles as the
//     first-message detector. (Dispatchers also stale consumed slots as
//     they go, per paper Algorithm 2; this sweep additionally covers
//     vertices that were skipped.)
func (f *File) Reconcile(step int64) {
	f.reconcileDigest(step)
}

// Recover rolls a crashed file back to the start of the interrupted
// superstep and returns that superstep number. The dispatch column of the
// crashed superstep is payload-immutable during execution (computing
// actors only write the update column; dispatchers only toggle flags), so
// it is a complete snapshot of the previous superstep's state.
//
// When the header's active-set checksum matches the bitmap region — the
// bitmap Begin sealed for exactly this superstep survived the crash —
// the rollback is exact: the dispatch column's fresh flags are restored
// from the bitmap, so the re-run regenerates the original message stream
// and even order-sensitive float programs (PageRank) resume bit-identical.
// Otherwise (torn header, damaged bitmap) it conservatively re-activates
// every vertex: redundant dispatches are harmless for the idempotent
// programs GPSA targets (the paper's recovery story, Fig. 6, has the same
// property). On a clean file Recover is a no-op returning the current
// epoch.
func (f *File) Recover() (int64, error) {
	step := f.Epoch()
	if !f.InProgress() {
		f.lastRecovery = "none"
		return step, nil
	}
	exact := !f.torn && atomic.LoadUint64(&f.header[hdrActiveSum]) == f.activeSum(step)
	d, u := DispatchCol(step), UpdateCol(step)
	for v := int64(0); v < f.numVertices; v++ {
		p := Payload(f.Load(d, v))
		if exact {
			active := f.bitmap[v/64]&(1<<uint(v%64)) != 0
			f.Store(d, v, Pack(p, !active))
		} else {
			f.Store(d, v, p) // fresh: conservatively re-activate
		}
		f.Store(u, v, p|StaleBit)
	}
	if exact {
		f.lastRecovery = "exact"
		metrics.Inc(metrics.CtrRecoverExact)
	} else {
		f.lastRecovery = "conservative"
		metrics.Inc(metrics.CtrRecoverConservative)
	}
	// Same ordering discipline as Commit: slots reach the file before the
	// header that declares them authoritative. The digest is re-sealed
	// from the surviving column — for an intact header this recomputes
	// the identical value; for a torn one it repairs a garbage word.
	if err := f.syncSlots(); err != nil {
		return 0, err
	}
	f.setState(stateClean)
	atomic.StoreUint64(&f.header[hdrColDigest], f.colDigest(d))
	f.sealHeader()
	if err := f.syncHeader(); err != nil {
		return 0, err
	}
	return step, nil
}

// Rollback restores the interrupted superstep step to its starting state
// using the active-set bitmap persisted by Begin. The dispatch column's
// payloads are authoritative (payload-immutable during the superstep);
// its flags are restored from the bitmap and the update column is reset
// to stale copies. The rollback is exact — only the vertices that were
// active re-dispatch — so a retried superstep regenerates the original
// message stream bit-for-bit, which is what lets even order-sensitive
// float programs (PageRank) retry without perturbing their results.
func (f *File) Rollback(step int64, durable bool) error {
	if step != f.Epoch() {
		return fmt.Errorf("vertexfile: rollback superstep %d, but epoch is %d", step, f.Epoch())
	}
	d, u := DispatchCol(step), UpdateCol(step)
	for v := int64(0); v < f.numVertices; v++ {
		p := Payload(f.Load(d, v))
		active := f.bitmap[v/64]&(1<<uint(v%64)) != 0
		f.Store(d, v, Pack(p, !active))
		f.Store(u, v, p|StaleBit)
	}
	metrics.Inc(metrics.CtrStepRollbacks)
	if durable {
		if err := f.syncSlots(); err != nil {
			return err
		}
	}
	f.setState(stateClean)
	f.sealHeader()
	if !durable {
		return nil
	}
	return f.syncHeader()
}

// Rewind un-commits superstep step: a file whose epoch is already step+1
// (Commit ran) is rolled back to the start of step, as if Begin(step) had
// just sealed it running and the crash happened immediately. It exists
// for coordinated distributed retry — when the cluster rolls a superstep
// back, nodes that committed before the failure was detected must rewind
// to rejoin the nodes that never finished.
//
// Soundness rests on two invariants that hold between Commit(step) and
// the next Begin: the old dispatch column DispatchCol(step) is still
// payload-immutable (Commit's reconcile pass only toggles its flags and
// writes the other column), so it remains the exact start-of-step
// snapshot; and the bitmap region still holds the active set Begin(step)
// sealed (Commit never touches it). Rewind therefore re-declares the
// superstep interrupted — epoch back to step, state running, header
// sealed and synced FIRST, so a crash at any instant leaves a header
// that describes a recoverable in-progress step — and then delegates to
// Recover, which restores the flags exactly from the bitmap and re-seals
// the digest with the same data-before-header ordering as Commit.
func (f *File) Rewind(step int64) error {
	if f.InProgress() {
		return fmt.Errorf("vertexfile: rewind superstep %d: file records an in-progress superstep; use Rollback or Recover", step)
	}
	if f.Epoch() != step+1 {
		return fmt.Errorf("vertexfile: rewind superstep %d, but epoch is %d, want %d", step, f.Epoch(), step+1)
	}
	f.setEpoch(step)
	f.setState(stateRunning)
	atomic.StoreUint64(&f.header[hdrFlags], 0)
	f.sealHeader()
	if err := f.syncHeader(); err != nil {
		return fmt.Errorf("vertexfile: rewind superstep %d: %w", step, err)
	}
	if _, err := f.Recover(); err != nil {
		return fmt.Errorf("vertexfile: rewind superstep %d: %w", step, err)
	}
	return nil
}

// Value returns the newest payload of v. It must only be called between
// supersteps (after Commit), when the dispatch column of the next
// superstep holds the newest payload of every vertex.
func (f *File) Value(v int64) uint64 {
	return Payload(f.Load(DispatchCol(f.Epoch()), v))
}

// Values copies the newest payload of every vertex into a fresh slice.
func (f *File) Values() []uint64 {
	out := make([]uint64, f.numVertices)
	col := DispatchCol(f.Epoch())
	for v := int64(0); v < f.numVertices; v++ {
		out[v] = Payload(f.Load(col, v))
	}
	return out
}

// AdviseRandom hints the kernel that slots will be accessed at random
// (the computing workers' pattern); best-effort, no-op for memory stores.
func (f *File) AdviseRandom() error {
	if f.m == nil {
		return nil
	}
	return f.m.Advise(mmap.AccessRandom)
}

// Sync flushes the mapping (no-op for memory stores).
func (f *File) Sync() error {
	if f.m == nil {
		return nil
	}
	return f.m.Sync()
}

// Close flushes and unmaps the file (no-op for memory stores).
func (f *File) Close() error {
	if f.m == nil {
		return nil
	}
	return f.m.Close()
}

// Path returns the backing file path.
func (f *File) Path() string { return f.path }
