package vertexfile

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func writeBytes(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }

func create(t *testing.T, n int64, init func(v int64) (uint64, bool)) *File {
	t.Helper()
	if init == nil {
		init = func(v int64) (uint64, bool) { return uint64(v), true }
	}
	f, err := Create(filepath.Join(t.TempDir(), "values.gpvf"), n, init)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestPackUnpack(t *testing.T) {
	s := Pack(42, true)
	if !Stale(s) || Payload(s) != 42 {
		t.Fatalf("Pack(42, true) = %#x", s)
	}
	s = Pack(42, false)
	if Stale(s) || Payload(s) != 42 {
		t.Fatalf("Pack(42, false) = %#x", s)
	}
	// Payload overflowing into the flag bit is masked off.
	s = Pack(1<<63|7, false)
	if Stale(s) || Payload(s) != 7 {
		t.Fatalf("Pack with overflowing payload = %#x", s)
	}
}

func TestPackFloat64(t *testing.T) {
	for _, v := range []float64{0, 0.15, 1, 1e100, math.Pi} {
		p, err := PackFloat64(v)
		if err != nil {
			t.Fatalf("PackFloat64(%g): %v", v, err)
		}
		if p&StaleBit != 0 {
			t.Fatalf("PackFloat64(%g) uses flag bit", v)
		}
		if got := UnpackFloat64(p); got != v {
			t.Fatalf("round trip %g -> %g", v, got)
		}
	}
	if _, err := PackFloat64(-1); err == nil {
		t.Fatal("PackFloat64(-1) succeeded")
	}
	if _, err := PackFloat64(math.Copysign(0, -1)); err == nil {
		t.Fatal("PackFloat64(-0) succeeded")
	}
	// Stale-flagged slots still decode to the value.
	p, _ := PackFloat64(2.5)
	if got := UnpackFloat64(p | StaleBit); got != 2.5 {
		t.Fatalf("UnpackFloat64 of stale slot = %g", got)
	}
}

func TestCreateInitializesBothColumns(t *testing.T) {
	f := create(t, 4, func(v int64) (uint64, bool) { return uint64(100 + v), v == 2 })
	for v := int64(0); v < 4; v++ {
		for col := 0; col < 2; col++ {
			slot := f.Load(col, v)
			if Payload(slot) != uint64(100+v) {
				t.Fatalf("slot(%d,%d) payload = %d", v, col, Payload(slot))
			}
			// Column 0 (superstep 0's dispatch column) is fresh for
			// active vertices; column 1 (the update column) is always
			// stale so first messages are detected.
			wantStale := v != 2 || col == 1
			if Stale(slot) != wantStale {
				t.Fatalf("slot(%d,%d) stale = %v, want %v", v, col, Stale(slot), wantStale)
			}
		}
	}
	if f.Epoch() != 0 || f.InProgress() {
		t.Fatalf("fresh file epoch=%d inProgress=%v", f.Epoch(), f.InProgress())
	}
}

func TestCreateRejectsBadCount(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "x"), 0, nil); err == nil {
		t.Fatal("Create with 0 vertices succeeded")
	}
}

func TestColumnsAlternate(t *testing.T) {
	if DispatchCol(0) != 0 || UpdateCol(0) != 1 || DispatchCol(1) != 1 || UpdateCol(1) != 0 {
		t.Fatal("column alternation wrong")
	}
	for s := int64(0); s < 10; s++ {
		if DispatchCol(s) == UpdateCol(s) {
			t.Fatalf("step %d: dispatch and update columns collide", s)
		}
	}
}

func TestBeginCommitEpochs(t *testing.T) {
	f := create(t, 2, nil)
	if err := f.Begin(1, true); err == nil {
		t.Fatal("Begin with wrong step succeeded")
	}
	if err := f.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	if !f.InProgress() {
		t.Fatal("not in progress after Begin")
	}
	if err := f.Commit(5, true, true); err == nil {
		t.Fatal("Commit with wrong step succeeded")
	}
	if err := f.Commit(0, true, true); err != nil {
		t.Fatal(err)
	}
	if f.Epoch() != 1 || f.InProgress() {
		t.Fatalf("after commit: epoch=%d inProgress=%v", f.Epoch(), f.InProgress())
	}
}

func TestReconcilePropagatesNewestValues(t *testing.T) {
	// Vertex 0 updated in superstep 0, vertex 1 idle. After commit, the
	// next dispatch column must hold 0's new value and 1's original.
	f := create(t, 2, func(v int64) (uint64, bool) { return uint64(10 + v), true })
	if err := f.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	f.Store(UpdateCol(0), 0, Pack(99, false)) // compute updated vertex 0
	if err := f.Commit(0, true, true); err != nil {
		t.Fatal(err)
	}
	if got := f.Value(0); got != 99 {
		t.Fatalf("Value(0) = %d, want 99", got)
	}
	if got := f.Value(1); got != 11 {
		t.Fatalf("Value(1) = %d, want 11 (reconcile failed)", got)
	}
	// Vertex 0 fresh for the next dispatch, vertex 1 stale.
	d := DispatchCol(1)
	if Stale(f.Load(d, 0)) {
		t.Fatal("updated vertex is stale in next dispatch column")
	}
	if !Stale(f.Load(d, 1)) {
		t.Fatal("idle vertex is fresh in next dispatch column")
	}
}

func TestIdleVertexSurvivesManySupersteps(t *testing.T) {
	// The failure mode of the paper's literal protocol: an idle vertex's
	// newest value must survive arbitrarily many supersteps.
	f := create(t, 1, func(int64) (uint64, bool) { return 7, true })
	for step := int64(0); step < 6; step++ {
		if err := f.Begin(step, true); err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			f.Store(UpdateCol(0), 0, Pack(55, false))
		}
		if err := f.Commit(step, true, true); err != nil {
			t.Fatal(err)
		}
		if got := f.Value(0); got != 55 && step >= 0 {
			t.Fatalf("after superstep %d: Value = %d, want 55", step, got)
		}
	}
}

func TestOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.gpvf")
	f, err := Create(path, 3, func(v int64) (uint64, bool) { return uint64(v * 2), true })
	if err != nil {
		t.Fatal(err)
	}
	f.Begin(0, true)
	f.Store(UpdateCol(0), 1, Pack(111, false))
	f.Commit(0, true, true)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.NumVertices() != 3 || g.Epoch() != 1 {
		t.Fatalf("reopened: n=%d epoch=%d", g.NumVertices(), g.Epoch())
	}
	if g.Value(1) != 111 || g.Value(0) != 0 || g.Value(2) != 4 {
		t.Fatalf("values = %v", g.Values())
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad")
	f, err := Create(path, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Too-short file.
	short := filepath.Join(t.TempDir(), "short")
	if err := writeBytes(short, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short); err == nil {
		t.Fatal("Open of truncated file succeeded")
	}
}

func TestRecoverRollsBackCrashedSuperstep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.gpvf")
	f, err := Create(path, 3, func(v int64) (uint64, bool) { return uint64(v + 1), true })
	if err != nil {
		t.Fatal(err)
	}
	// Superstep 0 completes: all values doubled.
	f.Begin(0, true)
	for v := int64(0); v < 3; v++ {
		f.Store(UpdateCol(0), v, Pack(uint64(v+1)*2, false))
	}
	f.Commit(0, true, true)
	// Superstep 1 crashes midway: vertex 0 got a partial update, and a
	// dispatcher already consumed vertex 1's fresh mark.
	f.Begin(1, true)
	f.Store(UpdateCol(1), 0, Pack(12345, false))
	d := DispatchCol(1)
	f.Store(d, 1, f.Load(d, 1)|StaleBit)
	f.Sync()
	f.Close() // "crash": state still running on disk

	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if !g.InProgress() {
		t.Fatal("crashed file not marked in progress")
	}
	step, err := g.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if step != 1 {
		t.Fatalf("Recover resumes at %d, want 1", step)
	}
	// State must equal end of superstep 0: values 2, 4, 6, all fresh in
	// the dispatch column of superstep 1.
	for v := int64(0); v < 3; v++ {
		slot := g.Load(DispatchCol(1), v)
		if Payload(slot) != uint64(v+1)*2 {
			t.Fatalf("vertex %d payload = %d, want %d", v, Payload(slot), (v+1)*2)
		}
		if Stale(slot) {
			t.Fatalf("vertex %d not re-activated", v)
		}
		if !Stale(g.Load(UpdateCol(1), v)) || Payload(g.Load(UpdateCol(1), v)) != uint64(v+1)*2 {
			t.Fatalf("vertex %d update column not reset: %#x", v, g.Load(UpdateCol(1), v))
		}
	}
}

func TestRecoverOnCleanFileIsNoop(t *testing.T) {
	f := create(t, 2, nil)
	f.Begin(0, true)
	f.Store(UpdateCol(0), 0, Pack(9, false))
	f.Commit(0, true, true)
	step, err := f.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if step != 1 {
		t.Fatalf("Recover on clean file = %d, want epoch 1", step)
	}
	if f.Value(0) != 9 {
		t.Fatal("Recover on clean file disturbed values")
	}
}

// Property: Pack/Stale/Payload are mutually consistent for any payload.
func TestPackProperty(t *testing.T) {
	fn := func(payload uint64, stale bool) bool {
		s := Pack(payload, stale)
		return Stale(s) == stale && Payload(s) == payload&PayloadMask
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after any sequence of updates with commits, Value(v) returns
// the last written payload for every vertex.
func TestValueTracksLastWriteProperty(t *testing.T) {
	type step struct {
		Vertex  uint8
		Payload uint32
		Update  bool
	}
	fn := func(steps []step) bool {
		const n = 8
		f, err := Create(filepath.Join(t.TempDir(), "p.gpvf"), n, func(v int64) (uint64, bool) { return 0, true })
		if err != nil {
			return false
		}
		defer f.Close()
		want := make([]uint64, n)
		for i, s := range steps {
			st := int64(i)
			if err := f.Begin(st, true); err != nil {
				return false
			}
			if s.Update {
				v := int64(s.Vertex % n)
				f.Store(UpdateCol(st), v, Pack(uint64(s.Payload), false))
				want[v] = uint64(s.Payload)
			}
			if err := f.Commit(st, true, true); err != nil {
				return false
			}
		}
		for v := int64(0); v < n; v++ {
			if f.Value(v) != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestValuesSnapshotAndAccessors(t *testing.T) {
	f := create(t, 3, func(v int64) (uint64, bool) { return uint64(v * 10), true })
	got := f.Values()
	want := []uint64{0, 10, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if f.Path() == "" {
		t.Fatal("Path is empty")
	}
	if err := f.AdviseRandom(); err != nil {
		t.Fatalf("AdviseRandom: %v", err)
	}
}

func TestOpenRejectsWrongMagicAndVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.gpvf")
	f, err := Create(path, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	badPath := filepath.Join(dir, "bad-magic")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badPath); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Corrupt the version.
	bad = append([]byte(nil), raw...)
	bad[4] = 99
	badPath = filepath.Join(dir, "bad-version")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badPath); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated slot region.
	badPath = filepath.Join(dir, "truncated")
	if err := os.WriteFile(badPath, raw[:len(raw)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badPath); err == nil {
		t.Fatal("truncated slots accepted")
	}
}

// Property: for any sequence of supersteps with random updates and a
// crash at a random point, Recover restores exactly the state of the last
// committed superstep: payloads match, and — because the active-set
// snapshot Begin persisted survives a clean-close "crash" — recovery is
// exact, re-activating precisely the vertices that were active when the
// interrupted superstep began.
func TestRecoverRestoresLastCommitProperty(t *testing.T) {
	type step struct {
		Vertex  uint8
		Payload uint16
		Update  bool
	}
	fn := func(steps []step, crashAtRaw uint8) bool {
		if len(steps) == 0 {
			return true
		}
		const n = 6
		dir := t.TempDir()
		path := filepath.Join(dir, "p.gpvf")
		f, err := Create(path, n, func(v int64) (uint64, bool) { return uint64(v), true })
		if err != nil {
			return false
		}
		want := make([]uint64, n)
		for v := range want {
			want[v] = uint64(v)
		}
		crashAt := int(crashAtRaw) % len(steps)
		for i, s := range steps {
			st := int64(i)
			// The active set Begin will snapshot: the fresh flags of the
			// dispatch column entering this superstep.
			active := make([]bool, n)
			for v := int64(0); v < n; v++ {
				active[v] = !Stale(f.Load(DispatchCol(st), v))
			}
			if err := f.Begin(st, true); err != nil {
				return false
			}
			if i == crashAt {
				// Partial superstep: an update may land, then we "crash".
				if s.Update {
					f.Store(UpdateCol(st), int64(s.Vertex%n), Pack(uint64(s.Payload), false))
				}
				f.Close()
				g, err := Open(path)
				if err != nil {
					return false
				}
				defer g.Close()
				resume, err := g.Recover()
				if err != nil || resume != st {
					return false
				}
				if g.LastRecovery() != "exact" {
					return false
				}
				d := DispatchCol(st)
				for v := int64(0); v < n; v++ {
					slot := g.Load(d, v)
					if Payload(slot) != want[v] || Stale(slot) == active[v] {
						return false
					}
					if !Stale(g.Load(UpdateCol(st), v)) {
						return false
					}
				}
				return true
			}
			if s.Update {
				v := int64(s.Vertex % n)
				f.Store(UpdateCol(st), v, Pack(uint64(s.Payload), false))
				want[v] = uint64(s.Payload)
			}
			if err := f.Commit(st, true, true); err != nil {
				return false
			}
		}
		f.Close()
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRewindUncommitsSuperstep pins the contract cluster recovery leans
// on: Rewind(step) on a file that just committed step must step the
// epoch back, discard the step's updates, and restore the dispatch
// column's active set exactly — so re-running the superstep regenerates
// the original message stream and lands on the original answer.
func TestRewindUncommitsSuperstep(t *testing.T) {
	f := create(t, 2, func(v int64) (uint64, bool) { return uint64(10 + v), true })
	if err := f.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	f.Store(UpdateCol(0), 0, Pack(99, false)) // vertex 0 updated, vertex 1 idle
	if err := f.Commit(0, true, true); err != nil {
		t.Fatal(err)
	}

	if err := f.Rewind(1); err == nil {
		t.Fatal("Rewind with wrong step succeeded")
	}
	if err := f.Rewind(0); err != nil {
		t.Fatal(err)
	}
	if f.Epoch() != 0 || f.InProgress() {
		t.Fatalf("after rewind: epoch=%d inProgress=%v, want epoch 0, idle", f.Epoch(), f.InProgress())
	}
	// The committed update is gone and both vertices are active again,
	// exactly as Begin(0) left them.
	d, u := DispatchCol(0), UpdateCol(0)
	for v := int64(0); v < 2; v++ {
		if s := f.Load(d, v); Stale(s) || Payload(s) != uint64(10+v) {
			t.Fatalf("dispatch slot %d after rewind = %#x, want fresh %d", v, s, 10+v)
		}
		if s := f.Load(u, v); !Stale(s) || Payload(s) != uint64(10+v) {
			t.Fatalf("update slot %d after rewind = %#x, want stale %d", v, s, 10+v)
		}
	}

	// The re-run commits the same answer as the first attempt.
	if err := f.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	f.Store(UpdateCol(0), 0, Pack(99, false))
	if err := f.Commit(0, true, true); err != nil {
		t.Fatal(err)
	}
	if f.Value(0) != 99 || f.Value(1) != 11 {
		t.Fatalf("re-run values = %v, want [99 11]", f.Values())
	}
}

// TestRewindRestoresPartialActiveSet rewinds a superstep whose active
// set was a strict subset: the restored dispatch flags must match the
// subset, not conservatively re-activate everything.
func TestRewindRestoresPartialActiveSet(t *testing.T) {
	f := create(t, 2, func(v int64) (uint64, bool) { return uint64(10 + v), true })
	f.Begin(0, true)
	f.Store(UpdateCol(0), 0, Pack(99, false))
	f.Commit(0, true, true)
	// Entering superstep 1 only vertex 0 is active.
	f.Begin(1, true)
	f.Store(UpdateCol(1), 0, Pack(100, false))
	f.Commit(1, true, true)

	if err := f.Rewind(1); err != nil {
		t.Fatal(err)
	}
	d := DispatchCol(1)
	if s := f.Load(d, 0); Stale(s) || Payload(s) != 99 {
		t.Fatalf("active vertex after rewind = %#x, want fresh 99", s)
	}
	if s := f.Load(d, 1); !Stale(s) || Payload(s) != 11 {
		t.Fatalf("idle vertex after rewind = %#x, want stale 11", s)
	}
}

// TestRewindRejectsInProgress refuses to rewind across an open
// superstep; Rollback/Recover own that state.
func TestRewindRejectsInProgress(t *testing.T) {
	f := create(t, 1, nil)
	f.Begin(0, true)
	f.Commit(0, true, true)
	f.Begin(1, true)
	if err := f.Rewind(0); err == nil {
		t.Fatal("Rewind of an in-progress file succeeded")
	}
}
