package vertexfile

import (
	"encoding/binary"
	"fmt"

	"repro/internal/diskio"
)

// Verify performs a non-mutating integrity check of the value file at
// path — the scrubber's read side. Unlike Open, which maps the file
// writable and rolls back a torn header on the spot, Verify never
// writes: it reads the whole file through the diskio layer (so seeded
// bit-rot fires here) and re-derives every sealed invariant.
//
// The return contract mirrors what the caller should do:
//
//   - nil: the file is sealed and its column digest matches — healthy.
//   - nil with VerifyState "running"/"torn": the file records an
//     interrupted superstep; that is crash-recovery's job (Open +
//     Recover), not the scrubber's, and its bytes cannot be judged
//     against a seal that was never completed.
//   - an error matching diskio.ErrCorrupt: the sealed dispatch column
//     does not match its digest, or the structure is unparseable —
//     at-rest corruption Open would reject. Quarantine and repair.
//   - any other error: the read itself failed (EIO); the disk, not the
//     data, is the problem.
func Verify(path string) error {
	_, err := VerifyState(path)
	return err
}

// VerifyState is Verify with the file's observed state: "sealed",
// "running" (mid-superstep, skip), "torn" (awaiting rollback, skip).
// The state is only meaningful when err is nil.
func VerifyState(path string) (string, error) {
	b, err := diskio.ReadFile(path)
	if err != nil {
		return "", err
	}
	if int64(len(b)) < headerBytes {
		return "", fmt.Errorf("vertexfile: %s: truncated header: %w", path, diskio.ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(b[0:]) != fileMagic {
		return "", fmt.Errorf("vertexfile: %s: bad magic: %w", path, diskio.ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != fileVersion {
		return "", fmt.Errorf("vertexfile: %s: unsupported version %d: %w", path, v, diskio.ErrCorrupt)
	}
	n := int64(binary.LittleEndian.Uint64(b[8:]))
	if n <= 0 || n > maxVertices {
		return "", fmt.Errorf("vertexfile: %s: absurd vertex count %d: %w", path, n, diskio.ErrCorrupt)
	}
	if want := headerBytes + 8*bitmapWords(n) + 16*n; int64(len(b)) < want {
		return "", fmt.Errorf("vertexfile: %s: %d bytes, want %d for %d vertices: %w", path, len(b), want, n, diskio.ErrCorrupt)
	}

	header := make([]uint64, headerWords)
	for i := range header {
		header[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	sum := uint64(fnvOffset64)
	for i, w := range header {
		if i == hdrSum {
			continue
		}
		sum = fnvWord(sum, w)
	}
	epoch := int64(header[hdrEpoch])
	state := header[hdrState]
	if sum != header[hdrSum] || (state != stateClean && state != stateRunning) || epoch < 0 || epoch > maxEpoch {
		// A torn header is crash recovery's province: the seal never
		// completed, so there is no sealed claim for the scrubber to
		// falsify. (Bit-rot landing in the header also surfaces here —
		// Open's rollback handles it conservatively but correctly.)
		return "torn", nil
	}
	if state == stateRunning {
		return "running", nil
	}

	if want := header[hdrColDigest]; want != 0 {
		col := int64(DispatchCol(epoch))
		slotsOff := headerBytes + 8*bitmapWords(n)
		h := uint64(fnvOffset64)
		for v := int64(0); v < n; v++ {
			slot := binary.LittleEndian.Uint64(b[slotsOff+8*(2*v+col):])
			h = fnvWord(h, Payload(slot))
		}
		if h != want {
			return "", fmt.Errorf("vertexfile: %s: column digest mismatch (%#x, header sealed %#x): %w",
				path, h, want, diskio.ErrCorrupt)
		}
	}
	return "sealed", nil
}
