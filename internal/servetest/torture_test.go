package servetest

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var (
	serveBin  string
	graphsDir string
)

// TestMain compiles cmd/gpsa-serve and generates the torture graphs
// once for the whole package. Skipped under -short.
func TestMain(m *testing.M) {
	flag.Parse()
	dir := ""
	if !testing.Short() {
		var err error
		if dir, err = os.MkdirTemp("", "gpsa-servetest-*"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fatal := func(err error) {
			os.RemoveAll(dir)
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if serveBin, err = buildServe(dir); err != nil {
			fatal(err)
		}
		graphsDir = filepath.Join(dir, "graphs")
		if _, _, err = writeGraphs(graphsDir); err != nil {
			fatal(err)
		}
	}
	code := m.Run()
	if dir != "" {
		os.RemoveAll(dir)
	}
	os.Exit(code)
}

// tortureSpecs are the concurrent jobs of the kill/resume scenarios:
// mixed programs over both graphs, dispatchers pinned to 1 so the
// float-valued programs commit bit-identical values run over run.
func tortureSpecs() []map[string]any {
	return []map[string]any{
		{"graph": "torture.gpsa", "algo": "pagerank", "supersteps": 5, "dispatchers": 1},
		{"graph": "torture.gpsa", "algo": "deltapagerank", "supersteps": 5, "dispatchers": 1},
		{"graph": "torture.gpsa", "algo": "bfs", "root": 0, "dispatchers": 1},
		{"graph": "torture-sym.gpsa", "algo": "cc", "dispatchers": 1},
		{"graph": "torture-sym.gpsa", "algo": "pagerank", "supersteps": 5, "dispatchers": 1},
		{"graph": "torture.gpsa", "algo": "bfs", "root": 1, "dispatchers": 1},
	}
}

// stallFault keeps every job slow enough that kills and drains land
// mid-run: each computer message sleeps 20ms (results are unaffected —
// stalls delay, they do not perturb).
const stallFault = "site=core.computer.stall,count=-1,delay=20ms"

// submitAll submits specs in order and returns the job IDs.
func submitAll(t *testing.T, s *server, specs []map[string]any) []string {
	t.Helper()
	var ids []string
	for i, spec := range specs {
		code, j, _, err := s.submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if code != 202 {
			t.Fatalf("submit %d = %d, want 202", i, code)
		}
		ids = append(ids, j.ID)
	}
	return ids
}

// waitRunning polls until at least n jobs report status running.
func waitRunning(t *testing.T, s *server, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		jobs, err := s.listJobs()
		if err == nil {
			running := 0
			for _, j := range jobs {
				if j.Status == "running" {
					running++
				}
			}
			if running >= n {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d running jobs; stderr:\n%s", n, s.stderrText())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitAllTerminal polls until every listed job is terminal, then
// returns the jobs keyed by ID.
func waitAllTerminal(t *testing.T, s *server, ids []string, timeout time.Duration) map[string]job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		jobs, err := s.listJobs()
		if err == nil {
			byID := make(map[string]job, len(jobs))
			done := 0
			for _, j := range jobs {
				byID[j.ID] = j
			}
			for _, id := range ids {
				if j, ok := byID[id]; ok && terminalStatus(j.Status) {
					done++
				}
			}
			if done == len(ids) {
				return byID
			}
		}
		if time.Now().After(deadline) {
			jobs, _ := s.listJobs()
			t.Fatalf("jobs never all finished: %+v\nstderr:\n%s", jobs, s.stderrText())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runBaseline runs the torture specs on an undisturbed server and
// returns each job's sealed file state — the bits every tortured
// schedule must reproduce exactly.
func runBaseline(t *testing.T, specs []map[string]any) map[string]fileState {
	t.Helper()
	jobsDir := filepath.Join(t.TempDir(), "jobs-baseline")
	s, err := startServer(serverConfig{bin: serveBin, graphDir: graphsDir, jobsDir: jobsDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.kill()
	ids := submitAll(t, s, specs)
	byID := waitAllTerminal(t, s, ids, 120*time.Second)
	states := make(map[string]fileState, len(ids))
	for _, id := range ids {
		j := byID[id]
		if j.Status != "completed" {
			t.Fatalf("baseline job %s finished %q (%s)", id, j.Status, j.Error)
		}
		st, err := readState(j.Values)
		if err != nil {
			t.Fatal(err)
		}
		states[id] = st
	}
	if code, err := s.terminate(); err != nil || code != 0 {
		t.Fatalf("baseline drain exit = %d (%v)", code, err)
	}
	return states
}

// TestServeSmoke is the make-check slice: submit, complete, cache-hit,
// drain with exit 0. No kills, no faults.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("servetest harness skipped in -short mode")
	}
	jobsDir := filepath.Join(t.TempDir(), "jobs")
	s, err := startServer(serverConfig{bin: serveBin, graphDir: graphsDir, jobsDir: jobsDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.kill()

	spec := map[string]any{"graph": "torture.gpsa", "algo": "pagerank", "supersteps": 5, "dispatchers": 1}
	ids := submitAll(t, s, []map[string]any{spec, {"graph": "torture.gpsa", "algo": "bfs", "root": 0, "dispatchers": 1}})
	byID := waitAllTerminal(t, s, ids, 60*time.Second)
	for _, id := range ids {
		if byID[id].Status != "completed" {
			t.Fatalf("job %s finished %q (%s)", id, byID[id].Status, byID[id].Error)
		}
	}
	// Identical resubmission is a cache hit.
	code, j, _, err := s.submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 || !j.Cached {
		t.Fatalf("resubmission = %d cached=%v, want 200 from cache", code, j.Cached)
	}
	if ready, _ := s.getStatus("/readyz"); ready != 200 {
		t.Fatalf("/readyz = %d", ready)
	}
	m, err := s.metricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if m["serve.admitted"] < 2 || m["serve.completed"] < 2 || m["serve.cache.hits"] < 1 {
		t.Fatalf("metrics %v missing admitted/completed/cache.hits", m)
	}
	if code, err := s.terminate(); err != nil || code != 0 {
		t.Fatalf("drain exit = %d (%v); stderr:\n%s", code, err, s.stderrText())
	}
	if !strings.Contains(s.stderrText(), "drained cleanly") {
		t.Fatalf("drain not confirmed; stderr:\n%s", s.stderrText())
	}
}

// TestServeTortureKillResume is the headline durability scenario:
// SIGKILL the server with >= 4 jobs in flight, twice over (the second
// kill lands during resume), and require the third generation to finish
// every job bit-identical to an undisturbed run.
func TestServeTortureKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("servetest harness skipped in -short mode")
	}
	specs := tortureSpecs()
	baseline := runBaseline(t, specs)

	jobsDir := filepath.Join(t.TempDir(), "jobs")

	// Generation 1: stalled jobs, SIGKILL with >= 4 running.
	s1, err := startServer(serverConfig{bin: serveBin, graphDir: graphsDir, jobsDir: jobsDir, fault: stallFault})
	if err != nil {
		t.Fatal(err)
	}
	ids := submitAll(t, s1, specs)
	waitRunning(t, s1, 4, 30*time.Second)
	s1.kill()
	t.Log("generation 1 SIGKILLed with >= 4 jobs in flight")

	// Generation 2: resume under the same stall, SIGKILL again mid-resume
	// — recovery must itself be recoverable.
	s2, err := startServer(serverConfig{bin: serveBin, graphDir: graphsDir, jobsDir: jobsDir, resume: true, fault: stallFault})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s2, 1, 30*time.Second)
	m2, err := s2.metricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if m2["serve.resumed"] < 4 {
		t.Fatalf("generation 2 resumed %d jobs, want >= 4 (the in-flight kills)", m2["serve.resumed"])
	}
	s2.kill()
	t.Log("generation 2 SIGKILLed mid-resume")

	// Generation 3: undisturbed resume runs everything to completion.
	s3, err := startServer(serverConfig{bin: serveBin, graphDir: graphsDir, jobsDir: jobsDir, resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.kill()
	byID := waitAllTerminal(t, s3, ids, 120*time.Second)
	m3, err := s3.metricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if m3["serve.resumed"] < 1 {
		t.Fatalf("generation 3 resumed %d jobs, want >= 1", m3["serve.resumed"])
	}
	for _, id := range ids {
		j := byID[id]
		if j.Status != "completed" {
			t.Fatalf("job %s finished %q (%s) after double kill + resume", id, j.Status, j.Error)
		}
		st, err := readState(j.Values)
		if err != nil {
			t.Fatal(err)
		}
		if !st.equal(baseline[id]) {
			t.Fatalf("job %s: resumed values differ from undisturbed baseline (epoch %d vs %d)",
				id, st.epoch, baseline[id].epoch)
		}
	}
	if code, err := s3.terminate(); err != nil || code != 0 {
		t.Fatalf("final drain exit = %d (%v)", code, err)
	}
}

// TestServeTortureOverloadDrain floods a capacity-2 queue behind one
// worker: the burst must shed with 429 + Retry-After (bounded memory),
// the SIGTERM drain must exit 0, and the next generation must resume
// the journaled backlog to completion.
func TestServeTortureOverloadDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("servetest harness skipped in -short mode")
	}
	jobsDir := filepath.Join(t.TempDir(), "jobs")
	s, err := startServer(serverConfig{
		bin: serveBin, graphDir: graphsDir, jobsDir: jobsDir, fault: stallFault,
		extra: []string{"-queue-cap", "2", "-workers", "1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.kill()

	var admitted []string
	shed := 0
	for i := 0; i < 12; i++ {
		// Distinct epsilons keep every submission out of the result cache.
		code, j, hdr, err := s.submit(map[string]any{
			"graph": "torture.gpsa", "algo": "pagerank", "supersteps": 5,
			"dispatchers": 1, "epsilon": float64(i+1) / 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		switch code {
		case 202:
			admitted = append(admitted, j.ID)
		case 429:
			shed++
			if hdr.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("burst submit %d = %d", i, code)
		}
	}
	if shed == 0 {
		t.Fatal("12-job burst into a capacity-2 queue behind one stalled worker shed nothing")
	}
	t.Logf("burst: %d admitted, %d shed", len(admitted), shed)

	m, err := s.metricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if m["serve.admitted"] != int64(len(admitted)) || m["serve.shed"] != int64(shed) {
		t.Fatalf("metrics admitted=%d shed=%d, want %d/%d",
			m["serve.admitted"], m["serve.shed"], len(admitted), shed)
	}

	// SIGTERM drains: exit 0, journal keeps the backlog.
	code, err := s.terminate()
	if err != nil || code != 0 {
		t.Fatalf("drain exit = %d (%v); stderr:\n%s", code, err, s.stderrText())
	}

	s2, err := startServer(serverConfig{bin: serveBin, graphDir: graphsDir, jobsDir: jobsDir, resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.kill()
	byID := waitAllTerminal(t, s2, admitted, 120*time.Second)
	for _, id := range admitted {
		if byID[id].Status != "completed" {
			t.Fatalf("backlog job %s finished %q (%s)", id, byID[id].Status, byID[id].Error)
		}
	}
	m2, err := s2.metricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if m2["serve.resumed"] < 1 {
		t.Fatalf("drained backlog not resumed: metrics %v", m2)
	}
	if code, err := s2.terminate(); err != nil || code != 0 {
		t.Fatalf("second drain exit = %d (%v)", code, err)
	}
}

// TestServeTortureDeadline gives a stalled job a 150ms budget: it must
// end deadline_exceeded with a cleanly sealed, resumable value file — a
// checkpoint, not a zombie or a corpse.
func TestServeTortureDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("servetest harness skipped in -short mode")
	}
	jobsDir := filepath.Join(t.TempDir(), "jobs")
	s, err := startServer(serverConfig{bin: serveBin, graphDir: graphsDir, jobsDir: jobsDir, fault: stallFault})
	if err != nil {
		t.Fatal(err)
	}
	defer s.kill()

	code, j, _, err := s.submit(map[string]any{
		"graph": "torture.gpsa", "algo": "pagerank", "supersteps": 5,
		"dispatchers": 1, "deadline_ms": 50,
	})
	if err != nil || code != 202 {
		t.Fatalf("submit = %d (%v)", code, err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, err := s.getJob(j.ID)
		if err == nil && terminalStatus(cur.Status) {
			if cur.Status != "deadline_exceeded" {
				t.Fatalf("job finished %q (%s), want deadline_exceeded", cur.Status, cur.Error)
			}
			if _, err := readState(cur.Values); err != nil {
				t.Fatalf("deadline did not leave a sealed checkpoint: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never hit its deadline; stderr:\n%s", s.stderrText())
		}
		time.Sleep(10 * time.Millisecond)
	}
	m, err := s.metricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if m["serve.deadline_exceeded"] < 1 {
		t.Fatalf("serve.deadline_exceeded not counted: %v", m)
	}
	if code, err := s.terminate(); err != nil || code != 0 {
		t.Fatalf("drain exit = %d (%v)", code, err)
	}
}
