// Package servetest is the serving-layer torture harness: it runs the
// real cmd/gpsa-serve binary as a subprocess, floods it with concurrent
// jobs, SIGKILLs it mid-flight, restarts it with -resume-jobs, and
// asserts every job's final value file is bit-identical to an
// undisturbed run — plus overload (429 shedding), SIGTERM draining, and
// deadline-budget scenarios.
//
// The package holds only the harness plumbing; the scenarios live in
// its tests (make torture; the smoke slice runs in make check).
package servetest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vertexfile"
)

// moduleRoot walks up from the working directory to the directory
// holding go.mod, which is where `go build ./cmd/gpsa-serve` must run.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("servetest: go.mod not found above working directory")
		}
		dir = parent
	}
}

// buildServe compiles cmd/gpsa-serve into dir and returns the binary path.
func buildServe(dir string) (string, error) {
	root, err := moduleRoot()
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "gpsa-serve")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/gpsa-serve")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("servetest: building gpsa-serve: %v\n%s", err, out)
	}
	return bin, nil
}

// writeGraphs generates the torture inputs under graphDir: a random
// directed graph for PageRank/BFS and its symmetrized twin for CC,
// named by the relative paths job specs use. Fixed seeds keep every run
// of the harness on the same graphs.
func writeGraphs(graphDir string) (directed, symmetric string, err error) {
	if err := os.MkdirAll(graphDir, 0o755); err != nil {
		return "", "", err
	}
	edges, err := gen.ErdosRenyi(300, 1500, 42, false)
	if err != nil {
		return "", "", err
	}
	g, err := graph.FromEdges(edges, 300, false)
	if err != nil {
		return "", "", err
	}
	directed = "torture.gpsa"
	if err := graph.WriteFile(filepath.Join(graphDir, directed), g); err != nil {
		return "", "", err
	}
	symmetric = "torture-sym.gpsa"
	if err := graph.WriteFile(filepath.Join(graphDir, symmetric), g.Symmetrize()); err != nil {
		return "", "", err
	}
	return directed, symmetric, nil
}

// server is one running gpsa-serve subprocess.
type server struct {
	cmd  *exec.Cmd
	addr string

	mu     sync.Mutex
	stderr bytes.Buffer

	waitOnce sync.Once
	waitErr  error
}

// serverConfig parameterizes startServer.
type serverConfig struct {
	bin      string
	graphDir string
	jobsDir  string
	resume   bool
	fault    string   // GPSA_FAULT spec, "" = none
	extra    []string // additional flags
}

// startServer launches gpsa-serve on an ephemeral port and waits until
// it reports its listen address on stderr.
func startServer(cfg serverConfig) (*server, error) {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-graphs", cfg.graphDir,
		"-jobs", cfg.jobsDir,
		"-v",
	}
	if cfg.resume {
		args = append(args, "-resume-jobs")
	}
	args = append(args, cfg.extra...)
	cmd := exec.Command(cfg.bin, args...)
	cmd.Env = append(os.Environ(), "GPSA_FAULT="+cfg.fault)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	s := &server{cmd: cmd}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			s.mu.Lock()
			s.stderr.WriteString(line + "\n")
			s.mu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := strings.Fields(line[i+len("listening on "):])[0]
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()

	select {
	case addr := <-addrCh:
		s.addr = addr
	case <-time.After(15 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		return nil, fmt.Errorf("servetest: server never reported its address; stderr:\n%s", s.stderrText())
	}
	return s, nil
}

func (s *server) stderrText() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stderr.String()
}

// kill SIGKILLs the server and reaps it.
func (s *server) kill() {
	s.cmd.Process.Kill() //nolint:errcheck
	s.wait()             //nolint:errcheck
}

// terminate sends SIGTERM (the drain signal) and returns the exit code.
func (s *server) terminate() (int, error) {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return -1, err
	}
	err := s.wait()
	if err == nil {
		return 0, nil
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode(), nil
	}
	return -1, err
}

func (s *server) wait() error {
	s.waitOnce.Do(func() { s.waitErr = s.cmd.Wait() })
	return s.waitErr
}

// job mirrors the server's job JSON (the fields scenarios assert on).
type job struct {
	ID       string         `json:"id"`
	Status   string         `json:"status"`
	Error    string         `json:"error"`
	Attempts int            `json:"attempts"`
	Cached   bool           `json:"cached"`
	Replayed bool           `json:"replayed"`
	Values   string         `json:"values"`
	Result   map[string]any `json:"result"`
}

// submit POSTs a job spec and decodes the response.
func (s *server) submit(spec map[string]any) (int, job, http.Header, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, job{}, nil, err
	}
	resp, err := http.Post("http://"+s.addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, job{}, nil, err
	}
	defer resp.Body.Close()
	var j job
	data, _ := io.ReadAll(resp.Body)
	json.Unmarshal(data, &j) //nolint:errcheck — error bodies aren't jobs
	return resp.StatusCode, j, resp.Header, nil
}

// getJob fetches one job's state.
func (s *server) getJob(id string) (job, error) {
	resp, err := http.Get("http://" + s.addr + "/v1/jobs/" + id)
	if err != nil {
		return job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return job{}, fmt.Errorf("servetest: GET job %s: %d", id, resp.StatusCode)
	}
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return job{}, err
	}
	return j, nil
}

// listJobs fetches every job the server knows.
func (s *server) listJobs() ([]job, error) {
	resp, err := http.Get("http://" + s.addr + "/v1/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var jobs []job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// metricsSnapshot fetches /metrics as a name -> value map.
func (s *server) metricsSnapshot() (map[string]int64, error) {
	resp, err := http.Get("http://" + s.addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, sc.Err()
}

// getStatus fetches a bare endpoint's HTTP status (healthz/readyz).
func (s *server) getStatus(path string) (int, error) {
	resp, err := http.Get("http://" + s.addr + path)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode, nil
}

// terminalStatus reports whether a job needs no further processing.
func terminalStatus(status string) bool {
	switch status {
	case "completed", "failed", "deadline_exceeded":
		return true
	}
	return false
}

// fileState is the durable outcome of a job: every vertex payload plus
// the sealed progress counters — the exact data bit-identical resume is
// judged on.
type fileState struct {
	values    []uint64
	epoch     int64
	converged bool
}

// readState opens a job's value file and snapshots it. The file must be
// cleanly sealed.
func readState(path string) (fileState, error) {
	vf, err := vertexfile.Open(path)
	if err != nil {
		return fileState{}, err
	}
	defer vf.Close()
	if vf.InProgress() {
		return fileState{}, fmt.Errorf("servetest: %s not cleanly sealed", path)
	}
	return fileState{values: vf.Values(), epoch: vf.Epoch(), converged: vf.Converged()}, nil
}

// equal reports whether two file states are bit-identical.
func (s fileState) equal(o fileState) bool {
	if s.epoch != o.epoch || s.converged != o.converged || len(s.values) != len(o.values) {
		return false
	}
	for i := range s.values {
		if s.values[i] != o.values[i] {
			return false
		}
	}
	return true
}
