package crashtest

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/vertexfile"
)

var (
	gpsaBin        string
	directedGraph  string
	symmetricGraph string
)

// TestMain compiles cmd/gpsa and generates the torture graphs once for
// the whole package. Skipped under -short, where only the in-process
// regression tests run.
func TestMain(m *testing.M) {
	flag.Parse()
	dir := ""
	if !testing.Short() {
		var err error
		if dir, err = os.MkdirTemp("", "gpsa-crashtest-*"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fatal := func(err error) {
			os.RemoveAll(dir)
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if gpsaBin, err = buildGPSA(dir); err != nil {
			fatal(err)
		}
		if directedGraph, symmetricGraph, err = writeGraphs(dir); err != nil {
			fatal(err)
		}
	}
	code := m.Run()
	if dir != "" {
		os.RemoveAll(dir)
	}
	os.Exit(code)
}

// killSites are the fault sites a torture cycle may park a SIGKILL at —
// every phase of the durability state machine.
var killSites = []string{
	fault.SiteKillBeginActive,
	fault.SiteKillDispatch,
	fault.SiteKillBarrier,
	fault.SiteKillCommitColumns,
	fault.SiteKillCommitSeal,
	fault.SiteKillCommitDone,
}

// resumable reports whether path currently holds a value file a -resume
// run can continue from (a kill before Create finished leaves it
// missing or truncated).
func resumable(path string) bool {
	vf, err := vertexfile.Open(path)
	if err != nil {
		return false
	}
	vf.Close()
	return true
}

// runBaseline executes one uninterrupted run into its own value file and
// returns the sealed state every tortured run must reproduce exactly.
func runBaseline(t *testing.T, graphPath string, algoArgs []string, dir string) fileState {
	t.Helper()
	values := filepath.Join(dir, "baseline.gpvf")
	args := append([]string{"-graph", graphPath, "-dispatchers", "1", "-values", values}, algoArgs...)
	res, err := runBinary(gpsaBin, args, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.exitCode != 0 {
		t.Fatalf("baseline run exited %d\nstdout:\n%s\nstderr:\n%s", res.exitCode, res.stdout, res.stderr)
	}
	state, err := readState(values)
	if err != nil {
		t.Fatal(err)
	}
	return state
}

// TestTortureKillResume is the kill-torture acceptance test: for each
// shipped algorithm it SIGKILLs the gpsa binary at randomized supersteps
// and commit-protocol phases (plus wall-clock jitter kills), resumes
// with -resume, and requires the surviving value file to end bit-identical
// to the uninterrupted baseline. 5 cases x 7 kills = 35 randomized
// kill points per run of the harness. The pagerank case runs the default
// message path (adaptive source-side accumulation — dense, since
// PageRank keeps every vertex active); pagerank-sparse pins the sparse
// accumulator so both segment paths face the kill schedule;
// pagerank-prefetch forces the async CSR prefetcher on, so kills land
// while madvise windows are in flight ahead of the edge cursor.
func TestTortureKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess torture harness")
	}
	cases := []struct {
		name  string
		graph func() string
		args  []string
		seed  int64
	}{
		{"pagerank", func() string { return directedGraph }, []string{"-algo", "pagerank", "-supersteps", "12"}, 101},
		{"pagerank-sparse", func() string { return directedGraph }, []string{"-algo", "pagerank", "-supersteps", "12", "-accum", "sparse"}, 404},
		{"pagerank-prefetch", func() string { return directedGraph }, []string{"-algo", "pagerank", "-supersteps", "12", "-prefetch"}, 505},
		{"bfs", func() string { return directedGraph }, []string{"-algo", "bfs", "-root", "0"}, 202},
		{"cc", func() string { return symmetricGraph }, []string{"-algo", "cc"}, 303},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tortureCase(t, tc.graph(), tc.args, 7, tc.seed)
		})
	}
}

func tortureCase(t *testing.T, graphPath string, algoArgs []string, wantKills int, seed int64) {
	dir := t.TempDir()
	baseline := runBaseline(t, graphPath, algoArgs, dir)

	values := filepath.Join(dir, "torture.gpvf")
	commonArgs := append([]string{"-graph", graphPath, "-dispatchers", "1", "-values", values}, algoArgs...)
	rng := rand.New(rand.NewSource(seed))
	kills, resumes := 0, 0
	for attempt := 0; kills < wantKills; attempt++ {
		if attempt > 60 {
			t.Fatalf("only %d of %d kills after %d attempts", kills, wantKills, attempt)
		}
		args := commonArgs
		if resumable(values) {
			args = append(append([]string{}, commonArgs...), "-resume")
			resumes++
		} else {
			os.Remove(values) // a kill before Create sealed anything: start fresh
		}
		var spec string
		var killAfter time.Duration
		if rng.Intn(4) == 0 {
			// Wall-clock jitter: SIGKILL from outside at a random instant,
			// landing between fault sites (mid-mmap-write, mid-page-fault...).
			killAfter = time.Duration(10+rng.Intn(120)) * time.Millisecond
		} else {
			spec = fmt.Sprintf("site=%s,after=%d", killSites[rng.Intn(len(killSites))], 1+rng.Intn(3))
		}
		res, err := runBinary(gpsaBin, args, spec, killAfter, 0)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case res.killed:
			kills++
		case res.exitCode == 0:
			// Finished before the kill fired. The completed state must
			// already match the baseline; restart fresh for more kills.
			state, rerr := readState(values)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if !state.equal(baseline) {
				t.Fatalf("completed torture run diverged from baseline: epoch %d vs %d, converged %v vs %v",
					state.epoch, baseline.epoch, state.converged, baseline.converged)
			}
			os.Remove(values)
		default:
			t.Fatalf("unexpected outcome (exit %d, plan %q, timer %v)\nstdout:\n%s\nstderr:\n%s",
				res.exitCode, spec, killAfter, res.stdout, res.stderr)
		}
	}

	// Drive the survivor to completion with clean resumes.
	for finished := false; !finished; {
		args := commonArgs
		wasResume := resumable(values)
		if wasResume {
			args = append(append([]string{}, commonArgs...), "-resume")
		} else {
			os.Remove(values)
		}
		res, err := runBinary(gpsaBin, args, "", 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.exitCode != 0 {
			t.Fatalf("final resume exited %d\nstdout:\n%s\nstderr:\n%s", res.exitCode, res.stdout, res.stderr)
		}
		if wasResume && !strings.Contains(res.stdout, "resumed at superstep") {
			t.Fatalf("resumed run did not report its resume point:\n%s", res.stdout)
		}
		finished = true
	}
	state, err := readState(values)
	if err != nil {
		t.Fatal(err)
	}
	if !state.equal(baseline) {
		t.Fatalf("after %d kills and %d resumes: final state diverged from baseline (epoch %d vs %d, converged %v vs %v)",
			kills, resumes, state.epoch, baseline.epoch, state.converged, baseline.converged)
	}
	t.Logf("%d SIGKILLs, %d resumes, final state bit-identical to baseline (epoch %d)", kills, resumes, state.epoch)
}

// TestInterruptSealsCleanly covers the graceful half of the contract:
// SIGINT mid-superstep must roll the in-flight superstep back, seal the
// value file clean, exit with the recoverable code, and print the exact
// resume command — and the resumed run must still match the
// uninterrupted baseline bit for bit.
func TestInterruptSealsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess torture harness")
	}
	dir := t.TempDir()
	algoArgs := []string{"-algo", "pagerank", "-supersteps", "12"}
	baseline := runBaseline(t, directedGraph, algoArgs, dir)

	values := filepath.Join(dir, "int.gpvf")
	args := append([]string{"-graph", directedGraph, "-dispatchers", "1", "-values", values}, algoArgs...)
	// Stall every computed message so superstep 0 is still in flight when
	// the SIGINT lands.
	res, err := runBinary(gpsaBin, args, "site="+fault.SiteComputerStall+",count=-1,delay=2ms", 0, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.exitCode != 3 {
		t.Fatalf("interrupted run exited %d, want 3\nstdout:\n%s\nstderr:\n%s", res.exitCode, res.stdout, res.stderr)
	}
	if !strings.Contains(res.stderr, "resume with:") {
		t.Fatalf("interrupted run did not print the resume command:\n%s", res.stderr)
	}
	vf, err := vertexfile.Open(values)
	if err != nil {
		t.Fatalf("value file not reopenable after SIGINT: %v", err)
	}
	if vf.InProgress() || vf.Torn() {
		vf.Close()
		t.Fatalf("SIGINT left the file unsealed (inProgress=%v torn=%v)", vf.InProgress(), vf.Torn())
	}
	vf.Close()

	res, err = runBinary(gpsaBin, append(append([]string{}, args...), "-resume"), "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.exitCode != 0 {
		t.Fatalf("resume after SIGINT exited %d\nstderr:\n%s", res.exitCode, res.stderr)
	}
	if !strings.Contains(res.stdout, "resumed at superstep") {
		t.Fatalf("resume output missing resume point:\n%s", res.stdout)
	}
	state, err := readState(values)
	if err != nil {
		t.Fatal(err)
	}
	if !state.equal(baseline) {
		t.Fatalf("resume after SIGINT diverged from baseline (epoch %d vs %d)", state.epoch, baseline.epoch)
	}
}

// TestExitCodes pins the documented exit code contract of cmd/gpsa.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess torture harness")
	}
	dir := t.TempDir()
	runExit := func(args ...string) int {
		t.Helper()
		res, err := runBinary(gpsaBin, args, "", 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.exitCode
	}
	if got := runExit(); got != 2 {
		t.Errorf("no -graph: exit %d, want 2", got)
	}
	if got := runExit("-graph", directedGraph, "-algo", "no-such-algorithm"); got != 2 {
		t.Errorf("unknown algorithm: exit %d, want 2", got)
	}
	if got := runExit("-graph", directedGraph, "-resume"); got != 2 {
		t.Errorf("-resume without -values: exit %d, want 2", got)
	}
	garbage := filepath.Join(dir, "garbage.gpvf")
	if err := os.WriteFile(garbage, []byte(strings.Repeat("not a value file ", 64)), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := runExit("-graph", directedGraph, "-algo", "pagerank", "-values", garbage, "-resume"); got != 4 {
		t.Errorf("-resume from garbage: exit %d, want 4", got)
	}
}

// TestTortureKillDuringResume closes the recovery loop on itself: for
// each shipped algorithm the binary is killed once to leave a resumable
// survivor, then killed AGAIN while a -resume run is replaying it —
// recovery must itself be recoverable, any number of generations deep —
// and the final clean resume must still match the uninterrupted
// baseline bit for bit.
func TestTortureKillDuringResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess torture harness")
	}
	cases := []struct {
		name  string
		graph func() string
		args  []string
		seed  int64
	}{
		{"pagerank", func() string { return directedGraph }, []string{"-algo", "pagerank", "-supersteps", "12"}, 111},
		{"pagerank-sparse", func() string { return directedGraph }, []string{"-algo", "pagerank", "-supersteps", "12", "-accum", "sparse"}, 444},
		{"bfs", func() string { return directedGraph }, []string{"-algo", "bfs", "-root", "0"}, 222},
		{"cc", func() string { return symmetricGraph }, []string{"-algo", "cc"}, 333},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			killDuringResumeCase(t, tc.graph(), tc.args, 4, tc.seed)
		})
	}
}

// killDuringResumeCase drives wantResumeKills SIGKILLs that each land
// inside a -resume run (kills that land in fresh runs only serve to
// manufacture the resumable survivor).
func killDuringResumeCase(t *testing.T, graphPath string, algoArgs []string, wantResumeKills int, seed int64) {
	dir := t.TempDir()
	baseline := runBaseline(t, graphPath, algoArgs, dir)

	values := filepath.Join(dir, "resume-torture.gpvf")
	commonArgs := append([]string{"-graph", graphPath, "-dispatchers", "1", "-values", values}, algoArgs...)
	rng := rand.New(rand.NewSource(seed))
	resumeKills := 0
	for attempt := 0; resumeKills < wantResumeKills; attempt++ {
		if attempt > 80 {
			t.Fatalf("only %d of %d resume-kills after %d attempts", resumeKills, wantResumeKills, attempt)
		}
		args := commonArgs
		isResume := resumable(values)
		if isResume {
			args = append(append([]string{}, commonArgs...), "-resume")
		} else {
			os.Remove(values) // survivor lost: manufacture a new one first
		}
		var spec string
		var killAfter time.Duration
		if rng.Intn(4) == 0 {
			killAfter = time.Duration(5+rng.Intn(80)) * time.Millisecond
		} else {
			spec = fmt.Sprintf("site=%s,after=%d", killSites[rng.Intn(len(killSites))], 1+rng.Intn(3))
		}
		res, err := runBinary(gpsaBin, args, spec, killAfter, 0)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case res.killed:
			if isResume {
				resumeKills++
			}
		case res.exitCode == 0:
			// Finished before the kill fired: verify and restart fresh.
			state, rerr := readState(values)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if !state.equal(baseline) {
				t.Fatalf("completed run diverged from baseline (epoch %d vs %d)", state.epoch, baseline.epoch)
			}
			os.Remove(values)
		default:
			t.Fatalf("unexpected outcome (exit %d, plan %q, timer %v)\nstdout:\n%s\nstderr:\n%s",
				res.exitCode, spec, killAfter, res.stdout, res.stderr)
		}
	}

	// The multiply-killed survivor must still resume to the baseline.
	if !resumable(values) {
		t.Fatalf("survivor not resumable after %d resume-kills", resumeKills)
	}
	res, err := runBinary(gpsaBin, append(append([]string{}, commonArgs...), "-resume"), "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.exitCode != 0 {
		t.Fatalf("final resume exited %d\nstdout:\n%s\nstderr:\n%s", res.exitCode, res.stdout, res.stderr)
	}
	if !strings.Contains(res.stdout, "resumed at superstep") {
		t.Fatalf("final resume did not report its resume point:\n%s", res.stdout)
	}
	state, err := readState(values)
	if err != nil {
		t.Fatal(err)
	}
	if !state.equal(baseline) {
		t.Fatalf("after %d kills-during-resume: final state diverged from baseline (epoch %d vs %d, converged %v vs %v)",
			resumeKills, state.epoch, baseline.epoch, state.converged, baseline.converged)
	}
	t.Logf("%d SIGKILLs landed inside -resume runs; final state bit-identical to baseline (epoch %d)", resumeKills, state.epoch)
}
