// Package crashtest is GPSA's kill-torture harness: it runs the real
// cmd/gpsa binary as a subprocess, terminates it with SIGKILL at
// randomized supersteps and commit-protocol phases (via the kill.* fault
// sites carried in GPSA_FAULT, plus wall-clock jittered kills that land
// anywhere at all), restarts it with -resume, and asserts the final
// vertex values are bit-identical to an uninterrupted run.
//
// The package holds only the harness plumbing; the torture scenarios
// live in its tests (make torture).
package crashtest

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vertexfile"
)

// moduleRoot walks up from the working directory to the directory
// holding go.mod, which is where `go build ./cmd/gpsa` must run.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("crashtest: go.mod not found above working directory")
		}
		dir = parent
	}
}

// buildGPSA compiles cmd/gpsa into dir and returns the binary path.
func buildGPSA(dir string) (string, error) {
	root, err := moduleRoot()
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "gpsa")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/gpsa")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("crashtest: building gpsa: %v\n%s", err, out)
	}
	return bin, nil
}

// writeGraphs generates the torture inputs under dir: a random directed
// graph for PageRank/BFS and its symmetrized twin for CC. Fixed seeds
// keep every run of the harness on the same graphs.
func writeGraphs(dir string) (directed, symmetric string, err error) {
	edges, err := gen.ErdosRenyi(300, 1500, 42, false)
	if err != nil {
		return "", "", err
	}
	g, err := graph.FromEdges(edges, 300, false)
	if err != nil {
		return "", "", err
	}
	directed = filepath.Join(dir, "torture.gpsa")
	if err := graph.WriteFile(directed, g); err != nil {
		return "", "", err
	}
	symmetric = filepath.Join(dir, "torture-sym.gpsa")
	if err := graph.WriteFile(symmetric, g.Symmetrize()); err != nil {
		return "", "", err
	}
	return directed, symmetric, nil
}

// runResult captures one subprocess run.
type runResult struct {
	stdout, stderr string
	exitCode       int  // -1 when signaled
	killed         bool // terminated by SIGKILL
}

// runBinary executes the gpsa binary with args. faultSpec, when
// non-empty, is exported as GPSA_FAULT. killAfter, when positive, sends
// the process SIGKILL from outside after that wall-clock delay — the
// jitter kills that land between fault sites. interruptAfter likewise
// sends SIGINT (graceful stop).
func runBinary(bin string, args []string, faultSpec string, killAfter, interruptAfter time.Duration) (runResult, error) {
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), "GPSA_FAULT="+faultSpec)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		return runResult{}, err
	}
	if killAfter > 0 {
		timer := time.AfterFunc(killAfter, func() { cmd.Process.Kill() }) //nolint:errcheck
		defer timer.Stop()
	}
	if interruptAfter > 0 {
		timer := time.AfterFunc(interruptAfter, func() { cmd.Process.Signal(syscall.SIGINT) }) //nolint:errcheck
		defer timer.Stop()
	}
	err := cmd.Wait()
	res := runResult{stdout: stdout.String(), stderr: stderr.String()}
	if err == nil {
		return res, nil
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		return res, err
	}
	res.exitCode = ee.ExitCode()
	if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
		res.killed = true
	}
	return res, nil
}

// fileState is the durable outcome of a run: every vertex payload plus
// the sealed progress counters, the exact data bit-identical resume is
// judged on.
type fileState struct {
	values    []uint64
	epoch     int64
	converged bool
}

// readState opens a value file and snapshots its payloads and header.
// The file must be cleanly sealed — reading an in-progress file would
// compare half-finished state.
func readState(path string) (fileState, error) {
	vf, err := vertexfile.Open(path)
	if err != nil {
		return fileState{}, err
	}
	defer vf.Close()
	if vf.InProgress() {
		return fileState{}, fmt.Errorf("crashtest: %s not cleanly sealed", path)
	}
	return fileState{values: vf.Values(), epoch: vf.Epoch(), converged: vf.Converged()}, nil
}

// equal reports whether two file states are bit-identical.
func (s fileState) equal(o fileState) bool {
	if s.epoch != o.epoch || s.converged != o.converged || len(s.values) != len(o.values) {
		return false
	}
	for i := range s.values {
		if s.values[i] != o.values[i] {
			return false
		}
	}
	return true
}
