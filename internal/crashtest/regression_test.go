package crashtest

import (
	"errors"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// writeRegressionGraph generates one of the regression inputs.
func writeRegressionGraph(t *testing.T, dir, name string, weighted, symmetrize bool) string {
	t.Helper()
	edges, err := gen.ErdosRenyi(200, 900, 7, weighted)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(edges, 200, weighted)
	if err != nil {
		t.Fatal(err)
	}
	if symmetrize {
		g = g.Symmetrize()
	}
	path := filepath.Join(dir, name)
	if err := graph.WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestKillAtSuperstepResumeBitIdentical is the in-process half of the
// torture contract, covering every shipped algorithm: a run "killed" at
// superstep 1 (via the step-crash fault site, which fails the run
// without committing or rolling back — the process-death model) must,
// after Resume, finish with exactly the payloads of an uninterrupted
// run, bit for bit, including the float-valued order-sensitive programs.
func TestKillAtSuperstepResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	directed := writeRegressionGraph(t, dir, "directed.gpsa", false, false)
	symmetric := writeRegressionGraph(t, dir, "symmetric.gpsa", false, true)
	weighted := writeRegressionGraph(t, dir, "weighted.gpsa", true, false)

	cases := []struct {
		name  string
		prog  core.Program
		graph string
		steps int
	}{
		{"pagerank", algorithms.PageRank{}, directed, 12},
		{"deltapagerank", algorithms.DeltaPageRank{}, directed, 0},
		{"bfs", algorithms.BFS{Root: 0}, directed, 0},
		{"cc", algorithms.ConnectedComponents{}, symmetric, 0},
		{"sssp", algorithms.SSSP{Source: 0}, weighted, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Single dispatcher: message order — and so float accumulation
			// order — is deterministic, making bit-identity meaningful.
			opts := gpsa.RunOptions{Dispatchers: 1, Supersteps: tc.steps}

			baseOpts := opts
			baseOpts.ValuesPath = filepath.Join(dir, tc.name+"-base.gpvf")
			baseVals, baseRes, err := gpsa.Run(tc.graph, tc.prog, baseOpts)
			if err != nil {
				t.Fatal(err)
			}
			n := baseVals.NumVertices()
			want := make([]uint64, n)
			for v := int64(0); v < n; v++ {
				want[v] = baseVals.Raw(v)
			}
			baseVals.Close()

			// Kill at superstep 1: the step-crash site fails the run after
			// the dispatch phase with no commit and no rollback, leaving the
			// value file exactly as a SIGKILL there would.
			crashPath := filepath.Join(dir, tc.name+"-crash.gpvf")
			crashOpts := opts
			crashOpts.ValuesPath = crashPath
			fault.Activate(fault.NewPlan(0, fault.Injection{Site: fault.SiteStepCrash, After: 2}))
			_, _, err = gpsa.Run(tc.graph, tc.prog, crashOpts)
			fault.Deactivate()
			if !errors.Is(err, gpsa.ErrCrashInjected) {
				t.Fatalf("crash run error = %v, want injected crash", err)
			}

			resumes := metrics.Counter(metrics.CtrResumes)
			exacts := metrics.Counter(metrics.CtrRecoverExact)
			vals, res, err := gpsa.Resume(tc.graph, crashPath, tc.prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			if metrics.Counter(metrics.CtrResumes) != resumes+1 || metrics.Counter(metrics.CtrRecoverExact) != exacts+1 {
				t.Fatal("resume/recovery counters did not record the recovery")
			}
			defer vals.Close()
			if res.ResumedFrom != 1 || res.Recovery != "exact" {
				t.Fatalf("resumed from %d with %q recovery, want superstep 1, exact", res.ResumedFrom, res.Recovery)
			}
			if res.Converged != baseRes.Converged {
				t.Fatalf("resumed converged=%v, baseline %v", res.Converged, baseRes.Converged)
			}
			for v := int64(0); v < n; v++ {
				if got := vals.Raw(v); got != want[v] {
					t.Fatalf("vertex %d: resumed payload %#x != baseline %#x", v, got, want[v])
				}
			}
		})
	}
}
