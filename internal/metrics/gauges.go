package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Gauge names recorded by the serving layer. Unlike the monotonic
// counters, gauges move both ways — the servetest harness and /metrics
// endpoint read them as point-in-time levels.
const (
	// GaugeServeQueueDepth is the number of jobs waiting in the
	// admission queue (bounded; see internal/serve).
	GaugeServeQueueDepth = "serve.queue.depth"
	// GaugeServeInflight is the number of jobs currently executing.
	GaugeServeInflight = "serve.jobs.inflight"
	// GaugeServeResidentGraphs is the number of graph files held open
	// (mmap'd hot) by the serving process.
	GaugeServeResidentGraphs = "serve.graphs.resident"
	// GaugeServeDraining is 1 while the server is draining (admissions
	// stopped, in-flight jobs checkpointing), 0 otherwise.
	GaugeServeDraining = "serve.draining"
	// GaugeServeDiskDegraded is 1 while the server is in read-only
	// degraded mode after persistent disk write failures (admissions
	// refused with 503, probe actor watching for the disk to heal), 0
	// when the disk is healthy.
	GaugeServeDiskDegraded = "serve.disk.degraded"
)

// gauges is a process-wide registry of named gauges, mirroring the
// counter registry: append-only map under the sync.Map, atomic values,
// so SetGauge/AddGauge after first use are lock-free.
var gauges sync.Map // string -> *atomic.Int64

func gauge(name string) *atomic.Int64 {
	if g, ok := gauges.Load(name); ok {
		return g.(*atomic.Int64)
	}
	g, _ := gauges.LoadOrStore(name, new(atomic.Int64))
	return g.(*atomic.Int64)
}

// SetGauge sets the named gauge to v.
func SetGauge(name string, v int64) { gauge(name).Store(v) }

// AddGauge adds delta (which may be negative) to the named gauge and
// returns the new value.
func AddGauge(name string, delta int64) int64 { return gauge(name).Add(delta) }

// GaugeValue returns the named gauge's current value (0 if never set).
func GaugeValue(name string) int64 {
	if g, ok := gauges.Load(name); ok {
		return g.(*atomic.Int64).Load()
	}
	return 0
}

// NamedValue is one metric in a snapshot.
type NamedValue struct {
	Name  string
	Value int64
	Kind  string // "counter" or "gauge"
}

// Gauges snapshots every gauge, sorted by name.
func Gauges() []NamedValue {
	var out []NamedValue
	gauges.Range(func(k, v any) bool {
		out = append(out, NamedValue{Name: k.(string), Value: v.(*atomic.Int64).Load(), Kind: "gauge"})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResetGauges zeroes every gauge (test isolation).
func ResetGauges() {
	gauges.Range(func(_, v any) bool {
		v.(*atomic.Int64).Store(0)
		return true
	})
}

// Dump snapshots every counter and gauge in one name-sorted slice — the
// payload behind gpsa-serve's /metrics endpoint. Counters and gauges
// live in separate namespaces by convention (gauge names describe
// levels, counter names events), so a merged sort is unambiguous.
func Dump() []NamedValue {
	var out []NamedValue
	for _, c := range Counters() {
		out = append(out, NamedValue{Name: c.Name, Value: c.Value, Kind: "counter"})
	}
	out = append(out, Gauges()...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
