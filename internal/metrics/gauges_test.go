package metrics

import (
	"sync"
	"testing"
)

func TestGaugeSetAddValue(t *testing.T) {
	ResetGauges()
	if got := GaugeValue("test.gauge.a"); got != 0 {
		t.Fatalf("untouched gauge reads %d, want 0", got)
	}
	SetGauge("test.gauge.a", 7)
	if got := GaugeValue("test.gauge.a"); got != 7 {
		t.Fatalf("after Set(7): %d", got)
	}
	if got := AddGauge("test.gauge.a", -3); got != 4 {
		t.Fatalf("Add(-3) returned %d, want 4", got)
	}
	if got := GaugeValue("test.gauge.a"); got != 4 {
		t.Fatalf("after Add(-3): %d", got)
	}
	ResetGauges()
	if got := GaugeValue("test.gauge.a"); got != 0 {
		t.Fatalf("after Reset: %d", got)
	}
}

// TestGaugeConcurrent exercises the registry under -race: concurrent
// first-use registration, adds, sets, and snapshots must be safe.
func TestGaugeConcurrent(t *testing.T) {
	ResetGauges()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				AddGauge("test.gauge.conc", 1)
				AddGauge("test.gauge.conc", -1)
				if n%100 == 0 {
					Gauges()
					Dump()
				}
			}
		}(i)
	}
	wg.Wait()
	if got := GaugeValue("test.gauge.conc"); got != 0 {
		t.Fatalf("balanced adds left gauge at %d, want 0", got)
	}
}

func TestDumpMergesCountersAndGauges(t *testing.T) {
	ResetGauges()
	ResetCounters()
	Inc("test.dump.counter")
	SetGauge("test.dump.gauge", 5)
	var sawCtr, sawGauge bool
	prev := ""
	for _, nv := range Dump() {
		if nv.Name < prev {
			t.Fatalf("Dump not sorted: %q after %q", nv.Name, prev)
		}
		prev = nv.Name
		switch nv.Name {
		case "test.dump.counter":
			sawCtr = nv.Kind == "counter" && nv.Value == 1
		case "test.dump.gauge":
			sawGauge = nv.Kind == "gauge" && nv.Value == 5
		}
	}
	if !sawCtr || !sawGauge {
		t.Fatalf("Dump missing entries: counter=%v gauge=%v", sawCtr, sawGauge)
	}
}
