package metrics

import (
	"sync"
	"testing"
)

func TestCounters(t *testing.T) {
	ResetCounters()
	Inc("test.a")
	Inc("test.a")
	Add("test.b", 5)
	if got := Counter("test.a"); got != 2 {
		t.Fatalf("test.a = %d, want 2", got)
	}
	if got := Counter("test.b"); got != 5 {
		t.Fatalf("test.b = %d, want 5", got)
	}
	if got := Counter("test.never"); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
	snap := Counters()
	var names []string
	for _, c := range snap {
		if c.Name == "test.a" || c.Name == "test.b" {
			names = append(names, c.Name)
		}
	}
	if len(names) != 2 || names[0] != "test.a" || names[1] != "test.b" {
		t.Fatalf("snapshot order/content wrong: %v", names)
	}
	ResetCounters()
	if got := Counter("test.b"); got != 0 {
		t.Fatalf("after reset test.b = %d, want 0", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	ResetCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				Inc("test.concurrent")
			}
		}()
	}
	wg.Wait()
	if got := Counter("test.concurrent"); got != 8000 {
		t.Fatalf("concurrent count = %d, want 8000", got)
	}
}
