package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter names recorded by the durability machinery. The crash-torture
// harness asserts on these to prove recovery actually ran (rather than a
// kill landing after the final commit and the "resume" being a no-op).
const (
	// CtrRecoverExact counts recoveries that restored the exact
	// active-set snapshot from the value file's bitmap region.
	CtrRecoverExact = "vertexfile.recover.exact"
	// CtrRecoverConservative counts recoveries that fell back to
	// re-activating every vertex (torn header or stale bitmap).
	CtrRecoverConservative = "vertexfile.recover.conservative"
	// CtrOpenTorn counts files Open found with a torn header.
	CtrOpenTorn = "vertexfile.open.torn"
	// CtrDigestMismatch counts files Open rejected because the sealed
	// column digest did not match the column bytes (write-order bug or
	// external corruption).
	CtrDigestMismatch = "vertexfile.open.digest_mismatch"
	// CtrStepRollbacks counts in-process superstep rollbacks (supervised
	// retry or cancellation).
	CtrStepRollbacks = "core.step.rollbacks"
	// CtrRunsCancelled counts engine runs stopped by context cancellation.
	CtrRunsCancelled = "core.runs.cancelled"
	// CtrResumes counts gpsa.Run continuations of an existing value file.
	CtrResumes = "gpsa.resumes"

	// CtrAccumFolded counts messages folded into an existing entry of a
	// source-side accumulator — the combined-at-source numerator; its
	// ratio to the engine's generated-message count is the source
	// combining rate.
	CtrAccumFolded = "core.accum.folded"
	// CtrAccumDelivered counts accumulator entries handed to computing
	// workers (the post-combining message volume on the accum path).
	CtrAccumDelivered = "core.accum.delivered"
	// CtrAccumDenseSegs and CtrAccumSparseSegs count segment handoffs —
	// the mailbox traffic that replaces per-batch messages.
	CtrAccumDenseSegs  = "core.accum.segments.dense"
	CtrAccumSparseSegs = "core.accum.segments.sparse"

	// CtrPrefetchWindows counts WILLNEED windows the async CSR prefetch
	// actors issued ahead of the dispatch cursors; CtrPrefetchBytes the
	// bytes those windows covered; CtrPrefetchEvicted the bytes released
	// with DONTNEED behind the cursors; CtrPrefetchErrors madvise calls
	// that failed (prefetch is best-effort, errors are counted, never
	// fatal).
	CtrPrefetchWindows = "core.prefetch.windows"
	CtrPrefetchBytes   = "core.prefetch.bytes"
	CtrPrefetchEvicted = "core.prefetch.evicted"
	CtrPrefetchErrors  = "core.prefetch.errors"

	// The cluster.* counters record the distributed recovery machinery;
	// the chaos harness asserts on them to prove a disturbed run actually
	// exercised rollback and rejoin rather than getting lucky.
	//
	// CtrClusterRedials counts data-plane redial attempts after a failed
	// peer write.
	CtrClusterRedials = "cluster.redials"
	// CtrClusterRollbacks counts coordinator-driven superstep rollbacks
	// (every node discards in-flight state and the step is retried).
	CtrClusterRollbacks = "cluster.rollbacks"
	// CtrClusterRejoins counts nodes that rejoined a running job via the
	// rejoin handshake after being declared dead.
	CtrClusterRejoins = "cluster.rejoins"
	// CtrClusterChecksumFailures counts frames rejected because their
	// CRC32C checksum did not match — corruption detected, not applied.
	CtrClusterChecksumFailures = "cluster.checksum_failures"
	// CtrClusterMigrations counts vertex intervals moved live between
	// nodes (join, drain, and rebalance all migrate through the same
	// barrier-time MIGRATE protocol).
	CtrClusterMigrations = "cluster.migrations"
	// CtrClusterRedistributions counts intervals of a permanently dead
	// node redistributed to survivors (graceful N -> N-1 degradation)
	// instead of waiting for a same-node restart.
	CtrClusterRedistributions = "cluster.redistributions"
	// CtrClusterJoins counts brand-new nodes absorbed into a running job.
	CtrClusterJoins = "cluster.joins"
	// CtrClusterDrains counts nodes shed cleanly for maintenance.
	CtrClusterDrains = "cluster.drains"

	// The serve.* counters record the job tier of the long-lived serving
	// layer (internal/serve); the servetest harness asserts on them to
	// prove overload shedding, journal recovery, and budget enforcement
	// actually happened.
	//
	// CtrServeAdmitted counts jobs accepted into the bounded queue.
	CtrServeAdmitted = "serve.admitted"
	// CtrServeShed counts submissions refused with 429 because the queue
	// was full — clean backpressure instead of unbounded memory.
	CtrServeShed = "serve.shed"
	// CtrServeResumed counts jobs recovered from the job journal at
	// startup (-resume-jobs): interrupted or still-queued jobs of a
	// previous process generation, re-run to completion.
	CtrServeResumed = "serve.resumed"
	// CtrServeDeadlineExceeded counts jobs stopped at their wall-clock
	// deadline: the run's context is cancelled, the in-flight superstep
	// rolled back, and the value file sealed resumable.
	CtrServeDeadlineExceeded = "serve.deadline_exceeded"
	// CtrServeCompleted and CtrServeFailed count terminal job outcomes.
	CtrServeCompleted = "serve.completed"
	CtrServeFailed    = "serve.failed"
	// CtrServeInterrupted counts in-flight jobs checkpointed (rolled
	// back + sealed) because the server drained.
	CtrServeInterrupted = "serve.interrupted"
	// CtrServeRetries counts job-tier retry attempts after transient
	// failures (the job analogue of core.MaxStepRetries).
	CtrServeRetries = "serve.retries"
	// CtrServeCacheHits counts submissions answered from the result
	// cache keyed by (graph digest, program, params).
	CtrServeCacheHits = "serve.cache.hits"
	// CtrServeBreakerOpen counts circuit-breaker trips quarantining a
	// (graph, program) pair; CtrServeBreakerRejected counts submissions
	// refused while quarantined.
	CtrServeBreakerOpen     = "serve.breaker.open"
	CtrServeBreakerRejected = "serve.breaker.rejected"

	// The disk.* counters record the storage layer (internal/diskio) and
	// the scrub/repair actor (internal/scrub); the disktest harness
	// asserts on them to prove hostile-disk scenarios exercised the
	// degradation and repair machinery rather than missing it.
	//
	// CtrDiskWriteErrors counts failed writes/syncs on durability paths
	// (real or injected), after classification.
	CtrDiskWriteErrors = "disk.write_errors"
	// CtrDiskENOSPC counts failures classified as disk-full
	// (diskio.ErrDiskFull), a subset of disk.write_errors plus failed
	// preflight free-space gates.
	CtrDiskENOSPC = "disk.enospc"
	// CtrDiskScrubs counts completed scrub passes over a sealed artifact
	// (vertex value file or CSR graph file).
	CtrDiskScrubs = "disk.scrubs"
	// CtrDiskRepairs counts corrupt artifacts successfully repaired
	// (interval re-fetch from a live owner, or rebuild from healthy
	// source data).
	CtrDiskRepairs = "disk.repairs"
	// CtrDiskQuarantines counts corrupt artifacts renamed aside
	// (*.quarantine) so they can never be opened as healthy state.
	CtrDiskQuarantines = "disk.quarantines"
)

// counters is a process-wide registry of named monotonic counters. The
// map is append-only under the lock; the values are atomics, so Inc on a
// hot path after first use is lock-free.
var counters sync.Map // string -> *atomic.Int64

func counter(name string) *atomic.Int64 {
	if c, ok := counters.Load(name); ok {
		return c.(*atomic.Int64)
	}
	c, _ := counters.LoadOrStore(name, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// Inc adds 1 to the named counter.
func Inc(name string) { counter(name).Add(1) }

// Add adds delta to the named counter.
func Add(name string, delta int64) { counter(name).Add(delta) }

// Counter returns the named counter's current value (0 if never touched).
func Counter(name string) int64 {
	if c, ok := counters.Load(name); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

// Counters snapshots every counter, sorted by name.
func Counters() []struct {
	Name  string
	Value int64
} {
	var out []struct {
		Name  string
		Value int64
	}
	counters.Range(func(k, v any) bool {
		out = append(out, struct {
			Name  string
			Value int64
		}{k.(string), v.(*atomic.Int64).Load()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResetCounters zeroes every counter (test isolation).
func ResetCounters() {
	counters.Range(func(_, v any) bool {
		v.(*atomic.Int64).Store(0)
		return true
	})
}
