// Package metrics measures process CPU consumption for the paper's
// CPU-utilization experiment (Fig. 11): X-Stream burns all cores all the
// time, GraphChi under-uses them, and GPSA's usage tracks the workload.
package metrics

import (
	"runtime"
	"time"
)

// CPUSample reports CPU consumption over a sampling window.
type CPUSample struct {
	Wall     time.Duration // window length
	CPU      time.Duration // process CPU time consumed in the window
	Cores    float64       // average cores busy (CPU/Wall)
	Percent  float64       // Cores as a percentage of available CPUs
	MaxCores int           // available CPUs (GOMAXPROCS)
}

// CPUSampler measures process CPU time between samples.
type CPUSampler struct {
	lastWall time.Time
	lastCPU  time.Duration
}

// StartCPUSampler begins a measurement window.
func StartCPUSampler() *CPUSampler {
	return &CPUSampler{lastWall: time.Now(), lastCPU: ProcessCPUTime()}
}

// Sample closes the current window, returns its consumption, and starts
// the next window.
func (s *CPUSampler) Sample() CPUSample {
	nowWall, nowCPU := time.Now(), ProcessCPUTime()
	wall := nowWall.Sub(s.lastWall)
	cpu := nowCPU - s.lastCPU
	s.lastWall, s.lastCPU = nowWall, nowCPU
	max := runtime.GOMAXPROCS(0)
	out := CPUSample{Wall: wall, CPU: cpu, MaxCores: max}
	if wall > 0 {
		out.Cores = cpu.Seconds() / wall.Seconds()
		out.Percent = 100 * out.Cores / float64(max)
	}
	return out
}

// MeasureCPU runs fn and returns its result sample: wall time, CPU time,
// and average core usage while fn ran.
func MeasureCPU(fn func()) CPUSample {
	s := StartCPUSampler()
	fn()
	return s.Sample()
}
