//go:build linux || darwin

package metrics

import (
	"syscall"
	"time"
)

// ProcessCPUTime returns the total user+system CPU time consumed by this
// process, via getrusage(2).
func ProcessCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return timevalDuration(ru.Utime) + timevalDuration(ru.Stime)
}

func timevalDuration(tv syscall.Timeval) time.Duration {
	return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
}
