package metrics

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestProcessCPUTimeMonotone(t *testing.T) {
	a := ProcessCPUTime()
	burn(20 * time.Millisecond)
	b := ProcessCPUTime()
	if b < a {
		t.Fatalf("CPU time went backwards: %v -> %v", a, b)
	}
	if b == 0 {
		t.Skip("ProcessCPUTime unavailable on this platform")
	}
	if b == a {
		t.Fatal("CPU time did not advance while burning CPU")
	}
}

func TestMeasureCPUDetectsParallelBurn(t *testing.T) {
	if ProcessCPUTime() == 0 {
		t.Skip("ProcessCPUTime unavailable")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	s := MeasureCPU(func() {
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				burn(60 * time.Millisecond)
			}()
		}
		wg.Wait()
	})
	if s.Wall <= 0 || s.CPU <= 0 {
		t.Fatalf("sample = %+v", s)
	}
	// With `workers` busy goroutines, average busy cores should clearly
	// exceed one (allowing heavy scheduler noise).
	if workers >= 2 && s.Cores < 1.2 {
		t.Fatalf("measured %.2f busy cores with %d burners", s.Cores, workers)
	}
	if s.Percent < 0 || s.Percent > 110*float64(s.MaxCores) {
		t.Fatalf("nonsense percent %g", s.Percent)
	}
}

func TestSamplerWindowsAreIndependent(t *testing.T) {
	if ProcessCPUTime() == 0 {
		t.Skip("ProcessCPUTime unavailable")
	}
	s := StartCPUSampler()
	burn(30 * time.Millisecond)
	first := s.Sample()
	// Idle window: CPU consumption should drop well below the burn window.
	time.Sleep(30 * time.Millisecond)
	second := s.Sample()
	if first.CPU == 0 {
		t.Fatal("burn window recorded no CPU")
	}
	if second.CPU > first.CPU {
		t.Fatalf("idle window consumed more CPU (%v) than burn window (%v)", second.CPU, first.CPU)
	}
}

// burn spins for roughly d of CPU time on one core.
func burn(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x += i
		}
	}
	_ = x
}
