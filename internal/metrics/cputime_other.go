//go:build !linux && !darwin

package metrics

import "time"

// ProcessCPUTime is unavailable on this platform; samples report zero CPU
// and callers fall back to wall-clock-only reporting.
func ProcessCPUTime() time.Duration { return 0 }
