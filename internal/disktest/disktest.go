// Package disktest is GPSA's hostile-disk torture harness, the storage
// sibling of internal/crashtest (kill torture) and internal/chaostest
// (network torture). It drives the real write paths — CSR build, the
// engine's value-file commit protocol, the gpsa-serve job journal, the
// cluster repair plane — under every disk.* fault site the diskio layer
// injects (ENOSPC on create/write/sync, EIO on write/read/sync, short
// writes, torn syncs, at-rest bit-rot) and holds the system to one
// invariant: the run either completes bit-identical to an undisturbed
// baseline, or fails with a typed, actionable error
// (diskio.ErrDiskFull / ErrIOFailure / ErrCorrupt) from which a healed
// disk recovers to the bit-identical result. Silent corruption and
// wedges are the two forbidden outcomes.
//
// The package holds only the harness plumbing; the storm schedules live
// in its tests (make disktorture; the smoke slice runs in make check).
package disktest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vertexfile"
)

// moduleRoot walks up from the working directory to the directory
// holding go.mod, which is where `go build ./cmd/gpsa-serve` must run.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("disktest: go.mod not found above working directory")
		}
		dir = parent
	}
}

// buildServe compiles cmd/gpsa-serve into dir and returns the binary
// path.
func buildServe(dir string) (string, error) {
	root, err := moduleRoot()
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "gpsa-serve")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/gpsa-serve")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("disktest: building gpsa-serve: %v\n%s", err, out)
	}
	return bin, nil
}

// tortureGraph returns the fixed-seed R-MAT torture graph (directed or
// symmetrized), built once per process. The storms rewrite it to fresh
// directories through the real CSR writer, so the in-memory CSR — not
// any one file — is the seed input.
func tortureGraph(symmetric bool) (*graph.CSR, error) {
	graphOnce.Do(func() {
		g, err := gen.RMATGraph(gen.RMATConfig{Vertices: 300, Edges: 1800, Seed: 11})
		if err != nil {
			graphErr = err
			return
		}
		directedCSR, symmetricCSR = g, g.Symmetrize()
	})
	if graphErr != nil {
		return nil, graphErr
	}
	if symmetric {
		return symmetricCSR, nil
	}
	return directedCSR, nil
}

var (
	graphOnce                 sync.Once
	graphErr                  error
	directedCSR, symmetricCSR *graph.CSR
)

// fileState is the durable outcome of a run: every vertex payload plus
// the sealed progress counters — the exact data bit-identical recovery
// is judged on.
type fileState struct {
	values    []uint64
	epoch     int64
	converged bool
}

// readState opens a value file and snapshots its payloads and header.
// The file must be cleanly sealed — reading an in-progress file would
// compare half-finished state.
func readState(path string) (fileState, error) {
	vf, err := vertexfile.Open(path)
	if err != nil {
		return fileState{}, err
	}
	defer vf.Close()
	if vf.InProgress() {
		return fileState{}, fmt.Errorf("disktest: %s not cleanly sealed", path)
	}
	return fileState{values: vf.Values(), epoch: vf.Epoch(), converged: vf.Converged()}, nil
}

// equal reports whether two file states are bit-identical.
func (s fileState) equal(o fileState) bool {
	if s.epoch != o.epoch || s.converged != o.converged || len(s.values) != len(o.values) {
		return false
	}
	for i := range s.values {
		if s.values[i] != o.values[i] {
			return false
		}
	}
	return true
}

// server is one running gpsa-serve subprocess (the degraded-mode
// scenario's subject).
type server struct {
	cmd  *exec.Cmd
	addr string

	mu     sync.Mutex
	stderr bytes.Buffer

	waitOnce sync.Once
	waitErr  error
}

// startServer launches gpsa-serve on an ephemeral port with faultSpec
// exported as GPSA_FAULT and waits until it reports its listen address.
func startServer(bin, graphDir, jobsDir, faultSpec string, extra ...string) (*server, error) {
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-graphs", graphDir,
		"-jobs", jobsDir,
		"-v",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), "GPSA_FAULT="+faultSpec)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	s := &server{cmd: cmd}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			s.mu.Lock()
			s.stderr.WriteString(line + "\n")
			s.mu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := strings.Fields(line[i+len("listening on "):])[0]
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()

	select {
	case addr := <-addrCh:
		s.addr = addr
	case <-time.After(15 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		return nil, fmt.Errorf("disktest: server never reported its address; stderr:\n%s", s.stderrText())
	}
	return s, nil
}

func (s *server) stderrText() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stderr.String()
}

// kill SIGKILLs the server and reaps it.
func (s *server) kill() {
	s.cmd.Process.Kill() //nolint:errcheck
	s.waitOnce.Do(func() { s.waitErr = s.cmd.Wait() })
}

// job mirrors the server's job JSON (the fields the scenario asserts
// on).
type job struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error"`
}

// submit POSTs a job spec and decodes the response.
func (s *server) submit(spec map[string]any) (int, job, http.Header, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, job{}, nil, err
	}
	resp, err := http.Post("http://"+s.addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, job{}, nil, err
	}
	defer resp.Body.Close()
	var j job
	data, _ := io.ReadAll(resp.Body)
	json.Unmarshal(data, &j) //nolint:errcheck — error bodies aren't jobs
	return resp.StatusCode, j, resp.Header, nil
}

// getJob fetches one job's state.
func (s *server) getJob(id string) (job, error) {
	resp, err := http.Get("http://" + s.addr + "/v1/jobs/" + id)
	if err != nil {
		return job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return job{}, fmt.Errorf("disktest: GET job %s: %d", id, resp.StatusCode)
	}
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return job{}, err
	}
	return j, nil
}

// metricsSnapshot fetches /metrics as a name -> value map.
func (s *server) metricsSnapshot() (map[string]int64, error) {
	resp, err := http.Get("http://" + s.addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, sc.Err()
}

// getStatus fetches a bare endpoint's HTTP status (healthz/readyz).
func (s *server) getStatus(path string) (int, error) {
	resp, err := http.Get("http://" + s.addr + path)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode, nil
}

// stormReport is the per-site outcome record the torture tests write as
// a CI artifact when GPSA_DISKTEST_REPORT names a path.
type stormReport struct {
	Site      string `json:"site"`
	After     int64  `json:"after"`
	Fired     int64  `json:"fired"`
	Outcome   string `json:"outcome"` // "completed", "typed-error+recovered"
	Err       string `json:"error,omitempty"`
	Recovered string `json:"recovered,omitempty"` // "resume" or "rebuild"
}

// writeStormReport writes the storm outcomes as JSON to the path named
// by GPSA_DISKTEST_REPORT; unset means no artifact.
func writeStormReport(reports []stormReport) error {
	path := os.Getenv("GPSA_DISKTEST_REPORT")
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
