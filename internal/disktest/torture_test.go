package disktest

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	gpsa "repro"
	"repro/internal/algorithms"
	"repro/internal/cluster"
	"repro/internal/diskio"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mmap"
	"repro/internal/scrub"
	"repro/internal/vertexfile"
)

// engineOpts is the storm runs' engine shape: PageRank's fixed budget
// with one dispatcher, the configuration under which the engine's
// bit-identical recovery claim is strongest (order-sensitive floats).
func engineOpts(ctx context.Context, valuesPath string) gpsa.RunOptions {
	return gpsa.RunOptions{
		Supersteps:  5,
		Dispatchers: 1,
		ValuesPath:  valuesPath,
		Context:     ctx,
	}
}

var (
	baselineOnce sync.Once
	baselineDir  string
	baselineErr  error
	baselineSt   fileState
)

// baselineState runs PageRank once on an undisturbed disk and memoizes
// the sealed outcome every storm run is judged against.
func baselineState(t *testing.T) fileState {
	t.Helper()
	baselineOnce.Do(func() {
		if fault.Enabled() {
			baselineErr = errors.New("baseline requested while a fault plan is active")
			return
		}
		dir, err := os.MkdirTemp("", "gpsa-disktest-baseline-*")
		if err != nil {
			baselineErr = err
			return
		}
		baselineDir = dir
		csr, err := tortureGraph(false)
		if err != nil {
			baselineErr = err
			return
		}
		gp := filepath.Join(dir, "g.gpsa")
		if err := graph.WriteFile(gp, csr); err != nil {
			baselineErr = err
			return
		}
		vp := filepath.Join(dir, "v.gpvf")
		vals, _, err := gpsa.Run(gp, algorithms.PageRank{}, engineOpts(context.Background(), vp))
		if err != nil {
			baselineErr = err
			return
		}
		if err := vals.Close(); err != nil {
			baselineErr = err
			return
		}
		baselineSt, baselineErr = readState(vp)
	})
	if baselineErr != nil {
		t.Fatalf("disktest baseline: %v", baselineErr)
	}
	return baselineSt
}

func TestMain(m *testing.M) {
	code := m.Run()
	if baselineDir != "" {
		os.RemoveAll(baselineDir)
	}
	os.Exit(code)
}

// assertTypedDiskErr fails unless err carries one of the three diskio
// error classes AND the injected-fault marker — the "typed, actionable
// error" half of the hostile-disk invariant. An untyped error (or a
// watchdog/context timeout standing in for a wedge) fails here.
func assertTypedDiskErr(t *testing.T, site string, err error) {
	t.Helper()
	if !errors.Is(err, diskio.ErrDiskFull) && !errors.Is(err, diskio.ErrIOFailure) && !errors.Is(err, diskio.ErrCorrupt) {
		t.Fatalf("site %s: error not typed as a diskio class: %v", site, err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("site %s: error lost the injected-fault marker: %v", site, err)
	}
}

// stormSites are the write-path disk faults the engine storm matrix
// arms, each as a persistent storm (count=-1: every hit fails until the
// disk "heals" via Deactivate).
var stormSites = []string{
	fault.SiteDiskENOSPCCreate,
	fault.SiteDiskENOSPCWrite,
	fault.SiteDiskENOSPCSync,
	fault.SiteDiskEIOWrite,
	fault.SiteDiskEIOSync,
	fault.SiteDiskShortWrite,
	fault.SiteDiskTornSync,
}

// TestDiskTortureEngineStorms is the core hostile-disk matrix: for
// every write-path disk.* site and a set of onset offsets, build the
// CSR through the real writer and run the engine under a persistent
// storm. Required outcome per cell: either the run completes with a
// value file bit-identical to the undisturbed baseline, or it fails
// with a typed diskio error and — after the disk heals — resumes or
// rebuilds to the bit-identical result. Anything else (silent
// corruption, untyped failure, wedge past the context deadline) fails.
func TestDiskTortureEngineStorms(t *testing.T) {
	base := baselineState(t)
	metrics.ResetCounters()
	fired := make(map[string]int64)
	var reports []stormReport
	for _, site := range stormSites {
		for _, after := range []int64{0, 3} {
			t.Run(fmt.Sprintf("%s/after=%d", site, after), func(t *testing.T) {
				rep := runStorm(t, site, after, base)
				fired[site] += rep.Fired
				reports = append(reports, rep)
			})
		}
	}
	if t.Failed() {
		return
	}
	// Vacuity guard: a storm matrix whose faults never fired proves
	// nothing. Every site must have hit at least once across its cells.
	for _, site := range stormSites {
		if fired[site] == 0 {
			t.Errorf("site %s never fired across the storm matrix; the torture is vacuous for it", site)
		}
	}
	// The storage layer must have counted what it survived: every
	// injected failure classifies into the exported disk.* counters.
	if metrics.Counter(metrics.CtrDiskWriteErrors) == 0 {
		t.Error("disk.write_errors never incremented across the storm matrix")
	}
	if metrics.Counter(metrics.CtrDiskENOSPC) == 0 {
		t.Error("disk.enospc never incremented despite the ENOSPC storms")
	}
	if err := writeStormReport(reports); err != nil {
		t.Errorf("writing storm report artifact: %v", err)
	}
}

// runStorm executes one (site, onset) cell of the matrix and returns
// its outcome record.
func runStorm(t *testing.T, site string, after int64, base fileState) stormReport {
	t.Helper()
	csr, err := tortureGraph(false)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.gpsa")
	vp := filepath.Join(dir, "v.gpvf")
	rep := stormReport{Site: site, After: after}

	plan := fault.NewPlan(1, fault.Injection{Site: site, After: after, Count: -1})
	fault.Activate(plan)
	defer fault.Deactivate()

	// Stage 1: the CSR build. A failed build must be typed; a healed
	// disk rebuilds from the in-memory seed, and the storm re-arms so
	// stage 2 faces it too (otherwise create-site cells would only ever
	// torture the writer, never the engine).
	if werr := graph.WriteFile(gp, csr); werr != nil {
		assertTypedDiskErr(t, site, werr)
		fault.Deactivate()
		if werr := graph.WriteFile(gp, csr); werr != nil {
			t.Fatalf("site %s: CSR rebuild on healed disk failed: %v", site, werr)
		}
		rep.Fired += plan.Fired(site)
		plan = fault.NewPlan(1, fault.Injection{Site: site, After: after, Count: -1})
		fault.Activate(plan)
	}

	// Stage 2: the engine run under the storm. Bound by a deadline so a
	// wedge is a failure, not a hang.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	vals, _, runErr := gpsa.Run(gp, algorithms.PageRank{}, engineOpts(ctx, vp))
	rep.Fired += plan.Fired(site)
	if runErr == nil {
		if err := vals.Close(); err != nil {
			t.Fatalf("site %s: closing values: %v", site, err)
		}
		st, err := readState(vp)
		if err != nil {
			t.Fatalf("site %s: run reported success but the file does not verify: %v", site, err)
		}
		if !st.equal(base) {
			t.Fatalf("site %s: run reported success with values NOT bit-identical to baseline (epoch %d vs %d) — silent corruption", site, st.epoch, base.epoch)
		}
		rep.Outcome = "completed"
		return rep
	}

	assertTypedDiskErr(t, site, runErr)
	rep.Err = runErr.Error()
	fault.Deactivate()

	// The disk has healed. The sealed file — when one exists — must be
	// resumable to the bit-identical result; a run that died before
	// creating durable state rebuilds from scratch.
	if gpsa.Resumable(vp) {
		rep.Recovered = "resume"
		vals, _, err = gpsa.Resume(gp, vp, algorithms.PageRank{}, engineOpts(context.Background(), vp))
	} else {
		rep.Recovered = "rebuild"
		os.Remove(vp) //nolint:errcheck — may not exist
		vals, _, err = gpsa.Run(gp, algorithms.PageRank{}, engineOpts(context.Background(), vp))
	}
	if err != nil {
		t.Fatalf("site %s: recovery (%s) on healed disk failed: %v", site, rep.Recovered, err)
	}
	if err := vals.Close(); err != nil {
		t.Fatalf("site %s: closing recovered values: %v", site, err)
	}
	st, err := readState(vp)
	if err != nil {
		t.Fatalf("site %s: recovered file does not verify: %v", site, err)
	}
	if !st.equal(base) {
		t.Fatalf("site %s: recovered values NOT bit-identical to baseline", site)
	}
	rep.Outcome = "typed-error+recovered"
	return rep
}

// TestDiskReadFaultsTyped pins the read-side taxonomy on the scrubber's
// verification paths: an EIO read keeps its I/O class (and is NOT
// reported as corruption — a failing disk is not evidence against the
// data), while at-rest bit-rot surfaces as detection, never as a clean
// verdict over corrupt bytes.
func TestDiskReadFaultsTyped(t *testing.T) {
	dir := t.TempDir()
	vp := filepath.Join(dir, "v.gpvf")
	vf, err := vertexfile.Create(vp, 64, func(v int64) (uint64, bool) { return uint64(v * 3), true })
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	if err := vf.Commit(0, true, true); err != nil {
		t.Fatal(err)
	}
	if err := vf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := vertexfile.Verify(vp); err != nil {
		t.Fatalf("healthy file does not verify: %v", err)
	}

	// EIO on the verification read: typed I/O failure, not corruption.
	fault.Activate(fault.NewPlan(1, fault.Injection{Site: fault.SiteDiskEIORead}))
	err = vertexfile.Verify(vp)
	fault.Deactivate()
	if !errors.Is(err, diskio.ErrIOFailure) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("EIO verify error not typed: %v", err)
	}
	if errors.Is(err, diskio.ErrCorrupt) {
		t.Fatalf("EIO misclassified as corruption: %v", err)
	}

	// Bit-rot on the verification read: the flip must be detected —
	// either as a typed corruption error or as a not-sealed state —
	// never accepted as a healthy seal.
	fault.Activate(fault.NewPlan(1, fault.Injection{Site: fault.SiteDiskBitrot}))
	state, err := vertexfile.VerifyState(vp)
	fault.Deactivate()
	if err == nil && state == "sealed" {
		t.Fatalf("bit-rot read verified as cleanly sealed — silent corruption")
	}
	// The detection comes from the digest check downstream of the rot,
	// so the error is the verifier's typed corruption verdict (it need
	// not carry the injector's marker).
	if err != nil && !errors.Is(err, diskio.ErrCorrupt) {
		t.Fatalf("bit-rot detection not typed as corruption: %v", err)
	}

	// Disarmed, the file is still pristine: the bit-rot site corrupts
	// the read, not the disk.
	if state, err := vertexfile.VerifyState(vp); err != nil || state != "sealed" {
		t.Fatalf("file damaged by read-side bit-rot injection: state %q, %v", state, err)
	}
}

// TestDiskServeDegradedEnterExit is the serving-tier scenario against
// the real gpsa-serve binary: a failing jobs disk flips the server into
// read-only degraded mode (503 + Retry-After on POST, /readyz reports
// it, the gauge is up), the background probe notices the disk healing
// (the injection plan's firing budget runs out), and admissions resume
// — all without a restart.
func TestDiskServeDegradedEnterExit(t *testing.T) {
	dir := t.TempDir()
	bin, err := buildServe(dir)
	if err != nil {
		t.Fatal(err)
	}
	graphDir := filepath.Join(dir, "graphs")
	jobsDir := filepath.Join(dir, "jobs")
	for _, d := range []string{graphDir, jobsDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	csr, err := tortureGraph(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteFile(filepath.Join(graphDir, "t.gpsa"), csr); err != nil {
		t.Fatal(err)
	}

	// Four EIO write firings: the submit's journal append (1) plus three
	// failed probes, then the disk "heals" on its own — exactly the
	// transient-outage shape degraded mode exists for.
	srv, err := startServer(bin, graphDir, jobsDir, "site=disk.eio.write,count=4",
		"-probe-interval", "50ms", "-workers", "2")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.kill()

	spec := map[string]any{"graph": "t.gpsa", "algo": "pagerank"}
	code, _, hdr, err := srv.submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if code != 503 {
		t.Fatalf("submit on failing disk = %d, want 503; stderr:\n%s", code, srv.stderrText())
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("degraded 503 carries no Retry-After")
	}
	if code, err := srv.getStatus("/readyz"); err != nil || code != 503 {
		t.Fatalf("/readyz while degraded = %d, %v; want 503", code, err)
	}
	snap, err := srv.metricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap["serve.disk.degraded"] != 1 {
		t.Fatalf("serve.disk.degraded = %d, want 1", snap["serve.disk.degraded"])
	}
	if snap["disk.write_errors"] == 0 {
		t.Fatal("disk.write_errors did not count the journal failure")
	}

	// The probe exhausts the injection budget and readmits.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, err := srv.getStatus("/readyz")
		if err == nil && code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never recovered; stderr:\n%s", srv.stderrText())
		}
		time.Sleep(25 * time.Millisecond)
	}

	code, j, _, err := srv.submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if code != 202 {
		t.Fatalf("submit after recovery = %d, want 202; stderr:\n%s", code, srv.stderrText())
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		got, err := srv.getJob(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status == "completed" {
			break
		}
		if got.Status == "failed" || got.Status == "deadline_exceeded" {
			t.Fatalf("post-recovery job ended %s: %s", got.Status, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-recovery job stuck in %s", got.Status)
		}
		time.Sleep(25 * time.Millisecond)
	}
	snap, err = srv.metricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap["serve.disk.degraded"] != 0 {
		t.Fatalf("serve.disk.degraded = %d after recovery, want 0", snap["serve.disk.degraded"])
	}
}

// TestDiskClusterBitrotRepairBitIdentical is the replica-repair
// scenario: a 3-node cluster job's sealed per-node value files act as
// the replica set for a combined value-file artifact. Bit-rot lands in
// the artifact's sealed dispatch column; the scrubber detects it,
// quarantines the corrupt bytes, and rebuilds the file from the live
// cluster replicas via cluster.RepairValuesFile — and the repaired file
// is bit-identical to the gathered cluster result.
func TestDiskClusterBitrotRepairBitIdentical(t *testing.T) {
	metrics.ResetCounters()
	csr, err := tortureGraph(true)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.gpsa")
	if err := graph.WriteFile(gp, csr); err != nil {
		t.Fatal(err)
	}
	work := filepath.Join(dir, "work")
	if err := os.MkdirAll(work, 0o755); err != nil {
		t.Fatal(err)
	}
	const nodes, splits = 3, 2
	prog := algorithms.ConnectedComponents{}
	_, values, err := cluster.Run(gp, prog, cluster.Config{
		Nodes: nodes, Splits: splits, MaxSupersteps: 50, WorkDir: work,
		HeartbeatInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reproduce the run's interval partition and ownership offline.
	gf, err := graph.OpenFile(gp, mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	intervals := gf.Partition(nodes * splits)
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}
	owners := cluster.StaticOwners(len(intervals), nodes)
	nodePath := func(id int) string { return filepath.Join(work, fmt.Sprintf("node-%d.gpvf", id)) }
	epochSt, err := readState(nodePath(0))
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]cluster.IntervalSource, len(intervals))
	for i, iv := range intervals {
		sources[i] = cluster.IntervalSource{
			First: iv.FirstVertex, End: iv.EndVertex, Path: nodePath(owners[i]),
		}
	}

	// Build the combined artifact from the replicas; it must reproduce
	// the coordinator's gathered values bit for bit.
	combined := filepath.Join(dir, "combined.gpvf")
	n := int64(len(values))
	repair := func() error {
		return cluster.RepairValuesFile(combined, n, epochSt.epoch, prog.Init, sources)
	}
	if err := repair(); err != nil {
		t.Fatalf("building combined artifact: %v", err)
	}
	st, err := readState(combined)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < n; v++ {
		if st.values[v] != values[v] {
			t.Fatalf("combined artifact differs from gathered values at vertex %d: %d vs %d", v, st.values[v], values[v])
		}
	}

	// Rot a sealed dispatch-column payload, where the column digest —
	// not the header checksum — must catch it.
	rotOff := 128 + 8*((n+63)/64) + 8*(2*150+int64(vertexfile.DispatchCol(st.epoch)))
	if err := diskio.Rot(combined, rotOff); err != nil {
		t.Fatal(err)
	}
	if err := vertexfile.Verify(combined); !errors.Is(err, diskio.ErrCorrupt) {
		t.Fatalf("planted rot not detected as corruption: %v", err)
	}

	s := scrub.New(scrub.Options{ReportDir: filepath.Join(dir, "reports")})
	for id := 0; id < nodes; id++ {
		s.Add(scrub.Target{Path: nodePath(id), Kind: scrub.KindValues})
	}
	s.Add(scrub.Target{Path: combined, Kind: scrub.KindValues, Repair: repair})
	rep := s.RunOnce()
	if len(rep.Findings) != 1 {
		t.Fatalf("scrub findings: %+v", rep)
	}
	f := rep.Findings[0]
	if f.Path != combined || !f.Repaired || f.Action != "repaired" || f.Quarantined == "" {
		t.Fatalf("finding: %+v", f)
	}
	if _, err := os.Stat(f.Quarantined); err != nil {
		t.Fatalf("quarantined bytes missing: %v", err)
	}
	if rep.Scrubbed != nodes+1 {
		t.Fatalf("scrubbed %d artifacts, want %d (3 healthy replicas + 1 repaired)", rep.Scrubbed, nodes+1)
	}
	if metrics.Counter(metrics.CtrDiskRepairs) != 1 || metrics.Counter(metrics.CtrDiskQuarantines) != 1 {
		t.Fatalf("repair metrics: repairs=%d quarantines=%d",
			metrics.Counter(metrics.CtrDiskRepairs), metrics.Counter(metrics.CtrDiskQuarantines))
	}
	if got := metrics.Counter(metrics.CtrDiskScrubs); got < int64(nodes+1) {
		t.Fatalf("disk.scrubs = %d, want >= %d", got, nodes+1)
	}

	// The repaired artifact is bit-identical to the cluster result.
	st, err = readState(combined)
	if err != nil {
		t.Fatalf("repaired artifact does not verify: %v", err)
	}
	for v := int64(0); v < n; v++ {
		if st.values[v] != values[v] {
			t.Fatalf("repaired artifact differs at vertex %d: %d vs %d", v, st.values[v], values[v])
		}
	}
}

// TestDiskSmoke is the make-check slice: one storm cell end to end plus
// the read-fault taxonomy — fast enough for every pre-merge run.
func TestDiskSmoke(t *testing.T) {
	base := baselineState(t)
	rep := runStorm(t, fault.SiteDiskEIOSync, 0, base)
	if rep.Outcome == "" {
		t.Fatal("smoke storm produced no outcome")
	}
	if !strings.HasPrefix(rep.Outcome, "completed") && rep.Fired == 0 {
		t.Fatal("smoke storm never fired")
	}
}
