// Package serve is GPSA's long-lived, self-protecting graph service: a
// resident process that keeps graphs mmap'd hot, accepts concurrent job
// submissions over HTTP, and multiplexes them over per-job supervised
// actor systems with admission control and graceful degradation end to
// end.
//
// The robustness contract, torture-pinned by internal/servetest:
//
//   - Admission is bounded: a full priority queue sheds submissions with
//     429 + Retry-After, never unbounded memory.
//   - Every job runs under budgets: mailbox depth, a superstep cap, and
//     a wall-clock deadline whose expiry cancels the run's context — the
//     engine rolls the in-flight superstep back and seals the value file
//     resumable, so a deadline produces a checkpoint, not a zombie.
//   - Transient job failures retry with exponential backoff (the job
//     tier's core.MaxStepRetries); a (graph, program) pair that keeps
//     failing is quarantined by a circuit breaker.
//   - Completed results are cached by (graph digest, program, params).
//   - SIGTERM drains: admissions stop, /readyz flips not-ready,
//     in-flight jobs are checkpointed through the engine's seal path,
//     the job journal records every non-terminal job, and the process
//     exits 0.
//   - SIGKILL loses nothing: restarting with -resume-jobs replays the
//     journal and resumes every interrupted job from its sealed value
//     file, bit-identical to an undisturbed run.
package serve

import (
	"fmt"
	"path"
	"strings"
	"time"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// Job statuses. queued and running are non-terminal (a restart replays
// them from the journal); the rest are terminal except interrupted,
// which a -resume-jobs restart continues.
const (
	StatusQueued      = "queued"
	StatusRunning     = "running"
	StatusCompleted   = "completed"
	StatusFailed      = "failed"
	StatusDeadline    = "deadline_exceeded"
	StatusInterrupted = "interrupted"
)

// JobSpec is a job submission (the POST /v1/jobs body). Everything that
// affects the result bits is part of the result-cache key.
type JobSpec struct {
	// Graph names the CSR graph, as a path relative to the server's
	// graph root. Required.
	Graph string `json:"graph"`
	// Algo is one of pagerank, deltapagerank, bfs, cc, sssp. Required.
	Algo string `json:"algo"`
	// Root is the root/source vertex for bfs and sssp.
	Root int64 `json:"root,omitempty"`
	// Epsilon is the deltapagerank residual cut-off (0 = default).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Supersteps caps the run (0 = algorithm default: 5 for the
	// pagerank family, engine default otherwise).
	Supersteps int `json:"supersteps,omitempty"`
	// Priority orders the admission queue, 0 (lowest) to 9 (highest);
	// ties dequeue in submission order.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS is the job's wall-clock budget in milliseconds from
	// the moment it starts executing; 0 means the server default. On
	// expiry the run is cancelled, rolled back, and sealed.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Dispatchers/Computers size the job's actor pools (0 = server
	// default). Part of the cache key: float-valued programs fold in
	// worker order, so different pools may differ in the low bits.
	Dispatchers int `json:"dispatchers,omitempty"`
	Computers   int `json:"computers,omitempty"`
	// MailboxCap bounds the job's per-worker mailbox depth in batches
	// (0 = server default) — the job's memory budget.
	MailboxCap int `json:"mailbox_cap,omitempty"`
}

// normalize applies per-algorithm defaults so equal effective requests
// hash to equal cache keys.
func (s *JobSpec) normalize() {
	if s.Supersteps == 0 && (s.Algo == "pagerank" || s.Algo == "deltapagerank") {
		s.Supersteps = 5
	}
}

// validate rejects malformed specs before they reach the queue.
func (s *JobSpec) validate() error {
	if s.Graph == "" {
		return fmt.Errorf("graph is required")
	}
	clean := path.Clean(s.Graph)
	if path.IsAbs(clean) || clean == ".." || strings.HasPrefix(clean, "../") {
		return fmt.Errorf("graph %q must be a relative path inside the graph root", s.Graph)
	}
	switch s.Algo {
	case "pagerank", "deltapagerank", "bfs", "cc", "sssp":
	case "":
		return fmt.Errorf("algo is required")
	default:
		return fmt.Errorf("unknown algo %q", s.Algo)
	}
	if s.Priority < 0 || s.Priority > 9 {
		return fmt.Errorf("priority %d out of range [0,9]", s.Priority)
	}
	if s.Root < 0 || s.Supersteps < 0 || s.DeadlineMS < 0 ||
		s.Dispatchers < 0 || s.Computers < 0 || s.MailboxCap < 0 {
		return fmt.Errorf("negative values are not allowed")
	}
	return nil
}

// program instantiates the vertex program a spec names.
func (s JobSpec) program() (core.Program, error) {
	switch s.Algo {
	case "pagerank":
		return algorithms.PageRank{}, nil
	case "deltapagerank":
		return algorithms.DeltaPageRank{Epsilon: s.Epsilon}, nil
	case "bfs":
		return algorithms.BFS{Root: graph.VertexID(s.Root)}, nil
	case "cc":
		return algorithms.ConnectedComponents{}, nil
	case "sssp":
		return algorithms.SSSP{Source: graph.VertexID(s.Root)}, nil
	}
	return nil, fmt.Errorf("serve: unknown algo %q", s.Algo)
}

// cacheKey derives the result-cache key: the graph's content digest plus
// every spec field that can influence the committed value bits.
func (s JobSpec) cacheKey(graphDigest string) string {
	return fmt.Sprintf("%s|%s|root=%d|eps=%g|steps=%d|d=%d|c=%d",
		graphDigest, s.Algo, s.Root, s.Epsilon, s.Supersteps, s.Dispatchers, s.Computers)
}

// JobResult summarizes a completed run.
type JobResult struct {
	Supersteps   int    `json:"supersteps"`
	Converged    bool   `json:"converged"`
	Messages     int64  `json:"messages"`
	Updates      int64  `json:"updates"`
	DurationMS   int64  `json:"duration_ms"`
	ResumedFrom  int64  `json:"resumed_from,omitempty"`
	Recovery     string `json:"recovery,omitempty"`
	ValuesDigest string `json:"values_digest"`
}

// Job is one unit of admitted work. Fields are mutated only by the
// manager under its lock; View snapshots a consistent copy for handlers.
type Job struct {
	ID         string     `json:"id"`
	Spec       JobSpec    `json:"spec"`
	Status     string     `json:"status"`
	Error      string     `json:"error,omitempty"`
	Attempts   int        `json:"attempts"`
	Cached     bool       `json:"cached,omitempty"`
	Replayed   bool       `json:"replayed,omitempty"`
	ValuesPath string     `json:"values"`
	Result     *JobResult `json:"result,omitempty"`

	seq      int64  // admission order, tie-break within priority
	cacheKey string // filled when the graph digest is known
}

// view returns a copy safe to marshal outside the manager's lock.
func (j *Job) view() Job {
	cp := *j
	if j.Result != nil {
		r := *j.Result
		cp.Result = &r
	}
	return cp
}

// fmtResult converts an engine result into the API shape.
func fmtResult(res *gpsa.Result, digest uint64) *JobResult {
	if res == nil {
		return nil
	}
	return &JobResult{
		Supersteps:   res.Supersteps,
		Converged:    res.Converged,
		Messages:     res.Messages,
		Updates:      res.Updates,
		DurationMS:   res.Duration.Milliseconds(),
		ResumedFrom:  res.ResumedFrom,
		Recovery:     res.Recovery,
		ValuesDigest: fmt.Sprintf("%016x", digest),
	}
}

// Options configures a Server. Zero values select the documented
// defaults (withDefaults).
type Options struct {
	Addr     string // listen address, e.g. ":8090"
	GraphDir string // root of servable .gpsa graphs (required)
	JobsDir  string // value files + job journal (required)

	QueueCap     int           // bounded admission queue (default 64)
	Workers      int           // concurrent job executors (default 4)
	PerGraph     int           // concurrent jobs per graph (default 2)
	JobRetries   int           // job-tier retries on transient failure (default 2)
	RetryBackoff time.Duration // first retry backoff, doubles (default 100ms)

	BreakerThreshold int           // consecutive failures to quarantine (default 3)
	BreakerCooldown  time.Duration // quarantine duration (default 30s)

	DefaultDeadline time.Duration // per-job wall-clock budget (default 5m)
	MaxSupersteps   int           // hard superstep cap per job (default 200)
	MailboxCap      int           // default per-job mailbox depth (default 64)
	StepRetries     int           // in-run superstep retries (default 2)
	Watchdog        time.Duration // per-superstep worker silence bound (default 60s)

	ResumeJobs bool // replay the journal and resume interrupted jobs

	// MinFreeBytes gates admission on free space in JobsDir: below it,
	// the server enters disk-degraded mode instead of accepting a job it
	// cannot checkpoint. 0 disables the preflight.
	MinFreeBytes int64
	// DiskRetries bounds the retry-with-backoff on journal checkpoint
	// writes before the failure is declared persistent and the server
	// degrades (default 3; the submission path stays single-shot).
	DiskRetries int
	// ProbeInterval is the cadence of the degraded-mode recovery probe:
	// while degraded, the manager periodically writes, syncs, and removes
	// a probe file in JobsDir and re-checks free space; the first success
	// restores admissions (default 2s).
	ProbeInterval time.Duration
	// ScrubInterval enables the background scrub actor: every interval it
	// re-verifies resident graph CSR checksums and sealed job value files,
	// quarantining anything corrupt. 0 disables scrubbing.
	ScrubInterval time.Duration
	// ScrubThrottle caps the scrub read rate in bytes/sec (0 = unthrottled).
	ScrubThrottle int64

	Logf func(format string, args ...any) // optional diagnostics sink
}

func (o Options) withDefaults() Options {
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.PerGraph <= 0 {
		o.PerGraph = 2
	}
	if o.JobRetries < 0 {
		o.JobRetries = 0
	} else if o.JobRetries == 0 {
		o.JobRetries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 30 * time.Second
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 5 * time.Minute
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 200
	}
	if o.MailboxCap <= 0 {
		o.MailboxCap = 64
	}
	if o.StepRetries < 0 {
		o.StepRetries = 0
	} else if o.StepRetries == 0 {
		o.StepRetries = 2
	}
	if o.Watchdog <= 0 {
		o.Watchdog = 60 * time.Second
	}
	if o.DiskRetries < 0 {
		o.DiskRetries = 1
	} else if o.DiskRetries == 0 {
		o.DiskRetries = 3
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}
