package serve

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// breaker is a per-(graph, program) circuit breaker: after threshold
// consecutive job failures on the same pair, further submissions for it
// are refused for a cooldown, so a poisoned workload cannot monopolize
// workers with doomed retries. A success closes the circuit and clears
// the failure count.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu    sync.Mutex
	state map[string]*breakerEntry
}

type breakerEntry struct {
	failures  int
	openUntil time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, state: make(map[string]*breakerEntry)}
}

// allow reports whether key may submit; when refused it also returns
// how long until the quarantine lapses (the Retry-After hint).
func (b *breaker) allow(key string) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.state[key]
	if !ok {
		return true, 0
	}
	if left := time.Until(e.openUntil); left > 0 {
		metrics.Inc(metrics.CtrServeBreakerRejected)
		return false, left
	}
	return true, 0
}

// failure records a terminal job failure for key, returning true when
// this failure tripped the breaker open. A breaker that has lapsed into
// half-open keeps its failure count, so a single further failure
// re-opens it immediately.
func (b *breaker) failure(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.state[key]
	if !ok {
		e = &breakerEntry{}
		b.state[key] = e
	}
	e.failures++
	if e.failures >= b.threshold {
		e.openUntil = time.Now().Add(b.cooldown)
		e.failures = b.threshold - 1 // half-open: one more failure re-trips
		metrics.Inc(metrics.CtrServeBreakerOpen)
		return true
	}
	return false
}

// success closes the circuit for key.
func (b *breaker) success(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.state, key)
}
