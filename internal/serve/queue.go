package serve

import (
	"context"
	"errors"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// errQueueFull sheds a submission: the caller answers 429 + Retry-After.
var errQueueFull = errors.New("serve: admission queue full")

// errQueueClosed unwinds workers at drain time.
var errQueueClosed = errors.New("serve: admission queue closed")

// jobQueue is the bounded admission queue: jobs ordered by (priority
// desc, admission seq asc), capacity fixed at construction. Push never
// blocks — a full queue is an explicit shed, the backpressure the
// serving contract requires. pop blocks under a context and an
// eligibility predicate (per-graph concurrency caps), so a job whose
// graph is saturated does not block higher-indexed work behind it.
type jobQueue struct {
	mu     sync.Mutex
	items  []*Job // kept sorted: priority desc, seq asc
	cap    int
	closed bool
	// wake is a capacity-1 doorbell: pushes and slot releases ring it
	// with a non-blocking send, sleeping pops wait on it. A lost ring is
	// impossible — the channel holds one pending signal, and pop
	// re-scans before every wait.
	wake chan struct{}
}

func newJobQueue(capacity int) *jobQueue {
	return &jobQueue{cap: capacity, wake: make(chan struct{}, 1)}
}

// ring signals sleeping pops without ever blocking the caller.
func (q *jobQueue) ring() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// push admits j or reports the queue full/closed. O(n) insertion keeps
// the slice sorted; admission queues are small by design (bounded).
func (q *jobQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if len(q.items) >= q.cap {
		return errQueueFull
	}
	at := sort.Search(len(q.items), func(i int) bool {
		if q.items[i].Spec.Priority != j.Spec.Priority {
			return q.items[i].Spec.Priority < j.Spec.Priority
		}
		return q.items[i].seq > j.seq
	})
	q.items = append(q.items, nil)
	copy(q.items[at+1:], q.items[at:])
	q.items[at] = j
	metrics.SetGauge(metrics.GaugeServeQueueDepth, int64(len(q.items)))
	q.ring()
	return nil
}

// pop removes and returns the highest-priority job for which eligible
// returns true, blocking until one exists, ctx is cancelled, or the
// queue closes empty of eligible work. The eligible callback runs under
// the queue lock and may reserve resources (per-graph slots): if it
// returns true the job is dequeued and handed to the caller.
func (q *jobQueue) pop(ctx context.Context, eligible func(*Job) bool) (*Job, error) {
	for {
		q.mu.Lock()
		for i, j := range q.items {
			if eligible(j) {
				copy(q.items[i:], q.items[i+1:])
				q.items = q.items[:len(q.items)-1]
				metrics.SetGauge(metrics.GaugeServeQueueDepth, int64(len(q.items)))
				if len(q.items) > 0 {
					// Cascade the wakeup: the capacity-1 doorbell may have
					// coalesced several pushes into the signal that woke us,
					// so pass it on while work remains for other sleepers.
					q.ring()
				}
				q.mu.Unlock()
				return j, nil
			}
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return nil, errQueueClosed
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-q.wake:
		}
	}
}

// drain closes the queue and returns every job still waiting, so the
// manager can journal them as still-queued; sleeping pops unwind with
// errQueueClosed.
func (q *jobQueue) drain() []*Job {
	q.mu.Lock()
	q.closed = true
	left := q.items
	q.items = nil
	metrics.SetGauge(metrics.GaugeServeQueueDepth, 0)
	q.mu.Unlock()
	q.ring()
	return left
}

// depth returns the current queue length.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
