package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro"
	"repro/internal/actor"
	"repro/internal/diskio"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/scrub"
)

// Submission outcome errors the HTTP layer maps onto status codes.
var (
	// errDraining refuses submissions during graceful shutdown (503).
	errDraining = errors.New("serve: draining, not accepting jobs")
	// errBadRequest wraps spec validation failures (400).
	errBadRequest = errors.New("serve: invalid job spec")
	// errDiskDegraded refuses submissions while the jobs disk cannot
	// durably accept writes (503 + Retry-After): the server is read-only
	// until the recovery probe succeeds. Reads — job status, results,
	// metrics — keep serving throughout.
	errDiskDegraded = errors.New("serve: disk degraded, read-only: admissions suspended until the write probe succeeds")
)

// shedError is a refusal that carries a Retry-After hint: queue-full
// backpressure (429) and circuit-breaker quarantine (503).
type shedError struct {
	retryAfter time.Duration
	cause      error
}

func (e *shedError) Error() string { return e.cause.Error() }
func (e *shedError) Unwrap() error { return e.cause }

// errBreakerOpen is the cause inside a breaker shedError.
var errBreakerOpen = errors.New("serve: graph/program quarantined by circuit breaker")

// Manager is the job tier: it owns the admission queue, the resident
// graph registry, the worker pool (supervised actors), the job journal,
// the result cache, and the circuit breaker. All Job mutation happens
// under mu; workers communicate only through the queue and the journal.
//
// Lock order: mu before the queue's internal lock (Submit holds mu
// across push); slotsMu is leaf-only, taken inside the queue's eligible
// callback and never together with mu.
type Manager struct {
	opts Options
	reg  *graphRegistry
	q    *jobQueue
	jour *journal
	brk  *breaker

	sys    *actor.System
	jobCtx context.Context
	cancel context.CancelFunc

	scrubber *scrub.Scrubber // nil unless ScrubInterval > 0

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job IDs in admission order
	nextSeq  int64
	draining bool
	degraded bool // disk write path failing; admissions suspended

	slotsMu sync.Mutex
	slots   map[string]int // graph -> running job count

	cacheMu sync.Mutex
	cache   map[string]cachedResult
}

// cachedResult is one completed run retained for identical submissions.
type cachedResult struct {
	result     JobResult
	valuesPath string
}

// NewManager builds the job tier and starts its worker actors. With
// opts.ResumeJobs it first replays the job journal, re-queueing every
// job a previous process generation left non-terminal. The ctx bounds
// the manager's lifetime: cancelling it interrupts running jobs the
// same way Drain does.
func NewManager(ctx context.Context, opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if opts.GraphDir == "" || opts.JobsDir == "" {
		return nil, errors.New("serve: GraphDir and JobsDir are required")
	}
	if err := os.MkdirAll(opts.JobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating jobs dir: %w", err)
	}
	jour, err := openJournal(filepath.Join(opts.JobsDir, "jobs.journal"))
	if err != nil {
		return nil, err
	}
	jobCtx, cancel := context.WithCancel(ctx)
	m := &Manager{
		opts:   opts,
		reg:    newGraphRegistry(opts.GraphDir),
		q:      newJobQueue(opts.QueueCap),
		jour:   jour,
		brk:    newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		sys:    actor.NewSystemContext(jobCtx, "serve", actor.RestartPolicy{}),
		jobCtx: jobCtx,
		cancel: cancel,
		jobs:   make(map[string]*Job),
		slots:  make(map[string]int),
		cache:  make(map[string]cachedResult),
	}
	replay := m.syncSeqFromJournal
	if opts.ResumeJobs {
		replay = m.resumeFromJournal
	}
	if err := replay(); err != nil {
		cancel()
		jour.close()
		return nil, err
	}
	for i := 0; i < opts.Workers; i++ {
		name := fmt.Sprintf("serve-worker-%d", i)
		m.sys.SpawnFunc(name, func() error { return m.workerLoop(name) })
	}
	m.sys.SpawnFunc("serve-disk-probe", m.probeLoop)
	if opts.ScrubInterval > 0 {
		m.scrubber = scrub.New(scrub.Options{
			ThrottleBytesPerSec: opts.ScrubThrottle,
			ReportDir:           filepath.Join(opts.JobsDir, "scrub-reports"),
			Logf:                opts.Logf,
		})
		m.sys.SpawnFunc("serve-disk-scrub", m.scrubLoop)
	}
	return m, nil
}

// syncSeqFromJournal advances nextSeq past every ID already journaled,
// without rehydrating anything. A restart over a non-empty jobs
// directory WITHOUT -resume-jobs abandons the journaled jobs, but it
// must never mint an ID that collides with one of them — a reused ID
// names the abandoned job's sealed value file, and a new job with a
// different spec would silently resume the wrong computation from it.
// A corrupt journal refuses startup here too: the new generation
// appends to the same file.
func (m *Manager) syncSeqFromJournal() error {
	order, _, err := replayJournal(m.jour.path)
	if err != nil {
		return err
	}
	for _, id := range order {
		m.bumpSeq(id)
	}
	return nil
}

// bumpSeq advances nextSeq past id if it is a well-formed job ID.
func (m *Manager) bumpSeq(id string) {
	var n int64
	if _, err := fmt.Sscanf(id, "j-%d", &n); err == nil && n >= m.nextSeq {
		m.nextSeq = n + 1
	}
}

// resumeFromJournal re-queues every non-terminal job of the previous
// process generation and rehydrates terminal ones for GET visibility.
func (m *Manager) resumeFromJournal() error {
	order, states, err := replayJournal(m.jour.path)
	if err != nil {
		return err
	}
	for _, id := range order {
		st := states[id]
		m.bumpSeq(id)
		j := &Job{
			ID:         id,
			Spec:       st.Spec,
			Status:     st.Event,
			Error:      st.Error,
			Replayed:   true,
			ValuesPath: m.valuesPath(id),
			seq:        int64(st.seq),
		}
		if st.terminal() {
			if st.Event == StatusCompleted {
				j.Result = &JobResult{ValuesDigest: st.Digest}
			}
			m.jobs[id] = j
			m.order = append(m.order, id)
			continue
		}
		// submitted, interrupted: resume. runJob finds the sealed value
		// file (when one survived) and continues from its checkpoint;
		// otherwise the job simply runs from scratch — same result bits
		// either way, that is the recovery contract.
		j.Status = StatusQueued
		m.jobs[id] = j
		m.order = append(m.order, id)
		if err := m.q.push(j); err != nil {
			return fmt.Errorf("serve: re-queueing journaled job %s: %w", id, err)
		}
		metrics.Inc(metrics.CtrServeResumed)
		m.opts.Logf("serve: resumed job %s (%s on %s) from journal", id, st.Spec.Algo, st.Spec.Graph)
	}
	return nil
}

func (m *Manager) valuesPath(id string) string {
	return filepath.Join(m.opts.JobsDir, id+".values")
}

// Submit validates, admits, journals, and enqueues a job, or refuses it
// with a typed error the HTTP layer translates. The returned Job is a
// snapshot; poll Get for progress. A result-cache hit returns an
// already-completed job without touching the queue.
func (m *Manager) Submit(spec JobSpec) (Job, error) {
	spec.normalize()
	if err := spec.validate(); err != nil {
		return Job{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}

	m.mu.Lock()
	draining, degraded := m.draining, m.degraded
	m.mu.Unlock()
	if draining {
		return Job{}, errDraining
	}
	if degraded {
		return Job{}, &shedError{retryAfter: m.opts.ProbeInterval, cause: errDiskDegraded}
	}

	// Preflight: a job the server cannot checkpoint must not be admitted.
	// Running out of space mid-run turns a 503 the client can retry
	// elsewhere into a failed job, so the gate is here, before the 202.
	if m.opts.MinFreeBytes > 0 {
		if free, ferr := diskio.FreeSpace(m.opts.JobsDir); ferr == nil && free < uint64(m.opts.MinFreeBytes) {
			metrics.Inc(metrics.CtrDiskENOSPC)
			m.enterDegraded(fmt.Errorf("%d bytes free in jobs dir, need %d: %w",
				free, m.opts.MinFreeBytes, diskio.ErrDiskFull))
			return Job{}, &shedError{retryAfter: m.opts.ProbeInterval, cause: errDiskDegraded}
		}
	}

	// Resolve the graph first: a bad graph is a 400, and the digest keys
	// both the breaker and the cache. The registry keeps it resident.
	rg, err := m.reg.get(spec.Graph)
	if err != nil {
		return Job{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}

	bkey := spec.Graph + "|" + spec.Algo
	if ok, left := m.brk.allow(bkey); !ok {
		return Job{}, &shedError{retryAfter: left, cause: errBreakerOpen}
	}

	ckey := spec.cacheKey(rg.digest)
	m.cacheMu.Lock()
	hit, cached := m.cache[ckey]
	m.cacheMu.Unlock()
	if cached {
		metrics.Inc(metrics.CtrServeCacheHits)
		m.mu.Lock()
		j := m.newJobLocked(spec)
		j.Status = StatusCompleted
		j.Cached = true
		res := hit.result
		j.Result = &res
		j.ValuesPath = hit.valuesPath
		view := j.view()
		m.mu.Unlock()
		return view, nil
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return Job{}, errDraining
	}
	// Capacity check before journaling: every push happens under mu, so
	// depth < cap here guarantees the push below cannot fail — the
	// journal never records a job that was then shed.
	if m.q.depth() >= m.opts.QueueCap {
		metrics.Inc(metrics.CtrServeShed)
		return Job{}, &shedError{retryAfter: time.Second, cause: errQueueFull}
	}
	j := m.newJobLocked(spec)
	j.Status = StatusQueued
	j.ValuesPath = m.valuesPath(j.ID)
	j.cacheKey = ckey
	if err := m.jour.append(journalRecord{ID: j.ID, Event: "submitted", Spec: &j.Spec}); err != nil {
		// Not durable, not admitted: the 202 contract is journal-first.
		delete(m.jobs, j.ID)
		m.order = m.order[:len(m.order)-1]
		if isDiskErr(err) {
			// The journal write itself failed at the disk: flip read-only
			// now rather than refusing one submission at a time.
			m.enterDegradedLocked(err)
			return Job{}, &shedError{retryAfter: m.opts.ProbeInterval, cause: errDiskDegraded}
		}
		return Job{}, err
	}
	if err := m.q.push(j); err != nil {
		return Job{}, err // unreachable by the capacity check above
	}
	metrics.Inc(metrics.CtrServeAdmitted)
	return j.view(), nil
}

// newJobLocked allocates a Job with the next ID. Caller holds mu.
func (m *Manager) newJobLocked(spec JobSpec) *Job {
	id := fmt.Sprintf("j-%06d", m.nextSeq)
	j := &Job{ID: id, Spec: spec, seq: m.nextSeq}
	m.nextSeq++
	m.jobs[id] = j
	m.order = append(m.order, id)
	return j
}

// Get returns a snapshot of the named job.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.view(), true
}

// Jobs returns snapshots of every known job in admission order.
func (m *Manager) Jobs() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].view())
	}
	return out
}

// Draining reports whether the manager has stopped admitting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// eligible runs under the queue lock and reserves a per-graph slot for
// j; a graph at its concurrency cap leaves j queued without blocking
// later-queued jobs on other graphs. Leaf lock: slotsMu only.
func (m *Manager) eligible(j *Job) bool {
	m.slotsMu.Lock()
	defer m.slotsMu.Unlock()
	if m.slots[j.Spec.Graph] >= m.opts.PerGraph {
		return false
	}
	m.slots[j.Spec.Graph]++
	return true
}

// releaseSlot returns j's per-graph slot and re-rings the queue so a
// job that was waiting for this graph becomes eligible.
func (m *Manager) releaseSlot(j *Job) {
	m.slotsMu.Lock()
	m.slots[j.Spec.Graph]--
	if m.slots[j.Spec.Graph] <= 0 {
		delete(m.slots, j.Spec.Graph)
	}
	m.slotsMu.Unlock()
	m.q.ring()
}

// workerLoop is one worker actor: pop an eligible job, run it to a
// terminal state (or interruption), release its graph slot, repeat
// until the queue closes or the manager's context ends.
func (m *Manager) workerLoop(name string) error {
	for {
		j, err := m.q.pop(m.jobCtx, m.eligible)
		if err != nil {
			// Queue closed (drain) or context cancelled: clean exit.
			return nil
		}
		m.runJob(j)
		m.releaseSlot(j)
	}
}

// runJob drives one admitted job to a terminal state: attempt loop with
// exponential backoff on transient failures, an absolute wall-clock
// deadline spanning all attempts, rollback+seal on deadline or drain.
func (m *Manager) runJob(j *Job) {
	metrics.AddGauge(metrics.GaugeServeInflight, 1)
	defer metrics.AddGauge(metrics.GaugeServeInflight, -1)

	m.mu.Lock()
	j.Status = StatusRunning
	spec := j.Spec
	m.mu.Unlock()

	rg, err := m.reg.get(spec.Graph)
	if err != nil {
		m.finishJob(j, StatusFailed, nil, 0, err)
		return
	}
	if j.cacheKey == "" {
		m.mu.Lock()
		j.cacheKey = spec.cacheKey(rg.digest)
		m.mu.Unlock()
	}

	deadline := m.opts.DefaultDeadline
	if spec.DeadlineMS > 0 {
		deadline = time.Duration(spec.DeadlineMS) * time.Millisecond
	}
	// One absolute deadline across every attempt: retries spend the
	// job's budget, they do not extend it.
	runCtx, cancelRun := context.WithDeadline(m.jobCtx, time.Now().Add(deadline))
	defer cancelRun()

	backoff := m.opts.RetryBackoff
	for attempt := 0; ; attempt++ {
		m.mu.Lock()
		j.Attempts = attempt + 1
		m.mu.Unlock()

		vals, res, runErr := m.runAttempt(runCtx, rg, spec, j.ID)
		if runErr == nil {
			if ferr := fault.Error(fault.SiteServeJobFail); ferr != nil {
				// Injected post-run failure: treat as transient so the
				// retry/breaker machinery is exercised end to end.
				vals.Close() //lint:syncerr values already sealed by the engine's final durable commit; close is release-only
				runErr = ferr
			} else {
				digest := vals.Digest()
				vals.Close() //lint:syncerr values already sealed by the engine's final durable commit; close is release-only
				m.brk.success(spec.Graph + "|" + spec.Algo)
				m.finishJob(j, StatusCompleted, fmtResult(res, digest), digest, nil)
				return
			}
		}

		switch {
		case m.jobCtx.Err() != nil:
			// Drain or shutdown cancelled the job mid-run: the engine
			// rolled the in-flight superstep back and sealed the value
			// file; journal it interrupted so -resume-jobs continues it.
			m.finishJob(j, StatusInterrupted, nil, 0, runErr)
			return
		case errors.Is(runErr, context.DeadlineExceeded) || runCtx.Err() != nil:
			m.finishJob(j, StatusDeadline, nil, 0, runErr)
			return
		case attempt < m.opts.JobRetries:
			metrics.Inc(metrics.CtrServeRetries)
			m.opts.Logf("serve: job %s attempt %d failed (%v), retrying in %v", j.ID, attempt+1, runErr, backoff)
			t := time.NewTimer(backoff)
			select {
			case <-runCtx.Done():
				t.Stop()
				// Deadline or drain arrived during backoff; the last
				// attempt already sealed the value file.
				if m.jobCtx.Err() != nil {
					m.finishJob(j, StatusInterrupted, nil, 0, runCtx.Err())
				} else {
					m.finishJob(j, StatusDeadline, nil, 0, runCtx.Err())
				}
				return
			case <-t.C:
			}
			backoff *= 2
		default:
			m.finishJob(j, StatusFailed, nil, 0, runErr)
			return
		}
	}
}

// runAttempt executes one engine run for the job, resuming from the
// job's sealed value file when one exists (a previous attempt, a
// previous process generation, or a deadline checkpoint).
func (m *Manager) runAttempt(ctx context.Context, rg *residentGraph, spec JobSpec, id string) (*gpsa.Values, *gpsa.Result, error) {
	vpath := m.valuesPath(id)
	steps := spec.Supersteps
	if steps <= 0 || steps > m.opts.MaxSupersteps {
		steps = m.opts.MaxSupersteps
	}
	mailbox := spec.MailboxCap
	if mailbox <= 0 {
		mailbox = m.opts.MailboxCap
	}
	prog, err := spec.program()
	if err != nil {
		return nil, nil, err
	}
	opts := gpsa.RunOptions{
		Supersteps:  steps,
		Context:     ctx,
		Dispatchers: spec.Dispatchers,
		Computers:   spec.Computers,
		ValuesPath:  vpath,
		Resume:      gpsa.Resumable(vpath),
		StepRetries: m.opts.StepRetries,
		Watchdog:    m.opts.Watchdog,
		MailboxCap:  mailbox,
	}
	return gpsa.RunOn(rg.g, prog, opts)
}

// finishJob records a job's terminal (or interrupted) state in memory,
// in the journal, in the metrics, and — for completions — in the result
// cache and the circuit breaker.
func (m *Manager) finishJob(j *Job, status string, result *JobResult, digest uint64, runErr error) {
	rec := journalRecord{ID: j.ID, Event: status}
	if runErr != nil {
		rec.Error = runErr.Error()
	}

	m.mu.Lock()
	j.Status = status
	j.Result = result
	if runErr != nil {
		j.Error = runErr.Error()
	}
	spec := j.Spec
	ckey := j.cacheKey
	vpath := j.ValuesPath
	m.mu.Unlock()

	switch status {
	case StatusCompleted:
		rec.Digest = fmt.Sprintf("%016x", digest)
		metrics.Inc(metrics.CtrServeCompleted)
		if ckey != "" && result != nil {
			m.cacheMu.Lock()
			m.cache[ckey] = cachedResult{result: *result, valuesPath: vpath}
			m.cacheMu.Unlock()
		}
	case StatusFailed:
		metrics.Inc(metrics.CtrServeFailed)
		if m.brk.failure(spec.Graph + "|" + spec.Algo) {
			m.opts.Logf("serve: circuit breaker opened for %s|%s", spec.Graph, spec.Algo)
		}
	case StatusDeadline:
		metrics.Inc(metrics.CtrServeDeadlineExceeded)
	case StatusInterrupted:
		metrics.Inc(metrics.CtrServeInterrupted)
	}

	// Terminal records are checkpoints the job's durable outcome depends
	// on: retry with backoff before declaring the disk sick. Exhausting
	// the retries on a classified disk error means the write path is
	// persistently failing — degrade to read-only and let the probe
	// decide when to recover.
	if err := m.jour.appendRetry(rec, m.opts.DiskRetries, m.opts.RetryBackoff); err != nil {
		m.opts.Logf("serve: journaling %s for job %s: %v", status, j.ID, err)
		if isDiskErr(err) {
			m.enterDegraded(err)
		}
	}
}

// isDiskErr reports whether err carries a diskio class that indicates
// the disk, not the request, is the problem.
func isDiskErr(err error) bool {
	return errors.Is(err, diskio.ErrDiskFull) || errors.Is(err, diskio.ErrIOFailure)
}

// Degraded reports whether the manager is in disk-degraded (read-only)
// mode.
func (m *Manager) Degraded() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded
}

// enterDegraded flips the manager into disk-degraded mode: admissions
// refuse with 503, /readyz reports not-ready, and the recovery probe
// starts testing the disk. Idempotent.
func (m *Manager) enterDegraded(cause error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.enterDegradedLocked(cause)
}

func (m *Manager) enterDegradedLocked(cause error) {
	if m.degraded {
		return
	}
	m.degraded = true
	metrics.SetGauge(metrics.GaugeServeDiskDegraded, 1)
	m.opts.Logf("serve: entering disk-degraded mode (read-only): %v", cause)
}

// exitDegraded restores admissions after a successful disk probe.
func (m *Manager) exitDegraded() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.degraded {
		return
	}
	m.degraded = false
	metrics.SetGauge(metrics.GaugeServeDiskDegraded, 0)
	m.opts.Logf("serve: disk probe succeeded, leaving degraded mode")
}

// probeDisk is the recovery check: a durable write-sync-remove cycle in
// the jobs directory plus the free-space gate. It exercises exactly the
// failure classes that degrade the server (create, write, sync, space).
func (m *Manager) probeDisk() error {
	p := filepath.Join(m.opts.JobsDir, ".disk-probe")
	if err := diskio.WriteFile(p, []byte("probe\n"), 0o644); err != nil {
		os.Remove(p)
		return err
	}
	if err := os.Remove(p); err != nil {
		return diskio.Classify("remove", p, err)
	}
	if m.opts.MinFreeBytes > 0 {
		if free, err := diskio.FreeSpace(m.opts.JobsDir); err == nil && free < uint64(m.opts.MinFreeBytes) {
			return fmt.Errorf("serve: probe: %d bytes free, need %d: %w", free, m.opts.MinFreeBytes, diskio.ErrDiskFull)
		}
	}
	return nil
}

// probeLoop is the degraded-mode recovery actor: while degraded, probe
// the disk every ProbeInterval and restore admissions on the first
// success. Runs for the manager's lifetime; idle when healthy.
func (m *Manager) probeLoop() error {
	tick := time.NewTicker(m.opts.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.jobCtx.Done():
			return nil
		case <-tick.C:
			if !m.Degraded() {
				continue
			}
			if err := m.probeDisk(); err != nil {
				m.opts.Logf("serve: disk probe still failing: %v", err)
				continue
			}
			m.exitDegraded()
		}
	}
}

// scrubLoop is the background scrub actor for the serving tier.
func (m *Manager) scrubLoop() error {
	tick := time.NewTicker(m.opts.ScrubInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.jobCtx.Done():
			return nil
		case <-tick.C:
			m.ScrubNow()
		}
	}
}

// ScrubNow refreshes the scrub target set — every resident graph CSR
// plus the sealed value file of every terminal or interrupted job — and
// runs one pass. Value files have no serving-tier replica (the cluster
// repair path lives in internal/cluster), so corrupt ones quarantine
// with recompute-from-seed guidance. Returns the zero Report when
// scrubbing is disabled.
func (m *Manager) ScrubNow() scrub.Report {
	if m.scrubber == nil {
		return scrub.Report{}
	}
	for _, p := range m.reg.residentPaths() {
		m.scrubber.Add(scrub.Target{Path: p, Kind: scrub.KindGraph})
	}
	m.mu.Lock()
	for _, id := range m.order {
		j := m.jobs[id]
		switch j.Status {
		case StatusCompleted, StatusInterrupted, StatusDeadline:
			if _, err := os.Stat(j.ValuesPath); err == nil {
				m.scrubber.Add(scrub.Target{Path: j.ValuesPath, Kind: scrub.KindValues})
			}
		}
	}
	m.mu.Unlock()
	return m.scrubber.RunOnce()
}

// Drain performs graceful shutdown: admissions stop (Submit refuses,
// /readyz flips not-ready), queued jobs stay journaled for the next
// generation, running jobs are cancelled — the engine rolls their
// in-flight superstep back and seals their value files — and journaled
// interrupted. Drain returns once every worker has stopped.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.mu.Unlock()
	metrics.SetGauge(metrics.GaugeServeDraining, 1)
	m.opts.Logf("serve: draining: admissions stopped")

	left := m.q.drain()
	m.opts.Logf("serve: draining: %d queued jobs left journaled for resume", len(left))
	m.cancel()
	err := m.sys.Wait()
	m.reg.closeAll()
	if cerr := m.jour.close(); err == nil {
		err = cerr
	}
	if ctx.Err() != nil && err == nil {
		err = ctx.Err()
	}
	return err
}
