package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

func startTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	opts.Addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	srv, err := NewServer(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	return srv
}

func postJob(t *testing.T, addr string, spec JobSpec) *http.Response {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) Job {
	t.Helper()
	defer resp.Body.Close()
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

func TestServerSubmitPollComplete(t *testing.T) {
	opts := testOptions(t)
	rel := writeTestGraph(t, opts.GraphDir)
	srv := startTestServer(t, opts)
	defer srv.Shutdown(context.Background())

	resp := postJob(t, srv.Addr(), JobSpec{Graph: rel, Algo: "pagerank", Supersteps: 3, Dispatchers: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	j := decodeJob(t, resp)
	deadline := time.Now().Add(15 * time.Second)
	for {
		r, err := http.Get("http://" + srv.Addr() + "/v1/jobs/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		cur := decodeJob(t, r)
		if cur.Status == StatusCompleted {
			if cur.Result == nil || cur.Result.ValuesDigest == "" {
				t.Fatalf("completed without a digest: %+v", cur)
			}
			break
		}
		if cur.Status == StatusFailed || time.Now().After(deadline) {
			t.Fatalf("job %s: %q (%s)", j.ID, cur.Status, cur.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Identical resubmission: 200 from the cache, not 202.
	resp2 := postJob(t, srv.Addr(), JobSpec{Graph: rel, Algo: "pagerank", Supersteps: 3, Dispatchers: 1})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached submit = %d, want 200", resp2.StatusCode)
	}
	if j2 := decodeJob(t, resp2); !j2.Cached {
		t.Fatalf("resubmission not cached: %+v", j2)
	}
}

func TestServerRejectsBadSpecs(t *testing.T) {
	opts := testOptions(t)
	srv := startTestServer(t, opts)
	defer srv.Shutdown(context.Background())

	for name, spec := range map[string]JobSpec{
		"no algo":         {Graph: "g.gpsa"},
		"unknown algo":    {Graph: "g.gpsa", Algo: "zork"},
		"path escape":     {Graph: "../../etc/passwd", Algo: "cc"},
		"missing graph":   {Graph: "nope.gpsa", Algo: "cc"},
		"priority range":  {Graph: "g.gpsa", Algo: "cc", Priority: 11},
		"negative budget": {Graph: "g.gpsa", Algo: "cc", DeadlineMS: -1},
	} {
		resp := postJob(t, srv.Addr(), spec)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestServerShedsWith429AndRetryAfter(t *testing.T) {
	opts := testOptions(t)
	opts.QueueCap = 1
	opts.Workers = 1
	rel := writeTestGraph(t, opts.GraphDir)

	// Stall computer messages so the single worker stays busy while the
	// burst lands.
	fault.Activate(fault.NewPlan(1, fault.Injection{
		Site: fault.SiteComputerStall, Count: -1, Delay: time.Millisecond,
	}))
	defer fault.Deactivate()

	srv := startTestServer(t, opts)
	defer srv.Shutdown(context.Background())

	var shed int
	for i := 0; i < 12; i++ {
		resp := postJob(t, srv.Addr(), JobSpec{Graph: rel, Algo: "pagerank", Supersteps: 5, Dispatchers: 1,
			Epsilon: float64(i)}) // distinct params: no cache hits
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("burst submit %d = %d", i, resp.StatusCode)
		}
	}
	if shed == 0 {
		t.Fatal("12-job burst into a capacity-1 queue shed nothing")
	}
	// Shedding is backpressure, not amnesia: the metrics prove it.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "serve.shed") {
		t.Fatal("/metrics missing serve.shed")
	}
}

func TestServerReadyzFlipsWhileDraining(t *testing.T) {
	opts := testOptions(t)
	srv := startTestServer(t, opts)

	get := func(path string) int {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d", code)
	}
	if err := srv.Manager().Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while drained = %d, want 503", code)
	}
	// Submissions are refused outright.
	resp := postJob(t, srv.Addr(), JobSpec{Graph: "g.gpsa", Algo: "cc"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestServerListsJobs(t *testing.T) {
	opts := testOptions(t)
	rel := writeTestGraph(t, opts.GraphDir)
	srv := startTestServer(t, opts)
	defer srv.Shutdown(context.Background())

	for i := 0; i < 3; i++ {
		resp := postJob(t, srv.Addr(), JobSpec{Graph: rel, Algo: "bfs", Root: int64(i), Dispatchers: 1})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get("http://" + srv.Addr() + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(jobs))
	}
	for i, j := range jobs {
		if want := fmt.Sprintf("j-%06d", i); j.ID != want {
			t.Fatalf("job %d listed as %s, want %s (admission order)", i, j.ID, want)
		}
	}
}
