package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/diskio"
	"repro/internal/fault"
)

// journalRecord is one JSONL line of the job journal. A job's durable
// state is the last record bearing its id: "submitted" (with the full
// spec) opens it, a terminal event closes it, and anything else leaves
// it recoverable.
type journalRecord struct {
	ID    string   `json:"id"`
	Event string   `json:"event"` // submitted | completed | failed | deadline_exceeded | interrupted
	Spec  *JobSpec `json:"spec,omitempty"`
	// Digest records the sealed values digest on completed events, so a
	// replayed journal can validate a cached result file.
	Digest string `json:"digest,omitempty"`
	Error  string `json:"error,omitempty"`
}

// journal is the append-only, fsync-per-record job journal. An
// acknowledged submission (202) is durable before the response leaves
// the server: a SIGKILL at any instant loses no admitted job.
type journal struct {
	mu   sync.Mutex
	f    *diskio.File
	path string
}

func openJournal(path string) (*journal, error) {
	f, err := diskio.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening job journal: %w", err)
	}
	return &journal{f: f, path: path}, nil
}

// append writes one record and syncs it to disk. The fault site fires
// before the write (simulated journal I/O failure: the submission must
// be refused, not acknowledged undurably); the kill site fires between
// write and sync, so torture runs can die with a torn journal tail —
// which replay tolerates.
func (j *journal) append(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: encoding journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := fault.Error(fault.SiteServeJournalSync); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	fault.Crash(fault.SiteKillServeJournal)
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	return nil
}

// appendRetry appends a record with bounded retry-with-backoff, for the
// terminal checkpoint events a job's outcome depends on: a transient
// disk hiccup must not lose a completion record when waiting a beat
// would have saved it. The submission path deliberately stays
// single-shot (refuse fast, let the client retry); only checkpoints
// earn patience. The returned error, when all attempts fail, carries
// the typed diskio class of the last failure.
func (j *journal) appendRetry(rec journalRecord, attempts int, backoff time.Duration) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 && backoff > 0 {
			time.Sleep(backoff << (i - 1))
		}
		if err = j.append(rec); err == nil {
			return nil
		}
	}
	return err
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// journalState is a job's durable state reduced from the journal.
type journalState struct {
	Spec   JobSpec
	Event  string // last event seen
	Digest string
	Error  string
	seq    int // submission order
}

// terminal reports whether the job needs no recovery. Interrupted jobs
// are deliberately non-terminal: a -resume-jobs restart continues them.
func (s journalState) terminal() bool {
	switch s.Event {
	case StatusCompleted, StatusFailed, StatusDeadline:
		return true
	}
	return false
}

// replayJournal reduces the journal at path to per-job durable state,
// in submission order. A torn final line (a crash mid-append) is
// tolerated and ignored; corruption anywhere else is an error — a
// journal that lies about earlier jobs must not replay silently.
func replayJournal(path string) ([]string, map[string]journalState, error) {
	f, err := diskio.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, map[string]journalState{}, nil
		}
		return nil, nil, err
	}
	defer f.Close() //lint:syncerr read-only replay: no writes to lose

	states := make(map[string]journalState)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		if pendingErr != nil {
			// A malformed line followed by more lines is real corruption,
			// not a torn tail.
			return nil, nil, pendingErr
		}
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			pendingErr = fmt.Errorf("serve: journal %s line %d: %w", path, line, err)
			continue
		}
		if rec.ID == "" || rec.Event == "" {
			pendingErr = fmt.Errorf("serve: journal %s line %d: missing id or event", path, line)
			continue
		}
		st, seen := states[rec.ID]
		if !seen {
			if rec.Event != "submitted" || rec.Spec == nil {
				// An event for a job whose submission record is missing:
				// only possible as a torn tail of the previous generation's
				// final append racing the submission sync. Tolerate at tail.
				pendingErr = fmt.Errorf("serve: journal %s line %d: %s for unknown job %s", path, line, rec.Event, rec.ID)
				continue
			}
			st = journalState{Spec: *rec.Spec, seq: len(order)}
			order = append(order, rec.ID)
		}
		st.Event = rec.Event
		if rec.Event == "submitted" && rec.Spec != nil {
			st.Spec = *rec.Spec
		}
		if rec.Digest != "" {
			st.Digest = rec.Digest
		}
		if rec.Error != "" {
			st.Error = rec.Error
		}
		states[rec.ID] = st
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("serve: reading journal %s: %w", path, err)
	}
	// pendingErr still set here means the bad line was the file's last —
	// a torn tail from a mid-append crash. The record it would have
	// carried was never acknowledged; drop it.
	return order, states, nil
}
