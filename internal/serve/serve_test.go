package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/diskio"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/metrics"
)

// writeTestGraph saves a small RMAT graph under dir and returns its
// relative name.
func writeTestGraph(t *testing.T, dir string) string {
	t.Helper()
	g, err := gen.RMATGraph(gen.RMATConfig{Vertices: 300, Edges: 1500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := gpsa.SaveGraph(filepath.Join(dir, "g.gpsa"), g); err != nil {
		t.Fatal(err)
	}
	return "g.gpsa"
}

func testOptions(t *testing.T) Options {
	t.Helper()
	root := t.TempDir()
	graphs := filepath.Join(root, "graphs")
	if err := os.MkdirAll(graphs, 0o755); err != nil {
		t.Fatal(err)
	}
	return Options{
		GraphDir:     graphs,
		JobsDir:      filepath.Join(root, "jobs"),
		Workers:      2,
		RetryBackoff: 5 * time.Millisecond,
		Logf:         t.Logf,
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	q := newJobQueue(8)
	mk := func(seq int64, prio int) *Job {
		return &Job{ID: fmt.Sprintf("j-%d", seq), Spec: JobSpec{Priority: prio}, seq: seq}
	}
	for _, j := range []*Job{mk(0, 1), mk(1, 5), mk(2, 5), mk(3, 9)} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	all := func(*Job) bool { return true }
	var got []string
	for i := 0; i < 4; i++ {
		j, err := q.pop(ctx, all)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, j.ID)
	}
	want := "j-3 j-1 j-2 j-0" // priority desc, seq asc within ties
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("pop order %q, want %q", s, want)
	}
}

func TestQueueShedsWhenFull(t *testing.T) {
	q := newJobQueue(2)
	for i := int64(0); i < 2; i++ {
		if err := q.push(&Job{seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.push(&Job{seq: 9}); err != errQueueFull {
		t.Fatalf("push on full queue = %v, want errQueueFull", err)
	}
}

func TestQueueEligibilitySkipsSaturatedGraph(t *testing.T) {
	q := newJobQueue(8)
	busy := &Job{ID: "busy", Spec: JobSpec{Graph: "a", Priority: 9}, seq: 0}
	free := &Job{ID: "free", Spec: JobSpec{Graph: "b", Priority: 1}, seq: 1}
	if err := q.push(busy); err != nil {
		t.Fatal(err)
	}
	if err := q.push(free); err != nil {
		t.Fatal(err)
	}
	// The higher-priority job's graph is saturated: pop must hand out
	// the lower-priority one instead of blocking behind it.
	j, err := q.pop(context.Background(), func(j *Job) bool { return j.Spec.Graph != "a" })
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "free" {
		t.Fatalf("popped %q, want the eligible lower-priority job", j.ID)
	}
}

func TestJournalReplayToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := &JobSpec{Graph: "g.gpsa", Algo: "pagerank", Supersteps: 5}
	if err := j.append(journalRecord{ID: "j-000000", Event: "submitted", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{ID: "j-000000", Event: StatusCompleted, Digest: "deadbeef"}); err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{ID: "j-000001", Event: "submitted", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, partial final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"j-000002","ev`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	order, states, err := replayJournal(path)
	if err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	if len(order) != 2 {
		t.Fatalf("replayed %d jobs, want 2 (torn tail dropped)", len(order))
	}
	if st := states["j-000000"]; !st.terminal() || st.Digest != "deadbeef" {
		t.Fatalf("j-000000 state = %+v, want terminal completed", st)
	}
	if st := states["j-000001"]; st.terminal() {
		t.Fatalf("j-000001 should be non-terminal (needs resume), got %+v", st)
	}
}

func TestJournalReplayRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	body := `{"id":"j-000000","event":"submitted","spec":{"graph":"g","algo":"cc"}}` + "\n" +
		"{garbage\n" +
		`{"id":"j-000001","event":"submitted","spec":{"graph":"g","algo":"cc"}}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := replayJournal(path); err == nil {
		t.Fatal("mid-file corruption replayed silently, want error")
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	b := newBreaker(2, 50*time.Millisecond)
	if tripped := b.failure("k"); tripped {
		t.Fatal("tripped after one failure, threshold is 2")
	}
	if tripped := b.failure("k"); !tripped {
		t.Fatal("did not trip at threshold")
	}
	if ok, left := b.allow("k"); ok || left <= 0 {
		t.Fatalf("allow during quarantine = (%v, %v)", ok, left)
	}
	time.Sleep(60 * time.Millisecond)
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("still quarantined after cooldown")
	}
	// Half-open: a single failure re-trips immediately.
	if tripped := b.failure("k"); !tripped {
		t.Fatal("half-open breaker did not re-trip on next failure")
	}
	b.success("k")
	if tripped := b.failure("k"); tripped {
		t.Fatal("success did not reset the failure count")
	}
}

func TestManagerRunsJobAndCaches(t *testing.T) {
	opts := testOptions(t)
	rel := writeTestGraph(t, opts.GraphDir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, err := NewManager(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Graph: rel, Algo: "pagerank", Supersteps: 3, Dispatchers: 1}
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusQueued {
		t.Fatalf("submitted job status %q", j.Status)
	}
	done := waitStatus(t, m, j.ID, 10*time.Second)
	if done.Status != StatusCompleted || done.Result == nil {
		t.Fatalf("job finished %q (%s), want completed", done.Status, done.Error)
	}
	if done.Result.Supersteps != 3 {
		t.Fatalf("ran %d supersteps, want 3", done.Result.Supersteps)
	}

	// The identical submission must come back from the result cache,
	// with the same values digest, without queueing.
	j2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Cached || j2.Status != StatusCompleted {
		t.Fatalf("second submission not served from cache: %+v", j2)
	}
	if j2.Result.ValuesDigest != done.Result.ValuesDigest {
		t.Fatalf("cached digest %s != original %s", j2.Result.ValuesDigest, done.Result.ValuesDigest)
	}

	// Different params miss the cache.
	j3, err := m.Submit(JobSpec{Graph: rel, Algo: "pagerank", Supersteps: 4, Dispatchers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if j3.Cached {
		t.Fatal("different supersteps hit the cache")
	}
	waitStatus(t, m, j3.ID, 10*time.Second)

	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestManagerDeadlineSealsResumable(t *testing.T) {
	opts := testOptions(t)
	rel := writeTestGraph(t, opts.GraphDir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Stall every computer message long enough that a 50ms deadline
	// expires mid-run.
	fault.Activate(fault.NewPlan(1, fault.Injection{
		Site: fault.SiteComputerStall, Count: -1, Delay: 2 * time.Millisecond,
	}))
	defer fault.Deactivate()

	m, err := NewManager(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(JobSpec{Graph: rel, Algo: "pagerank", Supersteps: 5, Dispatchers: 1, DeadlineMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, m, j.ID, 15*time.Second)
	if done.Status != StatusDeadline {
		t.Fatalf("job finished %q, want deadline_exceeded", done.Status)
	}
	if got := metrics.Counter(metrics.CtrServeDeadlineExceeded); got == 0 {
		t.Fatal("serve.deadline_exceeded not incremented")
	}
	// The deadline must leave a checkpoint, not a corpse: the value
	// file seals resumable.
	if !gpsa.Resumable(done.ValuesPath) {
		t.Fatalf("value file %s not resumable after deadline", done.ValuesPath)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestManagerRetriesTransientThenFails(t *testing.T) {
	opts := testOptions(t)
	opts.JobRetries = 2
	opts.BreakerThreshold = 1
	rel := writeTestGraph(t, opts.GraphDir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Every attempt fails post-run: 1 initial + 2 retries, then the
	// job fails terminally and trips the (threshold 1) breaker.
	fault.Activate(fault.NewPlan(1, fault.Injection{
		Site: fault.SiteServeJobFail, Count: -1,
	}))
	defer fault.Deactivate()
	metrics.ResetCounters()

	m, err := NewManager(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(JobSpec{Graph: rel, Algo: "cc", Dispatchers: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, m, j.ID, 15*time.Second)
	if done.Status != StatusFailed {
		t.Fatalf("job finished %q, want failed", done.Status)
	}
	if done.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", done.Attempts)
	}
	if got := metrics.Counter(metrics.CtrServeRetries); got != 2 {
		t.Fatalf("serve.retries = %d, want 2", got)
	}

	// The breaker is now open for this (graph, program): submissions
	// shed with a Retry-After.
	_, err = m.Submit(JobSpec{Graph: rel, Algo: "cc", Dispatchers: 1})
	var shed *shedError
	if !asShed(err, &shed) || shed.cause != errBreakerOpen {
		t.Fatalf("submission during quarantine = %v, want breaker shed", err)
	}
	// A different program on the same graph is unaffected.
	fault.Deactivate()
	j2, err := m.Submit(JobSpec{Graph: rel, Algo: "bfs", Dispatchers: 1})
	if err != nil {
		t.Fatalf("bfs on quarantined graph's other program: %v", err)
	}
	if d := waitStatus(t, m, j2.ID, 15*time.Second); d.Status != StatusCompleted {
		t.Fatalf("bfs finished %q (%s)", d.Status, d.Error)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestManagerJournalFailureRefusesAdmission(t *testing.T) {
	opts := testOptions(t)
	rel := writeTestGraph(t, opts.GraphDir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, err := NewManager(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(fault.NewPlan(1, fault.Injection{
		Site: fault.SiteServeJournalSync, Count: 1,
	}))
	defer fault.Deactivate()
	if _, err := m.Submit(JobSpec{Graph: rel, Algo: "cc", Dispatchers: 1}); err == nil {
		t.Fatal("submission acknowledged without a durable journal record")
	}
	// The failed submission must not leak into the job table.
	if jobs := m.Jobs(); len(jobs) != 0 {
		t.Fatalf("job table has %d entries after refused admission", len(jobs))
	}
	fault.Deactivate()
	j, err := m.Submit(JobSpec{Graph: rel, Algo: "cc", Dispatchers: 1})
	if err != nil {
		t.Fatalf("submission after journal recovered: %v", err)
	}
	waitStatus(t, m, j.ID, 15*time.Second)
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestManagerDrainInterruptsAndResumeCompletes(t *testing.T) {
	opts := testOptions(t)
	rel := writeTestGraph(t, opts.GraphDir)

	// Reference: the undisturbed digest for the same spec.
	refOpts := testOptions(t)
	refRel := writeTestGraph(t, refOpts.GraphDir)
	if refRel != rel {
		t.Fatal("test graphs must be identical")
	}
	spec := JobSpec{Graph: rel, Algo: "pagerank", Supersteps: 5, Dispatchers: 1}
	refCtx, refCancel := context.WithCancel(context.Background())
	defer refCancel()
	refM, err := NewManager(refCtx, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	refJob, err := refM.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	refDone := waitStatus(t, refM, refJob.ID, 15*time.Second)
	if refDone.Status != StatusCompleted {
		t.Fatalf("reference run finished %q", refDone.Status)
	}
	if err := refM.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Disturbed: stall computers so the drain lands mid-run.
	fault.Activate(fault.NewPlan(1, fault.Injection{
		Site: fault.SiteComputerStall, Count: -1, Delay: time.Millisecond,
	}))
	defer fault.Deactivate()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, err := NewManager(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let it start, then drain out from under it.
	deadlineAt := time.Now().Add(10 * time.Second)
	for {
		cur, _ := m.Get(j.ID)
		if cur.Status == StatusRunning {
			break
		}
		if time.Now().After(deadlineAt) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	fault.Deactivate()
	cur, _ := m.Get(j.ID)
	if cur.Status != StatusInterrupted && cur.Status != StatusCompleted {
		t.Fatalf("after drain job is %q, want interrupted (or completed if it won the race)", cur.Status)
	}

	// New generation with -resume-jobs: the journal replays the job and
	// it completes with the undisturbed digest.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	opts2 := opts
	opts2.ResumeJobs = true
	m2, err := NewManager(ctx2, opts2)
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, m2, j.ID, 15*time.Second)
	if done.Status != StatusCompleted {
		t.Fatalf("resumed job finished %q (%s)", done.Status, done.Error)
	}
	if !done.Replayed {
		t.Fatal("resumed job not marked replayed")
	}
	if done.Result.ValuesDigest != refDone.Result.ValuesDigest {
		t.Fatalf("resumed digest %s != undisturbed %s", done.Result.ValuesDigest, refDone.Result.ValuesDigest)
	}
	if err := m2.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// A restart over a used jobs directory WITHOUT ResumeJobs abandons the
// journaled jobs but must not reuse their IDs: a recycled ID names the
// abandoned job's sealed value file, and a new job with a different
// spec would silently resume the wrong computation from it.
func TestManagerFreshStartSkipsJournaledIDs(t *testing.T) {
	opts := testOptions(t)
	rel := writeTestGraph(t, opts.GraphDir)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, err := NewManager(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(JobSpec{Graph: rel, Algo: "pagerank", Supersteps: 5, Dispatchers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "j-000000" {
		t.Fatalf("first job ID %s", j.ID)
	}
	if got := waitStatus(t, m, j.ID, 15*time.Second); got.Status != StatusCompleted {
		t.Fatalf("first job finished %q", got.Status)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Second generation, same JobsDir, no ResumeJobs.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	m2, err := NewManager(ctx2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := m2.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	if _, ok := m2.Get(j.ID); ok {
		t.Fatal("fresh start rehydrated an abandoned job")
	}
	j2, err := m2.Submit(JobSpec{Graph: rel, Algo: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID == j.ID {
		t.Fatalf("fresh start reused journaled ID %s", j2.ID)
	}
	if j2.ID != "j-000001" {
		t.Fatalf("second-generation job ID %s, want j-000001", j2.ID)
	}
	if got := waitStatus(t, m2, j2.ID, 15*time.Second); got.Status != StatusCompleted {
		t.Fatalf("second-generation job finished %q", got.Status)
	}
}

func asShed(err error, target **shedError) bool {
	if err == nil {
		return false
	}
	se, ok := err.(*shedError)
	if ok {
		*target = se
	}
	return ok
}

// waitStatus polls until the job reaches a terminal status.
// TestJournalShortWriteRefusesButKeepsPriorRecords pins the journal
// under a torn write: the failing append surfaces typed, and replay
// still reads every previously acknowledged record — the short write's
// partial line is a tolerated torn tail, never silent corruption.
func TestJournalShortWriteRefusesButKeepsPriorRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := &JobSpec{Graph: "g.gpsa", Algo: "cc"}
	if err := j.append(journalRecord{ID: "j-000000", Event: "submitted", Spec: spec}); err != nil {
		t.Fatal(err)
	}

	fault.Activate(fault.NewPlan(1, fault.Injection{Site: fault.SiteDiskShortWrite}))
	defer fault.Deactivate()
	err = j.append(journalRecord{ID: "j-000001", Event: "submitted", Spec: spec})
	if err == nil {
		t.Fatal("short-written append acknowledged")
	}
	if !errors.Is(err, diskio.ErrIOFailure) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append error not typed: %v", err)
	}
	fault.Deactivate()
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	order, states, err := replayJournal(path)
	if err != nil {
		t.Fatalf("replay over torn tail: %v", err)
	}
	if len(order) != 1 || order[0] != "j-000000" {
		t.Fatalf("replayed %v, want exactly the acknowledged job", order)
	}
	if st := states["j-000000"]; st.Event != "submitted" || st.Spec.Algo != "cc" {
		t.Fatalf("prior record damaged: %+v", st)
	}
}

// TestJournalReplayEIOTyped pins replay under a failing disk: the read
// error surfaces typed (startup refuses rather than resuming from a
// journal it could not read), and the same journal replays fine once
// the disk heals.
func TestJournalReplayEIOTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{ID: "j-000000", Event: "submitted", Spec: &JobSpec{Graph: "g", Algo: "cc"}}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	fault.Activate(fault.NewPlan(1, fault.Injection{Site: fault.SiteDiskEIORead}))
	defer fault.Deactivate()
	if _, _, err := replayJournal(path); !errors.Is(err, diskio.ErrIOFailure) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("replay on failing disk = %v, want typed i/o failure", err)
	}
	fault.Deactivate()

	order, _, err := replayJournal(path)
	if err != nil || len(order) != 1 {
		t.Fatalf("replay after heal: %v %v", order, err)
	}
}

// TestManagerDiskDegradedAndRecovers pins the degraded-mode state
// machine: a journal write failing at the disk flips the manager
// read-only (typed 503 refusal, gauge set), later submissions are
// refused without touching the disk, and the recovery probe restores
// admissions once writes succeed again.
func TestManagerDiskDegradedAndRecovers(t *testing.T) {
	metrics.ResetGauges()
	opts := testOptions(t)
	rel := writeTestGraph(t, opts.GraphDir)
	opts.ProbeInterval = 10 * time.Millisecond
	opts.DiskRetries = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, err := NewManager(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())

	// Every disk write fails until the plan is deactivated.
	fault.Activate(fault.NewPlan(1, fault.Injection{
		Site: fault.SiteDiskEIOWrite, Count: -1,
	}))
	defer fault.Deactivate()

	spec := JobSpec{Graph: rel, Algo: "cc", Dispatchers: 1}
	if _, err := m.Submit(spec); !errors.Is(err, errDiskDegraded) {
		t.Fatalf("submit on failing disk = %v, want errDiskDegraded", err)
	}
	if !m.Degraded() {
		t.Fatal("manager not degraded after journal disk failure")
	}
	if v := metrics.GaugeValue(metrics.GaugeServeDiskDegraded); v != 1 {
		t.Fatalf("serve.disk.degraded = %d, want 1", v)
	}
	// Degraded refusals are immediate and typed; nothing touches the disk.
	if _, err := m.Submit(spec); !errors.Is(err, errDiskDegraded) {
		t.Fatalf("submit while degraded = %v, want errDiskDegraded", err)
	}

	fault.Deactivate()
	deadline := time.Now().Add(5 * time.Second)
	for m.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("probe never restored admissions after the disk healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := metrics.GaugeValue(metrics.GaugeServeDiskDegraded); v != 0 {
		t.Fatalf("serve.disk.degraded = %d after recovery, want 0", v)
	}
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	done := waitStatus(t, m, j.ID, 10*time.Second)
	if done.Status != StatusCompleted {
		t.Fatalf("post-recovery job finished %q (%s), want completed", done.Status, done.Error)
	}
}

// TestManagerFreeSpacePreflightDegrades pins the admission gate: a
// free-space probe below MinFreeBytes refuses the job with the typed
// degraded error before anything is journaled, and counts disk.enospc.
func TestManagerFreeSpacePreflightDegrades(t *testing.T) {
	metrics.ResetCounters()
	opts := testOptions(t)
	rel := writeTestGraph(t, opts.GraphDir)
	opts.MinFreeBytes = 1 // any nonzero: the fault makes the probe read 0
	opts.ProbeInterval = 10 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, err := NewManager(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())

	fault.Activate(fault.NewPlan(1, fault.Injection{
		Site: fault.SiteDiskENOSPCPreflight, Count: -1,
	}))
	defer fault.Deactivate()

	spec := JobSpec{Graph: rel, Algo: "cc", Dispatchers: 1}
	if _, err := m.Submit(spec); !errors.Is(err, errDiskDegraded) {
		t.Fatalf("submit with no free space = %v, want errDiskDegraded", err)
	}
	if metrics.Counter(metrics.CtrDiskENOSPC) == 0 {
		t.Fatal("disk.enospc not counted by the preflight refusal")
	}

	fault.Deactivate()
	deadline := time.Now().Add(5 * time.Second)
	for m.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("probe never restored admissions after space freed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	waitStatus(t, m, j.ID, 10*time.Second)
}

// TestManagerScrubNow pins the serving-tier scrub pass: resident graphs
// and sealed job value files are verified, and a healthy set is clean.
func TestManagerScrubNow(t *testing.T) {
	opts := testOptions(t)
	rel := writeTestGraph(t, opts.GraphDir)
	opts.ScrubInterval = time.Hour // actor idle; drive passes by hand
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, err := NewManager(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())

	j, err := m.Submit(JobSpec{Graph: rel, Algo: "cc", Dispatchers: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, m, j.ID, 10*time.Second)
	if done.Status != StatusCompleted {
		t.Fatalf("job finished %q (%s)", done.Status, done.Error)
	}
	rep := m.ScrubNow()
	if !rep.Clean() {
		t.Fatalf("healthy serving tier not clean: %+v", rep)
	}
	// Graph CSR + the completed job's sealed value file.
	if rep.Scrubbed != 2 {
		t.Fatalf("scrubbed %d artifacts, want 2 (resident graph + sealed values)", rep.Scrubbed)
	}
}

func waitStatus(t *testing.T, m *Manager, id string, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch j.Status {
		case StatusCompleted, StatusFailed, StatusDeadline, StatusInterrupted:
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q after %v", id, j.Status, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
