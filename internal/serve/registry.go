package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro"
	"repro/internal/metrics"
)

// residentGraph is one graph kept open (mmap'd, hot) for the server's
// lifetime, shared by every job that names it.
type residentGraph struct {
	g      *gpsa.Graph
	digest string // content digest, the cache-key prefix
}

// graphRegistry opens each servable graph once and keeps it resident.
// Opening is serialized per registry (cold opens are rare and cheap
// relative to a job); lookups after the first are a map read.
type graphRegistry struct {
	root string

	mu     sync.Mutex
	graphs map[string]*residentGraph
}

func newGraphRegistry(root string) *graphRegistry {
	return &graphRegistry{root: root, graphs: make(map[string]*residentGraph)}
}

// get returns the resident handle for the graph named by rel (a
// validated spec's relative path), opening and digesting it on first
// use.
func (r *graphRegistry) get(rel string) (*residentGraph, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rg, ok := r.graphs[rel]; ok {
		return rg, nil
	}
	full := filepath.Join(r.root, filepath.FromSlash(rel))
	g, err := gpsa.OpenGraph(full)
	if err != nil {
		return nil, fmt.Errorf("serve: opening graph %s: %w", rel, err)
	}
	dig, err := graphDigest(full, g)
	if err != nil {
		g.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
		return nil, fmt.Errorf("serve: digesting graph %s: %w", rel, err)
	}
	rg := &residentGraph{g: g, digest: dig}
	r.graphs[rel] = rg
	metrics.SetGauge(metrics.GaugeServeResidentGraphs, int64(len(r.graphs)))
	return rg, nil
}

// residentPaths returns the absolute CSR path of every resident graph
// (the scrub actor's graph target set).
func (r *graphRegistry) residentPaths() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.graphs))
	for rel := range r.graphs {
		out = append(out, filepath.Join(r.root, filepath.FromSlash(rel)))
	}
	return out
}

// closeAll releases every resident graph (shutdown, after all jobs have
// stopped).
func (r *graphRegistry) closeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, rg := range r.graphs {
		rg.g.Close() //lint:syncerr process/registry teardown; best-effort release of read-only mappings
		delete(r.graphs, name)
	}
	metrics.SetGauge(metrics.GaugeServeResidentGraphs, 0)
}

// graphDigest derives a content digest for the result cache: vertex and
// edge counts, file size, and the first 64 KiB of the CSR file. Not
// cryptographic — it distinguishes "same path, different graph" (a
// rebuilt dataset) cheaply without streaming multi-GB files at open.
func graphDigest(path string, g *gpsa.Graph) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close() //lint:syncerr read-only handle; no durability contract on close
	st, err := f.Stat()
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.NumEdges()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(st.Size()))
	h.Write(hdr[:])
	if _, err := io.CopyN(h, f, 64<<10); err != nil && err != io.EOF {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
