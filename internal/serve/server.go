package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/actor"
	"repro/internal/metrics"
)

// Server is the HTTP face of the job tier. It owns a Manager and a
// listener; Start binds the address (so tests can read Addr before any
// request), Serve runs until Shutdown.
type Server struct {
	m    *Manager
	opts Options
	ln   net.Listener
	hs   *http.Server
	sys  *actor.System
}

// NewServer builds the manager and binds the listen address. The ctx
// bounds the server's lifetime the same way it bounds the manager's.
func NewServer(ctx context.Context, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	m, err := NewManager(ctx, opts)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		drainCtx, cancel := context.WithTimeout(ctx, time.Second)
		m.Drain(drainCtx)
		cancel()
		return nil, fmt.Errorf("serve: listening on %s: %w", opts.Addr, err)
	}
	s := &Server{
		m:    m,
		opts: opts,
		ln:   ln,
		sys:  actor.NewSystemContext(ctx, "serve-http", actor.RestartPolicy{}),
	}
	s.hs = &http.Server{Handler: s.routes()}
	return s, nil
}

// Addr returns the bound listen address (useful with Addr ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Manager exposes the job tier (tests submit and inspect through it).
func (s *Server) Manager() *Manager { return s.m }

// Start begins serving requests on the bound listener without blocking.
func (s *Server) Start() {
	s.sys.SpawnFunc("serve-http-listener", func() error {
		if err := s.hs.Serve(s.ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	})
}

// Shutdown drains gracefully: admissions stop, in-flight jobs
// checkpoint through the engine's seal path, the journal records every
// non-terminal job, and the HTTP server closes. Safe to call more than
// once.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.m.Drain(ctx)
	if herr := s.hs.Shutdown(ctx); herr != nil && !errors.Is(herr, context.Canceled) && err == nil {
		err = herr
	}
	if werr := s.sys.Wait(); werr != nil && err == nil {
		err = werr
	}
	return err
}

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// handleSubmit admits a job (202), answers a cache hit (200), or
// refuses with the documented degradation codes: 400 malformed, 429 +
// Retry-After queue full, 503 + Retry-After breaker quarantine, 503
// draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid job body: " + err.Error()})
		return
	}
	job, err := s.m.Submit(spec)
	if err != nil {
		var shed *shedError
		switch {
		case errors.As(err, &shed):
			secs := int(shed.retryAfter/time.Second) + 1
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
			code := http.StatusTooManyRequests
			if errors.Is(err, errBreakerOpen) || errors.Is(err, errDiskDegraded) {
				code = http.StatusServiceUnavailable
			}
			writeJSON(w, code, errorBody{Error: err.Error()})
		case errors.Is(err, errDraining):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		case errors.Is(err, errBadRequest):
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	code := http.StatusAccepted
	if job.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, job)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Jobs())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 503 once draining (so load balancers stop
// routing new submissions while in-flight jobs checkpoint) and 503
// while disk-degraded (the server is read-only; route writes elsewhere).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.m.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if s.m.Degraded() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "disk-degraded")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// handleMetrics dumps every counter and gauge as "name value" lines.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, nv := range metrics.Dump() {
		fmt.Fprintf(w, "%s %d\n", nv.Name, nv.Value)
	}
}
