package bench

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteCSV emits a figure's cells as CSV (one row per bar), suitable for
// external plotting of the paper's grouped bar charts.
func (r *FigureResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "scale", "algo", "system", "seconds", "sec_per_step", "supersteps", "cpu_percent", "runs"}); err != nil {
		return err
	}
	for _, c := range r.Cells {
		rec := []string{
			r.Dataset.Name,
			strconv.FormatInt(r.Scale, 10),
			string(c.Algo),
			string(c.System),
			strconv.FormatFloat(c.Seconds, 'g', -1, 64),
			strconv.FormatFloat(c.PerStep, 'g', -1, 64),
			strconv.Itoa(c.Supersteps),
			strconv.FormatFloat(c.CPUPercent, 'g', -1, 64),
			strconv.Itoa(c.Runs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the figure as indented JSON.
func (r *FigureResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteAblationsCSV emits ablation results as CSV.
func WriteAblationsCSV(w io.Writer, rs []AblationResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"study", "variant", "seconds", "supersteps"}); err != nil {
		return err
	}
	for _, r := range rs {
		if err := cw.Write([]string{
			r.Study, r.Variant,
			strconv.FormatFloat(r.Seconds, 'g', -1, 64),
			strconv.Itoa(r.Supersteps),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScalabilityCSV emits scalability points as CSV.
func WriteScalabilityCSV(w io.Writer, pts []ScalabilityPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"actors", "seconds", "speedup", "cpu_percent"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			strconv.Itoa(p.Actors),
			strconv.FormatFloat(p.Seconds, 'g', -1, 64),
			strconv.FormatFloat(p.Speedup, 'g', -1, 64),
			strconv.FormatFloat(p.CPUPercent, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
