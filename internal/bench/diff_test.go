package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func diffReport(rev string, cells ...HotPathCell) *HotPathReport {
	return &HotPathReport{Rev: rev, Cells: cells}
}

func cell(algo, mode string, msgsPerSec, allocPerMsg float64) HotPathCell {
	return HotPathCell{
		Algo: algo, Mode: mode,
		Seconds: 1, Supersteps: 5, Messages: 1000,
		MsgsPerSec: msgsPerSec, AllocPerMsg: allocPerMsg,
	}
}

func TestDiffHotPathGates(t *testing.T) {
	oldRep := diffReport("old",
		cell("pagerank", "dense", 1e6, 0.01),
		cell("pagerank", "off", 2e5, 2.0),
		cell("cc", "sparse", 5e5, 0.05),
		cell("bfs", "auto", 3e5, 0.02),
	)
	newRep := diffReport("new",
		cell("pagerank", "dense", 0.95e6, 0.05), // -5%, +0.04B: within both gates
		cell("pagerank", "off", 1.5e5, 2.0),     // -25%: throughput regression
		cell("cc", "sparse", 5.2e5, 0.40),       // +0.35B: alloc regression
		cell("sssp", "dense", 1e5, 0.01),        // only in new: skipped
	)
	diffs := DiffHotPath(oldRep, newRep)
	if len(diffs) != 3 {
		t.Fatalf("got %d diffs, want 3 (bfs/auto and sssp/dense are one-sided)", len(diffs))
	}
	got := map[string]BenchDiff{}
	for _, d := range diffs {
		got[d.Algo+"/"+d.Mode] = d
	}
	if d := got["pagerank/dense"]; d.Regression {
		t.Fatalf("pagerank/dense flagged within tolerance: %q", d.Reason)
	}
	if d := got["pagerank/off"]; !d.Regression || !strings.Contains(d.Reason, "throughput") {
		t.Fatalf("pagerank/off throughput drop not flagged: %+v", d)
	}
	if d := got["cc/sparse"]; !d.Regression || !strings.Contains(d.Reason, "alloc") {
		t.Fatalf("cc/sparse alloc rise not flagged: %+v", d)
	}
	if _, ok := got["bfs/auto"]; ok {
		t.Fatal("bfs/auto present in old only must be skipped, not diffed")
	}

	out := FormatBenchDiff(oldRep, newRep, diffs)
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "baseline old vs new") {
		t.Fatalf("formatted diff missing verdicts or header:\n%s", out)
	}
}

func TestDiffHotPathSelfIsClean(t *testing.T) {
	rep := diffReport("same",
		cell("pagerank", "dense", 1e6, 0.01),
		cell("cc", "auto", 4e5, 0.02),
	)
	for _, d := range DiffHotPath(rep, rep) {
		if d.Regression {
			t.Fatalf("self-diff flagged %s/%s: %q", d.Algo, d.Mode, d.Reason)
		}
	}
}

func TestLoadHotPathReportRoundTrip(t *testing.T) {
	rep := diffReport("rt", cell("bfs", "dense", 1e5, 0.1))
	path := filepath.Join(t.TempDir(), "BENCH_rt.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadHotPathReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rev != "rt" || len(back.Cells) != 1 || back.Cells[0].Algo != "bfs" {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	if _, err := LoadHotPathReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}
