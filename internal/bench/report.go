package bench

import (
	"fmt"
	"strings"
)

// PaperFigure describes what the paper reports for one figure, so runs
// can print expectation next to measurement.
type PaperFigure struct {
	ID       string
	Dataset  string
	Expected string // the paper's qualitative result, §VI-B
}

// The paper's figures and their reported shapes.
var PaperFigures = []PaperFigure{
	{"fig7", "google", "small graph fits in memory: GPSA LOSES — ~4x slower than GraphChi/X-Stream on PageRank, ~GraphChi on CC (X-Stream best), ~1.2x slower on BFS"},
	{"fig8", "soc-pokec", "GPSA wins: PR ~1.3x vs GraphChi / ~8x vs X-Stream; CC ~4x vs GraphChi / ~6x vs X-Stream; BFS ~= GraphChi, X-Stream worst"},
	{"fig9", "soc-liveJournal", "GPSA wins: PR ~1.3x vs GraphChi / ~10x vs X-Stream; CC ~4x / ~6x; BFS ~= GraphChi, X-Stream worst"},
	{"fig10", "twitter-2010", "GPSA wins: PR 2x vs GraphChi / 8x vs X-Stream; CC 5x / 4x; BFS 6x vs X-Stream (GraphChi BFS did not finish)"},
	{"fig11", "all", "CPU utilization: X-Stream ~100% always; GraphChi lowest; GPSA proportional to workload"},
}

// FigureForDataset maps a dataset name to its paper figure.
func FigureForDataset(name string) (PaperFigure, bool) {
	for _, f := range PaperFigures {
		if f.Dataset == name {
			return f, true
		}
	}
	return PaperFigure{}, false
}

// cell lookup helper.
func (r *FigureResult) cell(sys System, alg Algo) (Cell, bool) {
	for _, c := range r.Cells {
		if c.System == sys && c.Algo == alg {
			return c, true
		}
	}
	return Cell{}, false
}

// Speedup returns how many times faster GPSA is than sys on alg
// (values < 1 mean GPSA is slower).
func (r *FigureResult) Speedup(sys System, alg Algo) (float64, bool) {
	g, ok1 := r.cell(SysGPSA, alg)
	o, ok2 := r.cell(sys, alg)
	if !ok1 || !ok2 || g.Seconds == 0 {
		return 0, false
	}
	return o.Seconds / g.Seconds, true
}

// FormatFigure renders one figure's measurements with GPSA speedups, in
// the layout of the paper's grouped bar charts.
func FormatFigure(id string, r *FigureResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%d vertices, %d edges", id, r.Dataset.Name, r.Dataset.Vertices, r.Dataset.Edges)
	if r.Scale > 1 {
		fmt.Fprintf(&b, ", scaled 1/%d", r.Scale)
	}
	fmt.Fprintf(&b, ")\n")
	if f, ok := FigureForDataset(strings.SplitN(r.Dataset.Name, "@", 2)[0]); ok {
		fmt.Fprintf(&b, "paper: %s\n", f.Expected)
	}
	fmt.Fprintf(&b, "%-10s %-10s %12s %12s %8s %8s\n", "Algo", "System", "Seconds", "Sec/Step", "Steps", "CPU%")
	for _, alg := range AllAlgos {
		for _, sys := range AllSystems {
			c, ok := r.cell(sys, alg)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%-10s %-10s %12.4f %12.4f %8d %7.1f%%\n",
				alg, sys, c.Seconds, c.PerStep, c.Supersteps, c.CPUPercent)
		}
		if su1, ok := r.Speedup(SysGraphChi, alg); ok {
			su2, _ := r.Speedup(SysXStream, alg)
			fmt.Fprintf(&b, "%-10s GPSA speedup: %.2fx vs GraphChi, %.2fx vs X-Stream\n", alg, su1, su2)
		}
	}
	return b.String()
}
