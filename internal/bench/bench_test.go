package bench

import (
	"strings"
	"testing"

	"repro/internal/gen"
)

// tinyOpts keeps unit-test runs fast: the google dataset at 1/512 scale
// is ~1.7k vertices and ~10k edges.
func tinyOpts(t *testing.T) Options {
	t.Helper()
	return Options{
		Dataset: gen.Google,
		Scale:   512,
		Seed:    1,
		Runs:    1,
		WorkDir: t.TempDir(),
	}
}

func TestRunFigureProducesAllCells(t *testing.T) {
	res, err := RunFigure(tinyOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(AllSystems)*len(AllAlgos) {
		t.Fatalf("%d cells, want %d", len(res.Cells), len(AllSystems)*len(AllAlgos))
	}
	for _, c := range res.Cells {
		if c.Seconds <= 0 {
			t.Fatalf("cell %s/%s has non-positive time %g", c.System, c.Algo, c.Seconds)
		}
		if c.Supersteps <= 0 {
			t.Fatalf("cell %s/%s ran %d supersteps", c.System, c.Algo, c.Supersteps)
		}
		if c.Supersteps > 5 && (c.Algo == AlgoPageRank) {
			t.Fatalf("PageRank cell ran %d supersteps, cap is 5", c.Supersteps)
		}
	}
	out := FormatFigure("fig7", res)
	for _, want := range []string{"GPSA", "GraphChi", "X-Stream", "PageRank", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted figure missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigureSubsetSelection(t *testing.T) {
	opts := tinyOpts(t)
	opts.Systems = []System{SysGPSA}
	opts.Algos = []Algo{AlgoBFS}
	res, err := RunFigure(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || res.Cells[0].System != SysGPSA || res.Cells[0].Algo != AlgoBFS {
		t.Fatalf("cells = %+v", res.Cells)
	}
}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1(2048, 1, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Dataset.Vertices <= 0 || r.Dataset.Edges <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.CSRFileMB <= 0 {
			t.Fatalf("row %s has no CSR size", r.Dataset.Name)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "twitter-2010") || !strings.Contains(out, "google") {
		t.Fatalf("table missing datasets:\n%s", out)
	}
}

func TestRunAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	rs, err := RunAblations(AblationOptions{
		Dataset: gen.Google,
		Scale:   1024,
		Seed:    1,
		Runs:    1,
		WorkDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	studies := map[string]int{}
	for _, r := range rs {
		if r.Seconds <= 0 {
			t.Fatalf("%s/%s: non-positive time", r.Study, r.Variant)
		}
		studies[r.Study]++
	}
	for _, want := range []string{"overlap", "reconcile", "durability", "io", "batch-size", "workers"} {
		if studies[want] < 2 {
			t.Fatalf("study %q has %d variants", want, studies[want])
		}
	}
	if out := FormatAblations(rs); !strings.Contains(out, "overlap") {
		t.Fatalf("formatted ablations missing study:\n%s", out)
	}
}

func TestRunScalability(t *testing.T) {
	pts, err := RunScalability(ScalabilityOptions{
		Dataset: gen.Google,
		Scale:   512,
		Seed:    1,
		Runs:    1,
		Actors:  []int{2, 8, 128},
		WorkDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3", len(pts))
	}
	for _, p := range pts {
		if p.Seconds <= 0 || p.Speedup <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if pts[0].Speedup != 1 {
		t.Fatalf("baseline speedup = %g, want 1", pts[0].Speedup)
	}
	if out := FormatScalability(pts); !strings.Contains(out, "Actors") {
		t.Fatalf("format missing header:\n%s", out)
	}
}

func TestPaperFiguresCatalog(t *testing.T) {
	if len(PaperFigures) != 5 {
		t.Fatalf("%d paper figures, want 5 (fig7-fig11)", len(PaperFigures))
	}
	if f, ok := FigureForDataset("soc-pokec"); !ok || f.ID != "fig8" {
		t.Fatalf("FigureForDataset(soc-pokec) = %+v, %v", f, ok)
	}
	if _, ok := FigureForDataset("unknown"); ok {
		t.Fatal("unknown dataset matched a figure")
	}
}

func TestSpeedupComputation(t *testing.T) {
	r := &FigureResult{Cells: []Cell{
		{System: SysGPSA, Algo: AlgoCC, Seconds: 2},
		{System: SysXStream, Algo: AlgoCC, Seconds: 12},
	}}
	su, ok := r.Speedup(SysXStream, AlgoCC)
	if !ok || su != 6 {
		t.Fatalf("Speedup = %g, %v; want 6, true", su, ok)
	}
	if _, ok := r.Speedup(SysGraphChi, AlgoCC); ok {
		t.Fatal("Speedup for missing cell reported ok")
	}
}
