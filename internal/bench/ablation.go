package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
)

// AblationResult is one variant measurement of a GPSA design choice.
type AblationResult struct {
	Study      string // which design choice
	Variant    string // which setting
	Seconds    float64
	Supersteps int
}

// AblationOptions configures RunAblations.
type AblationOptions struct {
	Dataset    gen.Dataset
	Scale      int64
	Seed       int64
	Supersteps int // default 5
	Runs       int // default 3
	WorkDir    string
}

// RunAblations measures the design choices DESIGN.md calls out:
// dispatch/compute overlap, message batch size, barrier reconciliation,
// and mmap vs heap-backed I/O — all on the paper's PageRank workload.
func RunAblations(opts AblationOptions) ([]AblationResult, error) {
	if opts.Supersteps <= 0 {
		opts.Supersteps = 5
	}
	if opts.Runs <= 0 {
		opts.Runs = 3
	}
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.WorkDir == "" {
		dir, err := os.MkdirTemp("", "gpsa-ablation-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opts.WorkDir = dir
	}
	g, err := opts.Dataset.Scaled(opts.Scale).Generate(opts.Seed)
	if err != nil {
		return nil, err
	}
	csr := filepath.Join(opts.WorkDir, "ablation.gpsa")
	if err := graph.WriteFile(csr, g); err != nil {
		return nil, err
	}

	type variant struct {
		study, name string
		cfg         core.Config
		mode        mmap.Mode
	}
	variants := []variant{
		{"overlap", "overlapped (GPSA)", core.Config{}, mmap.ModeAuto},
		{"overlap", "sequential phases (conventional BSP)", core.Config{SequentialPhases: true, MailboxCap: 1 << 16}, mmap.ModeAuto},
		{"reconcile", "reconcile on (default)", core.Config{}, mmap.ModeAuto},
		{"reconcile", "reconcile off (paper-literal)", core.Config{DisableReconcile: true}, mmap.ModeAuto},
		{"durability", "superstep sync on (default)", core.Config{}, mmap.ModeAuto},
		{"durability", "superstep sync off", core.Config{DisableSync: true}, mmap.ModeAuto},
		{"io", "mmap (GPSA)", core.Config{}, mmap.ModeOS},
		{"io", "heap buffer (explicit I/O)", core.Config{}, mmap.ModeHeap},
	}
	for _, bs := range []int{1, 16, 128, 512, 4096} {
		variants = append(variants, variant{
			"batch-size", fmt.Sprintf("batch=%d", bs),
			core.Config{BatchSize: bs}, mmap.ModeAuto,
		})
	}
	for _, w := range []int{1, 2, 4, 8} {
		variants = append(variants, variant{
			"workers", fmt.Sprintf("dispatchers=computers=%d", w),
			core.Config{Dispatchers: w, Computers: w}, mmap.ModeAuto,
		})
	}

	var out []AblationResult
	for _, v := range variants {
		secs, steps, err := measureGPSAVariant(csr, opts, v.cfg, v.mode)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s/%s: %w", v.study, v.name, err)
		}
		out = append(out, AblationResult{Study: v.study, Variant: v.name, Seconds: secs, Supersteps: steps})
	}
	return out, nil
}

func measureGPSAVariant(csr string, opts AblationOptions, cfg core.Config, mode mmap.Mode) (float64, int, error) {
	cfg.MaxSupersteps = opts.Supersteps
	var total float64
	var steps int
	for r := 0; r < opts.Runs; r++ {
		gf, err := graph.OpenFile(csr, mode)
		if err != nil {
			return 0, 0, err
		}
		vpath := csr + fmt.Sprintf(".values-%d", r)
		vf, err := vertexfile.Create(vpath, gf.NumVertices, algorithms.PageRank{}.Init)
		if err != nil {
			gf.Close() //lint:syncerr benchmark harness teardown of scratch files; no durability contract
			return 0, 0, err
		}
		eng, err := core.New(gf, vf, algorithms.PageRank{}, cfg)
		if err != nil {
			vf.Close() //lint:syncerr benchmark harness teardown of scratch files; no durability contract
			gf.Close()
			return 0, 0, err
		}
		var res *core.Result
		sample := metrics.MeasureCPU(func() {
			res, err = eng.Run()
		})
		vf.Close() //lint:syncerr benchmark harness teardown of scratch files; no durability contract
		gf.Close()
		os.Remove(vpath)
		if err != nil {
			return 0, 0, err
		}
		total += sample.Wall.Seconds()
		steps = res.Supersteps
	}
	return total / float64(opts.Runs), steps, nil
}

// FormatAblations renders ablation results grouped by study.
func FormatAblations(rs []AblationResult) string {
	s := fmt.Sprintf("%-12s %-40s %10s %6s\n", "Study", "Variant", "Seconds", "Steps")
	last := ""
	for _, r := range rs {
		if r.Study != last {
			if last != "" {
				s += "\n"
			}
			last = r.Study
		}
		s += fmt.Sprintf("%-12s %-40s %10.4f %6d\n", r.Study, r.Variant, r.Seconds, r.Supersteps)
	}
	return s
}
