// Package bench regenerates the paper's evaluation: Table I (datasets),
// Figures 7–10 (PageRank / Connected Components / BFS runtimes on four
// graphs across GPSA, GraphChi and X-Stream) and Figure 11 (CPU
// utilization), plus ablations of GPSA's design choices.
//
// Methodology follows §VI-B: each measurement is the elapsed time of (up
// to) five supersteps, averaged over three runs, on R-MAT graphs shaped
// like Table I at a recorded scale factor. Preprocessing (CSR conversion,
// sharding, partitioning) is excluded from timings, as in the paper.
package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphchi"
	"repro/internal/metrics"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
	"repro/internal/xstream"
)

// System names one of the three engines.
type System string

// The three systems of the paper's comparison.
const (
	SysGPSA     System = "GPSA"
	SysGraphChi System = "GraphChi"
	SysXStream  System = "X-Stream"
)

// AllSystems is the paper's comparison set.
var AllSystems = []System{SysGPSA, SysGraphChi, SysXStream}

// Algo names one of the paper's three workloads.
type Algo string

// The paper's workloads.
const (
	AlgoPageRank Algo = "PageRank"
	AlgoCC       Algo = "CC"
	AlgoBFS      Algo = "BFS"
)

// AllAlgos is the paper's workload set.
var AllAlgos = []Algo{AlgoPageRank, AlgoCC, AlgoBFS}

// Options configures one figure run.
type Options struct {
	Dataset    gen.Dataset
	Scale      int64 // divide the dataset dimensions by this factor
	Seed       int64
	Supersteps int // measurement length (default 5, the paper's)
	Runs       int // averaging runs (default 3, the paper's)
	WorkDir    string
	Systems    []System
	Algos      []Algo

	// Shards and Partitions size the baselines (defaults 4 and 4).
	Shards     int
	Partitions int
	// GPSA worker counts (0 = engine defaults).
	Dispatchers int
	Computers   int
}

func (o Options) withDefaults() Options {
	if o.Supersteps <= 0 {
		o.Supersteps = 5
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.Systems) == 0 {
		o.Systems = AllSystems
	}
	if len(o.Algos) == 0 {
		o.Algos = AllAlgos
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Partitions <= 0 {
		o.Partitions = 4
	}
	return o
}

// Cell is one bar of a figure: a (system, algorithm) measurement.
type Cell struct {
	System     System
	Algo       Algo
	Seconds    float64 // elapsed seconds for the measured supersteps, averaged
	PerStep    float64 // Seconds / supersteps executed
	Supersteps int
	CPUPercent float64 // average CPU utilization during the run
	Runs       int
}

// FigureResult holds every cell of one figure.
type FigureResult struct {
	Dataset gen.Dataset // scaled dimensions
	Scale   int64
	Cells   []Cell
}

// Artifacts holds the preprocessed on-disk inputs shared by runs.
type Artifacts struct {
	Dir     string
	G       *graph.CSR // directed graph (PageRank, BFS)
	GSym    *graph.CSR // symmetrized (CC)
	CSRPath string
	CSRSym  string
	XS      *xstream.Layout
	XSSym   *xstream.Layout
	BFSRoot graph.VertexID
}

// BuildArtifacts generates the scaled dataset and preprocesses it for
// every engine (GraphChi shards are program-specific and built per run).
func BuildArtifacts(ds gen.Dataset, scale, seed int64, dir string) (*Artifacts, error) {
	return BuildArtifactsK(ds, scale, seed, dir, 4)
}

// BuildArtifactsK is BuildArtifacts with an explicit X-Stream partition
// count.
func BuildArtifactsK(ds gen.Dataset, scale, seed int64, dir string, partitions int) (*Artifacts, error) {
	scaled := ds.Scaled(scale)
	g, err := scaled.Generate(seed)
	if err != nil {
		return nil, err
	}
	return BuildArtifactsFromCSR(g, dir, partitions)
}

// BuildArtifactsFromCSR preprocesses an arbitrary in-memory graph (e.g. a
// user's own dataset) for every engine.
func BuildArtifactsFromCSR(g *graph.CSR, dir string, partitions int) (*Artifacts, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	a := &Artifacts{Dir: dir, G: g, GSym: g.Symmetrize()}
	a.CSRPath = filepath.Join(dir, "graph.gpsa")
	a.CSRSym = filepath.Join(dir, "graph-sym.gpsa")
	if err := graph.WriteFile(a.CSRPath, a.G); err != nil {
		return nil, err
	}
	if err := graph.WriteFile(a.CSRSym, a.GSym); err != nil {
		return nil, err
	}
	var err error
	if a.XS, err = xstream.Preprocess(a.G, filepath.Join(dir, "xs"), partitions); err != nil {
		return nil, err
	}
	if a.XSSym, err = xstream.Preprocess(a.GSym, filepath.Join(dir, "xs-sym"), partitions); err != nil {
		return nil, err
	}
	a.BFSRoot = maxDegreeVertex(g)
	return a, nil
}

// maxDegreeVertex picks the BFS root: the vertex with the largest
// out-degree, giving a traversal that actually covers the graph.
func maxDegreeVertex(g *graph.CSR) graph.VertexID {
	var best graph.VertexID
	var bestDeg uint32
	for v := int64(0); v < g.NumVertices; v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > bestDeg {
			bestDeg = d
			best = graph.VertexID(v)
		}
	}
	return best
}

// RunFigure measures every (system, algorithm) cell for one dataset —
// one of the paper's Figures 7–10 (and, with the CPU column, Fig. 11).
func RunFigure(opts Options) (*FigureResult, error) {
	opts = opts.withDefaults()
	if opts.WorkDir == "" {
		dir, err := os.MkdirTemp("", "gpsa-bench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opts.WorkDir = dir
	}
	a, err := BuildArtifactsK(opts.Dataset, opts.Scale, opts.Seed, opts.WorkDir, opts.Partitions)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{Dataset: opts.Dataset.Scaled(opts.Scale), Scale: opts.Scale}
	for _, alg := range opts.Algos {
		for _, sys := range opts.Systems {
			cell, err := MeasureCell(a, sys, alg, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", sys, alg, err)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// MeasureCell runs one (system, algorithm) measurement, averaging
// opts.Runs runs.
func MeasureCell(a *Artifacts, sys System, alg Algo, opts Options) (Cell, error) {
	opts = opts.withDefaults()
	cell := Cell{System: sys, Algo: alg, Runs: opts.Runs}
	for r := 0; r < opts.Runs; r++ {
		var steps int
		var err error
		sample := metrics.CPUSample{}
		run := func() error {
			switch sys {
			case SysGPSA:
				steps, err = runGPSA(a, alg, opts, r, &sample)
			case SysGraphChi:
				steps, err = runGraphChi(a, alg, opts, r, &sample)
			case SysXStream:
				steps, err = runXStream(a, alg, opts, r, &sample)
			default:
				err = fmt.Errorf("unknown system %q", sys)
			}
			return err
		}
		if err := run(); err != nil {
			return cell, err
		}
		cell.Seconds += sample.Wall.Seconds()
		cell.CPUPercent += sample.Percent
		cell.Supersteps = steps
	}
	cell.Seconds /= float64(opts.Runs)
	cell.CPUPercent /= float64(opts.Runs)
	if cell.Supersteps > 0 {
		cell.PerStep = cell.Seconds / float64(cell.Supersteps)
	}
	return cell, nil
}

func gpsaProgram(a *Artifacts, alg Algo) (core.Program, string) {
	switch alg {
	case AlgoPageRank:
		return algorithms.PageRank{}, a.CSRPath
	case AlgoCC:
		return algorithms.ConnectedComponents{}, a.CSRSym
	default:
		return algorithms.BFS{Root: a.BFSRoot}, a.CSRPath
	}
}

func runGPSA(a *Artifacts, alg Algo, opts Options, r int, sample *metrics.CPUSample) (int, error) {
	prog, path := gpsaProgram(a, alg)
	gf, err := graph.OpenFile(path, mmap.ModeAuto)
	if err != nil {
		return 0, err
	}
	defer gf.Close() //lint:syncerr benchmark harness teardown of scratch files; no durability contract
	vpath := filepath.Join(a.Dir, fmt.Sprintf("values-%d.gpvf", r))
	vf, err := vertexfile.Create(vpath, gf.NumVertices, prog.Init)
	if err != nil {
		return 0, err
	}
	defer os.Remove(vpath)
	defer vf.Close() //lint:syncerr benchmark harness teardown of scratch files; no durability contract
	eng, err := core.New(gf, vf, prog, core.Config{
		MaxSupersteps: opts.Supersteps,
		Dispatchers:   opts.Dispatchers,
		Computers:     opts.Computers,
	})
	if err != nil {
		return 0, err
	}
	var res *core.Result
	*sample = metrics.MeasureCPU(func() {
		res, err = eng.Run()
	})
	if err != nil {
		return 0, err
	}
	return res.Supersteps, nil
}

func runGraphChi(a *Artifacts, alg Algo, opts Options, r int, sample *metrics.CPUSample) (int, error) {
	// Shards carry mutable per-program edge values, so each run reshards
	// (untimed, like the paper's excluded preprocessing).
	dir := filepath.Join(a.Dir, fmt.Sprintf("chi-%s-%d", alg, r))
	var prog graphchi.Program
	var init graphchi.EdgeInit
	g := a.G
	switch alg {
	case AlgoPageRank:
		p := algorithms.ChiPageRank{}
		prog, init = p, p.EdgeInit
	case AlgoCC:
		p := algorithms.ChiCC{}
		prog, init = p, p.EdgeInit
		g = a.GSym
	default:
		p := algorithms.ChiBFS{Root: a.BFSRoot}
		prog, init = p, p.EdgeInit
	}
	layout, err := graphchi.Shard(g, dir, opts.Shards, init)
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	eng, err := graphchi.NewEngine(layout, prog, graphchi.Config{MaxSupersteps: opts.Supersteps})
	if err != nil {
		return 0, err
	}
	defer eng.Close() //lint:syncerr benchmark harness teardown of scratch files; no durability contract
	var res *graphchi.Result
	*sample = metrics.MeasureCPU(func() {
		res, err = eng.Run()
	})
	if err != nil {
		return 0, err
	}
	return res.Supersteps, nil
}

func runXStream(a *Artifacts, alg Algo, opts Options, r int, sample *metrics.CPUSample) (int, error) {
	var prog core.Program
	layout := a.XS
	switch alg {
	case AlgoPageRank:
		prog = algorithms.PageRank{}
	case AlgoCC:
		prog = algorithms.ConnectedComponents{}
		layout = a.XSSym
	default:
		prog = algorithms.BFS{Root: a.BFSRoot}
	}
	eng, err := xstream.NewEngine(layout, prog, xstream.Config{MaxSupersteps: opts.Supersteps})
	if err != nil {
		return 0, err
	}
	defer eng.Close() //lint:syncerr benchmark harness teardown of scratch files; no durability contract
	var res *xstream.Result
	*sample = metrics.MeasureCPU(func() {
		res, err = eng.Run()
	})
	if err != nil {
		return 0, err
	}
	return res.Supersteps, nil
}
