package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Table1Row reproduces one row of paper Table I, extended with the CSR
// compression the paper reports in §VI-B (the twitter graph shrinks from
// a 26 GB edge list to 6.5 GB of CSR).
type Table1Row struct {
	Dataset      gen.Dataset // scaled dimensions actually generated
	Paper        gen.Dataset // the paper's full-size dimensions
	Scale        int64
	AvgDegree    float64
	EdgeListMB   float64 // estimated text edge-list size
	CSRFileMB    float64 // measured on-disk CSR size (version 1)
	CompactMB    float64 // measured compact CSR size (version 2, varint delta)
	MaxOutDegree uint32
}

// RunTable1 generates every paper dataset at the given scale and measures
// its properties.
func RunTable1(scale, seed int64, workDir string) ([]Table1Row, error) {
	if scale <= 0 {
		scale = 1
	}
	if workDir == "" {
		dir, err := os.MkdirTemp("", "gpsa-table1-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}
	rows := make([]Table1Row, 0, len(gen.PaperDatasets))
	for _, ds := range gen.PaperDatasets {
		scaled := ds.Scaled(scale)
		g, err := scaled.Generate(seed)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(workDir, ds.Name+".gpsa")
		if err := graph.WriteFile(path, g); err != nil {
			return nil, err
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		cpath := filepath.Join(workDir, ds.Name+".c.gpsa")
		if err := graph.WriteFileCompact(cpath, g); err != nil {
			return nil, err
		}
		cst, err := os.Stat(cpath)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Dataset:   scaled,
			Paper:     ds,
			Scale:     scale,
			AvgDegree: scaled.AvgDegree(),
			// A text edge list averages ~16 bytes per "src\tdst\n" line at
			// these id magnitudes.
			EdgeListMB: float64(scaled.Edges) * 16 / (1 << 20),
			CSRFileMB:  float64(st.Size()) / (1 << 20),
			CompactMB:  float64(cst.Size()) / (1 << 20),
		}
		for v := int64(0); v < g.NumVertices; v++ {
			if d := g.OutDegree(graph.VertexID(v)); d > row.MaxOutDegree {
				row.MaxOutDegree = d
			}
		}
		rows = append(rows, row)
		os.Remove(path)
		os.Remove(path + ".idx")
		os.Remove(cpath)
		os.Remove(cpath + ".idx")
	}
	return rows, nil
}

// FormatTable1 renders rows like paper Table I.
func FormatTable1(rows []Table1Row) string {
	s := fmt.Sprintf("%-22s %12s %14s %8s %10s %8s %9s %8s\n",
		"Name", "Nodes", "Edges", "AvgDeg", "EdgeListMB", "CSRMB", "CompactMB", "MaxDeg")
	for _, r := range rows {
		s += fmt.Sprintf("%-22s %12d %14d %8.1f %10.1f %8.1f %9.1f %8d\n",
			r.Dataset.Name, r.Dataset.Vertices, r.Dataset.Edges, r.AvgDegree,
			r.EdgeListMB, r.CSRFileMB, r.CompactMB, r.MaxOutDegree)
	}
	return s
}
