package bench

import (
	"encoding/json"
	"fmt"
	"repro/internal/diskio"
	"runtime"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vertexfile"
)

// HotPathOptions configures the message hot-path benchmark: the same
// algorithm on the same generated power-law graph, once per accumulator
// mode, entirely in memory so the measurement isolates the
// dispatcher→computer path rather than disk.
type HotPathOptions struct {
	Vertices   int64 // default 1<<17
	EdgeFactor int64 // edges per vertex, default 16
	Seed       int64
	Supersteps int      // per run, default 5
	Runs       int      // best-of runs per cell, default 3
	Algos      []string // default pagerank, deltapagerank, bfs, cc, sssp
	Modes      []core.AccumMode
	// Worker pools (0 = engine defaults).
	Dispatchers int
	Computers   int
	AccumBudget int // bytes (0 = engine default)
	Rev         string
}

func (o HotPathOptions) withDefaults() HotPathOptions {
	if o.Vertices <= 0 {
		o.Vertices = 1 << 17
	}
	if o.EdgeFactor <= 0 {
		o.EdgeFactor = 16
	}
	if o.Supersteps <= 0 {
		o.Supersteps = 5
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if len(o.Algos) == 0 {
		o.Algos = []string{"pagerank", "deltapagerank", "bfs", "cc", "sssp"}
	}
	if len(o.Modes) == 0 {
		o.Modes = []core.AccumMode{core.AccumOff, core.AccumDense, core.AccumSparse, core.AccumAuto}
	}
	return o
}

// HotPathCell is one (algorithm, accumulator mode) measurement.
type HotPathCell struct {
	Algo        string  `json:"algo"`
	Mode        string  `json:"mode"`
	Seconds     float64 `json:"seconds"`      // best-of wall time for the measured supersteps
	Supersteps  int     `json:"supersteps"`   // supersteps actually executed
	Messages    int64   `json:"messages"`     // messages generated per run
	Delivered   int64   `json:"delivered"`    // messages delivered after source combining
	MsgsPerSec  float64 `json:"msgs_per_sec"` // generated messages / best wall
	StepsPerSec float64 `json:"supersteps_per_sec"`
	AllocPerMsg float64 `json:"alloc_bytes_per_msg"` // heap bytes allocated per generated message (best run)
}

// HotPathReport is the machine-readable benchmark artifact (BENCH_<rev>.json).
type HotPathReport struct {
	Rev        string        `json:"rev"`
	GoVersion  string        `json:"go_version"`
	CPUs       int           `json:"cpus"`
	Timestamp  string        `json:"timestamp"`
	Vertices   int64         `json:"vertices"`
	Edges      int64         `json:"edges"` // directed graph; cc runs on its symmetrization
	Seed       int64         `json:"seed"`
	Supersteps int           `json:"supersteps"`
	Runs       int           `json:"runs"`
	Cells      []HotPathCell `json:"cells"`
	// Speedup maps algorithm -> best accumulator msgs/sec over the legacy
	// (off) msgs/sec; the headline message-throughput improvement.
	Speedup map[string]float64 `json:"speedup_vs_legacy"`
}

type hotPathWorkload struct {
	prog core.Program
	g    *graph.CSR
}

func hotPathGraphs(opts HotPathOptions) (directed, sym, weighted *graph.CSR, err error) {
	base := gen.RMATConfig{
		Vertices: opts.Vertices,
		Edges:    opts.Vertices * opts.EdgeFactor,
		Seed:     opts.Seed,
	}
	if directed, err = gen.RMATGraph(base); err != nil {
		return nil, nil, nil, err
	}
	sym = directed.Symmetrize()
	wcfg := base
	wcfg.Weighted = true
	if weighted, err = gen.RMATGraph(wcfg); err != nil {
		return nil, nil, nil, err
	}
	return directed, sym, weighted, nil
}

func hotPathWorkloadFor(algo string, directed, sym, weighted *graph.CSR) (hotPathWorkload, error) {
	root := maxDegreeVertex(directed)
	switch algo {
	case "pagerank":
		return hotPathWorkload{algorithms.PageRank{}, directed}, nil
	case "deltapagerank":
		return hotPathWorkload{algorithms.DeltaPageRank{}, directed}, nil
	case "bfs":
		return hotPathWorkload{algorithms.BFS{Root: root}, directed}, nil
	case "cc":
		return hotPathWorkload{algorithms.ConnectedComponents{}, sym}, nil
	case "sssp":
		return hotPathWorkload{algorithms.SSSP{Source: maxDegreeVertex(weighted)}, weighted}, nil
	}
	return hotPathWorkload{}, fmt.Errorf("bench: unknown hot-path algorithm %q", algo)
}

// runHotPathOnce executes one in-memory run and returns the result plus
// the heap bytes it allocated.
func runHotPathOnce(w hotPathWorkload, mode core.AccumMode, opts HotPathOptions) (*core.Result, uint64, error) {
	gf, err := graph.NewMemoryFile(w.g)
	if err != nil {
		return nil, 0, err
	}
	vf, err := vertexfile.NewMemory(w.g.NumVertices, w.prog.Init)
	if err != nil {
		return nil, 0, err
	}
	defer vf.Close() //lint:syncerr benchmark harness teardown of scratch files; no durability contract
	eng, err := core.New(gf, vf, w.prog, core.Config{
		MaxSupersteps: opts.Supersteps,
		Dispatchers:   opts.Dispatchers,
		Computers:     opts.Computers,
		AccumMode:     mode,
		AccumBudget:   opts.AccumBudget,
		DisableSync:   true,
	})
	if err != nil {
		return nil, 0, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := eng.Run()
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, 0, err
	}
	return res, after.TotalAlloc - before.TotalAlloc, nil
}

// RunHotPath measures every (algorithm, mode) cell on one generated
// power-law graph and assembles the report.
func RunHotPath(opts HotPathOptions) (*HotPathReport, error) {
	opts = opts.withDefaults()
	directed, sym, weighted, err := hotPathGraphs(opts)
	if err != nil {
		return nil, err
	}
	rep := &HotPathReport{
		Rev:        opts.Rev,
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Vertices:   directed.NumVertices,
		Edges:      directed.NumEdges,
		Seed:       opts.Seed,
		Supersteps: opts.Supersteps,
		Runs:       opts.Runs,
		Speedup:    map[string]float64{},
	}
	legacy := map[string]float64{} // algo -> msgs/sec with AccumOff
	for _, algo := range opts.Algos {
		w, err := hotPathWorkloadFor(algo, directed, sym, weighted)
		if err != nil {
			return nil, err
		}
		for _, mode := range opts.Modes {
			cell := HotPathCell{Algo: algo, Mode: mode.String()}
			for r := 0; r < opts.Runs; r++ {
				start := time.Now()
				res, alloc, err := runHotPathOnce(w, mode, opts)
				wall := time.Since(start).Seconds()
				if err != nil {
					return nil, fmt.Errorf("bench: %s/%s: %w", algo, mode, err)
				}
				if r == 0 || wall < cell.Seconds {
					cell.Seconds = wall
					cell.Supersteps = res.Supersteps
					cell.Messages = res.Messages
					cell.Delivered = res.Delivered
					if res.Messages > 0 {
						cell.AllocPerMsg = float64(alloc) / float64(res.Messages)
					}
				}
			}
			if cell.Seconds > 0 {
				cell.MsgsPerSec = float64(cell.Messages) / cell.Seconds
				cell.StepsPerSec = float64(cell.Supersteps) / cell.Seconds
			}
			rep.Cells = append(rep.Cells, cell)
			if mode == core.AccumOff {
				legacy[algo] = cell.MsgsPerSec
			} else if base := legacy[algo]; base > 0 {
				if s := cell.MsgsPerSec / base; s > rep.Speedup[algo] {
					rep.Speedup[algo] = s
				}
			}
		}
	}
	return rep, nil
}

// WriteJSON writes the report, indented, to path.
func (r *HotPathReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return diskio.WriteFileAtomic(path, append(data, '\n'), 0o644)
}
