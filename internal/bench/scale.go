package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"path/filepath"
	"repro/internal/diskio"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
)

// The scale experiment answers the COST question (McSherry et al.,
// "Scalability! But at what COST?"): how many cores does GPSA need
// before it beats a competent single-threaded baseline? It sweeps
// R-MAT shapes from the hot-path baseline up to paper-scale
// soc-LiveJournal dimensions, runs GPSA out-of-core — CSR and values
// on disk, a Go heap cap enforced, async prefetch on — across a
// 1..NumCPU core sweep, and measures the single-threaded GraphChi and
// X-Stream reference engines on the same inputs. The crossover core
// count per algorithm is the COST metric, recorded in COST_<rev>.json.

// ScaleOptions configures the scale sweep.
type ScaleOptions struct {
	// Shapes are the dataset shapes to sweep, in increasing size; the
	// crossover summary is computed on the last (largest) one.
	Shapes []gen.Dataset
	Seed   int64
	// Supersteps per measured run (default 5, the paper's).
	Supersteps int
	// Runs per cell; the best run counts (default 1 — the sweep is
	// large and disk-bound, re-run for error bars instead).
	Runs    int
	WorkDir string
	// Cores is the GPSA core sweep (default: powers of two up to
	// NumCPU, NumCPU included). Each entry bounds GOMAXPROCS for the
	// run; references always run single-threaded.
	Cores []int
	// MemLimit is the Go soft heap cap in bytes enforced on the
	// measured GPSA runs (default 1 GiB): the explicit memory cap
	// that keeps the sweep out-of-core honest — graph data must come
	// from the disk mappings, not a heap-resident copy. References
	// run uncapped, which only flatters them (a conservative COST).
	MemLimit int64
	// NoPrefetch disables the async CSR prefetch actors that scale
	// GPSA runs otherwise enable.
	NoPrefetch bool
	Algos      []Algo
	Rev        string
}

func (o ScaleOptions) withDefaults() ScaleOptions {
	if len(o.Shapes) == 0 {
		o.Shapes = DefaultScaleShapes()
	}
	if o.Supersteps <= 0 {
		o.Supersteps = 5
	}
	if o.Runs <= 0 {
		o.Runs = 1
	}
	if len(o.Cores) == 0 {
		o.Cores = DefaultCoreSweep()
	}
	if o.MemLimit <= 0 {
		o.MemLimit = 1 << 30
	}
	if len(o.Algos) == 0 {
		o.Algos = AllAlgos
	}
	return o
}

// BaselineShape is the hot-path benchmark's R-MAT shape (131k vertices,
// 2M edges), the smallest rung of the sweep.
var BaselineShape = gen.Dataset{Name: "rmat-131k", Vertices: 131072, Edges: 2097152}

// DefaultScaleShapes is the issue's ladder: baseline, paper-scale
// soc-LiveJournal (4.8M/69M), and twitter-2010 at 1/16 (2.6M/91.8M).
func DefaultScaleShapes() []gen.Dataset {
	return []gen.Dataset{
		BaselineShape,
		gen.LiveJournal,
		gen.Twitter2010.Scaled(16),
	}
}

// DefaultCoreSweep returns 1, 2, 4, ... capped at NumCPU, with NumCPU
// itself always included.
func DefaultCoreSweep() []int {
	n := runtime.NumCPU()
	var cores []int
	for c := 1; c < n; c *= 2 {
		cores = append(cores, c)
	}
	return append(cores, n)
}

// ScaleCell is one measured run of the sweep. Reference systems run
// single-threaded (Cores 1); GPSA cells carry the core count and the
// heap bytes the measured run allocated.
type ScaleCell struct {
	Shape      string  `json:"shape"`
	Algo       string  `json:"algo"`
	System     string  `json:"system"`
	Cores      int     `json:"cores"`
	Seconds    float64 `json:"seconds"`
	Supersteps int     `json:"supersteps"`
	Messages   int64   `json:"messages,omitempty"`     // GPSA: messages generated
	MsgsPerSec float64 `json:"msgs_per_sec,omitempty"` // GPSA
	AllocBytes uint64  `json:"alloc_bytes,omitempty"`  // GPSA: heap allocated during the run
}

// CostReport is the machine-readable artifact (COST_<rev>.json).
type CostReport struct {
	Rev        string        `json:"rev"`
	GoVersion  string        `json:"go_version"`
	CPUs       int           `json:"cpus"`
	Timestamp  string        `json:"timestamp"`
	Seed       int64         `json:"seed"`
	Supersteps int           `json:"supersteps"`
	Runs       int           `json:"runs"`
	MemLimit   int64         `json:"mem_limit_bytes"`
	Prefetch   bool          `json:"prefetch"`
	Shapes     []gen.Dataset `json:"shapes"`
	Cores      []int         `json:"cores"`
	Cells      []ScaleCell   `json:"cells"`
	// Reference maps "<shape>/<algo>" to the faster of the two
	// single-threaded baselines, in seconds.
	Reference map[string]float64 `json:"reference_seconds"`
	// Crossover maps algorithm -> the smallest core count at which
	// GPSA beat the best single-threaded reference on the largest
	// shape; 0 means no crossover within the sweep (the COST verdict
	// "unbounded" at this scale).
	Crossover map[string]int `json:"crossover_cores"`
	// Prefetch activity across the whole sweep (core.prefetch.*
	// counter deltas): windows issued and bytes covered by WILLNEED.
	PrefetchWindows int64 `json:"prefetch_windows"`
	PrefetchBytes   int64 `json:"prefetch_bytes"`
}

// WriteJSON writes the report, indented, to path.
func (r *CostReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return diskio.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// memCapped runs fn under the configured soft heap cap, restoring the
// previous limit afterwards.
func memCapped(limit int64, fn func() error) error {
	prev := debug.SetMemoryLimit(limit)
	defer debug.SetMemoryLimit(prev)
	return fn()
}

// runGPSAScale is one out-of-core GPSA run: CSR opened from disk,
// values in a fresh on-disk file, prefetch per opts, and an
// accumulator budget of one flush per (dispatcher, computer) pair per
// superstep — at multi-million-vertex scale, per-flush dense slabs
// queueing in the mailboxes would dwarf the memory cap, so the budget
// is raised to the slab size and each pair hands over exactly one
// segment at the barrier.
func runGPSAScale(a *Artifacts, alg Algo, cores int, opts ScaleOptions) (*core.Result, uint64, error) {
	prog, path := gpsaProgram(a, alg)
	gf, err := graph.OpenFile(path, mmap.ModeAuto)
	if err != nil {
		return nil, 0, err
	}
	defer gf.Close() //lint:syncerr benchmark harness teardown of scratch files; no durability contract
	vpath := filepath.Join(a.Dir, "scale-values.gpvf")
	vf, err := vertexfile.Create(vpath, gf.NumVertices, prog.Init)
	if err != nil {
		return nil, 0, err
	}
	defer os.Remove(vpath)
	defer vf.Close() //lint:syncerr benchmark harness teardown of scratch files; no durability contract

	workers := cores / 2
	if workers < 1 {
		workers = 1
	}
	maxOwned := (gf.NumVertices + int64(workers) - 1) / int64(workers)
	eng, err := core.New(gf, vf, prog, core.Config{
		MaxSupersteps: opts.Supersteps,
		Dispatchers:   workers,
		Computers:     workers,
		AccumBudget:   int(maxOwned * 16),
		Prefetch:      !opts.NoPrefetch,
	})
	if err != nil {
		return nil, 0, err
	}
	var res *core.Result
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	err = memCapped(opts.MemLimit, func() error {
		res, err = eng.Run()
		return err
	})
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, 0, err
	}
	return res, after.TotalAlloc - before.TotalAlloc, nil
}

// RunScale executes the full sweep and assembles the COST report.
func RunScale(opts ScaleOptions) (*CostReport, error) {
	opts = opts.withDefaults()
	if opts.WorkDir == "" {
		dir, err := os.MkdirTemp("", "gpsa-scale-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opts.WorkDir = dir
	}
	rep := &CostReport{
		Rev:        opts.Rev,
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Seed:       opts.Seed,
		Supersteps: opts.Supersteps,
		Runs:       opts.Runs,
		MemLimit:   opts.MemLimit,
		Prefetch:   !opts.NoPrefetch,
		Shapes:     opts.Shapes,
		Cores:      opts.Cores,
		Reference:  map[string]float64{},
		Crossover:  map[string]int{},
	}
	refOpts := Options{Supersteps: opts.Supersteps, Runs: opts.Runs, Seed: opts.Seed}
	windows0 := metrics.Counter(metrics.CtrPrefetchWindows)
	bytes0 := metrics.Counter(metrics.CtrPrefetchBytes)

	for si, shape := range opts.Shapes {
		dir := filepath.Join(opts.WorkDir, fmt.Sprintf("shape-%d", si))
		g, err := shape.Generate(opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: generating %s: %w", shape.Name, err)
		}
		a, err := BuildArtifactsFromCSR(g, dir, 4)
		if err != nil {
			return nil, fmt.Errorf("bench: preprocessing %s: %w", shape.Name, err)
		}
		largest := si == len(opts.Shapes)-1

		// Single-threaded references first: GraphChi resharding wants
		// the in-memory CSR (untimed preprocessing, as the paper
		// excludes it).
		ref := map[Algo]float64{}
		for _, alg := range opts.Algos {
			for _, sys := range []System{SysGraphChi, SysXStream} {
				cell, err := MeasureCell(a, sys, alg, refOpts)
				if err != nil {
					return nil, fmt.Errorf("bench: %s/%s/%s: %w", shape.Name, sys, alg, err)
				}
				rep.Cells = append(rep.Cells, ScaleCell{
					Shape: shape.Name, Algo: string(alg), System: string(sys),
					Cores: 1, Seconds: cell.Seconds, Supersteps: cell.Supersteps,
				})
				if ref[alg] == 0 || cell.Seconds < ref[alg] {
					ref[alg] = cell.Seconds
				}
			}
			rep.Reference[shape.Name+"/"+string(alg)] = ref[alg]
		}

		// Out-of-core GPSA sweep: drop the heap-resident CSR copies so
		// the measured runs stream from the disk mappings under the
		// cap instead of leaning on a warm heap image.
		a.G, a.GSym = nil, nil
		runtime.GC()
		for _, alg := range opts.Algos {
			for _, cores := range opts.Cores {
				prev := runtime.GOMAXPROCS(cores)
				best := ScaleCell{Shape: shape.Name, Algo: string(alg), System: string(SysGPSA), Cores: cores}
				var runErr error
				for r := 0; r < opts.Runs; r++ {
					start := time.Now()
					res, alloc, err := runGPSAScale(a, alg, cores, opts)
					wall := time.Since(start).Seconds()
					if err != nil {
						runErr = err
						break
					}
					if best.Seconds == 0 || wall < best.Seconds {
						best.Seconds = wall
						best.Supersteps = res.Supersteps
						best.Messages = res.Messages
						best.AllocBytes = alloc
					}
				}
				runtime.GOMAXPROCS(prev)
				if runErr != nil {
					return nil, fmt.Errorf("bench: %s/GPSA@%d/%s: %w", shape.Name, cores, alg, runErr)
				}
				if best.Seconds > 0 {
					best.MsgsPerSec = float64(best.Messages) / best.Seconds
				}
				rep.Cells = append(rep.Cells, best)
				if largest && best.Seconds <= ref[alg] && rep.Crossover[string(alg)] == 0 {
					rep.Crossover[string(alg)] = cores
				}
			}
		}
		// Each shape's artifacts can be gigabytes; reclaim before the
		// next rung.
		os.RemoveAll(dir)
	}
	rep.PrefetchWindows = metrics.Counter(metrics.CtrPrefetchWindows) - windows0
	rep.PrefetchBytes = metrics.Counter(metrics.CtrPrefetchBytes) - bytes0
	return rep, nil
}

// FormatScale renders the report for the console.
func FormatScale(rep *CostReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-10s %-10s %6s %10s %14s %12s\n",
		"Shape", "Algo", "System", "cores", "seconds", "msgs/sec", "alloc")
	for _, c := range rep.Cells {
		alloc := ""
		if c.System == string(SysGPSA) {
			alloc = fmt.Sprintf("%.1fMB", float64(c.AllocBytes)/(1<<20))
		}
		fmt.Fprintf(&b, "%-22s %-10s %-10s %6d %10.3f %14.0f %12s\n",
			c.Shape, c.Algo, c.System, c.Cores, c.Seconds, c.MsgsPerSec, alloc)
	}
	b.WriteString("\nCOST crossover (cores to beat the best single-threaded reference, largest shape):\n")
	for _, alg := range AllAlgos {
		if n, ok := rep.Crossover[string(alg)]; ok && n > 0 {
			fmt.Fprintf(&b, "  %-10s %d core(s)\n", alg, n)
		} else {
			fmt.Fprintf(&b, "  %-10s no crossover within %v cores\n", alg, rep.Cores)
		}
	}
	return b.String()
}
