package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
)

// ScalabilityPoint is one actor-count measurement.
type ScalabilityPoint struct {
	Actors     int // dispatchers + computers
	Seconds    float64
	Speedup    float64 // vs. the 2-actor baseline
	CPUPercent float64
}

// ScalabilityOptions configures RunScalability.
type ScalabilityOptions struct {
	Dataset    gen.Dataset
	Scale      int64
	Seed       int64
	Supersteps int   // default 5
	Runs       int   // default 3
	Actors     []int // total actor counts to sweep; default {2, 4, 8, 16, 64, 256, 1024, 2048}
	WorkDir    string
}

// RunScalability measures GPSA's PageRank runtime across actor counts —
// the paper's closing claim is "scalable parallelism with thousands of
// actors", so the sweep extends to 2048 actors (1024 dispatchers + 1024
// computing workers) to demonstrate that the engine stays correct and
// does not collapse under massive actor counts, even where added
// parallelism cannot help.
func RunScalability(opts ScalabilityOptions) ([]ScalabilityPoint, error) {
	if opts.Supersteps <= 0 {
		opts.Supersteps = 5
	}
	if opts.Runs <= 0 {
		opts.Runs = 3
	}
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if len(opts.Actors) == 0 {
		opts.Actors = []int{2, 4, 8, 16, 64, 256, 1024, 2048}
	}
	if opts.WorkDir == "" {
		dir, err := os.MkdirTemp("", "gpsa-scal-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opts.WorkDir = dir
	}
	g, err := opts.Dataset.Scaled(opts.Scale).Generate(opts.Seed)
	if err != nil {
		return nil, err
	}
	csr := filepath.Join(opts.WorkDir, "scal.gpsa")
	if err := graph.WriteFile(csr, g); err != nil {
		return nil, err
	}

	var out []ScalabilityPoint
	var baseline float64
	for _, actors := range opts.Actors {
		if actors < 2 {
			actors = 2
		}
		var secs, cpu float64
		for r := 0; r < opts.Runs; r++ {
			s, c, err := scalabilityRun(csr, actors, opts, r)
			if err != nil {
				return nil, fmt.Errorf("bench: scalability at %d actors: %w", actors, err)
			}
			secs += s
			cpu += c
		}
		secs /= float64(opts.Runs)
		cpu /= float64(opts.Runs)
		if baseline == 0 {
			baseline = secs
		}
		out = append(out, ScalabilityPoint{
			Actors:     actors,
			Seconds:    secs,
			Speedup:    baseline / secs,
			CPUPercent: cpu,
		})
	}
	return out, nil
}

func scalabilityRun(csr string, actors int, opts ScalabilityOptions, r int) (float64, float64, error) {
	gf, err := graph.OpenFile(csr, mmap.ModeAuto)
	if err != nil {
		return 0, 0, err
	}
	defer gf.Close() //lint:syncerr benchmark harness teardown of scratch files; no durability contract
	vpath := csr + fmt.Sprintf(".values-%d-%d", actors, r)
	vf, err := vertexfile.Create(vpath, gf.NumVertices, algorithms.PageRank{}.Init)
	if err != nil {
		return 0, 0, err
	}
	defer os.Remove(vpath)
	defer vf.Close() //lint:syncerr benchmark harness teardown of scratch files; no durability contract
	eng, err := core.New(gf, vf, algorithms.PageRank{}, core.Config{
		Dispatchers:   actors / 2,
		Computers:     actors - actors/2,
		MaxSupersteps: opts.Supersteps,
		DisableSync:   true,
	})
	if err != nil {
		return 0, 0, err
	}
	var runErr error
	sample := metrics.MeasureCPU(func() {
		_, runErr = eng.Run()
	})
	if runErr != nil {
		return 0, 0, runErr
	}
	return sample.Wall.Seconds(), sample.Percent, nil
}

// FormatScalability renders the sweep.
func FormatScalability(pts []ScalabilityPoint) string {
	s := fmt.Sprintf("%8s %10s %10s %8s\n", "Actors", "Seconds", "Speedup", "CPU%")
	for _, p := range pts {
		s += fmt.Sprintf("%8d %10.4f %9.2fx %7.1f%%\n", p.Actors, p.Seconds, p.Speedup, p.CPUPercent)
	}
	return s
}
