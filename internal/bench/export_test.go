package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleFigure() *FigureResult {
	return &FigureResult{
		Scale: 4,
		Cells: []Cell{
			{System: SysGPSA, Algo: AlgoCC, Seconds: 1.5, PerStep: 0.3, Supersteps: 5, CPUPercent: 80, Runs: 3},
			{System: SysXStream, Algo: AlgoCC, Seconds: 3, PerStep: 0.6, Supersteps: 5, CPUPercent: 99, Runs: 3},
		},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFigure().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "dataset,scale,algo,system") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "GPSA") || !strings.Contains(lines[2], "X-Stream") {
		t.Fatalf("rows missing systems:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFigure().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back FigureResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != 2 || back.Cells[0].System != SysGPSA {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

func TestWriteAblationsAndScalabilityCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAblationsCSV(&buf, []AblationResult{{Study: "io", Variant: "mmap", Seconds: 0.5, Supersteps: 5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "io,mmap,0.5,5") {
		t.Fatalf("ablation CSV wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteScalabilityCSV(&buf, []ScalabilityPoint{{Actors: 4, Seconds: 1, Speedup: 2, CPUPercent: 50}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4,1,2,50") {
		t.Fatalf("scalability CSV wrong:\n%s", buf.String())
	}
}
