package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestHotPathSmoke runs the full hot-path matrix at a tiny scale: every
// algorithm on every mode must complete, produce consistent counters,
// and the report must round-trip through JSON. This is the make
// bench-smoke gate; the real measurement is make bench.
func TestHotPathSmoke(t *testing.T) {
	rep, err := RunHotPath(HotPathOptions{
		Vertices:   1 << 10,
		EdgeFactor: 8,
		Seed:       42,
		Supersteps: 3,
		Runs:       1,
		Rev:        "smoke",
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 5 * 4 // algorithms x modes
	if len(rep.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), wantCells)
	}
	perAlgoMsgs := map[string]int64{}
	for _, c := range rep.Cells {
		if c.Supersteps <= 0 || c.Seconds <= 0 {
			t.Fatalf("%s/%s: empty measurement %+v", c.Algo, c.Mode, c)
		}
		if c.Messages > 0 && c.MsgsPerSec <= 0 {
			t.Fatalf("%s/%s: throughput not derived", c.Algo, c.Mode)
		}
		if c.Delivered > c.Messages {
			t.Fatalf("%s/%s: delivered %d > generated %d", c.Algo, c.Mode, c.Delivered, c.Messages)
		}
		// All modes generate the same messages for the same workload: the
		// message path must not change what the program emits.
		if prev, ok := perAlgoMsgs[c.Algo]; ok && prev != c.Messages {
			t.Fatalf("%s: mode %s generated %d messages, earlier mode %d", c.Algo, c.Mode, c.Messages, prev)
		}
		perAlgoMsgs[c.Algo] = c.Messages
	}
	// PageRank keeps every vertex active, so dense accumulation must
	// combine at the source: strictly fewer deliveries than messages.
	for _, c := range rep.Cells {
		if c.Algo == "pagerank" && c.Mode == core.AccumDense.String() && c.Delivered >= c.Messages {
			t.Fatalf("pagerank/dense delivered %d of %d messages; no source combining happened", c.Delivered, c.Messages)
		}
	}
	// Allocation ceiling: the arena-pooled accumulator path measures
	// under 1.3 B/msg even at this toy scale (where per-run fixed costs —
	// actor spawn, mailboxes — dominate the short bfs message counts; at
	// paper scale it is <0.01 B). An unpooled path re-allocates slabs and
	// sparse tables every flush and lands in the tens of B/msg here, so a
	// 4 B gate catches a pooling regression without tripping on GC noise.
	const allocCeiling = 4.0 // bytes per message
	for _, c := range rep.Cells {
		if c.Mode == core.AccumOff.String() {
			continue // legacy sort path is not arena-pooled
		}
		if c.AllocPerMsg > allocCeiling {
			t.Fatalf("%s/%s: %.2f B/msg exceeds the %.1f B pooled-path ceiling",
				c.Algo, c.Mode, c.AllocPerMsg, allocCeiling)
		}
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back HotPathReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Rev != "smoke" || len(back.Cells) != wantCells {
		t.Fatalf("round-tripped report lost data: rev=%q cells=%d", back.Rev, len(back.Cells))
	}
}
