package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Regression gates for DiffHotPath: a cell regresses when its
// throughput drops by more than 10% or its allocation rate rises by
// more than 0.2 bytes per message against the baseline. The alloc gate
// is absolute, not relative — the arena-pooled hot path sits at ~0 B,
// where any relative threshold would be all noise.
const (
	ThroughputTolerance = 0.10
	AllocTolerance      = 0.2
)

// BenchDiff compares one (algorithm, mode) cell across two reports.
type BenchDiff struct {
	Algo, Mode     string
	OldMsgsPerSec  float64
	NewMsgsPerSec  float64
	OldAllocPerMsg float64
	NewAllocPerMsg float64
	Regression     bool
	Reason         string // non-empty when Regression
}

// LoadHotPathReport reads a BENCH_<rev>.json artifact.
func LoadHotPathReport(path string) (*HotPathReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep HotPathReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if len(rep.Cells) == 0 {
		return nil, fmt.Errorf("bench: %s: no cells", path)
	}
	return &rep, nil
}

// DiffHotPath compares every cell present in both reports (cells only
// one side measured are skipped — a new algorithm is not a regression).
func DiffHotPath(oldRep, newRep *HotPathReport) []BenchDiff {
	oldCells := map[string]HotPathCell{}
	for _, c := range oldRep.Cells {
		oldCells[c.Algo+"/"+c.Mode] = c
	}
	var diffs []BenchDiff
	for _, nc := range newRep.Cells {
		oc, ok := oldCells[nc.Algo+"/"+nc.Mode]
		if !ok {
			continue
		}
		d := BenchDiff{
			Algo: nc.Algo, Mode: nc.Mode,
			OldMsgsPerSec: oc.MsgsPerSec, NewMsgsPerSec: nc.MsgsPerSec,
			OldAllocPerMsg: oc.AllocPerMsg, NewAllocPerMsg: nc.AllocPerMsg,
		}
		var reasons []string
		if oc.MsgsPerSec > 0 && nc.MsgsPerSec < oc.MsgsPerSec*(1-ThroughputTolerance) {
			reasons = append(reasons, fmt.Sprintf("throughput -%.1f%%",
				100*(1-nc.MsgsPerSec/oc.MsgsPerSec)))
		}
		if nc.AllocPerMsg > oc.AllocPerMsg+AllocTolerance {
			reasons = append(reasons, fmt.Sprintf("alloc/msg +%.2fB",
				nc.AllocPerMsg-oc.AllocPerMsg))
		}
		if len(reasons) > 0 {
			d.Regression = true
			d.Reason = strings.Join(reasons, ", ")
		}
		diffs = append(diffs, d)
	}
	return diffs
}

// FormatBenchDiff renders the comparison; regressed rows are flagged.
func FormatBenchDiff(oldRep, newRep *HotPathReport, diffs []BenchDiff) string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline %s vs %s\n", oldRep.Rev, newRep.Rev)
	fmt.Fprintf(&b, "%-14s %-8s %14s %14s %8s %11s %11s  %s\n",
		"Algo", "Mode", "old msgs/s", "new msgs/s", "delta", "old B/msg", "new B/msg", "verdict")
	for _, d := range diffs {
		delta := 0.0
		if d.OldMsgsPerSec > 0 {
			delta = 100 * (d.NewMsgsPerSec/d.OldMsgsPerSec - 1)
		}
		verdict := "ok"
		if d.Regression {
			verdict = "REGRESSION: " + d.Reason
		}
		fmt.Fprintf(&b, "%-14s %-8s %14.0f %14.0f %+7.1f%% %11.3f %11.3f  %s\n",
			d.Algo, d.Mode, d.OldMsgsPerSec, d.NewMsgsPerSec, delta,
			d.OldAllocPerMsg, d.NewAllocPerMsg, verdict)
	}
	return b.String()
}
