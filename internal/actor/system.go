package actor

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/fault"
)

// Actor is a unit of concurrent execution. Execute typically loops reading
// a mailbox until a termination message arrives, then returns. A non-nil
// error (or a panic, which the system converts to an error) marks the
// actor as failed.
type Actor interface {
	Execute() error
}

// Func adapts an ordinary function to the Actor interface.
type Func func() error

// Execute calls f.
func (f Func) Execute() error { return f() }

// Failure describes an actor that terminated with an error or panic.
type Failure struct {
	Name  string
	Err   error
	Stack []byte // non-nil when the failure was a panic
}

func (f Failure) Error() string {
	return fmt.Sprintf("actor %q failed: %v", f.Name, f.Err)
}

// RestartPolicy controls what the system does when an actor panics.
type RestartPolicy struct {
	// MaxRestarts is the number of times a panicking actor is re-executed
	// before its failure is recorded. Zero means never restart.
	MaxRestarts int
}

// Ref is a handle to a spawned actor.
type Ref struct {
	name string
	done chan struct{}

	mu       sync.Mutex
	err      error
	restarts int
}

// Name returns the actor's registered name.
func (r *Ref) Name() string { return r.name }

// Done returns a channel closed when the actor has terminated (after any
// restarts).
func (r *Ref) Done() <-chan struct{} { return r.done }

// Err returns the actor's terminal error, or nil. It must only be trusted
// after Done is closed.
func (r *Ref) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Restarts returns how many times the actor was restarted after panics.
func (r *Ref) Restarts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.restarts
}

// System owns a set of actors and supervises their execution. It is the
// analogue of a Kilim scheduler instance: spawning is cheap, actors run
// concurrently, and the owner can wait for collective termination and
// inspect failures.
type System struct {
	name   string
	policy RestartPolicy
	ctx    context.Context

	wg sync.WaitGroup

	mu       sync.Mutex
	refs     map[string]*Ref
	failures []Failure
	seq      int
}

// NewSystem creates an actor system. The name is used in diagnostics only.
func NewSystem(name string, policy RestartPolicy) *System {
	//lint:ctxblock documented convenience wrapper; cancellable callers use NewSystemContext
	return NewSystemContext(context.Background(), name, policy)
}

// NewSystemContext creates an actor system bound to ctx. The context does
// not preempt running actors — Go cannot forcibly stop a goroutine, and
// GPSA's workers observe cancellation through their mailboxes — but once
// ctx is cancelled the supervisor stops restarting panicking actors:
// during a teardown a restarted worker would only block on closed
// mailboxes and delay collection.
func NewSystemContext(ctx context.Context, name string, policy RestartPolicy) *System {
	if ctx == nil {
		ctx = context.Background() //lint:ctxblock defensive default for nil ctx; callers who want cancellation pass one
	}
	return &System{name: name, policy: policy, ctx: ctx, refs: make(map[string]*Ref)}
}

// Context returns the context the system was created with.
func (s *System) Context() context.Context { return s.ctx }

// Spawn starts a concurrently executing actor. If name is empty a unique
// one is generated; if it collides with a live actor's name a suffix is
// appended. Spawn never blocks on the actor itself.
func (s *System) Spawn(name string, a Actor) *Ref {
	s.mu.Lock()
	s.seq++
	if name == "" {
		name = fmt.Sprintf("%s-actor-%d", s.name, s.seq)
	}
	if _, exists := s.refs[name]; exists {
		name = fmt.Sprintf("%s#%d", name, s.seq)
	}
	ref := &Ref{name: name, done: make(chan struct{})}
	s.refs[name] = ref
	s.mu.Unlock()

	s.wg.Add(1)
	go s.run(ref, a)
	return ref
}

// SpawnFunc is shorthand for Spawn(name, Func(fn)).
func (s *System) SpawnFunc(name string, fn func() error) *Ref {
	return s.Spawn(name, Func(fn))
}

func (s *System) run(ref *Ref, a Actor) {
	defer s.wg.Done()
	defer close(ref.done)

	for attempt := 0; ; attempt++ {
		err, stack := s.executeOnce(a)
		if err == nil {
			return
		}
		if stack != nil && attempt < s.policy.MaxRestarts && s.ctx.Err() == nil {
			ref.mu.Lock()
			ref.restarts++
			ref.mu.Unlock()
			continue
		}
		ref.mu.Lock()
		ref.err = err
		ref.mu.Unlock()
		s.mu.Lock()
		s.failures = append(s.failures, Failure{Name: ref.name, Err: err, Stack: stack})
		s.mu.Unlock()
		return
	}
}

// executeOnce runs the actor once, converting panics into errors.
func (s *System) executeOnce(a Actor) (err error, stack []byte) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
			stack = debug.Stack()
		}
	}()
	fault.Panic(fault.SiteActorExecute)
	return a.Execute(), nil
}

// Wait blocks until every actor spawned so far (and any they spawn while
// waiting) has terminated, then returns the name-ordered first failure,
// if any — the same ordering as Failures, so which failure surfaces does
// not depend on goroutine scheduling.
func (s *System) Wait() error {
	//lint:ctxblock the wait is release-bounded by actor termination; workers observe cancellation through their closed mailboxes
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.failures) == 0 {
		return nil
	}
	first := s.failures[0]
	for _, f := range s.failures[1:] {
		if f.Name < first.Name {
			first = f
		}
	}
	return first
}

// Failures returns all recorded failures, ordered by actor name for
// determinism.
func (s *System) Failures() []Failure {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Failure, len(s.failures))
	copy(out, s.failures)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Live returns the number of actors that have been spawned and not yet
// terminated.
func (s *System) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, r := range s.refs {
		select {
		case <-r.done:
		default:
			n++
		}
	}
	return n
}
