package actor

import (
	"testing"
)

// BenchmarkMailboxPutGet measures raw per-message mailbox cost — the
// number motivating the engine's message batching (DESIGN.md).
func BenchmarkMailboxPutGet(b *testing.B) {
	mb := NewMailbox[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := mb.Get(); !ok {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mb.Put(i); err != nil {
			b.Fatal(err)
		}
	}
	mb.Close()
	<-done
}

// BenchmarkMailboxBatched shows the amortized cost when 512 messages ride
// one mailbox operation, as the engine's dispatchers do.
func BenchmarkMailboxBatched(b *testing.B) {
	const batch = 512
	mb := NewMailbox[[]int](64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := mb.Get(); !ok {
				return
			}
		}
	}()
	buf := make([]int, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		if err := mb.Put(buf); err != nil {
			b.Fatal(err)
		}
	}
	mb.Close()
	<-done
}

// BenchmarkSpawn measures actor creation cost (Kilim's "tasks start up
// quite fast" claim, §II-C).
func BenchmarkSpawn(b *testing.B) {
	s := NewSystem("bench", RestartPolicy{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpawnFunc("", func() error { return nil })
	}
	if err := s.Wait(); err != nil {
		b.Fatal(err)
	}
}
