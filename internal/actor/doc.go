// Package actor is a lightweight actor runtime used by the GPSA engine.
//
// It stands in for the Kilim framework the paper builds on: actors are
// independent computational entities that communicate exclusively through
// asynchronous messages delivered to bounded mailboxes; there is no shared
// mutable state between actors (the engine's memory-mapped value file is
// partitioned so that no two actors write the same slot).
//
// The mapping from Kilim concepts to this package:
//
//   - Kilim Task (lightweight thread)  -> goroutine spawned by System.Spawn
//   - Kilim Mailbox                    -> Mailbox[T], a bounded FIFO with
//     blocking put/get semantics
//   - Kilim Scheduler (N kernel threads multiplexing tasks) -> the Go
//     runtime scheduler, which is exactly an M:N scheduler
//   - Pausable methods                 -> ordinary blocking channel ops
//
// The runtime adds supervision: a panicking actor is isolated (its panic is
// converted to an error and reported to the system) and may optionally be
// restarted, so a long-running graph computation is not torn down by one
// misbehaving worker.
package actor
