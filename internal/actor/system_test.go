package actor

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestSystemWaitCollectsActors(t *testing.T) {
	s := NewSystem("test", RestartPolicy{})
	var n atomic.Int32
	for i := 0; i < 10; i++ {
		s.SpawnFunc("", func() error {
			n.Add(1)
			return nil
		})
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if n.Load() != 10 {
		t.Fatalf("ran %d actors, want 10", n.Load())
	}
	if s.Live() != 0 {
		t.Fatalf("Live = %d after Wait, want 0", s.Live())
	}
}

func TestSystemReportsActorError(t *testing.T) {
	s := NewSystem("test", RestartPolicy{})
	boom := errors.New("boom")
	ref := s.SpawnFunc("worker", func() error { return boom })
	<-ref.Done()
	if !errors.Is(ref.Err(), boom) {
		t.Fatalf("ref.Err() = %v, want boom", ref.Err())
	}
	err := s.Wait()
	if err == nil || !strings.Contains(err.Error(), "worker") {
		t.Fatalf("Wait = %v, want failure naming worker", err)
	}
}

func TestSystemIsolatesPanics(t *testing.T) {
	s := NewSystem("test", RestartPolicy{})
	healthy := s.SpawnFunc("healthy", func() error {
		time.Sleep(10 * time.Millisecond)
		return nil
	})
	s.SpawnFunc("crasher", func() error { panic("kaboom") })
	err := s.Wait()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Wait = %v, want panic failure", err)
	}
	if healthy.Err() != nil {
		t.Fatalf("healthy actor reported error %v", healthy.Err())
	}
	fs := s.Failures()
	if len(fs) != 1 || fs[0].Name != "crasher" || len(fs[0].Stack) == 0 {
		t.Fatalf("Failures = %+v, want one crasher failure with stack", fs)
	}
}

func TestSystemRestartPolicy(t *testing.T) {
	s := NewSystem("test", RestartPolicy{MaxRestarts: 3})
	var attempts atomic.Int32
	ref := s.SpawnFunc("flaky", func() error {
		if attempts.Add(1) < 3 {
			panic("transient")
		}
		return nil
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}
	if ref.Restarts() != 2 {
		t.Fatalf("Restarts = %d, want 2", ref.Restarts())
	}
}

func TestSystemRestartExhaustionRecordsFailure(t *testing.T) {
	s := NewSystem("test", RestartPolicy{MaxRestarts: 2})
	var attempts atomic.Int32
	s.SpawnFunc("hopeless", func() error {
		attempts.Add(1)
		panic("always")
	})
	err := s.Wait()
	if err == nil {
		t.Fatal("Wait succeeded for always-panicking actor")
	}
	if attempts.Load() != 3 { // initial + 2 restarts
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}
}

func TestSystemErrorsAreNotRestarted(t *testing.T) {
	// Restart policy applies to panics only; a clean error return is a
	// deliberate terminal state.
	s := NewSystem("test", RestartPolicy{MaxRestarts: 5})
	var attempts atomic.Int32
	s.SpawnFunc("erroring", func() error {
		attempts.Add(1)
		return errors.New("done")
	})
	if err := s.Wait(); err == nil {
		t.Fatal("Wait succeeded, want error")
	}
	if attempts.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (errors must not trigger restart)", attempts.Load())
	}
}

func TestSystemNameCollisionsGetUniqueRefs(t *testing.T) {
	s := NewSystem("test", RestartPolicy{})
	block := make(chan struct{})
	a := s.SpawnFunc("dup", func() error { <-block; return nil })
	b := s.SpawnFunc("dup", func() error { <-block; return nil })
	if a.Name() == b.Name() {
		t.Fatalf("two live actors share name %q", a.Name())
	}
	if s.Live() != 2 {
		t.Fatalf("Live = %d, want 2", s.Live())
	}
	close(block)
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSystemWaitFirstFailureIsNameOrdered(t *testing.T) {
	// "zz" fails first in wall-clock time, but Wait must surface the
	// name-ordered first failure ("aa") so which error a caller sees does
	// not depend on goroutine scheduling.
	s := NewSystem("test", RestartPolicy{})
	zz := s.SpawnFunc("zz", func() error { return errors.New("late alphabet, early crash") })
	<-zz.Done()
	s.SpawnFunc("aa", func() error { return errors.New("early alphabet") })
	err := s.Wait()
	if err == nil || !strings.Contains(err.Error(), `"aa"`) {
		t.Fatalf("Wait = %v, want the aa failure", err)
	}
	if fs := s.Failures(); len(fs) != 2 || fs[0].Name != "aa" || fs[1].Name != "zz" {
		t.Fatalf("Failures = %+v, want name-ordered [aa zz]", fs)
	}
}

func TestSystemInjectedExecutePanicIsRestarted(t *testing.T) {
	// The actor.execute.panic site kills the actor the moment it is
	// scheduled; the restart policy must revive it and the second
	// incarnation runs normally.
	fault.Activate(fault.NewPlan(0, fault.Injection{Site: fault.SiteActorExecute}))
	defer fault.Deactivate()
	s := NewSystem("test", RestartPolicy{MaxRestarts: 1})
	var runs atomic.Int32
	ref := s.SpawnFunc("victim", func() error {
		runs.Add(1)
		return nil
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if runs.Load() != 1 {
		t.Fatalf("actor body ran %d times, want 1 (first incarnation died before Execute)", runs.Load())
	}
	if ref.Restarts() != 1 {
		t.Fatalf("Restarts = %d, want 1", ref.Restarts())
	}
}

func TestActorsCommunicateViaMailboxes(t *testing.T) {
	// A miniature dispatcher/computer pair: the shape the GPSA engine uses.
	s := NewSystem("pipe", RestartPolicy{})
	data := NewMailbox[int](4)
	result := NewMailbox[int](1)

	s.SpawnFunc("dispatcher", func() error {
		for i := 1; i <= 100; i++ {
			if err := data.Put(i); err != nil {
				return err
			}
		}
		data.Close()
		return nil
	})
	s.SpawnFunc("computer", func() error {
		sum := 0
		for {
			v, ok := data.Get()
			if !ok {
				break
			}
			sum += v
		}
		return result.Put(sum)
	})
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	got, ok := result.Get()
	if !ok || got != 5050 {
		t.Fatalf("result = (%d, %v), want (5050, true)", got, ok)
	}
}
