package actor

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMailboxFIFOSingleSender(t *testing.T) {
	mb := NewMailbox[int](8)
	for i := 0; i < 8; i++ {
		if err := mb.Put(i); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := 0; i < 8; i++ {
		m, ok := mb.Get()
		if !ok || m != i {
			t.Fatalf("Get #%d = (%d, %v), want (%d, true)", i, m, ok, i)
		}
	}
}

func TestMailboxBlockingPutReleasedByGet(t *testing.T) {
	mb := NewMailbox[int](1)
	if err := mb.Put(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- mb.Put(2) }()
	select {
	case <-done:
		t.Fatal("Put on full mailbox returned before a Get")
	case <-time.After(20 * time.Millisecond):
	}
	if m, ok := mb.Get(); !ok || m != 1 {
		t.Fatalf("Get = (%d, %v), want (1, true)", m, ok)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked Put: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Put still blocked after space was freed")
	}
}

func TestMailboxCloseDrainsThenReportsClosed(t *testing.T) {
	mb := NewMailbox[string](4)
	mb.Put("a")
	mb.Put("b")
	mb.Close()
	if m, ok := mb.Get(); !ok || m != "a" {
		t.Fatalf("Get = (%q, %v), want (a, true)", m, ok)
	}
	if m, ok := mb.Get(); !ok || m != "b" {
		t.Fatalf("Get = (%q, %v), want (b, true)", m, ok)
	}
	if _, ok := mb.Get(); ok {
		t.Fatal("Get on drained closed mailbox reported ok")
	}
	if err := mb.Put("c"); err != ErrMailboxClosed {
		t.Fatalf("Put after Close = %v, want ErrMailboxClosed", err)
	}
	mb.Close() // idempotent
}

func TestMailboxPutRacingClose(t *testing.T) {
	// Senders blocked in Put when Close fires must be released with the
	// documented error rather than panicking.
	mb := NewMailbox[int](0)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			errs <- mb.Put(v)
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	mb.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && err != ErrMailboxClosed {
			t.Fatalf("unexpected Put error: %v", err)
		}
	}
}

func TestMailboxTryPutTryGet(t *testing.T) {
	mb := NewMailbox[int](1)
	if !mb.TryPut(7) {
		t.Fatal("TryPut on empty mailbox failed")
	}
	if mb.TryPut(8) {
		t.Fatal("TryPut on full mailbox succeeded")
	}
	if m, ok := mb.TryGet(); !ok || m != 7 {
		t.Fatalf("TryGet = (%d, %v), want (7, true)", m, ok)
	}
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox succeeded")
	}
	mb.Close()
	if mb.TryPut(9) {
		t.Fatal("TryPut after Close succeeded")
	}
}

func TestMailboxGetTimeout(t *testing.T) {
	mb := NewMailbox[int](1)
	start := time.Now()
	if _, ok := mb.GetTimeout(15 * time.Millisecond); ok {
		t.Fatal("GetTimeout on empty mailbox reported a message")
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("GetTimeout returned too early")
	}
	mb.Put(3)
	if m, ok := mb.GetTimeout(time.Second); !ok || m != 3 {
		t.Fatalf("GetTimeout = (%d, %v), want (3, true)", m, ok)
	}
}

func TestMailboxStatsAndLen(t *testing.T) {
	mb := NewMailbox[int](4)
	if mb.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", mb.Cap())
	}
	mb.Put(1)
	mb.Put(2)
	if mb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", mb.Len())
	}
	mb.Get()
	puts, gets := mb.Stats()
	if puts != 2 || gets != 1 {
		t.Fatalf("Stats = (%d, %d), want (2, 1)", puts, gets)
	}
}

func TestMailboxNegativeCapacityClamped(t *testing.T) {
	mb := NewMailbox[int](-3)
	if mb.Cap() != 0 {
		t.Fatalf("Cap = %d, want 0", mb.Cap())
	}
}

// Property: with a single producer and single consumer, every sequence of
// values is delivered exactly, in order, regardless of capacity.
func TestMailboxDeliveryProperty(t *testing.T) {
	fn := func(vals []int16, capRaw uint8) bool {
		capacity := int(capRaw % 9)
		mb := NewMailbox[int16](capacity)
		go func() {
			for _, v := range vals {
				if err := mb.Put(v); err != nil {
					return
				}
			}
			mb.Close()
		}()
		var got []int16
		for {
			v, ok := mb.Get()
			if !ok {
				break
			}
			got = append(got, v)
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: with many producers, the multiset of received values equals
// the multiset of sent values (no loss, no duplication).
func TestMailboxMultiProducerConservation(t *testing.T) {
	const producers, perProducer = 8, 200
	mb := NewMailbox[int](16)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := mb.Put(p*perProducer + i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		mb.Close()
	}()
	seen := make(map[int]bool, producers*perProducer)
	for {
		v, ok := mb.Get()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate delivery of %d", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("received %d distinct messages, want %d", len(seen), producers*perProducer)
	}
}
