package actor

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrMailboxClosed is returned by Put on a closed mailbox.
var ErrMailboxClosed = errors.New("actor: mailbox closed")

// Mailbox is a bounded FIFO message queue connecting actors.
//
// Semantics follow Kilim's Mailbox: Put blocks while the box is full, Get
// blocks while it is empty, and delivery order is FIFO per sender. A
// mailbox may have many senders and many receivers. Closing the mailbox
// releases blocked senders with ErrMailboxClosed and lets receivers drain
// messages already enqueued before observing closure.
//
// A Put that races Close may either succeed or report ErrMailboxClosed; if
// it reports success the message was enqueued, and receivers that keep
// calling Get until it reports closure will observe it. (The GPSA engine
// only closes a mailbox after all of its senders have finished, so this
// edge never matters there.)
type Mailbox[T any] struct {
	ch        chan T
	done      chan struct{}
	closeOnce sync.Once
	// counters are monotone and feed the engine's observability output,
	// not control flow.
	puts atomic.Int64
	gets atomic.Int64
}

// NewMailbox returns a mailbox with the given capacity. Capacity 0 gives a
// rendezvous (synchronous) mailbox.
func NewMailbox[T any](capacity int) *Mailbox[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Mailbox[T]{ch: make(chan T, capacity), done: make(chan struct{})}
}

// Put enqueues m, blocking while the mailbox is full. It returns
// ErrMailboxClosed if the mailbox is (or becomes) closed.
func (b *Mailbox[T]) Put(m T) error {
	select {
	case <-b.done:
		return ErrMailboxClosed
	default:
	}
	//lint:ctxblock the block is release-bounded by the mailbox protocol: Close unblocks every Put via done
	select {
	case b.ch <- m:
		b.puts.Add(1)
		return nil
	case <-b.done:
		return ErrMailboxClosed
	}
}

// TryPut enqueues m without blocking. It reports false if the mailbox is
// full or closed.
func (b *Mailbox[T]) TryPut(m T) bool {
	select {
	case <-b.done:
		return false
	default:
	}
	select {
	case b.ch <- m:
		b.puts.Add(1)
		return true
	default:
		return false
	}
}

// Get dequeues the next message, blocking while the mailbox is empty. The
// second result is false once the mailbox is closed and drained.
func (b *Mailbox[T]) Get() (T, bool) {
	//lint:ctxblock the block is release-bounded by the mailbox protocol: Close unblocks every Get via done
	select {
	case m := <-b.ch:
		b.gets.Add(1)
		return m, true
	case <-b.done:
		return b.drain()
	}
}

// drain performs a final non-blocking receive after closure so that
// buffered messages are not lost.
func (b *Mailbox[T]) drain() (T, bool) {
	select {
	case m := <-b.ch:
		b.gets.Add(1)
		return m, true
	default:
		var zero T
		return zero, false
	}
}

// TryGet dequeues without blocking. It reports false if no message is
// immediately available (the mailbox may still be open).
func (b *Mailbox[T]) TryGet() (T, bool) {
	select {
	case m := <-b.ch:
		b.gets.Add(1)
		return m, true
	default:
		var zero T
		return zero, false
	}
}

// GetTimeout dequeues the next message, giving up after d. ok is false on
// timeout or on closure with an empty buffer.
func (b *Mailbox[T]) GetTimeout(d time.Duration) (T, bool) {
	t := time.NewTimer(d)
	defer t.Stop()
	//lint:ctxblock the block is timer-bounded by d and release-bounded by Close
	select {
	case m := <-b.ch:
		b.gets.Add(1)
		return m, true
	case <-b.done:
		return b.drain()
	case <-t.C:
		var zero T
		return zero, false
	}
}

// Close closes the mailbox. Messages already enqueued remain receivable.
// Close is idempotent. Senders concurrently blocked in Put are released
// with ErrMailboxClosed.
func (b *Mailbox[T]) Close() {
	b.closeOnce.Do(func() { close(b.done) })
}

// Closed reports whether Close has been called.
func (b *Mailbox[T]) Closed() bool {
	select {
	case <-b.done:
		return true
	default:
		return false
	}
}

// Len returns the number of messages currently buffered.
func (b *Mailbox[T]) Len() int { return len(b.ch) }

// Cap returns the mailbox capacity.
func (b *Mailbox[T]) Cap() int { return cap(b.ch) }

// Stats returns the cumulative number of successful Puts and Gets.
func (b *Mailbox[T]) Stats() (puts, gets int64) {
	return b.puts.Load(), b.gets.Load()
}
