package actor

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestNoRestartAfterCancel: a cancelled system must not restart a
// panicking actor — during teardown a restarted worker would only block
// on closed mailboxes.
func TestNoRestartAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSystemContext(ctx, "t", RestartPolicy{MaxRestarts: 5})
	var runs atomic.Int64
	cancel()
	ref := s.SpawnFunc("boom", func() error {
		runs.Add(1)
		panic("boom")
	})
	<-ref.Done()
	if got := runs.Load(); got != 1 {
		t.Fatalf("actor ran %d times after cancel, want 1", got)
	}
	if ref.Restarts() != 0 {
		t.Fatalf("restarts = %d, want 0", ref.Restarts())
	}
	if err := s.Wait(); err == nil {
		t.Fatal("panic not surfaced as failure")
	}
}

// TestRestartsBeforeCancel: the same policy does restart while the
// context is live, and stops once it is cancelled mid-life.
func TestRestartsBeforeCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := NewSystemContext(ctx, "t", RestartPolicy{MaxRestarts: 3})
	var runs atomic.Int64
	ref := s.SpawnFunc("boom", func() error {
		if runs.Add(1) == 2 {
			cancel() // second attempt cancels: no third attempt
		}
		panic("boom")
	})
	<-ref.Done()
	if got := runs.Load(); got != 2 {
		t.Fatalf("actor ran %d times, want 2 (restart once, then cancel stops it)", got)
	}
}

func TestNewSystemNilContext(t *testing.T) {
	s := NewSystemContext(nil, "t", RestartPolicy{}) //nolint:staticcheck // nil tolerance is the point
	if s.Context() == nil {
		t.Fatal("nil ctx not defaulted")
	}
	ref := s.SpawnFunc("ok", func() error { return nil })
	<-ref.Done()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}
