package xstream_test

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xstream"
)

func rmat(t testing.TB, v, e, seed int64) *graph.CSR {
	t.Helper()
	g, err := gen.RMATGraph(gen.RMATConfig{Vertices: v, Edges: e, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func prep(t testing.TB, g *graph.CSR, k int) *xstream.Layout {
	t.Helper()
	l, err := xstream.Preprocess(g, t.TempDir(), k)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func run(t testing.TB, l *xstream.Layout, prog interface {
	Init(int64) (uint64, bool)
	GenMsg(int64, uint64, uint32, graph.VertexID, float32) (uint64, bool)
	Compute(int64, uint64, uint64, bool) (uint64, bool)
}, steps int) (*xstream.Engine, *xstream.Result) {
	t.Helper()
	e, err := xstream.NewEngine(l, prog, xstream.Config{MaxSupersteps: steps})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return e, res
}

func TestLayoutRoundTrip(t *testing.T) {
	g := rmat(t, 250, 1500, 1)
	dir := t.TempDir()
	l, err := xstream.Preprocess(g, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	re, err := xstream.OpenLayout(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumVertices != l.NumVertices || re.NumEdges != l.NumEdges || re.K != l.K || re.Weighted != l.Weighted {
		t.Fatalf("reloaded layout differs")
	}
	for v := range l.OutDeg {
		if l.OutDeg[v] != re.OutDeg[v] {
			t.Fatalf("degree of %d differs", v)
		}
	}
}

func TestPreprocessRejectsEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(nil, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xstream.Preprocess(g, t.TempDir(), 2); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestXStreamBFSMatchesReference(t *testing.T) {
	g := rmat(t, 400, 2500, 2)
	l := prep(t, g, 4)
	e, res := run(t, l, algorithms.BFS{Root: 0}, 200)
	if !res.Converged {
		t.Fatal("BFS did not converge")
	}
	want := algorithms.TrueBFS(g, 0)
	for v := int64(0); v < g.NumVertices; v++ {
		got := e.Value(v)
		if want[v] == -1 {
			if got != algorithms.Unreached {
				t.Fatalf("vertex %d reached unexpectedly (level %d)", v, got)
			}
			continue
		}
		if got != uint64(want[v]) {
			t.Fatalf("vertex %d: level %d, want %d", v, got, want[v])
		}
	}
}

func TestXStreamCCMatchesUnionFind(t *testing.T) {
	g := rmat(t, 300, 1000, 3).Symmetrize()
	l := prep(t, g, 3)
	e, res := run(t, l, algorithms.ConnectedComponents{}, 300)
	if !res.Converged {
		t.Fatal("CC did not converge")
	}
	want := algorithms.TrueComponents(g)
	for v := int64(0); v < g.NumVertices; v++ {
		if e.Value(v) != uint64(want[v]) {
			t.Fatalf("vertex %d: label %d, want %d", v, e.Value(v), want[v])
		}
	}
}

func TestXStreamPageRankMatchesGPSASemantics(t *testing.T) {
	// X-Stream runs the same core.Program, so 5 supersteps must equal the
	// serial reference exactly (up to float association).
	g := rmat(t, 200, 1400, 4)
	l := prep(t, g, 4)
	e, _ := run(t, l, algorithms.PageRank{}, 5)
	want, _ := algorithms.ReferenceRun(g, algorithms.PageRank{}, 5)
	for v := int64(0); v < g.NumVertices; v++ {
		got := math.Float64frombits(e.Value(v))
		ref := algorithms.RankOf(want[v])
		if math.Abs(got-ref) > 1e-9*(1+ref) {
			t.Fatalf("vertex %d: rank %g, want %g", v, got, ref)
		}
	}
}

func TestXStreamStreamsAllEdgesEverySuperstep(t *testing.T) {
	// The edge-centric signature: even with a single active vertex,
	// scatter reads the whole edge file each superstep.
	var edges []graph.Edge
	const n = 500
	for v := graph.VertexID(0); v+1 < n; v++ {
		edges = append(edges, graph.Edge{Src: v, Dst: v + 1})
	}
	g, err := graph.FromEdges(edges, n, false)
	if err != nil {
		t.Fatal(err)
	}
	l := prep(t, g, 4)
	_, res := run(t, l, algorithms.BFS{Root: 0}, 20)
	wantStreamed := int64(res.Supersteps) * g.NumEdges
	if res.EdgesStreamed != wantStreamed {
		t.Fatalf("streamed %d edges over %d supersteps, want %d (no skipping in X-Stream)",
			res.EdgesStreamed, res.Supersteps, wantStreamed)
	}
}

func TestXStreamSinglePartition(t *testing.T) {
	g := rmat(t, 60, 300, 5).Symmetrize()
	l := prep(t, g, 1)
	e, res := run(t, l, algorithms.ConnectedComponents{}, 100)
	if !res.Converged {
		t.Fatal("CC did not converge with one partition")
	}
	want := algorithms.TrueComponents(g)
	for v := int64(0); v < g.NumVertices; v++ {
		if e.Value(v) != uint64(want[v]) {
			t.Fatalf("vertex %d mismatch", v)
		}
	}
}

func TestXStreamMorePartitionsThanVertices(t *testing.T) {
	g, err := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	l := prep(t, g, 64) // clamped to |V|
	if l.K > 3 {
		t.Fatalf("K = %d not clamped", l.K)
	}
	e, _ := run(t, l, algorithms.BFS{Root: 0}, 10)
	if e.Value(2) != 2 {
		t.Fatalf("level of 2 = %d", e.Value(2))
	}
}

func TestXStreamInMemoryMatchesOutOfCore(t *testing.T) {
	g := rmat(t, 300, 2000, 8).Symmetrize()
	l := prep(t, g, 4)

	disk, err := xstream.NewEngine(l, algorithms.ConnectedComponents{}, xstream.Config{MaxSupersteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if _, err := disk.Run(); err != nil {
		t.Fatal(err)
	}

	mem, err := xstream.NewEngine(l, algorithms.ConnectedComponents{}, xstream.Config{MaxSupersteps: 200, InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	res, err := mem.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("in-memory run did not converge")
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if disk.Value(v) != mem.Value(v) {
			t.Fatalf("vertex %d: disk %d, memory %d", v, disk.Value(v), mem.Value(v))
		}
	}
}

func TestXStreamWeightedSSSP(t *testing.T) {
	edges, err := gen.RMAT(gen.RMATConfig{Vertices: 150, Edges: 900, Seed: 6, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(edges, 150, true)
	if err != nil {
		t.Fatal(err)
	}
	l := prep(t, g, 3)
	e, res := run(t, l, algorithms.SSSP{Source: 0}, 500)
	if !res.Converged {
		t.Fatal("SSSP did not converge")
	}
	want := algorithms.TrueSSSP(g, 0)
	for v := int64(0); v < g.NumVertices; v++ {
		got := algorithms.DistOf(e.Value(v))
		if math.IsInf(want[v], 1) {
			if !math.IsInf(got, 1) {
				t.Fatalf("vertex %d reached unexpectedly", v)
			}
			continue
		}
		if math.Abs(got-want[v]) > 1e-5*(1+want[v]) {
			t.Fatalf("vertex %d: dist %g, want %g", v, got, want[v])
		}
	}
}
