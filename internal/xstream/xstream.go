// Package xstream is a faithful-in-structure reimplementation of the
// X-Stream baseline the paper compares against (Roy et al., SOSP'13): an
// edge-centric scatter–gather engine over streaming partitions.
//
// The vertex set is split into K ranges ("streaming partitions"); each
// partition owns an on-disk edge file holding every edge whose source
// lies in the range. A superstep is two phases:
//
//   - Scatter: every partition's edge file is streamed sequentially in
//     its entirety — X-Stream has no per-vertex index, so inactive edges
//     are read and discarded, the behaviour that makes it lose the
//     paper's BFS/CC comparisons on selective workloads. Updates
//     (destination, value) produced for active sources are appended to
//     the destination partition's update file.
//
//   - Gather: each partition streams its update file and folds the
//     updates into its vertex values; update files are then truncated.
//
// Phases run partitions in parallel across all available CPUs with no
// idle time, reproducing X-Stream's near-100% CPU utilization (paper
// Fig. 11). Vertex programs are the same core.Program interface the GPSA
// engine runs, so cross-engine results are directly comparable.
package xstream

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

const (
	edgeRecBytes = 12         // src, dst uint32 + weight float32
	updRecBytes  = 12         // dst uint32 + value uint64
	metaMagic    = 0x4d545358 // "XSTM"
)

// Layout is a preprocessed on-disk edge layout.
type Layout struct {
	Dir         string
	NumVertices int64
	NumEdges    int64
	K           int
	Weighted    bool
	OutDeg      []uint32
	edgeCounts  []int64
}

func (l *Layout) edgePath(p int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("edges-%03d.bin", p))
}
func (l *Layout) updPath(p int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("updates-%03d.bin", p))
}

// partitionOf maps a vertex to its streaming partition.
func (l *Layout) partitionOf(v graph.VertexID) int {
	return int(int64(v) * int64(l.K) / l.NumVertices)
}

// Preprocess writes g into dir as K per-source-partition edge files plus
// metadata (vertex count and out-degrees, which X-Stream keeps in vertex
// state for programs like PageRank).
func Preprocess(g *graph.CSR, dir string, k int) (*Layout, error) {
	if g.NumVertices == 0 {
		return nil, fmt.Errorf("xstream: empty graph")
	}
	if k < 1 {
		k = 1
	}
	if int64(k) > g.NumVertices {
		k = int(g.NumVertices)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("xstream: %w", err)
	}
	l := &Layout{
		Dir:         dir,
		NumVertices: g.NumVertices,
		NumEdges:    g.NumEdges,
		K:           k,
		Weighted:    g.Weighted(),
		OutDeg:      make([]uint32, g.NumVertices),
		edgeCounts:  make([]int64, k),
	}
	writers := make([]*bufio.Writer, k)
	files := make([]*os.File, k)
	for p := 0; p < k; p++ {
		f, err := os.Create(l.edgePath(p))
		if err != nil {
			return nil, fmt.Errorf("xstream: %w", err)
		}
		files[p] = f
		writers[p] = bufio.NewWriterSize(f, 1<<20)
	}
	var rec [edgeRecBytes]byte
	for v := int64(0); v < g.NumVertices; v++ {
		l.OutDeg[v] = g.OutDegree(graph.VertexID(v))
		p := l.partitionOf(graph.VertexID(v))
		ws := g.EdgeWeights(graph.VertexID(v))
		for i, d := range g.Neighbors(graph.VertexID(v)) {
			var w float32
			if ws != nil {
				w = ws[i]
			}
			binary.LittleEndian.PutUint32(rec[0:], uint32(v))
			binary.LittleEndian.PutUint32(rec[4:], d)
			binary.LittleEndian.PutUint32(rec[8:], math.Float32bits(w))
			if _, err := writers[p].Write(rec[:]); err != nil {
				return nil, fmt.Errorf("xstream: %w", err)
			}
			l.edgeCounts[p]++
		}
	}
	for p := 0; p < k; p++ {
		if err := writers[p].Flush(); err != nil {
			return nil, fmt.Errorf("xstream: %w", err)
		}
		if err := files[p].Close(); err != nil {
			return nil, fmt.Errorf("xstream: %w", err)
		}
	}
	if err := l.saveMeta(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Layout) metaPath() string { return filepath.Join(l.Dir, "meta") }

func (l *Layout) saveMeta() error {
	f, err := os.Create(l.metaPath())
	if err != nil {
		return fmt.Errorf("xstream: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	hdr := make([]byte, 40)
	binary.LittleEndian.PutUint32(hdr[0:], metaMagic)
	flags := uint32(0)
	if l.Weighted {
		flags = 1
	}
	binary.LittleEndian.PutUint32(hdr[4:], flags)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(l.NumVertices))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(l.NumEdges))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(l.K))
	if _, err := bw.Write(hdr); err != nil {
		f.Close()
		return err
	}
	var b8 [8]byte
	for _, c := range l.edgeCounts {
		binary.LittleEndian.PutUint64(b8[:], uint64(c))
		if _, err := bw.Write(b8[:]); err != nil {
			f.Close()
			return err
		}
	}
	var b4 [4]byte
	for _, d := range l.OutDeg {
		binary.LittleEndian.PutUint32(b4[:], d)
		if _, err := bw.Write(b4[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenLayout loads a preprocessed layout from dir.
func OpenLayout(dir string) (*Layout, error) {
	f, err := os.Open(filepath.Join(dir, "meta"))
	if err != nil {
		return nil, fmt.Errorf("xstream: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, 40)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("xstream: meta: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != metaMagic {
		return nil, fmt.Errorf("xstream: %s: bad meta magic", dir)
	}
	l := &Layout{
		Dir:         dir,
		Weighted:    binary.LittleEndian.Uint32(hdr[4:]) != 0,
		NumVertices: int64(binary.LittleEndian.Uint64(hdr[8:])),
		NumEdges:    int64(binary.LittleEndian.Uint64(hdr[16:])),
		K:           int(binary.LittleEndian.Uint64(hdr[24:])),
	}
	if l.K < 1 || l.NumVertices <= 0 {
		return nil, fmt.Errorf("xstream: meta: bad dimensions")
	}
	l.edgeCounts = make([]int64, l.K)
	var b8 [8]byte
	for p := range l.edgeCounts {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return nil, fmt.Errorf("xstream: meta: %w", err)
		}
		l.edgeCounts[p] = int64(binary.LittleEndian.Uint64(b8[:]))
	}
	l.OutDeg = make([]uint32, l.NumVertices)
	var b4 [4]byte
	for v := range l.OutDeg {
		if _, err := io.ReadFull(br, b4[:]); err != nil {
			return nil, fmt.Errorf("xstream: meta: %w", err)
		}
		l.OutDeg[v] = binary.LittleEndian.Uint32(b4[:])
	}
	return l, nil
}

// Config tunes the engine.
type Config struct {
	// MaxSupersteps caps the run (default 100).
	MaxSupersteps int
	// InMemory buffers update lists in memory instead of spilling them to
	// per-partition files. The real X-Stream supports both in-memory and
	// out-of-core operation; out-of-core (the default here) is what the
	// paper benchmarks against.
	InMemory bool
	// Workers bounds phase parallelism (default GOMAXPROCS — X-Stream
	// saturates the machine).
	Workers int
	// Progress receives per-superstep stats.
	Progress func(StepStats)
}

// StepStats records one superstep.
type StepStats struct {
	Step         int
	EdgesStreamd int64
	Updates      int64
	Duration     time.Duration
}

// Result summarizes a run.
type Result struct {
	Supersteps    int
	Converged     bool
	EdgesStreamed int64
	Updates       int64
	Duration      time.Duration
	Steps         []StepStats
}

// Engine executes a core.Program edge-centrically.
type Engine struct {
	l    *Layout
	prog core.Program
	cfg  Config

	vals    []uint64
	newVals []uint64
	active  []bool
	touched []bool

	updMu  []sync.Mutex
	upd    []*os.File // out-of-core update spill files
	updMem [][]byte   // in-memory update buffers (Config.InMemory)
}

// NewEngine initializes vertex state from the program and opens the
// update files.
func NewEngine(l *Layout, prog core.Program, cfg Config) (*Engine, error) {
	if prog == nil {
		return nil, fmt.Errorf("xstream: nil program")
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 100
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		l:       l,
		prog:    prog,
		cfg:     cfg,
		vals:    make([]uint64, l.NumVertices),
		newVals: make([]uint64, l.NumVertices),
		active:  make([]bool, l.NumVertices),
		touched: make([]bool, l.NumVertices),
		updMu:   make([]sync.Mutex, l.K),
		upd:     make([]*os.File, l.K),
	}
	for v := int64(0); v < l.NumVertices; v++ {
		e.vals[v], e.active[v] = prog.Init(v)
	}
	if cfg.InMemory {
		e.updMem = make([][]byte, l.K)
		return e, nil
	}
	for p := 0; p < l.K; p++ {
		f, err := os.OpenFile(l.updPath(p), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("xstream: %w", err)
		}
		e.upd[p] = f
	}
	return e, nil
}

// Close releases the update files.
func (e *Engine) Close() error {
	var first error
	for _, f := range e.upd {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Value returns vertex v's current value.
func (e *Engine) Value(v int64) uint64 { return e.vals[v] }

// Values returns a copy of all vertex values.
func (e *Engine) Values() []uint64 {
	out := make([]uint64, len(e.vals))
	copy(out, e.vals)
	return out
}

// Run executes supersteps until no updates flow or the cap is reached.
func (e *Engine) Run() (*Result, error) {
	res := &Result{}
	start := time.Now()
	for step := 0; step < e.cfg.MaxSupersteps; step++ {
		t0 := time.Now()
		streamed, written, err := e.scatter()
		if err != nil {
			return res, err
		}
		updates, err := e.gather()
		if err != nil {
			return res, err
		}
		st := StepStats{Step: step, EdgesStreamd: streamed, Updates: updates, Duration: time.Since(t0)}
		res.Steps = append(res.Steps, st)
		res.Supersteps++
		res.EdgesStreamed += streamed
		res.Updates += updates
		if e.cfg.Progress != nil {
			e.cfg.Progress(st)
		}
		if written == 0 && updates == 0 {
			res.Converged = true
			break
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}

// scatter streams every partition's whole edge file, emitting updates for
// edges whose source is active.
func (e *Engine) scatter() (streamed, written int64, err error) {
	var mu sync.Mutex
	var firstErr error
	var totStreamed, totWritten int64

	var wg sync.WaitGroup
	sem := make(chan struct{}, e.cfg.Workers)
	for p := 0; p < e.l.K; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			s, w, err := e.scatterPartition(p)
			mu.Lock()
			totStreamed += s
			totWritten += w
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return totStreamed, totWritten, firstErr
}

func (e *Engine) scatterPartition(p int) (streamed, written int64, err error) {
	f, err := os.Open(e.l.edgePath(p))
	if err != nil {
		return 0, 0, fmt.Errorf("xstream: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)

	// Local per-destination-partition buffers, flushed under the update
	// file locks (X-Stream's in-memory update buffers).
	bufs := make([][]byte, e.l.K)
	flush := func(q int) error {
		if len(bufs[q]) == 0 {
			return nil
		}
		e.updMu[q].Lock()
		var werr error
		if e.updMem != nil {
			e.updMem[q] = append(e.updMem[q], bufs[q]...)
		} else {
			_, werr = e.upd[q].Write(bufs[q])
		}
		e.updMu[q].Unlock()
		bufs[q] = bufs[q][:0]
		return werr
	}

	var rec [edgeRecBytes]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				break
			}
			return streamed, written, fmt.Errorf("xstream: edge stream %d: %w", p, err)
		}
		streamed++
		src := binary.LittleEndian.Uint32(rec[0:])
		if !e.active[src] {
			continue // edge-centric: the edge was still read from disk
		}
		dst := binary.LittleEndian.Uint32(rec[4:])
		w := math.Float32frombits(binary.LittleEndian.Uint32(rec[8:]))
		msg, send := e.prog.GenMsg(int64(src), e.vals[src], e.l.OutDeg[src], dst, w)
		if !send {
			continue
		}
		q := e.l.partitionOf(dst)
		var u [updRecBytes]byte
		binary.LittleEndian.PutUint32(u[0:], dst)
		binary.LittleEndian.PutUint64(u[4:], msg)
		bufs[q] = append(bufs[q], u[:]...)
		written++
		if len(bufs[q]) >= 1<<20 {
			if err := flush(q); err != nil {
				return streamed, written, err
			}
		}
	}
	for q := range bufs {
		if err := flush(q); err != nil {
			return streamed, written, err
		}
	}
	return streamed, written, nil
}

// gather streams every partition's update file, folding updates into its
// vertices, then truncates the files and commits the new values.
func (e *Engine) gather() (int64, error) {
	var mu sync.Mutex
	var firstErr error
	var total int64

	var wg sync.WaitGroup
	sem := make(chan struct{}, e.cfg.Workers)
	for p := 0; p < e.l.K; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			n, err := e.gatherPartition(p)
			mu.Lock()
			total += n
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return total, firstErr
	}

	// Commit: activate updated vertices, install their new values, reset
	// the update files for the next superstep.
	for v := range e.vals {
		if e.touched[v] {
			e.vals[v] = e.newVals[v]
			e.active[v] = true
			e.touched[v] = false
		} else {
			e.active[v] = false
		}
	}
	for p := 0; p < e.l.K; p++ {
		if e.updMem != nil {
			e.updMem[p] = e.updMem[p][:0]
			continue
		}
		if err := e.upd[p].Truncate(0); err != nil {
			return total, fmt.Errorf("xstream: %w", err)
		}
		if _, err := e.upd[p].Seek(0, io.SeekStart); err != nil {
			return total, fmt.Errorf("xstream: %w", err)
		}
	}
	return total, nil
}

func (e *Engine) gatherPartition(p int) (int64, error) {
	var br io.Reader
	if e.updMem != nil {
		br = bytes.NewReader(e.updMem[p])
	} else {
		if _, err := e.upd[p].Seek(0, io.SeekStart); err != nil {
			return 0, fmt.Errorf("xstream: %w", err)
		}
		br = bufio.NewReaderSize(e.upd[p], 1<<20)
	}
	var rec [updRecBytes]byte
	var updates int64
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				break
			}
			return updates, fmt.Errorf("xstream: update stream %d: %w", p, err)
		}
		dst := int64(binary.LittleEndian.Uint32(rec[0:]))
		msg := binary.LittleEndian.Uint64(rec[4:])
		first := !e.touched[dst]
		cur := e.vals[dst]
		if !first {
			cur = e.newVals[dst]
		}
		nv, changed := e.prog.Compute(dst, cur, msg, first)
		if changed {
			e.newVals[dst] = nv
			e.touched[dst] = true
			updates++
		}
	}
	return updates, nil
}
