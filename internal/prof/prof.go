// Package prof wires the standard runtime profilers behind three
// optional file paths, so every binary exposes the same -cpuprofile /
// -memprofile / -trace flags without repeating the boilerplate.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start begins collecting whichever profiles have a non-empty path and
// returns a stop function that flushes and closes them. The stop
// function must run before process exit for the profiles to be valid
// (CPU profiles and traces are streamed; the heap profile is captured at
// stop time, after a GC, so it reflects live memory at the end of the
// profiled region).
func Start(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
	}
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("prof: trace: %w", err)
		}
	}
	return func() error {
		cleanup()
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("prof: heap profile: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("prof: heap profile: %w", err)
		}
		return nil
	}, nil
}
