package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzParseFrames exercises every payload parser with arbitrary bytes:
// they must reject garbage with errors, never panic.
func FuzzParseFrames(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add(helloPayload(3, "127.0.0.1:9999"), uint8(0))
	f.Add(addrBookPayload([]string{"a:1", "b:2"}), uint8(1))
	f.Add(batchPayload(1, 1, 0, nil), uint8(2))
	f.Add(valuesPayload(0, []uint64{1, 2, 3}), uint8(3))
	f.Add(rejoinPayload(1, 7, "127.0.0.1:9999"), uint8(5))
	f.Add(stepFailedPayload(3, "peer 1 unreachable"), uint8(6))
	f.Add(migrateReqPayload(5, 11), uint8(7))
	f.Add(migrateBlobPayload(2, []byte{1, 2, 3, 4}), uint8(8))
	f.Add(routingPayload([]int{0, 1, 1, 2}), uint8(9))
	f.Add(ivPayload(9), uint8(10))
	f.Fuzz(func(t *testing.T, payload []byte, which uint8) {
		switch which % 11 {
		case 0:
			if _, addr, err := parseHello(payload); err == nil && len(addr) > len(payload) {
				t.Fatal("hello address longer than payload")
			}
		case 1:
			if addrs, err := parseAddrBook(payload); err == nil {
				total := 4
				for _, a := range addrs {
					total += 2 + len(a)
				}
				if total > len(payload) {
					t.Fatal("address book claims more bytes than payload")
				}
			}
		case 2:
			if _, _, _, batch, err := parseBatch(payload); err == nil {
				if len(payload) != 24+12*len(batch) {
					t.Fatal("batch length inconsistent")
				}
			}
		case 3:
			if _, payloads, err := parseValues(payload); err == nil {
				if len(payload) != 16+8*len(payloads) {
					t.Fatal("values length inconsistent")
				}
			}
		case 4:
			if _, err := readU64s(payload, 3); err == nil && len(payload) < 24 {
				t.Fatal("readU64s accepted short payload")
			}
		case 5:
			if _, _, addr, err := parseRejoin(payload); err == nil && len(addr) > len(payload) {
				t.Fatal("rejoin address longer than payload")
			}
		case 6:
			if _, reason, err := parseStepFailed(payload); err == nil && len(reason) > len(payload) {
				t.Fatal("step-failed reason longer than payload")
			}
		case 7:
			if _, _, err := parseMigrateReq(payload); err == nil && len(payload) != 12 {
				t.Fatal("migrate request length inconsistent")
			}
		case 8:
			if _, blob, err := parseMigrateBlob(payload); err == nil && len(blob) != len(payload)-4 {
				t.Fatal("migrate blob length inconsistent")
			}
		case 9:
			if owners, err := parseRouting(payload); err == nil {
				if len(payload) != 4+4*len(owners) || len(owners) == 0 {
					t.Fatal("routing table length inconsistent")
				}
			}
		case 10:
			if _, err := parseIv(payload); err == nil && len(payload) != 4 {
				t.Fatal("interval id length inconsistent")
			}
		}
	})
}

// FuzzRoundTripPayloads checks encode/decode inverses for valid inputs.
func FuzzRoundTripPayloads(f *testing.F) {
	f.Add(uint32(7), "127.0.0.1:1234")
	f.Fuzz(func(t *testing.T, id uint32, addr string) {
		if len(addr) > 1<<15 {
			return
		}
		gotID, gotAddr, err := parseHello(helloPayload(id, addr))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if gotID != id || gotAddr != addr {
			t.Fatalf("round trip (%d, %q) -> (%d, %q)", id, addr, gotID, gotAddr)
		}
	})
}

// encodeFrame builds one well-formed checksummed frame, mirroring
// conn.writeFrame without a socket.
func encodeFrame(kind byte, payload []byte) []byte {
	var buf bytes.Buffer
	c := &conn{bw: bufio.NewWriter(&buf)}
	if err := c.writeFrame(kind, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func crc32Of(parts ...[]byte) uint32 {
	var crc uint32
	for _, p := range parts {
		crc = crc32.Update(crc, castagnoli, p)
	}
	return crc
}

// FuzzFrameDecode drives the checksummed-frame decoder with mutated byte
// streams. The invariant under fuzzing: a frame that decodes without
// error carries exactly the bytes the checksum vouches for, and any
// truncation, bit flip, or foreign version yields an error — never a
// panic, never a silently misparsed frame.
func FuzzFrameDecode(f *testing.F) {
	f.Add(encodeFrame(fHeartbeat, nil), -1, uint8(0))
	f.Add(encodeFrame(fBatch, batchPayload(2, 9, 1, nil)), 12, uint8(0x40))
	f.Add(encodeFrame(fStart, u64Payload(4, 7)), 4, uint8(0x01))
	f.Add(encodeFrame(fStepFailed, stepFailedPayload(1, "boom")), 0, uint8(0xff))
	f.Add(encodeFrame(fMigrateOut, migrateReqPayload(3, 8)), 8, uint8(0x20))
	f.Add(encodeFrame(fMigrateData, migrateBlobPayload(3, []byte{9, 9, 9})), 14, uint8(0x04))
	f.Add(encodeFrame(fMigrateIn, migrateBlobPayload(1, []byte{7})), -1, uint8(0))
	f.Add(encodeFrame(fMigrateDone, ivPayload(6)), 10, uint8(0x80))
	f.Add(encodeFrame(fRouting, routingPayload([]int{0, 2, 1})), 11, uint8(0x02))
	f.Add(encodeFrame(fJoin, rejoinPayload(4, 2, "127.0.0.1:7")), 9, uint8(0x08))
	f.Add(encodeFrame(fDrain, nil), 5, uint8(0x10))
	f.Fuzz(func(t *testing.T, stream []byte, flip int, mask uint8) {
		if flip >= 0 && flip < len(stream) && mask != 0 {
			stream = append([]byte(nil), stream...)
			stream[flip] ^= mask
		}
		kind, payload, err := readFrameFrom(bytes.NewReader(stream))
		if err != nil {
			return
		}
		// A successful decode must round-trip: re-encoding what was read
		// reproduces a prefix of the input stream bit for bit.
		re := encodeFrame(kind, payload)
		if len(re) > len(stream) || !bytes.Equal(re, stream[:len(re)]) {
			t.Fatalf("decoded frame (kind %d, %d payload bytes) does not re-encode to the input prefix", kind, len(payload))
		}
	})
}

// TestFrameDecodeRejectsCorruption pins the three corruption classes the
// fuzzer explores: truncation, bit flips, and wrong protocol versions
// must all error out, and flips plus version skew must be attributed to
// the right sentinel.
func TestFrameDecodeRejectsCorruption(t *testing.T) {
	// One data-plane frame and one of each new elastic-membership frame:
	// the CRC32C framing guarantees hold for migration traffic too.
	frames := map[string][]byte{
		"batch":        encodeFrame(fBatch, batchPayload(3, 1, 2, nil)),
		"migrate-out":  encodeFrame(fMigrateOut, migrateReqPayload(1, 4)),
		"migrate-data": encodeFrame(fMigrateData, migrateBlobPayload(1, []byte{0xde, 0xad})),
		"routing":      encodeFrame(fRouting, routingPayload([]int{1, 0})),
		"drain":        encodeFrame(fDrain, nil),
	}
	for name, frame := range frames {
		// Truncations at every boundary.
		for n := 0; n < len(frame); n++ {
			if _, _, err := readFrameFrom(bytes.NewReader(frame[:n])); err == nil {
				t.Fatalf("%s: decoder accepted a frame truncated to %d of %d bytes", name, n, len(frame))
			}
		}
		// A flip in any byte past the length prefix must trip the checksum
		// (or the version check, for byte 4).
		for i := 4; i < len(frame); i++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 0x10
			_, _, err := readFrameFrom(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("%s: decoder accepted a frame with byte %d flipped", name, i)
			}
			if !frameCorrupt(err) {
				t.Fatalf("%s: flip at byte %d: got %v, want a corruption error", name, i, err)
			}
		}
	}
	// A foreign protocol version is rejected as such even with a valid
	// checksum over the foreign bytes.
	mut := append([]byte(nil), frames["batch"]...)
	mut[4] = protoVersion + 1
	crc := crc32Of(mut[4:6], mut[10:])
	binary.LittleEndian.PutUint32(mut[6:], crc)
	_, _, err := readFrameFrom(bytes.NewReader(mut))
	if err == nil || !frameCorrupt(err) {
		t.Fatalf("foreign version: got %v, want a version error", err)
	}
}
