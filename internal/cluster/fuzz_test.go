package cluster

import (
	"testing"
)

// FuzzParseFrames exercises every payload parser with arbitrary bytes:
// they must reject garbage with errors, never panic.
func FuzzParseFrames(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add(helloPayload(3, "127.0.0.1:9999"), uint8(0))
	f.Add(addrBookPayload([]string{"a:1", "b:2"}), uint8(1))
	f.Add(batchPayload(nil), uint8(2))
	f.Add(valuesPayload(0, []uint64{1, 2, 3}), uint8(3))
	f.Fuzz(func(t *testing.T, payload []byte, which uint8) {
		switch which % 5 {
		case 0:
			if _, addr, err := parseHello(payload); err == nil && len(addr) > len(payload) {
				t.Fatal("hello address longer than payload")
			}
		case 1:
			if addrs, err := parseAddrBook(payload); err == nil {
				total := 4
				for _, a := range addrs {
					total += 2 + len(a)
				}
				if total > len(payload) {
					t.Fatal("address book claims more bytes than payload")
				}
			}
		case 2:
			if batch, err := parseBatch(payload); err == nil {
				if len(payload) != 4+12*len(batch) {
					t.Fatal("batch length inconsistent")
				}
			}
		case 3:
			if _, payloads, err := parseValues(payload); err == nil {
				if len(payload) != 16+8*len(payloads) {
					t.Fatal("values length inconsistent")
				}
			}
		case 4:
			if _, err := readU64s(payload, 3); err == nil && len(payload) < 24 {
				t.Fatal("readU64s accepted short payload")
			}
		}
	})
}

// FuzzRoundTripPayloads checks encode/decode inverses for valid inputs.
func FuzzRoundTripPayloads(f *testing.F) {
	f.Add(uint32(7), "127.0.0.1:1234")
	f.Fuzz(func(t *testing.T, id uint32, addr string) {
		if len(addr) > 1<<15 {
			return
		}
		gotID, gotAddr, err := parseHello(helloPayload(id, addr))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if gotID != id || gotAddr != addr {
			t.Fatalf("round trip (%d, %q) -> (%d, %q)", id, addr, gotID, gotAddr)
		}
	})
}
