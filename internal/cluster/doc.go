// Package cluster extends GPSA across multiple nodes — the distributed
// application of the actor model the paper motivates but leaves as future
// work (§III-B: "Actor-based graph processing can not only benefit
// multi-core systems but also be directly applicable to distributed
// systems").
//
// The design translates the paper's single-machine roles one-to-one:
//
//   - The manager actor becomes a Coordinator process coordinating
//     supersteps over TCP control connections.
//   - Each Node owns a contiguous vertex interval (balanced by edge
//     count), streams its share of the CSR file with local dispatcher
//     actors, and folds messages with local computing actors backed by
//     its own two-column vertex value file.
//   - Actor location transparency becomes explicit: a message whose
//     destination is local goes straight into a computing worker's
//     mailbox; a remote one is batched onto the owning node's data
//     connection. Remote batches are folded as they arrive, so the
//     paper's dispatch/compute overlap extends across the cluster.
//
// The superstep barrier generalizes the single-machine one: after a node
// finishes dispatching (and has flushed its peer connections) it sends an
// end-of-stream marker on every data connection and DISPATCH_OVER to the
// coordinator; a node acknowledges the coordinator's COMPUTE barrier only
// after end-of-stream from every peer, which — with TCP's per-connection
// FIFO — guarantees every batch of the superstep has been folded.
//
// Nodes here run in one process connected over loopback TCP, but nothing
// in the protocol assumes shared memory: all graph state crosses node
// boundaries through the wire format in protocol.go. The CSR file is
// opened read-only by every node, standing in for a shared filesystem.
package cluster
