package cluster_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
)

// bombProg panics inside Compute for one vertex, killing whichever node's
// computing actor owns it. The cluster must surface an error promptly
// instead of deadlocking at the barrier.
type bombProg struct{ bomb graph.VertexID }

func (b bombProg) Init(v int64) (uint64, bool) { return uint64(v), true }

func (b bombProg) GenMsg(src int64, payload uint64, outDegree uint32, dst graph.VertexID, weight float32) (uint64, bool) {
	return payload, true
}

func (b bombProg) Compute(dst int64, cur, msg uint64, first bool) (uint64, bool) {
	if dst == int64(b.bomb) {
		panic("compute bomb")
	}
	if msg < cur {
		return msg, true
	}
	return cur, false
}

func TestClusterSurvivesComputePanicWithoutDeadlock(t *testing.T) {
	g := rmat(t, 200, 1500, 21).Symmetrize()
	path := save(t, g)

	done := make(chan error, 1)
	go func() {
		_, _, err := cluster.Run(path, bombProg{bomb: 17}, cluster.Config{Nodes: 3})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with panicking program succeeded")
		}
		if !strings.Contains(err.Error(), "panic") && !strings.Contains(err.Error(), "cluster") {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cluster deadlocked after a computing-actor panic")
	}
}
