package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"repro/internal/metrics"
)

// StepStats records one distributed superstep.
type StepStats struct {
	Step      int64
	Messages  int64 // generated across all nodes
	Delivered int64 // delivered after combining (local + wire)
	Updates   int64
	Duration  time.Duration
}

// Result summarizes a distributed run.
type Result struct {
	Nodes      int
	Supersteps int
	Converged  bool
	Messages   int64
	Delivered  int64
	Updates    int64
	Rollbacks  int64 // superstep rollback-and-retry cycles this run survived
	Rejoins    int64 // dead nodes replaced via the rejoin handshake
	Duration   time.Duration
	Steps      []StepStats
}

// stepFault is a superstep attempt failure the recovery protocol can
// handle: err is the first fault observed, dead lists the nodes whose
// control connections are gone (as opposed to nodes that reported a
// retryable failure and are still alive, awaiting the rollback).
type stepFault struct {
	err  error
	dead []int
}

func (f *stepFault) Error() string { return f.err.Error() }
func (f *stepFault) Unwrap() error { return f.err }

func (f *stepFault) fail(i int, err error, dead bool) {
	if f.err == nil {
		f.err = err
	}
	if dead {
		f.dead = append(f.dead, i)
	}
}

// coordinator is the distributed manager: it owns the control connections
// and drives the paper's superstep protocol across nodes — extended here
// with the failure-model state machine: detect (liveness and progress
// timeouts, STEP_FAILED reports, corrupt frames) -> rollback (every
// survivor discards the attempt) -> rejoin (replacements replay their
// interval from the sealed value file) -> retry (the same superstep runs
// again under a fresh round number).
type coordinator struct {
	ln    net.Listener
	nodes []*conn  // indexed by node id
	addrs []string // data-plane address book, refreshed on rejoin

	// timeout bounds how long any node may go completely silent on the
	// control plane (heartbeats count as liveness). Zero disables.
	timeout time.Duration
	// phaseTimeout bounds how long a node may withhold protocol progress
	// even while heartbeating — the wedge and one-way-partition detector.
	// Zero disables.
	phaseTimeout time.Duration
	// recoveryTimeout bounds one rollback/rejoin cycle.
	recoveryTimeout time.Duration
	// stepRetries is the run's rollback-and-retry budget, mirroring
	// core.Config.MaxStepRetries. Zero fails fast on the first fault.
	stepRetries int

	// round numbers superstep attempts across the whole run; every
	// rollback bumps it so stragglers from an aborted attempt are
	// droppable on arrival at any node.
	round uint64

	// restart, when set, boots a replacement incarnation of a dead node
	// (same id, same value file) that will dial in with a REJOIN frame.
	restart func(id int) error

	rollbacks int64
	rejoins   int64
}

func newCoordinator(addr string, total int, cfg Config) (*coordinator, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator listen: %w", err)
	}
	return &coordinator{
		ln:              ln,
		nodes:           make([]*conn, total),
		timeout:         cfg.NodeTimeout,
		phaseTimeout:    cfg.PhaseTimeout,
		recoveryTimeout: cfg.RecoveryTimeout,
		stepRetries:     cfg.StepRetries,
	}, nil
}

func (c *coordinator) addr() string { return c.ln.Addr().String() }

// progressDeadline is the absolute bound handed to readFrameLive: phase
// reads get phaseTimeout, recovery reads get recoveryTimeout.
func (c *coordinator) progressDeadline(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d) //lint:nondeterministic protocol progress bound; timing never feeds vertex state
}

// accept waits for every node's hello and distributes the address book.
func (c *coordinator) accept() error {
	c.addrs = make([]string, len(c.nodes))
	for i := 0; i < len(c.nodes); i++ {
		nc, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: coordinator accept: %w", err)
		}
		cn := newConn(nc)
		kind, payload, err := cn.readFrame()
		if err != nil || kind != fHello {
			closeQuietly(cn)
			return fmt.Errorf("cluster: expected hello, got frame %d (%v)", kind, err)
		}
		id, addr, err := parseHello(payload)
		if err != nil {
			closeQuietly(cn)
			return err
		}
		if int(id) >= len(c.nodes) || c.nodes[id] != nil {
			closeQuietly(cn)
			return fmt.Errorf("cluster: bad or duplicate node id %d", id)
		}
		c.nodes[id] = cn
		c.addrs[id] = addr
	}
	return c.broadcastBook()
}

func (c *coordinator) broadcastBook() error {
	book := addrBookPayload(c.addrs)
	for _, n := range c.nodes {
		if err := n.writeFrame(fAddrBook, book); err != nil {
			return err
		}
	}
	return nil
}

// run drives supersteps until convergence, maxSupersteps, or ctx
// cancellation (checked between supersteps: a distributed superstep is
// not interrupted mid-flight — nodes commit or the step fails whole).
// A failed superstep consumes one unit of the run's retry budget, is
// rolled back across the cluster (dead nodes replaced via rejoin), and
// runs again; the budget exhausted, the fault aborts the run.
func (c *coordinator) run(ctx context.Context, startStep int64, maxSupersteps int) (*Result, error) {
	res := &Result{Nodes: len(c.nodes)}
	t0 := time.Now() //lint:nondeterministic run duration is reporting only, never vertex state
	defer func() {
		res.Duration = time.Since(t0) //lint:nondeterministic run duration is reporting only, never vertex state
		res.Rollbacks = c.rollbacks
		res.Rejoins = c.rejoins
	}()
	retries := 0
	step := startStep
	for s := 0; s < maxSupersteps; {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return res, fmt.Errorf("cluster: run cancelled before superstep %d: %w", step, cerr)
			}
		}
		st, err := c.superstep(step)
		if err != nil {
			var flt *stepFault
			if !errors.As(err, &flt) || retries >= c.stepRetries {
				return res, err
			}
			retries++
			if rerr := c.recoverStep(step, flt); rerr != nil {
				return res, fmt.Errorf("cluster: superstep %d recovery (retry %d/%d) failed: %v (original fault: %w)", step, retries, c.stepRetries, rerr, flt.err)
			}
			continue // retry the same superstep under the new round
		}
		res.Steps = append(res.Steps, st)
		res.Supersteps++
		res.Messages += st.Messages
		res.Delivered += st.Delivered
		res.Updates += st.Updates
		if st.Messages == 0 && st.Updates == 0 {
			res.Converged = true
			break
		}
		step++
		s++
	}
	return res, nil
}

// nodeRead receives the next protocol frame from node i, converting a
// lost or silent node into a phase-labelled, step-level error instead of
// a hang: a read error means the node's connection died; a deadline
// timeout means the node sent nothing at all — not even a heartbeat —
// for the coordinator's node timeout; errNoProgress means the node is
// heartbeating but made no protocol progress within the phase budget.
func (c *coordinator) nodeRead(i int, phase string) (byte, []byte, error) {
	kind, payload, err := c.nodes[i].readFrameLive(c.timeout, c.progressDeadline(c.phaseTimeout))
	if err == nil {
		return kind, payload, nil
	}
	if errors.Is(err, errNoProgress) {
		return 0, nil, fmt.Errorf("cluster: node %d stalled during %s: %w", i, phase, err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return 0, nil, fmt.Errorf("cluster: node %d unresponsive during %s: no frame (not even a heartbeat) within %v", i, phase, c.timeout)
	}
	return 0, nil, fmt.Errorf("cluster: node %d lost during %s: %w", i, phase, err)
}

// deadRead reports whether a nodeRead error means the connection can no
// longer be used (the node must be replaced) as opposed to the node being
// alive and merely failing to progress (rollback suffices).
func deadRead(err error) bool {
	return !errors.Is(err, errNoProgress)
}

// collect reads one frame of the expected kind from node i, folding a
// STEP_FAILED report or any transport fault into flt.
func (c *coordinator) collect(i int, step int64, phase string, want byte, nvals int, flt *stepFault) ([]uint64, bool) {
	kind, payload, err := c.nodeRead(i, phase)
	if err != nil {
		flt.fail(i, err, deadRead(err))
		return nil, false
	}
	if kind == fStepFailed {
		_, reason, perr := parseStepFailed(payload)
		if perr != nil {
			flt.fail(i, perr, true)
			return nil, false
		}
		flt.fail(i, fmt.Errorf("cluster: node %d failed superstep %d during %s: %s", i, step, phase, reason), false)
		return nil, false
	}
	if kind != want {
		flt.fail(i, fmt.Errorf("cluster: node %d sent frame %d during %s, want %d", i, kind, phase, want), true)
		return nil, false
	}
	vals, err := readU64s(payload, nvals)
	if err != nil {
		flt.fail(i, err, true)
		return nil, false
	}
	if int64(vals[0]) != step {
		flt.fail(i, fmt.Errorf("cluster: node %d acked step %d during %s, want %d", i, vals[0], phase, step), true)
		return nil, false
	}
	return vals, true
}

// superstep drives one attempt of superstep step across every node. A
// failure anywhere returns a *stepFault for run's recovery loop; the
// attempt is abandoned at the first fault (draining survivors' stale
// frames is recovery's job).
func (c *coordinator) superstep(step int64) (StepStats, error) {
	st := StepStats{Step: step}
	t0 := time.Now() //lint:nondeterministic step duration is reporting only, never vertex state
	c.round++
	flt := &stepFault{}
	for i, n := range c.nodes {
		if err := n.writeFrame(fStart, u64Payload(uint64(step), c.round)); err != nil {
			flt.fail(i, fmt.Errorf("cluster: node %d lost at superstep %d start: %w", i, step, err), true)
		}
	}
	if flt.err != nil {
		return st, flt
	}
	for i := range c.nodes {
		vals, ok := c.collect(i, step, "dispatch", fDispatchOver, 3, flt)
		if !ok {
			return st, flt
		}
		st.Messages += int64(vals[1])
		st.Delivered += int64(vals[2])
	}
	for i, n := range c.nodes {
		if err := n.writeFrame(fComputeBarrier, u64Payload(uint64(step))); err != nil {
			flt.fail(i, fmt.Errorf("cluster: node %d lost at superstep %d barrier: %w", i, step, err), true)
			return st, flt
		}
	}
	for i := range c.nodes {
		vals, ok := c.collect(i, step, "compute", fComputeOver, 2, flt)
		if !ok {
			return st, flt
		}
		st.Updates += int64(vals[1])
	}
	st.Duration = time.Since(t0) //lint:nondeterministic step duration is reporting only, never vertex state
	return st, nil
}

// recoverStep is the rollback -> rejoin arc of the failure state machine:
// every surviving node discards the aborted attempt (ROLLBACK /
// ROLLBACK_OVER, draining whatever stale frames the abandonment left in
// flight), nodes whose connections died are replaced via the rejoin
// handshake, and the refreshed address book is rebroadcast so survivors
// re-dial replacements at their new data addresses.
func (c *coordinator) recoverStep(step int64, flt *stepFault) error {
	metrics.Inc(metrics.CtrClusterRollbacks)
	c.rollbacks++
	c.round++
	dead := make([]bool, len(c.nodes))
	for _, i := range flt.dead {
		dead[i] = true
	}
	for i, n := range c.nodes {
		if dead[i] {
			continue
		}
		if err := n.writeFrame(fRollback, u64Payload(uint64(step), c.round)); err != nil {
			dead[i] = true
		}
	}
	// Collect rollback acks, draining the aborted attempt's stale frames
	// (DISPATCH_OVER, COMPUTE_OVER, STEP_FAILED reports) on the way. A
	// survivor that cannot ack within the recovery budget is reclassified
	// as dead and folded into the same rejoin pass.
	deadline := c.progressDeadline(c.recoveryTimeout)
	for i, n := range c.nodes {
		if dead[i] {
			continue
		}
		for {
			kind, payload, err := n.readFrameLive(c.timeout, deadline)
			if err != nil {
				dead[i] = true
				break
			}
			if kind != fRollbackOver {
				continue // stale frame from the aborted attempt
			}
			vals, perr := readU64s(payload, 1)
			if perr != nil || int64(vals[0]) != step {
				continue
			}
			break
		}
	}
	var gone []int
	for i, d := range dead {
		if d {
			gone = append(gone, i)
		}
	}
	sort.Ints(gone)
	// Close dead connections first: a node that is alive but wedged or
	// partitioned unblocks from its control read, tears itself down, and
	// releases the value file its replacement must reopen.
	for _, id := range gone {
		if c.nodes[id] != nil {
			closeQuietly(c.nodes[id])
			c.nodes[id] = nil
		}
	}
	for _, id := range gone {
		if c.restart == nil {
			return fmt.Errorf("cluster: node %d dead and no restart hook installed", id)
		}
		if err := c.restart(id); err != nil {
			return fmt.Errorf("cluster: restarting node %d: %w", id, err)
		}
		if err := c.acceptRejoin(id, step, true); err != nil {
			return fmt.Errorf("cluster: node %d rejoin: %w", id, err)
		}
	}
	if len(gone) > 0 {
		if err := c.broadcastBook(); err != nil {
			return err
		}
	}
	return nil
}

// acceptRejoin completes the rejoin handshake with node id's replacement
// incarnation: accept its control connection, validate the REJOIN frame
// (right node, and a recovered epoch consistent with retrying step), and
// — when a superstep is being rolled back — issue the ROLLBACK so a
// replacement that had committed the aborted step rewinds it like every
// survivor.
func (c *coordinator) acceptRejoin(id int, step int64, rollback bool) error {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := c.ln.(deadliner); ok && c.recoveryTimeout > 0 {
		d.SetDeadline(c.progressDeadline(c.recoveryTimeout)) //nolint:errcheck
		defer d.SetDeadline(time.Time{})                     //nolint:errcheck
	}
	for {
		nc, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: accepting rejoin of node %d: %w", id, err)
		}
		cn := newConn(nc)
		kind, payload, err := cn.readFrame()
		if err != nil || kind != fRejoin {
			// Not the replacement (an orphaned dial, a corrupt hello):
			// closing it lets the stray exit; keep waiting for the rejoin.
			closeQuietly(cn)
			continue
		}
		rid, epoch, addr, err := parseRejoin(payload)
		if err != nil || int(rid) != id {
			closeQuietly(cn)
			continue
		}
		if rollback && (int64(epoch) < step || int64(epoch) > step+1) {
			// The replacement's durable state is outside the window a
			// coordinated commit could have left it in: its value file is
			// not the one this run sealed. Unrecoverable.
			closeQuietly(cn)
			return fmt.Errorf("cluster: node %d rejoined at epoch %d while rolling back superstep %d", id, epoch, step)
		}
		c.nodes[id] = cn
		c.addrs[id] = addr
		if rollback {
			if err := cn.writeFrame(fRollback, u64Payload(uint64(step), c.round)); err != nil {
				return err
			}
			if _, _, err := cn.readFrameLive(c.timeout, c.progressDeadline(c.recoveryTimeout)); err != nil {
				return fmt.Errorf("cluster: node %d rejoin rollback ack: %w", id, err)
			}
		}
		metrics.Inc(metrics.CtrClusterRejoins)
		c.rejoins++
		return nil
	}
}

// gatherValues pulls every node's vertex payloads into one slice. The
// gather is itself fault-tolerant: a node lost after the final superstep
// (or a corrupt values frame) is replaced via the rejoin handshake — its
// value file holds the committed final state — and re-asked, within the
// same retry budget the supersteps share.
func (c *coordinator) gatherValues(numVertices int64) ([]uint64, error) {
	out := make([]uint64, numVertices)
	retries := 0
	for i := 0; i < len(c.nodes); {
		err := c.gatherNode(i, out, numVertices)
		if err == nil {
			i++
			continue
		}
		if retries >= c.stepRetries || c.restart == nil {
			return nil, err
		}
		retries++
		closeQuietly(c.nodes[i])
		c.nodes[i] = nil
		if rerr := c.restart(i); rerr != nil {
			return nil, fmt.Errorf("cluster: restarting node %d for value gather: %v (original fault: %w)", i, rerr, err)
		}
		// No superstep is in flight: the replacement recovered the final
		// committed state, so the rejoin skips the rollback arc.
		if rerr := c.acceptRejoin(i, 0, false); rerr != nil {
			return nil, fmt.Errorf("cluster: node %d rejoin for value gather: %v (original fault: %w)", i, rerr, err)
		}
		if berr := c.broadcastBook(); berr != nil {
			return nil, berr
		}
	}
	return out, nil
}

func (c *coordinator) gatherNode(i int, out []uint64, numVertices int64) error {
	if err := c.nodes[i].writeFrame(fValuesReq, nil); err != nil {
		return fmt.Errorf("cluster: node %d values request: %w", i, err)
	}
	kind, payload, err := c.nodeRead(i, "value gather")
	if err != nil || kind != fValues {
		return fmt.Errorf("cluster: node %d values: frame %d (%v)", i, kind, err)
	}
	first, payloads, err := parseValues(payload)
	if err != nil {
		return err
	}
	if first < 0 || first+int64(len(payloads)) > numVertices {
		return fmt.Errorf("cluster: node %d values out of range", i)
	}
	copy(out[first:], payloads)
	return nil
}

// halt tells every node to shut down and closes the control plane. It is
// the quiet teardown used on already-failing paths and after Close; Close
// is the error-reporting variant for the success path.
func (c *coordinator) halt() {
	for _, n := range c.nodes {
		if n != nil {
			n.writeFrame(fHalt, []byte{0}) //nolint:errcheck
			closeQuietly(n)
		}
	}
	if c.ln != nil {
		closeQuietly(c.ln)
	}
}

// Close halts the cluster and reports teardown errors, joining the
// listener and control-connection close errors the way the mmap and
// vertexfile layers do. Connections already torn down by chaos or by the
// nodes' own teardown are expected and not reported.
func (c *coordinator) Close() error {
	var errs []error
	for i, n := range c.nodes {
		if n == nil {
			continue
		}
		n.writeFrame(fHalt, []byte{0}) //nolint:errcheck
		if err := n.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			errs = append(errs, fmt.Errorf("cluster: closing node %d control connection: %w", i, err))
		}
		c.nodes[i] = nil
	}
	if c.ln != nil {
		if err := c.ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			errs = append(errs, fmt.Errorf("cluster: closing coordinator listener: %w", err))
		}
		c.ln = nil
	}
	return errors.Join(errs...)
}
