package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// StepStats records one distributed superstep.
type StepStats struct {
	Step      int64
	Messages  int64 // generated across all nodes
	Delivered int64 // delivered after combining (local + wire)
	Updates   int64
	Duration  time.Duration
}

// Result summarizes a distributed run.
type Result struct {
	Nodes           int // initial cluster size
	LiveNodes       int // members at the end of the run (joins and drains shift it)
	Supersteps      int
	Converged       bool
	Messages        int64
	Delivered       int64
	Updates         int64
	Rollbacks       int64 // superstep rollback-and-retry cycles this run survived
	Rejoins         int64 // dead nodes replaced via the rejoin handshake
	Migrations      int64 // intervals moved live between nodes (join/drain/rebalance)
	Redistributions int64 // intervals of permanently dead nodes salvaged to survivors
	Joins           int64 // new nodes absorbed mid-job
	Drains          int64 // nodes shed cleanly mid-job
	Duration        time.Duration
	Steps           []StepStats
	// Assignments is the final interval -> node table, the live routing
	// state a rebalance or membership change would otherwise leave
	// invisible.
	Assignments []Assignment
}

// Assignment is one row of the interval -> node routing table.
type Assignment struct {
	Interval   int
	First, End int64 // vertex range [First, End)
	Node       int
}

// DeadNodePolicy selects how the coordinator handles a node whose
// control connection died mid-run.
type DeadNodePolicy int

const (
	// RestartDead boots a same-id replacement that reopens the dead
	// node's sealed value file and rejoins — the PR 7 recovery, which
	// needs the node's storage (and id) to come back.
	RestartDead DeadNodePolicy = iota
	// RedistributeDead salvages the dead node's intervals from its sealed
	// value file and migrates them to the surviving members: the cluster
	// degrades gracefully from N to N-1 instead of waiting for a
	// same-node restart.
	RedistributeDead
)

// MembershipOp is a planned elastic-membership operation.
type MembershipOp int

const (
	// OpJoin adds a brand-new node to the running job; it receives
	// intervals via live migration. Join ids are assigned in order above
	// the initial node count.
	OpJoin MembershipOp = iota + 1
	// OpDrain migrates every interval off a node and sheds it cleanly.
	OpDrain
)

func (o MembershipOp) String() string {
	switch o {
	case OpJoin:
		return "join"
	case OpDrain:
		return "drain"
	}
	return fmt.Sprintf("MembershipOp(%d)", int(o))
}

// MembershipEvent schedules one membership operation at the barrier
// before superstep Step (or the first barrier after it, if the run is
// mid-recovery at that instant).
type MembershipEvent struct {
	Step int64
	Op   MembershipOp
	// Node is the node to drain (OpDrain); ignored for OpJoin.
	Node int
}

// stepFault is a superstep attempt failure the recovery protocol can
// handle: err is the first fault observed, dead lists the nodes whose
// control connections are gone (as opposed to nodes that reported a
// retryable failure and are still alive, awaiting the rollback).
type stepFault struct {
	err  error
	dead []int
}

func (f *stepFault) Error() string { return f.err.Error() }
func (f *stepFault) Unwrap() error { return f.err }

func (f *stepFault) fail(i int, err error, dead bool) {
	if f.err == nil {
		f.err = err
	}
	if dead {
		f.dead = append(f.dead, i)
	}
}

// coordinator is the distributed manager: it owns the control connections
// and drives the paper's superstep protocol across nodes — extended here
// with the failure-model state machine: detect (liveness and progress
// timeouts, STEP_FAILED reports, corrupt frames) -> rollback (every
// survivor discards the attempt) -> rejoin (replacements replay their
// interval from the sealed value file) -> retry (the same superstep runs
// again under a fresh round number).
type coordinator struct {
	ln    net.Listener
	nodes []*conn  // indexed by node id
	addrs []string // data-plane address book, refreshed on rejoin

	// timeout bounds how long any node may go completely silent on the
	// control plane (heartbeats count as liveness). Zero disables.
	timeout time.Duration
	// phaseTimeout bounds how long a node may withhold protocol progress
	// even while heartbeating — the wedge and one-way-partition detector.
	// Zero disables.
	phaseTimeout time.Duration
	// recoveryTimeout bounds one rollback/rejoin cycle.
	recoveryTimeout time.Duration
	// stepRetries is the run's rollback-and-retry budget, mirroring
	// core.Config.MaxStepRetries. Zero fails fast on the first fault.
	stepRetries int

	// round numbers superstep attempts across the whole run; every
	// rollback bumps it so stragglers from an aborted attempt are
	// droppable on arrival at any node.
	round uint64

	// restart, when set, boots a replacement incarnation of a dead node
	// (same id, same value file) that will dial in with a REJOIN frame.
	restart func(id int) error
	// bootJoin, when set, boots a brand-new node (fresh value file
	// fast-forwarded to epoch step) that will dial in with a JOIN frame.
	bootJoin func(id int, step int64) error
	// salvage, when set, extracts the listed vertex ranges from dead node
	// id's sealed value file (rewinding a torn or one-ahead epoch to step
	// first) so RedistributeDead can hand them to survivors.
	salvage func(id int, step int64, ivs []graph.Interval) ([][]byte, error)

	// The elastic-membership routing state. ivs is the fixed partition
	// (it never changes for the life of the job — determinism hangs off
	// that); owners maps interval -> owning node and is the one table
	// migration rewrites; weights is each interval's edge count, the load
	// measure join/drain/rebalance placement balances.
	ivs     []graph.Interval
	owners  []int
	weights []int64
	// live marks current members. initial nodes start live; joins extend
	// it, drains and redistributed deaths retire entries.
	live    []bool
	initial int
	// nextJoin is the id the next OpJoin will boot; join ids are assigned
	// in order above initial.
	nextJoin  int
	policy    DeadNodePolicy
	events    []MembershipEvent // sorted by Step; applied at barriers
	nextEvent int
	rebalance bool

	rollbacks       int64
	rejoins         int64
	migrations      int64
	redistributions int64
	joins           int64
	drains          int64
}

// newCoordinator listens for a cluster of initial nodes with id space
// maxNodes (initial plus every plannable join).
func newCoordinator(addr string, initial, maxNodes int, cfg Config) (*coordinator, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator listen: %w", err)
	}
	c := &coordinator{
		ln:              ln,
		nodes:           make([]*conn, maxNodes),
		live:            make([]bool, maxNodes),
		initial:         initial,
		nextJoin:        initial,
		timeout:         cfg.NodeTimeout,
		phaseTimeout:    cfg.PhaseTimeout,
		recoveryTimeout: cfg.RecoveryTimeout,
		stepRetries:     cfg.StepRetries,
	}
	for i := 0; i < initial; i++ {
		c.live[i] = true
	}
	return c, nil
}

// members returns the live node ids in ascending order.
func (c *coordinator) members() []int {
	out := make([]int, 0, len(c.live))
	for i, l := range c.live {
		if l {
			out = append(out, i)
		}
	}
	return out
}

func (c *coordinator) liveCount() int {
	n := 0
	for _, l := range c.live {
		if l {
			n++
		}
	}
	return n
}

// ownedBy returns the intervals node id currently owns, ascending.
func (c *coordinator) ownedBy(id int) []int {
	var out []int
	for iv, o := range c.owners {
		if o == id {
			out = append(out, iv)
		}
	}
	return out
}

// nodeWeights sums owned interval edge weights per node.
func (c *coordinator) nodeWeights() []int64 {
	w := make([]int64, len(c.nodes))
	for iv, o := range c.owners {
		w[o] += c.weights[iv]
	}
	return w
}

// lightestOther returns the least-loaded live member other than exclude
// (ties to the lowest id), or -1 if none exists.
func (c *coordinator) lightestOther(exclude int) int {
	w := c.nodeWeights()
	best := -1
	for i := range c.nodes {
		if !c.live[i] || i == exclude {
			continue
		}
		if best < 0 || w[i] < w[best] {
			best = i
		}
	}
	return best
}

// assignments snapshots the interval -> node routing table.
func (c *coordinator) assignments() []Assignment {
	out := make([]Assignment, len(c.ivs))
	for iv := range c.ivs {
		out[iv] = Assignment{
			Interval: iv,
			First:    c.ivs[iv].FirstVertex,
			End:      c.ivs[iv].EndVertex,
			Node:     c.owners[iv],
		}
	}
	return out
}

func (c *coordinator) addr() string { return c.ln.Addr().String() }

// progressDeadline is the absolute bound handed to readFrameLive: phase
// reads get phaseTimeout, recovery reads get recoveryTimeout.
func (c *coordinator) progressDeadline(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d) //lint:nondeterministic protocol progress bound; timing never feeds vertex state
}

// accept waits for every initial node's hello and distributes the
// address book. Join slots above initial stay empty until their
// MembershipEvent fires.
func (c *coordinator) accept() error {
	c.addrs = make([]string, len(c.nodes))
	for i := 0; i < c.initial; i++ {
		nc, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: coordinator accept: %w", err)
		}
		cn := newConn(nc)
		kind, payload, err := cn.readFrame()
		if err != nil || kind != fHello {
			closeQuietly(cn)
			return fmt.Errorf("cluster: expected hello, got frame %d (%v)", kind, err)
		}
		id, addr, err := parseHello(payload)
		if err != nil {
			closeQuietly(cn)
			return err
		}
		if int(id) >= c.initial || c.nodes[id] != nil {
			closeQuietly(cn)
			return fmt.Errorf("cluster: bad or duplicate node id %d", id)
		}
		c.nodes[id] = cn
		c.addrs[id] = addr
	}
	return c.broadcastBook()
}

func (c *coordinator) broadcastBook() error {
	book := addrBookPayload(c.addrs)
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		if err := n.writeFrame(fAddrBook, book); err != nil {
			return err
		}
	}
	return nil
}

// run drives supersteps until convergence, maxSupersteps, or ctx
// cancellation (checked between supersteps: a distributed superstep is
// not interrupted mid-flight — nodes commit or the step fails whole).
// A failed superstep consumes one unit of the run's retry budget, is
// rolled back across the cluster (dead nodes replaced via rejoin), and
// runs again; the budget exhausted, the fault aborts the run.
func (c *coordinator) run(ctx context.Context, startStep int64, maxSupersteps int) (*Result, error) {
	res := &Result{Nodes: c.initial}
	t0 := time.Now() //lint:nondeterministic run duration is reporting only, never vertex state
	defer func() {
		res.Duration = time.Since(t0) //lint:nondeterministic run duration is reporting only, never vertex state
		res.Rollbacks = c.rollbacks
		res.Rejoins = c.rejoins
		res.Migrations = c.migrations
		res.Redistributions = c.redistributions
		res.Joins = c.joins
		res.Drains = c.drains
		res.LiveNodes = c.liveCount()
		res.Assignments = c.assignments()
	}()
	retries := 0
	step := startStep
	for s := 0; s < maxSupersteps; {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return res, fmt.Errorf("cluster: run cancelled before superstep %d: %w", step, cerr)
			}
		}
		// Membership changes only ever happen here, at the barrier: no
		// superstep is in flight, every member's value file is sealed at
		// epoch step, so an interval extracted on one node and adopted on
		// another is bit-identical state transfer. A faulted operation
		// consumes a retry, is rolled back like a failed superstep, and
		// runs again at the same barrier (nextEvent has not advanced).
		if c.nextEvent < len(c.events) && c.events[c.nextEvent].Step <= step {
			ev := c.events[c.nextEvent]
			if err := c.memberOp(step, ev); err != nil {
				var flt *stepFault
				if !errors.As(err, &flt) || retries >= c.stepRetries {
					return res, fmt.Errorf("cluster: %s at superstep %d: %w", ev.Op, step, err)
				}
				retries++
				if rerr := c.recoverStep(step, flt); rerr != nil {
					return res, fmt.Errorf("cluster: %s at superstep %d recovery (retry %d/%d) failed: %v (original fault: %w)", ev.Op, step, retries, c.stepRetries, rerr, flt.err)
				}
				continue // retry the same membership op under the new round
			}
			c.nextEvent++
			continue // another event may be scheduled at this same barrier
		}
		if c.rebalance {
			if err := c.rebalanceStep(step); err != nil {
				var flt *stepFault
				if !errors.As(err, &flt) || retries >= c.stepRetries {
					return res, err
				}
				retries++
				if rerr := c.recoverStep(step, flt); rerr != nil {
					return res, fmt.Errorf("cluster: rebalance at superstep %d recovery (retry %d/%d) failed: %v (original fault: %w)", step, retries, c.stepRetries, rerr, flt.err)
				}
				continue
			}
		}
		st, err := c.superstep(step)
		if err != nil {
			var flt *stepFault
			if !errors.As(err, &flt) || retries >= c.stepRetries {
				return res, err
			}
			retries++
			if rerr := c.recoverStep(step, flt); rerr != nil {
				return res, fmt.Errorf("cluster: superstep %d recovery (retry %d/%d) failed: %v (original fault: %w)", step, retries, c.stepRetries, rerr, flt.err)
			}
			continue // retry the same superstep under the new round
		}
		res.Steps = append(res.Steps, st)
		res.Supersteps++
		res.Messages += st.Messages
		res.Delivered += st.Delivered
		res.Updates += st.Updates
		if st.Messages == 0 && st.Updates == 0 {
			res.Converged = true
			break
		}
		step++
		s++
	}
	return res, nil
}

// nodeRead receives the next protocol frame from node i, converting a
// lost or silent node into a phase-labelled, step-level error instead of
// a hang: a read error means the node's connection died; a deadline
// timeout means the node sent nothing at all — not even a heartbeat —
// for the coordinator's node timeout; errNoProgress means the node is
// heartbeating but made no protocol progress within the phase budget.
func (c *coordinator) nodeRead(i int, phase string) (byte, []byte, error) {
	kind, payload, err := c.nodes[i].readFrameLive(c.timeout, c.progressDeadline(c.phaseTimeout))
	if err == nil {
		return kind, payload, nil
	}
	if errors.Is(err, errNoProgress) {
		return 0, nil, fmt.Errorf("cluster: node %d stalled during %s: %w", i, phase, err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return 0, nil, fmt.Errorf("cluster: node %d unresponsive during %s: no frame (not even a heartbeat) within %v", i, phase, c.timeout)
	}
	return 0, nil, fmt.Errorf("cluster: node %d lost during %s: %w", i, phase, err)
}

// deadRead reports whether a nodeRead error means the connection can no
// longer be used (the node must be replaced) as opposed to the node being
// alive and merely failing to progress (rollback suffices).
func deadRead(err error) bool {
	return !errors.Is(err, errNoProgress)
}

// collect reads one frame of the expected kind from node i, folding a
// STEP_FAILED report or any transport fault into flt.
func (c *coordinator) collect(i int, step int64, phase string, want byte, nvals int, flt *stepFault) ([]uint64, bool) {
	kind, payload, err := c.nodeRead(i, phase)
	if err != nil {
		flt.fail(i, err, deadRead(err))
		return nil, false
	}
	if kind == fStepFailed {
		_, reason, perr := parseStepFailed(payload)
		if perr != nil {
			flt.fail(i, perr, true)
			return nil, false
		}
		flt.fail(i, fmt.Errorf("cluster: node %d failed superstep %d during %s: %s", i, step, phase, reason), false)
		return nil, false
	}
	if kind != want {
		flt.fail(i, fmt.Errorf("cluster: node %d sent frame %d during %s, want %d", i, kind, phase, want), true)
		return nil, false
	}
	vals, err := readU64s(payload, nvals)
	if err != nil {
		flt.fail(i, err, true)
		return nil, false
	}
	if int64(vals[0]) != step {
		flt.fail(i, fmt.Errorf("cluster: node %d acked step %d during %s, want %d", i, vals[0], phase, step), true)
		return nil, false
	}
	return vals, true
}

// superstep drives one attempt of superstep step across every node. A
// failure anywhere returns a *stepFault for run's recovery loop; the
// attempt is abandoned at the first fault (draining survivors' stale
// frames is recovery's job).
func (c *coordinator) superstep(step int64) (StepStats, error) {
	st := StepStats{Step: step}
	t0 := time.Now() //lint:nondeterministic step duration is reporting only, never vertex state
	c.round++
	flt := &stepFault{}
	mem := c.members()
	for _, i := range mem {
		if err := c.nodes[i].writeFrame(fStart, u64Payload(uint64(step), c.round)); err != nil {
			flt.fail(i, fmt.Errorf("cluster: node %d lost at superstep %d start: %w", i, step, err), true)
		}
	}
	if flt.err != nil {
		return st, flt
	}
	for _, i := range mem {
		vals, ok := c.collect(i, step, "dispatch", fDispatchOver, 3, flt)
		if !ok {
			return st, flt
		}
		st.Messages += int64(vals[1])
		st.Delivered += int64(vals[2])
	}
	for _, i := range mem {
		if err := c.nodes[i].writeFrame(fComputeBarrier, u64Payload(uint64(step))); err != nil {
			flt.fail(i, fmt.Errorf("cluster: node %d lost at superstep %d barrier: %w", i, step, err), true)
			return st, flt
		}
	}
	for _, i := range mem {
		vals, ok := c.collect(i, step, "compute", fComputeOver, 2, flt)
		if !ok {
			return st, flt
		}
		st.Updates += int64(vals[1])
	}
	st.Duration = time.Since(t0) //lint:nondeterministic step duration is reporting only, never vertex state
	return st, nil
}

// recoverStep is the rollback -> rejoin arc of the failure state machine:
// every surviving node discards the aborted attempt (ROLLBACK /
// ROLLBACK_OVER, draining whatever stale frames the abandonment left in
// flight), nodes whose connections died are replaced via the rejoin
// handshake, and the refreshed address book is rebroadcast so survivors
// re-dial replacements at their new data addresses.
func (c *coordinator) recoverStep(step int64, flt *stepFault) error {
	metrics.Inc(metrics.CtrClusterRollbacks)
	c.rollbacks++
	c.round++
	dead := make([]bool, len(c.nodes))
	for _, i := range flt.dead {
		dead[i] = true
	}
	for i, n := range c.nodes {
		if n == nil || dead[i] {
			continue
		}
		if err := n.writeFrame(fRollback, u64Payload(uint64(step), c.round)); err != nil {
			dead[i] = true
		}
	}
	// Collect rollback acks, draining the aborted attempt's stale frames
	// (DISPATCH_OVER, COMPUTE_OVER, STEP_FAILED reports) on the way. A
	// survivor that cannot ack within the recovery budget is reclassified
	// as dead and folded into the same rejoin pass.
	deadline := c.progressDeadline(c.recoveryTimeout)
	for i, n := range c.nodes {
		if n == nil || dead[i] {
			continue
		}
		for {
			kind, payload, err := n.readFrameLive(c.timeout, deadline)
			if err != nil {
				dead[i] = true
				break
			}
			if kind != fRollbackOver {
				continue // stale frame from the aborted attempt
			}
			vals, perr := readU64s(payload, 1)
			if perr != nil || int64(vals[0]) != step {
				continue
			}
			break
		}
	}
	var gone []int
	for i, d := range dead {
		if d {
			gone = append(gone, i)
		}
	}
	sort.Ints(gone)
	// Close dead connections first: a node that is alive but wedged or
	// partitioned unblocks from its control read, tears itself down, and
	// releases the value file its replacement must reopen.
	for _, id := range gone {
		if c.nodes[id] != nil {
			closeQuietly(c.nodes[id])
			c.nodes[id] = nil
		}
	}
	for _, id := range gone {
		// Under RedistributeDead a dead node is retired for good: its
		// sealed value file is salvaged and its intervals migrate to the
		// survivors, as long as at least one survivor remains to take them.
		if c.policy == RedistributeDead && c.liveCount() > 1 {
			if err := c.redistribute(id, step); err != nil {
				return err
			}
			continue
		}
		if c.restart == nil {
			return fmt.Errorf("cluster: node %d dead and no restart hook installed", id)
		}
		if err := c.restart(id); err != nil {
			return fmt.Errorf("cluster: restarting node %d: %w", id, err)
		}
		if err := c.acceptRejoin(id, step, true); err != nil {
			return fmt.Errorf("cluster: node %d rejoin: %w", id, err)
		}
	}
	if len(gone) > 0 {
		// Every survivor (and replacement) must hold the refreshed address
		// book AND routing table before any fStart: a redistribution just
		// rewrote owners, and even a plain rejoin changed a data address.
		if err := c.syncMembership(); err != nil {
			return fmt.Errorf("cluster: membership sync after recovery: %w", err)
		}
	}
	return nil
}

// redistribute retires dead node id permanently, salvaging its owned
// intervals from its sealed value file and adopting them at the
// least-loaded survivors. It runs inside recoverStep, after every
// survivor acked the rollback — so all live files sit clean at epoch
// step and adoption is bit-exact. Failures here are fatal to the run
// (there is no inner recovery inside recovery); the retry budget guards
// the outer superstep loop, not this arc.
func (c *coordinator) redistribute(id int, step int64) error {
	owned := c.ownedBy(id)
	c.live[id] = false
	c.addrs[id] = ""
	if len(owned) == 0 {
		return nil // a joiner that died before receiving any interval
	}
	if c.salvage == nil {
		return fmt.Errorf("cluster: node %d dead and no salvage hook installed", id)
	}
	ranges := make([]graph.Interval, len(owned))
	for k, iv := range owned {
		ranges[k] = c.ivs[iv]
	}
	blobs, err := c.salvage(id, step, ranges)
	if err != nil {
		return fmt.Errorf("cluster: salvaging dead node %d: %w", id, err)
	}
	if len(blobs) != len(owned) {
		return fmt.Errorf("cluster: salvage of node %d returned %d blobs for %d intervals", id, len(blobs), len(owned))
	}
	for k, iv := range owned {
		to := c.lightestOther(id)
		if to < 0 {
			return fmt.Errorf("cluster: no survivor left to adopt interval %d of dead node %d", iv, id)
		}
		flt := &stepFault{}
		if !c.adoptAt(to, iv, blobs[k], flt) {
			return fmt.Errorf("cluster: redistributing interval %d of dead node %d to node %d: %w", iv, id, to, flt.err)
		}
		c.owners[iv] = to
		c.redistributions++
		metrics.Inc(metrics.CtrClusterRedistributions)
	}
	return nil
}

// memberOp applies one scheduled membership event at the barrier before
// superstep step. A *stepFault return is retryable via recoverStep.
func (c *coordinator) memberOp(step int64, ev MembershipEvent) error {
	switch ev.Op {
	case OpJoin:
		return c.joinOp(step)
	case OpDrain:
		return c.drainOp(step, ev.Node)
	}
	return fmt.Errorf("cluster: unknown membership op %d", int(ev.Op))
}

// joinOp absorbs a brand-new node mid-job: boot it with a fresh value
// file fast-forwarded to the current epoch, accept its JOIN handshake,
// then live-migrate intervals onto it until the edge-weight balance has
// nothing left to move (at minimum one interval — an empty member would
// corrupt the barrier arithmetic). On a faulted retry the boot and any
// completed migrations are kept; only the remaining moves rerun.
func (c *coordinator) joinOp(step int64) error {
	id := c.nextJoin
	if id >= len(c.nodes) {
		return fmt.Errorf("cluster: no join slots left (id space %d)", len(c.nodes))
	}
	if c.nodes[id] == nil {
		if c.bootJoin == nil {
			return fmt.Errorf("cluster: no join hook installed")
		}
		if err := c.bootJoin(id, step); err != nil {
			return fmt.Errorf("cluster: booting joiner %d: %w", id, err)
		}
		if err := c.acceptJoin(id, step); err != nil {
			return &stepFault{err: err, dead: []int{id}}
		}
	}
	c.live[id] = true
	flt := &stepFault{}
	for _, mv := range c.planMoves() {
		if !c.migrateInterval(step, mv.iv, mv.from, mv.to, flt) {
			return flt
		}
	}
	if len(c.ownedBy(id)) == 0 {
		// The weight balance found nothing small enough to move (e.g. one
		// giant interval per node). Force the lightest interval off the
		// most-loaded donor that can spare one.
		w := c.nodeWeights()
		from, best := -1, -1
		for i := range c.nodes {
			if !c.live[i] || i == id || len(c.ownedBy(i)) < 2 {
				continue
			}
			if from < 0 || w[i] > w[from] {
				from = i
			}
		}
		if from >= 0 {
			for _, iv := range c.ownedBy(from) {
				if best < 0 || c.weights[iv] < c.weights[best] {
					best = iv
				}
			}
		}
		if best < 0 {
			return fmt.Errorf("cluster: joiner %d cannot receive an interval: every member owns a single interval (need Splits >= 2)", id)
		}
		if !c.migrateInterval(step, best, from, id, flt) {
			return flt
		}
	}
	if err := c.syncMembership(); err != nil {
		return err
	}
	c.joins++
	metrics.Inc(metrics.CtrClusterJoins)
	c.nextJoin++
	return nil
}

// acceptJoin accepts joiner id's control connection and validates its
// JOIN frame: right node, and a value file fast-forwarded to exactly the
// barrier epoch (step) it is joining at.
func (c *coordinator) acceptJoin(id int, step int64) error {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := c.ln.(deadliner); ok && c.recoveryTimeout > 0 {
		d.SetDeadline(c.progressDeadline(c.recoveryTimeout)) //nolint:errcheck
		defer d.SetDeadline(time.Time{})                     //nolint:errcheck
	}
	for {
		nc, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: accepting join of node %d: %w", id, err)
		}
		cn := newConn(nc)
		kind, payload, err := cn.readFrame()
		if err != nil || kind != fJoin {
			closeQuietly(cn)
			continue // a stray dial; keep waiting for the joiner
		}
		jid, epoch, addr, err := parseRejoin(payload) // JOIN reuses the REJOIN payload shape
		if err != nil || int(jid) != id {
			closeQuietly(cn)
			continue
		}
		if int64(epoch) != step {
			closeQuietly(cn)
			return fmt.Errorf("cluster: node %d joined at epoch %d, want %d", id, epoch, step)
		}
		c.nodes[id] = cn
		c.addrs[id] = addr
		return nil
	}
}

// drainOp migrates every interval off node id to the least-loaded other
// members, tells it to exit cleanly, and retires it. Draining an
// already-retired node is a no-op (a retried drain whose node died and
// was redistributed mid-operation lands here).
func (c *coordinator) drainOp(step int64, id int) error {
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("cluster: drain of unknown node %d", id)
	}
	if !c.live[id] {
		return nil
	}
	if c.liveCount() <= 1 {
		return fmt.Errorf("cluster: refusing to drain node %d: it is the last member", id)
	}
	flt := &stepFault{}
	for _, iv := range c.ownedBy(id) {
		to := c.lightestOther(id)
		if to < 0 {
			return fmt.Errorf("cluster: no member left to take interval %d from draining node %d", iv, id)
		}
		if !c.migrateInterval(step, iv, id, to, flt) {
			return flt
		}
	}
	if err := c.nodes[id].writeFrame(fDrain, nil); err != nil {
		flt.fail(id, fmt.Errorf("cluster: node %d lost at drain: %w", id, err), true)
		return flt
	}
	kind, _, err := c.nodes[id].readFrameLive(c.timeout, c.progressDeadline(c.recoveryTimeout))
	if err != nil || kind != fDrainOver {
		// The node owns nothing anymore; a retried drain will skip straight
		// to the DRAIN frame after recovery restarts it.
		flt.fail(id, fmt.Errorf("cluster: node %d drain ack: frame %d (%v)", id, kind, err), true)
		return flt
	}
	c.live[id] = false
	c.addrs[id] = ""
	closeQuietly(c.nodes[id])
	c.nodes[id] = nil
	if err := c.syncMembership(); err != nil {
		return err
	}
	c.drains++
	metrics.Inc(metrics.CtrClusterDrains)
	return nil
}

// rebalanceStep runs the greedy edge-weight balancer at a barrier and
// migrates whatever it proposes. At the balanced fixed point it sends no
// frames at all, so enabling rebalancing on a stable cluster is free.
func (c *coordinator) rebalanceStep(step int64) error {
	moves := c.planMoves()
	if len(moves) == 0 {
		return nil
	}
	flt := &stepFault{}
	for _, mv := range moves {
		if !c.migrateInterval(step, mv.iv, mv.from, mv.to, flt) {
			return flt
		}
	}
	return c.syncMembership()
}

type move struct{ iv, from, to int }

// planMoves computes a deterministic greedy sequence of interval
// migrations that narrows the edge-weight spread across live members:
// repeatedly move the heaviest interval that (a) its donor — the most
// loaded member — can spare (it keeps at least one interval) and (b) is
// strictly lighter than the donor-to-lightest gap, so every move
// strictly shrinks the pairwise spread and the loop terminates. All ties
// break to the lowest id, keeping the plan a pure function of
// (owners, weights, live) — chaos reruns replay the identical plan.
func (c *coordinator) planMoves() []move {
	owners := append([]int(nil), c.owners...)
	w := make([]int64, len(c.nodes))
	count := make([]int, len(c.nodes))
	for iv, o := range owners {
		w[o] += c.weights[iv]
		count[o]++
	}
	var moves []move
	for len(moves) < len(owners) {
		h, l := -1, -1
		for i := range c.nodes {
			if !c.live[i] {
				continue
			}
			if h < 0 || w[i] > w[h] {
				h = i
			}
			if l < 0 || w[i] < w[l] {
				l = i
			}
		}
		if h < 0 || h == l {
			break
		}
		gap := w[h] - w[l]
		best := -1
		for iv, o := range owners {
			if o != h || count[h] < 2 {
				continue
			}
			if wt := c.weights[iv]; wt <= 0 || wt >= gap {
				continue
			}
			if best < 0 || c.weights[iv] > c.weights[best] {
				best = iv
			}
		}
		if best < 0 {
			break
		}
		owners[best] = l
		w[h] -= c.weights[best]
		w[l] += c.weights[best]
		count[h]--
		count[l]++
		moves = append(moves, move{iv: best, from: h, to: l})
	}
	return moves
}

// migrateInterval moves one interval from donor to recipient through the
// MIGRATE protocol: MIGRATE_OUT asks the donor to extract the sealed
// interval at the barrier epoch, MIGRATE_DATA carries the checksummed
// blob back, MIGRATE_IN hands it to the recipient, MIGRATE_DONE acks the
// adoption. Only then does the coordinator's owners table flip — so a
// fault anywhere leaves the donor authoritative and the move simply
// reruns after recovery. Reports false with the fault folded into flt.
func (c *coordinator) migrateInterval(step int64, iv, from, to int, flt *stepFault) bool {
	if err := c.nodes[from].writeFrame(fMigrateOut, migrateReqPayload(uint32(iv), uint64(step))); err != nil {
		flt.fail(from, fmt.Errorf("cluster: node %d lost at migrate-out of interval %d: %w", from, iv, err), true)
		return false
	}
	kind, payload, err := c.nodeRead(from, "migration extract")
	if err != nil {
		flt.fail(from, err, deadRead(err))
		return false
	}
	if kind != fMigrateData {
		flt.fail(from, fmt.Errorf("cluster: node %d sent frame %d during migration extract, want MIGRATE_DATA", from, kind), true)
		return false
	}
	gotIv, blob, perr := parseMigrateBlob(payload)
	if perr != nil || int(gotIv) != iv {
		flt.fail(from, fmt.Errorf("cluster: node %d migrate data for interval %d, want %d (%v)", from, gotIv, iv, perr), true)
		return false
	}
	if !c.adoptAt(to, iv, blob, flt) {
		return false
	}
	c.owners[iv] = to
	c.migrations++
	metrics.Inc(metrics.CtrClusterMigrations)
	return true
}

// adoptAt ships an extracted interval blob to node to and waits for its
// MIGRATE_DONE ack (the node validated the blob's digest and installed
// the slots before replying).
func (c *coordinator) adoptAt(to, iv int, blob []byte, flt *stepFault) bool {
	if err := c.nodes[to].writeFrame(fMigrateIn, migrateBlobPayload(uint32(iv), blob)); err != nil {
		flt.fail(to, fmt.Errorf("cluster: node %d lost at migrate-in of interval %d: %w", to, iv, err), true)
		return false
	}
	kind, payload, err := c.nodeRead(to, "migration adopt")
	if err != nil {
		flt.fail(to, err, deadRead(err))
		return false
	}
	if kind != fMigrateDone {
		flt.fail(to, fmt.Errorf("cluster: node %d sent frame %d during migration adopt, want MIGRATE_DONE", to, kind), true)
		return false
	}
	ackIv, perr := parseIv(payload)
	if perr != nil || int(ackIv) != iv {
		flt.fail(to, fmt.Errorf("cluster: node %d acked adoption of interval %d, want %d (%v)", to, ackIv, iv, perr), true)
		return false
	}
	return true
}

// syncMembership pushes the refreshed address book and routing table to
// every member and waits for each ROUTING_OVER ack, so no fStart can
// race a node still holding the old table. It runs after every
// membership change, in the same barrier window as the migrations it
// publishes.
func (c *coordinator) syncMembership() error {
	book := addrBookPayload(c.addrs)
	routing := routingPayload(c.owners)
	flt := &stepFault{}
	mem := c.members()
	for _, i := range mem {
		if err := c.nodes[i].writeFrame(fAddrBook, book); err != nil {
			flt.fail(i, fmt.Errorf("cluster: node %d lost at membership sync: %w", i, err), true)
			continue
		}
		if err := c.nodes[i].writeFrame(fRouting, routing); err != nil {
			flt.fail(i, fmt.Errorf("cluster: node %d lost at routing sync: %w", i, err), true)
		}
	}
	if flt.err != nil {
		return flt
	}
	for _, i := range mem {
		kind, _, err := c.nodeRead(i, "membership sync")
		if err != nil {
			flt.fail(i, err, deadRead(err))
			return flt
		}
		if kind != fRoutingOver {
			flt.fail(i, fmt.Errorf("cluster: node %d sent frame %d during membership sync, want ROUTING_OVER", i, kind), true)
			return flt
		}
	}
	return nil
}

// acceptRejoin completes the rejoin handshake with node id's replacement
// incarnation: accept its control connection, validate the REJOIN frame
// (right node, and a recovered epoch consistent with retrying step), and
// — when a superstep is being rolled back — issue the ROLLBACK so a
// replacement that had committed the aborted step rewinds it like every
// survivor.
func (c *coordinator) acceptRejoin(id int, step int64, rollback bool) error {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := c.ln.(deadliner); ok && c.recoveryTimeout > 0 {
		d.SetDeadline(c.progressDeadline(c.recoveryTimeout)) //nolint:errcheck
		defer d.SetDeadline(time.Time{})                     //nolint:errcheck
	}
	for {
		nc, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: accepting rejoin of node %d: %w", id, err)
		}
		cn := newConn(nc)
		kind, payload, err := cn.readFrame()
		if err != nil || kind != fRejoin {
			// Not the replacement (an orphaned dial, a corrupt hello):
			// closing it lets the stray exit; keep waiting for the rejoin.
			closeQuietly(cn)
			continue
		}
		rid, epoch, addr, err := parseRejoin(payload)
		if err != nil || int(rid) != id {
			closeQuietly(cn)
			continue
		}
		if rollback && (int64(epoch) < step || int64(epoch) > step+1) {
			// The replacement's durable state is outside the window a
			// coordinated commit could have left it in: its value file is
			// not the one this run sealed. Unrecoverable.
			closeQuietly(cn)
			return fmt.Errorf("cluster: node %d rejoined at epoch %d while rolling back superstep %d", id, epoch, step)
		}
		c.nodes[id] = cn
		c.addrs[id] = addr
		if rollback {
			if err := cn.writeFrame(fRollback, u64Payload(uint64(step), c.round)); err != nil {
				return err
			}
			if _, _, err := cn.readFrameLive(c.timeout, c.progressDeadline(c.recoveryTimeout)); err != nil {
				return fmt.Errorf("cluster: node %d rejoin rollback ack: %w", id, err)
			}
		}
		metrics.Inc(metrics.CtrClusterRejoins)
		c.rejoins++
		return nil
	}
}

// gatherValues pulls every interval's vertex payloads from its owning
// node into one slice. The gather is itself fault-tolerant: a node lost
// after the final superstep (or a corrupt values frame) is replaced via
// the rejoin handshake — its value file holds the committed final state —
// and re-asked, within the same retry budget the supersteps share.
func (c *coordinator) gatherValues(numVertices int64) ([]uint64, error) {
	out := make([]uint64, numVertices)
	retries := 0
	for iv := 0; iv < len(c.ivs); {
		owner := c.owners[iv]
		err := c.gatherInterval(iv, owner, out)
		if err == nil {
			iv++
			continue
		}
		if retries >= c.stepRetries || c.restart == nil {
			return nil, err
		}
		retries++
		if c.nodes[owner] != nil {
			closeQuietly(c.nodes[owner])
			c.nodes[owner] = nil
		}
		if rerr := c.restart(owner); rerr != nil {
			return nil, fmt.Errorf("cluster: restarting node %d for value gather: %v (original fault: %w)", owner, rerr, err)
		}
		// No superstep is in flight: the replacement recovered the final
		// committed state, so the rejoin skips the rollback arc. It does
		// need the current routing table back, though — its boot spec
		// carries the initial assignment, not the post-migration one.
		if rerr := c.acceptRejoin(owner, 0, false); rerr != nil {
			return nil, fmt.Errorf("cluster: node %d rejoin for value gather: %v (original fault: %w)", owner, rerr, err)
		}
		if berr := c.syncMembership(); berr != nil {
			return nil, fmt.Errorf("cluster: membership sync for value gather: %v (original fault: %w)", berr, err)
		}
	}
	return out, nil
}

func (c *coordinator) gatherInterval(iv, owner int, out []uint64) error {
	if err := c.nodes[owner].writeFrame(fValuesReq, ivPayload(uint32(iv))); err != nil {
		return fmt.Errorf("cluster: node %d values request for interval %d: %w", owner, iv, err)
	}
	kind, payload, err := c.nodeRead(owner, "value gather")
	if err != nil || kind != fValues {
		return fmt.Errorf("cluster: node %d values for interval %d: frame %d (%v)", owner, iv, kind, err)
	}
	first, payloads, err := parseValues(payload)
	if err != nil {
		return err
	}
	if first != c.ivs[iv].FirstVertex || first+int64(len(payloads)) != c.ivs[iv].EndVertex {
		return fmt.Errorf("cluster: node %d returned vertices [%d,%d) for interval %d, want [%d,%d)",
			owner, first, first+int64(len(payloads)), iv, c.ivs[iv].FirstVertex, c.ivs[iv].EndVertex)
	}
	copy(out[first:], payloads)
	return nil
}

// halt tells every node to shut down and closes the control plane. It is
// the quiet teardown used on already-failing paths and after Close; Close
// is the error-reporting variant for the success path.
func (c *coordinator) halt() {
	for _, n := range c.nodes {
		if n != nil {
			n.writeFrame(fHalt, []byte{0}) //nolint:errcheck
			closeQuietly(n)
		}
	}
	if c.ln != nil {
		closeQuietly(c.ln)
	}
}

// Close halts the cluster and reports teardown errors, joining the
// listener and control-connection close errors the way the mmap and
// vertexfile layers do. Connections already torn down by chaos or by the
// nodes' own teardown are expected and not reported.
func (c *coordinator) Close() error {
	var errs []error
	for i, n := range c.nodes {
		if n == nil {
			continue
		}
		n.writeFrame(fHalt, []byte{0}) //nolint:errcheck
		if err := n.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			errs = append(errs, fmt.Errorf("cluster: closing node %d control connection: %w", i, err))
		}
		c.nodes[i] = nil
	}
	if c.ln != nil {
		if err := c.ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			errs = append(errs, fmt.Errorf("cluster: closing coordinator listener: %w", err))
		}
		c.ln = nil
	}
	return errors.Join(errs...)
}
