package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"
)

// StepStats records one distributed superstep.
type StepStats struct {
	Step      int64
	Messages  int64 // generated across all nodes
	Delivered int64 // delivered after combining (local + wire)
	Updates   int64
	Duration  time.Duration
}

// Result summarizes a distributed run.
type Result struct {
	Nodes      int
	Supersteps int
	Converged  bool
	Messages   int64
	Delivered  int64
	Updates    int64
	Duration   time.Duration
	Steps      []StepStats
}

// coordinator is the distributed manager: it owns the control connections
// and drives the paper's superstep protocol across nodes.
type coordinator struct {
	ln    net.Listener
	nodes []*conn // indexed by node id

	// timeout bounds how long any node may go completely silent on the
	// control plane (heartbeats count as liveness). Zero disables.
	timeout time.Duration
}

func newCoordinator(addr string, total int, timeout time.Duration) (*coordinator, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator listen: %w", err)
	}
	return &coordinator{ln: ln, nodes: make([]*conn, total), timeout: timeout}, nil
}

func (c *coordinator) addr() string { return c.ln.Addr().String() }

// accept waits for every node's hello and distributes the address book.
func (c *coordinator) accept() error {
	addrs := make([]string, len(c.nodes))
	for i := 0; i < len(c.nodes); i++ {
		nc, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: coordinator accept: %w", err)
		}
		cn := newConn(nc)
		kind, payload, err := cn.readFrame()
		if err != nil || kind != fHello {
			closeQuietly(nc)
			return fmt.Errorf("cluster: expected hello, got frame %d (%v)", kind, err)
		}
		id, addr, err := parseHello(payload)
		if err != nil {
			closeQuietly(nc)
			return err
		}
		if int(id) >= len(c.nodes) || c.nodes[id] != nil {
			closeQuietly(nc)
			return fmt.Errorf("cluster: bad or duplicate node id %d", id)
		}
		c.nodes[id] = cn
		addrs[id] = addr
	}
	book := addrBookPayload(addrs)
	for _, n := range c.nodes {
		if err := n.writeFrame(fAddrBook, book); err != nil {
			return err
		}
	}
	return nil
}

// run drives supersteps until convergence, maxSupersteps, or ctx
// cancellation (checked between supersteps: a distributed superstep is
// not interrupted mid-flight — nodes commit or the step fails whole).
func (c *coordinator) run(ctx context.Context, startStep int64, maxSupersteps int) (*Result, error) {
	res := &Result{Nodes: len(c.nodes)}
	t0 := time.Now()
	step := startStep
	for s := 0; s < maxSupersteps; s++ {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				res.Duration = time.Since(t0)
				return res, fmt.Errorf("cluster: run cancelled before superstep %d: %w", step, cerr)
			}
		}
		st, err := c.superstep(step)
		if err != nil {
			return res, err
		}
		res.Steps = append(res.Steps, st)
		res.Supersteps++
		res.Messages += st.Messages
		res.Delivered += st.Delivered
		res.Updates += st.Updates
		if st.Messages == 0 && st.Updates == 0 {
			res.Converged = true
			break
		}
		step++
	}
	res.Duration = time.Since(t0)
	return res, nil
}

// nodeRead receives the next protocol frame from node i, converting a
// lost or silent node into a phase-labelled, step-level error instead of
// a hang: a read error means the node's connection died; a deadline
// timeout means the node sent nothing at all — not even a heartbeat —
// for the coordinator's node timeout.
func (c *coordinator) nodeRead(i int, phase string) (byte, []byte, error) {
	kind, payload, err := c.nodes[i].readFrameLive(c.timeout)
	if err == nil {
		return kind, payload, nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return 0, nil, fmt.Errorf("cluster: node %d unresponsive during %s: no frame (not even a heartbeat) within %v", i, phase, c.timeout)
	}
	return 0, nil, fmt.Errorf("cluster: node %d lost during %s: %w", i, phase, err)
}

func (c *coordinator) superstep(step int64) (StepStats, error) {
	st := StepStats{Step: step}
	t0 := time.Now()
	for _, n := range c.nodes {
		if err := n.writeFrame(fStart, u64Payload(uint64(step))); err != nil {
			return st, err
		}
	}
	for i := range c.nodes {
		kind, payload, err := c.nodeRead(i, "dispatch")
		if err != nil {
			return st, err
		}
		if kind != fDispatchOver {
			return st, fmt.Errorf("cluster: node %d sent frame %d, want DISPATCH_OVER", i, kind)
		}
		vals, err := readU64s(payload, 3)
		if err != nil {
			return st, err
		}
		if int64(vals[0]) != step {
			return st, fmt.Errorf("cluster: node %d acked step %d, want %d", i, vals[0], step)
		}
		st.Messages += int64(vals[1])
		st.Delivered += int64(vals[2])
	}
	for _, n := range c.nodes {
		if err := n.writeFrame(fComputeBarrier, u64Payload(uint64(step))); err != nil {
			return st, err
		}
	}
	for i := range c.nodes {
		kind, payload, err := c.nodeRead(i, "compute")
		if err != nil {
			return st, err
		}
		if kind != fComputeOver {
			return st, fmt.Errorf("cluster: node %d sent frame %d, want COMPUTE_OVER", i, kind)
		}
		vals, err := readU64s(payload, 2)
		if err != nil {
			return st, err
		}
		st.Updates += int64(vals[1])
	}
	st.Duration = time.Since(t0)
	return st, nil
}

// gatherValues pulls every node's vertex payloads into one slice.
func (c *coordinator) gatherValues(numVertices int64) ([]uint64, error) {
	out := make([]uint64, numVertices)
	for i, n := range c.nodes {
		if err := n.writeFrame(fValuesReq, nil); err != nil {
			return nil, err
		}
		kind, payload, err := c.nodeRead(i, "value gather")
		if err != nil || kind != fValues {
			return nil, fmt.Errorf("cluster: node %d values: frame %d (%v)", i, kind, err)
		}
		first, payloads, err := parseValues(payload)
		if err != nil {
			return nil, err
		}
		if first < 0 || first+int64(len(payloads)) > numVertices {
			return nil, fmt.Errorf("cluster: node %d values out of range", i)
		}
		copy(out[first:], payloads)
	}
	return out, nil
}

// halt tells every node to shut down and closes the control plane.
func (c *coordinator) halt() {
	for _, n := range c.nodes {
		if n != nil {
			n.writeFrame(fHalt, []byte{0}) //nolint:errcheck
			closeQuietly(n)
		}
	}
	closeQuietly(c.ln)
}
