package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mmap"
)

// Config tunes a distributed run.
type Config struct {
	// Context, when non-nil, cancels the run between supersteps: the
	// coordinator stops issuing superstep starts and halts the nodes. The
	// last committed superstep stays durable in each node's value file.
	Context context.Context
	// Nodes is the number of cluster nodes (default 2). Small graphs may
	// yield fewer (interval boundaries snap to the file index).
	Nodes int
	// MaxSupersteps caps the run (default 100).
	MaxSupersteps int
	// Node tunes each node.
	Node NodeConfig
	// WorkDir holds per-node value files (default: temp, removed after).
	WorkDir string
	// HeartbeatInterval is how often idle nodes ping the coordinator
	// (default 500ms; negative disables). Propagated to Node when the
	// node config leaves it zero.
	HeartbeatInterval time.Duration
	// NodeTimeout is how long the coordinator tolerates total silence
	// from a node — no protocol frame and no heartbeat — before failing
	// the superstep with a labelled error (default 15s; negative
	// disables).
	NodeTimeout time.Duration
}

// Run executes prog over the on-disk CSR graph at graphPath on an
// in-process TCP cluster and returns the run summary plus every vertex's
// final payload. All cross-node state flows through the wire protocol.
func Run(graphPath string, prog core.Program, cfg Config) (*Result, []uint64, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 100
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	if cfg.NodeTimeout == 0 {
		cfg.NodeTimeout = 15 * time.Second
	}
	if cfg.Node.HeartbeatInterval == 0 {
		cfg.Node.HeartbeatInterval = cfg.HeartbeatInterval
	}
	workDir := cfg.WorkDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "gpsa-cluster-*")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}

	// Partition the vertex space by edge count, like dispatcher intervals.
	gf, err := graph.OpenFile(graphPath, mmap.ModeAuto)
	if err != nil {
		return nil, nil, err
	}
	intervals := gf.Partition(cfg.Nodes)
	numVertices := gf.NumVertices
	if err := gf.Close(); err != nil {
		return nil, nil, err
	}
	total := len(intervals)

	coord, err := newCoordinator("", total, cfg.NodeTimeout)
	if err != nil {
		return nil, nil, err
	}
	defer coord.halt()

	// Boot the nodes; each control loop runs as a supervised actor, so a
	// panicking node surfaces as a collected failure instead of crashing
	// the process, and Wait covers every node deterministically.
	sys := actor.NewSystemContext(cfg.Context, "cluster-nodes", actor.RestartPolicy{})
	for i := 0; i < total; i++ {
		n, err := startNode(i, total, coord.addr(), graphPath,
			filepath.Join(workDir, fmt.Sprintf("node-%d.gpvf", i)), prog, intervals, cfg.Node)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: starting node %d: %w", i, err)
		}
		sys.SpawnFunc(fmt.Sprintf("node-%d", i), n.runNode)
	}
	if err := coord.accept(); err != nil {
		return nil, nil, err
	}

	res, err := coord.run(cfg.Context, 0, cfg.MaxSupersteps)
	if err != nil {
		// Enrich the coordinator's error with any node failure already
		// collected; Failures snapshots without blocking on stragglers.
		if fs := sys.Failures(); len(fs) > 0 {
			return res, nil, fmt.Errorf("%w (node error: %v)", err, fs[0].Err)
		}
		return res, nil, err
	}
	values, err := coord.gatherValues(numVertices)
	if err != nil {
		return res, nil, err
	}
	coord.halt()
	if werr := sys.Wait(); werr != nil {
		return res, values, fmt.Errorf("cluster: node failed: %w", werr)
	}
	return res, values, nil
}
