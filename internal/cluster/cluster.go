package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mmap"
)

// Config tunes a distributed run.
type Config struct {
	// Context, when non-nil, cancels the run between supersteps: the
	// coordinator stops issuing superstep starts and halts the nodes. The
	// last committed superstep stays durable in each node's value file.
	Context context.Context
	// Nodes is the number of cluster nodes (default 2). Small graphs may
	// yield fewer (interval boundaries snap to the file index).
	Nodes int
	// MaxSupersteps caps the run (default 100).
	MaxSupersteps int
	// Node tunes each node.
	Node NodeConfig
	// WorkDir holds per-node value files (default: temp, removed after).
	WorkDir string
	// HeartbeatInterval is how often idle nodes ping the coordinator
	// (default 500ms; negative disables). Propagated to Node when the
	// node config leaves it zero.
	HeartbeatInterval time.Duration
	// NodeTimeout is how long the coordinator tolerates total silence
	// from a node — no protocol frame and no heartbeat — before declaring
	// it dead (default 15s; negative disables).
	NodeTimeout time.Duration
	// PhaseTimeout bounds how long a node may heartbeat without making
	// protocol progress in a phase before the superstep is failed — the
	// wedged-node and one-way-partition detector (default 4x NodeTimeout;
	// negative disables).
	PhaseTimeout time.Duration
	// RecoveryTimeout bounds one rollback/rejoin cycle: survivors must
	// acknowledge the rollback and a replacement node must dial back in
	// within it (default 30s).
	RecoveryTimeout time.Duration
	// StepRetries is the run's rollback-and-retry budget, mirroring
	// core.Config.MaxStepRetries: a failed superstep (dead node, wedged
	// phase, corrupt frame) is rolled back across the cluster — dead
	// nodes replaced via the rejoin handshake, replaying their interval
	// from the sealed value file — and retried, at most this many times
	// per run. Zero (the default) fails fast on the first fault.
	StepRetries int
}

// Run executes prog over the on-disk CSR graph at graphPath on an
// in-process TCP cluster and returns the run summary plus every vertex's
// final payload. All cross-node state flows through the wire protocol.
func Run(graphPath string, prog core.Program, cfg Config) (*Result, []uint64, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 100
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	if cfg.NodeTimeout == 0 {
		cfg.NodeTimeout = 15 * time.Second
	}
	if cfg.PhaseTimeout == 0 && cfg.NodeTimeout > 0 {
		cfg.PhaseTimeout = 4 * cfg.NodeTimeout
	}
	if cfg.RecoveryTimeout == 0 {
		cfg.RecoveryTimeout = 30 * time.Second
	}
	if cfg.Node.HeartbeatInterval == 0 {
		cfg.Node.HeartbeatInterval = cfg.HeartbeatInterval
	}
	workDir := cfg.WorkDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "gpsa-cluster-*")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}

	// Partition the vertex space by edge count, like dispatcher intervals.
	gf, err := graph.OpenFile(graphPath, mmap.ModeAuto)
	if err != nil {
		return nil, nil, err
	}
	intervals := gf.Partition(cfg.Nodes)
	numVertices := gf.NumVertices
	if err := gf.Close(); err != nil {
		return nil, nil, err
	}
	total := len(intervals)

	coord, err := newCoordinator("", total, cfg)
	if err != nil {
		return nil, nil, err
	}
	defer coord.halt()

	// Boot the nodes; each control loop runs as a supervised actor, so a
	// panicking node surfaces as a collected failure instead of crashing
	// the process. refs always tracks the CURRENT incarnation of each
	// node: recovery replaces a dead node's entry, and the end-of-run
	// check consults refs — not the system-wide failure list — because a
	// recovered-from incarnation's death is not an error of this run.
	sys := actor.NewSystemContext(cfg.Context, "cluster-nodes", actor.RestartPolicy{})
	refs := make([]*actor.Ref, total)
	boot := func(id int, rejoin bool) error {
		n, err := startNode(sys.Context(), id, total, coord.addr(), graphPath,
			filepath.Join(workDir, fmt.Sprintf("node-%d.gpvf", id)), prog, intervals, cfg.Node, rejoin)
		if err != nil {
			return fmt.Errorf("cluster: starting node %d: %w", id, err)
		}
		refs[id] = sys.SpawnFunc(fmt.Sprintf("node-%d", id), n.runNode)
		return nil
	}
	coord.restart = func(id int) error {
		// The replacement reopens the dead node's value file, so the old
		// incarnation must have finished tearing down (the coordinator
		// closed its control connection; its exit is bounded by its own
		// phase timeouts) before the new one maps it.
		if old := refs[id]; old != nil {
			if err := awaitRef(old, cfg.RecoveryTimeout); err != nil {
				return err
			}
		}
		return boot(id, true)
	}
	for i := 0; i < total; i++ {
		if err := boot(i, false); err != nil {
			return nil, nil, err
		}
	}
	if err := coord.accept(); err != nil {
		return nil, nil, err
	}

	res, err := coord.run(cfg.Context, 0, cfg.MaxSupersteps)
	if err != nil {
		// Enrich the coordinator's error with any node failure already
		// collected; Failures snapshots without blocking on stragglers.
		if fs := sys.Failures(); len(fs) > 0 {
			return res, nil, fmt.Errorf("%w (node error: %v)", err, fs[0].Err)
		}
		return res, nil, err
	}
	values, err := coord.gatherValues(numVertices)
	if err != nil {
		return res, nil, err
	}
	if cerr := coord.Close(); cerr != nil {
		return res, values, cerr
	}
	for id, r := range refs {
		if err := awaitRef(r, cfg.NodeTimeout); err != nil {
			return res, values, err
		}
		if rerr := r.Err(); rerr != nil {
			return res, values, fmt.Errorf("cluster: node %d failed: %w", id, rerr)
		}
	}
	return res, values, nil
}

// awaitRef waits (bounded) for one actor incarnation to finish.
func awaitRef(r *actor.Ref, timeout time.Duration) error {
	if timeout <= 0 {
		<-r.Done()
		return nil
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-r.Done():
		return nil
	case <-t.C:
		return fmt.Errorf("cluster: actor %s still running after %v", r.Name(), timeout)
	}
}
