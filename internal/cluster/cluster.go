package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
)

// Config tunes a distributed run.
type Config struct {
	// Context, when non-nil, cancels the run between supersteps: the
	// coordinator stops issuing superstep starts and halts the nodes. The
	// last committed superstep stays durable in each node's value file.
	Context context.Context
	// Nodes is the number of cluster nodes (default 2). Small graphs may
	// yield fewer (interval boundaries snap to the file index).
	Nodes int
	// MaxSupersteps caps the run (default 100).
	MaxSupersteps int
	// Node tunes each node.
	Node NodeConfig
	// WorkDir holds per-node value files (default: temp, removed after).
	WorkDir string
	// HeartbeatInterval is how often idle nodes ping the coordinator
	// (default 500ms; negative disables). Propagated to Node when the
	// node config leaves it zero.
	HeartbeatInterval time.Duration
	// NodeTimeout is how long the coordinator tolerates total silence
	// from a node — no protocol frame and no heartbeat — before declaring
	// it dead (default 15s; negative disables).
	NodeTimeout time.Duration
	// PhaseTimeout bounds how long a node may heartbeat without making
	// protocol progress in a phase before the superstep is failed — the
	// wedged-node and one-way-partition detector (default 4x NodeTimeout;
	// negative disables).
	PhaseTimeout time.Duration
	// RecoveryTimeout bounds one rollback/rejoin cycle: survivors must
	// acknowledge the rollback and a replacement node must dial back in
	// within it (default 30s).
	RecoveryTimeout time.Duration
	// StepRetries is the run's rollback-and-retry budget, mirroring
	// core.Config.MaxStepRetries: a failed superstep (dead node, wedged
	// phase, corrupt frame) is rolled back across the cluster — dead
	// nodes replaced via the rejoin handshake, replaying their interval
	// from the sealed value file — and retried, at most this many times
	// per run. Zero (the default) fails fast on the first fault.
	StepRetries int
	// Splits is how many vertex intervals each initial node starts with
	// (default 1). The partition is fixed for the life of the job —
	// determinism hangs off that — so Splits bounds migration
	// granularity: joins and rebalancing need Splits >= 2 to have
	// anything to move without emptying a donor.
	Splits int
	// Events schedules elastic-membership operations (joins, drains) at
	// superstep barriers. Events are applied in Step order; ids for
	// joined nodes are assigned in order above Nodes.
	Events []MembershipEvent
	// DeadNodes selects the recovery policy for nodes whose control
	// connection dies: RestartDead (default) boots a same-id replacement;
	// RedistributeDead salvages the dead node's sealed value file and
	// migrates its intervals to survivors (N -> N-1 degradation).
	DeadNodes DeadNodePolicy
	// Rebalance, when set, runs the greedy edge-weight balancer at every
	// barrier and migrates intervals toward the balance point (a no-op —
	// zero frames — once balanced).
	Rebalance bool
}

// Run executes prog over the on-disk CSR graph at graphPath on an
// in-process TCP cluster and returns the run summary plus every vertex's
// final payload. All cross-node state flows through the wire protocol.
func Run(graphPath string, prog core.Program, cfg Config) (*Result, []uint64, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 100
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	if cfg.NodeTimeout == 0 {
		cfg.NodeTimeout = 15 * time.Second
	}
	if cfg.PhaseTimeout == 0 && cfg.NodeTimeout > 0 {
		cfg.PhaseTimeout = 4 * cfg.NodeTimeout
	}
	if cfg.RecoveryTimeout == 0 {
		cfg.RecoveryTimeout = 30 * time.Second
	}
	if cfg.Node.HeartbeatInterval == 0 {
		cfg.Node.HeartbeatInterval = cfg.HeartbeatInterval
	}
	workDir := cfg.WorkDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "gpsa-cluster-*")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}

	if cfg.Splits <= 0 {
		cfg.Splits = 1
	}
	joins := 0
	for _, ev := range cfg.Events {
		if ev.Op != OpJoin && ev.Op != OpDrain {
			return nil, nil, fmt.Errorf("cluster: unknown membership op %d", int(ev.Op))
		}
		if ev.Step < 0 {
			return nil, nil, fmt.Errorf("cluster: membership event at negative step %d", ev.Step)
		}
		if ev.Op == OpJoin {
			joins++
		}
	}
	events := append([]MembershipEvent(nil), cfg.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Step < events[j].Step })

	// Partition the vertex space by edge count into a FIXED interval
	// table: Splits intervals per initial node. Membership changes move
	// whole intervals between nodes; the partition itself — and with it
	// batch boundaries, combine groups, and fold order — never changes,
	// which is why an elastic run stays bit-identical to a fixed one.
	gf, err := graph.OpenFile(graphPath, mmap.ModeAuto)
	if err != nil {
		return nil, nil, err
	}
	intervals := gf.Partition(cfg.Nodes * cfg.Splits)
	numVertices := gf.NumVertices
	if err := gf.Close(); err != nil {
		return nil, nil, err
	}
	nivs := len(intervals)
	initial := cfg.Nodes
	if nivs < initial {
		initial = nivs // tiny graph: index snapping yielded fewer intervals
	}
	total := initial + joins // node id space
	owners := make([]int, nivs)
	weights := make([]int64, nivs)
	for iv := range intervals {
		owners[iv] = iv * initial / nivs // contiguous runs, ascending
		weights[iv] = intervals[iv].Edges
	}

	coord, err := newCoordinator("", initial, total, cfg)
	if err != nil {
		return nil, nil, err
	}
	defer coord.halt()
	coord.ivs = intervals
	coord.owners = owners
	coord.weights = weights
	coord.policy = cfg.DeadNodes
	coord.events = events
	coord.rebalance = cfg.Rebalance

	// Boot the nodes; each control loop runs as a supervised actor, so a
	// panicking node surfaces as a collected failure instead of crashing
	// the process. refs always tracks the CURRENT incarnation of each
	// node: recovery replaces a dead node's entry, and the end-of-run
	// check consults refs — not the system-wide failure list — because a
	// recovered-from incarnation's death is not an error of this run.
	sys := actor.NewSystemContext(cfg.Context, "cluster-nodes", actor.RestartPolicy{})
	refs := make([]*actor.Ref, total)
	nodePath := func(id int) string {
		return filepath.Join(workDir, fmt.Sprintf("node-%d.gpvf", id))
	}
	boot := func(id int, mode bootMode, joinEpoch int64) error {
		n, err := startNode(sys.Context(), nodeSpec{
			id:         id,
			total:      total,
			coordAddr:  coord.addr(),
			graphPath:  graphPath,
			valuesPath: nodePath(id),
			prog:       prog,
			ivs:        intervals,
			owners:     coord.owners,
			cfg:        cfg.Node,
			mode:       mode,
			joinEpoch:  joinEpoch,
		})
		if err != nil {
			return fmt.Errorf("cluster: starting node %d: %w", id, err)
		}
		refs[id] = sys.SpawnFunc(fmt.Sprintf("node-%d", id), n.runNode)
		return nil
	}
	awaitOld := func(id int) error {
		// The replacement reopens (or truncates) the dead node's value
		// file, so the old incarnation must have finished tearing down
		// (the coordinator closed its control connection; its exit is
		// bounded by its own phase timeouts) before the new one maps it.
		if old := refs[id]; old != nil {
			return awaitRef(old, cfg.RecoveryTimeout)
		}
		return nil
	}
	coord.restart = func(id int) error {
		if err := awaitOld(id); err != nil {
			return err
		}
		return boot(id, bootRejoin, 0)
	}
	coord.bootJoin = func(id int, step int64) error {
		if err := awaitOld(id); err != nil {
			return err
		}
		return boot(id, bootJoin, step)
	}
	coord.salvage = func(id int, step int64, ivs []graph.Interval) ([][]byte, error) {
		if err := awaitOld(id); err != nil {
			return nil, err
		}
		return salvageIntervals(nodePath(id), step, ivs)
	}
	for i := 0; i < initial; i++ {
		if err := boot(i, bootFresh, 0); err != nil {
			return nil, nil, err
		}
	}
	if err := coord.accept(); err != nil {
		return nil, nil, err
	}

	res, err := coord.run(cfg.Context, 0, cfg.MaxSupersteps)
	if err != nil {
		// Enrich the coordinator's error with any node failure already
		// collected; Failures snapshots without blocking on stragglers.
		if fs := sys.Failures(); len(fs) > 0 {
			return res, nil, fmt.Errorf("%w (node error: %v)", err, fs[0].Err)
		}
		return res, nil, err
	}
	values, err := coord.gatherValues(numVertices)
	if err != nil {
		return res, nil, err
	}
	if cerr := coord.Close(); cerr != nil {
		return res, values, cerr
	}
	for id, r := range refs {
		if r == nil {
			continue // a join slot whose event never fired
		}
		if err := awaitRef(r, cfg.NodeTimeout); err != nil {
			return res, values, err
		}
		if !coord.live[id] {
			// Retired mid-run: a drained node exits cleanly, and a
			// permanently-dead redistributed node's final error was already
			// recovered from — neither is an error of this run.
			continue
		}
		if rerr := r.Err(); rerr != nil {
			return res, values, fmt.Errorf("cluster: node %d failed: %w", id, rerr)
		}
	}
	return res, values, nil
}

// salvageIntervals opens a dead node's sealed value file and extracts
// the given vertex ranges for redistribution. The file may be mid-commit
// (Recover finishes or rewinds the torn step) or sealed one epoch ahead
// of the retrying superstep — a death after local commit of the aborted
// attempt — in which case it is rewound to step, exactly as a rejoining
// replacement would have done before replaying.
func salvageIntervals(path string, step int64, ivs []graph.Interval) ([][]byte, error) {
	vf, err := vertexfile.Open(path)
	if err != nil {
		return nil, err
	}
	if vf.InProgress() {
		if _, err := vf.Recover(); err != nil {
			closeQuietly(vf)
			return nil, err
		}
	}
	if vf.Epoch() == step+1 {
		if err := vf.Rewind(step); err != nil {
			closeQuietly(vf)
			return nil, err
		}
	}
	if vf.Epoch() != step {
		closeQuietly(vf)
		return nil, fmt.Errorf("cluster: salvage of %s: sealed at epoch %d while recovering superstep %d", path, vf.Epoch(), step)
	}
	blobs := make([][]byte, len(ivs))
	for k, iv := range ivs {
		b, err := vf.ExtractInterval(iv.FirstVertex, iv.EndVertex)
		if err != nil {
			closeQuietly(vf)
			return nil, err
		}
		blobs[k] = b
	}
	if err := vf.Close(); err != nil {
		return nil, err
	}
	return blobs, nil
}

// awaitRef waits (bounded) for one actor incarnation to finish.
func awaitRef(r *actor.Ref, timeout time.Duration) error {
	if timeout <= 0 {
		<-r.Done()
		return nil
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-r.Done():
		return nil
	case <-t.C:
		return fmt.Errorf("cluster: actor %s still running after %v", r.Name(), timeout)
	}
}
