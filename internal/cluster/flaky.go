package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/fault"
)

// flakyConn is the chaos-injection transport wrapper installed under
// every cluster connection — control and data plane alike. Each Write
// consults the cluster.conn.* fault sites, so a seeded plan can subject
// any link to delay, reset, short-write, bit corruption, or a self-
// healing one-way partition. With no plan active every site check is one
// atomic pointer load, so the wrapper costs nothing in normal operation.
//
// Each endpoint wraps its own side of the socket, so arming a site
// perturbs only the wrapped direction: a firing partition blackholes
// this side's writes while the reverse path keeps flowing — the one-way
// case heartbeat liveness alone cannot distinguish from health.
type flakyConn struct {
	net.Conn

	mu        sync.Mutex
	partUntil time.Time // writes are blackholed until this instant
}

// wrapFaulty installs the chaos wrapper over nc.
func wrapFaulty(nc net.Conn) net.Conn { return &flakyConn{Conn: nc} }

func (f *flakyConn) Write(b []byte) (int, error) {
	fault.Stall(fault.SiteConnDelay)
	if fr := fault.Hit(fault.SiteConnPartition); fr != nil {
		f.mu.Lock()
		f.partUntil = time.Now().Add(fr.Delay) //lint:nondeterministic the partition heal window is test-only chaos, never vertex state
		f.mu.Unlock()
	}
	f.mu.Lock()
	blackholed := time.Now().Before(f.partUntil) //lint:nondeterministic the partition heal window is test-only chaos, never vertex state
	f.mu.Unlock()
	if blackholed {
		// A one-way partition: the bytes vanish but the writer sees
		// success, exactly like a link silently eating packets. The
		// receiver's sequence numbers surface the gap and the
		// coordinator's progress timeout converts it into a rollback.
		return len(b), nil
	}
	if ferr := fault.Error(fault.SiteConnReset); ferr != nil {
		closeQuietly(f.Conn)
		return 0, fmt.Errorf("cluster: injected connection reset: %w", ferr)
	}
	if ferr := fault.Error(fault.SiteConnShortWrite); ferr != nil && len(b) > 1 {
		n, _ := f.Conn.Write(b[:len(b)/2]) //nolint:errcheck
		closeQuietly(f.Conn)
		return n, fmt.Errorf("cluster: injected short write after %d of %d bytes: %w", n, len(b), ferr)
	}
	if fault.Hit(fault.SiteConnCorrupt) != nil && len(b) > 0 {
		// Flip one bit of a copy (the caller's buffer must stay intact
		// for a potential resend). The frame checksum must catch this.
		c := make([]byte, len(b))
		copy(c, b)
		c[len(c)/2] ^= 0x40
		return f.Conn.Write(c)
	}
	return f.Conn.Write(b)
}

// membershipFault consults the cluster.migrate.* fault sites on behalf
// of writeFrame, which calls it once per elastic-membership frame
// (MIGRATE/JOIN/DRAIN/ROUTING) about to hit the wire. The generic
// cluster.conn.* sites above fire per raw write on every link; these
// fire per membership frame, so a seeded plan can park a disturbance on
// exactly the Nth step of a migration. Delay stalls the frame, reset
// kills the connection before anything is buffered (err non-nil), and
// corrupt/short-write report that writeFrame itself must damage the
// frame after sealing its checksum — the receiver, not the sender, has
// to catch those.
func membershipFault() (corrupt, short bool, err error) {
	fault.Stall(fault.SiteMigrateStall)
	if ferr := fault.Error(fault.SiteMigrateReset); ferr != nil {
		return false, false, ferr
	}
	corrupt = fault.Error(fault.SiteMigrateCorrupt) != nil
	short = fault.Error(fault.SiteMigrateShortWrite) != nil
	return corrupt, short, nil
}
