package cluster

import (
	"errors"
	"fmt"

	"repro/internal/vertexfile"
)

// Offline interval re-fetch: rebuilding a quarantined node value file
// from the sealed files of live peers, reusing the MIGRATE data plane's
// interval blobs (ExtractInterval/AdoptInterval). The scrubber calls
// this after quarantining a value file whose sealed column digest no
// longer matches its bytes — at-rest bit-rot — because every interval
// the corrupt file was authoritative for still has a bit-identical
// copy wherever a peer's sealed file owns or mirrors it. A rebuilt
// file is indistinguishable from one the node computed itself: the
// blobs carry payload and active flag verbatim, and AdoptInterval
// installs the stale update-column copy Reconcile would have left.

// ErrNoReplica is returned when a needed interval has no live sealed
// replica: repair is impossible and the job must be recomputed from
// seed input. The scrubber surfaces it as an actionable finding rather
// than retrying.
var ErrNoReplica = errors.New("cluster: no live replica holds the interval; recompute from seed")

// IntervalSource names a healthy sealed value file holding the
// authoritative state of vertices [First, End). An empty Path records
// that no replica survives for the range.
type IntervalSource struct {
	First, End int64
	Path       string
}

// StaticOwners reproduces Run's initial interval-to-node assignment
// (contiguous ascending runs, nivs intervals over nodes nodes) so an
// offline repair of a run without membership events can locate each
// interval's owner file without the coordinator's routing table.
func StaticOwners(nivs, nodes int) []int {
	if nodes > nivs {
		nodes = nivs
	}
	owners := make([]int, nivs)
	for iv := range owners {
		owners[iv] = iv * nodes / nivs
	}
	return owners
}

// RepairValuesFile rebuilds the node value file at path from the
// sealed files of live peers: a fresh file (initial payloads from
// init, exactly as the node's bootFresh would have built) is
// fast-forwarded to epoch, and every interval in sources is extracted
// from its owner and adopted. The caller has already quarantined the
// corrupt original — path is created anew. Each source file must be
// sealed (no superstep in progress) at the same epoch; a source that
// is itself unreadable or corrupt fails the repair with its own typed
// error, and a source with no path fails with ErrNoReplica.
func RepairValuesFile(path string, numVertices, epoch int64, init func(v int64) (payload uint64, active bool), sources []IntervalSource) error {
	blobs := make([][]byte, len(sources))
	peers := make(map[string]*vertexfile.File)
	defer func() {
		//lint:determinism close order of read-only replica handles has no observable effect on the repaired file
		for _, vf := range peers {
			closeQuietly(vf)
		}
	}()
	for k, src := range sources {
		if src.Path == "" {
			return fmt.Errorf("cluster: repair of %s: interval [%d,%d): %w", path, src.First, src.End, ErrNoReplica)
		}
		vf := peers[src.Path]
		if vf == nil {
			var err error
			vf, err = vertexfile.Open(src.Path)
			if err != nil {
				return fmt.Errorf("cluster: repair of %s: opening replica %s: %w", path, src.Path, err)
			}
			peers[src.Path] = vf
			if vf.InProgress() {
				return fmt.Errorf("cluster: repair of %s: replica %s records an in-progress superstep; repair is barrier-only", path, src.Path)
			}
			if vf.Epoch() != epoch {
				return fmt.Errorf("cluster: repair of %s: replica %s sealed at epoch %d, want %d", path, src.Path, vf.Epoch(), epoch)
			}
		}
		blob, err := vf.ExtractInterval(src.First, src.End)
		if err != nil {
			return fmt.Errorf("cluster: repair of %s: %w", path, err)
		}
		blobs[k] = blob
	}

	out, err := vertexfile.Create(path, numVertices, init)
	if err != nil {
		return fmt.Errorf("cluster: repair of %s: %w", path, err)
	}
	if err := out.FastForward(epoch, true); err != nil {
		closeQuietly(out)
		return fmt.Errorf("cluster: repair of %s: %w", path, err)
	}
	for _, blob := range blobs {
		if err := out.AdoptInterval(blob, true); err != nil {
			closeQuietly(out)
			return fmt.Errorf("cluster: repair of %s: %w", path, err)
		}
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("cluster: repair of %s: %w", path, err)
	}
	return nil
}
