package cluster_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/metrics"
)

// TestClusterRecoversFromTransientConnDrop severs one data-plane
// connection mid-run; the sender must redial and resend the frame whole,
// and the run must finish with exactly the reference answer.
func TestClusterRecoversFromTransientConnDrop(t *testing.T) {
	g := rmat(t, 400, 2500, 31).Symmetrize()
	want, _ := algorithms.ReferenceRun(g, algorithms.ConnectedComponents{}, 100)

	plan := fault.NewPlan(0, fault.Injection{Site: fault.SiteConnDrop, After: 10})
	fault.Activate(plan)
	defer fault.Deactivate()
	res, values, err := cluster.Run(save(t, g), algorithms.ConnectedComponents{}, cluster.Config{
		Nodes: 3,
		Node:  cluster.NodeConfig{RedialBackoff: 2 * time.Millisecond},
	})
	fault.Deactivate()
	if err != nil {
		t.Fatalf("run with transient drop failed: %v", err)
	}
	if plan.Fired(fault.SiteConnDrop) != 1 {
		t.Fatalf("drop fired %d times, want 1", plan.Fired(fault.SiteConnDrop))
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if values[v] != want[v] {
			t.Fatalf("vertex %d: %d, want %d", v, values[v], want[v])
		}
	}
}

// TestClusterPermanentDropFailsBounded drops every data-plane write: the
// redial budget runs out and the coordinator must surface a labelled
// step-level error within a bound instead of hanging at the barrier.
func TestClusterPermanentDropFailsBounded(t *testing.T) {
	g := rmat(t, 300, 2000, 32).Symmetrize()
	path := save(t, g)

	fault.Activate(fault.NewPlan(0, fault.Injection{Site: fault.SiteConnDrop, Count: -1}))
	defer fault.Deactivate()
	done := make(chan error, 1)
	go func() {
		_, _, err := cluster.Run(path, algorithms.ConnectedComponents{}, cluster.Config{
			Nodes:       3,
			NodeTimeout: 2 * time.Second,
			Node: cluster.NodeConfig{
				BarrierTimeout: 2 * time.Second,
				RedialBackoff:  time.Millisecond,
			},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with a dead data plane succeeded")
		}
		if !strings.Contains(err.Error(), "node") {
			t.Fatalf("error = %v, want a node-labelled cluster error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cluster hung on a permanently dead data plane")
	}
}

// TestClusterRedialExhaustionNamesPeer pins the shape of the
// redial-exhaustion error: when a peer stays unreachable through the
// whole redial budget, the surfaced error must name the unreachable
// peer and the attempt count, so an operator reading the failure knows
// which link died and that the budget — not a hang — ended the step.
func TestClusterRedialExhaustionNamesPeer(t *testing.T) {
	g := rmat(t, 200, 1200, 35).Symmetrize()
	path := save(t, g)

	fault.Activate(fault.NewPlan(0, fault.Injection{Site: fault.SiteConnDrop, Count: -1}))
	defer fault.Deactivate()
	redials0 := metrics.Counter(metrics.CtrClusterRedials)
	_, _, err := cluster.Run(path, algorithms.ConnectedComponents{}, cluster.Config{
		Nodes:       3,
		NodeTimeout: 2 * time.Second,
		Node: cluster.NodeConfig{
			BarrierTimeout: 2 * time.Second,
			PeerRedials:    3,
			RedialBackoff:  time.Millisecond,
		},
	})
	fault.Deactivate()
	if err == nil {
		t.Fatal("run with a dead data plane succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "peer") {
		t.Fatalf("error = %v, want the unreachable peer named", err)
	}
	if !strings.Contains(msg, "after 3 redials") {
		t.Fatalf("error = %v, want the redial attempt count (after 3 redials)", err)
	}
	if got := metrics.Counter(metrics.CtrClusterRedials); got <= redials0 {
		t.Fatalf("cluster.redials did not advance (%d -> %d)", redials0, got)
	}
}

// TestClusterNodeDeathRejoinsAndRecovers kills one node mid-dispatch at
// the cluster API level: the coordinator must roll the superstep back,
// boot a replacement that rejoins from the sealed value file, and finish
// with exactly the reference answer — the Result counters recording the
// recovery.
func TestClusterNodeDeathRejoinsAndRecovers(t *testing.T) {
	g := rmat(t, 300, 2000, 36).Symmetrize()
	want, _ := algorithms.ReferenceRun(g, algorithms.ConnectedComponents{}, 100)

	plan := fault.NewPlan(0, fault.Injection{Site: fault.SiteNodeKillDispatch, After: 40})
	fault.Activate(plan)
	defer fault.Deactivate()
	res, values, err := cluster.Run(save(t, g), algorithms.ConnectedComponents{}, cluster.Config{
		Nodes:             3,
		StepRetries:       3,
		HeartbeatInterval: 100 * time.Millisecond,
		NodeTimeout:       2 * time.Second,
		RecoveryTimeout:   10 * time.Second,
		Node: cluster.NodeConfig{
			BarrierTimeout: 2 * time.Second,
			RedialBackoff:  2 * time.Millisecond,
		},
	})
	fault.Deactivate()
	if err != nil {
		t.Fatalf("run with a killed node failed: %v", err)
	}
	if plan.Fired(fault.SiteNodeKillDispatch) == 0 {
		t.Fatal("kill site never fired; the test exercised nothing")
	}
	if res.Rollbacks == 0 || res.Rejoins == 0 {
		t.Fatalf("Result reports rollbacks=%d rejoins=%d, want both > 0", res.Rollbacks, res.Rejoins)
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if values[v] != want[v] {
			t.Fatalf("vertex %d: %d, want %d", v, values[v], want[v])
		}
	}
}

// TestClusterSilentNodeTimesOut wedges the data plane while heartbeats are
// disabled, so a node goes completely silent on the control plane; the
// coordinator's liveness timeout must convert that into an "unresponsive"
// error instead of waiting forever.
func TestClusterSilentNodeTimesOut(t *testing.T) {
	g := rmat(t, 200, 1200, 33).Symmetrize()
	path := save(t, g)

	fault.Activate(fault.NewPlan(0, fault.Injection{
		Site: fault.SiteConnStall, Count: -1, Delay: 5 * time.Second,
	}))
	defer fault.Deactivate()
	done := make(chan error, 1)
	go func() {
		_, _, err := cluster.Run(path, algorithms.ConnectedComponents{}, cluster.Config{
			Nodes:             3,
			HeartbeatInterval: -1, // silence really means silence
			NodeTimeout:       time.Second,
			Node:              cluster.NodeConfig{BarrierTimeout: 2 * time.Second},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with a wedged node succeeded")
		}
		if !strings.Contains(err.Error(), "unresponsive") {
			t.Fatalf("error = %v, want unresponsive-node timeout", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung on a silent node")
	}
}

// TestClusterHeartbeatsKeepSlowNodeAlive is the inverse: with heartbeats
// on and an ample liveness budget, a briefly-stalled data plane must NOT
// trip the coordinator — the run completes once the stall clears.
func TestClusterHeartbeatsKeepSlowNodeAlive(t *testing.T) {
	g := rmat(t, 200, 1200, 34).Symmetrize()
	want, _ := algorithms.ReferenceRun(g, algorithms.ConnectedComponents{}, 100)

	// One 700ms stall with a 500ms liveness timeout: only heartbeats
	// (100ms) keep the coordinator from declaring the node dead.
	fault.Activate(fault.NewPlan(0, fault.Injection{
		Site: fault.SiteConnStall, After: 8, Delay: 700 * time.Millisecond,
	}))
	defer fault.Deactivate()
	_, values, err := cluster.Run(save(t, g), algorithms.ConnectedComponents{}, cluster.Config{
		Nodes:             3,
		HeartbeatInterval: 100 * time.Millisecond,
		NodeTimeout:       500 * time.Millisecond,
	})
	fault.Deactivate()
	if err != nil {
		t.Fatalf("run with heartbeats failed: %v", err)
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if values[v] != want[v] {
			t.Fatalf("vertex %d: %d, want %d", v, values[v], want[v])
		}
	}
}
