package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// Wire protocol: length-prefixed frames, little endian.
//
//	frame  := length uint32 | kind uint8 | payload
//	length counts kind+payload bytes.
const (
	fHello          = 1  // node -> coordinator: nodeID u32, dataAddr string
	fAddrBook       = 2  // coordinator -> node: n u32, then n strings
	fStart          = 3  // coordinator -> node: step u64
	fDispatchOver   = 4  // node -> coordinator: step u64, generated u64, delivered u64
	fComputeBarrier = 5  // coordinator -> node: step u64
	fComputeOver    = 6  // node -> coordinator: step u64, updates u64
	fHalt           = 7  // coordinator -> node: converged u8
	fValuesReq      = 8  // coordinator -> node
	fValues         = 9  // node -> coordinator: first u64, count u64, payloads
	fBatch          = 10 // node -> node: count u32, (dst u32, val u64)*
	fEOS            = 11 // node -> node: step u64
	fPeerHello      = 12 // node -> node: sender nodeID u32
	fHeartbeat      = 13 // node -> coordinator: liveness ping, no payload semantics
)

const maxFrame = 64 << 20

// conn wraps a TCP connection with buffered, mutex-guarded frame I/O.
// Reads and writes may proceed concurrently; concurrent writers serialize
// on the write lock, so a frame is never interleaved.
type conn struct {
	c  net.Conn
	br *bufio.Reader

	// data marks node-to-node data-plane connections, the ones subject to
	// the fault package's drop/stall injection sites.
	data bool

	wmu sync.Mutex
	bw  *bufio.Writer
}

func newConn(c net.Conn) *conn {
	return &conn{
		c:  c,
		br: bufio.NewReaderSize(c, 1<<20),
		bw: bufio.NewWriterSize(c, 1<<20),
	}
}

func (c *conn) Close() error { return c.c.Close() }

// closeQuietly releases a connection, listener, or file on a teardown or
// already-failing path. The single sanctioned discard lives here so every
// other ignored Close stays a lint finding.
func closeQuietly(c io.Closer) {
	_ = c.Close() //lint:syncerr best-effort release on teardown; the primary error is already propagating
}

// writeFrame sends one frame and flushes it. On data-plane connections
// the fault sites fire before anything is buffered, so an injected drop
// never tears a frame: the sender can redial and resend it whole.
func (c *conn) writeFrame(kind byte, payload []byte) error {
	if c.data {
		fault.Stall(fault.SiteConnStall)
		if ferr := fault.Error(fault.SiteConnDrop); ferr != nil {
			closeQuietly(c.c)
			return fmt.Errorf("cluster: injected connection drop: %w", ferr)
		}
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(1+len(payload)))
	hdr[4] = kind
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// readFrame receives the next frame.
func (c *conn) readFrame() (kind byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// readFrameLive reads the next non-heartbeat frame, bounding how long the
// peer may go silent: every received frame — heartbeats included —
// refreshes the deadline, so a node that is alive but slow to make
// progress is distinguished from one that is gone. d <= 0 disables the
// deadline.
func (c *conn) readFrameLive(d time.Duration) (byte, []byte, error) {
	for {
		if d > 0 {
			c.c.SetReadDeadline(time.Now().Add(d)) //nolint:errcheck
		}
		kind, payload, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		if kind == fHeartbeat {
			continue
		}
		if d > 0 {
			c.c.SetReadDeadline(time.Time{}) //nolint:errcheck
		}
		return kind, payload, nil
	}
}

// payload builders --------------------------------------------------------

func u64Payload(vals ...uint64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], v)
	}
	return b
}

func readU64s(payload []byte, n int) ([]uint64, error) {
	if len(payload) < 8*n {
		return nil, fmt.Errorf("cluster: payload of %d bytes, want %d u64s", len(payload), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(payload[8*i:])
	}
	return out, nil
}

func helloPayload(node uint32, addr string) []byte {
	b := make([]byte, 4+2+len(addr))
	binary.LittleEndian.PutUint32(b[0:], node)
	binary.LittleEndian.PutUint16(b[4:], uint16(len(addr)))
	copy(b[6:], addr)
	return b
}

func parseHello(p []byte) (node uint32, addr string, err error) {
	if len(p) < 6 {
		return 0, "", fmt.Errorf("cluster: short hello")
	}
	node = binary.LittleEndian.Uint32(p[0:])
	n := int(binary.LittleEndian.Uint16(p[4:]))
	if len(p) < 6+n {
		return 0, "", fmt.Errorf("cluster: truncated hello address")
	}
	return node, string(p[6 : 6+n]), nil
}

func addrBookPayload(addrs []string) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, uint32(len(addrs)))
	for _, a := range addrs {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(a)))
		b = append(b, l[:]...)
		b = append(b, a...)
	}
	return b
}

func parseAddrBook(p []byte) ([]string, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("cluster: short address book")
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n > 1<<16 {
		return nil, fmt.Errorf("cluster: absurd address book size %d", n)
	}
	addrs := make([]string, 0, n)
	off := 4
	for i := 0; i < n; i++ {
		if len(p) < off+2 {
			return nil, fmt.Errorf("cluster: truncated address book")
		}
		l := int(binary.LittleEndian.Uint16(p[off:]))
		off += 2
		if len(p) < off+l {
			return nil, fmt.Errorf("cluster: truncated address book entry")
		}
		addrs = append(addrs, string(p[off:off+l]))
		off += l
	}
	return addrs, nil
}

func batchPayload(batch []core.Message) []byte {
	b := make([]byte, 4+12*len(batch))
	binary.LittleEndian.PutUint32(b[0:], uint32(len(batch)))
	off := 4
	for _, m := range batch {
		binary.LittleEndian.PutUint32(b[off:], m.Dst)
		binary.LittleEndian.PutUint64(b[off+4:], m.Val)
		off += 12
	}
	return b
}

func parseBatch(p []byte) ([]core.Message, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("cluster: short batch")
	}
	n := int(binary.LittleEndian.Uint32(p))
	// Guard the multiplication: an adversarial count must not wrap around
	// and slip past the length check.
	if n < 0 || n > (len(p)-4)/12 || len(p) != 4+12*n {
		return nil, fmt.Errorf("cluster: batch of %d messages in %d bytes", n, len(p))
	}
	out := make([]core.Message, n)
	off := 4
	for i := range out {
		out[i] = core.Message{
			Dst: binary.LittleEndian.Uint32(p[off:]),
			Val: binary.LittleEndian.Uint64(p[off+4:]),
		}
		off += 12
	}
	return out, nil
}

func valuesPayload(first int64, payloads []uint64) []byte {
	b := make([]byte, 16+8*len(payloads))
	binary.LittleEndian.PutUint64(b[0:], uint64(first))
	binary.LittleEndian.PutUint64(b[8:], uint64(len(payloads)))
	for i, v := range payloads {
		binary.LittleEndian.PutUint64(b[16+8*i:], v)
	}
	return b
}

func parseValues(p []byte) (first int64, payloads []uint64, err error) {
	if len(p) < 16 {
		return 0, nil, fmt.Errorf("cluster: short values frame")
	}
	first = int64(binary.LittleEndian.Uint64(p[0:]))
	n := int(binary.LittleEndian.Uint64(p[8:]))
	if n < 0 || n > (len(p)-16)/8 || len(p) != 16+8*n {
		return 0, nil, fmt.Errorf("cluster: values frame of %d payloads in %d bytes", n, len(p))
	}
	payloads = make([]uint64, n)
	for i := range payloads {
		payloads[i] = binary.LittleEndian.Uint64(p[16+8*i:])
	}
	return first, payloads, nil
}
