package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
)

// Wire protocol: length-prefixed, checksummed frames, little endian.
//
//	frame  := length uint32 | version uint8 | kind uint8 | crc uint32 | payload
//	length counts version+kind+crc+payload bytes (6 + len(payload)).
//	crc is CRC32C (Castagnoli) over version, kind, and payload — the
//	checksum field itself excluded — so a bit flipped anywhere in the
//	frame body, a truncation, or a torn write is detected at decode
//	instead of being silently deserialized into vertex state.
const (
	fHello          = 1  // node -> coordinator: nodeID u32, dataAddr string
	fAddrBook       = 2  // coordinator -> node: n u32, then n strings
	fStart          = 3  // coordinator -> node: step u64, round u64
	fDispatchOver   = 4  // node -> coordinator: step u64, generated u64, delivered u64
	fComputeBarrier = 5  // coordinator -> node: step u64
	fComputeOver    = 6  // node -> coordinator: step u64, updates u64
	fHalt           = 7  // coordinator -> node: converged u8
	fValuesReq      = 8  // coordinator -> node
	fValues         = 9  // node -> coordinator: first u64, count u64, payloads
	fBatch          = 10 // node -> node: round u64, seq u64, count u32, (dst u32, val u64)*
	fEOS            = 11 // node -> node: round u64, seq u64 (the sender's final seq for the round)
	fPeerHello      = 12 // node -> node: sender nodeID u32
	fHeartbeat      = 13 // node -> coordinator: liveness ping, no payload semantics
	fRejoin         = 14 // node -> coordinator: nodeID u32, epoch u64, dataAddr string
	fRollback       = 15 // coordinator -> node: step u64, round u64 (discard in-flight state; next attempt is round)
	fRollbackOver   = 16 // node -> coordinator: step u64 (rollback done, quiesced)
	fStepFailed     = 17 // node -> coordinator: step u64, reason string (retryable step-level failure)

	// Elastic membership frames (v3). Migration is barrier-only: the
	// coordinator issues these between supersteps, never inside one.
	fJoin        = 18 // node -> coordinator: nodeID u32, epoch u64, dataAddr string (a brand-new node dialing into a running job)
	fMigrateOut  = 19 // coordinator -> donor: interval u32, epoch u64 (extract and return the interval)
	fMigrateData = 20 // donor -> coordinator: interval u32, checksummed vertexfile blob
	fMigrateIn   = 21 // coordinator -> recipient: interval u32, blob (adopt it)
	fMigrateDone = 22 // recipient -> coordinator: interval u32 (adopted, durable)
	fRouting     = 23 // coordinator -> node: n u32, then n owner u32s (interval -> node table, atomically swapped)
	fRoutingOver = 24 // node -> coordinator: routing table installed
	fDrain       = 25 // coordinator -> node: all intervals shed; exit cleanly
	fDrainOver   = 26 // node -> coordinator: draining acknowledged
)

// protoVersion is the frame format version. A peer speaking any other
// version is rejected at the first frame instead of being misparsed.
// v3: batch frames carry the source interval id (elastic membership
// decoupled message grouping from node identity) and the membership
// frames above exist.
const protoVersion = 3

const maxFrame = 64 << 20

// frameOverhead is the byte count of version+kind+crc counted by the
// length prefix beyond the payload.
const frameOverhead = 6

// castagnoli is the CRC32C table shared by every frame encode/decode.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errFrameChecksum and errFrameVersion are matched with errors.Is by
// readers that route corruption into the superstep rollback path rather
// than treating it as a clean disconnect.
var (
	errFrameChecksum = errors.New("cluster: frame checksum mismatch")
	errFrameVersion  = errors.New("cluster: frame protocol version mismatch")
)

// frameCorrupt reports whether err means the peer's byte stream is
// damaged (checksum or version failure) as opposed to closed or timed out.
func frameCorrupt(err error) bool {
	return errors.Is(err, errFrameChecksum) || errors.Is(err, errFrameVersion)
}

// conn wraps a TCP connection with buffered, mutex-guarded frame I/O.
// Reads and writes may proceed concurrently; concurrent writers serialize
// on the write lock, so a frame is never interleaved.
type conn struct {
	c net.Conn

	// raw is the unwrapped connection: deadlines must reach the real
	// socket even when c is the flaky chaos wrapper.
	raw net.Conn
	br  *bufio.Reader

	// data marks node-to-node data-plane connections, the ones subject to
	// the fault package's drop/stall injection sites.
	data bool

	wmu sync.Mutex
	bw  *bufio.Writer
}

// newConn wraps nc for frame I/O. Every connection — control and data
// plane — goes through the flaky chaos wrapper; when no fault plan is
// active the wrapper is a single atomic load per write.
func newConn(nc net.Conn) *conn {
	fc := wrapFaulty(nc)
	return &conn{
		c:   fc,
		raw: nc,
		br:  bufio.NewReaderSize(fc, 1<<20),
		bw:  bufio.NewWriterSize(fc, 1<<20),
	}
}

func (c *conn) Close() error { return c.c.Close() }

// closeQuietly releases a connection, listener, or file on a teardown or
// already-failing path. The single sanctioned discard lives here so every
// other ignored Close stays a lint finding.
func closeQuietly(c io.Closer) {
	_ = c.Close() //lint:syncerr best-effort release on teardown; the primary error is already propagating
}

// membershipFrame reports whether kind belongs to the elastic-membership
// protocol — the frames the chaos harness can disturb through the
// cluster.migrate.* fault sites.
func membershipFrame(kind byte) bool { return kind >= fJoin && kind <= fDrainOver }

// writeFrame sends one frame and flushes it. On data-plane connections
// the fault sites fire before anything is buffered, so an injected drop
// never tears a frame: the sender can redial and resend it whole.
// Membership frames consult their own sites (membershipFault), two of
// which — corrupt and short-write — deliberately damage the frame on the
// wire so the receiver's checksum, not the sender, has to catch it.
//
//gpsa:noalloc
func (c *conn) writeFrame(kind byte, payload []byte) error {
	if c.data {
		fault.Stall(fault.SiteConnStall)
		if ferr := fault.Error(fault.SiteConnDrop); ferr != nil {
			closeQuietly(c.c)
			return fmt.Errorf("cluster: injected connection drop: %w", ferr)
		}
	}
	var corrupt, short bool
	if membershipFrame(kind) {
		var ferr error
		if corrupt, short, ferr = membershipFault(); ferr != nil {
			closeQuietly(c.c)
			return fmt.Errorf("cluster: injected migration reset: %w", ferr)
		}
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [10]byte //lint:noalloc hdr escapes through the io.Writer parameter; one fixed 10-byte header per frame, amortized over the payload it carries
	binary.LittleEndian.PutUint32(hdr[0:], uint32(frameOverhead+len(payload)))
	hdr[4] = protoVersion
	hdr[5] = kind
	crc := crc32.Update(0, castagnoli, hdr[4:6])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[6:], crc)
	if corrupt {
		// The CRC above covers the original bytes; flipping one bit after
		// sealing it guarantees the receiver rejects the frame at decode.
		if len(payload) > 0 {
			//lint:noalloc fault-injection corrupt branch; never taken outside chaos runs
			cp := make([]byte, len(payload))
			copy(cp, payload)
			cp[len(cp)/2] ^= 0x40
			payload = cp
		} else {
			hdr[6] ^= 0x40
		}
	}
	if short {
		// A prefix reaches the wire, then the connection dies: the torn
		// frame the length prefix + checksum must surface as an error.
		if _, err := c.bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := c.bw.Write(payload[:len(payload)/2]); err != nil {
			return err
		}
		if err := c.bw.Flush(); err != nil {
			return err
		}
		closeQuietly(c.c)
		return fmt.Errorf("cluster: injected migration short write: %w", fault.ErrInjected)
	}
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// readFrameFrom decodes one checksummed frame from r. Split out from conn
// so the fuzzer can drive the decoder with raw byte streams. Any header
// the checksum does not vouch for — wrong version, corrupt bytes,
// truncation mid-frame — yields an error, never a misparsed frame.
//
//gpsa:noalloc
func readFrameFrom(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [4]byte //lint:noalloc hdr escapes through the io.Reader parameter; one fixed 4-byte header per frame, amortized over the payload it carries
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < frameOverhead || n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: bad frame length %d", n)
	}
	buf := make([]byte, n) //lint:noalloc one payload buffer per frame is the wire path's unit of work
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	if buf[0] != protoVersion {
		return 0, nil, fmt.Errorf("%w: got %d, want %d", errFrameVersion, buf[0], protoVersion)
	}
	want := binary.LittleEndian.Uint32(buf[2:6])
	got := crc32.Update(0, castagnoli, buf[0:2])
	got = crc32.Update(got, castagnoli, buf[frameOverhead:])
	if got != want {
		metrics.Inc(metrics.CtrClusterChecksumFailures)
		return 0, nil, fmt.Errorf("%w: computed %#x, frame carries %#x", errFrameChecksum, got, want)
	}
	return buf[1], buf[frameOverhead:], nil
}

// readFrame receives the next frame.
func (c *conn) readFrame() (kind byte, payload []byte, err error) {
	return readFrameFrom(c.br)
}

// readFrameLive reads the next non-heartbeat frame, bounding how long the
// peer may go silent: every received frame — heartbeats included —
// refreshes the deadline, so a node that is alive but slow to make
// progress is distinguished from one that is gone. d <= 0 disables the
// liveness deadline. A non-zero progress time additionally bounds the
// whole read — heartbeats do NOT extend it — so a node that is alive but
// making no protocol progress (wedged, or cut off by a one-way partition
// its heartbeats still cross) is eventually surfaced as errNoProgress.
func (c *conn) readFrameLive(d time.Duration, progress time.Time) (byte, []byte, error) {
	for {
		deadline := time.Time{}
		if d > 0 {
			deadline = time.Now().Add(d) //lint:nondeterministic liveness deadline; timing never feeds vertex state
		}
		if !progress.IsZero() && (deadline.IsZero() || progress.Before(deadline)) {
			deadline = progress
		}
		if !deadline.IsZero() {
			c.raw.SetReadDeadline(deadline) //nolint:errcheck
		}
		kind, payload, err := c.readFrame()
		if err != nil {
			var ne net.Error
			//lint:nondeterministic distinguishing a liveness expiry from a progress expiry needs the clock; timing never feeds vertex state
			if errors.As(err, &ne) && ne.Timeout() && !progress.IsZero() && !time.Now().Before(progress) {
				return 0, nil, errNoProgress
			}
			return 0, nil, err
		}
		if kind == fHeartbeat {
			continue
		}
		if !deadline.IsZero() {
			c.raw.SetReadDeadline(time.Time{}) //nolint:errcheck
		}
		return kind, payload, nil
	}
}

// errNoProgress marks a read that saw liveness (heartbeats) but no
// protocol frame within the coordinator's phase-progress budget.
var errNoProgress = errors.New("cluster: no protocol progress within the phase timeout")

// payload builders --------------------------------------------------------

func u64Payload(vals ...uint64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], v)
	}
	return b
}

func readU64s(payload []byte, n int) ([]uint64, error) {
	if len(payload) < 8*n {
		return nil, fmt.Errorf("cluster: payload of %d bytes, want %d u64s", len(payload), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(payload[8*i:])
	}
	return out, nil
}

func helloPayload(node uint32, addr string) []byte {
	b := make([]byte, 4+2+len(addr))
	binary.LittleEndian.PutUint32(b[0:], node)
	binary.LittleEndian.PutUint16(b[4:], uint16(len(addr)))
	copy(b[6:], addr)
	return b
}

func parseHello(p []byte) (node uint32, addr string, err error) {
	if len(p) < 6 {
		return 0, "", fmt.Errorf("cluster: short hello")
	}
	node = binary.LittleEndian.Uint32(p[0:])
	n := int(binary.LittleEndian.Uint16(p[4:]))
	if len(p) < 6+n {
		return 0, "", fmt.Errorf("cluster: truncated hello address")
	}
	return node, string(p[6 : 6+n]), nil
}

// rejoinPayload is the hello of a restarted node: which node it is, the
// epoch its recovered vertexfile sits at, and its fresh data address.
func rejoinPayload(node uint32, epoch uint64, addr string) []byte {
	b := make([]byte, 4+8+2+len(addr))
	binary.LittleEndian.PutUint32(b[0:], node)
	binary.LittleEndian.PutUint64(b[4:], epoch)
	binary.LittleEndian.PutUint16(b[12:], uint16(len(addr)))
	copy(b[14:], addr)
	return b
}

func parseRejoin(p []byte) (node uint32, epoch uint64, addr string, err error) {
	if len(p) < 14 {
		return 0, 0, "", fmt.Errorf("cluster: short rejoin")
	}
	node = binary.LittleEndian.Uint32(p[0:])
	epoch = binary.LittleEndian.Uint64(p[4:])
	n := int(binary.LittleEndian.Uint16(p[12:]))
	if len(p) < 14+n {
		return 0, 0, "", fmt.Errorf("cluster: truncated rejoin address")
	}
	return node, epoch, string(p[14 : 14+n]), nil
}

// stepFailedPayload reports a retryable step-level failure to the
// coordinator. The reason is bounded so a pathological error can never
// approach the frame limit.
func stepFailedPayload(step uint64, reason string) []byte {
	const maxReason = 1 << 12
	if len(reason) > maxReason {
		reason = reason[:maxReason]
	}
	b := make([]byte, 8+2+len(reason))
	binary.LittleEndian.PutUint64(b[0:], step)
	binary.LittleEndian.PutUint16(b[8:], uint16(len(reason)))
	copy(b[10:], reason)
	return b
}

func parseStepFailed(p []byte) (step uint64, reason string, err error) {
	if len(p) < 10 {
		return 0, "", fmt.Errorf("cluster: short step-failed frame")
	}
	step = binary.LittleEndian.Uint64(p[0:])
	n := int(binary.LittleEndian.Uint16(p[8:]))
	if len(p) < 10+n {
		return 0, "", fmt.Errorf("cluster: truncated step-failed reason")
	}
	return step, string(p[10 : 10+n]), nil
}

func addrBookPayload(addrs []string) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, uint32(len(addrs)))
	for _, a := range addrs {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(a)))
		b = append(b, l[:]...)
		b = append(b, a...)
	}
	return b
}

func parseAddrBook(p []byte) ([]string, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("cluster: short address book")
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n > 1<<16 {
		return nil, fmt.Errorf("cluster: absurd address book size %d", n)
	}
	addrs := make([]string, 0, n)
	off := 4
	for i := 0; i < n; i++ {
		if len(p) < off+2 {
			return nil, fmt.Errorf("cluster: truncated address book")
		}
		l := int(binary.LittleEndian.Uint16(p[off:]))
		off += 2
		if len(p) < off+l {
			return nil, fmt.Errorf("cluster: truncated address book entry")
		}
		addrs = append(addrs, string(p[off:off+l]))
		off += l
	}
	return addrs, nil
}

// batchPayload frames a data batch tagged with the superstep attempt
// (round), the sender's per-round sequence number, and the source
// interval the batch was generated from. The round/seq tags make the
// data plane exactly-once over an at-least-once transport: a resent
// frame that was in fact delivered is deduplicated by seq, frames racing
// across an old and a redialed connection are released in seq order, and
// anything from an aborted round is dropped at the gate. The src tag
// keys the receiver's compute staging by interval rather than by node,
// so the barrier fold order — and with it bit-identical results — is
// invariant under migration, join, and drain.
func batchPayload(round, seq uint64, src uint32, batch []core.Message) []byte {
	b := make([]byte, 24+12*len(batch))
	binary.LittleEndian.PutUint64(b[0:], round)
	binary.LittleEndian.PutUint64(b[8:], seq)
	binary.LittleEndian.PutUint32(b[16:], src)
	binary.LittleEndian.PutUint32(b[20:], uint32(len(batch)))
	off := 24
	for _, m := range batch {
		binary.LittleEndian.PutUint32(b[off:], m.Dst)
		binary.LittleEndian.PutUint64(b[off+4:], m.Val)
		off += 12
	}
	return b
}

func parseBatch(p []byte) (round, seq uint64, src uint32, batch []core.Message, err error) {
	if len(p) < 24 {
		return 0, 0, 0, nil, fmt.Errorf("cluster: short batch")
	}
	round = binary.LittleEndian.Uint64(p[0:])
	seq = binary.LittleEndian.Uint64(p[8:])
	src = binary.LittleEndian.Uint32(p[16:])
	n := int(binary.LittleEndian.Uint32(p[20:]))
	// Guard the multiplication: an adversarial count must not wrap around
	// and slip past the length check.
	if n < 0 || n > (len(p)-24)/12 || len(p) != 24+12*n {
		return 0, 0, 0, nil, fmt.Errorf("cluster: batch of %d messages in %d bytes", n, len(p))
	}
	out := make([]core.Message, n)
	off := 24
	for i := range out {
		out[i] = core.Message{
			Dst: binary.LittleEndian.Uint32(p[off:]),
			Val: binary.LittleEndian.Uint64(p[off+4:]),
		}
		off += 12
	}
	return round, seq, src, out, nil
}

// ivPayload / parseIv carry a single interval id (fValuesReq,
// fMigrateDone).
func ivPayload(iv uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, iv)
	return b
}

func parseIv(p []byte) (uint32, error) {
	if len(p) < 4 {
		return 0, fmt.Errorf("cluster: short interval frame")
	}
	return binary.LittleEndian.Uint32(p), nil
}

// migrateReqPayload asks a donor to extract an interval: the epoch pins
// the barrier both sides must agree on, so a request that raced a
// rollback is rejected instead of shipping stale state.
func migrateReqPayload(iv uint32, epoch uint64) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b[0:], iv)
	binary.LittleEndian.PutUint64(b[4:], epoch)
	return b
}

func parseMigrateReq(p []byte) (iv uint32, epoch uint64, err error) {
	if len(p) < 12 {
		return 0, 0, fmt.Errorf("cluster: short migrate request")
	}
	return binary.LittleEndian.Uint32(p[0:]), binary.LittleEndian.Uint64(p[4:]), nil
}

// migrateBlobPayload carries an extracted interval blob (fMigrateData,
// fMigrateIn). The blob is self-validating (vertexfile digest) on top of
// the frame checksum, so a migration can never half-apply.
func migrateBlobPayload(iv uint32, blob []byte) []byte {
	b := make([]byte, 4+len(blob))
	binary.LittleEndian.PutUint32(b[0:], iv)
	copy(b[4:], blob)
	return b
}

func parseMigrateBlob(p []byte) (iv uint32, blob []byte, err error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("cluster: short migrate blob frame")
	}
	// The blob slice aliases the frame buffer, which is fresh per frame —
	// safe to hand to AdoptInterval without copying.
	return binary.LittleEndian.Uint32(p[0:]), p[4:], nil
}

// maxIntervals bounds the routing table size a frame may claim.
const maxIntervals = 1 << 20

// routingPayload serializes the interval -> owning-node table. Every
// node installs it atomically at a barrier (fRouting / fRoutingOver), so
// the whole cluster always agrees on who owns what.
func routingPayload(owners []int) []byte {
	b := make([]byte, 4+4*len(owners))
	binary.LittleEndian.PutUint32(b[0:], uint32(len(owners)))
	for i, o := range owners {
		binary.LittleEndian.PutUint32(b[4+4*i:], uint32(o))
	}
	return b
}

func parseRouting(p []byte) ([]int, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("cluster: short routing table")
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n <= 0 || n > maxIntervals || len(p) != 4+4*n {
		return nil, fmt.Errorf("cluster: routing table of %d intervals in %d bytes", n, len(p))
	}
	owners := make([]int, n)
	for i := range owners {
		owners[i] = int(binary.LittleEndian.Uint32(p[4+4*i:]))
	}
	return owners, nil
}

func valuesPayload(first int64, payloads []uint64) []byte {
	b := make([]byte, 16+8*len(payloads))
	binary.LittleEndian.PutUint64(b[0:], uint64(first))
	binary.LittleEndian.PutUint64(b[8:], uint64(len(payloads)))
	for i, v := range payloads {
		binary.LittleEndian.PutUint64(b[16+8*i:], v)
	}
	return b
}

func parseValues(p []byte) (first int64, payloads []uint64, err error) {
	if len(p) < 16 {
		return 0, nil, fmt.Errorf("cluster: short values frame")
	}
	first = int64(binary.LittleEndian.Uint64(p[0:]))
	n := int(binary.LittleEndian.Uint64(p[8:]))
	if n < 0 || n > (len(p)-16)/8 || len(p) != 16+8*n {
		return 0, nil, fmt.Errorf("cluster: values frame of %d payloads in %d bytes", n, len(p))
	}
	payloads = make([]uint64, n)
	for i := range payloads {
		payloads[i] = binary.LittleEndian.Uint64(p[16+8*i:])
	}
	return first, payloads, nil
}
