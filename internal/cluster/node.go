package cluster

import (
	"fmt"
	"net"
	"sort"
	"time"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
)

// NodeConfig tunes one node.
type NodeConfig struct {
	// Computers is the number of computing actors per node (default 2).
	Computers int
	// BatchSize is the message batch size for both local mailboxes and
	// peer frames (default 512).
	BatchSize int
	// DisableSync skips durable superstep syncs of the node's value file.
	DisableSync bool
	// HeartbeatInterval is how often the node pings the coordinator's
	// control connection so silence means death, not idleness
	// (default 500ms; negative disables).
	HeartbeatInterval time.Duration
	// BarrierTimeout bounds how long the node waits at the compute
	// barrier for peer end-of-stream markers and local computer acks; on
	// expiry the superstep fails with a labelled error instead of
	// hanging on a lost peer (default 15s; negative disables).
	BarrierTimeout time.Duration
	// PeerRedials is how many times a failed data-plane write redials
	// the peer before giving up (default 3; negative disables reconnect).
	PeerRedials int
	// RedialBackoff is the sleep before the first redial, doubling per
	// attempt (default 50ms).
	RedialBackoff time.Duration
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Computers <= 0 {
		c.Computers = 2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.BarrierTimeout == 0 {
		c.BarrierTimeout = 15 * time.Second
	}
	if c.PeerRedials == 0 {
		c.PeerRedials = 3
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 50 * time.Millisecond
	}
	return c
}

// compMsg is the node-local computer mailbox envelope.
type compMsg struct {
	batch   []core.Message
	barrier bool
	done    bool
}

// node is one cluster member: it owns a vertex interval, dispatches its
// share of the edge file, and computes updates for its own vertices.
type node struct {
	id       int
	total    int
	prog     core.Program
	combiner core.Combiner
	cfg      NodeConfig

	gf        *graph.File
	vf        *vertexfile.File
	interval  graph.Interval
	bounds    []int64 // bounds[i] = first vertex of node i; len total+1
	coord     *conn
	peers     []*conn  // outgoing data connections, indexed by node id (nil for self)
	peerAddrs []string // data addresses from the address book, for redials
	listener  net.Listener
	system    *actor.System
	toComp    []*actor.Mailbox[compMsg]
	ackCh     chan int64
	eosCh     chan struct{}
	failCh    chan error // peer disconnects and computing-actor panics
	hbStop    chan struct{}
	statsMsgs int64
}

// startNode boots a node: local state, data listener, coordinator
// handshake. It returns after the node has sent its hello; runNode drives
// the rest.
func startNode(id, total int, coordAddr, graphPath, valuesPath string,
	prog core.Program, intervals []graph.Interval, cfg NodeConfig) (*node, error) {
	cfg = cfg.withDefaults()
	gf, err := graph.OpenFile(graphPath, mmap.ModeAuto)
	if err != nil {
		return nil, err
	}
	vf, err := vertexfile.Create(valuesPath, gf.NumVertices, prog.Init)
	if err != nil {
		closeQuietly(gf)
		return nil, err
	}
	n := &node{
		id:       id,
		total:    total,
		prog:     prog,
		cfg:      cfg,
		gf:       gf,
		vf:       vf,
		interval: intervals[id],
		bounds:   make([]int64, total+1),
		peers:    make([]*conn, total),
		system:   actor.NewSystem(fmt.Sprintf("node-%d", id), actor.RestartPolicy{}),
		ackCh:    make(chan int64, cfg.Computers),
		eosCh:    make(chan struct{}, total),
		failCh:   make(chan error, total+cfg.Computers+1),
	}
	if c, ok := prog.(core.Combiner); ok {
		n.combiner = c
	}
	for i, iv := range intervals {
		n.bounds[i] = iv.FirstVertex
	}
	n.bounds[total] = gf.NumVertices

	// Computing actors must exist before any peer traffic can arrive.
	n.toComp = make([]*actor.Mailbox[compMsg], cfg.Computers)
	for i := range n.toComp {
		n.toComp[i] = actor.NewMailbox[compMsg](64)
		w := &nodeComputer{node: n, id: i}
		n.system.Spawn(fmt.Sprintf("node-%d-computer-%d", id, i), w)
	}

	// Data listener for incoming peer connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		n.close()
		return nil, err
	}
	n.listener = ln
	// The accept loop is a supervised actor: close() closes the listener
	// before system.Wait, so the loop terminates and Wait covers it.
	n.system.SpawnFunc(fmt.Sprintf("node-%d-accept", id), func() error {
		n.acceptLoop()
		return nil
	})

	// Control connection.
	cc, err := net.Dial("tcp", coordAddr)
	if err != nil {
		n.close()
		return nil, err
	}
	n.coord = newConn(cc)
	if err := n.coord.writeFrame(fHello, helloPayload(uint32(id), ln.Addr().String())); err != nil {
		n.close()
		return nil, err
	}
	return n, nil
}

func (n *node) close() {
	if n.hbStop != nil {
		close(n.hbStop)
		n.hbStop = nil
	}
	if n.listener != nil {
		closeQuietly(n.listener)
	}
	if n.coord != nil {
		closeQuietly(n.coord)
	}
	for _, p := range n.peers {
		if p != nil {
			closeQuietly(p)
		}
	}
	for _, mb := range n.toComp {
		mb.TryPut(compMsg{done: true})
		mb.Close()
	}
	n.system.Wait() //nolint:errcheck
	if n.vf != nil {
		closeQuietly(n.vf)
	}
	if n.gf != nil {
		closeQuietly(n.gf)
	}
}

// acceptLoop receives peer data connections and spawns a receiver per
// connection.
func (n *node) acceptLoop() {
	for {
		c, err := n.listener.Accept()
		if err != nil {
			return // listener closed on shutdown
		}
		// Per-connection receivers stay deliberately outside the actor
		// system: a slow or wedged peer must not block system.Wait during
		// teardown. Each receiver exits when its connection closes.
		go n.receive(newConn(c)) //lint:actorshare receiver lifetime is bounded by its connection, not the system; tracking it would let a wedged peer block Wait
	}
}

// receive folds one peer's frames into the local computers. A read error
// ends the receiver silently: with sender-side reconnect a dropped
// connection is routine — the peer redials, a fresh receiver takes over,
// and a peer that is truly gone is caught by the sender's redial budget
// and this node's barrier timeout. Malformed frames still fail loudly.
func (n *node) receive(c *conn) {
	defer closeQuietly(c)
	for {
		kind, payload, err := c.readFrame()
		if err != nil {
			return
		}
		switch kind {
		case fPeerHello:
			// informational only
		case fBatch:
			batch, err := parseBatch(payload)
			if err != nil {
				n.reportFailure(err)
				return
			}
			n.routeLocal(batch)
		case fEOS:
			n.eosCh <- struct{}{} //lint:actorshare eosCh is buffered to the peer count, so one EOS per peer can never block
		default:
			n.reportFailure(fmt.Errorf("cluster: node %d: unexpected peer frame %d", n.id, kind))
			return
		}
	}
}

// reportFailure never blocks: failCh is buffered generously, and during a
// clean shutdown (nobody listening) extra reports are simply dropped.
func (n *node) reportFailure(err error) {
	select {
	case n.failCh <- err:
	default:
	}
}

// routeLocal distributes a batch of locally-owned messages across the
// node's computing actors.
func (n *node) routeLocal(batch []core.Message) {
	if len(n.toComp) == 1 {
		n.toComp[0].Put(compMsg{batch: batch}) //nolint:errcheck
		return
	}
	parts := make([][]core.Message, len(n.toComp))
	for _, m := range batch {
		w := int(m.Dst) % len(n.toComp)
		parts[w] = append(parts[w], m)
	}
	for w, p := range parts {
		if len(p) > 0 {
			n.toComp[w].Put(compMsg{batch: p}) //nolint:errcheck
		}
	}
}

// ownerOf returns the node owning vertex v.
func (n *node) ownerOf(v graph.VertexID) int {
	// bounds is sorted; find the last bound <= v.
	i := sort.Search(n.total, func(i int) bool { return n.bounds[i+1] > int64(v) })
	return i
}

// runNode executes the node's control loop until HALT.
func (n *node) runNode() error {
	defer n.close()
	for {
		kind, payload, err := n.coord.readFrame()
		if err != nil {
			return fmt.Errorf("cluster: node %d control: %w", n.id, err)
		}
		switch kind {
		case fAddrBook:
			addrs, err := parseAddrBook(payload)
			if err != nil {
				return err
			}
			// Heartbeats start before peer dialing so a slow or stalled
			// data-plane dial cannot delay the first liveness ping past
			// the coordinator's node timeout. Supervised: close() closes
			// hbStop before system.Wait, so the loop terminates and Wait
			// covers it.
			if n.cfg.HeartbeatInterval > 0 {
				n.hbStop = make(chan struct{})
				stop := n.hbStop
				n.system.SpawnFunc(fmt.Sprintf("node-%d-heartbeat", n.id), func() error {
					n.heartbeatLoop(stop)
					return nil
				})
			}
			if err := n.dialPeers(addrs); err != nil {
				return err
			}
		case fStart:
			vals, err := readU64s(payload, 1)
			if err != nil {
				return err
			}
			if err := n.dispatchPhase(int64(vals[0])); err != nil {
				return err
			}
		case fComputeBarrier:
			vals, err := readU64s(payload, 1)
			if err != nil {
				return err
			}
			if err := n.barrierPhase(int64(vals[0])); err != nil {
				return err
			}
		case fValuesReq:
			if err := n.sendValues(); err != nil {
				return err
			}
		case fHalt:
			return nil
		default:
			return fmt.Errorf("cluster: node %d: unexpected control frame %d", n.id, kind)
		}
	}
}

func (n *node) dialPeers(addrs []string) error {
	if len(addrs) != n.total {
		return fmt.Errorf("cluster: node %d: address book of %d entries, want %d", n.id, len(addrs), n.total)
	}
	n.peerAddrs = addrs
	for i := range addrs {
		if i == n.id {
			continue
		}
		var id [4]byte
		id[0] = byte(n.id)
		if err := n.sendPeer(i, fPeerHello, id[:]); err != nil {
			return err
		}
	}
	return nil
}

// heartbeatLoop pings the coordinator's control connection until stopped
// or the connection dies, so the coordinator's node timeout measures
// liveness rather than per-phase progress.
func (n *node) heartbeatLoop(stop <-chan struct{}) {
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if n.coord.writeFrame(fHeartbeat, nil) != nil {
				return
			}
		}
	}
}

// dialPeer establishes a fresh data-plane connection to peer p.
func (n *node) dialPeer(p int) (*conn, error) {
	nc, err := net.Dial("tcp", n.peerAddrs[p])
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d dialing node %d: %w", n.id, p, err)
	}
	c := newConn(nc)
	c.data = true
	return c, nil
}

// sendPeer writes one frame to peer p's data connection, redialing with
// bounded exponential backoff when the transport fails. The data plane
// flushes whole frames, and an injected drop fires before anything is
// buffered, so resending the frame on a fresh connection loses nothing.
func (n *node) sendPeer(p int, kind byte, payload []byte) error {
	var err error
	if n.peers[p] != nil {
		if err = n.peers[p].writeFrame(kind, payload); err == nil {
			return nil
		}
		if n.cfg.PeerRedials < 0 {
			return fmt.Errorf("cluster: node %d: peer %d write failed (reconnect disabled): %w", n.id, p, err)
		}
	}
	attempts := n.cfg.PeerRedials
	if attempts < 1 {
		attempts = 1 // first-time dials get one attempt even with reconnect disabled
	}
	backoff := n.cfg.RedialBackoff
	for attempt := 0; attempt < attempts; attempt++ {
		if err != nil {
			// Only back off after a failure; a first-time dial is instant.
			time.Sleep(backoff)
			backoff *= 2
		}
		c, derr := n.dialPeer(p)
		if derr != nil {
			err = derr
			continue
		}
		if derr := c.writeFrame(kind, payload); derr != nil {
			closeQuietly(c)
			err = derr
			continue
		}
		if n.peers[p] != nil {
			closeQuietly(n.peers[p])
		}
		n.peers[p] = c
		return nil
	}
	return fmt.Errorf("cluster: node %d: peer %d unreachable after %d redials: %w", n.id, p, attempts, err)
}

// dispatchPhase streams the node's interval, routing messages locally or
// to peers, then signals end-of-stream and DISPATCH_OVER.
func (n *node) dispatchPhase(step int64) error {
	if err := n.vf.Begin(step, !n.cfg.DisableSync); err != nil {
		return err
	}
	col := vertexfile.DispatchCol(step)
	weighted := n.gf.Weighted()
	cur := n.gf.Cursor(n.interval)

	local := make([][]core.Message, len(n.toComp))
	remote := make([][]core.Message, n.total)
	var generated, delivered int64

	flushLocal := func(w int) error {
		b := local[w]
		local[w] = nil
		if n.combiner != nil {
			b = core.CombineBatch(b, n.combiner)
		}
		delivered += int64(len(b))
		return n.toComp[w].Put(compMsg{batch: b})
	}
	flushRemote := func(p int) error {
		b := remote[p]
		remote[p] = nil
		if n.combiner != nil {
			b = core.CombineBatch(b, n.combiner)
		}
		delivered += int64(len(b))
		return n.sendPeer(p, fBatch, batchPayload(b))
	}

	for {
		v, deg, edges, ok := cur.Next()
		if !ok {
			break
		}
		slot := n.vf.Load(col, v)
		if vertexfile.Stale(slot) {
			continue
		}
		payload := vertexfile.Payload(slot)
		for i := 0; i < int(deg); i++ {
			dst, w := graph.DecodeEdge(edges, i, weighted)
			msgVal, send := n.prog.GenMsg(v, payload, deg, dst, w)
			if !send {
				continue
			}
			generated++
			owner := n.ownerOf(dst)
			if owner == n.id {
				wkr := int(dst) % len(n.toComp)
				local[wkr] = append(local[wkr], core.Message{Dst: dst, Val: msgVal})
				if len(local[wkr]) >= n.cfg.BatchSize {
					if err := flushLocal(wkr); err != nil {
						return err
					}
				}
			} else {
				remote[owner] = append(remote[owner], core.Message{Dst: dst, Val: msgVal})
				if len(remote[owner]) >= n.cfg.BatchSize {
					if err := flushRemote(owner); err != nil {
						return err
					}
				}
			}
		}
		n.vf.Store(col, v, slot|vertexfile.StaleBit)
	}
	if err := cur.Err(); err != nil {
		return err
	}
	for w := range local {
		if len(local[w]) > 0 {
			if err := flushLocal(w); err != nil {
				return err
			}
		}
	}
	for p := range remote {
		if len(remote[p]) > 0 {
			if err := flushRemote(p); err != nil {
				return err
			}
		}
	}
	// End-of-stream on every peer connection, then DISPATCH_OVER.
	for i := range n.peers {
		if i == n.id {
			continue
		}
		if err := n.sendPeer(i, fEOS, u64Payload(uint64(step))); err != nil {
			return fmt.Errorf("cluster: node %d EOS to %d: %w", n.id, i, err)
		}
	}
	n.statsMsgs += generated
	return n.coord.writeFrame(fDispatchOver, u64Payload(uint64(step), uint64(generated), uint64(delivered)))
}

// barrierPhase waits for every peer's end-of-stream, drains the local
// computers, commits the superstep, and acknowledges the coordinator.
// Peer disconnects and computing-actor failures unwind the wait instead
// of deadlocking it.
func (n *node) barrierPhase(step int64) error {
	// One budget for the whole barrier: a lost peer (no end-of-stream)
	// or a wedged computer fails the superstep with a labelled error
	// instead of blocking the cluster forever.
	var timeoutC <-chan time.Time
	if n.cfg.BarrierTimeout > 0 {
		tm := time.NewTimer(n.cfg.BarrierTimeout)
		defer tm.Stop()
		timeoutC = tm.C
	}
	for i := 0; i < n.total-1; i++ {
		select {
		case <-n.eosCh:
		case err := <-n.failCh:
			return err
		case <-timeoutC:
			return fmt.Errorf("cluster: node %d: superstep %d compute barrier timed out after %v waiting for peer end-of-stream", n.id, step, n.cfg.BarrierTimeout)
		}
	}
	for _, mb := range n.toComp {
		if err := mb.Put(compMsg{barrier: true}); err != nil {
			return err
		}
	}
	var updates int64
	for range n.toComp {
		select {
		case u := <-n.ackCh:
			updates += u
		case err := <-n.failCh:
			return err
		case <-timeoutC:
			return fmt.Errorf("cluster: node %d: superstep %d compute barrier timed out after %v waiting for computer acks", n.id, step, n.cfg.BarrierTimeout)
		}
	}
	if err := n.vf.Commit(step, true, !n.cfg.DisableSync); err != nil {
		return err
	}
	return n.coord.writeFrame(fComputeOver, u64Payload(uint64(step), uint64(updates)))
}

func (n *node) sendValues() error {
	first, end := n.interval.FirstVertex, n.interval.EndVertex
	payloads := make([]uint64, 0, end-first)
	for v := first; v < end; v++ {
		payloads = append(payloads, n.vf.Value(v))
	}
	return n.coord.writeFrame(fValues, valuesPayload(first, payloads))
}

// nodeComputer is the node-local computing actor (paper Algorithm 3, with
// remote batches arriving through the same mailbox).
type nodeComputer struct {
	node    *node
	id      int
	updates int64
}

// Execute runs the computing actor loop. Panics in the vertex program are
// converted to failures so the node's barrier can unwind.
func (c *nodeComputer) Execute() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: node %d computer %d: panic: %v", c.node.id, c.id, r)
			c.node.reportFailure(err)
		}
	}()
	n := c.node
	for {
		m, ok := n.toComp[c.id].Get()
		if !ok || m.done {
			return nil
		}
		if m.barrier {
			//lint:ctxblock ackCh is buffered to the computer count, so one ack per barrier can never block
			n.ackCh <- c.updates //lint:actorshare ackCh is buffered to the computer count, so one ack per barrier can never block
			c.updates = 0
			continue
		}
		step := n.vf.Epoch()
		dcol, ucol := vertexfile.DispatchCol(step), vertexfile.UpdateCol(step)
		for _, msg := range m.batch {
			v := int64(msg.Dst)
			slot := n.vf.Load(ucol, v)
			first := vertexfile.Stale(slot)
			var cur uint64
			if first {
				cur = vertexfile.Payload(n.vf.Load(dcol, v))
			} else {
				cur = vertexfile.Payload(slot)
			}
			newVal, changed := n.prog.Compute(v, cur, msg.Val, first)
			if changed {
				n.vf.Store(ucol, v, vertexfile.Pack(newVal, false))
				c.updates++
			}
		}
	}
}
