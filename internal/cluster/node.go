package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/diskio"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
)

// NodeConfig tunes one node.
type NodeConfig struct {
	// Computers is the number of computing actors per node (default 2).
	Computers int
	// BatchSize is the message batch size for both local mailboxes and
	// peer frames (default 512).
	BatchSize int
	// DisableSync skips durable superstep syncs of the node's value file.
	DisableSync bool
	// HeartbeatInterval is how often the node pings the coordinator's
	// control connection so silence means death, not idleness
	// (default 500ms; negative disables).
	HeartbeatInterval time.Duration
	// BarrierTimeout bounds how long the node waits at the compute
	// barrier for peer end-of-stream markers and local computer acks; on
	// expiry the superstep fails with a labelled error instead of
	// hanging on a lost peer (default 15s; negative disables).
	BarrierTimeout time.Duration
	// PeerRedials is how many times a failed data-plane write redials
	// the peer before giving up (default 3; negative disables reconnect).
	PeerRedials int
	// RedialBackoff is the sleep before the first redial, doubling per
	// attempt (default 50ms).
	RedialBackoff time.Duration
	// RedialBackoffMax caps the doubling redial sleep (default 2s), so a
	// long redial storm polls steadily instead of sleeping for minutes.
	RedialBackoffMax time.Duration
	// MinFreeBytes gates migration adoption on free space in the value
	// file's directory: a recipient that cannot durably hold the interval
	// refuses MIGRATE with a typed ENOSPC error instead of adopting state
	// it would lose. 0 disables the preflight.
	MinFreeBytes int64
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Computers <= 0 {
		c.Computers = 2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.BarrierTimeout == 0 {
		c.BarrierTimeout = 15 * time.Second
	}
	if c.PeerRedials == 0 {
		c.PeerRedials = 3
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 50 * time.Millisecond
	}
	if c.RedialBackoffMax <= 0 {
		c.RedialBackoffMax = 2 * time.Second
	}
	return c
}

// stepFailure wraps an error that aborts the current superstep attempt
// but leaves the node healthy: transport trouble, barrier timeouts, peer
// corruption. The node reports it to the coordinator (STEP_FAILED) and
// stays in its control loop for the rollback that follows, instead of
// dying and forcing a full rejoin.
type stepFailure struct{ err error }

func (e stepFailure) Error() string { return e.err.Error() }
func (e stepFailure) Unwrap() error { return e.err }

func stepFailf(format string, args ...any) error {
	return stepFailure{err: fmt.Errorf(format, args...)}
}

// errNodeKilled marks an injected abrupt node death (the chaos harness's
// in-process SIGKILL): the control loop exits without commit or graceful
// protocol, and the coordinator must recover.
var errNodeKilled = errors.New("cluster: node killed by injected chaos")

// compMsg is the node-local computer mailbox envelope. src is the
// SOURCE INTERVAL the batch was generated from — not a node id: staging
// and fold order are keyed by the fixed interval partition, so they are
// invariant under migration, join, and drain.
type compMsg struct {
	src     int
	round   uint64
	batch   []core.Message
	barrier bool
	// quiesce, when non-nil, makes the computer discard all staged state
	// for the aborted round and close the channel; because the mailbox is
	// FIFO, every stale batch enqueued before the rollback is consumed
	// first.
	quiesce chan struct{}
	done    bool
}

// eosMark records one peer's end-of-stream for one superstep attempt.
type eosMark struct {
	sender int
	round  uint64
}

// streamFrame is one in-order unit of a peer's data stream: a message
// batch (tagged with its source interval) or the end-of-stream marker.
type streamFrame struct {
	eos   bool
	src   int
	batch []core.Message
}

// senderStream reassembles one peer's data frames into exactly-once,
// in-order delivery. The transport underneath is at-least-once and
// unordered across connections: a frame whose flush errored may still
// have been delivered before the sender redials and resends it, and an
// old connection's receiver can race a fresh one. Sequence numbers fix
// both — duplicates are dropped (seq below the release cursor or already
// pending) and frames are released only in seq order — which is what
// keeps the per-sender fold order deterministic and the retried
// superstep bit-identical.
type senderStream struct {
	mu      sync.Mutex
	round   uint64
	next    uint64 // next seq to release; seqs are 1-based per round
	pending map[uint64]streamFrame
}

// node is one cluster member. It owns a SET of vertex intervals — the
// fixed partition is finer than the node set, and the owners table maps
// each interval to its current host — dispatches their share of the edge
// file, and computes updates for their vertices. The owners table is the
// routing state elastic membership swaps atomically at barriers; the
// interval partition itself never changes for the life of a job, which
// is what keeps batch formation and fold order bit-identical across
// migrations.
type node struct {
	id       int
	total    int // size of the node ID SPACE (initial nodes + plannable joins), not the live member count
	prog     core.Program
	combiner core.Combiner
	cfg      NodeConfig
	ctx      context.Context

	gf        *graph.File
	vf        *vertexfile.File
	valuesDir string           // directory of the value file, for free-space preflight
	ivs       []graph.Interval // the fixed partition, immutable for the job
	ivBounds  []int64          // ivBounds[i] = first vertex of interval i; len(ivs)+1
	owners    []int            // owners[i] = node currently hosting interval i
	member    []bool           // member[id] = node id owns at least one interval
	nMembers  int
	coord     *conn
	peers     []*conn  // outgoing data connections, indexed by node id (nil for self)
	peerAddrs []string // data addresses from the address book, for redials
	peerSeq   []uint64 // per-peer data-plane sequence counter, reset each round
	listener  net.Listener
	system    *actor.System
	toComp    []*actor.Mailbox[compMsg]
	ackCh     chan int64
	eosCh     chan eosMark
	failCh    chan error // peer disconnects and computing-actor panics
	hbStop    chan struct{}
	statsMsgs int64

	// round gates the data plane: frames tagged with an older superstep
	// attempt are dropped at arrival, so an aborted attempt's stragglers
	// can never leak into the retry.
	round atomic.Uint64
	// begunStep is the superstep this node last ran Begin for (-1 none):
	// a rollback may only restore from the bitmap when Begin actually
	// snapshotted it for the step being rolled back.
	begunStep int64
	// streams reassembles each peer's data frames, indexed by node id.
	streams []*senderStream
}

// bootMode selects how a node enters the cluster.
type bootMode int

const (
	// bootFresh creates a new value file and announces with HELLO (the
	// ordinary job start).
	bootFresh bootMode = iota
	// bootRejoin reopens and recovers a dead incarnation's sealed value
	// file — PR 2's durability contract is exactly what makes the
	// intervals replayable — and announces with REJOIN and the recovered
	// epoch.
	bootRejoin
	// bootJoin is a brand-new node entering a RUNNING job: its value file
	// is created fresh and fast-forwarded to the join epoch (every vertex
	// inert), ready for AdoptInterval to paint in the ranges it will own;
	// it announces with JOIN.
	bootJoin
)

// nodeSpec gathers what startNode needs to boot one node.
type nodeSpec struct {
	id         int
	total      int // node ID space: initial nodes + plannable joins
	coordAddr  string
	graphPath  string
	valuesPath string
	prog       core.Program
	ivs        []graph.Interval
	owners     []int
	cfg        NodeConfig
	mode       bootMode
	joinEpoch  int64 // bootJoin: the epoch the running job sits at
}

// startNode boots a node: local state, data listener, coordinator
// handshake. It returns after the node has sent its hello; runNode
// drives the rest.
func startNode(ctx context.Context, spec nodeSpec) (*node, error) {
	id, total := spec.id, spec.total
	cfg := spec.cfg.withDefaults()
	gf, err := graph.OpenFile(spec.graphPath, mmap.ModeAuto)
	if err != nil {
		return nil, err
	}
	var vf *vertexfile.File
	switch spec.mode {
	case bootRejoin:
		vf, err = vertexfile.Open(spec.valuesPath)
		if err == nil {
			_, err = vf.Recover()
		}
	case bootJoin:
		vf, err = vertexfile.Create(spec.valuesPath, gf.NumVertices, spec.prog.Init)
		if err == nil {
			err = vf.FastForward(spec.joinEpoch, !cfg.DisableSync)
		}
	default:
		vf, err = vertexfile.Create(spec.valuesPath, gf.NumVertices, spec.prog.Init)
	}
	if err != nil {
		closeQuietly(gf)
		return nil, err
	}
	n := &node{
		id:        id,
		total:     total,
		prog:      spec.prog,
		cfg:       cfg,
		ctx:       ctx,
		gf:        gf,
		vf:        vf,
		valuesDir: filepath.Dir(spec.valuesPath),
		ivs:       spec.ivs,
		ivBounds:  make([]int64, len(spec.ivs)+1),
		peers:     make([]*conn, total),
		peerSeq:   make([]uint64, total),
		streams:   make([]*senderStream, total),
		system:    actor.NewSystem(fmt.Sprintf("node-%d", id), actor.RestartPolicy{}),
		ackCh:     make(chan int64, cfg.Computers),
		eosCh:     make(chan eosMark, 4*total+4),
		failCh:    make(chan error, total+cfg.Computers+1),
		begunStep: -1,
	}
	if c, ok := spec.prog.(core.Combiner); ok {
		n.combiner = c
	}
	for i := range n.streams {
		n.streams[i] = &senderStream{next: 1, pending: make(map[uint64]streamFrame)}
	}
	for i, iv := range spec.ivs {
		n.ivBounds[i] = iv.FirstVertex
	}
	n.ivBounds[len(spec.ivs)] = gf.NumVertices
	if err := n.installRouting(spec.owners); err != nil {
		n.close()
		return nil, err
	}

	// Computing actors must exist before any peer traffic can arrive.
	n.toComp = make([]*actor.Mailbox[compMsg], cfg.Computers)
	for i := range n.toComp {
		n.toComp[i] = actor.NewMailbox[compMsg](64)
		w := &nodeComputer{node: n, id: i}
		n.system.Spawn(fmt.Sprintf("node-%d-computer-%d", id, i), w)
	}

	// Data listener for incoming peer connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		n.close()
		return nil, err
	}
	n.listener = ln
	// The accept loop is a supervised actor: close() closes the listener
	// before system.Wait, so the loop terminates and Wait covers it.
	n.system.SpawnFunc(fmt.Sprintf("node-%d-accept", id), func() error {
		n.acceptLoop()
		return nil
	})

	// Control connection.
	cc, err := net.Dial("tcp", spec.coordAddr)
	if err != nil {
		n.close()
		return nil, err
	}
	n.coord = newConn(cc)
	hello := helloPayload(uint32(id), ln.Addr().String())
	kind := byte(fHello)
	switch spec.mode {
	case bootRejoin:
		hello = rejoinPayload(uint32(id), uint64(vf.Epoch()), ln.Addr().String())
		kind = fRejoin
	case bootJoin:
		hello = rejoinPayload(uint32(id), uint64(vf.Epoch()), ln.Addr().String())
		kind = fJoin
	}
	if err := n.coord.writeFrame(kind, hello); err != nil {
		n.close()
		return nil, err
	}
	return n, nil
}

// installRouting atomically swaps in a new interval -> node table. It is
// only called between supersteps (boot, or an fRouting frame at a
// membership barrier), so no dispatch or fold is in flight.
func (n *node) installRouting(owners []int) error {
	if len(owners) != len(n.ivs) {
		return fmt.Errorf("cluster: node %d: routing table of %d intervals, want %d", n.id, len(owners), len(n.ivs))
	}
	member := make([]bool, n.total)
	for iv, o := range owners {
		if o < 0 || o >= n.total {
			return fmt.Errorf("cluster: node %d: interval %d routed to bogus node %d", n.id, iv, o)
		}
		member[o] = true
	}
	count := 0
	for _, m := range member {
		if m {
			count++
		}
	}
	n.owners = append([]int(nil), owners...)
	n.member = member
	n.nMembers = count
	return nil
}

// ivOf returns the interval containing vertex v.
func (n *node) ivOf(v int64) int {
	// ivBounds is sorted; find the last bound <= v.
	return sort.Search(len(n.ivs), func(i int) bool { return n.ivBounds[i+1] > v })
}

func (n *node) close() {
	if n.hbStop != nil {
		close(n.hbStop)
		n.hbStop = nil
	}
	if n.listener != nil {
		closeQuietly(n.listener)
	}
	if n.coord != nil {
		closeQuietly(n.coord)
	}
	for _, p := range n.peers {
		if p != nil {
			closeQuietly(p)
		}
	}
	for _, mb := range n.toComp {
		mb.TryPut(compMsg{done: true})
		mb.Close()
	}
	n.system.Wait() //nolint:errcheck
	if n.vf != nil {
		closeQuietly(n.vf)
	}
	if n.gf != nil {
		closeQuietly(n.gf)
	}
}

// acceptLoop receives peer data connections and spawns a receiver per
// connection.
func (n *node) acceptLoop() {
	for {
		c, err := n.listener.Accept()
		if err != nil {
			return // listener closed on shutdown
		}
		// Per-connection receivers stay deliberately outside the actor
		// system: a slow or wedged peer must not block system.Wait during
		// teardown. Each receiver exits when its connection closes.
		go n.receive(newConn(c)) //lint:actorshare receiver lifetime is bounded by its connection, not the system; tracking it would let a wedged peer block Wait
	}
}

// receive folds one peer's frames into the local computers. A clean read
// error ends the receiver silently: with sender-side reconnect a dropped
// connection is routine — the peer redials, a fresh receiver takes over,
// and the stream's sequence numbers absorb the overlap. A corrupt frame
// (checksum or version mismatch) is different: the stream can no longer
// be trusted, so it is reported as a step failure — routing corruption
// into the rollback path — before the receiver exits.
func (n *node) receive(c *conn) {
	defer closeQuietly(c)
	sender := -1
	for {
		kind, payload, err := c.readFrame()
		if err != nil {
			if frameCorrupt(err) {
				n.reportFailure(stepFailf("cluster: node %d: corrupt frame from peer %d: %w", n.id, sender, err))
			}
			return
		}
		switch kind {
		case fPeerHello:
			if len(payload) < 4 {
				n.reportFailure(stepFailf("cluster: node %d: short peer hello", n.id))
				return
			}
			s := int(binary.LittleEndian.Uint32(payload))
			if s < 0 || s >= n.total || s == n.id {
				n.reportFailure(stepFailf("cluster: node %d: peer hello from bogus node %d", n.id, s))
				return
			}
			sender = s
		case fBatch:
			round, seq, src, batch, perr := parseBatch(payload)
			if perr != nil {
				n.reportFailure(perr)
				return
			}
			if sender < 0 {
				n.reportFailure(stepFailf("cluster: node %d: data batch before peer hello", n.id))
				return
			}
			if int(src) >= len(n.ivs) {
				n.reportFailure(stepFailf("cluster: node %d: batch from bogus interval %d", n.id, src))
				return
			}
			n.deliverData(sender, round, seq, streamFrame{src: int(src), batch: batch})
		case fEOS:
			vals, perr := readU64s(payload, 2)
			if perr != nil {
				n.reportFailure(perr)
				return
			}
			if sender < 0 {
				n.reportFailure(stepFailf("cluster: node %d: end-of-stream before peer hello", n.id))
				return
			}
			n.deliverData(sender, vals[0], vals[1], streamFrame{eos: true})
		default:
			n.reportFailure(fmt.Errorf("cluster: node %d: unexpected peer frame %d", n.id, kind))
			return
		}
	}
}

// deliverData feeds one data frame into the sender's reassembly stream,
// releasing any frames that are now in order. Frames from a round older
// than the gate (an aborted attempt's stragglers) are dropped.
func (n *node) deliverData(sender int, round, seq uint64, fr streamFrame) {
	if round < n.round.Load() {
		return
	}
	s := n.streams[sender]
	s.mu.Lock()
	defer s.mu.Unlock()
	if round < s.round {
		return
	}
	if round > s.round {
		s.round = round
		s.next = 1
		clear(s.pending)
	}
	if seq < s.next {
		return // duplicate of an already-released frame (resent after redial)
	}
	if _, dup := s.pending[seq]; dup {
		return
	}
	s.pending[seq] = fr
	for {
		f, ok := s.pending[s.next]
		if !ok {
			return
		}
		delete(s.pending, s.next)
		s.next++
		if f.eos {
			n.eosCh <- eosMark{sender: sender, round: s.round} //lint:actorshare eosCh is buffered past one mark per peer per in-flight round, and rollback drains it
		} else {
			n.routeLocal(s.round, f.src, f.batch)
		}
	}
}

// reportFailure never blocks: failCh is buffered generously, and during a
// clean shutdown (nobody listening) extra reports are simply dropped.
func (n *node) reportFailure(err error) {
	select {
	case n.failCh <- err:
	default:
	}
}

// routeLocal distributes a batch generated by source interval src across
// the node's computing actors. Both the wire path (receive) and the
// co-hosted loopback path (flushCross in dispatchInterval) come through
// here, so a batch is split across workers identically whether its
// source interval lives on this node or another — the property that
// keeps results bit-identical across migrations.
func (n *node) routeLocal(round uint64, src int, batch []core.Message) {
	if len(n.toComp) == 1 {
		n.toComp[0].Put(compMsg{src: src, round: round, batch: batch}) //nolint:errcheck
		return
	}
	parts := make([][]core.Message, len(n.toComp))
	for _, m := range batch {
		w := int(m.Dst) % len(n.toComp)
		parts[w] = append(parts[w], m)
	}
	for w, p := range parts {
		if len(p) > 0 {
			n.toComp[w].Put(compMsg{src: src, round: round, batch: p}) //nolint:errcheck
		}
	}
}

// ownerOf returns the node currently hosting vertex v's interval.
func (n *node) ownerOf(v graph.VertexID) int {
	return n.owners[n.ivOf(int64(v))]
}

// runNode executes the node's control loop until HALT. Failures are
// classified: a stepFailure is reported to the coordinator and the node
// stays alive for the rollback-and-retry protocol; anything else is fatal
// and the node dies, leaving recovery to a replacement incarnation.
func (n *node) runNode() error {
	defer n.close()
	for {
		kind, payload, err := n.coord.readFrame()
		if err != nil {
			return fmt.Errorf("cluster: node %d control: %w", n.id, err)
		}
		switch kind {
		case fAddrBook:
			addrs, err := parseAddrBook(payload)
			if err != nil {
				return err
			}
			// Heartbeats start before peer dialing so a slow or stalled
			// data-plane dial cannot delay the first liveness ping past
			// the coordinator's node timeout. Spawned once: a rebroadcast
			// address book (after a rejoin) must not stack heartbeaters.
			// Supervised: close() closes hbStop before system.Wait, so
			// the loop terminates and Wait covers it.
			if n.cfg.HeartbeatInterval > 0 && n.hbStop == nil {
				n.hbStop = make(chan struct{})
				stop := n.hbStop
				n.system.SpawnFunc(fmt.Sprintf("node-%d-heartbeat", n.id), func() error {
					n.heartbeatLoop(stop)
					return nil
				})
			}
			if err := n.updatePeers(addrs); err != nil {
				return err
			}
		case fStart:
			vals, err := readU64s(payload, 2)
			if err != nil {
				return err
			}
			step, round := int64(vals[0]), vals[1]
			n.round.Store(round)
			if err := n.stepOutcome(step, n.dispatchPhase(step, round)); err != nil {
				return err
			}
		case fComputeBarrier:
			vals, err := readU64s(payload, 1)
			if err != nil {
				return err
			}
			if err := n.stepOutcome(int64(vals[0]), n.barrierPhase(int64(vals[0]))); err != nil {
				return err
			}
		case fRollback:
			vals, err := readU64s(payload, 2)
			if err != nil {
				return err
			}
			if err := n.rollbackStep(int64(vals[0]), vals[1]); err != nil {
				return err
			}
			if err := n.coord.writeFrame(fRollbackOver, u64Payload(vals[0])); err != nil {
				return fmt.Errorf("cluster: node %d rollback ack: %w", n.id, err)
			}
		case fValuesReq:
			iv, err := parseIv(payload)
			if err != nil {
				return err
			}
			if err := n.sendValues(int(iv)); err != nil {
				return err
			}
		case fMigrateOut:
			iv, epoch, err := parseMigrateReq(payload)
			if err != nil {
				return err
			}
			if ferr := fault.Error(fault.SiteNodeKillMigrate); ferr != nil {
				return fmt.Errorf("cluster: node %d mid-migration (donor): %w", n.id, errNodeKilled)
			}
			blob, err := n.extractInterval(int(iv), int64(epoch))
			if err != nil {
				return err
			}
			if err := n.coord.writeFrame(fMigrateData, migrateBlobPayload(iv, blob)); err != nil {
				return fmt.Errorf("cluster: node %d migrate data: %w", n.id, err)
			}
		case fMigrateIn:
			iv, blob, err := parseMigrateBlob(payload)
			if err != nil {
				return err
			}
			if ferr := fault.Error(fault.SiteNodeKillMigrate); ferr != nil {
				return fmt.Errorf("cluster: node %d mid-migration (recipient): %w", n.id, errNodeKilled)
			}
			// Adoption preflight: refuse state this node cannot durably
			// hold. The typed ENOSPC refusal fails the migration loudly at
			// the coordinator instead of losing the interval on the sync.
			if n.cfg.MinFreeBytes > 0 {
				if free, ferr := diskio.FreeSpace(n.valuesDir); ferr == nil && free < uint64(n.cfg.MinFreeBytes) {
					return fmt.Errorf("cluster: node %d adopting interval %d: %d bytes free, need %d: %w",
						n.id, iv, free, n.cfg.MinFreeBytes, diskio.ErrDiskFull)
				}
			}
			if err := n.vf.AdoptInterval(blob, !n.cfg.DisableSync); err != nil {
				return fmt.Errorf("cluster: node %d adopting interval %d: %w", n.id, iv, err)
			}
			if err := n.coord.writeFrame(fMigrateDone, ivPayload(iv)); err != nil {
				return fmt.Errorf("cluster: node %d migrate done: %w", n.id, err)
			}
		case fRouting:
			owners, err := parseRouting(payload)
			if err != nil {
				return err
			}
			if err := n.installRouting(owners); err != nil {
				return err
			}
			if err := n.coord.writeFrame(fRoutingOver, nil); err != nil {
				return fmt.Errorf("cluster: node %d routing ack: %w", n.id, err)
			}
		case fDrain:
			// All intervals have been migrated off; acknowledge and exit
			// cleanly — the value file seals at its last committed epoch.
			if err := n.coord.writeFrame(fDrainOver, nil); err != nil {
				return fmt.Errorf("cluster: node %d drain ack: %w", n.id, err)
			}
			return nil
		case fHalt:
			return nil
		default:
			return fmt.Errorf("cluster: node %d: unexpected control frame %d", n.id, kind)
		}
	}
}

// extractInterval serializes interval iv of this node's value file for a
// migration, validating that this node actually hosts it, that donor and
// coordinator agree on the barrier epoch, and that the blob fits a frame.
func (n *node) extractInterval(iv int, epoch int64) ([]byte, error) {
	if iv < 0 || iv >= len(n.ivs) || n.owners[iv] != n.id {
		return nil, fmt.Errorf("cluster: node %d asked to extract interval %d it does not host", n.id, iv)
	}
	if epoch != n.vf.Epoch() {
		return nil, fmt.Errorf("cluster: node %d: migration of interval %d pinned to epoch %d, file is at %d", n.id, iv, epoch, n.vf.Epoch())
	}
	blob, err := n.vf.ExtractInterval(n.ivs[iv].FirstVertex, n.ivs[iv].EndVertex)
	if err != nil {
		return nil, err
	}
	if len(blob)+4+frameOverhead > maxFrame {
		return nil, fmt.Errorf("cluster: node %d: interval %d blob of %d bytes exceeds the frame limit", n.id, iv, len(blob))
	}
	return blob, nil
}

// stepOutcome routes a phase result: nil passes through, a stepFailure is
// reported to the coordinator (the node stays in its control loop and
// waits for the rollback), and everything else — including an injected
// kill — is fatal.
func (n *node) stepOutcome(step int64, err error) error {
	if err == nil {
		return nil
	}
	var sf stepFailure
	if !errors.As(err, &sf) || errors.Is(err, errNodeKilled) {
		return err
	}
	if werr := n.coord.writeFrame(fStepFailed, stepFailedPayload(uint64(step), err.Error())); werr != nil {
		return fmt.Errorf("cluster: node %d reporting step failure (%v): %w", n.id, err, werr)
	}
	return nil
}

// rollbackStep discards every trace of the aborted superstep attempt:
// the round gate advances (in-flight stragglers drop on arrival), the
// peer streams reset, the computers quiesce their staged batches, the
// barrier bookkeeping drains, and the value file rolls back to the start
// of step — via Rollback if this node was mid-step, via Rewind if it had
// already committed before the failure was detected elsewhere, or not at
// all if it never began the step (the file is already at its start).
func (n *node) rollbackStep(step int64, newRound uint64) error {
	n.round.Store(newRound)
	for _, s := range n.streams {
		s.mu.Lock()
		if s.round < newRound {
			s.round = newRound
			s.next = 1
			clear(s.pending)
		}
		s.mu.Unlock()
	}
	// Quiesce the computers. The marker lands behind any stale batch in
	// the FIFO mailboxes (deliverData publishes under the stream lock the
	// reset above just held, so nothing stale can be enqueued after it).
	for _, mb := range n.toComp {
		q := make(chan struct{})
		if err := mb.Put(compMsg{quiesce: q}); err != nil {
			return err
		}
		<-q
	}
	for drained := false; !drained; {
		select {
		case <-n.eosCh:
		case <-n.ackCh:
		case <-n.failCh:
		default:
			drained = true
		}
	}
	// Reset the data-plane sequence counters for the retry.
	for i := range n.peerSeq {
		n.peerSeq[i] = 0
	}
	switch {
	case n.vf.Epoch() == step+1:
		if err := n.vf.Rewind(step); err != nil {
			return err
		}
	case n.vf.Epoch() == step && n.begunStep == step:
		if err := n.vf.Rollback(step, !n.cfg.DisableSync); err != nil {
			return err
		}
	}
	n.begunStep = -1
	return nil
}

// updatePeers installs a (re)broadcast address book: connections to peers
// whose address changed (a rejoined replacement) are dropped so the next
// send dials the fresh address, and missing connections are established
// eagerly, best-effort — a failed dial here is retried with backoff by
// sendPeer when the dispatch phase actually needs the peer. An empty
// entry is a node that has not joined yet, was drained, or was retired
// after redistribution: no connection is kept or dialed for it.
func (n *node) updatePeers(addrs []string) error {
	if len(addrs) != n.total {
		return fmt.Errorf("cluster: node %d: address book of %d entries, want %d", n.id, len(addrs), n.total)
	}
	for i := range addrs {
		if i == n.id {
			continue
		}
		if n.peerAddrs != nil && n.peerAddrs[i] != addrs[i] && n.peers[i] != nil {
			closeQuietly(n.peers[i])
			n.peers[i] = nil
		}
	}
	n.peerAddrs = addrs
	for i := range addrs {
		if i == n.id || n.peers[i] != nil || addrs[i] == "" {
			continue
		}
		if c, err := n.dialPeer(i); err == nil {
			n.peers[i] = c
		}
	}
	return nil
}

// heartbeatLoop pings the coordinator's control connection until stopped
// or the connection dies, so the coordinator's node timeout measures
// liveness rather than per-phase progress.
func (n *node) heartbeatLoop(stop <-chan struct{}) {
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if n.coord.writeFrame(fHeartbeat, nil) != nil {
				return
			}
		}
	}
}

// dialPeer establishes a fresh data-plane connection to peer p and
// identifies this node on it, so the receiver can attribute the stream.
func (n *node) dialPeer(p int) (*conn, error) {
	nc, err := net.Dial("tcp", n.peerAddrs[p])
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d dialing node %d: %w", n.id, p, err)
	}
	c := newConn(nc)
	c.data = true
	var id [4]byte
	binary.LittleEndian.PutUint32(id[:], uint32(n.id))
	if err := c.writeFrame(fPeerHello, id[:]); err != nil {
		closeQuietly(c)
		return nil, err
	}
	return c, nil
}

// sendPeer writes one frame to peer p's data connection, redialing with
// capped exponential backoff when the transport fails. The data plane
// flushes whole frames and the receiver deduplicates by sequence number,
// so resending the frame on a fresh connection is safe even when the
// "failed" write was in fact delivered.
func (n *node) sendPeer(p int, kind byte, payload []byte) error {
	var err error
	if n.peers[p] != nil {
		if err = n.peers[p].writeFrame(kind, payload); err == nil {
			return nil
		}
		if n.cfg.PeerRedials < 0 {
			return stepFailf("cluster: node %d: peer %d write failed (reconnect disabled): %w", n.id, p, err)
		}
	}
	attempts := n.cfg.PeerRedials
	if attempts < 1 {
		attempts = 1 // first-time dials get one attempt even with reconnect disabled
	}
	backoff := n.cfg.RedialBackoff
	for attempt := 0; attempt < attempts; attempt++ {
		if err != nil {
			// Only back off after a failure; a first-time dial is instant.
			// The sleep is capped and context-aware: a SIGTERM mid-storm
			// must interrupt the wait, not sit out an exponential backlog.
			metrics.Inc(metrics.CtrClusterRedials)
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-n.ctx.Done():
				t.Stop()
				return fmt.Errorf("cluster: node %d: redial to peer %d cancelled: %w", n.id, p, n.ctx.Err())
			}
			backoff *= 2
			if backoff > n.cfg.RedialBackoffMax {
				backoff = n.cfg.RedialBackoffMax
			}
		}
		c, derr := n.dialPeer(p)
		if derr != nil {
			err = derr
			continue
		}
		if derr := c.writeFrame(kind, payload); derr != nil {
			closeQuietly(c)
			err = derr
			continue
		}
		if n.peers[p] != nil {
			closeQuietly(n.peers[p])
		}
		n.peers[p] = c
		return nil
	}
	return stepFailf("cluster: node %d: peer %d unreachable after %d redials: %w", n.id, p, attempts, err)
}

// sendData sends the next in-sequence data frame of the current round to
// peer p. The sequence number advances even when the send fails: the
// frame may have reached the peer anyway, and burning the seq keeps a
// half-delivered attempt from colliding with a later resend.
func (n *node) sendData(p int, kind byte, payload []byte) error {
	n.peerSeq[p]++
	return n.sendPeer(p, kind, payload)
}

// dispatchPhase streams every interval this node hosts, in ascending
// interval order, then signals end-of-stream to every member peer and
// DISPATCH_OVER. Batch formation happens per source interval with fresh
// buffers (dispatchInterval), so batch boundaries and combine groups
// depend only on the fixed partition — routing decides where a batch
// goes, never how it is formed.
func (n *node) dispatchPhase(step int64, round uint64) error {
	if err := n.vf.Begin(step, !n.cfg.DisableSync); err != nil {
		return err
	}
	n.begunStep = step
	for i := range n.peerSeq {
		n.peerSeq[i] = 0
	}
	var generated, delivered int64
	for iv := range n.ivs {
		if n.owners[iv] != n.id {
			continue
		}
		if err := n.dispatchInterval(step, round, iv, &generated, &delivered); err != nil {
			return err
		}
	}
	// End-of-stream on every member peer connection, then DISPATCH_OVER.
	for i := range n.peers {
		if i == n.id || !n.member[i] {
			continue
		}
		if err := n.sendData(i, fEOS, u64Payload(round, n.peerSeq[i]+1)); err != nil {
			return stepFailf("cluster: node %d EOS to %d: %w", n.id, i, err)
		}
	}
	n.statsMsgs += generated
	return n.coord.writeFrame(fDispatchOver, u64Payload(uint64(step), uint64(generated), uint64(delivered)))
}

// dispatchInterval streams one hosted interval src. Messages staying
// inside src split directly across the local computing actors; messages
// crossing into another interval d buffer per destination interval and
// flush either over the wire to d's owner or through the loopback
// (routeLocal) when d is co-hosted. A destination vertex belongs to
// exactly one interval, so its messages always take the same path shape
// and fold in the same order regardless of which node hosts what.
func (n *node) dispatchInterval(step int64, round uint64, src int, generated, delivered *int64) error {
	col := vertexfile.DispatchCol(step)
	weighted := n.gf.Weighted()
	cur := n.gf.Cursor(n.ivs[src])

	local := make([][]core.Message, len(n.toComp))
	cross := make([][]core.Message, len(n.ivs))

	flushLocal := func(w int) error {
		b := local[w]
		local[w] = nil
		if n.combiner != nil {
			b = core.CombineBatch(b, n.combiner)
		}
		*delivered += int64(len(b))
		return n.toComp[w].Put(compMsg{src: src, round: round, batch: b})
	}
	flushCross := func(d int) error {
		b := cross[d]
		cross[d] = nil
		if n.combiner != nil {
			b = core.CombineBatch(b, n.combiner)
		}
		*delivered += int64(len(b))
		owner := n.owners[d]
		if owner == n.id {
			n.routeLocal(round, src, b)
			return nil
		}
		return n.sendData(owner, fBatch, batchPayload(round, n.peerSeq[owner]+1, uint32(src), b))
	}

	for {
		v, deg, edges, ok := cur.Next()
		if !ok {
			break
		}
		if fault.Error(fault.SiteNodeKillDispatch) != nil {
			return fmt.Errorf("cluster: node %d mid-dispatch: %w", n.id, errNodeKilled)
		}
		slot := n.vf.Load(col, v)
		if vertexfile.Stale(slot) {
			continue
		}
		payload := vertexfile.Payload(slot)
		for i := 0; i < int(deg); i++ {
			dst, w := graph.DecodeEdge(edges, i, weighted)
			msgVal, send := n.prog.GenMsg(v, payload, deg, dst, w)
			if !send {
				continue
			}
			*generated++
			d := n.ivOf(int64(dst))
			if d == src {
				wkr := int(dst) % len(n.toComp)
				local[wkr] = append(local[wkr], core.Message{Dst: dst, Val: msgVal})
				if len(local[wkr]) >= n.cfg.BatchSize {
					if err := flushLocal(wkr); err != nil {
						return err
					}
				}
			} else {
				cross[d] = append(cross[d], core.Message{Dst: dst, Val: msgVal})
				if len(cross[d]) >= n.cfg.BatchSize {
					if err := flushCross(d); err != nil {
						return err
					}
				}
			}
		}
		n.vf.Store(col, v, slot|vertexfile.StaleBit)
	}
	if err := cur.Err(); err != nil {
		return err
	}
	for w := range local {
		if len(local[w]) > 0 {
			if err := flushLocal(w); err != nil {
				return err
			}
		}
	}
	for d := range cross {
		if len(cross[d]) > 0 {
			if err := flushCross(d); err != nil {
				return err
			}
		}
	}
	return nil
}

// barrierPhase waits for every peer's end-of-stream, folds the staged
// batches, commits the superstep, and acknowledges the coordinator. Peer
// disconnects and computing-actor failures unwind the wait as step
// failures instead of deadlocking it.
func (n *node) barrierPhase(step int64) error {
	round := n.round.Load()
	// One budget for the whole barrier: a lost peer (no end-of-stream)
	// or a wedged computer fails the superstep with a labelled error
	// instead of blocking the cluster forever.
	var timeoutC <-chan time.Time
	if n.cfg.BarrierTimeout > 0 {
		tm := time.NewTimer(n.cfg.BarrierTimeout)
		defer tm.Stop()
		timeoutC = tm.C
	}
	seen := make([]bool, n.total)
	for need := n.nMembers - 1; need > 0; {
		select {
		case mk := <-n.eosCh:
			if mk.round == round && n.member[mk.sender] && !seen[mk.sender] {
				seen[mk.sender] = true
				need--
			}
		case err := <-n.failCh:
			return stepFailure{err: err}
		case <-timeoutC:
			return stepFailf("cluster: node %d: superstep %d compute barrier timed out after %v waiting for peer end-of-stream", n.id, step, n.cfg.BarrierTimeout)
		}
	}
	for _, mb := range n.toComp {
		if err := mb.Put(compMsg{barrier: true, round: round}); err != nil {
			return err
		}
	}
	var updates int64
	for range n.toComp {
		select {
		case u := <-n.ackCh:
			updates += u
		case err := <-n.failCh:
			return stepFailure{err: err}
		case <-timeoutC:
			return stepFailf("cluster: node %d: superstep %d compute barrier timed out after %v waiting for computer acks", n.id, step, n.cfg.BarrierTimeout)
		}
	}
	if fault.Error(fault.SiteNodeKillBarrier) != nil {
		return fmt.Errorf("cluster: node %d mid-barrier: %w", n.id, errNodeKilled)
	}
	if err := n.vf.Commit(step, true, !n.cfg.DisableSync); err != nil {
		return err
	}
	n.begunStep = -1
	return n.coord.writeFrame(fComputeOver, u64Payload(uint64(step), uint64(updates)))
}

func (n *node) sendValues(iv int) error {
	if iv < 0 || iv >= len(n.ivs) || n.owners[iv] != n.id {
		return fmt.Errorf("cluster: node %d asked for values of interval %d it does not host", n.id, iv)
	}
	first, end := n.ivs[iv].FirstVertex, n.ivs[iv].EndVertex
	payloads := make([]uint64, 0, end-first)
	for v := first; v < end; v++ {
		payloads = append(payloads, n.vf.Value(v))
	}
	return n.coord.writeFrame(fValues, valuesPayload(first, payloads))
}

// nodeComputer is the node-local computing actor (paper Algorithm 3, with
// remote batches arriving through the same mailbox). Unlike the
// single-machine engine it does not fold messages the moment they
// arrive: arrival order across peers is a race, and a bit-identical
// retry needs a deterministic fold. Batches are staged per SOURCE
// INTERVAL — each source's stream is already in deterministic (dispatch)
// order — and folded at the barrier in ascending interval order. Keying
// by interval rather than node id is what makes the fold invariant under
// elastic membership: migrating an interval changes which node's stream
// carries its batches, never the staging slot or fold position. For
// combinable programs staged runs are compacted eagerly with the stable
// combiner, so the dispatch/compute overlap still does the combining
// work in-flight.
type nodeComputer struct {
	node    *node
	id      int
	updates int64
	staged  [][]core.Message // indexed by source interval
}

// Execute runs the computing actor loop. Panics in the vertex program are
// converted to failures so the node's barrier can unwind.
func (c *nodeComputer) Execute() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: node %d computer %d: panic: %v", c.node.id, c.id, r)
			c.node.reportFailure(err)
		}
	}()
	n := c.node
	c.staged = make([][]core.Message, len(n.ivs))
	for {
		m, ok := n.toComp[c.id].Get()
		if !ok || m.done {
			return nil
		}
		if m.quiesce != nil {
			for i := range c.staged {
				c.staged[i] = nil
			}
			c.updates = 0
			close(m.quiesce)
			continue
		}
		if m.barrier {
			if m.round == n.round.Load() {
				c.apply()
			}
			//lint:ctxblock ackCh is buffered to the computer count, so one ack per barrier can never block
			n.ackCh <- c.updates //lint:actorshare ackCh is buffered to the computer count, so one ack per barrier can never block
			c.updates = 0
			continue
		}
		if m.round < n.round.Load() {
			continue // straggler from an aborted attempt
		}
		c.staged[m.src] = append(c.staged[m.src], m.batch...)
		if n.combiner != nil && len(c.staged[m.src]) >= 2*n.cfg.BatchSize {
			c.staged[m.src] = core.CombineBatch(c.staged[m.src], n.combiner)
		}
	}
}

// apply folds the staged batches into the update column, source interval
// by source interval in ascending order — the deterministic,
// membership-invariant fold the staging exists for.
func (c *nodeComputer) apply() {
	n := c.node
	step := n.vf.Epoch()
	dcol, ucol := vertexfile.DispatchCol(step), vertexfile.UpdateCol(step)
	for snd := range c.staged {
		b := c.staged[snd]
		c.staged[snd] = nil
		if len(b) == 0 {
			continue
		}
		if n.combiner != nil {
			b = core.CombineBatch(b, n.combiner)
		}
		for _, msg := range b {
			v := int64(msg.Dst)
			slot := n.vf.Load(ucol, v)
			first := vertexfile.Stale(slot)
			var cur uint64
			if first {
				cur = vertexfile.Payload(n.vf.Load(dcol, v))
			} else {
				cur = vertexfile.Payload(slot)
			}
			newVal, changed := n.prog.Compute(v, cur, msg.Val, first)
			if changed {
				n.vf.Store(ucol, v, vertexfile.Pack(newVal, false))
				c.updates++
			}
		}
	}
}
