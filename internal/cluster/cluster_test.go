package cluster_test

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vertexfile"
)

func save(t testing.TB, g *graph.CSR) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.gpsa")
	if err := graph.WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func rmat(t testing.TB, v, e, seed int64) *graph.CSR {
	t.Helper()
	g, err := gen.RMATGraph(gen.RMATConfig{Vertices: v, Edges: e, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestClusterCCMatchesSerialReference(t *testing.T) {
	g := rmat(t, 500, 3000, 1).Symmetrize()
	want, _ := algorithms.ReferenceRun(g, algorithms.ConnectedComponents{}, 100)
	for _, nodes := range []int{1, 2, 3, 5} {
		res, values, err := cluster.Run(save(t, g), algorithms.ConnectedComponents{}, cluster.Config{Nodes: nodes})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if !res.Converged {
			t.Fatalf("nodes=%d: did not converge in %d supersteps", nodes, res.Supersteps)
		}
		for v := int64(0); v < g.NumVertices; v++ {
			if values[v] != want[v] {
				t.Fatalf("nodes=%d vertex %d: %d, want %d", nodes, v, values[v], want[v])
			}
		}
	}
}

func TestClusterBFSMatchesSerialReference(t *testing.T) {
	g := rmat(t, 400, 2500, 2)
	prog := algorithms.BFS{Root: 0}
	want, _ := algorithms.ReferenceRun(g, prog, 200)
	res, values, err := cluster.Run(save(t, g), prog, cluster.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("BFS did not converge")
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if values[v] != want[v]&vertexfile.PayloadMask {
			t.Fatalf("vertex %d: level %d, want %d", v, values[v], want[v])
		}
	}
}

func TestClusterPageRankMatchesSerialReference(t *testing.T) {
	g := rmat(t, 300, 2000, 3)
	want, _ := algorithms.ReferenceRun(g, algorithms.PageRank{}, 5)
	res, values, err := cluster.Run(save(t, g), algorithms.PageRank{}, cluster.Config{Nodes: 4, MaxSupersteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 5 {
		t.Fatalf("ran %d supersteps", res.Supersteps)
	}
	for v := int64(0); v < g.NumVertices; v++ {
		got := algorithms.RankOf(values[v])
		ref := algorithms.RankOf(want[v] & vertexfile.PayloadMask)
		if math.Abs(got-ref) > 1e-9*(1+ref) {
			t.Fatalf("vertex %d: rank %g, want %g", v, got, ref)
		}
	}
}

func TestClusterStatsAggregation(t *testing.T) {
	// Chain 0->1->2 split across 2+ nodes: messages cross the wire.
	g, err := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	res, values, err := cluster.Run(save(t, g), algorithms.BFS{Root: 0}, cluster.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2 || res.Updates != 2 {
		t.Fatalf("messages=%d updates=%d, want 2 and 2", res.Messages, res.Updates)
	}
	if values[2] != 2 {
		t.Fatalf("level of 2 = %d", values[2])
	}
	if len(res.Steps) != res.Supersteps {
		t.Fatalf("steps recorded: %d, supersteps: %d", len(res.Steps), res.Supersteps)
	}
}

func TestClusterMoreNodesThanIntervals(t *testing.T) {
	// A tiny graph cannot be split 8 ways; the cluster shrinks gracefully.
	g, err := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	res, values, err := cluster.Run(save(t, g), algorithms.BFS{Root: 0}, cluster.Config{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 8 || res.Nodes < 1 {
		t.Fatalf("nodes = %d", res.Nodes)
	}
	if values[1] != 1 {
		t.Fatalf("level of 1 = %d", values[1])
	}
}

func TestClusterCombining(t *testing.T) {
	// CC implements the min combiner; delivered must not exceed generated.
	g := rmat(t, 300, 3000, 4).Symmetrize()
	res, _, err := cluster.Run(save(t, g), algorithms.ConnectedComponents{}, cluster.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered > res.Messages {
		t.Fatalf("delivered %d > generated %d", res.Delivered, res.Messages)
	}
	if res.Delivered == 0 || res.Messages == 0 {
		t.Fatal("no traffic recorded")
	}
}
