package preprocess

import (
	"io"
	"strings"
	"testing"

	"repro/internal/graph"
)

// FuzzTextEdgeReader checks the text parser never panics and that
// accepted edges carry in-range ids.
func FuzzTextEdgeReader(f *testing.F) {
	f.Add("0 1\n2 3\n")
	f.Add("# comment\n\n5\t7\t0.5\n")
	f.Add("% note\n 1 2 \n")
	f.Add("a b\n")
	f.Add("4294967295 0\n")
	f.Add("1 2 3 4 5\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := newTextEdgeReader(strings.NewReader(input))
		for i := 0; i < 10000; i++ {
			e, err := r.ReadEdge()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // rejecting is fine; panicking is not
			}
			_ = e
		}
	})
}

// FuzzAdjacencyReader does the same for the adjacency parser.
func FuzzAdjacencyReader(f *testing.F) {
	f.Add("0 2 1 2\n")
	f.Add("0 0\n1 1 0\n")
	f.Add("# c\n3 1 0 trailing\n")
	f.Add("0 65535 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := newAdjacencyReader(strings.NewReader(input))
		for i := 0; i < 10000; i++ {
			if _, err := r.ReadEdge(); err != nil {
				return
			}
		}
	})
}

// FuzzConvertRoundTrip feeds arbitrary small edge lists through the full
// external-sort pipeline and checks the output file validates.
func FuzzConvertRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 0}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, chunkRaw uint8) {
		if len(raw) > 4096 {
			return
		}
		edges := make([]graph.Edge, 0, len(raw)/8)
		for i := 0; i+8 <= len(raw); i += 8 {
			src := uint32(raw[i]) | uint32(raw[i+1])<<8
			dst := uint32(raw[i+4]) | uint32(raw[i+5])<<8
			edges = append(edges, graph.Edge{Src: src % 128, Dst: dst % 128})
		}
		out := t.TempDir() + "/g.gpsa"
		st, err := EdgesToCSR(edges, out, Options{ChunkEdges: int(chunkRaw%32) + 1})
		if err != nil {
			t.Fatalf("conversion of valid edges failed: %v", err)
		}
		if st.NumEdges != int64(len(edges)) {
			t.Fatalf("edge count %d, want %d", st.NumEdges, len(edges))
		}
	})
}
