package preprocess

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func TestBinaryEdgeListRoundTrip(t *testing.T) {
	dir := t.TempDir()
	edges := []graph.Edge{{Src: 2, Dst: 0}, {Src: 0, Dst: 1}, {Src: 0, Dst: 2}}
	in := filepath.Join(dir, "edges.bin")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryEdgeList(f, edges, false); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "g.gpsa")
	st, err := BinaryEdgeListToCSR(in, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVertices != 3 || st.NumEdges != 3 {
		t.Fatalf("stats = %+v", st)
	}
	adj, _, _, _ := readBack(t, out, false)
	if !reflect.DeepEqual(adj[0], []graph.VertexID{1, 2}) || !reflect.DeepEqual(adj[2], []graph.VertexID{0}) {
		t.Fatalf("adj = %v", adj)
	}
}

func TestBinaryEdgeListWeighted(t *testing.T) {
	dir := t.TempDir()
	edges := []graph.Edge{{Src: 0, Dst: 1, Weight: 1.5}, {Src: 1, Dst: 0, Weight: 0.25}}
	in := filepath.Join(dir, "edges.bin")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryEdgeList(f, edges, true); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := filepath.Join(dir, "g.gpsa")
	if _, err := BinaryEdgeListToCSR(in, out, Options{Weighted: true}); err != nil {
		t.Fatal(err)
	}
	_, wts, _, _ := readBack(t, out, true)
	if wts[0][0] != 1.5 || wts[1][0] != 0.25 {
		t.Fatalf("weights = %v", wts)
	}
}

func TestBinaryEdgeListRejectsTruncated(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(in, []byte{1, 2, 3, 4, 5}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := BinaryEdgeListToCSR(in, filepath.Join(dir, "g.gpsa"), Options{}); err == nil {
		t.Fatal("truncated binary input accepted")
	}
}
