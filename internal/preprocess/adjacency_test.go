package preprocess

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func TestAdjacencyToCSR(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "adj.txt")
	content := "# adjacency\n0 2 2 3\n2 1 0\n1 0\n"
	if err := os.WriteFile(in, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "g.gpsa")
	st, err := AdjacencyToCSR(in, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVertices != 4 || st.NumEdges != 3 {
		t.Fatalf("stats = %+v", st)
	}
	adj, _, _, _ := readBack(t, out, false)
	if !reflect.DeepEqual(adj[0], []graph.VertexID{2, 3}) {
		t.Fatalf("adj[0] = %v", adj[0])
	}
	if !reflect.DeepEqual(adj[2], []graph.VertexID{0}) {
		t.Fatalf("adj[2] = %v", adj[2])
	}
	if len(adj[1]) != 0 {
		t.Fatalf("adj[1] = %v, want empty", adj[1])
	}
}

func TestAdjacencyRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := []string{
		"0 2 1\n",     // fewer destinations than declared
		"0 1 2 extra", // trailing garbage
		"x 1 0\n",     // bad source
		"0 x 1\n",     // bad degree
	}
	for i, bad := range cases {
		in := filepath.Join(dir, "bad.txt")
		if err := os.WriteFile(in, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := AdjacencyToCSR(in, filepath.Join(dir, "out.gpsa"), Options{}); err == nil {
			t.Errorf("case %d (%q): conversion succeeded", i, bad)
		}
	}
}

func TestAdjacencyOutOfOrderLines(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "adj.txt")
	if err := os.WriteFile(in, []byte("3 1 0\n0 1 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "g.gpsa")
	st, err := AdjacencyToCSR(in, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVertices != 4 || st.NumEdges != 2 {
		t.Fatalf("stats = %+v", st)
	}
	adj, _, _, _ := readBack(t, out, false)
	if !reflect.DeepEqual(adj[3], []graph.VertexID{0}) || !reflect.DeepEqual(adj[0], []graph.VertexID{3}) {
		t.Fatalf("adj = %v", adj)
	}
}
