package preprocess

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/graph"
)

// Binary edge-list format (paper §V-A: "our system can process the
// original binary edge-list input"): consecutive little-endian records of
// (src uint32, dst uint32) — or (src, dst, weight float32) when weighted —
// with no header. This is also the format X-Stream consumes natively.

// BinaryEdgeListToCSR converts a binary edge list into a CSR file.
func BinaryEdgeListToCSR(inputPath, outputPath string, opt Options) (*Stats, error) {
	in, err := os.Open(inputPath)
	if err != nil {
		return nil, fmt.Errorf("preprocess: %w", err)
	}
	defer in.Close() //lint:syncerr read-only handle; no durability contract on close
	st, err := in.Stat()
	if err != nil {
		return nil, fmt.Errorf("preprocess: %w", err)
	}
	rec := int64(8)
	if opt.Weighted {
		rec = 12
	}
	if st.Size()%rec != 0 {
		return nil, fmt.Errorf("preprocess: %s: %d bytes is not a multiple of the %d-byte record size",
			inputPath, st.Size(), rec)
	}
	return ConvertEdgeStream(newBinaryEdgeReader(in, opt.Weighted), outputPath, opt)
}

// WriteBinaryEdgeList writes edges in the binary format.
func WriteBinaryEdgeList(w io.Writer, edges []graph.Edge, weighted bool) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var rec [12]byte
	n := 8
	if weighted {
		n = 12
	}
	for _, e := range edges {
		binary.LittleEndian.PutUint32(rec[0:], e.Src)
		binary.LittleEndian.PutUint32(rec[4:], e.Dst)
		if weighted {
			binary.LittleEndian.PutUint32(rec[8:], math.Float32bits(e.Weight))
		}
		if _, err := bw.Write(rec[:n]); err != nil {
			return fmt.Errorf("preprocess: write binary edge list: %w", err)
		}
	}
	return bw.Flush()
}

type binaryEdgeReader struct {
	br       *bufio.Reader
	weighted bool
}

func newBinaryEdgeReader(r io.Reader, weighted bool) *binaryEdgeReader {
	return &binaryEdgeReader{br: bufio.NewReaderSize(r, 1<<20), weighted: weighted}
}

func (b *binaryEdgeReader) ReadEdge() (graph.Edge, error) {
	var rec [12]byte
	n := 8
	if b.weighted {
		n = 12
	}
	if _, err := io.ReadFull(b.br, rec[:n]); err != nil {
		if err == io.EOF {
			return graph.Edge{}, io.EOF
		}
		return graph.Edge{}, fmt.Errorf("preprocess: binary edge list: %w", err)
	}
	e := graph.Edge{
		Src: binary.LittleEndian.Uint32(rec[0:]),
		Dst: binary.LittleEndian.Uint32(rec[4:]),
	}
	if b.weighted {
		e.Weight = math.Float32frombits(binary.LittleEndian.Uint32(rec[8:]))
	}
	return e, nil
}
